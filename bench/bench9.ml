(* BENCH_9.json: the speculative dynamics engine, measured.

   The macro is dynamics-converge — the same greedy-response runs the
   BENCH_4/BENCH_8 lineage tracks — replayed through every shape of the
   redesigned `Dynamics.Engine` seam:

     sequential      the historical single-threaded loop
     speculative:1   the speculative commit protocol on one domain
                     (protocol overhead in isolation — same schedule,
                     no parallelism)
     speculative:K   K worker domains evaluating best responses ahead
                     of the commit frontier

   Every engine converges to the byte-identical outcome (property-tested
   in test_speculative), so the rows are directly comparable: the only
   variable is wall-clock and allocation.  Each row carries the
   GC-reported bytes allocated per converge run — the zero-alloc
   what-if kernels plus per-domain replica workspaces are the
   allocation diet this artifact audits.

   Two anchors:
   - n=100 sequential replays the exact BENCH_8 dense macro instance;
     the committed hardware-normalized ratio must stay within 1.1x (the
     engine redesign may not tax the sequential path).  Cross-artifact
     wall-clock is only meaningful modulo machine drift — a shared
     container is not equally fast on two days — so bench9 re-measures
     two dense micro kernels this PR does not touch (rowsum and
     add-kernel at n=1000, straight from the BENCH_8 results) and
     divides the raw macro ratio by their observed drift.
   - n=1000 (full mode) pits speculative:K against sequential on the
     BENCH_8 tree-metric host.  Both sides are measured in the same
     process, so no normalization is needed; the >= 2x speedup bar
     binds only when the artifact was generated on a machine with >= 4
     cores — the "cores" field records the hardware so the validator
     knows.

   Schema (validated by bench/smoke.exe --validate-json):
     { "schema": "gncg-bench-9",
       "full": <bool>, "cores": <int>,
       "baseline": { "op", "n", "ns_per_op", "source" },
       "calibration": { "rows": [ { "op", "ns_per_op",
                                    "bench8_ns_per_op" }, ... ],
                        "drift": <float> },
       "seq_n100_vs_bench8": <float>,
       "seq_n100_vs_bench8_normalized": <float>,
       "speculative_speedup_n1000": <float>,   (* 0.0 unless full *)
       "results": [ { "op", "engine", "domains", "n", "ns_per_op",
                      "ops_per_s", "alloc_bytes_per_op" }, ... ],
       "counters": { "<metric>": <int>, ... } }

   Usage:
     dune exec bench/bench9.exe -- --out BENCH_9.json        # full artifact
     dune exec bench/bench9.exe -- --quick --out /tmp/b.json # CI (n=100 only)
     dune exec bench/bench9.exe -- --domains 1,2,4 *)

module Random_host = Gncg_metric.Random_host
module Json = Gncg_runs.Json
module Engine = Gncg.Dynamics.Engine
module Exec = Gncg_util.Exec

let schema_name = "gncg-bench-9"

(* The dense dynamics-converge n=100 results row of the committed
   BENCH_8.json: the sequential path through the redesigned Config/Engine
   API must stay within 1.1x of it, after machine-drift normalization. *)
let bench8_dynamics_ns = 588042974.4720459

(* The dense n=1000 micro rows of the committed BENCH_8.json.  These
   kernels are untouched by the engine redesign, so re-measuring them
   isolates pure machine drift between the two artifacts. *)
let bench8_rowsum_ns = 3054.35528274305
let bench8_add_kernel_ns = 7685.12205398613

type cfg = {
  out : string option;
  domains : int list; (* speculative worker-domain counts to bench *)
  full : bool; (* full = includes the n=1000 speedup series *)
}

let default_cfg = { out = None; domains = [ 1; 2; 4 ]; full = true }

let usage () =
  prerr_endline "usage: bench9 [--out PATH] [--domains K1,K2,..] [--quick]";
  exit 2

let parse_cfg () =
  let rec go cfg = function
    | [] -> cfg
    | "--out" :: path :: rest -> go { cfg with out = Some path } rest
    | "--domains" :: spec :: rest ->
      let domains =
        String.split_on_char ',' spec
        |> List.map (fun s ->
               match int_of_string_opt (String.trim s) with
               | Some k when k >= 1 -> k
               | _ ->
                 prerr_endline ("bench9: bad --domains element " ^ s);
                 exit 2)
      in
      go { cfg with domains } rest
    | "--quick" :: rest -> go { cfg with full = false } rest
    | a :: _ ->
      prerr_endline ("bench9: unknown argument " ^ a);
      usage ()
  in
  go default_cfg (List.tl (Array.to_list Sys.argv))

(* ---------------------------------------------------------------- timing *)

let now = Unix.gettimeofday

let time_once f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Calibrated throughput for the drift micro kernels (same scheme as
   bench8: keep the timed region ~80ms). *)
let ns_per_op f =
  ignore (Sys.opaque_identity (f ()));
  let _, t1 = time_once f in
  let k = if t1 > 0.08 then 1 else int_of_float (0.08 /. Float.max t1 2e-8) in
  let k = max 1 (min k 5_000_000) in
  let t0 = now () in
  for _ = 1 to k do
    ignore (Sys.opaque_identity (f ()))
  done;
  (now () -. t0) /. float_of_int k *. 1e9

(* ------------------------------------------------------------------ rows *)

let results : Json.t list ref = ref []

let record ~op ~engine ~domains ~n ~ns ~alloc =
  Printf.printf "bench9: %-17s %-11s d=%d n=%-5d  %12.1f ns/op  %.1f MB alloc\n%!" op
    engine domains n ns (alloc /. 1e6);
  results :=
    Json.Obj
      [
        ("op", Json.Str op);
        ("engine", Json.Str engine);
        ("domains", Json.num_int domains);
        ("n", Json.num_int n);
        ("ns_per_op", Json.Num ns);
        ("ops_per_s", Json.Num (if ns > 0.0 then 1e9 /. ns else 0.0));
        ("alloc_bytes_per_op", Json.Num alloc);
      ]
      :: !results

(* ---------------------------------------------------------- calibration *)

(* Re-measures the BENCH_8 dense n=1000 rowsum / add-kernel rows — same
   host recipe (Prng 8 random recursive tree), same kernels, code paths
   this PR never touched — and reports the geometric-mean slowdown of
   this machine against the committed figures.  The n=100 anchor ratio
   is divided by this drift before the 1.1x bar applies. *)
let calibrate () =
  let n = 1_000 in
  let rng = Gncg_util.Prng.create 8 in
  let tree_geo = Random_host.tree_geometry rng ~n ~wmin:1.0 ~wmax:10.0 in
  let tree_graph =
    match tree_geo with
    | Gncg_metric.Geometry.Tree tr -> Gncg_metric.Tree_metric.graph tr
    | Gncg_metric.Geometry.Points _ ->
      prerr_endline "bench9: tree_geometry returned points";
      exit 1
  in
  let d = Gncg_graph.Distances.dense tree_graph in
  let prng = Gncg_util.Prng.create 77 in
  let pairs = 4096 in
  let us = Array.init pairs (fun _ -> Gncg_util.Prng.int prng n) in
  let vs =
    Array.init pairs (fun i ->
        let v = Gncg_util.Prng.int prng (n - 1) in
        if v >= us.(i) then v + 1 else v)
  in
  let cursor = ref 0 in
  let next () =
    let i = !cursor in
    cursor := (i + 1) land (pairs - 1);
    i
  in
  let rowsum_ns =
    ns_per_op (fun () -> Gncg_graph.Distances.dist_sum d us.(next ()))
  in
  let add_ns =
    ns_per_op (fun () ->
        let i = next () in
        Gncg_graph.Distances.dist_sum_with_edge d us.(i) vs.(i) 1.5)
  in
  let drift =
    sqrt ((rowsum_ns /. bench8_rowsum_ns) *. (add_ns /. bench8_add_kernel_ns))
  in
  Printf.printf "bench9: drift calibration rowsum %.1f ns (BENCH_8 %.1f), add-kernel \
                 %.1f ns (BENCH_8 %.1f) -> %.3fx\n%!"
    rowsum_ns bench8_rowsum_ns add_ns bench8_add_kernel_ns drift;
  let row op ns b8 =
    Json.Obj
      [
        ("op", Json.Str op); ("ns_per_op", Json.Num ns); ("bench8_ns_per_op", Json.Num b8);
      ]
  in
  let json =
    Json.Obj
      [
        ( "rows",
          Json.List
            [ row "rowsum" rowsum_ns bench8_rowsum_ns;
              row "add-kernel" add_ns bench8_add_kernel_ns ] );
        ("drift", Json.Num drift);
      ]
  in
  (drift, json)

(* ------------------------------------------------------------- dynamics *)

let converge engine host start =
  match
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:500_000 ~evaluator:`Incremental ~engine
         Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
  with
  | Gncg.Dynamics.Converged { profile; _ } -> profile
  | _ ->
    prerr_endline "bench9: macro dynamics did not converge";
    exit 1

(* One timed converge: wall clock plus the GC allocation delta of the
   driving domain (worker-domain allocations are not in the figure —
   OCaml 5 reports per-domain).  The main-domain diet is the audited
   one: batch formation, the commit walk, and the commit log must not
   out-allocate the sequential loop's own evaluation path. *)
let timed_converge engine host start =
  let a0 = Gc.allocated_bytes () in
  let _, s = time_once (fun () -> ignore (Sys.opaque_identity (converge engine host start))) in
  let alloc = Gc.allocated_bytes () -. a0 in
  (s *. 1e9, alloc)

(* The engine grid for one instance size: the sequential baseline, the
   one-domain speculative protocol, then the requested fan-outs. *)
let engines cfg =
  ("sequential", Engine.sequential, 1)
  :: List.map
       (fun d ->
         ("speculative", Engine.speculative ~exec:(Exec.par ~domains:d ()) (), d))
       cfg.domains

(* Replays the exact BENCH_8 dense macro instance (itself the BENCH_4
   instance): median of [runs] converges per engine. *)
let bench_n100 cfg =
  let seq_ns = ref 0.0 in
  List.iter
    (fun (label, engine, domains) ->
      let rng = Gncg_util.Prng.create 1 in
      let host =
        Gncg.Host.make ~alpha:2.0 (Random_host.uniform_metric rng ~n:100 ~lo:1.0 ~hi:6.0)
      in
      let start = Gncg_workload.Instances.random_profile rng host in
      let runs = 5 in
      let samples = List.init runs (fun _ -> timed_converge engine host start) in
      let ns = List.nth (List.sort Float.compare (List.map fst samples)) (runs / 2) in
      let alloc = List.nth (List.sort Float.compare (List.map snd samples)) (runs / 2) in
      if label = "sequential" then seq_ns := ns;
      record ~op:"dynamics-converge" ~engine:label ~domains ~n:100 ~ns ~alloc)
    (engines cfg);
  !seq_ns

(* The BENCH_8 n=1000 tree-metric host (geometry attached, mutating
   engine falls back to dense): one converge per engine — each run is
   minutes, and the engines produce identical outcomes anyway. *)
let bench_n1000 cfg =
  let n = 1_000 in
  let seq_ns = ref 0.0 and best_spec_ns = ref Float.infinity in
  List.iter
    (fun (label, engine, domains) ->
      let rng = Gncg_util.Prng.create 2 in
      let metric, geometry = Random_host.tree_metric rng ~n ~wmin:1.0 ~wmax:10.0 in
      let host = Gncg.Host.make ~geometry ~alpha:2.0 metric in
      let start = Gncg_workload.Instances.random_profile rng host in
      Printf.printf "bench9: dynamics-converge n=1000 %s d=%d (1 run)...\n%!" label
        domains;
      let ns, alloc = timed_converge engine host start in
      if label = "sequential" then seq_ns := ns
      else if ns < !best_spec_ns then best_spec_ns := ns;
      record ~op:"dynamics-converge" ~engine:label ~domains ~n ~ns ~alloc)
    (engines cfg);
  if Float.is_finite !best_spec_ns && !best_spec_ns > 0.0 then
    !seq_ns /. !best_spec_ns
  else 0.0

(* ------------------------------------------------- instrumented snapshot *)

(* Outside every timed section: profiling on, one small speculative
   converge so the dynamics.speculative_* counters in the snapshot are
   live evidence of the commit protocol running. *)
let counter_snapshot () =
  let was = Gncg_obs.Obs.profiling () in
  Gncg_obs.Obs.set_profiling true;
  Gncg_obs.Obs.reset ();
  let rng = Gncg_util.Prng.create 9 in
  let host =
    Gncg.Host.make ~alpha:2.0 (Random_host.uniform_metric rng ~n:32 ~lo:1.0 ~hi:6.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  ignore (converge (Engine.speculative ~exec:(Exec.par ~domains:2 ()) ()) host start);
  let snap = Gncg_obs.Obs.snapshot () in
  Gncg_obs.Obs.set_profiling was;
  List.map (fun (name, v) -> (name, Json.num_int v)) snap.Gncg_obs.Metric.counters

(* ------------------------------------------------------------------ main *)

let () =
  let cfg = parse_cfg () in
  let cores = Domain.recommended_domain_count () in
  (* The anchor replay runs first, against a fresh heap, for the same
     reason bench8 orders it first: heap growth taxes the
     allocation-heavy macro. *)
  let seq_n100_ns = bench_n100 cfg in
  let drift, calibration = calibrate () in
  let speedup_n1000 = if cfg.full then bench_n1000 cfg else 0.0 in
  let counters = counter_snapshot () in
  let ratio = seq_n100_ns /. bench8_dynamics_ns in
  let normalized = ratio /. drift in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str schema_name);
        ("generated_by", Json.Str "bench/bench9.exe");
        ("full", Json.Bool cfg.full);
        ("cores", Json.num_int cores);
        ( "baseline",
          Json.Obj
            [
              ("op", Json.Str "dynamics-converge");
              ("n", Json.num_int 100);
              ("ns_per_op", Json.Num bench8_dynamics_ns);
              ("source", Json.Str "BENCH_8.json");
            ] );
        ("calibration", calibration);
        ("seq_n100_vs_bench8", Json.Num ratio);
        ("seq_n100_vs_bench8_normalized", Json.Num normalized);
        ("speculative_speedup_n1000", Json.Num speedup_n1000);
        ("results", Json.List (List.rev !results));
        ("counters", Json.Obj counters);
      ]
  in
  (match cfg.out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "bench9: wrote %s\n%!" path
  | None -> print_endline (Json.to_string doc));
  Printf.printf
    "bench9: sequential dynamics n=100 %.3f s (%.3fx of BENCH_8 raw, %.3fx \
     drift-normalized)\n%!"
    (seq_n100_ns /. 1e9) ratio normalized;
  if cfg.full then
    Printf.printf "bench9: n=1000 speculative speedup %.2fx (%d cores)\n%!" speedup_n1000
      cores
