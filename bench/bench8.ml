(* BENCH_8.json: the O(n²) distance wall, measured.

   Every distance backend behind the DISTANCES seam is benched at
   n ∈ {10³, 10⁴, 10⁵} on the same implicit hosts (a random recursive
   tree; a uniform R² point box):

     build        construct the backend from the host description
     query        random-pair distance gets
     rowsum       dist_sum (Σ_x d(u,x) — the cost-function kernel)
     add-kernel   dist_sum_with_edge (the what-if addition kernel)
     nearest-eval k-d nearest neighbour + one exact add kernel (rd only)

   Dense and mmap must tabulate all 8n² bytes, so they are gated by a
   memory ceiling (--mem-limit, default 2 GB — the CI `ulimit -v`):
   above it the row moves to "skipped" with the estimate as the reason;
   an actual allocation failure is caught and recorded as out-of-memory.
   The tree and R^d oracles carry O(n log n) / O(n·d) state and complete
   every n — that asymmetry is the point of the artifact.

   Two macro rows anchor against history: dynamics-converge at n=100 on
   the default dense backend replays the exact BENCH_4 instance (the
   committed ratio must stay within 1.1x), and dynamics-converge at
   n=1000 (full mode) runs greedy response on a tree-metric host, where
   the mutating engine deliberately falls back from the read-only tree
   oracle to dense.

   Schema (validated by bench/smoke.exe --validate-json):
     { "schema": "gncg-bench-8",
       "full": <bool>, "mem_ceiling_bytes": <int>,
       "baseline": { "op", "n", "ns_per_op", "source" },
       "dense_dynamics_n100_vs_bench4": <float>,
       "results": [ { "op", "backend", "n", "ns_per_op", "ops_per_s",
                      "mem_bytes" }, ... ],
       "skipped": [ { "op", "backend", "n", "reason" }, ... ],
       "counters": { "<metric>": <int>, ... } }

   Usage:
     dune exec bench/bench8.exe -- --out BENCH_8.json        # full artifact
     dune exec bench/bench8.exe -- --quick --out /tmp/b.json # CI (n=1k+100k)
     dune exec bench/bench8.exe -- --ns 1000,10000 --mem-limit 4000000000 *)

module D = Gncg_graph.Distances
module Geometry = Gncg_metric.Geometry
module Random_host = Gncg_metric.Random_host
module Json = Gncg_runs.Json

let schema_name = "gncg-bench-8"

(* The dynamics-converge n=100 results row of the committed BENCH_4.json:
   the dense path through the new seam must stay within 1.1x of it. *)
let bench4_dynamics_ns = 606659173.9654541

type cfg = {
  out : string option;
  ns : int list;
  mem_limit : int;
  full : bool; (* full = includes the n=1000 dynamics macro *)
}

let default_cfg =
  { out = None; ns = [ 1_000; 10_000; 100_000 ]; mem_limit = 2_000_000_000; full = true }

let usage () =
  prerr_endline
    "usage: bench8 [--out PATH] [--ns N1,N2,..] [--mem-limit BYTES] [--quick]";
  exit 2

let parse_cfg () =
  let rec go cfg = function
    | [] -> cfg
    | "--out" :: path :: rest -> go { cfg with out = Some path } rest
    | "--ns" :: spec :: rest ->
      let ns =
        String.split_on_char ',' spec
        |> List.map (fun s ->
               match int_of_string_opt (String.trim s) with
               | Some k when k >= 2 -> k
               | _ ->
                 prerr_endline ("bench8: bad --ns element " ^ s);
                 exit 2)
      in
      go { cfg with ns } rest
    | "--mem-limit" :: v :: rest ->
      (match int_of_string_opt v with
      | Some b when b > 0 -> go { cfg with mem_limit = b } rest
      | _ ->
        prerr_endline ("bench8: --mem-limit expects positive bytes, got " ^ v);
        exit 2)
    | "--quick" :: rest -> go { cfg with ns = [ 1_000; 100_000 ]; full = false } rest
    | a :: _ ->
      prerr_endline ("bench8: unknown argument " ^ a);
      usage ()
  in
  go default_cfg (List.tl (Array.to_list Sys.argv))

(* ---------------------------------------------------------------- timing *)

let now = Unix.gettimeofday

let time_once f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Calibrated throughput: pick an iteration count that keeps the timed
   region ~80ms so O(1) tree kernels and O(n) dense kernels are measured
   with comparable clock resolution. *)
let ns_per_op f =
  ignore (Sys.opaque_identity (f ()));
  let _, t1 = time_once f in
  let k = if t1 > 0.08 then 1 else int_of_float (0.08 /. Float.max t1 2e-8) in
  let k = max 1 (min k 5_000_000) in
  let t0 = now () in
  for _ = 1 to k do
    ignore (Sys.opaque_identity (f ()))
  done;
  (now () -. t0) /. float_of_int k *. 1e9

(* ------------------------------------------------------------------ rows *)

let results : Json.t list ref = ref []
let skipped : Json.t list ref = ref []

let record ~op ~backend ~n ~ns ~mem =
  Printf.printf "bench8: %-12s %-5s n=%-6d  %12.1f ns/op\n%!" op backend n ns;
  results :=
    Json.Obj
      [
        ("op", Json.Str op);
        ("backend", Json.Str backend);
        ("n", Json.num_int n);
        ("ns_per_op", Json.Num ns);
        ("ops_per_s", Json.Num (if ns > 0.0 then 1e9 /. ns else 0.0));
        ("mem_bytes", Json.num_int mem);
      ]
      :: !results

let skip ~op ~backend ~n ~reason =
  Printf.printf "bench8: %-12s %-5s n=%-6d  skipped (%s)\n%!" op backend n reason;
  skipped :=
    Json.Obj
      [
        ("op", Json.Str op);
        ("backend", Json.Str backend);
        ("n", Json.num_int n);
        ("reason", Json.Str reason);
      ]
      :: !skipped

(* ---------------------------------------------------------- the backends *)

(* All backends at size n answer distances of the same tree host, except
   rd which answers its own point-box host — throughput is comparable,
   values are checked elsewhere (test_distances). *)
let backend_builders cfg ~n =
  let rng = Gncg_util.Prng.create 8 in
  let tree_geo = Random_host.tree_geometry rng ~n ~wmin:1.0 ~wmax:10.0 in
  let tree_graph =
    match tree_geo with
    | Geometry.Tree tr -> Gncg_metric.Tree_metric.graph tr
    | Geometry.Points _ -> assert false
  in
  let rd_geo = Random_host.euclidean_geometry rng ~n ~d:2 ~lo:0.0 ~hi:100.0 in
  let dense_bytes = 8 * n * n in
  let gate name build =
    if dense_bytes > cfg.mem_limit then
      Error (Printf.sprintf "estimated 8n^2 = %d bytes exceeds mem ceiling" dense_bytes)
    else begin
      ignore name;
      Ok build
    end
  in
  [
    ("tree", Ok (fun () -> Geometry.to_distances tree_geo));
    ("rd", Ok (fun () -> Geometry.to_distances rd_geo));
    ("dense", gate "dense" (fun () -> D.dense tree_graph));
    ("mmap", gate "mmap" (fun () -> D.mmap tree_graph));
  ]

let all_ops = [ "build"; "query"; "rowsum"; "add-kernel"; "nearest-eval" ]

let bench_backend ~n name d ~build_ns =
  let mem = D.memory_bytes d in
  record ~op:"build" ~backend:name ~n ~ns:build_ns ~mem;
  let rng = Gncg_util.Prng.create 77 in
  let pairs = 4096 in
  let us = Array.init pairs (fun _ -> Gncg_util.Prng.int rng n) in
  let vs =
    Array.init pairs (fun i ->
        let v = Gncg_util.Prng.int rng (n - 1) in
        if v >= us.(i) then v + 1 else v)
  in
  let cursor = ref 0 in
  let next () =
    let i = !cursor in
    cursor := (i + 1) land (pairs - 1);
    i
  in
  record ~op:"query" ~backend:name ~n ~mem
    ~ns:
      (ns_per_op (fun () ->
           let i = next () in
           D.distance d us.(i) vs.(i)));
  record ~op:"rowsum" ~backend:name ~n ~mem
    ~ns:(ns_per_op (fun () -> D.dist_sum d us.(next ())));
  record ~op:"add-kernel" ~backend:name ~n ~mem
    ~ns:
      (ns_per_op (fun () ->
           let i = next () in
           D.dist_sum_with_edge d us.(i) vs.(i) 1.5));
  if name = "rd" then
    record ~op:"nearest-eval" ~backend:name ~n ~mem
      ~ns:
        (ns_per_op (fun () ->
             let u = us.(next ()) in
             match D.nearest d u with
             | Some (v, w) -> D.dist_sum_with_edge d u v w
             | None -> 0.0))

let run_scaling cfg =
  List.iter
    (fun n ->
      List.iter
        (fun (name, builder) ->
          match builder with
          | Error reason ->
            List.iter
              (fun op ->
                if op <> "nearest-eval" then skip ~op ~backend:name ~n ~reason)
              all_ops
          | Ok build -> (
            match time_once build with
            | d, build_s -> bench_backend ~n name d ~build_ns:(build_s *. 1e9)
            | exception Out_of_memory ->
              List.iter
                (fun op ->
                  if op <> "nearest-eval" then
                    skip ~op ~backend:name ~n ~reason:"out-of-memory")
                all_ops))
        (backend_builders cfg ~n))
    cfg.ns

(* ------------------------------------------------------------- dynamics *)

let converge host start =
  match
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:500_000 ~evaluator:`Incremental
         Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
  with
  | Gncg.Dynamics.Converged { profile; _ } -> profile
  | _ ->
    prerr_endline "bench8: macro dynamics did not converge";
    exit 1

(* The exact BENCH_4 macro instance, replayed through the seam. *)
let dynamics_n100 () =
  let rng = Gncg_util.Prng.create 1 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Random_host.uniform_metric rng ~n:100 ~lo:1.0 ~hi:6.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  Printf.printf "bench8: dynamics-converge n=100 dense (5 runs)...\n%!";
  let samples =
    List.init 5 (fun _ -> snd (time_once (fun () -> converge host start)))
  in
  let median = List.nth (List.sort Float.compare samples) 2 *. 1e9 in
  record ~op:"dynamics-converge" ~backend:"dense" ~n:100 ~ns:median
    ~mem:(8 * 100 * 100);
  median

(* Greedy response at n=1000 on a tree-metric host: the geometry is
   attached, but the mutating engine requires a writable backend, so
   Net_state falls back from the tree oracle to dense — the fallback
   counter in the snapshot below is the evidence. *)
let dynamics_n1000 () =
  let n = 1_000 in
  let rng = Gncg_util.Prng.create 2 in
  let metric, geometry = Random_host.tree_metric rng ~n ~wmin:1.0 ~wmax:10.0 in
  let host = Gncg.Host.make ~geometry ~alpha:2.0 metric in
  let start = Gncg_workload.Instances.random_profile rng host in
  Printf.printf "bench8: dynamics-converge n=1000 (1 run)...\n%!";
  let _, s = time_once (fun () -> converge host start) in
  record ~op:"dynamics-converge" ~backend:"dense" ~n ~ns:(s *. 1e9) ~mem:(8 * n * n)

(* ------------------------------------------------- instrumented snapshot *)

(* Outside every timed section: profiling on, touch each backend once, and
   embed the counter snapshot as evidence the seam's probes fire. *)
let counter_snapshot () =
  let was = Gncg_obs.Obs.profiling () in
  Gncg_obs.Obs.set_profiling true;
  Gncg_obs.Obs.reset ();
  let n = 64 in
  let rng = Gncg_util.Prng.create 9 in
  let tree_geo = Random_host.tree_geometry rng ~n ~wmin:1.0 ~wmax:4.0 in
  let rd_geo = Random_host.euclidean_geometry rng ~n ~d:2 ~lo:0.0 ~hi:10.0 in
  let tg =
    match tree_geo with
    | Geometry.Tree tr -> Gncg_metric.Tree_metric.graph tr
    | Geometry.Points _ -> assert false
  in
  List.iter
    (fun d ->
      ignore (D.distance d 0 (n - 1));
      ignore (D.dist_sum d 0);
      ignore (D.dist_sum_with_edge d 0 1 1.5);
      ignore (D.nearest d 0);
      ignore (D.selfcheck_now d))
    [ Geometry.to_distances tree_geo; Geometry.to_distances rd_geo; D.mmap tg ];
  (let md = D.mmap tg in
   let v =
     let rec find v =
       if v > 0 && not (Gncg_graph.Wgraph.has_edge tg 0 v) then v else find (v - 1)
     in
     find (n - 1)
   in
   ignore (D.add_edge md 0 v 1.0);
   ignore (D.remove_edge md 0 v));
  (* One mutating dynamics state on a geometric host: exercises the
     require_mutable fallback counter. *)
  (let metric, geometry = Random_host.tree_metric rng ~n:16 ~wmin:1.0 ~wmax:4.0 in
   let host = Gncg.Host.make ~geometry ~alpha:2.0 metric in
   let start = Gncg_workload.Instances.random_profile rng host in
   ignore (converge host start));
  let snap = Gncg_obs.Obs.snapshot () in
  Gncg_obs.Obs.set_profiling was;
  List.map (fun (name, v) -> (name, Json.num_int v)) snap.Gncg_obs.Metric.counters

(* ------------------------------------------------------------------ main *)

let () =
  let cfg = parse_cfg () in
  (* The BENCH_4 anchor replay runs first, against a fresh heap: the
     scaling series grows the major heap by gigabytes (dense/mmap at
     n=10⁴), which taxes this allocation-heavy macro by ~30% if it runs
     after. *)
  let n100_ns = dynamics_n100 () in
  run_scaling cfg;
  if cfg.full then dynamics_n1000 ();
  let counters = counter_snapshot () in
  let ratio = n100_ns /. bench4_dynamics_ns in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str schema_name);
        ("generated_by", Json.Str "bench/bench8.exe");
        ("full", Json.Bool cfg.full);
        ("mem_ceiling_bytes", Json.num_int cfg.mem_limit);
        ( "baseline",
          Json.Obj
            [
              ("op", Json.Str "dynamics-converge");
              ("n", Json.num_int 100);
              ("ns_per_op", Json.Num bench4_dynamics_ns);
              ("source", Json.Str "BENCH_4.json");
            ] );
        ("dense_dynamics_n100_vs_bench4", Json.Num ratio);
        ("results", Json.List (List.rev !results));
        ("skipped", Json.List (List.rev !skipped));
        ("counters", Json.Obj counters);
      ]
  in
  (match cfg.out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "bench8: wrote %s\n%!" path
  | None -> print_endline (Json.to_string doc));
  Printf.printf "bench8: dense dynamics n=100 %.3f s (%.3fx of BENCH_4)\n%!"
    (n100_ns /. 1e9) ratio
