(* BENCH_10.json: serve throughput with the supervised worker pool.

   The bench7 harness — 8 concurrent clients over a Unix-domain socket,
   mixed ping / eq-check / best-response traffic — replayed against
   three daemon shapes:

     workers=0   the in-process executor (the bench7 configuration:
                 crash isolation off, the baseline this artifact
                 descends from)
     workers=1   one supervised worker process: what the supervision
                 machinery (heartbeats, wire round-trip, monitor)
                 costs when it buys no parallelism
     workers=4   four worker processes answering queries concurrently —
                 the configuration that should beat the in-process
                 executor's tail latency, because a slow query no
                 longer convoys the whole queue behind one executor

   Every row measures the same request mix end to end (queue wait
   included), so the rows are directly comparable: the only variable is
   the execution substrate behind the session.  The headline figure is
   the workers=4 fleet p99 against the committed BENCH_7 p99 — the
   pool must not tax the tail it exists to protect.  Cross-artifact
   wall-clock is only meaningful on comparable hardware, so the bar
   binds only on full artifacts generated with >= 4 cores (the "cores"
   field records the hardware, mirroring bench9).

   Schema (validated by bench/smoke.exe --validate-json):
     { "schema": "gncg-bench-10",
       "full": <bool>, "cores": <int>, "clients": 8,
       "bench7_p99_ns": <the committed BENCH_7 baseline>,
       "p99_workers4_vs_bench7": <row p99 / baseline>,
       "rows": [ { "workers": <int>, "requests": <int>,
                   "elapsed_s": ..., "requests_per_s": ...,
                   "latency_ns": {"p50","p90","p99","max"},
                   "results": [ {"op","count","ns_per_op",
                                 "p50_ns","p99_ns"}, ... ],
                   "pool": {"spawns_seen": <bool>, "restarts": <int>,
                            "breaker_open": <bool>} | null }, ... ],
       "counters": { "<metric>": <int>, ... } }

   Usage:
     dune exec bench/bench10.exe -- --out BENCH_10.json        # full
     dune exec bench/bench10.exe -- --quick --out /tmp/b.json  # CI *)

module P = Gncg_serve.Protocol
module Session = Gncg_serve.Session
module Server = Gncg_serve.Server
module Client = Gncg_serve.Client
module Pool = Gncg_serve.Pool
module Json = Gncg_runs.Json

let schema_name = "gncg-bench-10"

(* The fleet-level p99 of the committed BENCH_7.json (8 clients,
   in-process executor): the tail-latency baseline workers=4 is held
   against. *)
let bench7_p99_ns = 10420083.999633789

let clients = 8
let worker_levels = [ 0; 1; 4 ]
let model = Gncg_workload.Instances.Euclid { norm = L2; d = 2; box = 100.0 }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench10: " ^ m); exit 1) fmt

type cfg = { out : string option; full : bool }

let parse_cfg () =
  let rec go cfg = function
    | [] -> cfg
    | "--out" :: path :: rest -> go { cfg with out = Some path } rest
    | "--quick" :: rest -> go { cfg with full = false } rest
    | a :: _ ->
      prerr_endline ("bench10: unknown argument " ^ a);
      prerr_endline "usage: bench10 [--out PATH] [--quick]";
      exit 2
  in
  go { out = None; full = true } (List.tl (Array.to_list Sys.argv))

(* The pool re-executes the CLI as `gncg worker`; bench10.exe sits at
   _build/default/bench/, the CLI two doors down.  The @bench-serve-pool
   rule declares the dependency; a bare `dune exec bench/bench10.exe`
   needs `dune build bin/gncg_cli.exe` first. *)
let gncg_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "gncg_cli.exe")

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ok = function
  | Ok v -> v
  | Error e -> fail "%s" (Gncg_util.Gncg_error.to_string e)

let run_query c job =
  let id, _attached = ok (Client.submit c job) in
  ignore (ok (Client.watch c ~on_event:ignore id))

let client_loop ~iterations ~path ~record i =
  let c = ok (Client.connect_unix ~path) in
  for k = 0 to iterations - 1 do
    let seed = 1 + ((i + (clients * k)) mod 32) in
    let (), ping_s = time (fun () -> ignore (ok (Client.ping c))) in
    record "ping" ping_s;
    let (), eq_s =
      time (fun () ->
          run_query c
            (P.Eq_check
               {
                 model;
                 n = 6;
                 alpha = 2.0;
                 seed;
                 check = Gncg.Equilibrium.GE;
                 stabilize = false;
               }))
    in
    record "eq-check" eq_s;
    let (), br_s =
      time (fun () ->
          run_query c
            (P.Best_response { model; n = 6; alpha = 2.0; seed; agent = k mod 6 }))
    in
    record "best-response" br_s
  done;
  Client.close c

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

let ns s = s *. 1e9

(* One daemon shape measured end to end: fresh session, own socket,
   warm-up pass (primes the per-worker host caches so the measured run
   sees steady state), then the 8-client fleet. *)
let measure ~iterations workers =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gncg-bench10-%d-w%d" (Unix.getpid ()) workers)
  in
  let path = dir ^ ".sock" in
  let session =
    if workers = 0 then Session.create ~state_dir:dir ~domains:2 ()
    else
      Session.create ~state_dir:dir ~workers
        ~pool_spawn:(Pool.spawn_exec [| gncg_exe; "worker" |])
        ()
  in
  let server = Thread.create (fun () -> Server.serve_unix session ~path) () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Sys.file_exists path) do
    if Unix.gettimeofday () > deadline then fail "daemon socket never appeared";
    Thread.delay 0.01
  done;
  client_loop ~iterations ~path ~record:(fun _ _ -> ()) 0;
  let mutex = Mutex.create () in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 4 in
  let record op s =
    Mutex.lock mutex;
    (match Hashtbl.find_opt samples op with
    | Some l -> l := s :: !l
    | None -> Hashtbl.replace samples op (ref [ s ]));
    Mutex.unlock mutex
  in
  let (), elapsed =
    time (fun () ->
        let threads =
          List.init clients (fun i ->
              Thread.create (client_loop ~iterations ~path ~record) i)
        in
        List.iter Thread.join threads)
  in
  let pool_json =
    match Session.pool_status session with
    | None -> Json.Null
    | Some status ->
      let restarts =
        match Result.bind (Json.member "restarts" status) Json.get_int with
        | Ok r -> r
        | Error _ -> -1
      in
      let breaker =
        match Result.bind (Json.member "breaker_open" status) Json.get_bool with
        | Ok b -> b
        | Error _ -> true
      in
      Json.Obj
        [
          ("spawns_seen", Json.Bool true);
          ("restarts", Json.num_int restarts);
          ("breaker_open", Json.Bool breaker);
        ]
  in
  (let c = ok (Client.connect_unix ~path) in
   ok (Client.shutdown c);
   Client.close c);
  Thread.join server;
  let all = Hashtbl.fold (fun _ l acc -> !l @ acc) samples [] |> Array.of_list in
  Array.sort compare all;
  let total = Array.length all in
  if total <> clients * iterations * 3 then
    fail "workers=%d: expected %d requests, measured %d" workers
      (clients * iterations * 3)
      total;
  let p99 = percentile all 0.99 in
  Printf.printf
    "bench10: workers=%d  %d requests in %.2fs (%.0f req/s)  p50 %.2fms  p99 %.2fms\n%!"
    workers total elapsed
    (float_of_int total /. elapsed)
    (percentile all 0.50 *. 1e3)
    (p99 *. 1e3);
  let op_row op =
    let l = Array.of_list !(Hashtbl.find samples op) in
    Array.sort compare l;
    let mean = Array.fold_left ( +. ) 0.0 l /. float_of_int (Array.length l) in
    Json.Obj
      [
        ("op", Json.Str op);
        ("count", Json.num_int (Array.length l));
        ("ns_per_op", Json.Num (ns mean));
        ("p50_ns", Json.Num (ns (percentile l 0.50)));
        ("p99_ns", Json.Num (ns (percentile l 0.99)));
      ]
  in
  let row =
    Json.Obj
      [
        ("workers", Json.num_int workers);
        ("requests", Json.num_int total);
        ("elapsed_s", Json.Num elapsed);
        ("requests_per_s", Json.Num (float_of_int total /. elapsed));
        ( "latency_ns",
          Json.Obj
            [
              ("p50", Json.Num (ns (percentile all 0.50)));
              ("p90", Json.Num (ns (percentile all 0.90)));
              ("p99", Json.Num (ns p99));
              ("max", Json.Num (ns all.(total - 1)));
            ] );
        ("results", Json.List (List.map op_row [ "ping"; "eq-check"; "best-response" ]));
        ("pool", pool_json);
      ]
  in
  (row, ns p99)

let () =
  let cfg = parse_cfg () in
  if not (Sys.file_exists gncg_exe) then
    fail "gncg CLI not found at %s (run `dune build bin/gncg_cli.exe` first)" gncg_exe;
  let iterations = if cfg.full then 20 else 5 in
  let was = Gncg_obs.Obs.profiling () in
  Gncg_obs.Obs.set_profiling true;
  Gncg_obs.Obs.reset ();
  let rows, p99_w4 =
    List.fold_left
      (fun (rows, p99_w4) w ->
        let row, p99 = measure ~iterations w in
        (row :: rows, if w = 4 then p99 else p99_w4))
      ([], 0.0) worker_levels
  in
  let rows = List.rev rows in
  let snap = Gncg_obs.Obs.snapshot () in
  Gncg_obs.Obs.set_profiling was;
  let counters =
    List.map (fun (name, v) -> (name, Json.num_int v)) snap.Gncg_obs.Metric.counters
  in
  let cores = Domain.recommended_domain_count () in
  let ratio = p99_w4 /. bench7_p99_ns in
  Printf.printf "bench10: workers=4 p99 %.3fx vs committed BENCH_7 (%d cores)\n%!" ratio
    cores;
  let doc =
    Json.Obj
      [
        ("schema", Json.Str schema_name);
        ("generated_by", Json.Str "bench/bench10.exe");
        ("full", Json.Bool cfg.full);
        ("cores", Json.num_int cores);
        ("clients", Json.num_int clients);
        ("bench7_p99_ns", Json.Num bench7_p99_ns);
        ("p99_workers4_vs_bench7", Json.Num ratio);
        ("rows", Json.List rows);
        ("counters", Json.Obj counters);
      ]
  in
  match cfg.out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "bench10: wrote %s\n%!" path
  | None -> print_endline (Json.to_string doc)
