(* Bechamel timing benches: one Test.make per experiment family, measuring
   the engine primitive that dominates that experiment. *)

open Bechamel
open Toolkit

let prepared () =
  let rng = Gncg_util.Prng.create 1 in
  let one_two_host n = Gncg.Host.make ~alpha:0.8 (Gncg_metric.One_two.random rng ~n ~p_one:0.5) in
  let metric_host n =
    Gncg.Host.make ~alpha:2.0 (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:6.0)
  in
  let host30 = metric_host 30 in
  let profile30 = Gncg_workload.Instances.random_profile rng host30 in
  let graph30 = Gncg.Network.graph host30 profile30 in
  let host6 = metric_host 6 in
  let host200 = metric_host 200 in
  let graph200 =
    Gncg.Network.graph host200 (Gncg_workload.Instances.random_profile rng host200)
  in
  let host10 = metric_host 10 in
  let profile10 = Gncg_workload.Instances.random_profile rng host10 in
  let ge_of host start =
    match
      Gncg.Dynamics.run
        (Gncg.Dynamics.Config.make ~max_steps:50_000 ~evaluator:`Incremental
           Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
        host start
    with
    | Gncg.Dynamics.Converged { profile; _ } -> profile
    | _ -> start
  in
  let host100 = metric_host 100 in
  let start100 = Gncg_workload.Instances.random_profile rng host100 in
  let ge100 = ge_of host100 start100 in
  let host40 = metric_host 40 in
  let ge40 = ge_of host40 (Gncg_workload.Instances.random_profile rng host40) in
  let host12_12 = one_two_host 40 in
  let tree_host =
    Gncg_constructions.Thm15_tree_star.host ~alpha:4.0 ~n:32
  in
  let tree_ne = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:4.0 ~n:32 in
  let cross_host = Gncg_constructions.Thm19_cross.host ~alpha:2.0 ~d:8 in
  let cross_ne = Gncg_constructions.Thm19_cross.ne_profile ~alpha:2.0 ~d:8 in
  let umfl, _ = Gncg.Best_response.umfl_instance host10 profile10 0 in
  [
    (* E1/E16: Algorithm 1 on 1-2 hosts. *)
    Test.make ~name:"e1_e16/algorithm-1 (n=40)" (Staged.stage (fun () ->
        ignore (Gncg.Social_optimum.algorithm_one host12_12)));
    (* E2: social cost of the Thm 8 equilibrium (APSP-dominated). *)
    Test.make ~name:"e2/social-cost thm8 (N=5)" (Staged.stage (fun () ->
        let h = Gncg_constructions.Thm8_onetwo.host Alpha_one ~alpha:1.0 ~nb_centers:5 ~nb_leaves:5 in
        let s = Gncg_constructions.Thm8_onetwo.ne_profile Alpha_one ~nb_centers:5 ~nb_leaves:5 in
        ignore (Gncg.Cost.social_cost h s)));
    (* E3: one greedy response round on a 1-2 host. *)
    Test.make ~name:"e3/greedy best-move (n=40)" (Staged.stage (fun () ->
        let s = Gncg.Strategy.star 40 ~center:0 in
        ignore (Gncg.Greedy.best_move host12_12 s ~agent:1)));
    (* E4/E5: tree-star cost evaluation. *)
    Test.make ~name:"e4_e5/social-cost thm15 (n=32)" (Staged.stage (fun () ->
        ignore (Gncg.Cost.social_cost tree_host tree_ne)));
    (* E6-E8: geometric equilibrium evaluation. *)
    Test.make ~name:"e6_e8/social-cost cross (d=8)" (Staged.stage (fun () ->
        ignore (Gncg.Cost.social_cost cross_host cross_ne)));
    (* E10: one exact best-response (branch & bound over UMFL). *)
    Test.make ~name:"e10/exact best-response (n=10)" (Staged.stage (fun () ->
        ignore (Gncg.Best_response.exact host10 profile10 3)));
    (* E11/E12: UMFL local search. *)
    Test.make ~name:"e11_e12/umfl local-search (n=10)" (Staged.stage (fun () ->
        ignore (Gncg.Facility_location.local_search umfl)));
    (* E13-E15: APSP on a built network. *)
    Test.make ~name:"e13_e15/apsp (n=30)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp graph30)));
    (* Substrate: greedy spanner construction. *)
    Test.make ~name:"substrate/greedy 2-spanner (n=30)" (Staged.stage (fun () ->
        ignore
          (Gncg_graph.Spanner.greedy 30 (fun u v -> Gncg.Host.weight host30 u v) 2.0)));
    (* Substrate: MST of the host. *)
    Test.make ~name:"substrate/prim mst (n=30)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Mst.prim_complete 30 (fun u v -> Gncg.Host.weight host30 u v))));
    (* Ablation: reference vs incremental move evaluation. *)
    Test.make ~name:"ablation/greedy best-move reference (n=30)" (Staged.stage (fun () ->
        ignore (Gncg.Greedy.best_move host30 profile30 ~agent:3)));
    Test.make ~name:"ablation/fast best-move incremental (n=30)" (Staged.stage (fun () ->
        ignore (Gncg.Fast_response.best_move host30 profile30 ~agent:3)));
    Test.make ~name:"ablation/batch add-gains (n=30)" (Staged.stage (fun () ->
        ignore (Gncg.Fast_response.round_add_gains host30 profile30)));
    (* Ablation: exact best response, branch & bound vs enumeration. *)
    Test.make ~name:"ablation/BR branch&bound (n=10)" (Staged.stage (fun () ->
        ignore (Gncg.Best_response.exact host10 profile10 5)));
    Test.make ~name:"ablation/BR enumeration (n=10)" (Staged.stage (fun () ->
        ignore (Gncg.Best_response.exact_enum host10 profile10 5)));
    (* Ablation: sequential vs multicore APSP — domain spawning costs
       ~100us, so the parallel variant only wins on larger graphs. *)
    Test.make ~name:"ablation/apsp sequential (n=30)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp graph30)));
    Test.make ~name:"ablation/apsp parallel (n=30)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp ~exec:Gncg_util.Exec.default graph30)));
    Test.make ~name:"ablation/apsp sequential (n=200)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp graph200)));
    Test.make ~name:"ablation/apsp parallel (n=200)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp ~exec:Gncg_util.Exec.default graph200)));
    (* Substrate: centrality and the dynamic distance matrix. *)
    Test.make ~name:"substrate/betweenness (n=30)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Betweenness.edge graph30)));
    Test.make ~name:"substrate/dist-matrix add-total (n=200)"
      (Staged.stage
         (let dm = Gncg_graph.Dist_matrix.of_graph graph200 in
          fun () -> ignore (Gncg_graph.Dist_matrix.total_with_edge_added dm 0 199 0.5)));
    (* Hot path: greedy response dynamics, reference (rebuild + Dijkstra
       per candidate) vs the incremental distance engine.  Same host,
       start profile and activation schedule; fixed step budget so the
       two measure identical work. *)
    Test.make ~name:"dynamics/greedy reference (n=100, 100 steps)" (Staged.stage (fun () ->
        ignore
          (Gncg.Dynamics.run
             (Gncg.Dynamics.Config.make ~max_steps:100 ~evaluator:`Reference
                Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
             host100 start100)));
    Test.make ~name:"dynamics/greedy incremental (n=100, 100 steps)" (Staged.stage (fun () ->
        ignore
          (Gncg.Dynamics.run
             (Gncg.Dynamics.Config.make ~max_steps:100 ~evaluator:`Incremental
                Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
             host100 start100)));
    (* Equilibrium verification: sequential vs domain-parallel per-agent
       scans.  [is_ge] is the polynomial scan; [is_ne] runs the exact
       (exponential) best-response oracle per agent, so it is benched at
       the largest n where that oracle is feasible. *)
    Test.make ~name:"equilibrium/is_ge sequential (n=100)" (Staged.stage (fun () ->
        ignore (Gncg.Equilibrium.is_ge host100 ge100)));
    Test.make ~name:"equilibrium/is_ge parallel (n=100)" (Staged.stage (fun () ->
        ignore (Gncg.Equilibrium.is_ge ~exec:Gncg_util.Exec.default host100 ge100)));
    Test.make ~name:"equilibrium/is_ne sequential (n=40)" (Staged.stage (fun () ->
        ignore (Gncg.Equilibrium.is_ne host40 ge40)));
    Test.make ~name:"equilibrium/is_ne parallel (n=40)" (Staged.stage (fun () ->
        ignore (Gncg.Equilibrium.is_ne ~exec:Gncg_util.Exec.default host40 ge40)));
    (* Incremental APSP maintenance: one edge flip (insert + delete, the
       net work of a dynamics step) vs recomputing APSP from scratch. *)
    Test.make ~name:"incr/edge flip update (n=200)"
      (Staged.stage
         (let incr = Gncg_graph.Incr_apsp.of_graph graph200 in
          let u, v =
            let g = Gncg_graph.Incr_apsp.graph incr in
            let rec pick u v =
              if not (Gncg_graph.Wgraph.has_edge g u v) then (u, v)
              else if v + 1 < 200 then pick u (v + 1)
              else pick (u + 1) (u + 2)
            in
            pick 0 1
          in
          let w = Gncg.Host.weight host200 u v in
          fun () ->
            ignore (Gncg_graph.Incr_apsp.add_edge incr u v w);
            ignore (Gncg_graph.Incr_apsp.remove_edge incr u v)));
    Test.make ~name:"incr/apsp rebuild (n=200)" (Staged.stage (fun () ->
        ignore (Gncg_graph.Dijkstra.apsp graph200)));
    (* Social optimum engines at test scale. *)
    Test.make ~name:"optimum/branch&bound (n=6)" (Staged.stage (fun () ->
        ignore (Gncg.Social_optimum.exact_bnb host6)));
    Test.make ~name:"optimum/greedy heuristic (n=30)" (Staged.stage (fun () ->
        ignore (Gncg.Social_optimum.greedy_heuristic host30)));
  ]

let run () =
  print_endline "\n=== Timings (Bechamel, monotonic clock, ns/run) ===";
  let tests = prepared () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"gncg" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Gncg_util.Tablefmt.print
    ~align:[ Gncg_util.Tablefmt.Left ]
    ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       sorted)
