(* Orchestration bench (`dune exec bench/orchestration.exe`): the
   work-stealing scheduler against static contiguous chunking on a
   deliberately heterogeneous alpha-sweep.

   Run times across alpha differ by orders of magnitude (small alpha:
   dense equilibria found in a handful of moves; large alpha: long
   add/delete/swap cascades), so static chunking strands every fast
   chunk behind the slowest one.  The bench reports wall clock for
   (a) sequential, (b) static chunks via Parallel.init, (c) the
   work-stealing scheduler, and hard-asserts that all three produce the
   same per-job results.  Speedups are hardware dependent (on a 1-core
   container all three are within noise); the equivalence assertions are
   the part CI would care about. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fail fmt =
  Printf.ksprintf (fun msg -> prerr_endline ("orchestration: " ^ msg); exit 1) fmt

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | "--domains" :: d :: _ -> (
    match int_of_string_opt d with
    | Some k when k >= 1 -> Gncg_util.Parallel.set_default_domains (Some k)
    | _ -> fail "--domains expects a positive integer, got %S" d)
  | _ -> ());
  let model = Gncg_workload.Instances.General { lo = 1.0; hi = 6.0 } in
  (* Heterogeneous on purpose: alpha spans two orders of magnitude and n
     two sizes, and the grid order (n-major) packs all slow jobs into the
     tail chunks — the adversarial case for static chunking. *)
  let config =
    Gncg_runs.Batch.config model ~ns:[ 12; 24 ] ~alphas:[ 0.5; 1.0; 2.0; 8.0; 32.0 ]
      ~seeds:[ 1; 2; 3 ]
  in
  let jobs = Gncg_runs.Batch.jobs config in
  let n_jobs = List.length jobs in
  let domains = Gncg_util.Parallel.default_domains () in
  Printf.printf "orchestration bench: %d jobs, %d domains\n%!" n_jobs domains;
  let sequential, t_seq =
    time (fun () -> List.map Gncg_runs.Job.execute jobs)
  in
  let job_array = Array.of_list jobs in
  let static, t_static =
    time (fun () ->
        Array.to_list
          (Gncg_util.Parallel.init n_jobs (fun i -> Gncg_runs.Job.execute job_array.(i))))
  in
  let stolen, t_steal =
    time (fun () ->
        List.map
          (fun (_, r) ->
            match r.Gncg_runs.Scheduler.outcome with
            | Gncg_runs.Scheduler.Completed run | Gncg_runs.Scheduler.Diverged run -> run
            | _ -> fail "scheduler produced a non-result outcome")
          (Gncg_runs.Scheduler.run
             ~diverged:(fun (r : Gncg_workload.Sweep.run) -> not r.converged)
             Gncg_runs.Job.execute jobs))
  in
  let csv = Gncg_workload.Report.runs_to_csv in
  if csv static <> csv sequential then
    fail "static chunking results differ from sequential";
  if csv stolen <> csv sequential then
    fail "work-stealing results differ from sequential";
  Printf.printf "sequential     %.3f s\n" t_seq;
  Printf.printf "static chunks  %.3f s (%.2fx)\n" t_static (t_seq /. t_static);
  Printf.printf "work stealing  %.3f s (%.2fx vs sequential, %.2fx vs static)\n%!"
    t_steal (t_seq /. t_steal) (t_static /. t_steal);
  print_endline "orchestration ok (all three runners agree per job)"
