(* Reproduction harness: regenerates every table/figure series of the paper
   (experiments E1-E16, see DESIGN.md) and runs the Bechamel timing benches.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- E4 E8        # selected experiments
     dune exec bench/main.exe -- --no-timings # experiments only
     dune exec bench/main.exe -- --timings    # timings only
     dune exec bench/main.exe -- --json PATH  # BENCH_4.json only (see bench4.ml)
     dune exec bench/main.exe -- --json PATH --n 200  # ...at instance size 200
     dune exec bench/main.exe -- --domains 4  # worker domains for the Par paths
     dune exec bench/main.exe -- --trace FILE # JSONL observability trace
     dune exec bench/main.exe -- --profile    # counter summary on stderr at exit *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args, json_path =
    let rec strip_json acc = function
      | "--json" :: path :: rest -> (List.rev_append acc rest, Some path)
      | a :: rest -> strip_json (a :: acc) rest
      | [] -> (List.rev acc, None)
    in
    strip_json [] args
  in
  let args, bench_n =
    let rec strip_n acc = function
      | "--n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some k when k >= 2 -> (List.rev_append acc rest, Some k)
        | _ ->
          prerr_endline ("bench: --n expects an integer >= 2, got " ^ v);
          exit 2)
      | a :: rest -> strip_n (a :: acc) rest
      | [] -> (List.rev acc, None)
    in
    strip_n [] args
  in
  let args, trace_path =
    let rec strip_trace acc = function
      | "--trace" :: path :: rest -> (List.rev_append acc rest, Some path)
      | a :: rest -> strip_trace (a :: acc) rest
      | [] -> (List.rev acc, None)
    in
    strip_trace [] args
  in
  (match trace_path with Some path -> Gncg_obs.Obs.trace_to_file path | None -> ());
  let args =
    let rec strip_profile = function
      | "--profile" :: rest ->
        Gncg_obs.Obs.set_profiling true;
        at_exit (fun () -> Gncg_obs.Obs.print_summary stderr);
        strip_profile rest
      | a :: rest -> a :: strip_profile rest
      | [] -> []
    in
    strip_profile args
  in
  let args =
    let rec strip_domains = function
      | "--domains" :: d :: rest ->
        (match int_of_string_opt d with
        | Some k when k >= 1 -> Gncg_util.Parallel.set_default_domains (Some k)
        | _ ->
          prerr_endline ("bench: --domains expects a positive integer, got " ^ d);
          exit 2);
        strip_domains rest
      | a :: rest -> a :: strip_domains rest
      | [] -> []
    in
    strip_domains args
  in
  let timings_only = List.mem "--timings" args in
  let no_timings = List.mem "--no-timings" args in
  let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let chosen =
    if selected = [] then Experiments.all
    else List.filter (fun (id, _) -> List.mem id selected) Experiments.all
  in
  match json_path with
  | Some path -> Bench4.run ?n:bench_n ~path ()
  | None ->
    print_endline "Geometric Network Creation Games — reproduction harness";
    print_endline "(paper: Bilo, Friedrich, Lenzner, Melnichenko, SPAA 2019)";
    if not timings_only then List.iter (fun (_, f) -> f ()) chosen;
    if (not no_timings) && selected = [] then Timings.run ()
