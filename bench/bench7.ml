(* Serve throughput bench: 8 concurrent clients against one daemon over
   a Unix-domain socket, mixed ping / eq-check / best-response traffic.

   Measures what the daemon architecture is supposed to buy: connection
   threads answer pings without touching the executor, query jobs share
   the host cache, and submissions dedup by content key — so the
   interesting numbers are requests/s across the fleet and the latency
   spread between the cheap control path (p50 is usually a ping) and
   the queued query path (p99 is a query that waited for the executor).

   Schema (validated by bench/smoke.exe --validate-json):

     { "schema": "gncg-bench-7",
       "clients": 8, "requests": <total>,
       "elapsed_s": ..., "requests_per_s": ...,
       "latency_ns": {"p50": ..., "p90": ..., "p99": ..., "max": ...},
       "results": [ {"op": "ping", "count": ..., "ns_per_op": ...,
                     "p50_ns": ..., "p99_ns": ...}, ... ] }

   Emitted as BENCH_7.json (the committed artifact) by
   `dune exec bench/bench7.exe -- --json > BENCH_7.json`. *)

module P = Gncg_serve.Protocol
module Session = Gncg_serve.Session
module Server = Gncg_serve.Server
module Client = Gncg_serve.Client
module Json = Gncg_runs.Json

let clients = 8
let iterations = 20 (* per client; each iteration = ping + eq-check + br *)

let model = Gncg_workload.Instances.Euclid { norm = L2; d = 2; box = 100.0 }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench7: " ^ m); exit 1) fmt

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ok = function
  | Ok v -> v
  | Error e -> fail "%s" (Gncg_util.Gncg_error.to_string e)

(* Submit a query job and block until its terminal event: the unit of
   "one request" for the query ops, queue wait included. *)
let run_query c job =
  let id, _attached = ok (Client.submit c job) in
  ignore (ok (Client.watch c ~on_event:ignore id))

let client_loop ~path ~record i =
  let c = ok (Client.connect_unix ~path) in
  for k = 0 to iterations - 1 do
    let seed = 1 + ((i + (clients * k)) mod 32) in
    let (), ping_s = time (fun () -> ignore (ok (Client.ping c))) in
    record "ping" ping_s;
    let (), eq_s =
      time (fun () ->
          run_query c
            (P.Eq_check
               {
                 model;
                 n = 6;
                 alpha = 2.0;
                 seed;
                 check = Gncg.Equilibrium.GE;
                 stabilize = false;
               }))
    in
    record "eq-check" eq_s;
    let (), br_s =
      time (fun () ->
          run_query c
            (P.Best_response { model; n = 6; alpha = 2.0; seed; agent = k mod 6 }))
    in
    record "best-response" br_s
  done;
  Client.close c

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let ns s = s *. 1e9

let () =
  let json = Array.exists (( = ) "--json") Sys.argv in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gncg-bench7-%d" (Unix.getpid ()))
  in
  let path = dir ^ ".sock" in
  let session = Session.create ~state_dir:dir ~domains:2 () in
  let server = Thread.create (fun () -> Server.serve_unix session ~path) () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Sys.file_exists path) do
    if Unix.gettimeofday () > deadline then fail "daemon socket never appeared";
    Thread.delay 0.01
  done;
  (* One warm-up client primes the host cache so the measured run sees
     the steady state, not 32 host constructions. *)
  client_loop ~path ~record:(fun _ _ -> ()) 0;
  let mutex = Mutex.create () in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 4 in
  let record op s =
    Mutex.lock mutex;
    (match Hashtbl.find_opt samples op with
    | Some l -> l := s :: !l
    | None -> Hashtbl.replace samples op (ref [ s ]));
    Mutex.unlock mutex
  in
  let (), elapsed =
    time (fun () ->
        let threads =
          List.init clients (fun i -> Thread.create (client_loop ~path ~record) i)
        in
        List.iter Thread.join threads)
  in
  (let c = ok (Client.connect_unix ~path) in
   ok (Client.shutdown c);
   Client.close c);
  Thread.join server;
  let all =
    Hashtbl.fold (fun _ l acc -> !l @ acc) samples []
    |> Array.of_list
  in
  Array.sort compare all;
  let total = Array.length all in
  if total <> clients * iterations * 3 then
    fail "expected %d requests, measured %d" (clients * iterations * 3) total;
  let rps = float_of_int total /. elapsed in
  let op_row op =
    let l = Array.of_list !(Hashtbl.find samples op) in
    Array.sort compare l;
    let mean = Array.fold_left ( +. ) 0.0 l /. float_of_int (Array.length l) in
    Json.Obj
      [
        ("op", Json.Str op);
        ("count", Json.num_int (Array.length l));
        ("ns_per_op", Json.Num (ns mean));
        ("p50_ns", Json.Num (ns (percentile l 0.50)));
        ("p99_ns", Json.Num (ns (percentile l 0.99)));
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "gncg-bench-7");
        ("generated_by", Json.Str "bench/bench7.exe --json");
        ("clients", Json.num_int clients);
        ("requests", Json.num_int total);
        ("elapsed_s", Json.Num elapsed);
        ("requests_per_s", Json.Num rps);
        ( "latency_ns",
          Json.Obj
            [
              ("p50", Json.Num (ns (percentile all 0.50)));
              ("p90", Json.Num (ns (percentile all 0.90)));
              ("p99", Json.Num (ns (percentile all 0.99)));
              ("max", Json.Num (ns all.(total - 1)));
            ] );
        ( "results",
          Json.List (List.map op_row [ "ping"; "eq-check"; "best-response" ]) );
      ]
  in
  if json then print_endline (Json.to_string doc)
  else begin
    Printf.printf "bench7: %d clients, %d requests in %.2fs (%.0f req/s)\n" clients
      total elapsed rps;
    Printf.printf "  latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n"
      (percentile all 0.50 *. 1e3)
      (percentile all 0.90 *. 1e3)
      (percentile all 0.99 *. 1e3)
      (all.(total - 1) *. 1e3);
    List.iter
      (fun op ->
        let l = Array.of_list !(Hashtbl.find samples op) in
        Array.sort compare l;
        Printf.printf "  %-14s %5d reqs  p50 %.2fms  p99 %.2fms\n" op (Array.length l)
          (percentile l 0.50 *. 1e3)
          (percentile l 0.99 *. 1e3))
      [ "ping"; "eq-check"; "best-response" ]
  end
