(* BENCH_4.json: machine-readable evidence for the observability layer
   (PR 4).  Micro benches run under Bechamel (ns/op and minor words/op
   per OLS fit); the dynamics macro bench times full greedy-response
   convergence at n=100 with wall clocks — with sinks and profiling OFF,
   so the committed number demonstrates the disabled-path overhead
   against the PR-3 baseline.  A separate instrumented pass (profiling
   on, after the timed section) exercises all four engine layers and
   embeds the counter snapshot.

   Schema (validated by bench/smoke.exe --validate-json):
     { "schema": "gncg-bench-4",
       "baseline": { "op", "n", "ns_per_op" },
       "speedup_vs_baseline": <float>,
       "results": [ { "op", "n", "ns_per_op", "allocs_per_op" }, ... ],
       "counters": { "<metric>": <int>,
                     "<histogram>.count": <int>, "<histogram>.sum": <num>, ... } } *)

open Bechamel
open Toolkit
module Json = Gncg_runs.Json

let schema_name = "gncg-bench-4"

(* The dynamics-converge wall clock committed in BENCH_3.json (PR 3);
   the acceptance bar for this PR is a < 3% regression against it with
   all observability disabled. *)
let baseline_dynamics_ns = 6.0984897613525391e8

let macro_instance ~n () =
  let rng = Gncg_util.Prng.create 1 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:6.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  (host, start)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

(* Median-of-k wall-clock nanoseconds plus minor words allocated per op. *)
let wall ~reps f =
  let words0 = Gc.minor_words () in
  let samples = List.init reps (fun _ -> snd (time_once f)) in
  let words = (Gc.minor_words () -. words0) /. float_of_int reps in
  let sorted = List.sort Float.compare samples in
  (List.nth sorted (reps / 2), words)

let micro_tests ~n () =
  let rng = Gncg_util.Prng.create 3 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:6.0)
  in
  let profile = Gncg_workload.Instances.random_profile rng host in
  let graph = Gncg.Network.graph host profile in
  let incr = Gncg_graph.Incr_apsp.of_graph graph in
  let dm = Gncg_graph.Dist_matrix.of_graph graph in
  let st = Gncg.Net_state.create host profile in
  let u, v =
    let g = Gncg_graph.Incr_apsp.graph incr in
    let rec pick u v =
      if u <> v && not (Gncg_graph.Wgraph.has_edge g u v) then (u, v)
      else if v + 1 < n then pick u (v + 1)
      else pick (u + 1) 0
    in
    pick 0 1
  in
  let w = Gncg.Host.weight host u v in
  [
    ( "apsp-rebuild",
      Test.make ~name:"apsp-rebuild" (Staged.stage (fun () ->
          ignore (Gncg_graph.Dijkstra.apsp graph))) );
    ( "edge-flip-incremental",
      Test.make ~name:"edge-flip-incremental" (Staged.stage (fun () ->
          ignore (Gncg_graph.Incr_apsp.add_edge incr u v w);
          ignore (Gncg_graph.Incr_apsp.remove_edge incr u v))) );
    ( "add-kernel-streamed",
      Test.make ~name:"add-kernel-streamed" (Staged.stage (fun () ->
          ignore (Gncg_graph.Incr_apsp.dist_sum_with_edge incr u v w))) );
    ( "add-kernel-materialized",
      Test.make ~name:"add-kernel-materialized"
        (Staged.stage (fun () ->
             (* The pre-PR shape: materialize both rows and the per-entry
                minima, then sum. *)
             let d_u = Gncg_graph.Incr_apsp.row incr u in
             let d_v = Gncg_graph.Incr_apsp.row incr v in
             let per = Array.init n (fun x -> Float.min d_u.(x) (w +. d_v.(x))) in
             ignore (Gncg_util.Flt.sum per))) );
    ( "total-with-edge-added",
      Test.make ~name:"total-with-edge-added" (Staged.stage (fun () ->
          ignore (Gncg_graph.Dist_matrix.total_with_edge_added dm u v w))) );
    ( "best-move-state",
      Test.make ~name:"best-move-state" (Staged.stage (fun () ->
          ignore (Gncg.Fast_response.best_move_state st ~agent:u))) );
  ]

let run_micro ~n () =
  let named = micro_tests ~n () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"bench4" (List.map snd named))
  in
  let estimate instance name =
    let results = Analyze.all ols instance raw in
    let found = ref Float.nan in
    Hashtbl.iter
      (fun k r ->
        if k = "bench4/" ^ name then
          match Analyze.OLS.estimates r with Some (x :: _) -> found := x | _ -> ())
      results;
    !found
  in
  List.map
    (fun (name, _) ->
      ( name,
        estimate Instance.monotonic_clock name,
        estimate Instance.minor_allocated name ))
    named

let row ~op ~n ~ns ~allocs =
  Json.Obj
    [
      ("op", Json.Str op);
      ("n", Json.num_int n);
      ("ns_per_op", Json.Num ns);
      ("allocs_per_op", Json.Num allocs);
    ]

let run ?(n = 100) ~path () =
  Printf.printf "bench4: micro kernels (Bechamel, n=%d)...\n%!" n;
  let micro = run_micro ~n () in
  let host, start = macro_instance ~n () in
  Printf.printf "bench4: dynamics-converge n=%d (5 runs)...\n%!" n;
  let converge () =
    match
      Gncg.Dynamics.run
        (Gncg.Dynamics.Config.make ~max_steps:50_000 ~evaluator:`Incremental
           Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
        host start
    with
    | Gncg.Dynamics.Converged { profile; _ } -> profile
    | _ ->
      prerr_endline "bench4: macro dynamics did not converge";
      exit 1
  in
  let dyn_ns, dyn_words = wall ~reps:5 converge in
  let ge = converge () in
  Printf.printf "bench4: equilibrium tracker n=%d...\n%!" n;
  let st = Gncg.Net_state.create host ge in
  let full_ns, full_words =
    wall ~reps:5 (fun () ->
        Gncg.Equilibrium.Tracker.create Gncg.Equilibrium.GE (Gncg.Net_state.copy st))
  in
  let tracker = Gncg.Equilibrium.Tracker.create Gncg.Equilibrium.GE st in
  let mv =
    (* A reversible local perturbation: buy one absent edge, refresh,
       sell it back, refresh. *)
    let n = Gncg.Strategy.n ge in
    let rec pick u v =
      if u <> v && Gncg.Move.addable host (Gncg.Net_state.profile st) ~agent:u v then (u, v)
      else if v + 1 < n then pick u (v + 1)
      else pick (u + 1) 0
    in
    pick 0 1
  in
  let refresh_ns, refresh_words =
    wall ~reps:5 (fun () ->
        let u, v = mv in
        ignore (Gncg.Net_state.apply_move st ~agent:u (Gncg.Move.Add v));
        Gncg.Equilibrium.Tracker.refresh tracker;
        ignore (Gncg.Net_state.apply_move st ~agent:u (Gncg.Move.Delete v));
        Gncg.Equilibrium.Tracker.refresh tracker)
  in
  (* Instrumented pass, after (and outside) every timed section: turn
     profiling on, exercise all four engine layers once, and embed the
     resulting counter snapshot as evidence that the probes fire. *)
  Printf.printf "bench4: instrumented pass (profiling on)...\n%!";
  let counters =
    let was = Gncg_obs.Obs.profiling () in
    Gncg_obs.Obs.set_profiling true;
    Gncg_obs.Obs.reset ();
    ignore (converge ());
    (let u, v = mv in
     ignore (Gncg.Net_state.apply_move st ~agent:u (Gncg.Move.Add v));
     Gncg.Equilibrium.Tracker.refresh tracker;
     ignore (Gncg.Net_state.apply_move st ~agent:u (Gncg.Move.Delete v));
     Gncg.Equilibrium.Tracker.refresh tracker);
    let config =
      Gncg_runs.Batch.config ~rule:Gncg_runs.Job.Greedy_response ~evaluator:`Incremental
        ~max_steps:2000
        (Gncg_workload.Instances.Euclid { norm = L2; d = 2; box = 100.0 })
        ~ns:[ 8 ] ~alphas:[ 2.0 ] ~seeds:[ 1; 2 ]
    in
    ignore (Gncg_runs.Batch.run ~domains:2 config);
    let snap = Gncg_obs.Obs.snapshot () in
    Gncg_obs.Obs.set_profiling was;
    List.map (fun (name, v) -> (name, Json.num_int v)) snap.Gncg_obs.Metric.counters
    @ List.concat_map
        (fun (name, h) ->
          [
            (name ^ ".count", Json.num_int h.Gncg_obs.Metric.hcount);
            (name ^ ".sum", Json.Num h.Gncg_obs.Metric.hsum);
          ])
        snap.Gncg_obs.Metric.histograms
  in
  (* The committed baseline was measured at n=100; at any other --n the
     ratio is apples-to-oranges and emitted as NaN-free 0.0 so the
     validator still parses the document. *)
  let speedup = if n = 100 then baseline_dynamics_ns /. dyn_ns else 0.0 in
  let results =
    List.map (fun (op, ns, allocs) -> row ~op ~n ~ns ~allocs) micro
    @ [
        row ~op:"dynamics-converge" ~n ~ns:dyn_ns ~allocs:dyn_words;
        row ~op:"equilibrium-full-scan" ~n ~ns:full_ns ~allocs:full_words;
        row ~op:"equilibrium-refresh-2moves" ~n ~ns:refresh_ns ~allocs:refresh_words;
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str schema_name);
        ("generated_by", Json.Str "bench/main.exe --json");
        ( "baseline",
          Json.Obj
            [
              ("op", Json.Str "dynamics-converge");
              ("n", Json.num_int 100);
              ("ns_per_op", Json.Num baseline_dynamics_ns);
            ] );
        ("speedup_vs_baseline", Json.Num speedup);
        ("results", Json.List results);
        ("counters", Json.Obj counters);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench4: dynamics-converge %.3f s (baseline %.3f s, %.2fx) -> %s\n%!"
    (dyn_ns /. 1e9) (baseline_dynamics_ns /. 1e9) speedup path
