(* Bench smoke target (`dune build @bench-smoke`): one quick timing
   iteration of the hot-path engines, with hard equivalence assertions so
   a perf regression or a semantics drift in the incremental/parallel
   paths fails loudly in CI.  Full statistics live in timings.ml. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-smoke: " ^ msg); exit 1) fmt

(* Schema check for the BENCH_N.json artifacts emitted by
   `bench/main.exe --json` (see bench4.ml): every result row must carry
   op / n / ns_per_op / allocs_per_op with sane values, and the macro
   baseline + speedup fields must be present.  Accepts gncg-bench-3
   (the committed PR-3 artifact) and gncg-bench-4, which additionally
   requires a counters object covering all four instrumented layers. *)
(* gncg-bench-7 is the serve-throughput shape (see bench7.ml): no
   baseline/speedup — the daemon has no single-op baseline — but the
   fleet-level rates and latency quantiles must be present, positive,
   and ordered. *)
let validate_bench7_json path doc =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s: %s" path e in
  let module J = Gncg_runs.Json in
  let* clients = Result.bind (J.member "clients" doc) J.get_int in
  if clients < 8 then fail "%s: serve bench needs >= 8 concurrent clients, got %d" path clients;
  let* requests = Result.bind (J.member "requests" doc) J.get_int in
  let* rps = Result.bind (J.member "requests_per_s" doc) J.get_float in
  if requests <= 0 then fail "%s: non-positive request count" path;
  if Float.is_nan rps || rps <= 0.0 then fail "%s: invalid requests_per_s" path;
  let* latency = J.member "latency_ns" doc in
  let quantile name = Result.bind (J.member name latency) J.get_float in
  let* p50 = quantile "p50" in
  let* p90 = quantile "p90" in
  let* p99 = quantile "p99" in
  let* max_ns = quantile "max" in
  List.iter
    (fun (name, v) ->
      if Float.is_nan v || v <= 0.0 then fail "%s: invalid latency %s" path name)
    [ ("p50", p50); ("p90", p90); ("p99", p99); ("max", max_ns) ];
  if not (p50 <= p90 && p90 <= p99 && p99 <= max_ns) then
    fail "%s: latency quantiles out of order" path;
  let* results = Result.bind (J.member "results" doc) J.get_list in
  if results = [] then fail "%s: empty results" path;
  let counted =
    List.fold_left
      (fun acc r ->
        let* op = Result.bind (J.member "op" r) J.get_string in
        let* count = Result.bind (J.member "count" r) J.get_int in
        let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
        let* row_p50 = Result.bind (J.member "p50_ns" r) J.get_float in
        let* row_p99 = Result.bind (J.member "p99_ns" r) J.get_float in
        if count <= 0 then fail "%s: %s has non-positive count" path op;
        if Float.is_nan ns || ns <= 0.0 then fail "%s: %s has invalid ns_per_op" path op;
        if not (row_p50 > 0.0 && row_p50 <= row_p99) then
          fail "%s: %s has inconsistent latency quantiles" path op;
        acc + count)
      0 results
  in
  if counted <> requests then
    fail "%s: per-op counts sum to %d but requests is %d" path counted requests;
  Printf.printf "bench-smoke: %s valid (%d clients, %.0f req/s, p99 %.2fms)\n%!" path
    clients rps (p99 /. 1e6)

(* gncg-bench-8 is the distance-backend scaling shape (see bench8.ml):
   rows carry a backend id and a memory footprint.  Beyond well-formedness
   the validator enforces the point of the artifact — the implicit
   oracles must report footprints at least an order of magnitude below
   the 8n² bytes a dense matrix would cost, and the replayed dense
   dynamics macro must stay within 1.1x of the committed BENCH_4 row. *)
let validate_bench8_json path doc =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s: %s" path e in
  let module J = Gncg_runs.Json in
  let* full = Result.bind (J.member "full" doc) J.get_bool in
  let* baseline = J.member "baseline" doc in
  let* base_ns = Result.bind (J.member "ns_per_op" baseline) J.get_float in
  if not (base_ns > 0.0) then fail "%s: baseline ns_per_op must be positive" path;
  let* ratio = Result.bind (J.member "dense_dynamics_n100_vs_bench4" doc) J.get_float in
  let* results = Result.bind (J.member "results" doc) J.get_list in
  if results = [] then fail "%s: empty results" path;
  let macro100 = ref None in
  let oracle_ns = ref [] in
  List.iter
    (fun r ->
      let* op = Result.bind (J.member "op" r) J.get_string in
      let* backend = Result.bind (J.member "backend" r) J.get_string in
      let* n = Result.bind (J.member "n" r) J.get_int in
      let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
      let* mem = Result.bind (J.member "mem_bytes" r) J.get_int in
      if n <= 0 then fail "%s: %s/%s has non-positive n" path op backend;
      if Float.is_nan ns || ns <= 0.0 then
        fail "%s: %s/%s has invalid ns_per_op" path op backend;
      if mem < 0 then fail "%s: %s/%s has negative mem_bytes" path op backend;
      if (backend = "tree" || backend = "rd") && n >= 1000 && 10 * mem >= 8 * n * n
      then
        fail "%s: %s backend at n=%d reports %d bytes — not an implicit oracle"
          path backend n mem;
      if backend = "tree" || backend = "rd" then
        oracle_ns := (backend, n) :: !oracle_ns;
      if op = "dynamics-converge" && n = 100 && backend = "dense" then
        macro100 := Some ns)
    results;
  (match !macro100 with
  | None -> fail "%s: missing the dense dynamics-converge n=100 anchor row" path
  | Some ns ->
    if not (Gncg_util.Flt.approx_eq ~tol:0.05 ratio (ns /. base_ns)) then
      fail "%s: dense_dynamics_n100_vs_bench4 inconsistent with the macro row" path;
    (* The regression bar binds the committed reference artifact (full
       runs); quick CI regenerations on shared runners are indicative. *)
    if full && ratio > 1.1 then
      fail "%s: dense dynamics regressed %.3fx vs BENCH_4 (bar: 1.1x)" path ratio);
  List.iter
    (fun backend ->
      if not (List.mem_assoc backend !oracle_ns) then
        fail "%s: no %s oracle rows at all" path backend)
    [ "tree"; "rd" ];
  let* skipped = Result.bind (J.member "skipped" doc) J.get_list in
  List.iter
    (fun r ->
      let* backend = Result.bind (J.member "backend" r) J.get_string in
      let* _reason = Result.bind (J.member "reason" r) J.get_string in
      if backend = "tree" || backend = "rd" then
        fail "%s: the %s oracle should never be skipped" path backend)
    skipped;
  let* counters = J.member "counters" doc in
  let keys =
    match counters with
    | J.Obj fields -> List.map fst fields
    | _ -> fail "%s: counters must be an object" path
  in
  List.iter
    (fun prefix ->
      if not (List.exists (fun k -> String.starts_with ~prefix k) keys) then
        fail "%s: counters missing the %s* backend" path prefix)
    [ "tree_dist."; "rd_dist."; "mmap_apsp."; "distances." ];
  Printf.printf "bench-smoke: %s valid (%d results, dense macro %.3fx vs BENCH_4)\n%!"
    path (List.length results) ratio

(* gncg-bench-9 is the speculative-dynamics shape (see bench9.ml): every
   row replays the same converge through a different Dynamics.Engine, so
   beyond well-formedness the validator enforces the two anchors — the
   sequential n=100 macro must stay within 1.1x of the committed BENCH_8
   row after drift normalization (the artifact re-measures two dense
   micro kernels the redesign never touched and divides out the machine
   difference), and (on hardware that can show it: full artifact, >= 4
   cores) the speculative engine must clear 2x over sequential at
   n=1000.  The counters object must prove the commit protocol actually
   ran. *)
let validate_bench9_json path doc =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s: %s" path e in
  let module J = Gncg_runs.Json in
  let* full = Result.bind (J.member "full" doc) J.get_bool in
  let* cores = Result.bind (J.member "cores" doc) J.get_int in
  if cores < 1 then fail "%s: cores must be >= 1" path;
  let* baseline = J.member "baseline" doc in
  let* base_ns = Result.bind (J.member "ns_per_op" baseline) J.get_float in
  if not (base_ns > 0.0) then fail "%s: baseline ns_per_op must be positive" path;
  let* calibration = J.member "calibration" doc in
  let* drift = Result.bind (J.member "drift" calibration) J.get_float in
  (* A drift outside sanity bounds means the calibration kernels broke,
     not that the machine changed — normalization would be laundering. *)
  if Float.is_nan drift || drift < 0.2 || drift > 5.0 then
    fail "%s: calibration drift %.3f outside sanity bounds [0.2, 5]" path drift;
  let* cal_rows = Result.bind (J.member "rows" calibration) J.get_list in
  List.iter
    (fun r ->
      let* op = Result.bind (J.member "op" r) J.get_string in
      let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
      let* b8 = Result.bind (J.member "bench8_ns_per_op" r) J.get_float in
      if Float.is_nan ns || ns <= 0.0 || Float.is_nan b8 || b8 <= 0.0 then
        fail "%s: calibration row %s has invalid timings" path op)
    cal_rows;
  if List.length cal_rows < 2 then fail "%s: calibration needs >= 2 kernels" path;
  let* ratio = Result.bind (J.member "seq_n100_vs_bench8" doc) J.get_float in
  let* normalized =
    Result.bind (J.member "seq_n100_vs_bench8_normalized" doc) J.get_float
  in
  if not (Gncg_util.Flt.approx_eq ~tol:0.05 normalized (ratio /. drift)) then
    fail "%s: normalized ratio inconsistent with raw ratio and drift" path;
  let* speedup = Result.bind (J.member "speculative_speedup_n1000" doc) J.get_float in
  let* results = Result.bind (J.member "results" doc) J.get_list in
  if results = [] then fail "%s: empty results" path;
  let seq100 = ref None in
  let seq1000 = ref None in
  let best_spec1000 = ref Float.infinity in
  let spec_rows = ref 0 in
  List.iter
    (fun r ->
      let* op = Result.bind (J.member "op" r) J.get_string in
      let* engine = Result.bind (J.member "engine" r) J.get_string in
      let* domains = Result.bind (J.member "domains" r) J.get_int in
      let* n = Result.bind (J.member "n" r) J.get_int in
      let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
      let* alloc = Result.bind (J.member "alloc_bytes_per_op" r) J.get_float in
      if op <> "dynamics-converge" then fail "%s: unexpected op %S" path op;
      if engine <> "sequential" && engine <> "speculative" then
        fail "%s: unexpected engine %S" path engine;
      if domains < 1 then fail "%s: %s has non-positive domains" path engine;
      if n <= 0 then fail "%s: %s has non-positive n" path engine;
      if Float.is_nan ns || ns <= 0.0 then
        fail "%s: %s n=%d has invalid ns_per_op" path engine n;
      if Float.is_nan alloc || alloc < 0.0 then
        fail "%s: %s n=%d has invalid alloc_bytes_per_op" path engine n;
      if engine = "speculative" then incr spec_rows;
      if engine = "sequential" && n = 100 then seq100 := Some ns;
      if engine = "sequential" && n = 1000 then seq1000 := Some ns;
      if engine = "speculative" && n = 1000 && ns < !best_spec1000 then
        best_spec1000 := ns)
    results;
  if !spec_rows = 0 then fail "%s: no speculative engine rows at all" path;
  (match !seq100 with
  | None -> fail "%s: missing the sequential dynamics-converge n=100 anchor row" path
  | Some ns ->
    if not (Gncg_util.Flt.approx_eq ~tol:0.05 ratio (ns /. base_ns)) then
      fail "%s: seq_n100_vs_bench8 inconsistent with the macro row" path;
    (* The regression bar binds the committed reference artifact (full
       runs); quick CI regenerations on shared runners are indicative. *)
    if full && normalized > 1.1 then
      fail "%s: sequential dynamics regressed %.3fx (drift-normalized) vs BENCH_8 \
           (bar: 1.1x)"
        path normalized);
  if full then begin
    match (!seq1000, !best_spec1000) with
    | None, _ -> fail "%s: full artifact missing the sequential n=1000 row" path
    | _, best when not (Float.is_finite best) ->
      fail "%s: full artifact missing speculative n=1000 rows" path
    | Some seq_ns, best ->
      if not (Gncg_util.Flt.approx_eq ~tol:0.05 speedup (seq_ns /. best)) then
        fail "%s: speculative_speedup_n1000 inconsistent with the n=1000 rows" path;
      (* The 2x bar only binds where parallelism is physically available:
         a 1-core container records cores=1 and the figure is informative. *)
      if cores >= 4 && speedup < 2.0 then
        fail "%s: speculative speedup %.2fx at %d cores (bar: 2x)" path speedup cores
  end;
  let* counters = J.member "counters" doc in
  let keys =
    match counters with
    | J.Obj fields -> List.map fst fields
    | _ -> fail "%s: counters must be an object" path
  in
  List.iter
    (fun prefix ->
      if not (List.exists (fun k -> String.starts_with ~prefix k) keys) then
        fail "%s: counters missing %s*" path prefix)
    [ "dynamics.speculative_"; "dynamics." ];
  let committed name =
    List.exists (fun k -> k = name) keys
    &&
    match Result.bind (J.member name counters) J.get_int with
    | Ok v -> v > 0
    | Error _ -> false
  in
  if not (committed "dynamics.speculative_commits") then
    fail "%s: dynamics.speculative_commits is zero — the protocol never ran" path;
  Printf.printf
    "bench-smoke: %s valid (%d results, seq n=100 %.3fx normalized vs BENCH_8, speedup \
     %.2fx @ %d cores)\n\
     %!"
    path (List.length results) normalized speedup cores

(* gncg-bench-10 is the worker-pool serve-throughput shape (see
   bench10.ml): the bench7 fleet replayed against workers ∈ {0, 1, 4}.
   Beyond per-row well-formedness (the bench7 invariants, per row) the
   validator enforces the point of the artifact — the pool must have
   actually run (serve.pool.spawns ticked, pool objects on the
   workers>0 rows, breaker closed throughout), and on hardware that can
   show it (full artifact, >= 4 cores) the workers=4 fleet p99 must
   beat the committed BENCH_7 in-process baseline. *)
let validate_bench10_json path doc =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s: %s" path e in
  let module J = Gncg_runs.Json in
  let* full = Result.bind (J.member "full" doc) J.get_bool in
  let* cores = Result.bind (J.member "cores" doc) J.get_int in
  if cores < 1 then fail "%s: cores must be >= 1" path;
  let* clients = Result.bind (J.member "clients" doc) J.get_int in
  if clients < 8 then fail "%s: serve bench needs >= 8 concurrent clients, got %d" path clients;
  let* base_p99 = Result.bind (J.member "bench7_p99_ns" doc) J.get_float in
  if not (base_p99 > 0.0) then fail "%s: bench7_p99_ns must be positive" path;
  let* ratio = Result.bind (J.member "p99_workers4_vs_bench7" doc) J.get_float in
  let* rows = Result.bind (J.member "rows" doc) J.get_list in
  if rows = [] then fail "%s: empty rows" path;
  let seen = ref [] in
  let p99_w4 = ref None in
  List.iter
    (fun row ->
      let* workers = Result.bind (J.member "workers" row) J.get_int in
      if workers < 0 then fail "%s: negative workers" path;
      if List.mem workers !seen then fail "%s: duplicate workers=%d row" path workers;
      seen := workers :: !seen;
      let* requests = Result.bind (J.member "requests" row) J.get_int in
      let* rps = Result.bind (J.member "requests_per_s" row) J.get_float in
      if requests <= 0 then fail "%s: workers=%d has no requests" path workers;
      if Float.is_nan rps || rps <= 0.0 then
        fail "%s: workers=%d has invalid requests_per_s" path workers;
      let* latency = J.member "latency_ns" row in
      let quantile name = Result.bind (J.member name latency) J.get_float in
      let* p50 = quantile "p50" in
      let* p90 = quantile "p90" in
      let* p99 = quantile "p99" in
      let* max_ns = quantile "max" in
      List.iter
        (fun (name, v) ->
          if Float.is_nan v || v <= 0.0 then
            fail "%s: workers=%d invalid latency %s" path workers name)
        [ ("p50", p50); ("p90", p90); ("p99", p99); ("max", max_ns) ];
      if not (p50 <= p90 && p90 <= p99 && p99 <= max_ns) then
        fail "%s: workers=%d latency quantiles out of order" path workers;
      if workers = 4 then p99_w4 := Some p99;
      let* results = Result.bind (J.member "results" row) J.get_list in
      let counted =
        List.fold_left
          (fun acc r ->
            let* op = Result.bind (J.member "op" r) J.get_string in
            let* count = Result.bind (J.member "count" r) J.get_int in
            let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
            if count <= 0 then fail "%s: workers=%d %s has non-positive count" path workers op;
            if Float.is_nan ns || ns <= 0.0 then
              fail "%s: workers=%d %s has invalid ns_per_op" path workers op;
            acc + count)
          0 results
      in
      if counted <> requests then
        fail "%s: workers=%d per-op counts sum to %d but requests is %d" path workers
          counted requests;
      let* pool = J.member "pool" row in
      match (workers, pool) with
      | 0, J.Null -> ()
      | 0, _ -> fail "%s: workers=0 row must not report a pool" path
      | _, J.Null -> fail "%s: workers=%d row is missing its pool status" path workers
      | _, pool ->
        let* restarts = Result.bind (J.member "restarts" pool) J.get_int in
        let* breaker = Result.bind (J.member "breaker_open" pool) J.get_bool in
        if restarts < 0 then fail "%s: workers=%d negative restarts" path workers;
        (* A healthy bench run injects no faults: a tripped breaker means
           the fleet died under plain load. *)
        if breaker then fail "%s: workers=%d tripped the breaker under load" path workers)
    rows;
  List.iter
    (fun w ->
      if not (List.mem w !seen) then fail "%s: missing the workers=%d row" path w)
    [ 0; 1; 4 ];
  (match !p99_w4 with
  | None -> fail "%s: missing the workers=4 row" path
  | Some p99 ->
    if not (Gncg_util.Flt.approx_eq ~tol:0.05 ratio (p99 /. base_p99)) then
      fail "%s: p99_workers4_vs_bench7 inconsistent with the workers=4 row" path;
    (* The tail-latency bar binds only where process parallelism is
       physically available and the artifact is a full run; a 1-core
       container records cores=1 and the figure is informative. *)
    if full && cores >= 4 && ratio >= 1.0 then
      fail "%s: workers=4 p99 %.2fx vs BENCH_7 at %d cores (bar: < 1x)" path ratio cores);
  let* counters = J.member "counters" doc in
  let keys =
    match counters with
    | J.Obj fields -> List.map fst fields
    | _ -> fail "%s: counters must be an object" path
  in
  if not (List.exists (fun k -> String.starts_with ~prefix:"serve.pool." k) keys) then
    fail "%s: counters missing serve.pool.*" path;
  (match Result.bind (J.member "serve.pool.spawns" counters) J.get_int with
  | Ok v when v > 0 -> ()
  | Ok _ -> fail "%s: serve.pool.spawns is zero — the pool never ran" path
  | Error _ -> fail "%s: counters missing serve.pool.spawns" path);
  Printf.printf
    "bench-smoke: %s valid (%d rows, workers=4 p99 %.3fx vs BENCH_7 @ %d cores)\n%!"
    path (List.length rows) ratio cores

let validate_bench_json path =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> fail "%s: %s" path e in
  let text =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let module J = Gncg_runs.Json in
  let* doc = J.parse (String.trim text) in
  let* schema = Result.bind (J.member "schema" doc) J.get_string in
  if
    schema <> "gncg-bench-3" && schema <> "gncg-bench-4" && schema <> "gncg-bench-7"
    && schema <> "gncg-bench-8" && schema <> "gncg-bench-9"
    && schema <> "gncg-bench-10"
  then fail "%s: unexpected schema %S" path schema;
  if schema = "gncg-bench-7" then validate_bench7_json path doc
  else if schema = "gncg-bench-8" then validate_bench8_json path doc
  else if schema = "gncg-bench-9" then validate_bench9_json path doc
  else if schema = "gncg-bench-10" then validate_bench10_json path doc
  else begin
  if schema = "gncg-bench-4" then begin
    (* The instrumented pass must have ticked at least one probe in each
       of the four engine layers (distance core, net state, dynamics,
       runs scheduler). *)
    let* counters = J.member "counters" doc in
    let keys =
      match counters with
      | J.Obj fields -> List.map fst fields
      | _ -> fail "%s: counters must be an object" path
    in
    List.iter
      (fun prefix ->
        if not (List.exists (fun k -> String.starts_with ~prefix k) keys) then
          fail "%s: counters missing the %s* layer" path prefix)
      [ "incr_apsp."; "net_state."; "dynamics."; "runs." ]
  end;
  let* baseline = J.member "baseline" doc in
  let* base_ns = Result.bind (J.member "ns_per_op" baseline) J.get_float in
  if not (base_ns > 0.0) then fail "%s: baseline ns_per_op must be positive" path;
  let* speedup = Result.bind (J.member "speedup_vs_baseline" doc) J.get_float in
  let* results = Result.bind (J.member "results" doc) J.get_list in
  if results = [] then fail "%s: empty results" path;
  let macro = ref None in
  List.iter
    (fun r ->
      let* op = Result.bind (J.member "op" r) J.get_string in
      let* n = Result.bind (J.member "n" r) J.get_int in
      let* ns = Result.bind (J.member "ns_per_op" r) J.get_float in
      let* _allocs = Result.bind (J.member "allocs_per_op" r) J.get_float in
      if n <= 0 then fail "%s: %s has non-positive n" path op;
      if Float.is_nan ns || ns <= 0.0 then fail "%s: %s has invalid ns_per_op" path op;
      if op = "dynamics-converge" then macro := Some (n, ns))
    results;
  (match !macro with
  | None -> fail "%s: missing dynamics-converge macro row" path
  | Some (n, ns) ->
    (* The committed baseline is a n=100 measurement; runs at another
       --n write speedup_vs_baseline = 0.0 because the ratio would be
       meaningless (see bench4.ml). *)
    let expected = if n = 100 then base_ns /. ns else 0.0 in
    if not (Gncg_util.Flt.approx_eq ~tol:0.05 speedup expected) then
      fail "%s: speedup_vs_baseline inconsistent with the macro row" path);
  Printf.printf "bench-smoke: %s valid (%d results, %.2fx vs baseline)\n%!" path
    (List.length results) speedup
  end

(* Chaos smoke (`--chaos`): a seeded fault-injection batch must classify
   faults exactly as the plan predicts, recover flaky jobs through
   retries, and resume cleanly across a torn journal. *)
let chaos_smoke () =
  let module R = Gncg_runs in
  let config =
    R.Batch.config
      (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 5.0 })
      ~ns:[ 5; 6 ] ~alphas:[ 1.0; 3.0 ] ~seeds:[ 1; 2; 3 ]
  in
  let plan = R.Chaos.plan ~seed:42 ~crash_p:0.4 ~fault_attempts:1 () in
  let jobs = R.Batch.jobs config in
  let predicted_crashes =
    List.length
      (List.filter
         (fun j -> R.Chaos.decide plan ~key:(R.Job.hash j) ~attempt:1 = Some R.Chaos.Crash)
         jobs)
  in
  if predicted_crashes = 0 then fail "chaos plan injected nothing; bump crash_p";
  (* No retries: every injected crash must surface as Crashed. *)
  let no_retry =
    R.Batch.run ~retries:0
      ~exec:(R.Chaos.wrap plan ~key:R.Job.hash R.Job.execute)
      config
  in
  if no_retry.progress.crashed <> predicted_crashes then
    fail "chaos: %d crashes predicted, %d observed" predicted_crashes
      no_retry.progress.crashed;
  (* One retry outlasts fault_attempts = 1: the same plan must now
     complete everything, with the retry pressure on record. *)
  let journal = Filename.temp_file "gncg_chaos" ".jsonl" in
  let retried =
    R.Batch.run ~retries:1
      ~exec:(R.Chaos.wrap plan ~key:R.Job.hash R.Job.execute)
      ~journal config
  in
  if retried.progress.crashed <> 0 then
    fail "chaos: %d jobs still crashed with retries" retried.progress.crashed;
  if retried.progress.retries < predicted_crashes then
    fail "chaos: retry attempts under-counted (%d < %d)" retried.progress.retries
      predicted_crashes;
  (* Tear the journal the way a kill -9 does; resume must re-execute
     exactly the one job whose terminal entry was destroyed. *)
  R.Chaos.truncate_last_line journal;
  (match R.Batch.resume ~journal () with
  | Error msg -> fail "chaos: resume after truncation failed: %s" msg
  | Ok resumed ->
    if resumed.progress.executed <> 1 then
      fail "chaos: truncated resume re-executed %d jobs, wanted 1"
        resumed.progress.executed;
    if
      Gncg_workload.Report.runs_to_csv resumed.runs
      <> Gncg_workload.Report.runs_to_csv retried.runs
    then fail "chaos: resumed runs differ from the uninterrupted batch");
  Sys.remove journal;
  (* Mmap-backend fault injection: corrupt one maintained cell in the
     file-backed mapping, require the drift sentinel to detect and
     self-heal, and the healed store to match the dense engine exactly. *)
  (let module D = Gncg_graph.Distances in
   let rng = Gncg_util.Prng.create 11 in
   let n = 24 in
   let g =
     Gncg_metric.Tree_metric.graph
       (Gncg_metric.Tree_metric.random rng ~n ~wmin:1.0 ~wmax:5.0)
   in
   let store = Filename.temp_file "gncg_chaos_mmap" ".bin" in
   let md = D.mmap ~path:store g in
   let dd = D.dense (Gncg_graph.Wgraph.copy g) in
   let agree msg =
     for u = 0 to n - 1 do
       for v = 0 to n - 1 do
         if D.distance md u v <> D.distance dd u v then
           fail "chaos: mmap/dense disagree at (%d,%d) %s" u v msg
       done
     done
   in
   agree "before injection";
   D.inject_cell_error md 3 7 0.25;
   let detected = ref false in
   (* One sentinel probe covers one source; a full rotation must find the
      corrupt cell and repair it. *)
   for _ = 1 to n do
     if not (D.selfcheck_now md) then detected := true
   done;
   if not !detected then fail "chaos: mmap sentinel missed an injected cell error";
   if not (D.selfcheck_now md) then fail "chaos: mmap sentinel failed to self-heal";
   agree "after repair";
   Sys.remove store);
  Printf.printf "chaos-smoke: %d jobs, %d injected crashes classified, torn journal \
                 resumed, mmap cell fault healed\n%!"
    (List.length jobs) predicted_crashes;
  print_endline "chaos-smoke ok";
  exit 0

let () =
  let chaos = ref false in
  let rec parse = function
    | [] -> ()
    | "--validate-json" :: path :: _ ->
      validate_bench_json path;
      exit 0
    | "--domains" :: d :: rest -> (
      match int_of_string_opt d with
      | Some k when k >= 1 ->
        Gncg_util.Parallel.set_default_domains (Some k);
        parse rest
      | _ -> fail "--domains expects a positive integer, got %S" d)
    | "--selfcheck" :: c :: rest -> (
      match int_of_string_opt c with
      | Some k when k >= 1 ->
        Gncg_graph.Incr_apsp.set_default_selfcheck k;
        parse rest
      | _ -> fail "--selfcheck expects a positive integer, got %S" c)
    | "--chaos" :: rest ->
      chaos := true;
      parse rest
    | a :: _ -> fail "unknown argument %S" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !chaos then chaos_smoke ();
  let rng = Gncg_util.Prng.create 7 in
  let n = 60 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:6.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  let run evaluator =
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 ~evaluator
         Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
  in
  let reference, t_ref = time (fun () -> run `Reference) in
  let incremental, t_inc = time (fun () -> run `Incremental) in
  let profile_of = function
    | Gncg.Dynamics.Converged { profile; _ } -> profile
    | _ -> fail "greedy dynamics did not converge (n=%d)" n
  in
  let p_ref = profile_of reference and p_inc = profile_of incremental in
  (* Tie-breaking may differ within tolerance: both must be greedy-stable
     with matching social cost, not bit-identical histories. *)
  if not (Gncg.Equilibrium.is_ge host p_inc) then
    fail "incremental dynamics converged to a non-GE profile";
  let c_ref = Gncg.Cost.social_cost host p_ref in
  let c_inc = Gncg.Cost.social_cost host p_inc in
  if not (Gncg_util.Flt.approx_eq ~tol:1e-6 c_ref c_inc) then
    fail "reference/incremental stable costs diverge: %.9f vs %.9f" c_ref c_inc;
  Printf.printf "dynamics n=%d: reference %.3f s, incremental %.3f s (%.1fx)\n%!" n t_ref
    t_inc (t_ref /. t_inc);
  let seq, t_seq = time (fun () -> Gncg.Equilibrium.is_ge host p_inc) in
  let par, t_par = time (fun () -> Gncg.Equilibrium.is_ge ~exec:Gncg_util.Exec.default host p_inc) in
  if seq <> par then fail "sequential/parallel is_ge disagree";
  Printf.printf "is_ge n=%d: sequential %.3f s, parallel %.3f s (%.1fx, %d domains)\n%!" n
    t_seq t_par (t_seq /. t_par)
    (Gncg_util.Parallel.default_domains ());
  (* Journal smoke: run a tiny journaled batch, resume it, and require
     that the resume re-executes nothing and reproduces the same runs. *)
  let journal = Filename.temp_file "gncg_smoke" ".jsonl" in
  let config =
    Gncg_runs.Batch.config
      (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 5.0 })
      ~ns:[ 5 ] ~alphas:[ 1.0; 4.0 ] ~seeds:[ 1; 2 ]
  in
  let first = Gncg_runs.Batch.run ~journal config in
  (match Gncg_runs.Batch.resume ~journal () with
  | Error msg -> fail "journal resume failed: %s" msg
  | Ok resumed ->
    if resumed.progress.executed <> 0 then
      fail "resume of a complete journal re-executed %d jobs" resumed.progress.executed;
    if
      Gncg_workload.Report.runs_to_csv resumed.runs
      <> Gncg_workload.Report.runs_to_csv first.runs
    then fail "resumed runs differ from the original batch");
  Sys.remove journal;
  Printf.printf "journal run/resume: %d jobs, resume re-executed 0\n%!"
    first.progress.total;
  print_endline "bench-smoke ok"
