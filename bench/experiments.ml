(* The reproduction harness: one experiment per table/figure of the paper.
   Each [eN_*] function prints the series the paper reports; EXPERIMENTS.md
   records the comparison against the published claims. *)

module T = Gncg_util.Tablefmt
module Prng = Gncg_util.Prng
module C = Gncg_constructions
module W = Gncg_workload

let section id title =
  Printf.printf "\n=== %s — %s ===\n" id title

let engine_ratio host ne_profile opt_network =
  Gncg.Cost.social_cost host ne_profile
  /. Gncg.Cost.network_social_cost host opt_network

(* ------------------------------------------------------------------ E1 *)

let e1_poa_onetwo_small_alpha () =
  section "E1" "1-2-GNCG, alpha < 1/2: PoA = 1 (Thm 9)";
  print_endline "Best-response dynamics vs Algorithm 1 optimum on random 1-2 hosts.";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun alpha ->
          let ratios = ref [] and conv = ref 0 and total = ref 0 in
          for seed = 1 to 5 do
            incr total;
            let r = Prng.create ((1000 * n) + seed) in
            let host = Gncg.Host.make ~alpha (Gncg_metric.One_two.random r ~n ~p_one:0.5) in
            let start = W.Instances.random_profile r host in
            match
              Gncg.Dynamics.run
                (Gncg.Dynamics.Config.make ~max_steps:800 Gncg.Dynamics.Best_response
                   Gncg.Dynamics.Round_robin)
                host start
            with
            | Gncg.Dynamics.Converged { profile; _ } ->
              incr conv;
              let _, opt = Gncg.Social_optimum.algorithm_one host in
              ratios := (Gncg.Cost.social_cost host profile /. opt) :: !ratios
            | _ -> ()
          done;
          let worst = List.fold_left Float.max 0.0 !ratios in
          rows :=
            [
              string_of_int n;
              T.fl ~digits:2 alpha;
              Printf.sprintf "%d/%d" !conv !total;
              T.fl ~digits:6 worst;
              "1.000000";
            ]
            :: !rows)
        [ 0.2; 0.4 ])
    [ 6; 8; 10 ];
  T.print ~header:[ "n"; "alpha"; "converged"; "worst NE/OPT"; "paper" ] (List.rev !rows)

(* ------------------------------------------------------------------ E2 *)

let e2_poa_onetwo_fig3 () =
  section "E2" "1-2-GNCG lower bound (Thm 7+8, Fig 3)";
  print_endline "Star-of-stars construction: NE/OPT ratio approaches the bound as N grows.";
  let rows = ref [] in
  let do_variant variant alpha =
    List.iter
      (fun nb ->
        let host = C.Thm8_onetwo.host variant ~alpha ~nb_centers:nb ~nb_leaves:nb in
        let ne = C.Thm8_onetwo.ne_profile variant ~nb_centers:nb ~nb_leaves:nb in
        let ne_cost = Gncg.Cost.social_cost host ne in
        (* alpha = 1: the 1-edge subgraph is optimal.  alpha in [1/2,1):
           the paper upper-bounds OPT by the complete host graph. *)
        let opt_cost =
          match variant with
          | C.Thm8_onetwo.Alpha_one ->
            Gncg.Cost.network_social_cost host
              (C.Thm8_onetwo.opt_network variant ~nb_centers:nb ~nb_leaves:nb)
          | C.Thm8_onetwo.Alpha_mid -> Gncg.Social_optimum.complete_host_cost host
        in
        let stable =
          if nb <= 3 then string_of_bool (Gncg.Equilibrium.is_ge host ne) else "(assumed)"
        in
        rows :=
          [
            (match variant with C.Thm8_onetwo.Alpha_one -> "alpha=1" | _ -> "alpha=" ^ T.fl ~digits:2 alpha);
            string_of_int nb;
            string_of_int (C.Thm8_onetwo.size ~nb_centers:nb ~nb_leaves:nb);
            T.fl ~digits:4 (ne_cost /. opt_cost);
            T.fl ~digits:4 (C.Thm8_onetwo.expected_ratio_limit variant ~alpha);
            stable;
          ]
          :: !rows)
      [ 2; 3; 5; 8; 12 ]
  in
  do_variant C.Thm8_onetwo.Alpha_one 1.0;
  do_variant C.Thm8_onetwo.Alpha_mid 0.5;
  do_variant C.Thm8_onetwo.Alpha_mid 0.75;
  T.print
    ~header:[ "variant"; "N"; "agents"; "NE/OPT"; "limit"; "greedy-stable" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ E3 *)

let e3_onetwo_large_alpha () =
  section "E3" "1-2-GNCG, alpha > 1: stars are NE (Thm 10); NE diameter is O(sqrt(alpha)) (Thm 11)";
  let rows = ref [] in
  List.iter
    (fun alpha ->
      (* Star stability (exact NE check at n=8). *)
      let r = Prng.create (int_of_float (alpha *. 100.0)) in
      let host = Gncg.Host.make ~alpha (Gncg_metric.One_two.random r ~n:8 ~p_one:0.5) in
      let star_ne =
        if alpha >= 3.0 then
          string_of_bool (Gncg.Equilibrium.is_ne host (Gncg.Strategy.star 8 ~center:0))
        else "n/a"
      in
      (* Diameter of dynamics equilibria on larger hosts. *)
      let diams = ref [] in
      for seed = 1 to 4 do
        let r = Prng.create (seed + int_of_float alpha) in
        let host =
          Gncg.Host.make ~alpha (Gncg_metric.One_two.random r ~n:24 ~p_one:0.3)
        in
        let start = W.Instances.random_profile r host in
        match
          Gncg.Dynamics.run
            (Gncg.Dynamics.Config.make ~max_steps:4000 Gncg.Dynamics.Greedy_response
               Gncg.Dynamics.Round_robin)
            host start
        with
        | Gncg.Dynamics.Converged { profile; _ } ->
          diams := Gncg.Network.diameter host profile :: !diams
        | _ -> ()
      done;
      let max_diam = List.fold_left Float.max 0.0 !diams in
      rows :=
        [
          T.fl ~digits:1 alpha;
          star_ne;
          T.fl ~digits:1 max_diam;
          T.fl ~digits:2 (sqrt alpha);
          T.fl ~digits:2 (max_diam /. sqrt alpha);
        ]
        :: !rows)
    [ 3.0; 4.0; 9.0; 16.0; 25.0 ];
  T.print
    ~header:[ "alpha"; "star is NE"; "max GE diameter"; "sqrt(alpha)"; "diam/sqrt" ]
    (List.rev !rows);
  print_endline "(Thm 11 predicts diameter <= c*sqrt(alpha): the last column stays bounded.)"

(* ------------------------------------------------------------------ E4 *)

let e4_poa_tree_fig6 () =
  section "E4" "Tree metrics: PoA = (alpha+2)/2 is tight (Thm 15 + Thm 1, Fig 6)";
  let rows = ref [] in
  List.iter
    (fun alpha ->
      List.iter
        (fun n ->
          let host = C.Thm15_tree_star.host ~alpha ~n in
          let ne = C.Thm15_tree_star.ne_profile ~alpha ~n in
          let opt = C.Thm15_tree_star.opt_network ~alpha ~n in
          let ratio = engine_ratio host ne opt in
          let verified =
            if n <= 7 then string_of_bool (Gncg.Equilibrium.is_ne host ne)
            else if n <= 64 then string_of_bool (Gncg.Equilibrium.is_ge host ne)
            else "(formula)"
          in
          rows :=
            [
              T.fl ~digits:2 alpha;
              string_of_int n;
              T.fl ~digits:4 ratio;
              T.fl ~digits:4 (C.Thm15_tree_star.ratio_limit ~alpha);
              verified;
            ]
            :: !rows)
        [ 6; 16; 64; 256 ])
    [ 1.0; 2.0; 4.0; 8.0 ];
  T.print ~header:[ "alpha"; "n"; "NE/OPT"; "(a+2)/2"; "NE verified" ] (List.rev !rows)

(* ------------------------------------------------------------------ E5 *)

let e5_tree_ne_structure () =
  section "E5" "Tree metrics: equilibria are trees; T itself is NE and OPT (Thm 12, Cor 3)";
  let total = ref 0 and trees = ref 0 and at_opt = ref 0 in
  let ratios = ref [] in
  for seed = 1 to 12 do
    let r = Prng.create (7000 + seed) in
    let tree = Gncg_metric.Tree_metric.random r ~n:7 ~wmin:1.0 ~wmax:5.0 in
    let alpha = 0.5 +. Prng.float r 4.0 in
    let host = Gncg.Host.make ~alpha (Gncg_metric.Tree_metric.metric tree) in
    let start = W.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
        (Gncg.Dynamics.Config.make ~max_steps:600 Gncg.Dynamics.Best_response
           Gncg.Dynamics.Round_robin)
        host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      incr total;
      let g = Gncg.Network.graph host profile in
      if Gncg_graph.Connectivity.is_tree g then incr trees;
      let _, opt = Gncg.Social_optimum.tree_optimum tree host in
      let ratio = Gncg.Cost.social_cost host profile /. opt in
      ratios := ratio :: !ratios;
      if Gncg_util.Flt.approx_eq ~tol:1e-6 ratio 1.0 then incr at_opt
    | _ -> ()
  done;
  Printf.printf "converged runs: %d; trees: %d/%d (paper: all); at optimum cost: %d/%d\n"
    !total !trees !total !at_opt !total;
  Printf.printf "NE/OPT ratios: mean %.4f, worst %.4f (upper bound (a+2)/2)\n"
    (Gncg_util.Stats.mean !ratios)
    (List.fold_left Float.max 0.0 !ratios)

(* ------------------------------------------------------------------ E6 *)

let e6_poa_line_fig9 () =
  section "E6" "Points on a line: PoA > 1 (Lemma 8, Fig 9)";
  let rows = ref [] in
  List.iter
    (fun alpha ->
      List.iter
        (fun n ->
          let host = C.Lemma8_path.host ~alpha ~n in
          let ne = C.Lemma8_path.ne_profile ~alpha ~n in
          let opt = C.Lemma8_path.opt_network ~alpha ~n in
          let ratio = engine_ratio host ne opt in
          let verified =
            if n <= 6 then string_of_bool (Gncg.Equilibrium.is_ne host ne) else "(lemma)"
          in
          rows :=
            [ T.fl ~digits:2 alpha; string_of_int (n + 1); T.fl ~digits:4 ratio; verified ]
            :: !rows)
        [ 3; 6; 10 ])
    [ 1.0; 2.0; 4.0 ];
  T.print ~header:[ "alpha"; "points"; "star/path cost"; "NE verified" ] (List.rev !rows);
  print_endline "(Lemma 8: every row stays strictly above 1.)"

(* ------------------------------------------------------------------ E7 *)

let e7_poa_fourpoint () =
  section "E7" "Four collinear points (Thm 18): PoA >= cubic rational in alpha";
  let rows =
    List.map
      (fun alpha ->
        let host = C.Thm18_fourpoint.host ~alpha in
        let ne = C.Thm18_fourpoint.ne_profile ~alpha in
        let opt = C.Thm18_fourpoint.opt_network ~alpha in
        [
          T.fl ~digits:2 alpha;
          T.fl ~digits:5 (engine_ratio host ne opt);
          T.fl ~digits:5 (C.Thm18_fourpoint.ratio_formula ~alpha);
          string_of_bool (Gncg.Equilibrium.is_ne host ne);
        ])
      [ 0.5; 1.0; 2.0; 4.0; 8.0; 32.0 ]
  in
  T.print ~header:[ "alpha"; "measured"; "closed form"; "NE verified" ] rows;
  print_endline "(The bound tends to 3 as alpha grows.)"

(* ------------------------------------------------------------------ E8 *)

let e8_poa_cross_fig10 () =
  section "E8" "l1 cross in R^d (Thm 19, Fig 10): PoA >= 1 + a/(2 + a/(2d-1))";
  let rows = ref [] in
  List.iter
    (fun alpha ->
      List.iter
        (fun d ->
          let formula = C.Thm19_cross.ratio_formula ~alpha ~d in
          let measured, verified =
            if d <= 8 then begin
              let host = C.Thm19_cross.host ~alpha ~d in
              let ne = C.Thm19_cross.ne_profile ~alpha ~d in
              let opt = C.Thm19_cross.opt_network ~alpha ~d in
              let v =
                if d <= 3 then string_of_bool (Gncg.Equilibrium.is_ne host ne)
                else string_of_bool (Gncg.Equilibrium.is_ge host ne)
              in
              (T.fl ~digits:4 (engine_ratio host ne opt), v)
            end
            else ("(formula)", "-")
          in
          rows :=
            [
              T.fl ~digits:1 alpha;
              string_of_int d;
              string_of_int ((2 * d) + 1);
              measured;
              T.fl ~digits:4 formula;
              T.fl ~digits:4 (Gncg.Quality.metric_upper alpha);
              verified;
            ]
            :: !rows)
        [ 1; 2; 4; 8; 16; 64 ])
    [ 2.0; 8.0 ];
  T.print
    ~header:[ "alpha"; "d"; "agents"; "measured"; "formula"; "(a+2)/2"; "verified" ]
    (List.rev !rows);
  print_endline "(The bound climbs towards the metric upper bound as d grows.)"

(* ------------------------------------------------------------------ E9 *)

let e9_general_gap () =
  section "E9" "General weights (Thm 20): per-pair bound ((a+2)/2)^2 vs actual ratio";
  let rows =
    List.map
      (fun alpha ->
        let ne_ok =
          match C.Thm20_cycle.ne_profile ~alpha with
          | Some s -> Gncg.Equilibrium.is_ne (C.Thm20_cycle.host ~alpha) s
          | None -> false
        in
        [
          T.fl ~digits:2 alpha;
          T.fl ~digits:4 (C.Thm20_cycle.cost_ratio ~alpha);
          T.fl ~digits:4 (Gncg.Quality.metric_upper alpha);
          T.fl ~digits:4 (C.Thm20_cycle.sigma_heavy_pair ~alpha);
          string_of_bool ne_ok;
        ])
      [ 0.5; 1.0; 2.0; 4.0; 8.0 ]
  in
  T.print
    ~header:[ "alpha"; "NE/OPT"; "(a+2)/2"; "sigma pair"; "NE verified" ]
    rows;
  print_endline
    "(The actual ratio matches the conjectured (a+2)/2 while the per-pair\n\
    \ accounting of Thm 20 is quadratically weaker — Conjecture 2.)"

(* ----------------------------------------------------------------- E10 *)

let e10_fip_violation () =
  section "E10" "No finite improvement property (Thms 14 & 17, Figs 5 & 8)";
  (* (a) Stored witnesses found by offline search — instances matching the
     paper's figures — validated move by move. *)
  let tree_host, tree_cycle = C.Brcycle.fig5_like_instance () in
  Printf.printf
    "Fig 5-style tree metric (weights {3,7,2,5,12,9,11,2,10}, alpha=2):\n\
    \  improving cycle of %d moves; certificate valid: %b\n"
    (List.length tree_cycle - 1)
    (C.Brcycle.verify_cycle tree_host tree_cycle);
  let f8_host, f8_cycle = C.Brcycle.fig8_cycle () in
  Printf.printf
    "Fig 8 point set (1-norm, alpha=1):\n\
    \  improving cycle of %d moves; certificate valid: %b\n"
    (List.length f8_cycle - 1)
    (C.Brcycle.verify_cycle f8_host f8_cycle);
  (* (b) Live search: improving-response dynamics on the Fig 8 host must
     also rediscover a cycle. *)
  (match
     C.Brcycle.search_host ~tries:150 ~max_steps:1500 (Prng.create 998)
       (C.Brcycle.fig8_host ~alpha:1.0)
   with
  | Some f ->
    Printf.printf
      "Live search on Fig 8 host: cycle of %d moves rediscovered; verified: %b\n"
      (List.length f.cycle - 1)
      (C.Brcycle.verify_cycle f.host f.cycle)
  | None -> print_endline "Live search on Fig 8 host: no cycle within this budget.");
  (* (c) Live search on random l1 point sets (Thm 17 beyond the figure). *)
  match
    C.Brcycle.search_generated ~tries:60 ~max_steps:800
      ~host_gen:(fun r ->
        let pts = Gncg_metric.Euclidean.random_uniform r ~n:8 ~d:2 ~lo:0.0 ~hi:5.0 in
        Gncg.Host.make ~alpha:(0.5 +. Prng.float r 2.5)
          (Gncg_metric.Euclidean.metric L1 pts))
      (Prng.create 16)
  with
  | Some f ->
    Printf.printf "Random l1 points: improving cycle of %d moves found; verified: %b\n"
      (List.length f.cycle - 1)
      (C.Brcycle.verify_cycle f.host f.cycle)
  | None -> print_endline "Random l1 points: no improving cycle found in this budget."

(* ----------------------------------------------------------------- E11 *)

let e11_vc_reduction () =
  section "E11" "NE decision is NP-hard: vertex-cover reduction (Thm 4, Fig 2)";
  let instances =
    [
      ("triangle", { C.Vc_reduction.nv = 3; es = [ (0, 1); (1, 2); (2, 0) ] });
      ("path-4", { C.Vc_reduction.nv = 4; es = [ (0, 1); (1, 2); (2, 3) ] });
      ("star-4", { C.Vc_reduction.nv = 4; es = [ (0, 1); (0, 2); (0, 3) ] });
      ("cycle-5", { C.Vc_reduction.nv = 5; es = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] });
    ]
  in
  let rows =
    List.map
      (fun (name, inst) ->
        let host = C.Vc_reduction.host inst in
        let kmin = List.length (C.Vc_reduction.min_vertex_cover inst) in
        let full = List.init inst.C.Vc_reduction.nv Fun.id in
        let profile = C.Vc_reduction.profile inst ~cover:full in
        let _, br = Gncg.Best_response.exact host profile (C.Vc_reduction.u_agent inst) in
        let minimal = C.Vc_reduction.profile inst ~cover:(C.Vc_reduction.min_vertex_cover inst) in
        [
          name;
          string_of_int (C.Vc_reduction.game_size inst);
          string_of_int kmin;
          T.fl ~digits:1 br;
          T.fl ~digits:1 (C.Vc_reduction.u_cost_formula inst ~cover_size:kmin);
          string_of_bool (Gncg.Equilibrium.is_ne host minimal);
        ])
      instances
  in
  T.print
    ~align:[ T.Left ]
    ~header:[ "instance"; "agents"; "min VC"; "u BR cost"; "3N+6m+k"; "min profile NE" ]
    rows

(* ----------------------------------------------------------------- E12 *)

let e12_setcover_br () =
  section "E12" "Best response is NP-hard: set-cover reductions (Thm 13 Fig 4; Thm 16 Fig 7)";
  let rng = Prng.create 77 in
  let rows = ref [] in
  for i = 1 to 5 do
    let sc = C.Set_cover.random rng ~universe:(3 + Prng.int rng 3) ~nb_subsets:(3 + Prng.int rng 2) in
    let kmin = List.length (C.Set_cover.min_cover sc) in
    let tree_size =
      let host = C.Setcover_tree.host sc in
      let br, _ = Gncg.Best_response.exact host (C.Setcover_tree.profile sc) C.Setcover_tree.u_agent in
      match C.Setcover_tree.cover_of_strategy sc br with
      | Some cover when C.Set_cover.is_cover sc cover -> string_of_int (List.length cover)
      | _ -> "INVALID"
    in
    let rd_size =
      let host = C.Setcover_rd.host sc in
      let br, _ = Gncg.Best_response.exact host (C.Setcover_rd.profile sc) C.Setcover_rd.u_agent in
      match C.Setcover_rd.cover_of_strategy sc br with
      | Some cover when C.Set_cover.is_cover sc cover -> string_of_int (List.length cover)
      | _ -> "INVALID"
    in
    rows :=
      [
        Printf.sprintf "random-%d" i;
        string_of_int sc.C.Set_cover.universe;
        string_of_int (Array.length sc.C.Set_cover.subsets);
        string_of_int kmin;
        tree_size;
        rd_size;
      ]
      :: !rows
  done;
  T.print
    ~align:[ T.Left ]
    ~header:[ "instance"; "elements"; "subsets"; "min cover"; "tree BR"; "R^2 BR" ]
    (List.rev !rows);
  print_endline "(Both reductions: the exact best response buys exactly a minimum cover.)"

(* ----------------------------------------------------------------- E13 *)

let e13_metric_upper_bound () =
  section "E13" "Thm 1: every metric Nash equilibrium within (alpha+2)/2 of OPT";
  let rows = ref [] in
  List.iter
    (fun model ->
      let worst = ref 0.0 and count = ref 0 in
      for seed = 1 to 8 do
        let r = Prng.create (9000 + seed) in
        let alpha = 0.5 +. Prng.float r 4.0 in
        let host = W.Instances.random_host r model ~n:6 ~alpha in
        let start = W.Instances.random_profile r host in
        match
          Gncg.Dynamics.run
            (Gncg.Dynamics.Config.make ~max_steps:400 Gncg.Dynamics.Best_response
               Gncg.Dynamics.Round_robin)
            host start
        with
        | Gncg.Dynamics.Converged { profile; _ } ->
          incr count;
          let _, opt = Gncg.Social_optimum.best_known host in
          let margin =
            Gncg.Cost.social_cost host profile /. opt /. Gncg.Quality.metric_upper alpha
          in
          worst := Float.max !worst margin
        | _ -> ()
      done;
      rows :=
        [
          W.Instances.model_name model;
          string_of_int !count;
          T.fl ~digits:4 !worst;
        ]
        :: !rows)
    [
      W.Instances.One_two { p_one = 0.4 };
      W.Instances.Tree { wmin = 1.0; wmax = 10.0 };
      W.Instances.Euclid { norm = L2; d = 2; box = 100.0 };
      W.Instances.Graph_metric { p = 0.3; wmin = 1.0; wmax = 10.0 };
    ];
  T.print
    ~align:[ T.Left ]
    ~header:[ "model"; "NE found"; "worst ratio/bound (must be <= 1)" ]
    (List.rev !rows)

(* ----------------------------------------------------------------- E14 *)

let e14_approx_ne () =
  section "E14" "Approximate equilibria (Thm 2, Thm 3, Cor 2)";
  print_endline
    "Add-only equilibria from dynamics: measured approximation factors vs bounds.";
  let rows = ref [] in
  for seed = 1 to 8 do
    let r = Prng.create (11_000 + seed) in
    let alpha = 0.5 +. Prng.float r 3.0 in
    let host =
      Gncg.Host.make ~alpha
        (Gncg_metric.Random_host.uniform_metric r ~n:6 ~lo:1.0 ~hi:6.0)
    in
    let start = W.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
        (Gncg.Dynamics.Config.make ~max_steps:2000 Gncg.Dynamics.Add_only
           Gncg.Dynamics.Round_robin)
        host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      let ge = Gncg.Equilibrium.approx_factor Gncg.Equilibrium.GE host profile in
      let ne = Gncg.Equilibrium.approx_factor Gncg.Equilibrium.NE host profile in
      rows :=
        [
          string_of_int seed;
          T.fl ~digits:2 alpha;
          T.fl ~digits:3 ge;
          T.fl ~digits:3 (Gncg.Quality.ae_ge_factor alpha);
          T.fl ~digits:3 ne;
          T.fl ~digits:3 (Gncg.Quality.ae_ne_factor alpha);
        ]
        :: !rows
    | _ -> ()
  done;
  T.print
    ~header:[ "seed"; "alpha"; "GE factor"; "a+1"; "NE factor"; "3(a+1)" ]
    (List.rev !rows)

(* ----------------------------------------------------------------- E15 *)

let e15_spanner_lemmas () =
  section "E15" "Spanner lemmas: AE is an (a+1)-spanner; OPT is an (a/2+1)-spanner";
  let rows = ref [] in
  for seed = 1 to 8 do
    let r = Prng.create (12_000 + seed) in
    let alpha = 0.5 +. Prng.float r 4.0 in
    let host =
      Gncg.Host.make ~alpha
        (Gncg_metric.Random_host.uniform_metric r ~n:6 ~lo:1.0 ~hi:6.0)
    in
    let start = W.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
        (Gncg.Dynamics.Config.make ~max_steps:2000 Gncg.Dynamics.Add_only
           Gncg.Dynamics.Round_robin)
        host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      let ae_stretch = Gncg.Quality.host_stretch host (Gncg.Network.graph host profile) in
      let opt_g, _ = Gncg.Social_optimum.exact_small host in
      let opt_stretch = Gncg.Quality.host_stretch host opt_g in
      rows :=
        [
          string_of_int seed;
          T.fl ~digits:2 alpha;
          T.fl ~digits:3 ae_stretch;
          T.fl ~digits:3 (Gncg.Quality.ae_spanner_stretch alpha);
          T.fl ~digits:3 opt_stretch;
          T.fl ~digits:3 (Gncg.Quality.opt_spanner_stretch alpha);
        ]
        :: !rows
    | _ -> ()
  done;
  T.print
    ~header:[ "seed"; "alpha"; "AE stretch"; "a+1"; "OPT stretch"; "a/2+1" ]
    (List.rev !rows)

(* ----------------------------------------------------------------- E16 *)

let e16_spanner_nash () =
  section "E16" "1-2 hosts: spanner equilibria and Algorithm 1 (Thm 5, Thm 6)";
  let rows = ref [] in
  for seed = 1 to 6 do
    let r = Prng.create (13_000 + seed) in
    let alpha = 0.5 +. Prng.float r 0.5 in
    let host = Gncg.Host.make ~alpha (Gncg_metric.One_two.random r ~n:5 ~p_one:0.5) in
    let spanner = Gncg.Spanner_nash.min_weight_spanner_exact host in
    let has_ne =
      if Gncg_graph.Wgraph.m spanner <= 10 then
        match Gncg.Spanner_nash.nash_ownership host spanner with
        | Some _ -> "yes"
        | None -> "NO"
      else "(skipped)"
    in
    let _, alg1 = Gncg.Social_optimum.algorithm_one host in
    let _, exact = Gncg.Social_optimum.exact_small host in
    rows :=
      [
        string_of_int seed;
        T.fl ~digits:2 alpha;
        string_of_int (Gncg_graph.Wgraph.m spanner);
        has_ne;
        T.fl ~digits:2 alg1;
        T.fl ~digits:2 exact;
        string_of_bool (Gncg_util.Flt.approx_eq ~tol:1e-6 alg1 exact);
      ]
      :: !rows
  done;
  T.print
    ~header:
      [ "seed"; "alpha"; "spanner edges"; "NE ownership"; "Alg 1"; "exact OPT"; "optimal" ]
    (List.rev !rows)

(* ----------------------------------------------------------------- E17 *)

let e17_price_of_stability () =
  section "E17" "Price of Stability (paper's open problem, Sec. 5)";
  print_endline "Exhaustive equilibrium enumeration on 5-agent hosts:";
  let rows = ref [] in
  List.iter
    (fun (name, model) ->
      for seed = 1 to 3 do
        let r = Prng.create (14_000 + seed) in
        let alpha = 0.5 +. Prng.float r 3.0 in
        let host = W.Instances.random_host r model ~n:5 ~alpha in
        match Gncg.Price_of_stability.exact ~max_pairs:10 host with
        | Some s ->
          rows :=
            [
              name;
              T.fl ~digits:2 alpha;
              string_of_int s.Gncg.Price_of_stability.ne_count;
              T.fl ~digits:4 (s.Gncg.Price_of_stability.best_ne_cost /. s.Gncg.Price_of_stability.opt_cost);
              T.fl ~digits:4 (s.Gncg.Price_of_stability.worst_ne_cost /. s.Gncg.Price_of_stability.opt_cost);
              T.fl ~digits:4 (Gncg.Quality.metric_upper alpha);
            ]
            :: !rows
        | None ->
          rows := [ name; T.fl ~digits:2 alpha; "0"; "-"; "-"; "-" ] :: !rows
      done)
    [
      ("1-2", W.Instances.One_two { p_one = 0.4 });
      ("tree", W.Instances.Tree { wmin = 1.0; wmax = 10.0 });
      ("euclid", W.Instances.Euclid { norm = L2; d = 2; box = 100.0 });
      ("general", W.Instances.General { lo = 1.0; hi = 10.0 });
    ];
  T.print
    ~align:[ T.Left ]
    ~header:[ "model"; "alpha"; "#NE"; "PoS"; "PoA(n=5)"; "(a+2)/2" ]
    (List.rev !rows);
  print_endline "\nCoordination: seeding dynamics at the social optimum (n=10, greedy rule):";
  let rows = ref [] in
  for seed = 1 to 5 do
    let r = Prng.create (15_000 + seed) in
    let alpha = 1.0 +. Prng.float r 5.0 in
    let host =
      Gncg.Host.make ~alpha
        (Gncg_metric.Random_host.uniform_metric r ~n:10 ~lo:1.0 ~hi:6.0)
    in
    let _, opt = Gncg.Social_optimum.best_known host in
    let from_random =
      match
        Gncg.Price_of_stability.cheapest_stable_via_dynamics ~starts:6 (Prng.split r) host
      with
      | Some (_, c) -> T.fl ~digits:4 (c /. opt)
      | None -> "-"
    in
    let from_opt =
      match Gncg.Price_of_stability.stable_from_optimum host with
      | Some (_, c) -> T.fl ~digits:4 (c /. opt)
      | None -> "-"
    in
    rows := [ string_of_int seed; T.fl ~digits:2 alpha; from_random; from_opt ] :: !rows
  done;
  T.print
    ~header:[ "seed"; "alpha"; "best of 6 random starts / opt"; "opt-seeded / opt" ]
    (List.rev !rows);
  print_endline "(Opt-seeded dynamics stay at or very near the optimum: low-cost stable\n\
                \ states are reachable with coordination, as the PoS question suggests.)"

(* ----------------------------------------------------------------- E18 *)

let e18_one_inf () =
  section "E18" "1-inf-GNCG (Demaine et al. variant, Table 1 row 2)";
  print_endline "Greedy dynamics on random connected 1-inf hosts (non-metric).";
  let rows = ref [] in
  List.iter
    (fun alpha ->
      let ratios = ref [] and diams = ref [] in
      for seed = 1 to 5 do
        let r = Prng.create (16_000 + seed) in
        let host = Gncg.Host.make ~alpha (Gncg_metric.One_inf.random_connected r ~n:12 ~p:0.25) in
        let start = W.Instances.random_profile r host in
        match
          Gncg.Dynamics.run
            (Gncg.Dynamics.Config.make ~max_steps:4000 ~evaluator:`Incremental
               Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
            host start
        with
        | Gncg.Dynamics.Converged { profile; _ } ->
          let c = Gncg.Cost.social_cost host profile in
          let _, opt = Gncg.Social_optimum.greedy_heuristic host in
          ratios := (c /. opt) :: !ratios;
          diams := Gncg.Network.diameter host profile :: !diams
        | _ -> ()
      done;
      if !ratios <> [] then
        rows :=
          [
            T.fl ~digits:1 alpha;
            string_of_int (List.length !ratios);
            T.fl ~digits:4 (Gncg_util.Stats.mean !ratios);
            T.fl ~digits:4 (List.fold_left Float.max 0.0 !ratios);
            T.fl ~digits:1 (List.fold_left Float.max 0.0 !diams);
            T.fl ~digits:2 (sqrt alpha);
          ]
          :: !rows)
    [ 1.0; 2.0; 4.0; 9.0 ];
  T.print
    ~header:[ "alpha"; "GE found"; "mean GE/opt"; "worst"; "max diam"; "sqrt(alpha)" ]
    (List.rev !rows);
  print_endline
    "(The engine supports the non-metric 1-inf special case; measured ratios\n\
    \ stay far below the O(sqrt(alpha)) upper bound of Demaine et al.)"

(* ----------------------------------------------------------------- E19 *)

let e19_conjectures () =
  section "E19" "Probing the paper's conjectures";
  (* Conjecture 1: the R^d-GNCG has no FIP under ANY p-norm.  The paper
     proves it for the 1-norm (Thm 17); we search for improving-move
     cycles under other norms. *)
  print_endline "Conjecture 1 — improving-move cycles beyond the 1-norm:";
  List.iter
    (fun (name, norm) ->
      match
        C.Brcycle.search_generated ~tries:150 ~max_steps:800
          ~host_gen:(fun r ->
            let pts = Gncg_metric.Euclidean.random_uniform r ~n:8 ~d:2 ~lo:0.0 ~hi:5.0 in
            Gncg.Host.make
              ~alpha:(0.5 +. Prng.float r 2.5)
              (Gncg_metric.Euclidean.metric norm pts))
          (Prng.create 21)
      with
      | Some f ->
        Printf.printf "  %-4s: cycle of %d moves found; verified: %b\n" name
          (List.length f.cycle - 1)
          (C.Brcycle.verify_cycle f.host f.cycle)
      | None -> Printf.printf "  %-4s: no cycle in this budget\n" name)
    [
      ("l2", Gncg_metric.Euclidean.L2);
      ("l3", Gncg_metric.Euclidean.Lp 3.0);
      ("linf", Gncg_metric.Euclidean.Linf);
    ];
  (* Conjecture 2: the general-weights PoA equals (alpha+2)/2, i.e. the
     ((alpha+2)/2)^2 upper bound of Thm 20 is loose.  Exhaustively
     enumerate equilibria of random non-metric 4-agent hosts and record
     the worst ratio relative to both bounds. *)
  print_endline "\nConjecture 2 — worst exhaustive NE ratio on general 4-agent hosts:";
  let worst_margin = ref 0.0 and checked = ref 0 in
  for seed = 1 to 20 do
    let r = Prng.create (17_000 + seed) in
    let alpha = 0.5 +. Prng.float r 4.0 in
    let host =
      Gncg.Host.make ~alpha (Gncg_metric.Random_host.uniform r ~n:4 ~lo:1.0 ~hi:10.0)
    in
    match Gncg.Price_of_stability.exact host with
    | Some s ->
      incr checked;
      let ratio = s.Gncg.Price_of_stability.worst_ne_cost /. s.Gncg.Price_of_stability.opt_cost in
      worst_margin := Float.max !worst_margin (ratio /. Gncg.Quality.metric_upper alpha)
    | None -> ()
  done;
  Printf.printf
    "  %d hosts enumerated; worst NE/OPT relative to (a+2)/2: %.4f\n\
    \  (never above 1.0 -> consistent with Conjecture 2; the Thm-20 bound\n\
    \   ((a+2)/2)^2 was never approached)\n"
    !checked !worst_margin

(* ----------------------------------------------------------------- E20 *)

let e20_convergence_speed () =
  section "E20" "Convergence speed of response dynamics (empirical)";
  print_endline
    "Moves until convergence from random connected starts (5 seeds each).";
  let rows = ref [] in
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun n ->
          List.iter
            (fun (rname, rule) ->
              let moves = ref [] and conv = ref 0 in
              for seed = 1 to 5 do
                let r = Prng.create ((18_000 + seed) * n) in
                let host = W.Instances.random_host r model ~n ~alpha:2.0 in
                let start = W.Instances.random_profile r host in
                match
                  Gncg.Dynamics.run
                    (Gncg.Dynamics.Config.make ~max_steps:8000 ~evaluator:`Incremental
                       rule Gncg.Dynamics.Round_robin)
                    host start
                with
                | Gncg.Dynamics.Converged { steps; _ } ->
                  incr conv;
                  moves := float_of_int (List.length steps) :: !moves
                | _ -> ()
              done;
              rows :=
                [
                  mname;
                  string_of_int n;
                  rname;
                  Printf.sprintf "%d/5" !conv;
                  (if !moves = [] then "-" else T.fl ~digits:1 (Gncg_util.Stats.mean !moves));
                  (if !moves = [] then "-"
                   else T.fl ~digits:1 (List.fold_left Float.max 0.0 !moves));
                ]
                :: !rows)
            [ ("greedy", Gncg.Dynamics.Greedy_response); ("add-only", Gncg.Dynamics.Add_only) ])
        [ 6; 10; 14 ])
    [
      ("1-2", W.Instances.One_two { p_one = 0.4 });
      ("tree", W.Instances.Tree { wmin = 1.0; wmax = 10.0 });
      ("euclid", W.Instances.Euclid { norm = L2; d = 2; box = 100.0 });
    ];
  T.print
    ~align:[ T.Left ]
    ~header:[ "model"; "n"; "rule"; "converged"; "mean moves"; "max moves" ]
    (List.rev !rows);
  print_endline
    "(Convergence in a handful of moves per agent: selfish dynamics settle\n\
    \ quickly on random instances even though no potential function exists.)"

(* ----------------------------------------------------------------- E21 *)

let e21_scaling () =
  section "E21" "Laptop-scale runs (fast incremental move evaluation)";
  print_endline
    "Greedy dynamics on planar hosts using the incremental evaluator;\n\
     stable networks vs the heuristic optimum and the Lemma-1 stretch bound.";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun alpha ->
          let r = Prng.create (19_000 + n) in
          let host =
            Gncg.Host.make ~alpha
              (Gncg_metric.Euclidean.metric L2
                 (Gncg_metric.Euclidean.random_uniform r ~n ~d:2 ~lo:0.0 ~hi:100.0))
          in
          let start = W.Instances.random_profile r host in
          let t0 = Sys.time () in
          match
            Gncg.Dynamics.run
              (Gncg.Dynamics.Config.make ~max_steps:20_000 ~evaluator:`Incremental
                 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
              host start
          with
          | Gncg.Dynamics.Converged { profile; steps; _ } ->
            let elapsed = Sys.time () -. t0 in
            let stats = Gncg.Net_stats.of_profile host profile in
            let _, opt = Gncg.Social_optimum.greedy_heuristic host in
            rows :=
              [
                string_of_int n;
                T.fl ~digits:1 alpha;
                string_of_int (List.length steps);
                T.fl ~digits:1 elapsed;
                T.fl ~digits:4 (stats.Gncg.Net_stats.social_cost /. opt);
                T.fl ~digits:3 stats.Gncg.Net_stats.stretch;
                T.fl ~digits:3 (Gncg.Quality.ae_spanner_stretch alpha);
                T.fl ~digits:2 stats.Gncg.Net_stats.avg_degree;
              ]
              :: !rows
          | _ ->
            rows := [ string_of_int n; T.fl ~digits:1 alpha; "-"; "-"; "-"; "-"; "-"; "-" ] :: !rows)
        [ 2.0; 8.0 ])
    [ 20; 40; 80 ];
  T.print
    ~header:[ "n"; "alpha"; "moves"; "sec"; "GE/heur-opt"; "stretch"; "a+1"; "avg deg" ]
    (List.rev !rows)

(* ----------------------------------------------------------------- E22 *)

let e22_exhaustive_kernel () =
  section "E22" "Exhaustive kernel: ALL 4-agent 1-2 hosts, ALL equilibria";
  print_endline
    "Every one of the 64 four-agent 1-2 hosts, with every Nash equilibrium\n\
     enumerated exhaustively, checked against every applicable theorem.";
  let alphas = [ 0.3; 0.75; 1.0; 2.5 ] in
  let hosts_checked = ref 0 in
  let ne_total = ref 0 in
  let violations = ref [] in
  let record name host_id alpha =
    violations := Printf.sprintf "%s (host %d, alpha %g)" name host_id alpha :: !violations
  in
  for mask = 0 to 63 do
    (* The 6 pairs of K4 in lexicographic order. *)
    let pairs = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
    let ones = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) pairs in
    let m = Gncg_metric.One_two.of_one_edges 4 ones in
    List.iter
      (fun alpha ->
        incr hosts_checked;
        let host = Gncg.Host.make ~alpha m in
        let _, opt = Gncg.Social_optimum.exact_small host in
        let nes = Gncg.Price_of_stability.enumerate_ne host in
        ne_total := !ne_total + List.length nes;
        List.iter
          (fun ne ->
            let cost = Gncg.Cost.social_cost host ne in
            (* Thm 1 (metric): cost ratio bound. *)
            if cost /. opt > Gncg.Quality.metric_upper alpha +. 1e-9 then
              record "Thm 1 ratio violated" mask alpha;
            (* Lemma 1: (alpha+1)-spanner. *)
            let g = Gncg.Network.graph host ne in
            if
              Gncg.Quality.host_stretch host g
              > Gncg.Quality.ae_spanner_stretch alpha +. 1e-9
            then record "Lemma 1 stretch violated" mask alpha;
            (* Thm 9: for alpha < 1/2 every NE is the Algorithm-1 optimum. *)
            if alpha < 0.5 then begin
              let _, alg1 = Gncg.Social_optimum.algorithm_one host in
              if not (Gncg_util.Flt.approx_eq ~tol:1e-6 cost alg1) then
                record "Thm 9 optimality violated" mask alpha
            end)
          nes;
        (* Lemma 2: OPT is an (alpha/2+1)-spanner. *)
        let opt_g, _ = Gncg.Social_optimum.exact_small host in
        if
          Gncg.Quality.host_stretch host opt_g
          > Gncg.Quality.opt_spanner_stretch alpha +. 1e-9
        then record "Lemma 2 stretch violated" mask alpha)
      alphas
  done;
  Printf.printf
    "hosts x alphas checked: %d;  equilibria enumerated: %d;  violations: %d\n"
    !hosts_checked !ne_total
    (List.length !violations);
  List.iter (fun v -> Printf.printf "  VIOLATION: %s\n" v) !violations;
  if !violations = [] then
    print_endline
      "(Thm 1, Thm 9, Lemma 1 and Lemma 2 hold on the entire 4-agent 1-2 kernel.)"

(* ----------------------------------------------------------------- E23 *)

let e23_journaled_sweep () =
  section "E23" "Journal-backed PoA sweep (the runs subsystem end to end)";
  print_endline
    "Greedy dynamics PoA series regenerated through a durable journal: the\n\
     batch runs on the work-stealing scheduler, every result is appended to\n\
     a JSONL journal, and a resume pass verifies nothing re-executes.";
  let journal = Filename.temp_file "gncg_e23" ".jsonl" in
  let config =
    Gncg_runs.Batch.config
      (W.Instances.Euclid { norm = L2; d = 2; box = 100.0 })
      ~ns:[ 8 ] ~alphas:[ 0.5; 1.0; 2.0; 4.0 ]
      ~seeds:[ 1; 2; 3; 4 ]
  in
  let summary = Gncg_runs.Batch.run ~journal config in
  let by_alpha =
    List.map
      (fun alpha ->
        ( T.fl ~digits:1 alpha,
          List.filter
            (fun (r : W.Sweep.run) -> Gncg_util.Flt.approx_eq ~tol:1e-9 r.alpha alpha)
            summary.runs ))
      [ 0.5; 1.0; 2.0; 4.0 ]
  in
  W.Report.print_ratio_summary ~group_label:"alpha" by_alpha;
  (match Gncg_runs.Batch.resume ~journal () with
  | Ok resumed ->
    Printf.printf
      "journal: %d jobs journaled; resume re-executed %d (expected 0); runs identical: %b\n"
      summary.progress.total resumed.progress.executed
      (W.Report.runs_to_csv resumed.runs = W.Report.runs_to_csv summary.runs)
  | Error msg -> Printf.printf "journal: resume FAILED: %s\n" msg);
  Sys.remove journal

let all =
  [
    ("E1", e1_poa_onetwo_small_alpha);
    ("E2", e2_poa_onetwo_fig3);
    ("E3", e3_onetwo_large_alpha);
    ("E4", e4_poa_tree_fig6);
    ("E5", e5_tree_ne_structure);
    ("E6", e6_poa_line_fig9);
    ("E7", e7_poa_fourpoint);
    ("E8", e8_poa_cross_fig10);
    ("E9", e9_general_gap);
    ("E10", e10_fip_violation);
    ("E11", e11_vc_reduction);
    ("E12", e12_setcover_br);
    ("E13", e13_metric_upper_bound);
    ("E14", e14_approx_ne);
    ("E15", e15_spanner_lemmas);
    ("E16", e16_spanner_nash);
    ("E17", e17_price_of_stability);
    ("E18", e18_one_inf);
    ("E19", e19_conjectures);
    ("E20", e20_convergence_speed);
    ("E21", e21_scaling);
    ("E22", e22_exhaustive_kernel);
    ("E23", e23_journaled_sweep);
  ]
