module Wgraph = Gncg_graph.Wgraph
module Flt = Gncg_util.Flt

type t = { size : int; w : float array array }

let check_weight x =
  if Float.is_nan x || x < 0.0 then invalid_arg "Metric: weight must be non-negative"

let make size f =
  if size < 0 then invalid_arg "Metric.make: negative size";
  let w = Array.make_matrix size size 0.0 in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      let x = f u v in
      check_weight x;
      w.(u).(v) <- x;
      w.(v).(u) <- x
    done
  done;
  { size; w }

let of_matrix m =
  let size = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> size then invalid_arg "Metric.of_matrix: non-square")
    m;
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      if m.(u).(v) <> m.(v).(u) then invalid_arg "Metric.of_matrix: asymmetric"
    done
  done;
  make size (fun u v -> m.(u).(v))

let n h = h.size

let weight h u v =
  if u < 0 || u >= h.size || v < 0 || v >= h.size then
    invalid_arg "Metric.weight: vertex out of range";
  h.w.(u).(v)

let to_matrix h = Array.map Array.copy h.w

let triangle_violations ?(tol = Flt.eps) h =
  let acc = ref [] in
  for u = 0 to h.size - 1 do
    for v = u + 1 to h.size - 1 do
      for x = 0 to h.size - 1 do
        if x <> u && x <> v && h.w.(u).(v) > h.w.(u).(x) +. h.w.(x).(v) +. tol then
          acc := (u, v, x) :: !acc
      done
    done
  done;
  List.rev !acc

module Gncg_error = Gncg_util.Gncg_error

(* First-failure validation with located typed errors; [is_metric] stays
   the cheap boolean form.  Exactness is the caller's choice through
   [tol] (1-2 metrics validate with [~tol:0.0]; Euclidean closures need
   the Flt tolerance). *)
let validate ?(tol = Flt.eps) ?(require_metric = true) ?(require_connected = true) h =
  let ( let* ) = Result.bind in
  let ctx = "Metric.validate" in
  let err ?where kind msg = Gncg_error.fail ?where ~context:ctx kind msg in
  let n = h.size in
  let* () =
    let bad = ref None in
    for u = 0 to n - 1 do
      if !bad = None && h.w.(u).(u) <> 0.0 then bad := Some u
    done;
    match !bad with
    | Some u ->
      err ~where:(Gncg_error.Pair (u, u)) Gncg_error.Inconsistent "non-zero diagonal"
    | None -> Ok ()
  in
  let* () =
    let bad = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if !bad = None then begin
          let x = h.w.(u).(v) in
          if x <> h.w.(v).(u) && not (Float.is_nan x && Float.is_nan h.w.(v).(u)) then
            bad := Some (u, v, Gncg_error.Asymmetric, "w(u,v) <> w(v,u)")
          else if Float.is_nan x then
            bad := Some (u, v, Gncg_error.Not_finite, "NaN weight")
          else if x < 0.0 then
            bad := Some (u, v, Gncg_error.Negative, Printf.sprintf "weight %g < 0" x)
          else if x = 0.0 then
            bad := Some (u, v, Gncg_error.Negative, "zero off-diagonal weight")
          else if require_metric && x = Float.infinity then
            bad := Some (u, v, Gncg_error.Not_finite, "infinite weight in a metric host")
        end
      done
    done;
    match !bad with
    | Some (u, v, kind, msg) -> err ~where:(Gncg_error.Pair (u, v)) kind msg
    | None -> Ok ()
  in
  let* () =
    if not require_connected || n = 0 then Ok ()
    else begin
      let uf = Gncg_graph.Union_find.create n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Float.is_finite h.w.(u).(v) then ignore (Gncg_graph.Union_find.union uf u v)
        done
      done;
      if Gncg_graph.Union_find.count uf = 1 then Ok ()
      else begin
        let stray = ref 0 in
        for u = n - 1 downto 1 do
          if not (Gncg_graph.Union_find.same uf 0 u) then stray := u
        done;
        err ~where:(Gncg_error.Vertex !stray) Gncg_error.Disconnected
          "no finite-weight path to vertex 0"
      end
    end
  in
  if not require_metric then Ok ()
  else begin
    let bad = ref None in
    (try
       for u = 0 to n - 1 do
         for v = u + 1 to n - 1 do
           for x = 0 to n - 1 do
             if x <> u && x <> v && h.w.(u).(v) > h.w.(u).(x) +. h.w.(x).(v) +. tol then begin
               bad := Some (u, v, x);
               raise Exit
             end
           done
         done
       done
     with Exit -> ());
    match !bad with
    | Some (u, v, x) ->
      Gncg_error.failf ~where:(Gncg_error.Triple (u, v, x)) ~context:ctx
        Gncg_error.Triangle "w(%d,%d)=%g > w(%d,%d)+w(%d,%d)=%g" u v h.w.(u).(v) u x x v
        (h.w.(u).(x) +. h.w.(x).(v))
    | None -> Ok ()
  end

let is_metric ?(tol = Flt.eps) h =
  let positive = ref true in
  for u = 0 to h.size - 1 do
    for v = u + 1 to h.size - 1 do
      if h.w.(u).(v) <= 0.0 || not (Float.is_finite h.w.(u).(v)) then positive := false
    done
  done;
  !positive && triangle_violations ~tol h = []

let metric_closure h = { size = h.size; w = Gncg_graph.Floyd_warshall.run h.w }

let of_graph_closure g =
  { size = Wgraph.n g; w = Gncg_graph.Floyd_warshall.closure_of_graph g }

let complete_graph h =
  let g = Wgraph.create h.size in
  for u = 0 to h.size - 1 do
    for v = u + 1 to h.size - 1 do
      if Float.is_finite h.w.(u).(v) then Wgraph.add_edge g u v h.w.(u).(v)
    done
  done;
  g

let scale c h =
  if c <= 0.0 then invalid_arg "Metric.scale: non-positive factor";
  make h.size (fun u v -> c *. h.w.(u).(v))

let perturb rng ~magnitude h =
  if magnitude < 0.0 then invalid_arg "Metric.perturb: negative magnitude";
  make h.size (fun u v ->
      if Float.is_finite h.w.(u).(v) then h.w.(u).(v) +. Gncg_util.Prng.float rng magnitude
      else h.w.(u).(v))

let min_weight h =
  let best = ref Float.infinity in
  for u = 0 to h.size - 1 do
    for v = u + 1 to h.size - 1 do
      best := Float.min !best h.w.(u).(v)
    done
  done;
  if !best = Float.infinity then 0.0 else !best

let max_finite_weight h =
  let best = ref 0.0 in
  for u = 0 to h.size - 1 do
    for v = u + 1 to h.size - 1 do
      if Float.is_finite h.w.(u).(v) then best := Float.max !best h.w.(u).(v)
    done
  done;
  !best

let equal ?(tol = Flt.eps) a b =
  a.size = b.size
  && begin
       let ok = ref true in
       for u = 0 to a.size - 1 do
         for v = u + 1 to a.size - 1 do
           let x = a.w.(u).(v) and y = b.w.(u).(v) in
           let same =
             if Float.is_finite x && Float.is_finite y then Flt.approx_eq ~tol x y
             else x = y
           in
           if not same then ok := false
         done
       done;
       !ok
     end

let pp fmt h =
  Format.fprintf fmt "@[<v>host n=%d" h.size;
  for u = 0 to h.size - 1 do
    Format.fprintf fmt "@,  ";
    for v = 0 to h.size - 1 do
      Format.fprintf fmt "%8.3f " h.w.(u).(v)
    done
  done;
  Format.fprintf fmt "@]"
