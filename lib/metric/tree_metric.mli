(** Tree metrics: hosts defined as the metric closure of an edge-weighted
    tree (the T-GNCG of Sec. 3.2). *)

type tree
(** A connected acyclic weighted graph on [0 .. n-1]. *)

val make : int -> (int * int * float) list -> tree
(** [make n edges] validates that the edges form a spanning tree of
    [0..n-1] with positive weights. *)

val size : tree -> int

val edges : tree -> (int * int * float) list

val graph : tree -> Gncg_graph.Wgraph.t
(** The tree as a sparse graph. *)

val metric : tree -> Metric.t
(** The host: [w(u,v) = d_T(u,v)]. *)

val star : int -> (int -> float) -> tree
(** [star n leaf_weight] is a star with center 0 and leaves [1..n-1], the
    edge to leaf [i] weighing [leaf_weight i]. *)

val path : float list -> tree
(** [path ws] is the path [0 - 1 - ... - k] with the given successive edge
    weights ([k = length ws]). *)

val random : Gncg_util.Prng.t -> n:int -> wmin:float -> wmax:float -> tree
(** Random recursive tree (each vertex attaches to a uniform predecessor)
    with i.i.d. uniform weights. *)

val is_tree_metric : ?tol:float -> Metric.t -> bool
(** Whether a host satisfies the four-point condition
    [w(u,v) + w(x,y) <= max(w(u,x)+w(v,y), w(u,y)+w(v,x))] for all
    quadruples — the classical characterization of tree metrics. *)
