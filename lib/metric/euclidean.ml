type norm = L1 | L2 | Lp of float | Linf

type points = float array array

let dist norm a b =
  let d = Array.length a in
  if Array.length b <> d then invalid_arg "Euclidean.dist: dimension mismatch";
  match norm with
  | L1 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s := !s +. Float.abs (a.(i) -. b.(i))
    done;
    !s
  | L2 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      let x = a.(i) -. b.(i) in
      s := !s +. (x *. x)
    done;
    sqrt !s
  | Lp p ->
    if p < 1.0 then invalid_arg "Euclidean.dist: p < 1";
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s := !s +. (Float.abs (a.(i) -. b.(i)) ** p)
    done;
    !s ** (1.0 /. p)
  | Linf ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s := Float.max !s (Float.abs (a.(i) -. b.(i)))
    done;
    !s

let dimension pts = if Array.length pts = 0 then 0 else Array.length pts.(0)

let metric norm pts =
  let n = Array.length pts in
  let d = dimension pts in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Euclidean.metric: ragged points")
    pts;
  Metric.make n (fun u v -> dist norm pts.(u) pts.(v))

let of_list rows = Array.of_list (List.map Array.of_list rows)

let line coords = of_list (List.map (fun x -> [ x ]) coords)

let random_uniform rng ~n ~d ~lo ~hi =
  Array.init n (fun _ -> Array.init d (fun _ -> Gncg_util.Prng.float_in rng lo hi))

let random_clusters rng ~n ~d ~clusters ~spread ~box =
  if clusters < 1 then invalid_arg "Euclidean.random_clusters";
  let centers =
    Array.init clusters (fun _ -> Array.init d (fun _ -> Gncg_util.Prng.float rng box))
  in
  Array.init n (fun _ ->
      let c = centers.(Gncg_util.Prng.int rng clusters) in
      Array.init d (fun i -> c.(i) +. (spread *. Gncg_util.Prng.gaussian rng)))

let translate delta pts =
  Array.map
    (fun p ->
      if Array.length p <> Array.length delta then
        invalid_arg "Euclidean.translate: dimension mismatch";
      Array.mapi (fun i x -> x +. delta.(i)) p)
    pts

let pp_point fmt p =
  Format.fprintf fmt "(";
  Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then ", " else "") x) p;
  Format.fprintf fmt ")"
