(** The 1-∞-GNCG of Demaine et al.: edge weights in {1, ∞}.

    Weight ∞ encodes a forbidden edge, so the host is effectively an
    arbitrary unweighted graph.  This variant is inherently non-metric. *)

val of_allowed_edges : int -> (int * int) list -> Metric.t
(** Weight 1 on the listed pairs, ∞ elsewhere. *)

val of_graph : Gncg_graph.Wgraph.t -> Metric.t
(** Weight 1 on the edges of the graph (ignoring their weights). *)

val random_connected :
  Gncg_util.Prng.t -> n:int -> p:float -> Metric.t
(** Erdős–Rényi allowed-edge set, augmented with a random spanning tree so
    that a connected network is always reachable. *)

val is_one_inf : Metric.t -> bool
