(** Finite weighted host spaces.

    A host graph in the paper is a complete undirected graph on [n] nodes
    with non-negative edge weights.  This module represents such hosts as
    dense symmetric matrices and provides the predicates distinguishing the
    model variants of Fig. 1: general weights (GNCG), metric weights
    (M-GNCG), 1-2 weights, tree metrics, p-norm point sets, and the
    non-metric 1-∞ variant. *)

type t
(** A host space: [n] nodes and a symmetric non-negative weight for every
    pair.  Weights may be [infinity] (the 1-∞-GNCG uses it for forbidden
    edges). *)

val make : int -> (int -> int -> float) -> t
(** [make n w] tabulates the weight function.  [w] is only consulted for
    [u < v]; the result is symmetric by construction.  Raises
    [Invalid_argument] on negative or NaN weights. *)

val of_matrix : float array array -> t
(** Validates squareness and symmetry; the diagonal is forced to 0. *)

val n : t -> int

val weight : t -> int -> int -> float
(** [weight h u v]; 0 when [u = v]. *)

val to_matrix : t -> float array array
(** A fresh copy of the weight matrix. *)

val is_metric : ?tol:float -> t -> bool
(** Triangle inequality [w(u,v) <= w(u,x) + w(x,v)] for all triples, with
    every weight finite and positive off the diagonal. *)

val validate :
  ?tol:float ->
  ?require_metric:bool ->
  ?require_connected:bool ->
  t ->
  (unit, Gncg_util.Gncg_error.t) result
(** First-failure validation with a located, typed error: zero diagonal,
    symmetry, no NaN, positive off-diagonal weights; with
    [require_connected] (default [true]) every vertex must be reachable
    over finite weights; with [require_metric] (default [true]) weights
    must also be finite and satisfy the triangle inequality within [tol]
    (pass [~tol:0.0] for exact families such as 1-2 metrics; the default
    [Flt.eps] suits Euclidean and closure-derived hosts).  Non-metric
    families (general, 1-∞) validate with [~require_metric:false]. *)

val triangle_violations : ?tol:float -> t -> (int * int * int) list
(** Triples [(u,v,x)] with [w(u,v) > w(u,x) + w(x,v) + tol]. *)

val metric_closure : t -> t
(** Shortest-path closure: the smallest metric pointwise below the weights.
    Idempotent; equal to the input iff the input is metric. *)

val of_graph_closure : Gncg_graph.Wgraph.t -> t
(** Host whose weights are the shortest-path distances of a (connected)
    weighted graph — the "graph metric" variant.  Disconnected pairs get
    weight [infinity]. *)

val complete_graph : t -> Gncg_graph.Wgraph.t
(** The host as an explicit graph with every finite-weight edge present. *)

val scale : float -> t -> t
(** Multiply every weight by a positive constant. *)

val perturb : Gncg_util.Prng.t -> magnitude:float -> t -> t
(** Add independent uniform noise in \[0, magnitude) to every off-diagonal
    weight (used to break ties in randomized experiments); the result is
    re-symmetrized but not re-metricized. *)

val min_weight : t -> float
(** Smallest off-diagonal weight; 0 when [n < 2]. *)

val max_finite_weight : t -> float
(** Largest finite off-diagonal weight; 0 when none exists. *)

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
