module Prng = Gncg_util.Prng
module Wgraph = Gncg_graph.Wgraph
module Gncg_error = Gncg_util.Gncg_error

(* Under [--strict-validate] every generated host is checked before it
   escapes: a bad parameterization (or a generator bug) surfaces as a
   typed, located error at the generation site instead of a corrupted
   sweep result downstream. *)
let checked ~context ~require_metric m =
  if Gncg_error.strict_validation () then
    (match Metric.validate ~require_metric m with
    | Ok () -> ()
    | Error e -> Gncg_error.raise_ { e with context });
  m

let uniform rng ~n ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Random_host.uniform: bad range";
  checked ~context:"Random_host.uniform" ~require_metric:false
    (Metric.make n (fun _ _ -> Prng.float_in rng lo hi))

let uniform_metric rng ~n ~lo ~hi =
  checked ~context:"Random_host.uniform_metric" ~require_metric:true
    (Metric.metric_closure (uniform rng ~n ~lo ~hi))

(* Geometric hosts keep their implicit description: the callers that can
   (oracle backends, large-n benches) consume the geometry directly and
   never pay the O(n²) tabulation of [Geometry.to_metric]. *)

let tree_geometry rng ~n ~wmin ~wmax =
  Geometry.tree (Tree_metric.random rng ~n ~wmin ~wmax)

let euclidean_geometry ?(norm = Euclidean.L2) rng ~n ~d ~lo ~hi =
  Geometry.points ~norm (Euclidean.random_uniform rng ~n ~d ~lo ~hi)

let tree_metric rng ~n ~wmin ~wmax =
  let geo = tree_geometry rng ~n ~wmin ~wmax in
  ( checked ~context:"Random_host.tree_metric" ~require_metric:true
      (Geometry.to_metric geo),
    geo )

let euclidean_metric ?norm rng ~n ~d ~lo ~hi =
  let geo = euclidean_geometry ?norm rng ~n ~d ~lo ~hi in
  ( checked ~context:"Random_host.euclidean_metric" ~require_metric:true
      (Geometry.to_metric geo),
    geo )

let random_graph_metric rng ~n ~p ~wmin ~wmax =
  if wmin <= 0.0 || wmax < wmin then invalid_arg "Random_host.random_graph_metric";
  let g = Wgraph.create n in
  (* Spanning tree for connectivity, then extra random edges. *)
  let order = Prng.permutation rng n in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    Wgraph.add_edge g order.(i) order.(j) (Prng.float_in rng wmin wmax)
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Wgraph.has_edge g u v)) && Prng.coin rng p then
        Wgraph.add_edge g u v (Prng.float_in rng wmin wmax)
    done
  done;
  checked ~context:"Random_host.random_graph_metric" ~require_metric:true
    (Metric.of_graph_closure g)
