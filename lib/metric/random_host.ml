module Prng = Gncg_util.Prng
module Wgraph = Gncg_graph.Wgraph

let uniform rng ~n ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Random_host.uniform: bad range";
  Metric.make n (fun _ _ -> Prng.float_in rng lo hi)

let uniform_metric rng ~n ~lo ~hi = Metric.metric_closure (uniform rng ~n ~lo ~hi)

let random_graph_metric rng ~n ~p ~wmin ~wmax =
  if wmin <= 0.0 || wmax < wmin then invalid_arg "Random_host.random_graph_metric";
  let g = Wgraph.create n in
  (* Spanning tree for connectivity, then extra random edges. *)
  let order = Prng.permutation rng n in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    Wgraph.add_edge g order.(i) order.(j) (Prng.float_in rng wmin wmax)
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Wgraph.has_edge g u v)) && Prng.coin rng p then
        Wgraph.add_edge g u v (Prng.float_in rng wmin wmax)
    done
  done;
  Metric.of_graph_closure g
