(* The implicit description a host was generated from — the tree or the
   point set — carried alongside (or instead of) the O(n²) tabulated
   Metric.t, so the oracle distance backends can consume the structure
   directly.  This is what breaks the dense wall: at n = 100k the tree
   and point-set descriptions are a few MB where the matrix is 80 GB. *)

module Distances = Gncg_graph.Distances
module Pnorm = Gncg_graph.Pnorm

type t =
  | Tree of Tree_metric.tree
  | Points of { points : Euclidean.points; norm : Euclidean.norm }

let tree tr = Tree tr

let points ?(norm = Euclidean.L2) pts =
  if Array.length pts = 0 then invalid_arg "Geometry.points: empty point set";
  Points { points = pts; norm }

let n = function
  | Tree tr -> Tree_metric.size tr
  | Points { points; _ } -> Array.length points

let describe = function
  | Tree tr -> Printf.sprintf "tree(n=%d)" (Tree_metric.size tr)
  | Points { points; norm } ->
    Printf.sprintf "points(n=%d, d=%d, %s)" (Array.length points)
      (Euclidean.dimension points)
      (match norm with
      | Euclidean.L1 -> "l1"
      | Euclidean.L2 -> "l2"
      | Euclidean.Lp p -> Printf.sprintf "l%g" p
      | Euclidean.Linf -> "linf")

let pnorm = function
  | Euclidean.L1 -> Pnorm.L1
  | Euclidean.L2 -> Pnorm.L2
  | Euclidean.Lp p -> Pnorm.Lp p
  | Euclidean.Linf -> Pnorm.Linf

let norm_of_pnorm = function
  | Pnorm.L1 -> Euclidean.L1
  | Pnorm.L2 -> Euclidean.L2
  | Pnorm.Lp p -> Euclidean.Lp p
  | Pnorm.Linf -> Euclidean.Linf

(* Oracle backends straight from the description — no Metric.t, no
   matrix, no O(n²) step anywhere on this path. *)
let to_distances = function
  | Tree tr -> Distances.tree (Tree_metric.graph tr)
  | Points { points; norm } -> Distances.rd (pnorm norm) points

let to_metric = function
  | Tree tr -> Tree_metric.metric tr
  | Points { points; norm } -> Euclidean.metric norm points
