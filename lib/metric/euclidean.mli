(** Point sets in [R^d] under p-norms (the R^d-GNCG of Sec. 3.3). *)

type norm =
  | L1
  | L2
  | Lp of float  (** p >= 1 *)
  | Linf

type points = float array array
(** [n] rows of dimension [d]. *)

val dist : norm -> float array -> float array -> float
(** p-norm distance between two points of equal dimension. *)

val metric : norm -> points -> Metric.t
(** The induced host space. *)

val dimension : points -> int

val of_list : (float list) list -> points

val line : float list -> points
(** 1-dimensional points at the given coordinates. *)

val random_uniform :
  Gncg_util.Prng.t -> n:int -> d:int -> lo:float -> hi:float -> points
(** i.i.d. uniform points in a box. *)

val random_clusters :
  Gncg_util.Prng.t ->
  n:int ->
  d:int ->
  clusters:int ->
  spread:float ->
  box:float ->
  points
(** Gaussian clusters with uniformly placed centers in \[0,box\]^d —
    a stand-in for city/PoP layouts in fiber-network scenarios. *)

val translate : float array -> points -> points

val pp_point : Format.formatter -> float array -> unit
