(** 1-2 host graphs: every edge weight is 1 or 2 (Sec. 3.1).

    Any {1,2}-weighted complete graph automatically satisfies the triangle
    inequality (1 + 1 >= 2), so this is the simplest metric generalization
    of the unit-weight NCG. *)

val of_one_edges : int -> (int * int) list -> Metric.t
(** [of_one_edges n ones] gives weight 1 to the listed pairs and 2 to every
    other pair. *)

val random : Gncg_util.Prng.t -> n:int -> p_one:float -> Metric.t
(** Each pair is a 1-edge independently with probability [p_one]. *)

val is_one_two : Metric.t -> bool
(** Every off-diagonal weight is exactly 1 or 2. *)

val one_edges : Metric.t -> (int * int) list
(** The pairs at weight 1, with [u < v]. *)

val one_subgraph : Metric.t -> Gncg_graph.Wgraph.t
(** The graph induced by the 1-edges (weights 1). *)

val has_one_one_two_triangle : Metric.t -> Gncg_graph.Wgraph.t -> bool
(** Whether the given network contains a triangle of two 1-edges and one
    2-edge — the redundant pattern Algorithm 1 (Thm. 6) eliminates. *)
