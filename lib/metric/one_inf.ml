module Prng = Gncg_util.Prng

let of_allowed_edges size allowed =
  let tbl = Hashtbl.create (List.length allowed) in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "One_inf.of_allowed_edges: self-loop";
      Hashtbl.replace tbl (min u v, max u v) ())
    allowed;
  Metric.make size (fun u v ->
      if Hashtbl.mem tbl (min u v, max u v) then 1.0 else Float.infinity)

let of_graph g =
  let allowed = List.map (fun (u, v, _) -> (u, v)) (Gncg_graph.Wgraph.edges g) in
  of_allowed_edges (Gncg_graph.Wgraph.n g) allowed

let random_connected rng ~n ~p =
  let allowed = ref [] in
  (* A random spanning tree first, so every agent can reach every other. *)
  let order = Prng.permutation rng n in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    allowed := (order.(i), order.(j)) :: !allowed
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.coin rng p then allowed := (u, v) :: !allowed
    done
  done;
  of_allowed_edges n !allowed

let is_one_inf h =
  let ok = ref true in
  let n = Metric.n h in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = Metric.weight h u v in
      if w <> 1.0 && w <> Float.infinity then ok := false
    done
  done;
  !ok
