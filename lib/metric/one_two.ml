module Wgraph = Gncg_graph.Wgraph

let of_one_edges size ones =
  let tbl = Hashtbl.create (List.length ones) in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "One_two.of_one_edges: self-loop";
      Hashtbl.replace tbl (min u v, max u v) ())
    ones;
  Metric.make size (fun u v -> if Hashtbl.mem tbl (min u v, max u v) then 1.0 else 2.0)

let random rng ~n ~p_one =
  Metric.make n (fun _ _ -> if Gncg_util.Prng.coin rng p_one then 1.0 else 2.0)

let is_one_two h =
  let ok = ref true in
  let n = Metric.n h in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = Metric.weight h u v in
      if w <> 1.0 && w <> 2.0 then ok := false
    done
  done;
  !ok

let one_edges h =
  let acc = ref [] in
  let n = Metric.n h in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Metric.weight h u v = 1.0 then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let one_subgraph h =
  let g = Wgraph.create (Metric.n h) in
  List.iter (fun (u, v) -> Wgraph.add_edge g u v 1.0) (one_edges h);
  g

let has_one_one_two_triangle h g =
  let n = Metric.n h in
  let found = ref false in
  Wgraph.iter_edges g (fun u v w ->
      if w = 2.0 then
        for x = 0 to n - 1 do
          if
            x <> u && x <> v
            && Wgraph.weight g u x = Some 1.0
            && Wgraph.weight g x v = Some 1.0
          then found := true
        done);
  !found
