(** Random host generators for the general (not necessarily metric) GNCG
    and for random metric instances.

    When {!Gncg_util.Gncg_error.strict_validation} is on (the CLI's
    [--strict-validate]), every generated host is validated through
    {!Metric.validate} before it is returned — metric generators with
    the full triangle/connectivity check, [uniform] with the weights-only
    check — and a failure raises {!Gncg_util.Gncg_error.Error}. *)

val uniform : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Independent uniform weights — generally violates the triangle
    inequality: a general-GNCG workload. *)

val uniform_metric : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Metric closure of a uniform host: a random (graph-)metric workload. *)

val random_graph_metric :
  Gncg_util.Prng.t -> n:int -> p:float -> wmin:float -> wmax:float -> Metric.t
(** Metric closure of a connected Erdős–Rényi graph with uniform weights:
    the "graph metric" workloads of the paper's M-GNCG. *)

(** {1 Geometric hosts with their implicit description}

    The historic generators tabulate all O(n²) pairs even though tree
    and R^d hosts are defined by O(n)-size structure.  These variants
    expose the {!Geometry.t} so oracle distance backends can consume the
    description directly; the [*_geometry] forms never materialize a
    matrix at all. *)

val tree_geometry :
  Gncg_util.Prng.t -> n:int -> wmin:float -> wmax:float -> Geometry.t
(** Random recursive tree — O(n), no matrix. *)

val euclidean_geometry :
  ?norm:Euclidean.norm ->
  Gncg_util.Prng.t -> n:int -> d:int -> lo:float -> hi:float -> Geometry.t
(** Uniform box points — O(n·d), no matrix.  Defaults to [L2]. *)

val tree_metric :
  Gncg_util.Prng.t -> n:int -> wmin:float -> wmax:float -> Metric.t * Geometry.t
(** Tabulated host {e plus} its description (small n). *)

val euclidean_metric :
  ?norm:Euclidean.norm ->
  Gncg_util.Prng.t -> n:int -> d:int -> lo:float -> hi:float -> Metric.t * Geometry.t
