(** Random host generators for the general (not necessarily metric) GNCG
    and for random metric instances. *)

val uniform : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Independent uniform weights — generally violates the triangle
    inequality: a general-GNCG workload. *)

val uniform_metric : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Metric closure of a uniform host: a random (graph-)metric workload. *)

val random_graph_metric :
  Gncg_util.Prng.t -> n:int -> p:float -> wmin:float -> wmax:float -> Metric.t
(** Metric closure of a connected Erdős–Rényi graph with uniform weights:
    the "graph metric" workloads of the paper's M-GNCG. *)
