(** Random host generators for the general (not necessarily metric) GNCG
    and for random metric instances.

    When {!Gncg_util.Gncg_error.strict_validation} is on (the CLI's
    [--strict-validate]), every generated host is validated through
    {!Metric.validate} before it is returned — metric generators with
    the full triangle/connectivity check, [uniform] with the weights-only
    check — and a failure raises {!Gncg_util.Gncg_error.Error}. *)

val uniform : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Independent uniform weights — generally violates the triangle
    inequality: a general-GNCG workload. *)

val uniform_metric : Gncg_util.Prng.t -> n:int -> lo:float -> hi:float -> Metric.t
(** Metric closure of a uniform host: a random (graph-)metric workload. *)

val random_graph_metric :
  Gncg_util.Prng.t -> n:int -> p:float -> wmin:float -> wmax:float -> Metric.t
(** Metric closure of a connected Erdős–Rényi graph with uniform weights:
    the "graph metric" workloads of the paper's M-GNCG. *)
