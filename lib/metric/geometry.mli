(** The implicit structure a host was generated from.

    Tree-metric and R^d hosts are defined by O(n) / O(n·d) descriptions
    (the tree; the point set), yet {!Tree_metric.metric} /
    {!Euclidean.metric} tabulate all O(n²) pairs.  A [Geometry.t]
    carries the description itself so the implicit
    {!Gncg_graph.Distances} backends can answer queries straight from
    it — the only path that scales to n = 10⁴–10⁵. *)

type t =
  | Tree of Tree_metric.tree
  | Points of { points : Euclidean.points; norm : Euclidean.norm }

val tree : Tree_metric.tree -> t

val points : ?norm:Euclidean.norm -> Euclidean.points -> t
(** Defaults to [L2]. *)

val n : t -> int

val describe : t -> string

val pnorm : Euclidean.norm -> Gncg_graph.Pnorm.t
(** The mgraph-level norm of a metric-level one (same constructors; the
    two types live on opposite sides of the library boundary). *)

val norm_of_pnorm : Gncg_graph.Pnorm.t -> Euclidean.norm

val to_distances : t -> Gncg_graph.Distances.t
(** The oracle backend reading the description directly: {b no} O(n²)
    materialization — tree → Euler-tour/LCA oracle, points → p-norm
    oracle with a k-d index. *)

val to_metric : t -> Metric.t
(** The tabulated host ({e does} allocate all pairs — small n only). *)
