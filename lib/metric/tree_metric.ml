module Wgraph = Gncg_graph.Wgraph
module Flt = Gncg_util.Flt

type tree = { size : int; tree_edges : (int * int * float) list }

let make size edge_list =
  if size < 1 then invalid_arg "Tree_metric.make: empty tree";
  if List.length edge_list <> size - 1 then
    invalid_arg "Tree_metric.make: a tree on n vertices has n-1 edges";
  List.iter
    (fun (_, _, w) -> if w <= 0.0 then invalid_arg "Tree_metric.make: non-positive weight")
    edge_list;
  let uf = Gncg_graph.Union_find.create size in
  List.iter
    (fun (u, v, _) ->
      if not (Gncg_graph.Union_find.union uf u v) then
        invalid_arg "Tree_metric.make: edges contain a cycle")
    edge_list;
  if Gncg_graph.Union_find.count uf <> 1 then invalid_arg "Tree_metric.make: not connected";
  { size; tree_edges = edge_list }

let size t = t.size

let edges t = t.tree_edges

let graph t = Wgraph.of_edges t.size t.tree_edges

let metric t = Metric.of_graph_closure (graph t)

let star n leaf_weight =
  if n < 1 then invalid_arg "Tree_metric.star";
  make n (List.init (n - 1) (fun i -> (0, i + 1, leaf_weight (i + 1))))

let path ws =
  let k = List.length ws in
  make (k + 1) (List.mapi (fun i w -> (i, i + 1, w)) ws)

let random rng ~n ~wmin ~wmax =
  if n < 1 then invalid_arg "Tree_metric.random";
  if wmin <= 0.0 || wmax < wmin then invalid_arg "Tree_metric.random: bad weight range";
  let edge i =
    let parent = Gncg_util.Prng.int rng i in
    (parent, i, Gncg_util.Prng.float_in rng wmin wmax)
  in
  make n (List.init (n - 1) (fun i -> edge (i + 1)))

let is_tree_metric ?(tol = Flt.eps) h =
  let n = Metric.n h in
  let w = Metric.weight h in
  let ok = ref (Metric.is_metric ~tol h) in
  (* Four-point condition: of the three pairings of {u,v,x,y}, the two
     largest sums must be equal (within tolerance); equivalently each sum is
     at most the max of the other two. *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      for x = v + 1 to n - 1 do
        for y = x + 1 to n - 1 do
          let s1 = w u v +. w x y and s2 = w u x +. w v y and s3 = w u y +. w v x in
          (* The two largest of the three pair sums must agree: each sum
             is at most the max of the other two. *)
          let le_max a b c = Flt.le ~tol a (Float.max b c) in
          if not (le_max s1 s2 s3 && le_max s2 s1 s3 && le_max s3 s1 s2) then ok := false
        done
      done
    done
  done;
  !ok
