module Sweep = Gncg_workload.Sweep

type status =
  | Completed
  | Diverged
  | Timeout
  | Crashed of string

type entry = {
  job : string;
  status : status;
  attempts : int;
  elapsed : float;
  result : Sweep.run option;
}

type manifest = {
  schema : int;
  model : string;
  ns : int list;
  alphas : float list;
  seeds : int list;
  rule : Job.rule;
  evaluator : Job.evaluator;
  max_steps : int;
  jobs : int;
}

let schema_version = 1

let ( let* ) = Result.bind

let manifest_jobs m =
  let* model = Job.model_of_string m.model in
  Ok
    (List.map
       (fun (n, alpha, seed) ->
         Job.make ~rule:m.rule ~evaluator:m.evaluator ~max_steps:m.max_steps model ~n
           ~alpha ~seed)
       (Sweep.cartesian ~ns:m.ns ~alphas:m.alphas ~seeds:m.seeds))

(* --- run record <-> JSON ------------------------------------------------ *)

let run_to_json (r : Sweep.run) =
  Json.Obj
    [
      ("model", Json.Str r.model);
      ("n", Json.num_int r.n);
      ("alpha", Json.Num r.alpha);
      ("seed", Json.num_int r.seed);
      ("converged", Json.Bool r.converged);
      ("steps", Json.num_int r.steps);
      ("stable_cost", Json.Num r.stable_cost);
      ("opt_cost", Json.Num r.opt_cost);
      ("ratio", Json.Num r.ratio);
      ("diameter", Json.Num r.diameter);
      ("stretch", Json.Num r.stretch);
      ("is_tree", Json.Bool r.is_tree);
    ]

let run_of_json v =
  let str k = Result.bind (Json.member k v) Json.get_string in
  let int k = Result.bind (Json.member k v) Json.get_int in
  let flt k = Result.bind (Json.member k v) Json.get_float in
  let bool k = Result.bind (Json.member k v) Json.get_bool in
  let* model = str "model" in
  let* n = int "n" in
  let* alpha = flt "alpha" in
  let* seed = int "seed" in
  let* converged = bool "converged" in
  let* steps = int "steps" in
  let* stable_cost = flt "stable_cost" in
  let* opt_cost = flt "opt_cost" in
  let* ratio = flt "ratio" in
  let* diameter = flt "diameter" in
  let* stretch = flt "stretch" in
  let* is_tree = bool "is_tree" in
  Ok
    {
      Sweep.model;
      n;
      alpha;
      seed;
      converged;
      steps;
      stable_cost;
      opt_cost;
      ratio;
      diameter;
      stretch;
      is_tree;
    }

(* --- entries ------------------------------------------------------------ *)

let status_fields = function
  | Completed -> [ ("status", Json.Str "completed") ]
  | Diverged -> [ ("status", Json.Str "diverged") ]
  | Timeout -> [ ("status", Json.Str "timeout") ]
  | Crashed msg -> [ ("status", Json.Str "crashed"); ("error", Json.Str msg) ]

let entry_to_json e =
  Json.Obj
    ([ ("job", Json.Str e.job) ]
    @ status_fields e.status
    @ [ ("attempts", Json.num_int e.attempts); ("elapsed", Json.Num e.elapsed) ]
    @ match e.result with None -> [] | Some r -> [ ("result", run_to_json r) ])

let entry_to_string e = Json.to_string (entry_to_json e)

let entry_of_json v =
  let* job = Result.bind (Json.member "job" v) Json.get_string in
  let* status_s = Result.bind (Json.member "status" v) Json.get_string in
  let* status =
    match status_s with
    | "completed" -> Ok Completed
    | "diverged" -> Ok Diverged
    | "timeout" -> Ok Timeout
    | "crashed" ->
      let msg =
        match Result.bind (Json.member "error" v) Json.get_string with
        | Ok m -> m
        | Error _ -> "unknown"
      in
      Ok (Crashed msg)
    | s -> Error (Printf.sprintf "unknown status %S" s)
  in
  let* attempts = Result.bind (Json.member "attempts" v) Json.get_int in
  let* elapsed = Result.bind (Json.member "elapsed" v) Json.get_float in
  let* result =
    match Json.member "result" v with
    | Ok rv ->
      let* r = run_of_json rv in
      Ok (Some r)
    | Error _ -> Ok None
  in
  Ok { job; status; attempts; elapsed; result }

(* --- manifest ----------------------------------------------------------- *)

let manifest_to_json m =
  Json.Obj
    [
      ("gncg-journal", Json.num_int m.schema);
      ("model", Json.Str m.model);
      ("ns", Json.List (List.map Json.num_int m.ns));
      ("alphas", Json.List (List.map (fun a -> Json.Num a) m.alphas));
      ("seeds", Json.List (List.map Json.num_int m.seeds));
      ("rule", Json.Str (Job.rule_to_string m.rule));
      ("evaluator", Json.Str (Job.evaluator_to_string m.evaluator));
      ("max_steps", Json.num_int m.max_steps);
      ("jobs", Json.num_int m.jobs);
    ]

let manifest_of_json v =
  let str k = Result.bind (Json.member k v) Json.get_string in
  let int k = Result.bind (Json.member k v) Json.get_int in
  let* schema = int "gncg-journal" in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "unsupported journal schema %d" schema)
  in
  let* model = str "model" in
  let int_list k =
    let* vs = Result.bind (Json.member k v) Json.get_list in
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        let* i = Json.get_int x in
        Ok (i :: acc))
      vs (Ok [])
  in
  let* ns = int_list "ns" in
  let* seeds = int_list "seeds" in
  let* alphas =
    let* vs = Result.bind (Json.member "alphas" v) Json.get_list in
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        let* f = Json.get_float x in
        Ok (f :: acc))
      vs (Ok [])
  in
  let* rule = Result.bind (str "rule") Job.rule_of_string in
  let* evaluator = Result.bind (str "evaluator") Job.evaluator_of_string in
  let* max_steps = int "max_steps" in
  let* jobs = int "jobs" in
  Ok { schema; model; ns; alphas; seeds; rule; evaluator; max_steps; jobs }

(* --- file handling ------------------------------------------------------ *)

type t = { oc : out_channel; lock : Mutex.t }

let write_line oc line =
  (* One write call per line; flush makes the line durable before the
     scheduler hands out credit for the job. *)
  output_string oc (line ^ "\n");
  flush oc

let create path m =
  let oc = open_out path in
  write_line oc (Json.to_string (manifest_to_json m));
  { oc; lock = Mutex.create () }

let append t e =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> write_line t.oc (entry_to_string e))

let close t = close_out t.oc

type loaded = { manifest : manifest; entries : entry list; dropped : int }

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no journal at %S" path)
  else
    match read_lines path with
    | exception Sys_error msg -> Error msg
    | [] -> Error (Printf.sprintf "journal %S is empty" path)
    | first :: rest ->
      let* manifest =
        match Result.bind (Json.parse first) manifest_of_json with
        | Ok m -> Ok m
        | Error e -> Error (Printf.sprintf "journal %S: bad manifest: %s" path e)
      in
      (* Tolerate corruption: a crash can truncate the final line, and a
         hand-edited journal may hold stray lines; skip and count rather
         than fail, so the good prefix of a 1000-run sweep survives. *)
      let entries, dropped =
        List.fold_left
          (fun (es, dropped) line ->
            if String.trim line = "" then (es, dropped)
            else
              match Result.bind (Json.parse line) entry_of_json with
              | Ok e -> (e :: es, dropped)
              | Error _ -> (es, dropped + 1))
          ([], 0) rest
      in
      Ok { manifest; entries = List.rev entries; dropped }

let append_to path =
  let* loaded = load path in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Ok ({ oc; lock = Mutex.create () }, loaded)

let terminal entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.status with
      | Completed | Diverged -> Hashtbl.replace tbl e.job e
      | Timeout | Crashed _ -> ())
    entries;
  tbl
