(** Durable, resumable sweep batches: the glue between {!Job},
    {!Journal} and {!Scheduler} that the CLI, the bench harness and the
    experiment reproduction drive. *)

type config = {
  model : Gncg_workload.Instances.model;
  ns : int list;
  alphas : float list;
  seeds : int list;
  rule : Job.rule;
  evaluator : Job.evaluator;
  max_steps : int;
}

val config :
  ?rule:Job.rule ->
  ?evaluator:Job.evaluator ->
  ?max_steps:int ->
  Gncg_workload.Instances.model ->
  ns:int list ->
  alphas:float list ->
  seeds:int list ->
  config

val jobs : config -> Job.spec list
(** The deterministic job list, in {!Gncg_workload.Sweep.cartesian}
    order. *)

val manifest : config -> Journal.manifest

type progress = {
  total : int;  (** batch size *)
  executed : int;  (** jobs run by {e this} invocation *)
  skipped : int;  (** jobs already terminal in the journal *)
  completed : int;
  diverged : int;
  timeout : int;
  crashed : int;  (** classification counts over the whole batch *)
  retries : int;
      (** extra attempts beyond the first, summed over this invocation's
          fresh reports (also published as the
          [runs.batch_retry_attempts] counter) *)
}

val pp_progress : Format.formatter -> progress -> unit

type summary = {
  runs : Gncg_workload.Sweep.run list;
      (** [Completed]/[Diverged] run records, in job order — the same
          shape [Sweep.dynamics_batch] returns, feeding {!Report}
          unchanged. *)
  progress : progress;
}

val run :
  ?domains:int ->
  ?budget:float ->
  ?retries:int ->
  ?exec:(Job.spec -> Gncg_workload.Sweep.run) ->
  ?on_result:(Job.spec -> Gncg_workload.Sweep.run Scheduler.report -> unit) ->
  ?journal:string ->
  config ->
  summary
(** Executes the whole batch through the work-stealing scheduler.  With
    [journal], creates/truncates the file first and appends every result
    as it lands, so the batch can be killed and picked up by {!resume}.
    [exec] (default {!Job.execute}) is the fault-injection seam the
    {!Chaos} harness wraps; production callers never pass it.
    [on_result] fires once per freshly executed job as it lands,
    serialized under the scheduler's result lock and {e after} the
    journal append — the streaming seam the serve daemon relays per-job
    results from. *)

val resume :
  ?domains:int ->
  ?budget:float ->
  ?retries:int ->
  ?exec:(Job.spec -> Gncg_workload.Sweep.run) ->
  ?on_result:(Job.spec -> Gncg_workload.Sweep.run Scheduler.report -> unit) ->
  journal:string ->
  unit ->
  (summary, string) result
(** Reloads the journal, re-derives the job list from its manifest, and
    executes only the jobs with no terminal entry ([Timeout]/[Crashed]
    entries are retried; [Completed]/[Diverged] are skipped).  Journaled
    and fresh results are merged in job order, so an interrupted-then-
    resumed sweep reports exactly what an uninterrupted one would.
    [on_result] fires only for the re-executed jobs. *)

val status :
  journal:string ->
  (Journal.manifest * progress * (string * string) list, string) result
(** Read-only: the manifest plus classification counts ([executed] is 0
    by construction — nothing runs).  The third component lists, per
    still-pending job whose latest journaled classification is a crash,
    its [(job hash, crash detail)] — the detail is the
    {!Scheduler.crash} message with the recorded backtrace appended, so
    [gncg sweep status] can print what actually went wrong. *)
