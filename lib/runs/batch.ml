module Sweep = Gncg_workload.Sweep
module Metric = Gncg_obs.Metric

(* Retry pressure per batch invocation: total extra attempts beyond the
   first, summed over the batch's fresh reports. *)
let c_batch_retries = Metric.Counter.make "runs.batch_retry_attempts"

type config = {
  model : Gncg_workload.Instances.model;
  ns : int list;
  alphas : float list;
  seeds : int list;
  rule : Job.rule;
  evaluator : Job.evaluator;
  max_steps : int;
}

let config ?(rule = Job.Greedy_response) ?(evaluator = `Incremental) ?(max_steps = 5000)
    model ~ns ~alphas ~seeds =
  { model; ns; alphas; seeds; rule; evaluator; max_steps }

let jobs c =
  List.map
    (fun (n, alpha, seed) ->
      Job.make ~rule:c.rule ~evaluator:c.evaluator ~max_steps:c.max_steps c.model ~n
        ~alpha ~seed)
    (Sweep.cartesian ~ns:c.ns ~alphas:c.alphas ~seeds:c.seeds)

let manifest c =
  {
    Journal.schema = 1;
    model = Job.model_to_string c.model;
    ns = c.ns;
    alphas = c.alphas;
    seeds = c.seeds;
    rule = c.rule;
    evaluator = c.evaluator;
    max_steps = c.max_steps;
    jobs = List.length c.ns * List.length c.alphas * List.length c.seeds;
  }

type progress = {
  total : int;
  executed : int;
  skipped : int;
  completed : int;
  diverged : int;
  timeout : int;
  crashed : int;
  retries : int;
}

let pp_progress fmt p =
  Format.fprintf fmt
    "%d jobs: re-executed %d jobs, skipped %d already journaled (completed %d, \
     diverged %d, timeout %d, crashed %d, retry attempts %d)"
    p.total p.executed p.skipped p.completed p.diverged p.timeout p.crashed p.retries

type summary = { runs : Sweep.run list; progress : progress }

let entry_of_report job (report : Sweep.run Scheduler.report) =
  let status, result =
    match report.outcome with
    | Scheduler.Completed r -> (Journal.Completed, Some r)
    | Scheduler.Diverged r -> (Journal.Diverged, Some r)
    | Scheduler.Timeout -> (Journal.Timeout, None)
    | Scheduler.Crashed { msg; backtrace } ->
      (* The journal keeps a single string: message first, backtrace (when
         recorded) appended so a post-mortem has the frames. *)
      ( Journal.Crashed
          (if backtrace = "" then msg else msg ^ "\n" ^ String.trim backtrace),
        None )
  in
  {
    Journal.job = Job.hash job;
    status;
    attempts = report.attempts;
    elapsed = report.elapsed;
    result;
  }

(* Runs [pending] through the scheduler (journaling as results land) and
   merges with the already-terminal entries, in job order.  [exec] is the
   fault-injection seam: production always passes [Job.execute]; the
   chaos harness wraps it. *)
let run_pending ?domains ?budget ?retries ?(exec = Job.execute) ?on_result:notify
    journal_handle all_jobs terminal pending =
  let on_result job report =
    (match journal_handle with
    | None -> ()
    | Some j -> Journal.append j (entry_of_report job report));
    (* Journal first, then notify: a subscriber crash (the streaming
       seam is caller code) must never lose the durable record. *)
    match notify with None -> () | Some f -> f job report
  in
  let reports =
    Scheduler.run ?domains ?budget ?retries
      ~diverged:(fun (r : Sweep.run) -> not r.Sweep.converged)
      ~on_result exec pending
  in
  let fresh = Hashtbl.create (List.length reports) in
  List.iter
    (fun (job, report) -> Hashtbl.replace fresh (Job.hash job) report)
    reports;
  let batch_retries =
    List.fold_left (fun acc (_, r) -> acc + (r.Scheduler.attempts - 1)) 0 reports
  in
  Metric.Counter.add c_batch_retries batch_retries;
  let completed = ref 0
  and diverged = ref 0
  and timeout = ref 0
  and crashed = ref 0 in
  let runs =
    List.filter_map
      (fun job ->
        let h = Job.hash job in
        match Hashtbl.find_opt fresh h with
        | Some { Scheduler.outcome = Completed r; _ } -> incr completed; Some r
        | Some { Scheduler.outcome = Diverged r; _ } -> incr diverged; Some r
        | Some { Scheduler.outcome = Timeout; _ } -> incr timeout; None
        | Some { Scheduler.outcome = Crashed _; _ } -> incr crashed; None
        | None -> (
          match Hashtbl.find_opt terminal h with
          | Some { Journal.status = Completed; result; _ } -> incr completed; result
          | Some { Journal.status = Diverged; result; _ } -> incr diverged; result
          | Some _ | None ->
            (* A hash neither pending nor terminal cannot arise: pending
               is defined as the complement of terminal. *)
            None))
      all_jobs
  in
  let progress =
    {
      total = List.length all_jobs;
      executed = List.length pending;
      skipped = List.length all_jobs - List.length pending;
      completed = !completed;
      diverged = !diverged;
      timeout = !timeout;
      crashed = !crashed;
      retries = batch_retries;
    }
  in
  { runs; progress }

let run ?domains ?budget ?retries ?exec ?on_result ?journal c =
  let all_jobs = jobs c in
  let handle = Option.map (fun path -> Journal.create path (manifest c)) journal in
  let result =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close handle)
      (fun () -> run_pending ?domains ?budget ?retries ?exec ?on_result handle all_jobs
          (Hashtbl.create 0) all_jobs)
  in
  result

let ( let* ) = Result.bind

let resume ?domains ?budget ?retries ?exec ?on_result ~journal () =
  let* handle, loaded = Journal.append_to journal in
  let* all_jobs = Journal.manifest_jobs loaded.Journal.manifest in
  let terminal = Journal.terminal loaded.Journal.entries in
  let pending =
    List.filter (fun job -> not (Hashtbl.mem terminal (Job.hash job))) all_jobs
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Journal.close handle)
      (fun () ->
        run_pending ?domains ?budget ?retries ?exec ?on_result (Some handle) all_jobs
          terminal pending)
  in
  Ok result

let status ~journal =
  let* loaded = Journal.load journal in
  let* all_jobs = Journal.manifest_jobs loaded.Journal.manifest in
  let terminal = Journal.terminal loaded.Journal.entries in
  let count pred =
    Hashtbl.fold (fun _ e acc -> if pred e.Journal.status then acc + 1 else acc)
      terminal 0
  in
  (* Timeouts/crashes are non-terminal (they will be retried): count the
     latest non-terminal classification of still-pending jobs instead. *)
  let latest = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace latest e.Journal.job e) loaded.Journal.entries;
  let timeout = ref 0 and crashed = ref 0 in
  let crashes = ref [] in
  List.iter
    (fun job ->
      let h = Job.hash job in
      if not (Hashtbl.mem terminal h) then
        match Hashtbl.find_opt latest h with
        | Some { Journal.status = Timeout; _ } -> incr timeout
        | Some { Journal.status = Crashed detail; _ } ->
          incr crashed;
          (* [detail] is the journaled message, with the backtrace frames
             appended when recording was on — see [entry_of_report]. *)
          crashes := (h, detail) :: !crashes
        | _ -> ())
    all_jobs;
  let progress =
    {
      total = List.length all_jobs;
      executed = 0;
      skipped = Hashtbl.length terminal;
      completed = count (function Journal.Completed -> true | _ -> false);
      diverged = count (function Journal.Diverged -> true | _ -> false);
      timeout = !timeout;
      crashed = !crashed;
      retries = 0;
    }
  in
  Ok (loaded.Journal.manifest, progress, List.rev !crashes)
