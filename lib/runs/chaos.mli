(** Deterministic fault injection for the runs subsystem.

    The scheduler/journal stack promises to survive crashing jobs,
    blown budgets, and torn journal files.  This module manufactures
    exactly those conditions {e reproducibly}: every fault decision is a
    pure function of [(plan seed, job key, attempt number)], so a failing
    chaos test replays bit-identically from its seed, and a job that
    crashes on attempt 1 can be scripted to succeed on attempt 2
    (exercising the retry path, not just the give-up path).

    Two families of injectors:

    - {!wrap} turns an ordinary executor into one that crashes, delays,
      or corrupts results according to a {!plan} — plugged into
      {!Batch.run}'s [?exec] seam;
    - the journal injectors ({!truncate_last_line},
      {!append_garbage_line}, {!interleave_partial_writes}) mangle a
      journal file on disk the way real crashes and concurrent writers
      do, for resume/corruption-tolerance properties. *)

exception Injected_crash of string
(** The exception {!wrap} raises for a [Crash] fault; carries the job
    key so test assertions can match crashes to jobs. *)

type fault =
  | Crash
  | Delay of float  (** sleep this many seconds, then run the job *)
  | Corrupt_result  (** run the job, then pass the result through [corrupt] *)

type plan = {
  seed : int;
  crash_p : float;
  delay_p : float;
  delay_s : float;
  corrupt_p : float;
  fault_attempts : int;
      (** attempts eligible for faults: a fault can only fire on attempt
          numbers [<= fault_attempts], so with [retries >=
          fault_attempts] every chaos job eventually succeeds.
          [max_int] makes faults permanent. *)
}

val plan :
  ?crash_p:float ->
  ?delay_p:float ->
  ?delay_s:float ->
  ?corrupt_p:float ->
  ?fault_attempts:int ->
  seed:int ->
  unit ->
  plan
(** Probabilities default to [0.]; [delay_s] to [0.05]; [fault_attempts]
    to [1] (faults on the first attempt only). *)

val decide : plan -> key:string -> attempt:int -> fault option
(** The pure fault oracle: hashes [(seed, key, attempt)] and maps the
    result to at most one fault ([Crash] shadows [Delay] shadows
    [Corrupt_result]).  Attempts beyond [fault_attempts] never fault.
    Tests use it directly as the expected-classification oracle. *)

val wrap :
  plan ->
  key:('a -> string) ->
  ?corrupt:('r -> 'r) ->
  ('a -> 'r) ->
  'a ->
  'r
(** [wrap plan ~key exec] is an executor with faults injected per
    {!decide}.  Attempt numbers are tracked internally per key (thread-
    safe — the scheduler calls from several domains); a wrapped executor
    is therefore stateful and must be fresh per batch.  [corrupt]
    defaults to the identity, making [Corrupt_result] a no-op. *)

(** {1 Process-level faults}

    The serve worker pool supervises whole worker {e processes}; its
    fault surface is bigger than an exception — a worker can vanish
    (SIGKILL, OOM-kill), wedge without dying, or write noise on the
    protocol channel.  [process_plan]/[decide_process] are the same
    deterministic oracle shape as {!plan}/{!decide} for exactly those
    faults; {!Gncg_serve.Worker.main} consumes the decisions (self-kill,
    stall, garbage line) so the supervisor's detection paths — pipe EOF
    + waitpid, liveness/budget deadlines, protocol resync — are
    exercised reproducibly. *)

type process_fault =
  | Kill  (** the worker SIGKILLs itself before touching the job *)
  | Hang of float
      (** the worker stalls this many seconds before executing — long
          enough and the supervisor's deadline kills it *)
  | Garbage
      (** the worker emits one line of non-JSON noise on its protocol
          channel before the real result *)

type process_plan = {
  pseed : int;
  kill_p : float;
  hang_p : float;
  hang_s : float;
  garbage_p : float;
  pfault_attempts : int;
      (** like [fault_attempts]: attempts [<= pfault_attempts] are
          eligible, so a killed job can be scripted to succeed when the
          supervisor requeues it *)
}

val process_plan :
  ?kill_p:float ->
  ?hang_p:float ->
  ?hang_s:float ->
  ?garbage_p:float ->
  ?fault_attempts:int ->
  seed:int ->
  unit ->
  process_plan
(** Probabilities default to [0.]; [hang_s] to [5.0]; [fault_attempts]
    to [1]. *)

val decide_process : process_plan -> key:string -> attempt:int -> process_fault option
(** Pure, like {!decide}, but salted differently so sharing a seed with
    an in-process plan does not correlate the two fault streams.
    [Kill] shadows [Hang] shadows [Garbage]. *)

(** {1 Journal corruption}

    Each injector rewrites the file in place, simulating a specific
    real-world failure.  They are test fixtures: no fsync discipline,
    not crash-safe themselves. *)

val truncate_last_line : string -> unit
(** Chops the final line roughly in half and drops the newline — the
    shape a [kill -9] mid-append leaves behind. *)

val append_garbage_line : string -> unit
(** Appends one line of non-JSON noise — a hand-edit or foreign writer. *)

val interleave_partial_writes : string -> unit
(** Replaces the last two lines with one line made of the first half of
    each — the torn result of two unsynchronized appenders.  Requires at
    least two lines; fewer is a no-op. *)
