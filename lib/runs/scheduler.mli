(** Work-stealing job scheduler over OCaml 5 domains.

    [Parallel] (lib/util) splits an index space into static contiguous
    chunks — the right shape for homogeneous hot loops (APSP rows,
    per-agent cost sums), and the wrong one for sweep batches, where run
    times vary by orders of magnitude across [alpha] and a single static
    chunk of slow jobs idles every other core.  This scheduler deals the
    jobs round-robin into per-domain deques; each worker pops its own
    deque from the bottom and, when empty, steals from the top of a
    sibling's, so load migrates to idle cores automatically.

    One pathological instance never kills a batch: every job execution is
    classified — an uncaught exception is [Crashed] (and retried up to
    [retries] extra attempts), a job whose wall-clock exceeds [budget] is
    [Timeout], and a finished result is [Diverged] or [Completed]
    according to the caller's predicate.

    The module is generic in the job and result types so that the tests
    can inject crashing, slow and heterogeneous jobs; the sweep
    instantiation lives in {!Batch}. *)

type crash = {
  msg : string;  (** [Printexc.to_string] of the uncaught exception *)
  backtrace : string;
      (** Backtrace captured at the catch site — empty unless backtrace
          recording is on ([Printexc.record_backtrace true] or
          [OCAMLRUNPARAM=b]; the CLI enables it at startup). *)
}

exception Over_budget
(** Escape hatch for executors that enforce the wall-clock budget
    {e preemptively} instead of post-hoc — the serve worker pool SIGKILLs
    a worker process on overrun and raises this.  {!run} records
    [Timeout] for the job (no retry, matching the post-hoc rule that
    deterministic jobs are not re-run into the same wall). *)

exception Crash_report of crash
(** Escape hatch for executors that already hold a classified crash —
    e.g. an exception raised inside a worker process, whose message and
    frames were shipped back over the wire.  {!run} retries as for any
    crash and, once retries are exhausted, records exactly the carried
    {!crash} instead of re-deriving one from the supervisor's stack. *)

type 'r outcome =
  | Completed of 'r
  | Diverged of 'r
      (** The job finished but its result is classified unconverged
          (e.g. dynamics that cycled or ran out of steps). *)
  | Timeout
      (** Wall-clock budget exceeded.  Enforcement is post-hoc: a running
          job cannot be preempted inside a domain, but every job is
          finite (dynamics are bounded by [max_steps]), so the budget
          bounds what is {e recorded}, not what runs.  Deterministic jobs
          are not retried on timeout — the re-run would time out again. *)
  | Crashed of crash  (** Uncaught exception, after all retries. *)

val outcome_map : ('a -> 'b) -> 'a outcome -> 'b outcome

type 'r report = { outcome : 'r outcome; attempts : int; elapsed : float }
(** [attempts] counts executions (1 + retries used); [elapsed] is the
    wall-clock of the last attempt in seconds. *)

val run :
  ?domains:int ->
  ?budget:float ->
  ?retries:int ->
  ?diverged:('r -> bool) ->
  ?on_result:('a -> 'r report -> unit) ->
  ('a -> 'r) ->
  'a list ->
  ('a * 'r report) list
(** [run exec jobs] executes every job and returns the reports in the
    input order (execution order is scheduler-dependent; results must
    not be).  [on_result] fires once per job as it finishes, serialized
    under a lock — the journal appends from it.  [domains] defaults to
    {!Gncg_util.Parallel.default_domains}; [budget] to no limit;
    [retries] to [0]; [diverged] to [fun _ -> false]. *)

val run_sequential :
  ?budget:float ->
  ?retries:int ->
  ?diverged:('r -> bool) ->
  ?on_result:('a -> 'r report -> unit) ->
  ('a -> 'r) ->
  'a list ->
  ('a * 'r report) list
(** Single-domain reference runner with identical classification
    semantics; the equivalence oracle for {!run}. *)
