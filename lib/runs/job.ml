module Instances = Gncg_workload.Instances

type rule = Best_response | Greedy_response | Add_only

type evaluator = Gncg.Evaluator.t

type spec = {
  model : Instances.model;
  n : int;
  alpha : float;
  seed : int;
  rule : rule;
  evaluator : evaluator;
  max_steps : int;
}

let make ?(rule = Greedy_response) ?(evaluator = `Incremental) ?(max_steps = 5000) model
    ~n ~alpha ~seed =
  { model; n; alpha; seed; rule; evaluator; max_steps }

let dynamics_rule = function
  | Best_response -> Gncg.Dynamics.Best_response
  | Greedy_response -> Gncg.Dynamics.Greedy_response
  | Add_only -> Gncg.Dynamics.Add_only

let rule_to_string = function
  | Best_response -> "best"
  | Greedy_response -> "greedy"
  | Add_only -> "add-only"

let rule_of_string = function
  | "best" -> Ok Best_response
  | "greedy" -> Ok Greedy_response
  | "add-only" -> Ok Add_only
  | s -> Error (Printf.sprintf "unknown rule %S (best | greedy | add-only)" s)

let evaluator_to_string = Gncg.Evaluator.to_string

let evaluator_of_string = Gncg.Evaluator.of_string

(* --- model encoding ---------------------------------------------------- *)

(* %.17g round-trips every finite double, so the canonical form is stable
   across render/parse cycles. *)
let fl x = Printf.sprintf "%.17g" x

let norm_to_string = function
  | Gncg_metric.Euclidean.L1 -> "l1"
  | Gncg_metric.Euclidean.L2 -> "l2"
  | Gncg_metric.Euclidean.Linf -> "linf"
  | Gncg_metric.Euclidean.Lp p -> "lp" ^ fl p

let norm_of_string s =
  match s with
  | "l1" -> Ok Gncg_metric.Euclidean.L1
  | "l2" -> Ok Gncg_metric.Euclidean.L2
  | "linf" -> Ok Gncg_metric.Euclidean.Linf
  | _ when String.length s > 2 && String.sub s 0 2 = "lp" -> (
    match float_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some p -> Ok (Gncg_metric.Euclidean.Lp p)
    | None -> Error (Printf.sprintf "bad norm %S" s))
  | _ -> Error (Printf.sprintf "bad norm %S" s)

let model_to_string = function
  | Instances.One_two { p_one } -> Printf.sprintf "one-two(%s)" (fl p_one)
  | Instances.Tree { wmin; wmax } -> Printf.sprintf "tree(%s,%s)" (fl wmin) (fl wmax)
  | Instances.Euclid { norm; d; box } ->
    Printf.sprintf "euclid(%s,%d,%s)" (norm_to_string norm) d (fl box)
  | Instances.Graph_metric { p; wmin; wmax } ->
    Printf.sprintf "graph(%s,%s,%s)" (fl p) (fl wmin) (fl wmax)
  | Instances.General { lo; hi } -> Printf.sprintf "general(%s,%s)" (fl lo) (fl hi)
  | Instances.One_inf { p } -> Printf.sprintf "one-inf(%s)" (fl p)

let model_of_string s =
  let ( let* ) = Result.bind in
  let parts =
    match String.index_opt s '(' with
    | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      Some
        ( String.sub s 0 i,
          String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 2)) )
    | _ -> None
  in
  let float_arg a =
    match float_of_string_opt a with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "bad model parameter %S in %S" a s)
  in
  let int_arg a =
    match int_of_string_opt a with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "bad model parameter %S in %S" a s)
  in
  match parts with
  | None -> Error (Printf.sprintf "bad model %S (expected name(args))" s)
  | Some (name, args) -> (
    match (name, args) with
    | "one-two", [ p ] ->
      let* p_one = float_arg p in
      Ok (Instances.One_two { p_one })
    | "tree", [ a; b ] ->
      let* wmin = float_arg a in
      let* wmax = float_arg b in
      Ok (Instances.Tree { wmin; wmax })
    | "euclid", [ nm; d; box ] ->
      let* norm = norm_of_string nm in
      let* d = int_arg d in
      let* box = float_arg box in
      Ok (Instances.Euclid { norm; d; box })
    | "graph", [ p; a; b ] ->
      let* p = float_arg p in
      let* wmin = float_arg a in
      let* wmax = float_arg b in
      Ok (Instances.Graph_metric { p; wmin; wmax })
    | "general", [ a; b ] ->
      let* lo = float_arg a in
      let* hi = float_arg b in
      Ok (Instances.General { lo; hi })
    | "one-inf", [ p ] ->
      let* p = float_arg p in
      Ok (Instances.One_inf { p })
    | _ -> Error (Printf.sprintf "unknown model %S" s))

(* --- canonical encoding + hash ----------------------------------------- *)

let to_canonical j =
  Printf.sprintf "gncg-job:1;model=%s;n=%d;alpha=%s;seed=%d;rule=%s;eval=%s;max_steps=%d"
    (model_to_string j.model) j.n (fl j.alpha) j.seed (rule_to_string j.rule)
    (evaluator_to_string j.evaluator) j.max_steps

let of_canonical s =
  let ( let* ) = Result.bind in
  let kv part =
    match String.index_opt part '=' with
    | Some i ->
      Ok (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
    | None -> Error (Printf.sprintf "bad job field %S" part)
  in
  match String.split_on_char ';' s with
  | "gncg-job:1" :: fields ->
    let* kvs = List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* kv = kv part in
          Ok (kv :: acc))
        (Ok []) fields
    in
    let get k =
      match List.assoc_opt k kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing job field %S" k)
    in
    let int_field k =
      let* v = get k in
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad integer %S for %S" v k)
    in
    let float_field k =
      let* v = get k in
      match float_of_string_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad float %S for %S" v k)
    in
    let* model = Result.bind (get "model") model_of_string in
    let* n = int_field "n" in
    let* alpha = float_field "alpha" in
    let* seed = int_field "seed" in
    let* rule = Result.bind (get "rule") rule_of_string in
    let* evaluator = Result.bind (get "eval") evaluator_of_string in
    let* max_steps = int_field "max_steps" in
    Ok { model; n; alpha; seed; rule; evaluator; max_steps }
  | _ -> Error (Printf.sprintf "bad job encoding %S" s)

let hash j =
  (* FNV-1a, 64 bit.  OCaml's native int is 63 bits: do the arithmetic in
     int64 so the hash matches the published constants exactly. *)
  let fnv_offset = 0xcbf29ce484222325L and fnv_prime = 0x100000001b3L in
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    (to_canonical j);
  Printf.sprintf "%016Lx" !h

(* --- JSON -------------------------------------------------------------- *)

let to_json j =
  Json.Obj
    [
      ("model", Json.Str (model_to_string j.model));
      ("n", Json.num_int j.n);
      ("alpha", Json.Num j.alpha);
      ("seed", Json.num_int j.seed);
      ("rule", Json.Str (rule_to_string j.rule));
      ("evaluator", Json.Str (evaluator_to_string j.evaluator));
      ("max_steps", Json.num_int j.max_steps);
    ]

let of_json v =
  let ( let* ) = Result.bind in
  let str k = Result.bind (Json.member k v) Json.get_string in
  let int k = Result.bind (Json.member k v) Json.get_int in
  let* model = Result.bind (str "model") model_of_string in
  let* n = int "n" in
  let* alpha = Result.bind (Json.member "alpha" v) Json.get_float in
  let* seed = int "seed" in
  let* rule = Result.bind (str "rule") rule_of_string in
  let* evaluator = Result.bind (str "evaluator") evaluator_of_string in
  let* max_steps = int "max_steps" in
  Ok { model; n; alpha; seed; rule; evaluator; max_steps }

let execute j =
  Gncg_workload.Sweep.dynamics_run ~rule:(dynamics_rule j.rule) ~max_steps:j.max_steps
    ~evaluator:j.evaluator j.model ~n:j.n ~alpha:j.alpha ~seed:j.seed
