(** Deterministic job specifications.

    A job is identified by {e what it computes}, not when it ran: the
    spec captures every input of a seeded dynamics run (model with all
    parameters, [n], [alpha], seed, response rule, cost evaluator, step
    budget), and {!hash} is a stable content hash of the canonical
    encoding.  Two invocations — on different machines, in different
    batches, months apart — that would compute the same run have the
    same hash, which is what lets the journal resume a sweep by skipping
    already-journaled hashes. *)

type rule = Best_response | Greedy_response | Add_only
(** Serializable subset of {!Gncg.Dynamics.rule}: [Random_improving]
    carries live generator state and is deliberately excluded — a job
    must be reproducible from its spec alone. *)

type evaluator = Gncg.Evaluator.t
(** = [[ `Reference | `Fast | `Incremental ]]; the shared engine type. *)

type spec = {
  model : Gncg_workload.Instances.model;
  n : int;
  alpha : float;
  seed : int;
  rule : rule;
  evaluator : evaluator;
  max_steps : int;
}

val make :
  ?rule:rule ->
  ?evaluator:evaluator ->
  ?max_steps:int ->
  Gncg_workload.Instances.model ->
  n:int ->
  alpha:float ->
  seed:int ->
  spec
(** Defaults mirror [Sweep.dynamics_run]: greedy rule, incremental
    evaluator, 5000 steps. *)

val dynamics_rule : rule -> Gncg.Dynamics.rule

val model_to_string : Gncg_workload.Instances.model -> string
(** Canonical, parseable model encoding, e.g. ["euclid(l2,2,100)"].
    Distinct from [Instances.model_name], which is a display label that
    drops parameters. *)

val model_of_string : string -> (Gncg_workload.Instances.model, string) result

val to_canonical : spec -> string
(** The canonical one-line encoding the hash is computed over.  Floats
    are rendered with round-trip precision, so equal specs — and only
    equal specs, up to float identity — encode identically. *)

val of_canonical : string -> (spec, string) result

val hash : spec -> string
(** 64-bit FNV-1a of {!to_canonical}, as 16 lowercase hex digits. *)

val to_json : spec -> Json.t
val of_json : Json.t -> (spec, string) result

val execute : spec -> Gncg_workload.Sweep.run
(** Runs the job ([Sweep.dynamics_run] under the spec's parameters).
    Deterministic: the run is a function of the spec only. *)

val rule_to_string : rule -> string
val rule_of_string : string -> (rule, string) result
val evaluator_to_string : evaluator -> string
val evaluator_of_string : string -> (evaluator, string) result
