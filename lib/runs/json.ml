type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_int i = Num (float_of_int i)

(* --- rendering --------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else
    (* %.17g round-trips every finite double. *)
    Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> add_num buf x
    | Str s -> escape_string buf s
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at byte %d, found %C" c !pos c'
    | None -> fail "expected %C at byte %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at byte %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* The journal never emits code points above the control range;
              decode the BMP scalar to UTF-8 for tolerance. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail "bad escape \\%C" c);
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number at byte %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' at byte %d" !pos
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let items = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := field () :: !items;
            more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' at byte %d" !pos
        in
        more ();
        Obj (List.rev !items)
      end
    | Some c -> if numchar_start c then parse_number () else fail "unexpected %C at byte %d" c !pos
  and numchar_start c = match c with '0' .. '9' | '-' -> true | _ -> false in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at byte %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* --- accessors --------------------------------------------------------- *)

let member k = function
  | Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing member %S" k))
  | _ -> Error (Printf.sprintf "not an object (looking for %S)" k)

let get_int = function
  | Num x when Float.is_integer x -> Ok (int_of_float x)
  | _ -> Error "expected an integer"

let get_float = function
  | Num x -> Ok x
  | Null -> Ok Float.nan
  | _ -> Error "expected a number"

let get_string = function Str s -> Ok s | _ -> Error "expected a string"

let get_bool = function Bool b -> Ok b | _ -> Error "expected a boolean"

let get_list = function List vs -> Ok vs | _ -> Error "expected an array"
