module Ws_deque = Gncg_util.Ws_deque
module Metric = Gncg_obs.Metric

(* Layer-4 probes: job throughput and the scheduler's failure/steal
   accounting.  Counters are atomic, so the parallel workers can bump
   them concurrently; the per-job span event carries outcome and
   attempts. *)
let c_jobs = Metric.Counter.make "runs.jobs_executed"
let c_steals = Metric.Counter.make "runs.steals"
let c_retries = Metric.Counter.make "runs.retries"
let c_timeouts = Metric.Counter.make "runs.timeouts"
let c_crashes = Metric.Counter.make "runs.crashes"
let h_job_s = Metric.Histogram.make "runs.job_seconds"

let outcome_label = function
  | `Completed -> "completed"
  | `Diverged -> "diverged"
  | `Timeout -> "timeout"
  | `Crashed -> "crashed"

type crash = { msg : string; backtrace : string }

exception Over_budget
exception Crash_report of crash

let () =
  Printexc.register_printer (function
    | Over_budget -> Some "Scheduler.Over_budget"
    | Crash_report { msg; _ } -> Some (Printf.sprintf "Scheduler.Crash_report(%s)" msg)
    | _ -> None)

type 'r outcome =
  | Completed of 'r
  | Diverged of 'r
  | Timeout
  | Crashed of crash

let outcome_map f = function
  | Completed r -> Completed (f r)
  | Diverged r -> Diverged (f r)
  | Timeout -> Timeout
  | Crashed c -> Crashed c

type 'r report = { outcome : 'r outcome; attempts : int; elapsed : float }

(* One job, with the budget / retry / divergence classification.  Shared
   verbatim by the parallel and sequential runners so they cannot drift. *)
let observe_report report =
  Metric.Counter.incr c_jobs;
  Metric.Histogram.observe h_job_s report.elapsed;
  if report.attempts > 1 then Metric.Counter.add c_retries (report.attempts - 1);
  let tag =
    match report.outcome with
    | Completed _ -> `Completed
    | Diverged _ -> `Diverged
    | Timeout ->
      Metric.Counter.incr c_timeouts;
      `Timeout
    | Crashed _ ->
      Metric.Counter.incr c_crashes;
      `Crashed
  in
  if Gncg_obs.Sink.active () then
    Gncg_obs.Sink.emit
      {
        Gncg_obs.Sink.kind = "span";
        name = "runs.job";
        t_ns = Gncg_obs.Clock.now_ns () -. (report.elapsed *. 1e9);
        fields =
          [
            ("outcome", Gncg_obs.Sink.Str (outcome_label tag));
            ("attempts", Gncg_obs.Sink.Int report.attempts);
            ("dur_ns", Gncg_obs.Sink.Float (report.elapsed *. 1e9));
          ];
      }

let attempt ~budget ~retries ~diverged exec job =
  let rec go attempt_no =
    let t0 = Unix.gettimeofday () in
    match exec job with
    | result ->
      let elapsed = Unix.gettimeofday () -. t0 in
      let outcome =
        if elapsed > budget then Timeout
        else if diverged result then Diverged result
        else Completed result
      in
      { outcome; attempts = attempt_no; elapsed }
    | exception Over_budget ->
      (* The executor enforced the budget itself (a supervisor that
         SIGKILLed a worker process on overrun): record [Timeout]
         without retrying, exactly as the post-hoc path would. *)
      { outcome = Timeout; attempts = attempt_no; elapsed = Unix.gettimeofday () -. t0 }
    | exception Crash_report c ->
      (* The executor already classified the crash (e.g. the exception
         was raised in a worker process and shipped back with its own
         frames): keep that record instead of the supervisor-side one. *)
      let elapsed = Unix.gettimeofday () -. t0 in
      if attempt_no <= retries then go (attempt_no + 1)
      else { outcome = Crashed c; attempts = attempt_no; elapsed }
    | exception e ->
      (* Grab the backtrace before any further call can clobber it; it is
         empty unless [Printexc.record_backtrace] is on (the CLI enables
         it, and CI exports OCAMLRUNPARAM=b). *)
      let backtrace = Printexc.get_backtrace () in
      let elapsed = Unix.gettimeofday () -. t0 in
      if attempt_no <= retries then go (attempt_no + 1)
      else
        {
          outcome = Crashed { msg = Printexc.to_string e; backtrace };
          attempts = attempt_no;
          elapsed;
        }
  in
  let report = go 1 in
  observe_report report;
  report

let run_sequential ?(budget = Float.infinity) ?(retries = 0)
    ?(diverged = fun _ -> false) ?(on_result = fun _ _ -> ()) exec jobs =
  List.map
    (fun job ->
      let report = attempt ~budget ~retries ~diverged exec job in
      on_result job report;
      (job, report))
    jobs

let run ?domains ?(budget = Float.infinity) ?(retries = 0) ?(diverged = fun _ -> false)
    ?(on_result = fun _ _ -> ()) exec jobs =
  let n = List.length jobs in
  let domains =
    match domains with
    | Some d when d >= 1 -> min d (max n 1)
    | Some _ -> invalid_arg "Scheduler.run: domains must be positive"
    | None -> min (Gncg_util.Parallel.default_domains ()) (max n 1)
  in
  if domains <= 1 then run_sequential ~budget ~retries ~diverged ~on_result exec jobs
  else begin
    let jobs = Array.of_list jobs in
    let reports = Array.make n None in
    let deques = Array.init domains (fun _ -> Ws_deque.create ()) in
    (* Deal round-robin: neighbouring jobs (typically neighbouring sweep
       points, with similar cost) spread across domains up front. *)
    Array.iteri (fun i _ -> Ws_deque.push deques.(i mod domains) i) jobs;
    let result_lock = Mutex.create () in
    let worker w () =
      let next_job () =
        match Ws_deque.pop deques.(w) with
        | Some i -> Some i
        | None ->
          (* Own deque drained: steal from the siblings, oldest first.  No
             work is ever added after the deal, so one full empty scan
             means the batch is done for this worker. *)
          let rec scan k =
            if k >= domains then None
            else
              match Ws_deque.steal deques.((w + k) mod domains) with
              | Some i ->
                Metric.Counter.incr c_steals;
                Some i
              | None -> scan (k + 1)
          in
          scan 1
      in
      let rec loop () =
        match next_job () with
        | None -> ()
        | Some i ->
          let report = attempt ~budget ~retries ~diverged exec jobs.(i) in
          Mutex.lock result_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock result_lock)
            (fun () ->
              reports.(i) <- Some report;
              on_result jobs.(i) report);
          loop ()
      in
      loop ()
    in
    let handles = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join handles;
    Array.to_list
      (Array.mapi
         (fun i job ->
           match reports.(i) with
           | Some r -> (job, r)
           | None -> assert false (* every dealt index is executed exactly once *))
         jobs)
  end
