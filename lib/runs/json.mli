(** Minimal JSON values for the journal's JSONL lines.

    The repository deliberately has no JSON dependency; the journal needs
    only flat-ish objects of scalars, so this module implements the small
    subset it emits: no exponent tricks, integers rendered without a
    decimal point, non-finite floats rendered as [null] (JSON has no
    NaN/infinity).  [parse] accepts general JSON text (nested objects,
    arrays, escapes) so reload tolerates hand-edited files. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_int : int -> t
val to_string : t -> string
(** Single-line rendering (no newlines — one value per journal line). *)

val parse : string -> (t, string) result
(** Parses one JSON value; [Error] describes the first offending byte.
    Trailing garbage after the value is an error. *)

(** Accessors: [Error] with the member name when shape does not match. *)

val member : string -> t -> (t, string) result
val get_int : t -> (int, string) result
val get_float : t -> (float, string) result
(** [Null] reads back as [Float.nan] — the rendering of non-finite
    numbers is lossy by design, and callers treat the two the same. *)

val get_string : t -> (string, string) result
val get_bool : t -> (bool, string) result
val get_list : t -> (t list, string) result
