(** Append-only JSONL journal of sweep results.

    Line 1 is the manifest (schema version, job count, and the full
    generating sweep config, so [resume] can re-derive the job list from
    the journal alone).  Every subsequent line is one finished job:
    its content hash, classification, attempt count, elapsed seconds and
    — for [Completed]/[Diverged] — the run record.

    Appends are atomic at line granularity: each entry is rendered to a
    single buffer and written with one [output_string] + flush on a file
    opened in append mode, so a crash mid-write can only truncate the
    {e final} line.  Reload is corruption tolerant accordingly: an
    unparseable trailing line is dropped (counted, not fatal), so a
    journal killed at run 900/1000 resumes with at worst one run lost. *)

type status =
  | Completed
  | Diverged
  | Timeout
  | Crashed of string

type entry = {
  job : string;  (** content hash ({!Job.hash}) *)
  status : status;
  attempts : int;
  elapsed : float;
  result : Gncg_workload.Sweep.run option;
      (** present iff [Completed] or [Diverged] *)
}

type manifest = {
  schema : int;
  model : string;  (** canonical — {!Job.model_to_string} *)
  ns : int list;
  alphas : float list;
  seeds : int list;
  rule : Job.rule;
  evaluator : Job.evaluator;
  max_steps : int;
  jobs : int;  (** expected batch size, |ns|·|alphas|·|seeds| *)
}

val manifest_jobs : manifest -> (Job.spec list, string) result
(** Re-derives the full deterministic job list ([n]-major, then [alpha],
    then seed — the {!Gncg_workload.Sweep.cartesian} order). *)

type t
(** An open journal (append handle). *)

val create : string -> manifest -> t
(** Creates/truncates the file and writes the manifest line. *)

val append : t -> entry -> unit
val close : t -> unit

type loaded = {
  manifest : manifest;
  entries : entry list;  (** journal order *)
  dropped : int;  (** unparseable lines skipped during reload *)
}

val load : string -> (loaded, string) result
(** Read-only reload.  Fails only when the file is missing/unreadable or
    the manifest line itself is unusable. *)

val append_to : string -> (t * loaded, string) result
(** {!load} followed by reopening the file for appending — the resume
    path. *)

val terminal : entry list -> (string, entry) Hashtbl.t
(** Latest [Completed]/[Diverged] entry per job hash: the jobs a resume
    skips.  [Timeout] and [Crashed] entries are {e not} terminal — a
    resume retries them (e.g. with a larger [--budget]). *)

val run_to_json : Gncg_workload.Sweep.run -> Json.t
val run_of_json : Json.t -> (Gncg_workload.Sweep.run, string) result
val entry_to_string : entry -> string
(** The exact line {!append} writes (without the newline). *)
