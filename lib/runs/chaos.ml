exception Injected_crash of string

let () =
  Printexc.register_printer (function
    | Injected_crash key -> Some (Printf.sprintf "Chaos.Injected_crash(%s)" key)
    | _ -> None)

type fault =
  | Crash
  | Delay of float
  | Corrupt_result

type plan = {
  seed : int;
  crash_p : float;
  delay_p : float;
  delay_s : float;
  corrupt_p : float;
  fault_attempts : int;
}

let plan ?(crash_p = 0.) ?(delay_p = 0.) ?(delay_s = 0.05) ?(corrupt_p = 0.)
    ?(fault_attempts = 1) ~seed () =
  if crash_p < 0. || delay_p < 0. || corrupt_p < 0. then
    invalid_arg "Chaos.plan: negative probability";
  { seed; crash_p; delay_p; delay_s; corrupt_p; fault_attempts }

(* FNV-1a over "seed;key;attempt", folded to a uniform draw in [0,1).
   Purely functional: the same (plan, key, attempt) always draws the same
   number, on every domain, in every process. *)
let draw_u ~salt ~seed ~key ~attempt =
  let fnv_offset = 0xcbf29ce484222325L and fnv_prime = 0x100000001b3L in
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    (Printf.sprintf "%s%d;%s;%d" salt seed key attempt);
  (* Top 53 bits -> [0,1). *)
  Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.0

let draw plan ~key ~attempt = draw_u ~salt:"" ~seed:plan.seed ~key ~attempt

let decide plan ~key ~attempt =
  if attempt > plan.fault_attempts then None
  else begin
    let u = draw plan ~key ~attempt in
    if u < plan.crash_p then Some Crash
    else if u < plan.crash_p +. plan.delay_p then Some (Delay plan.delay_s)
    else if u < plan.crash_p +. plan.delay_p +. plan.corrupt_p then Some Corrupt_result
    else None
  end

let wrap plan ~key ?(corrupt = fun r -> r) exec =
  (* Attempt numbers live here, not in the scheduler: the wrapper must
     see the same attempt the retry loop is on.  Mutex-protected — the
     work-stealing scheduler executes from several domains. *)
  let attempts = Hashtbl.create 16 in
  let lock = Mutex.create () in
  fun job ->
    let k = key job in
    let attempt =
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          let a = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts k) in
          Hashtbl.replace attempts k a;
          a)
    in
    match decide plan ~key:k ~attempt with
    | Some Crash -> raise (Injected_crash k)
    | Some (Delay s) ->
      Unix.sleepf s;
      exec job
    | Some Corrupt_result -> corrupt (exec job)
    | None -> exec job

(* --- process-level faults ------------------------------------------------ *)

type process_fault =
  | Kill
  | Hang of float
  | Garbage

type process_plan = {
  pseed : int;
  kill_p : float;
  hang_p : float;
  hang_s : float;
  garbage_p : float;
  pfault_attempts : int;
}

let process_plan ?(kill_p = 0.) ?(hang_p = 0.) ?(hang_s = 5.0) ?(garbage_p = 0.)
    ?(fault_attempts = 1) ~seed () =
  if kill_p < 0. || hang_p < 0. || garbage_p < 0. then
    invalid_arg "Chaos.process_plan: negative probability";
  { pseed = seed; kill_p; hang_p; hang_s; garbage_p; pfault_attempts = fault_attempts }

(* Salted differently from [decide] so a seed shared between an
   in-process plan and a process plan does not correlate their faults. *)
let decide_process plan ~key ~attempt =
  if attempt > plan.pfault_attempts then None
  else begin
    let u = draw_u ~salt:"proc;" ~seed:plan.pseed ~key ~attempt in
    if u < plan.kill_p then Some Kill
    else if u < plan.kill_p +. plan.hang_p then Some (Hang plan.hang_s)
    else if u < plan.kill_p +. plan.hang_p +. plan.garbage_p then Some Garbage
    else None
  end

(* --- journal corruption ------------------------------------------------- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* Split into lines, remembering whether the file ended in a newline. *)
let lines_of path =
  let s = read_all path in
  let s = if String.length s > 0 && s.[String.length s - 1] = '\n' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if s = "" then [] else String.split_on_char '\n' s

let unlines ls = String.concat "\n" ls ^ "\n"

let truncate_last_line path =
  match List.rev (lines_of path) with
  | [] -> ()
  | last :: rev_rest ->
    let cut = String.length last / 2 in
    let torn = String.sub last 0 cut in
    (* No trailing newline: the append died mid-write. *)
    write_all path (String.concat "\n" (List.rev (torn :: rev_rest)))

let append_garbage_line path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc "{\"job\": \x01garbage \xff not json\n")

let interleave_partial_writes path =
  match List.rev (lines_of path) with
  | a :: b :: rev_rest ->
    (* Two writers raced: each line's first half landed, torn together. *)
    let half s = String.sub s 0 (String.length s / 2) in
    write_all path (unlines (List.rev ((half b ^ half a) :: rev_rest)))
  | _ -> ()
