(** The built network [G(s)]: the subgraph of the host containing exactly
    the bought edges, weighted by the host weights. *)

val graph : Host.t -> Strategy.t -> Gncg_graph.Wgraph.t
(** Build [G(s)].  Edges of infinite host weight are not materialized (they
    can never be part of a finite-cost network; in the 1-∞ variant buying
    one is simply a wasted purchase, which the cost module still charges). *)

val validate :
  ?require_connected:bool -> Host.t -> Strategy.t -> (unit, Gncg_util.Gncg_error.t) result
(** Strategy/ownership consistency against the host: matching sizes,
    in-range non-self purchases agreeing with the ownership view, no
    NaN-weight purchases; with [require_connected] (default [false] — a
    disconnected network is a legal, infinitely costly state) the built
    network must also span all agents. *)

val distances_from : Host.t -> Strategy.t -> int -> float array
(** Shortest-path distances in [G(s)] from one agent. *)

val all_distances : Host.t -> Strategy.t -> float array array

val is_connected : Host.t -> Strategy.t -> bool

val diameter : Host.t -> Strategy.t -> float

val to_dot : ?name:string -> Host.t -> Strategy.t -> string
(** Graphviz digraph of the built network with ownership as edge
    direction (owner → target) and host weights as labels; doubly-bought
    edges appear once per owner. *)
