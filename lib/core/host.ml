type t = {
  metric : Gncg_metric.Metric.t;
  alpha : float;
  geometry : Gncg_metric.Geometry.t option;
}

let make ?geometry ~alpha metric =
  if alpha <= 0.0 || not (Float.is_finite alpha) then
    invalid_arg "Host.make: alpha must be positive and finite";
  (match geometry with
  | Some g when Gncg_metric.Geometry.n g <> Gncg_metric.Metric.n metric ->
    invalid_arg "Host.make: geometry/metric size mismatch"
  | _ -> ());
  { metric; alpha; geometry }

let metric t = t.metric

let alpha t = t.alpha

let geometry t = t.geometry

let n t = Gncg_metric.Metric.n t.metric

let weight t u v = Gncg_metric.Metric.weight t.metric u v

let edge_price t u v = t.alpha *. weight t u v

let with_alpha alpha t = make ?geometry:t.geometry ~alpha t.metric

module Gncg_error = Gncg_util.Gncg_error

let validate ?tol ?require_metric ?require_connected t =
  let ( let* ) = Result.bind in
  let* () =
    if Float.is_finite t.alpha && t.alpha > 0.0 then Ok ()
    else
      Gncg_error.failf ~context:"Host.validate"
        (if Float.is_nan t.alpha || t.alpha = Float.infinity then Gncg_error.Not_finite
         else Gncg_error.Negative)
        "alpha %g must be positive and finite" t.alpha
  in
  Gncg_metric.Metric.validate ?tol ?require_metric ?require_connected t.metric
