module ISet = Set.Make (Int)
module Wgraph = Gncg_graph.Wgraph

type t = { size : int; sets : ISet.t array }

let empty size =
  if size < 0 then invalid_arg "Strategy.empty";
  { size; sets = Array.make size ISet.empty }

let n s = s.size

let check s u name =
  if u < 0 || u >= s.size then
    invalid_arg (Printf.sprintf "Strategy.%s: agent %d out of range" name u)

let strategy s u =
  check s u "strategy";
  s.sets.(u)

let validate_target s u v name =
  check s u name;
  check s v name;
  if u = v then invalid_arg (Printf.sprintf "Strategy.%s: agent %d buying towards itself" name u)

let with_strategy s u set =
  check s u "with_strategy";
  ISet.iter (fun v -> validate_target s u v "with_strategy") set;
  let sets = Array.copy s.sets in
  sets.(u) <- set;
  { s with sets }

let of_lists size assoc =
  List.fold_left
    (fun acc (u, targets) ->
      with_strategy acc u (ISet.of_list targets))
    (empty size) assoc

let buy s u v =
  validate_target s u v "buy";
  with_strategy s u (ISet.add v s.sets.(u))

let sell s u v =
  validate_target s u v "sell";
  with_strategy s u (ISet.remove v s.sets.(u))

let owns s u v =
  check s u "owns";
  ISet.mem v s.sets.(u)

let edge_in_network s u v = owns s u v || owns s v u

let owned_edges s =
  let acc = ref [] in
  Array.iteri (fun u set -> ISet.iter (fun v -> acc := (u, v) :: !acc) set) s.sets;
  List.rev !acc

let out_degree s u =
  check s u "out_degree";
  ISet.cardinal s.sets.(u)

let double_bought s =
  let acc = ref [] in
  Array.iteri
    (fun u set -> ISet.iter (fun v -> if u < v && owns s v u then acc := (u, v) :: !acc) set)
    s.sets;
  List.rev !acc

let canonical_key s =
  let buf = Buffer.create (16 * s.size) in
  Array.iter
    (fun set ->
      ISet.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ',') set;
      Buffer.add_char buf ';')
    s.sets;
  Buffer.contents buf

let equal a b = a.size = b.size && Array.for_all2 ISet.equal a.sets b.sets

let of_tree_leaf_owned g root =
  let size = Wgraph.n g in
  if root < 0 || root >= size then invalid_arg "Strategy.of_tree_leaf_owned: bad root";
  let hops = Gncg_graph.Bfs.hops g root in
  let s = ref (empty size) in
  Wgraph.iter_edges g (fun u v _ ->
      match (hops.(u), hops.(v)) with
      | -1, _ | _, -1 -> invalid_arg "Strategy.of_tree_leaf_owned: disconnected graph"
      | hu, hv -> if hu > hv then s := buy !s u v else s := buy !s v u);
  !s

let of_graph_arbitrary_owners g =
  let s = ref (empty (Wgraph.n g)) in
  Wgraph.iter_edges g (fun u v _ -> s := buy !s (min u v) (max u v));
  !s

let star size ~center =
  let s = ref (empty size) in
  for v = 0 to size - 1 do
    if v <> center then s := buy !s center v
  done;
  !s

let pp fmt s =
  Format.fprintf fmt "@[<v>profile n=%d" s.size;
  Array.iteri
    (fun u set ->
      if not (ISet.is_empty set) then
        Format.fprintf fmt "@,  %d buys {%s}" u
          (String.concat ", " (List.map string_of_int (ISet.elements set))))
    s.sets;
  Format.fprintf fmt "@]"
