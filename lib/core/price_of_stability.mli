(** Price of Stability: the cost ratio of the *best* equilibrium.

    The paper's conclusion names PoS analysis as the natural next step
    ("the next step should be to analyze the Price of Stability") and asks
    how to guide agents to cheap stable states.  This module provides the
    machinery: exhaustive equilibrium enumeration for tiny hosts, and two
    constructive upper bounds — the cheapest stable state reachable by
    dynamics from random starts, and from an orientation of the social
    optimum ("opt-seeded" coordination, the protocol suggested by Cor. 3
    where the optimum itself is stable on tree metrics). *)

type summary = {
  opt_cost : float;
  best_ne_cost : float;
  worst_ne_cost : float;
  ne_count : int;
}

val enumerate_ne : ?max_pairs:int -> Host.t -> Strategy.t list
(** All Nash equilibria whose profiles buy each edge at most once
    (every NE is of this form: a double purchase is always sold).
    Enumerates 3^pairs ownership states; refuses hosts with more than
    [max_pairs] (default 8) finite-weight pairs. *)

val exact : ?max_pairs:int -> Host.t -> summary option
(** Exhaustive PoS/PoA data on a tiny host; [None] when no NE exists in
    the enumerated space. *)

val cheapest_stable_via_dynamics :
  ?rule:Dynamics.rule ->
  ?starts:int ->
  ?max_steps:int ->
  Gncg_util.Prng.t ->
  Host.t ->
  (Strategy.t * float) option
(** The cheapest stable state reached by dynamics from [starts] random
    profiles — an upper bound on the cost of the best reachable
    equilibrium of the rule's kind. *)

val stable_from_optimum :
  ?rule:Dynamics.rule ->
  ?max_steps:int ->
  Host.t ->
  (Strategy.t * float) option
(** Orient the best known social optimum arbitrarily and let dynamics run:
    if agents start at the coordinated optimum, how much is lost before
    stability?  Returns the reached stable profile and its social cost. *)
