module ISet = Strategy.ISet
module Flt = Gncg_util.Flt

type parts = { edge : float; dist : float }

let agent_edge_cost host s u =
  let total =
    ISet.fold (fun v acc -> acc +. Host.weight host u v) (Strategy.strategy s u) 0.0
  in
  Host.alpha host *. total

let dist_sum dists u =
  (* Sum of distances to all other agents; own entry is 0 so it is harmless
     to include it. *)
  ignore u;
  Flt.sum dists

let agent_dist_cost ?graph host s u =
  let g = match graph with Some g -> g | None -> Network.graph host s in
  dist_sum (Gncg_graph.Dijkstra.sssp g u) u

let agent_parts ?graph host s u =
  { edge = agent_edge_cost host s u; dist = agent_dist_cost ?graph host s u }

let agent_cost ?graph host s u =
  let p = agent_parts ?graph host s u in
  p.edge +. p.dist

let agent_cost_with_dists host s u dists =
  agent_edge_cost host s u +. Flt.sum dists

let social_parts host s =
  let g = Network.graph host s in
  let n = Strategy.n s in
  let edge = ref 0.0 and dist = ref 0.0 in
  for u = 0 to n - 1 do
    edge := !edge +. agent_edge_cost host s u;
    dist := !dist +. agent_dist_cost ~graph:g host s u
  done;
  { edge = !edge; dist = !dist }

let social_cost ?(exec = Gncg_util.Exec.Seq) host s =
  match exec with
  | Gncg_util.Exec.Seq ->
    let p = social_parts host s in
    p.edge +. p.dist
  | _ ->
    let g = Network.graph host s in
    let n = Strategy.n s in
    let per_agent =
      Gncg_util.Exec.init ~exec n (fun u ->
          agent_edge_cost host s u +. agent_dist_cost ~graph:g host s u)
    in
    Flt.sum per_agent

let network_parts host g =
  let dist = ref 0.0 in
  for u = 0 to Gncg_graph.Wgraph.n g - 1 do
    dist := !dist +. Flt.sum (Gncg_graph.Dijkstra.sssp g u)
  done;
  { edge = Host.alpha host *. Gncg_graph.Wgraph.total_weight g; dist = !dist }

let network_social_cost ?(exec = Gncg_util.Exec.Seq) host g =
  match exec with
  | Gncg_util.Exec.Seq ->
    let p = network_parts host g in
    p.edge +. p.dist
  | _ ->
    let dist =
      Gncg_util.Exec.init ~exec (Gncg_graph.Wgraph.n g) (fun u ->
          Flt.sum (Gncg_graph.Dijkstra.sssp g u))
    in
    (Host.alpha host *. Gncg_graph.Wgraph.total_weight g) +. Flt.sum dist
