type t =
  [ `Reference
  | `Fast
  | `Incremental
  ]

let all = [ `Reference; `Fast; `Incremental ]

let to_string = function
  | `Reference -> "reference"
  | `Fast -> "fast"
  | `Incremental -> "incremental"

let of_string = function
  | "reference" -> Ok `Reference
  | "fast" -> Ok `Fast
  | "incremental" -> Ok `Incremental
  | s -> Error (Printf.sprintf "unknown evaluator %S (reference | fast | incremental)" s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
