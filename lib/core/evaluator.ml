type t =
  [ `Reference
  | `Fast
  | `Stateless
  | `Incremental
  ]

let all = [ `Reference; `Fast; `Stateless; `Incremental ]

let to_string = function
  | `Reference -> "reference"
  | `Fast -> "fast"
  | `Stateless -> "stateless"
  | `Incremental -> "incremental"

let of_string = function
  | "reference" -> Ok `Reference
  | "fast" -> Ok `Fast
  | "stateless" -> Ok `Stateless
  | "incremental" -> Ok `Incremental
  | s ->
    Error
      (Printf.sprintf "unknown evaluator %S (reference | fast | stateless | incremental)" s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
