(** Summary statistics of a built network, for reports and examples. *)

type t = {
  n : int;
  m : int;
  total_weight : float;
  diameter : float;
  avg_degree : float;
  max_degree : int;
  components : int;
  is_tree : bool;
  social_cost : float;
  stretch : float;  (** spanner stretch w.r.t. the host *)
}

val of_network : Host.t -> Gncg_graph.Wgraph.t -> t

val of_profile : Host.t -> Strategy.t -> t
(** Statistics of [G(s)]; [social_cost] accounts for double purchases. *)

val row : t -> string list
(** Cells for a [Tablefmt] row, matching {!header}. *)

val header : string list

val pp : Format.formatter -> t -> unit
