module Wgraph = Gncg_graph.Wgraph
module One_two = Gncg_metric.One_two

let require_one_two host =
  if not (One_two.is_one_two (Host.metric host)) then
    invalid_arg "Spanner_nash: host is not a 1-2 graph"

let is_three_half_spanner host g =
  require_one_two host;
  let n = Host.n host in
  let ok = ref true in
  for u = 0 to n - 1 do
    let d = Gncg_graph.Dijkstra.sssp g u in
    for v = u + 1 to n - 1 do
      (* 3/2 * 1 = 1.5 forces 1-edges to be present (integer distances);
         3/2 * 2 = 3 bounds the detour of absent 2-edges. *)
      let limit = if Host.weight host u v = 1.0 then 1.0 else 3.0 in
      if d.(v) > limit +. Gncg_util.Flt.eps then ok := false
    done
  done;
  !ok

let two_pairs host =
  let n = Host.n host in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Host.weight host u v = 2.0 then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let base_one_graph host =
  One_two.one_subgraph (Host.metric host)

let min_weight_spanner_exact ?(max_two_edges = 16) host =
  require_one_two host;
  let candidates = Array.of_list (two_pairs host) in
  let k = Array.length candidates in
  if k > max_two_edges then
    invalid_arg
      (Printf.sprintf "Spanner_nash.min_weight_spanner_exact: %d 2-edges exceed limit %d" k
         max_two_edges);
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    let cardinality =
      let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
      popcount mask
    in
    let better = match !best with None -> true | Some (c, _) -> cardinality < c in
    if better then begin
      let g = base_one_graph host in
      for i = 0 to k - 1 do
        if mask land (1 lsl i) <> 0 then begin
          let u, v = candidates.(i) in
          Wgraph.add_edge g u v 2.0
        end
      done;
      if is_three_half_spanner host g then best := Some (cardinality, g)
    end
  done;
  match !best with
  | Some (_, g) -> g
  | None ->
    (* The full 2-edge set is always a spanner, so the search space is
       never empty. *)
    Gncg_util.Gncg_error.unreachable ~context:"Spanner_nash.min_weight_spanner"
      "no spanner found although the full 2-edge set qualifies"

let min_weight_spanner_heuristic host =
  require_one_two host;
  (* Start from all edges, then drop 2-edges greedily while the 3/2-spanner
     property survives. *)
  let g = base_one_graph host in
  List.iter (fun (u, v) -> Wgraph.add_edge g u v 2.0) (two_pairs host);
  List.iter
    (fun (u, v) ->
      Wgraph.remove_edge g u v;
      if not (is_three_half_spanner host g) then Wgraph.add_edge g u v 2.0)
    (two_pairs host);
  g

let nash_ownership host g =
  require_one_two host;
  Ownership.find_ne host g
