(** Price-of-Anarchy machinery and the paper's closed-form bounds.

    The Price of Anarchy is the worst ratio of an equilibrium's social cost
    to the optimum's.  Experiments estimate it by exhibiting equilibria
    (constructions or dynamics fixed points) and comparing against the best
    known optimum; the closed forms below are the paper's bounds, used as
    reference curves in every figure reproduction. *)

val social_ratio : ne_cost:float -> opt_cost:float -> float
(** [ne/opt]; raises on non-positive optimum. *)

val metric_upper : float -> float
(** Thm. 1: PoA <= (α+2)/2 in the M-GNCG. *)

val general_upper : float -> float
(** Thm. 20: PoA <= ((α+2)/2)^2 for arbitrary weights. *)

val onetwo_mid_poa : float -> float
(** Thm. 7+8: PoA = 3/(α+2) for 1/2 <= α < 1 on 1-2 hosts. *)

val onetwo_alpha_one_poa : float
(** Thm. 8+1: PoA = 3/2 at α = 1. *)

val fourpoint_lower : float -> float
(** Thm. 18: (3α³+24α²+40α+24)/(α³+10α²+32α+24). *)

val cross_lower : alpha:float -> d:int -> float
(** Thm. 19: 1 + α/(2 + α/(2d−1)) in (R^d, ℓ1). *)

val ae_ge_factor : float -> float
(** Thm. 2: any AE is an (α+1)-approximate GE. *)

val ge_ne_factor : float
(** Thm. 3: any GE is a 3-approximate NE. *)

val ae_ne_factor : float -> float
(** Cor. 2: any AE is a 3(α+1)-approximate NE. *)

val ae_spanner_stretch : float -> float
(** Lemma 1: any AE is an (α+1)-spanner of the host. *)

val opt_spanner_stretch : float -> float
(** Lemma 2: the social optimum is an (α/2+1)-spanner. *)

val host_stretch : Host.t -> Gncg_graph.Wgraph.t -> float
(** Maximum stretch of a network w.r.t. the host's shortest-path metric
    (the spanner quantity of Lemmas 1 and 2). *)
