module Wgraph = Gncg_graph.Wgraph
module Incr_apsp = Gncg_graph.Incr_apsp
module Flt = Gncg_util.Flt

type t = { host : Host.t; mutable profile : Strategy.t; apsp : Incr_apsp.t }

let create host profile =
  if Strategy.n profile <> Host.n host then
    invalid_arg "Net_state.create: profile/host size mismatch";
  { host; profile; apsp = Incr_apsp.of_graph_no_copy (Network.graph host profile) }

let host t = t.host

let profile t = t.profile

let graph t = Incr_apsp.graph t.apsp

let dist t u v = Incr_apsp.distance t.apsp u v

let dist_row t u = Incr_apsp.row t.apsp u

let agent_dist_sum t u = Flt.sum (Incr_apsp.row t.apsp u)

let agent_cost t u = Cost.agent_cost_with_dists t.host t.profile u (Incr_apsp.row t.apsp u)

let social_cost t =
  let n = Strategy.n t.profile in
  let acc = ref 0.0 in
  for u = 0 to n - 1 do
    acc := !acc +. agent_cost t u
  done;
  !acc

(* Network-level edge deltas.  An edge (a,b) is in the network iff either
   side owns it; finite host weight is required, matching Network.graph. *)
let net_add t a b =
  let w = Host.weight t.host a b in
  if Float.is_finite w && not (Wgraph.has_edge (graph t) a b) then
    Incr_apsp.add_edge t.apsp a b w

let net_remove t a b = Incr_apsp.remove_edge t.apsp a b

let apply_move t ~agent mv =
  let s = t.profile in
  let s' = Move.apply s ~agent mv in
  (match mv with
  | Move.Add v -> if not (Strategy.edge_in_network s agent v) then net_add t agent v
  | Move.Delete v ->
    (* The built edge persists iff the other side also bought it. *)
    if not (Strategy.owns s v agent) then net_remove t agent v
  | Move.Swap (old_t, new_t) ->
    if not (Strategy.owns s old_t agent) then net_remove t agent old_t;
    if not (Strategy.edge_in_network s agent new_t) then net_add t agent new_t);
  t.profile <- s';
  s'

let set_profile t s' =
  if Strategy.n s' <> Strategy.n t.profile then
    invalid_arg "Net_state.set_profile: size mismatch";
  let in_new u v = Strategy.edge_in_network s' u v in
  (* Removals first (against the edge list of the tracked graph), then
     additions from the new profile's ownership lists. *)
  let stale = ref [] in
  Wgraph.iter_edges (graph t) (fun u v _ -> if not (in_new u v) then stale := (u, v) :: !stale);
  List.iter (fun (u, v) -> net_remove t u v) !stale;
  List.iter
    (fun (u, v) -> if not (Wgraph.has_edge (graph t) u v) then net_add t u v)
    (Strategy.owned_edges s');
  t.profile <- s'

let sssp_edited t ?remove ?add source = Incr_apsp.sssp_edited t.apsp ?remove ?add source

let copy t = { host = t.host; profile = t.profile; apsp = Incr_apsp.copy t.apsp }

let check_consistent t =
  let reference = Gncg_graph.Dijkstra.apsp (Network.graph t.host t.profile) in
  let n = Strategy.n t.profile in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if not (Flt.approx_eq (dist t u v) reference.(u).(v)) then ok := false
    done
  done;
  !ok
