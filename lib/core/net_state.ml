module Wgraph = Gncg_graph.Wgraph
module Distances = Gncg_graph.Distances
module Changed_rows = Gncg_graph.Changed_rows
module Geometry = Gncg_metric.Geometry
module Flt = Gncg_util.Flt
module Metric = Gncg_obs.Metric

(* Layer-2 probes: the cost-cache hit rate, the size of the change
   reports flowing to the trackers above, and which distance backends
   actually get selected. *)
let c_cache_hits = Metric.Counter.make "net_state.cost_cache_hits"
let c_cache_misses = Metric.Counter.make "net_state.cost_cache_misses"
let c_moves_applied = Metric.Counter.make "net_state.moves_applied"
let c_backend_fallbacks = Metric.Counter.make "net_state.backend_fallbacks"
let h_report_rows = Metric.Histogram.make "net_state.change_report_rows"

type changes = {
  rows : Changed_rows.t;
  pairs : (int * int) list;
  full : bool;
}

type t = {
  host : Host.t;
  mutable profile : Strategy.t;
  dist : Distances.t;
  net : Wgraph.t;               (* the built network G(s) *)
  costs : float array;          (* per-agent cost cache *)
  cost_valid : Bytes.t;         (* 1 = costs.(u) is current *)
  mutable pending_rows : Changed_rows.t;  (* rows changed since last drain *)
  mutable pending_pairs : (int * int) list; (* strategy pairs modified since last drain *)
  mutable pending_full : bool;  (* set_profile happened: everything dirty *)
}

(* --- backend selection -------------------------------------------------- *)

(* Resolve a {!Distances.spec} against the host's geometry and the
   network's shape.  [require_mutable] is set by callers that will push
   add/remove updates through the state (dynamics): the implicit oracles
   are read-only, so such callers degrade to dense with an obs-counted
   fallback rather than raising mid-run. *)
let resolve_backend spec ~require_mutable host g =
  let n = Wgraph.n g in
  let complete = Wgraph.m g = n * (n - 1) / 2 in
  let dense () = Distances.dense g in
  let fallback () =
    Metric.Counter.incr c_backend_fallbacks;
    dense ()
  in
  let rd_of_points points norm =
    Distances.rd (Geometry.pnorm norm) points
  in
  match (spec : Distances.spec) with
  | Dense -> dense ()
  | Mmap path -> Distances.mmap ?path g
  | Tree -> if require_mutable then fallback () else Distances.tree g
  | Rd ->
    if require_mutable then fallback ()
    else (
      match Host.geometry host with
      | Some (Geometry.Points { points; norm }) when complete -> rd_of_points points norm
      | Some (Geometry.Points _) ->
        invalid_arg
          "Net_state: the rd backend is exact only on complete networks \
           (the host metric itself)"
      | _ ->
        invalid_arg "Net_state: the rd backend needs point-set geometry on the host")
  | Auto ->
    if require_mutable then dense ()
    else (
      match Host.geometry host with
      | Some (Geometry.Tree tr)
        when Wgraph.n g = Gncg_metric.Tree_metric.size tr
             && Wgraph.equal g (Gncg_metric.Tree_metric.graph tr) ->
        Distances.tree g
      | Some (Geometry.Points { points; norm }) when complete -> rd_of_points points norm
      | _ -> dense ())

let create ?backend ?(require_mutable = false) host profile =
  if Strategy.n profile <> Host.n host then
    invalid_arg "Net_state.create: profile/host size mismatch";
  let n = Host.n host in
  let g = Network.graph host profile in
  let spec = match backend with Some s -> s | None -> Distances.default_spec () in
  let dist = resolve_backend spec ~require_mutable host g in
  (* Graph-backed backends adopt [g]; the rd oracle has no graph, so the
     state keeps the network it built (read-only from then on). *)
  let net = match Distances.graph dist with Some g' -> g' | None -> g in
  {
    host;
    profile;
    dist;
    net;
    costs = Array.make n 0.0;
    cost_valid = Bytes.make n '\000';
    pending_rows = Changed_rows.create n;
    pending_pairs = [];
    pending_full = false;
  }

let host t = t.host

let profile t = t.profile

let graph t = t.net

let distances t = t.dist

let backend_id t = Distances.backend_id t.dist

let dist t u v = Distances.distance t.dist u v

let dist_row t u = Distances.row t.dist u

let dist_row_into t u dst = Distances.row_into t.dist u dst

let agent_dist_sum t u = Distances.dist_sum t.dist u

let dist_sum_with_edge t u v w = Distances.dist_sum_with_edge t.dist u v w

let min_sum_against t r v w = Distances.min_sum_against t.dist r v w

let nearest_target t ?accept u = Distances.nearest t.dist ?accept u

let agent_cost t u =
  if Bytes.unsafe_get t.cost_valid u = '\001' then begin
    Metric.Counter.incr c_cache_hits;
    Array.unsafe_get t.costs u
  end
  else begin
    Metric.Counter.incr c_cache_misses;
    let c = Cost.agent_edge_cost t.host t.profile u +. Distances.dist_sum t.dist u in
    Array.unsafe_set t.costs u c;
    Bytes.unsafe_set t.cost_valid u '\001';
    c
  end

let social_cost t =
  let n = Strategy.n t.profile in
  let acc = ref 0.0 in
  for u = 0 to n - 1 do
    acc := !acc +. agent_cost t u
  done;
  !acc

(* --- change bookkeeping --- *)

let invalidate_rows t changed =
  Changed_rows.iter (fun r -> Bytes.unsafe_set t.cost_valid r '\000') changed;
  Changed_rows.union_into ~dst:t.pending_rows changed

let record_pair t a b =
  (* The pair's strategy entry changed: [a]'s purchase cost is stale, and
     both endpoints' ownership view of the edge (edge_survives_sale etc.)
     may have flipped even when the network did not. *)
  Bytes.unsafe_set t.cost_valid a '\000';
  t.pending_pairs <- (a, b) :: t.pending_pairs

let drain_changes t =
  let rows = t.pending_rows and pairs = t.pending_pairs and full = t.pending_full in
  Metric.Histogram.observe h_report_rows (float_of_int (Changed_rows.cardinal rows));
  t.pending_rows <- Changed_rows.create (Host.n t.host);
  t.pending_pairs <- [];
  t.pending_full <- false;
  { rows; pairs; full }

let has_pending_changes t =
  t.pending_full
  || t.pending_pairs <> []
  || not (Changed_rows.is_empty t.pending_rows)

(* Network-level edge deltas.  An edge (a,b) is in the network iff either
   side owns it; finite host weight is required, matching Network.graph.
   On a read-only (oracle) backend these raise {!Distances.Unsupported} —
   mutating callers must create the state with [~require_mutable:true]. *)
let net_add t a b =
  let w = Host.weight t.host a b in
  if Float.is_finite w && not (Wgraph.has_edge t.net a b) then
    invalidate_rows t (Distances.add_edge t.dist a b w)

let net_remove t a b = invalidate_rows t (Distances.remove_edge t.dist a b)

let apply_move t ~agent mv =
  Metric.Counter.incr c_moves_applied;
  let s = t.profile in
  let s' = Move.apply s ~agent mv in
  (match mv with
  | Move.Add v ->
    record_pair t agent v;
    if not (Strategy.edge_in_network s agent v) then net_add t agent v
  | Move.Delete v ->
    record_pair t agent v;
    (* The built edge persists iff the other side also bought it. *)
    if not (Strategy.owns s v agent) then net_remove t agent v
  | Move.Swap (old_t, new_t) ->
    record_pair t agent old_t;
    record_pair t agent new_t;
    if not (Strategy.owns s old_t agent) then net_remove t agent old_t;
    if not (Strategy.edge_in_network s agent new_t) then net_add t agent new_t);
  t.profile <- s';
  s'

let set_profile t s' =
  if Strategy.n s' <> Strategy.n t.profile then
    invalid_arg "Net_state.set_profile: size mismatch";
  let in_new u v = Strategy.edge_in_network s' u v in
  (* Removals first (against the edge list of the tracked graph), then
     additions from the new profile's ownership lists. *)
  let stale = ref [] in
  Wgraph.iter_edges t.net (fun u v _ -> if not (in_new u v) then stale := (u, v) :: !stale);
  t.profile <- s';
  List.iter (fun (u, v) -> net_remove t u v) !stale;
  List.iter
    (fun (u, v) -> if not (Wgraph.has_edge t.net u v) then net_add t u v)
    (Strategy.owned_edges s');
  (* Ownership may have moved arbitrarily even where the network did not:
     every cached verdict upstream is suspect. *)
  Bytes.fill t.cost_valid 0 (Bytes.length t.cost_valid) '\000';
  t.pending_full <- true

(* --- drift sentinel passthrough --- *)

let set_selfcheck t n = Distances.set_selfcheck t.dist n

let selfcheck_cadence t = Distances.selfcheck_cadence t.dist

let selfcheck_now t =
  let clean = Distances.selfcheck_now t.dist in
  if not clean then begin
    (* The backend repaired itself: every cached cost and every row
       upstream is suspect. *)
    Bytes.fill t.cost_valid 0 (Bytes.length t.cost_valid) '\000';
    t.pending_full <- true
  end;
  clean

let inject_distance_error t u v delta = Distances.inject_cell_error t.dist u v delta

let sssp_edited t ?remove ?add source = Distances.sssp_edited t.dist ?remove ?add source

let sssp_edited_into t ?remove ?add source dst =
  Distances.sssp_edited_into t.dist ?remove ?add source dst

let sssp_edited_sum t ?remove ?add source =
  Distances.sssp_edited_sum t.dist ?remove ?add source

let copy t =
  let dist = Distances.copy t.dist in
  let net = match Distances.graph dist with Some g -> g | None -> Wgraph.copy t.net in
  {
    host = t.host;
    profile = t.profile;
    dist;
    net;
    costs = Array.copy t.costs;
    cost_valid = Bytes.copy t.cost_valid;
    pending_rows = Changed_rows.copy t.pending_rows;
    pending_pairs = t.pending_pairs;
    pending_full = t.pending_full;
  }

let check_consistent t =
  let reference = Gncg_graph.Dijkstra.apsp (Network.graph t.host t.profile) in
  let n = Strategy.n t.profile in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if not (Flt.approx_eq (dist t u v) reference.(u).(v)) then ok := false
    done
  done;
  (* The cost cache must agree with a from-scratch evaluation wherever it
     claims validity. *)
  for u = 0 to n - 1 do
    if Bytes.get t.cost_valid u = '\001' then begin
      let fresh = Cost.agent_edge_cost t.host t.profile u +. Distances.dist_sum t.dist u in
      if not (Flt.approx_eq t.costs.(u) fresh) then ok := false
    end
  done;
  !ok
