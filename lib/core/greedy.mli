(** Greedy (single-edge) responses: the move set underlying Greedy
    Equilibria and Add-only Equilibria.

    Every function accepts an optional pre-built network [?graph] of the
    current profile: scans that evaluate many candidates (equilibrium
    checks, dynamics steps) build [Network.graph host s] once and thread
    it through, halving the per-scan Dijkstra count. *)

val move_gain :
  ?graph:Gncg_graph.Wgraph.t -> Host.t -> Strategy.t -> agent:int -> Move.t -> float
(** Cost decrease of a move ([> 0] means improving). *)

val best_move :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  ?graph:Gncg_graph.Wgraph.t ->
  Host.t ->
  Strategy.t ->
  agent:int ->
  (Move.t * float) option
(** The single-edge move with the largest strict improvement for the agent,
    if any (tolerance-guarded).  [kinds] restricts the move set: use
    [[`Add]] for add-only dynamics. *)

val best_single_move_cost :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  ?graph:Gncg_graph.Wgraph.t ->
  Host.t ->
  Strategy.t ->
  agent:int ->
  float
(** The lowest cost the agent can reach with at most one single-edge move
    (her current cost when nothing improves). *)
