(** Greedy (single-edge) responses: the move set underlying Greedy
    Equilibria and Add-only Equilibria. *)

val move_gain : Host.t -> Strategy.t -> agent:int -> Move.t -> float
(** Cost decrease of a move ([> 0] means improving). *)

val best_move :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  Host.t ->
  Strategy.t ->
  agent:int ->
  (Move.t * float) option
(** The single-edge move with the largest strict improvement for the agent,
    if any (tolerance-guarded).  [kinds] restricts the move set: use
    [[`Add]] for add-only dynamics. *)

val best_single_move_cost :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  Host.t ->
  Strategy.t ->
  agent:int ->
  float
(** The lowest cost the agent can reach with at most one single-edge move
    (her current cost when nothing improves). *)
