(** Mutable game state with incrementally maintained distances.

    Response dynamics mutate the network one edge at a time; rebuilding
    [Network.graph] and re-running Dijkstra after every step is the
    engine's historic bottleneck.  A [Net_state.t] pairs the current
    strategy profile with an {!Gncg_graph.Incr_apsp.t} tracking its
    network, so that

    - applying a move costs O(n²) (insertion) or one Dijkstra pass per
      affected source (deletion) instead of a full rebuild + APSP, and
    - every agent's cost is an O(n) fold over a live distance row.

    The structure is single-owner and not thread-safe; the read-only
    accessors may be shared across domains between updates. *)

type t

val create : Host.t -> Strategy.t -> t
(** Builds the network of the profile and its full distance matrix:
    O(n · (m + n log n)) once, amortized over the whole run. *)

val host : t -> Host.t

val profile : t -> Strategy.t
(** The current profile; updated by {!apply_move} / {!set_profile}. *)

val graph : t -> Gncg_graph.Wgraph.t
(** The tracked network — read-only for callers. *)

val dist : t -> int -> int -> float

val dist_row : t -> int -> float array
(** Live row of the maintained matrix: read-only, invalidated by the next
    update. *)

val agent_dist_sum : t -> int -> float

val agent_cost : t -> int -> float
(** O(n): edge price plus the sum of the agent's live distance row. *)

val social_cost : t -> float

val apply_move : t -> agent:int -> Move.t -> Strategy.t
(** Applies the move to the profile ({!Move.apply} semantics, including
    its validation) and updates the network and distances incrementally.
    An edge bought from both sides stays in the network when only one
    side sells it.  Returns the new profile. *)

val set_profile : t -> Strategy.t -> unit
(** Re-points the state at an arbitrary profile of the same size by
    diffing the two networks edge by edge — incremental when the profiles
    are close, never worse than a rebuild by more than the diff size.
    Used when a dynamics rule jumps to a multi-edge deviation. *)

val sssp_edited :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array
(** What-if single-source distances on a hypothetical one-edge edit; see
    {!Gncg_graph.Incr_apsp.sssp_edited}. *)

val copy : t -> t

val check_consistent : t -> bool
(** Compares the maintained matrix against a from-scratch APSP of a
    freshly built network (within [Flt.eps]) — test oracle. *)
