(** Mutable game state with incrementally maintained distances.

    Response dynamics mutate the network one edge at a time; rebuilding
    [Network.graph] and re-running Dijkstra after every step is the
    engine's historic bottleneck.  A [Net_state.t] pairs the current
    strategy profile with a {!Gncg_graph.Distances.t} backend tracking
    its network — the dense incremental matrix by default, or (when the
    host carries a {!Gncg_metric.Geometry.t} and the backend allows) an
    implicit oracle that never materializes O(n²) floats — so that

    - applying a move costs O(n²) (insertion) or one Dijkstra pass per
      affected source (deletion) instead of a full rebuild + APSP,
    - every agent's cost is served from a per-agent cache invalidated
      only when that agent's distance row or own strategy changed, and
    - every mutation accumulates a change report (changed distance rows
      plus modified strategy pairs) that dynamics and equilibrium
      scanners drain to skip provably unaffected agents.

    The structure is single-owner and not thread-safe; the read-only
    accessors may be shared across domains between updates. *)

type t

(** What changed since the previous {!drain_changes}:
    - [rows] — source rows of the distance matrix whose entries changed
      (sound: possibly over-approximate, never missing a changed row);
    - [pairs] — strategy pairs [(agent, target)] whose ownership entry
      was modified by {!apply_move}, {e including} moves that left the
      network itself untouched (co-owned buys/sells change purchase
      costs and edge-survival behaviour at both endpoints);
    - [full] — {!set_profile} re-pointed the state at an arbitrary
      profile; consumers must treat every agent as dirty. *)
type changes = {
  rows : Gncg_graph.Changed_rows.t;
  pairs : (int * int) list;
  full : bool;
}

val create :
  ?backend:Gncg_graph.Distances.spec -> ?require_mutable:bool -> Host.t -> Strategy.t -> t
(** Builds the network of the profile and a distance backend over it.

    [?backend] defaults to {!Gncg_graph.Distances.default_spec} (the
    CLI's [--dist-backend], [Auto] out of the box).  Resolution:
    [Dense] / [Mmap] wrap the network in the corresponding incremental
    engine; [Tree] requires the network to be a connected tree; [Rd]
    requires point-set geometry on the host and a complete network;
    [Auto] picks the tree oracle when the network {e is} the host's
    tree, the R^d oracle when the network is complete over point-set
    geometry, and dense otherwise.

    [~require_mutable:true] (dynamics and anything else that will push
    moves through the state) degrades read-only oracle selections to
    dense — counted on [net_state.backend_fallbacks] — instead of
    raising {!Gncg_graph.Distances.Unsupported} mid-run.

    Dense cost: O(n · (m + n log n)) once, amortized over the run; the
    oracles cost O(n log n) / O(n·d) and never allocate a matrix. *)

val distances : t -> Gncg_graph.Distances.t
(** The live distance backend (benches, tests, sentinel tooling). *)

val backend_id : t -> string
(** ["dense" | "tree" | "rd" | "mmap"]. *)

val host : t -> Host.t

val profile : t -> Strategy.t
(** The current profile; updated by {!apply_move} / {!set_profile}. *)

val graph : t -> Gncg_graph.Wgraph.t
(** The tracked network — read-only for callers. *)

val dist : t -> int -> int -> float

val dist_row : t -> int -> float array
(** Fresh copy of the agent's distance row (the backing store is flat
    and unboxed). *)

val dist_row_into : t -> int -> float array -> unit
(** Allocation-free {!dist_row} into a caller buffer of length >= n. *)

val agent_dist_sum : t -> int -> float
(** Streaming sum of the agent's distance row — no row materialized. *)

val dist_sum_with_edge : t -> int -> int -> float -> float
(** [Σ_x min(d(u,x), w + d(v,x))] — see
    {!Gncg_graph.Incr_apsp.dist_sum_with_edge}. *)

val min_sum_against : t -> float array -> int -> float -> float
(** See {!Gncg_graph.Incr_apsp.min_sum_against}. *)

val nearest_target : t -> ?accept:(int -> bool) -> int -> (int * float) option
(** Nearest other vertex passing [accept], when the backend has a
    geometric index (the R^d oracle's k-d tree); [None] otherwise.  The
    shortcut {!Fast_response} uses to rank addable targets without an
    O(n) scan. *)

val agent_cost : t -> int -> float
(** Edge price plus the agent's distance sum, served from the per-agent
    cache (recomputed in O(n) only after the agent's row or strategy
    changed). *)

val social_cost : t -> float

val apply_move : t -> agent:int -> Move.t -> Strategy.t
(** Applies the move to the profile ({!Move.apply} semantics, including
    its validation) and updates the network and distances incrementally.
    An edge bought from both sides stays in the network when only one
    side sells it.  Returns the new profile. *)

val set_profile : t -> Strategy.t -> unit
(** Re-points the state at an arbitrary profile of the same size by
    diffing the two networks edge by edge — incremental when the profiles
    are close, never worse than a rebuild by more than the diff size.
    Used when a dynamics rule jumps to a multi-edge deviation.  Marks the
    pending change report as [full]. *)

val drain_changes : t -> changes
(** Returns everything accumulated since the previous drain and resets
    the accumulator.  A fresh state drains empty. *)

val has_pending_changes : t -> bool

val sssp_edited :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array
(** What-if single-source distances on a hypothetical one-edge edit; see
    {!Gncg_graph.Incr_apsp.sssp_edited}. *)

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit
(** Allocation-free {!sssp_edited} into a caller buffer. *)

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float
(** [Flt.sum] of the what-if row through the engine's scratch buffer —
    zero allocation; the form the response engines use. *)

val copy : t -> t

(** {1 Drift sentinel}

    Passthrough to {!Gncg_graph.Incr_apsp}'s configurable-cadence
    cross-check: every [N] applied network mutations the engine verifies
    the maintained matrix (symmetry sweep + one fresh-Dijkstra row) and
    self-heals by rebuilding on a mismatch, reporting every row changed
    so the caches above invalidate. *)

val set_selfcheck : t -> int -> unit
(** Probe every [n] network mutations; [0] disables (the default). *)

val selfcheck_cadence : t -> int

val selfcheck_now : t -> bool
(** One immediate probe; on repair also drops the whole cost cache and
    marks the pending change report [full].  [true] = clean. *)

val inject_distance_error : t -> int -> int -> float -> unit
(** Perturbs one maintained distance cell without touching the graph —
    fault-injection hook for sentinel tests and chaos runs. *)

val check_consistent : t -> bool
(** Compares the maintained matrix against a from-scratch APSP of a
    freshly built network (within [Flt.eps]), and every valid cache entry
    against a fresh evaluation — test oracle. *)
