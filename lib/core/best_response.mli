(** Best-response computation.

    Computing a best response is NP-hard in every variant of the game
    (Cor. 1, Thms. 13 and 16), so exact computation is exponential.  Two
    exact engines are provided — direct strategy enumeration, and a
    branch-and-bound over the facility-location correspondence of Thm. 3 —
    plus the polynomial local-search response whose fixed points are the
    3-approximate responses of Thm. 3. *)

val umfl_instance :
  Host.t -> Strategy.t -> int -> Facility_location.instance * (bool array -> Strategy.ISet.t)
(** [umfl_instance host s u] is the facility-location instance encoding
    agent [u]'s strategy choice given everyone else's strategies, together
    with the decoder from open-facility sets to strategies.  Facilities
    already buying an edge to [u] are forced open with cost 0 (they are
    connected whatever [u] does). *)

val exact : Host.t -> Strategy.t -> int -> Strategy.ISet.t * float
(** Optimal strategy for the agent and its cost, by branch-and-bound. *)

val exact_enum : Host.t -> Strategy.t -> int -> Strategy.ISet.t * float
(** Independent oracle: enumerate all 2^(n-1) strategies, evaluating each
    on a freshly built network.  Only for small [n]. *)

val local : Host.t -> Strategy.t -> int -> Strategy.ISet.t * float
(** Facility-location local search: a polynomial-time response that cannot
    be improved by opening/closing/swapping a single facility. *)

val best_cost : Host.t -> Strategy.t -> int -> float
(** Cost of the exact best response (branch-and-bound). *)
