module ISet = Strategy.ISet
module Wgraph = Gncg_graph.Wgraph

(* Vertex <-> facility index mapping: facilities are all vertices except
   [u], in increasing order. *)
let vertex_of_index u k = if k < u then k else k + 1

let index_of_vertex u v = if v < u then v else v - 1

let umfl_instance host s u =
  let n = Strategy.n s in
  let alpha = Host.alpha host in
  (* G' = G(s) without the edges owned by u. *)
  let s' = Strategy.with_strategy s u ISet.empty in
  let g' = Network.graph host s' in
  let nf = n - 1 in
  let open_cost = Array.make nf Float.infinity in
  let forced = Array.make nf false in
  let service = Array.make_matrix nf nf Float.infinity in
  for k = 0 to nf - 1 do
    let f = vertex_of_index u k in
    let w_uf = Host.weight host u f in
    if Strategy.owns s f u && Float.is_finite w_uf then begin
      open_cost.(k) <- 0.0;
      forced.(k) <- true
    end
    else open_cost.(k) <- alpha *. w_uf;
    if Float.is_finite w_uf then begin
      let d = Gncg_graph.Dijkstra.sssp g' f in
      for c = 0 to nf - 1 do
        service.(k).(c) <- w_uf +. d.(vertex_of_index u c)
      done
    end
  done;
  let inst = Facility_location.make ~forced_open:forced ~open_cost ~service () in
  let decode open_set =
    let acc = ref ISet.empty in
    Array.iteri
      (fun k is_open ->
        (* Forced facilities are the other side's purchases, not u's. *)
        if is_open && not forced.(k) then acc := ISet.add (vertex_of_index u k) !acc)
      open_set;
    !acc
  in
  (inst, decode)

let exact host s u =
  let inst, decode = umfl_instance host s u in
  let open_set, cost = Facility_location.solve_exact inst in
  (decode open_set, cost)

let local host s u =
  let inst, decode = umfl_instance host s u in
  let open_set, cost = Facility_location.local_search inst in
  (decode open_set, cost)

let exact_enum host s u =
  let n = Strategy.n s in
  let candidates =
    List.filter
      (fun v -> v <> u && Float.is_finite (Host.weight host u v))
      (List.init n (fun v -> v))
  in
  let k = List.length candidates in
  if k > 25 then invalid_arg "Best_response.exact_enum: too many candidates";
  let cand = Array.of_list candidates in
  let best_cost = ref Float.infinity in
  let best_set = ref ISet.empty in
  for mask = 0 to (1 lsl k) - 1 do
    let set = ref ISet.empty in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then set := ISet.add cand.(i) !set
    done;
    let s' = Strategy.with_strategy s u !set in
    let c = Cost.agent_cost host s' u in
    if c < !best_cost -. Gncg_util.Flt.eps then begin
      best_cost := c;
      best_set := !set
    end
  done;
  (!best_set, !best_cost)

let best_cost host s u = snd (exact host s u)

let _ = index_of_vertex
