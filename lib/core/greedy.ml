module Flt = Gncg_util.Flt

(* Both costs can be infinite (disconnected before and after) and near-ties
   are floating-point noise: the tolerant comparison classifies both as
   "no gain", consistently with the rest of the engine. *)
let gain_given ~before host s ~agent mv =
  let after = Cost.agent_cost host (Move.apply s ~agent mv) agent in
  if Flt.approx_eq before after then 0.0 else before -. after

let move_gain ?graph host s ~agent mv =
  gain_given ~before:(Cost.agent_cost ?graph host s agent) host s ~agent mv

let fold_moves ?kinds ?graph host s ~agent f init =
  (* The incumbent cost is shared across the whole candidate list: one
     Dijkstra pass instead of one per move. *)
  let before = Cost.agent_cost ?graph host s agent in
  List.fold_left
    (fun acc mv -> f acc mv (gain_given ~before host s ~agent mv))
    init
    (Move.candidates ?kinds host s ~agent)

let best_move ?kinds ?graph host s ~agent =
  let pick acc mv gain =
    match acc with
    | Some (_, g) when g >= gain -> acc
    | _ when gain > Flt.eps -> Some (mv, gain)
    | _ -> acc
  in
  fold_moves ?kinds ?graph host s ~agent pick None

let best_single_move_cost ?kinds ?graph host s ~agent =
  let graph = match graph with Some g -> g | None -> Network.graph host s in
  let current = Cost.agent_cost ~graph host s agent in
  match best_move ?kinds ~graph host s ~agent with
  | None -> current
  | Some (_, gain) -> current -. gain
