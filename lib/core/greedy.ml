module Flt = Gncg_util.Flt

let move_gain host s ~agent mv =
  let before = Cost.agent_cost host s agent in
  let after = Cost.agent_cost host (Move.apply s ~agent mv) agent in
  (* Both costs can be infinite (disconnected before and after); treat the
     gain as 0 rather than NaN. *)
  if before = after then 0.0 else before -. after

let fold_moves ?kinds host s ~agent f init =
  List.fold_left
    (fun acc mv -> f acc mv (move_gain host s ~agent mv))
    init
    (Move.candidates ?kinds host s ~agent)

let best_move ?kinds host s ~agent =
  let pick acc mv gain =
    match acc with
    | Some (_, g) when g >= gain -> acc
    | _ when gain > Flt.eps -> Some (mv, gain)
    | _ -> acc
  in
  fold_moves ?kinds host s ~agent pick None

let best_single_move_cost ?kinds host s ~agent =
  let current = Cost.agent_cost host s agent in
  match best_move ?kinds host s ~agent with
  | None -> current
  | Some (_, gain) -> current -. gain
