(** The engine's best-move evaluators — one shared type for
    [Dynamics.run], [Dynamics.deviation], the equilibrium trackers and
    the runs subsystem (each used to declare its own copy of this
    polymorphic variant).

    - [`Reference]: rebuild the network and run fresh Dijkstras per
      candidate move — the specification the others are tested against;
    - [`Fast]: batched gain evaluation with shared SSSP passes;
    - [`Stateless]: explicit alias of [`Fast] for call sites with no
      threaded state ({!Dynamics.deviation}): passing [`Incremental]
      there degrades to this evaluator and is counted on
      [dynamics.evaluator_degradations] — pass [`Stateless] to say so
      on purpose;
    - [`Incremental]: the live distance-matrix engine ({!Net_state} +
      {!Fast_response}) — the hot path. *)

type t =
  [ `Reference
  | `Fast
  | `Stateless
  | `Incremental
  ]

val all : t list

val to_string : t -> string
(** ["reference"] | ["fast"] | ["stateless"] | ["incremental"] — the
    spelling used by the [--evaluator] CLI flag and the journal
    manifests. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
