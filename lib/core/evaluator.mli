(** The engine's three best-move evaluators — one shared type for
    [Dynamics.run], [Dynamics.deviation], the equilibrium trackers and
    the runs subsystem (each used to declare its own copy of this
    polymorphic variant).

    - [`Reference]: rebuild the network and run fresh Dijkstras per
      candidate move — the specification the others are tested against;
    - [`Fast]: batched gain evaluation with shared SSSP passes;
    - [`Incremental]: the live distance-matrix engine ({!Net_state} +
      {!Fast_response}) — the hot path. *)

type t =
  [ `Reference
  | `Fast
  | `Incremental
  ]

val all : t list

val to_string : t -> string
(** ["reference"] | ["fast"] | ["incremental"] — the spelling used by
    the [--evaluator] CLI flag and the journal manifests. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
