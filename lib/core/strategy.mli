(** Strategy profiles.

    Agent [u]'s strategy is the set [S_u] of agents towards which [u] buys
    an edge.  A profile is the vector of all strategies; it determines the
    built network [G(s)].  Both endpoints may buy the same edge — the graph
    then contains it once but both pay, exactly as in the paper. *)

module ISet : Set.S with type elt = int

type t
(** Immutable strategy profile. *)

val empty : int -> t
(** No agent buys anything. *)

val n : t -> int

val strategy : t -> int -> ISet.t
(** [S_u]. *)

val of_lists : int -> (int * int list) list -> t
(** [of_lists n assoc] builds a profile from per-agent target lists; agents
    not listed buy nothing.  Raises on self-purchases and out-of-range
    targets. *)

val with_strategy : t -> int -> ISet.t -> t
(** Functional update of one agent's strategy. *)

val buy : t -> int -> int -> t
(** [buy s u v] adds [v] to [S_u]. *)

val sell : t -> int -> int -> t
(** Removes [v] from [S_u]. *)

val owns : t -> int -> int -> bool
(** Whether [v ∈ S_u]. *)

val edge_in_network : t -> int -> int -> bool
(** Whether the edge exists in [G(s)]: bought in either direction. *)

val owned_edges : t -> (int * int) list
(** All (owner, target) purchases. *)

val out_degree : t -> int -> int

val double_bought : t -> (int * int) list
(** Pairs bought by both endpoints, with [u < v] — never present in
    equilibrium (footnote 1 of the paper). *)

val canonical_key : t -> string
(** Injective serialization; used for cycle detection in dynamics. *)

val equal : t -> t -> bool

val of_tree_leaf_owned : Gncg_graph.Wgraph.t -> int -> t
(** Orientation of a tree/forest: every edge is bought by the endpoint
    farther from the given root (the root owns nothing). *)

val of_graph_arbitrary_owners : Gncg_graph.Wgraph.t -> t
(** Each edge bought by its smaller endpoint. *)

val star : int -> center:int -> t
(** The center buys an edge to every other agent. *)

val pp : Format.formatter -> t -> unit
