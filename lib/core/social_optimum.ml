module Wgraph = Gncg_graph.Wgraph
module Metric = Gncg_metric.Metric
module Flt = Gncg_util.Flt

let finite_pairs host =
  let n = Host.n host in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Float.is_finite (Host.weight host u v) then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let exact_small ?(max_edges = 16) host =
  let pairs = Array.of_list (finite_pairs host) in
  let k = Array.length pairs in
  if k > max_edges then
    invalid_arg
      (Printf.sprintf "Social_optimum.exact_small: %d candidate edges exceed limit %d" k
         max_edges);
  let n = Host.n host in
  let best_cost = ref Float.infinity in
  let best_graph = ref (Wgraph.create n) in
  for mask = 0 to (1 lsl k) - 1 do
    let g = Wgraph.create n in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then begin
        let u, v = pairs.(i) in
        Wgraph.add_edge g u v (Host.weight host u v)
      end
    done;
    let c = Cost.network_social_cost host g in
    if c < !best_cost -. Flt.eps then begin
      best_cost := c;
      best_graph := g
    end
  done;
  (!best_graph, !best_cost)

let algorithm_one host =
  let m = Host.metric host in
  if not (Gncg_metric.One_two.is_one_two m) then
    invalid_arg "Social_optimum.algorithm_one: host is not a 1-2 graph";
  let n = Host.n host in
  (* The fixed point of Algorithm 1 keeps every 1-edge and exactly the
     2-edges that close no 1-1-2 triangle (removals cannot create new
     triangles, so the static condition is equivalent to the loop). *)
  let g = Wgraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Host.weight host u v = 1.0 then Wgraph.add_edge g u v 1.0
      else begin
        let dominated = ref false in
        for x = 0 to n - 1 do
          if x <> u && x <> v && Host.weight host u x = 1.0 && Host.weight host x v = 1.0
          then dominated := true
        done;
        if not !dominated then Wgraph.add_edge g u v 2.0
      end
    done
  done;
  (g, Cost.network_social_cost host g)

let tree_optimum tree host =
  let expected = Gncg_metric.Tree_metric.metric tree in
  if not (Metric.equal expected (Host.metric host)) then
    invalid_arg "Social_optimum.tree_optimum: host is not the metric of this tree";
  let g = Gncg_metric.Tree_metric.graph tree in
  (g, Cost.network_social_cost host g)

let greedy_heuristic host =
  let n = Host.n host in
  let alpha = Host.alpha host in
  let g =
    Wgraph.of_edges n (Gncg_graph.Mst.prim_complete n (fun u v -> Host.weight host u v))
  in
  (* Best improving addition w.r.t. the given distance matrix (steepest). *)
  let best_addition dm current edge_weight_total =
    let best_delta = ref 0.0 and best = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let w = Host.weight host u v in
        if Float.is_finite w && not (Wgraph.has_edge g u v) then begin
          let c =
            (alpha *. (edge_weight_total +. w))
            +. Gncg_graph.Dist_matrix.total_with_edge_added dm u v w
          in
          let delta = c -. current in
          if delta < !best_delta -. Flt.eps then begin
            best_delta := delta;
            best := Some (u, v, w)
          end
        end
      done
    done;
    !best
  in
  let best_removal current =
    let best_delta = ref 0.0 and best = ref None in
    List.iter
      (fun (u, v, w) ->
        Wgraph.remove_edge g u v;
        let c = Cost.network_social_cost host g in
        Wgraph.add_edge g u v w;
        let delta = c -. current in
        if delta < !best_delta -. Flt.eps then begin
          best_delta := delta;
          best := Some (u, v)
        end)
      (Wgraph.edges g);
    !best
  in
  (* Phase 1 — additions only, the bulk of the walk from the MST: the
     distance matrix is maintained incrementally (one exact O(n^2) update
     per applied edge), so no shortest-path recomputation is needed. *)
  let dm = ref (Gncg_graph.Dist_matrix.of_graph g) in
  let weight_total = ref (Wgraph.total_weight g) in
  let current = ref ((alpha *. !weight_total) +. Gncg_graph.Dist_matrix.total !dm) in
  let adding = ref true in
  while !adding do
    match best_addition !dm !current !weight_total with
    | Some (u, v, w) ->
      Wgraph.add_edge g u v w;
      Gncg_graph.Dist_matrix.add_edge !dm u v w;
      weight_total := !weight_total +. w;
      current := (alpha *. !weight_total) +. Gncg_graph.Dist_matrix.total !dm
    | None -> adding := false
  done;
  (* Phase 2 — full steepest descent over additions and removals; usually
     only a handful of iterations remain.  The final state is a local
     optimum of the complete single-edge neighbourhood. *)
  let improved = ref true in
  while !improved do
    improved := false;
    let dm = Gncg_graph.Dist_matrix.of_graph g in
    let current = Cost.network_social_cost host g in
    let add = best_addition dm current (Wgraph.total_weight g) in
    let remove = best_removal current in
    let delta_of_add =
      match add with
      | None -> 0.0
      | Some (u, v, w) ->
        (alpha *. (Wgraph.total_weight g +. w))
        +. Gncg_graph.Dist_matrix.total_with_edge_added dm u v w
        -. current
    in
    let delta_of_remove =
      match remove with
      | None -> 0.0
      | Some (u, v) ->
        let w = Option.get (Wgraph.weight g u v) in
        Wgraph.remove_edge g u v;
        let c = Cost.network_social_cost host g in
        Wgraph.add_edge g u v w;
        c -. current
    in
    match (add, remove) with
    | Some (u, v, w), _ when delta_of_add <= delta_of_remove ->
      Wgraph.add_edge g u v w;
      improved := true
    | _, Some (u, v) when delta_of_remove < 0.0 ->
      Wgraph.remove_edge g u v;
      improved := true
    | Some (u, v, w), None ->
      Wgraph.add_edge g u v w;
      improved := true
    | _ -> ()
  done;
  (g, Cost.network_social_cost host g)

let dist_total g =
  let acc = ref 0.0 in
  for u = 0 to Wgraph.n g - 1 do
    acc := !acc +. Flt.sum (Gncg_graph.Dijkstra.sssp g u)
  done;
  !acc

let exact_bnb ?(max_edges = 28) host =
  let pairs = Array.of_list (finite_pairs host) in
  let k = Array.length pairs in
  if k > max_edges then
    invalid_arg
      (Printf.sprintf "Social_optimum.exact_bnb: %d candidate edges exceed limit %d" k
         max_edges);
  let n = Host.n host in
  let alpha = Host.alpha host in
  (* Heaviest-first decision order: excluding heavy edges early tightens
     the building-cost part of the bound fastest. *)
  Array.sort (fun (a, b) (c, d) -> Float.compare (Host.weight host c d) (Host.weight host a b)) pairs;
  let weight_of i =
    let u, v = pairs.(i) in
    Host.weight host u v
  in
  let suffix_weight = Array.make (k + 1) 0.0 in
  for i = k - 1 downto 0 do
    suffix_weight.(i) <- suffix_weight.(i + 1) +. weight_of i
  done;
  (* Working graph holds decided-in edges plus all undecided edges; the
     DFS removes an edge when excluding it and restores on backtrack. *)
  let g = Wgraph.create n in
  Array.iteri (fun i (u, v) -> Wgraph.add_edge g u v (weight_of i)) pairs;
  let best_graph, warm = greedy_heuristic host in
  let best_graph = ref best_graph in
  let best_cost = ref warm in
  let rec go idx in_weight =
    (* Candidate: take every undecided edge. *)
    let dist = dist_total g in
    let take_all = (alpha *. (in_weight +. suffix_weight.(idx))) +. dist in
    if take_all < !best_cost -. Flt.eps then begin
      best_cost := take_all;
      best_graph := Wgraph.copy g
    end;
    (* Bound: building cost of decided edges + relaxed distance cost. *)
    let bound = (alpha *. in_weight) +. dist in
    if bound < !best_cost -. Flt.eps && idx < k then begin
      let u, v = pairs.(idx) in
      let w = weight_of idx in
      (* Branch 1: exclude the edge. *)
      Wgraph.remove_edge g u v;
      go (idx + 1) in_weight;
      Wgraph.add_edge g u v w;
      (* Branch 2: include it. *)
      go (idx + 1) (in_weight +. w)
    end
  in
  go 0 0.0;
  (!best_graph, !best_cost)

let anneal ?(seed = 1) ?(steps = 4000) ?(t0 = 1.0) ?(cooling = 0.999) host =
  let rng = Gncg_util.Prng.create seed in
  let n = Host.n host in
  let pairs = Array.of_list (finite_pairs host) in
  if Array.length pairs = 0 then (Wgraph.create n, Cost.network_social_cost host (Wgraph.create n))
  else begin
    let g, start_cost = greedy_heuristic host in
    let current = ref start_cost in
    let best_graph = ref (Wgraph.copy g) in
    let best_cost = ref start_cost in
    let temperature = ref (t0 *. Float.max 1.0 start_cost /. float_of_int (n * n)) in
    for _ = 1 to steps do
      let u, v = pairs.(Gncg_util.Prng.int rng (Array.length pairs)) in
      let w = Host.weight host u v in
      let had = Wgraph.has_edge g u v in
      if had then Wgraph.remove_edge g u v else Wgraph.add_edge g u v w;
      let c = Cost.network_social_cost host g in
      let delta = c -. !current in
      let accept =
        delta <= 0.0
        || (Float.is_finite delta
           && Gncg_util.Prng.float rng 1.0 < exp (-.delta /. Float.max 1e-9 !temperature))
      in
      if accept then begin
        current := c;
        if c < !best_cost -. Flt.eps then begin
          best_cost := c;
          best_graph := Wgraph.copy g
        end
      end
      else if had then Wgraph.add_edge g u v w
      else Wgraph.remove_edge g u v;
      temperature := !temperature *. cooling
    done;
    (!best_graph, !best_cost)
  end

let best_known host =
  let pairs = List.length (finite_pairs host) in
  (* Branch-and-bound handles n = 7 in well under a second; beyond that
     the steepest-descent heuristic takes over. *)
  if pairs <= 21 then exact_bnb host else greedy_heuristic host

let complete_host_cost host =
  Cost.network_social_cost host (Metric.complete_graph (Host.metric host))
