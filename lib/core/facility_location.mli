(** Uncapacitated facility location.

    Theorem 3 of the paper reduces an agent's strategy choice to an
    uncapacitated metric facility location (UMFL) instance: facilities are
    the other agents, opening facility [f] costs [α·w(u,f)] (0 when [f]
    already buys an edge to [u]), and serving client [j] from [f] costs
    [w(u,f) + d_{G'}(f,j)].  We use the reduction in both directions:

    - the {!solve_exact} branch-and-bound yields *exact best responses* for
      the sizes used in tests and experiments;
    - the {!local_search} of Arya et al. (locality gap 3) yields
      polynomial-time responses whose stability corresponds to the 3-NE
      guarantee of Thm. 3. *)

type instance = {
  open_cost : float array;  (** per facility; may be 0 or infinite *)
  service : float array array;
      (** [service.(f).(c)]: cost of serving client [c] from facility [f];
          may be infinite *)
  forced_open : bool array;  (** facilities that every solution must open *)
}

val make :
  ?forced_open:bool array ->
  open_cost:float array ->
  service:float array array ->
  unit ->
  instance
(** Validates dimensions; [forced_open] defaults to all-false. *)

val num_facilities : instance -> int

val num_clients : instance -> int

val cost : instance -> bool array -> float
(** Total cost of a set of open facilities: opening costs plus each
    client's distance to its closest open facility ([infinity] when a
    client is unservable or a forced facility is closed). *)

val solve_exact : instance -> bool array * float
(** Optimal solution by branch-and-bound over facilities, warm-started by
    the local search.  Exponential worst case; intended for instances with
    at most ~25 free facilities. *)

val local_search : instance -> bool array * float
(** Arya et al. add/drop/swap local search from the all-open solution; the
    result cannot be improved by opening, closing or swapping a single
    facility (a 3-approximation on metric instances). *)

val improve_step : instance -> bool array -> (bool array * float) option
(** One improving open/close/swap step if any exists (tolerance-guarded). *)
