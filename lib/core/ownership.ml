module Wgraph = Gncg_graph.Wgraph

let orientations g =
  let edges = Array.of_list (Wgraph.edges g) in
  let k = Array.length edges in
  if k > Sys.int_size - 2 then invalid_arg "Ownership.orientations: too many edges";
  let n = Wgraph.n g in
  let profile_of_mask mask =
    let s = ref (Strategy.empty n) in
    Array.iteri
      (fun i (u, v, _) ->
        let owner, target = if mask land (1 lsl i) = 0 then (u, v) else (v, u) in
        s := Strategy.buy !s owner target)
      edges;
    !s
  in
  Seq.map profile_of_mask (Seq.init (1 lsl k) (fun m -> m))

let find g predicate = Seq.find predicate (orientations g)

let guarded max_edges g =
  if Wgraph.m g > max_edges then
    invalid_arg
      (Printf.sprintf "Ownership: %d edges exceed enumeration limit %d" (Wgraph.m g)
         max_edges)

let find_ne ?(max_edges = 20) host g =
  guarded max_edges g;
  find g (Equilibrium.is_ne host)

let find_ge ?(max_edges = 20) host g =
  guarded max_edges g;
  find g (Equilibrium.is_ge host)
