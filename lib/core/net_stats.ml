module Wgraph = Gncg_graph.Wgraph
module T = Gncg_util.Tablefmt

type t = {
  n : int;
  m : int;
  total_weight : float;
  diameter : float;
  avg_degree : float;
  max_degree : int;
  components : int;
  is_tree : bool;
  social_cost : float;
  stretch : float;
}

let build host g social_cost =
  let n = Wgraph.n g in
  let max_degree = ref 0 in
  for v = 0 to n - 1 do
    max_degree := max !max_degree (Wgraph.degree g v)
  done;
  {
    n;
    m = Wgraph.m g;
    total_weight = Wgraph.total_weight g;
    diameter = Gncg_graph.Dijkstra.diameter g;
    avg_degree = (if n = 0 then 0.0 else 2.0 *. float_of_int (Wgraph.m g) /. float_of_int n);
    max_degree = !max_degree;
    components = Gncg_graph.Connectivity.component_count g;
    is_tree = Gncg_graph.Connectivity.is_tree g;
    social_cost;
    stretch = Quality.host_stretch host g;
  }

let of_network host g = build host g (Cost.network_social_cost host g)

let of_profile host s = build host (Network.graph host s) (Cost.social_cost host s)

let header =
  [ "n"; "edges"; "weight"; "diam"; "avg deg"; "max deg"; "comp"; "shape"; "cost"; "stretch" ]

let row t =
  [
    string_of_int t.n;
    string_of_int t.m;
    T.fl ~digits:2 t.total_weight;
    T.fl ~digits:2 t.diameter;
    T.fl ~digits:2 t.avg_degree;
    string_of_int t.max_degree;
    string_of_int t.components;
    (if t.is_tree then "tree" else "-");
    T.fl ~digits:2 t.social_cost;
    T.fl ~digits:3 t.stretch;
  ]

let pp fmt t =
  Format.fprintf fmt
    "@[<v>network: n=%d m=%d weight=%.2f diameter=%.2f avg-degree=%.2f components=%d%s@,\
     social cost=%.2f stretch=%.3f@]"
    t.n t.m t.total_weight t.diameter t.avg_degree t.components
    (if t.is_tree then " (tree)" else "")
    t.social_cost t.stretch
