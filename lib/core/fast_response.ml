module Wgraph = Gncg_graph.Wgraph
module Dijkstra = Gncg_graph.Dijkstra
module Flt = Gncg_util.Flt
module ISet = Strategy.ISet
module Metric = Gncg_obs.Metric

(* Layer-2 probes: how often each evaluator runs, and how many stateful
   verdicts were decided without a what-if Dijkstra. *)
let c_stateless_evals = Metric.Counter.make "fast_response.stateless_evals"
let c_state_evals = Metric.Counter.make "fast_response.state_evals"
let c_rowlocal_verdicts = Metric.Counter.make "fast_response.rowlocal_verdicts"

(* Distance sum from the agent given the min-formula over an added edge
   (u,v): d'(x) = min(d_u(x), w + d_v(x)) — one streaming pass, nothing
   materialized. *)
let dist_sum_with_added_edge d_u d_v w = Flt.sum_min_add d_u w d_v

(* Near-ties are classified with the engine tolerance, like everywhere
   else: a candidate within [Flt.eps] of the incumbent cost is "no gain"
   (this also absorbs inf - inf for disconnected states). *)
let gain_between cur_cost cost' =
  if Flt.approx_eq cost' cur_cost then 0.0 else cur_cost -. cost'

let move_gains ?kinds host s ~agent =
  Metric.Counter.incr c_stateless_evals;
  let g = Network.graph host s in
  let d_u = Dijkstra.sssp g agent in
  let cur_dist = Flt.sum d_u in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  (* SSSP cache for addition targets (the graph is unmodified there). *)
  let sssp_cache = Hashtbl.create 16 in
  let d_of v =
    match Hashtbl.find_opt sssp_cache v with
    | Some d -> d
    | None ->
      let d = Dijkstra.sssp g v in
      Hashtbl.add sssp_cache v d;
      d
  in
  (* The built edge (u,v) persists after u sells it iff v also buys it. *)
  let edge_survives_sale v = Strategy.owns s v agent in
  let gain_of = function
    | Move.Add v ->
      let w = Host.weight host agent v in
      let cost' =
        cur_edge +. (alpha *. w) +. dist_sum_with_added_edge d_u (d_of v) w
      in
      gain_between cur_cost cost'
    | Move.Delete v ->
      let w = Host.weight host agent v in
      if edge_survives_sale v then alpha *. w
      else begin
        Wgraph.remove_edge g agent v;
        let dist' = Flt.sum (Dijkstra.sssp g agent) in
        Wgraph.add_edge g agent v w;
        let cost' = cur_edge -. (alpha *. w) +. dist' in
        gain_between cur_cost cost'
      end
    | Move.Swap (old_t, new_t) ->
      let w_old = Host.weight host agent old_t in
      let w_new = Host.weight host agent new_t in
      let removed =
        if edge_survives_sale old_t then false
        else begin
          Wgraph.remove_edge g agent old_t;
          true
        end
      in
      Wgraph.add_edge g agent new_t w_new;
      let dist' = Flt.sum (Dijkstra.sssp g agent) in
      Wgraph.remove_edge g agent new_t;
      if removed then Wgraph.add_edge g agent old_t w_old;
      let cost' = cur_edge +. (alpha *. (w_new -. w_old)) +. dist' in
      gain_between cur_cost cost'
  in
  List.map (fun mv -> (mv, gain_of mv)) (Move.candidates ?kinds host s ~agent)

let pick_best gains =
  List.fold_left
    (fun acc (mv, gain) ->
      match acc with
      | Some (_, g) when g >= gain -> acc
      | _ when gain > Flt.eps -> Some (mv, gain)
      | _ -> acc)
    None gains

let best_move ?kinds host s ~agent = pick_best (move_gains ?kinds host s ~agent)

(* State-based evaluation: no graph build, no SSSP for the mover or for
   addition targets — their rows live in the state's flat matrix, so an
   addition is one streaming O(n) kernel with no row materialized.
   Deletions and swaps still need one what-if Dijkstra each (removal
   invalidates the precomputed rows), run through the state's scratch
   buffers (no fresh heap, no fresh rows). *)
let move_gains_state ?kinds st ~agent =
  let host = Net_state.host st in
  let s = Net_state.profile st in
  let cur_dist = Net_state.agent_dist_sum st agent in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  let edge_survives_sale v = Strategy.owns s v agent in
  let gain_of = function
    | Move.Add v ->
      let w = Host.weight host agent v in
      let cost' = cur_edge +. (alpha *. w) +. Net_state.dist_sum_with_edge st agent v w in
      gain_between cur_cost cost'
    | Move.Delete v ->
      let w = Host.weight host agent v in
      if edge_survives_sale v then alpha *. w
      else begin
        let dist' = Net_state.sssp_edited_sum st ~remove:(agent, v) agent in
        gain_between cur_cost (cur_edge -. (alpha *. w) +. dist')
      end
    | Move.Swap (old_t, new_t) ->
      let w_old = Host.weight host agent old_t in
      let w_new = Host.weight host agent new_t in
      if edge_survives_sale old_t then
        (* The sold edge stays (other side owns it too): the swap is a pure
           insertion, evaluated by the O(n) formula. *)
        gain_between cur_cost
          (cur_edge
          +. (alpha *. (w_new -. w_old))
          +. Net_state.dist_sum_with_edge st agent new_t w_new)
      else begin
        let dist' =
          Net_state.sssp_edited_sum st ~remove:(agent, old_t) ~add:(agent, new_t, w_new)
            agent
        in
        gain_between cur_cost (cur_edge +. (alpha *. (w_new -. w_old)) +. dist')
      end
  in
  List.map (fun mv -> (mv, gain_of mv)) (Move.candidates ?kinds host s ~agent)

(* Best improving move, plus whether the verdict is "row-local": decided
   entirely from live matrix rows and the profile, with zero what-if
   Dijkstras.  Row-local verdicts are a pure function of (a) the agent's
   strategy entry and co-ownership pairs involving the agent and (b) the
   distance rows of the agent and of its eligible targets — so a dynamics
   or equilibrium scan may reuse them verbatim while those inputs are
   untouched (see Dynamics).

   The candidate enumeration below is Move.candidates inlined — additions
   in ascending target order, then deletions in ascending owned order,
   then swaps (owned ascending × addable ascending) — and ties keep the
   earlier candidate, so the result is identical to folding pick over the
   materialized list (tested). *)
let best_move_state_verdict ?(kinds = [ `Add; `Delete; `Swap ]) st ~agent =
  Metric.Counter.incr c_state_evals;
  let host = Net_state.host st in
  let s = Net_state.profile st in
  let n = Strategy.n s in
  let cur_dist = Net_state.agent_dist_sum st agent in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  let edge_survives_sale v = Strategy.owns s v agent in
  let addable v = Move.addable host s ~agent v in
  let owned = Strategy.strategy s agent in
  (* Σ_x min(d_u(x), w + d_v(x)) per addition target, memoized (NaN =
     unset; a distance sum is never NaN): shared by the Add candidates
     and by every swap bound below. *)
  let added_memo = Array.make n Float.nan in
  let added_dist v w =
    let x = Array.unsafe_get added_memo v in
    if Float.is_nan x then begin
      let x = Net_state.dist_sum_with_edge st agent v w in
      Array.unsafe_set added_memo v x;
      x
    end
    else x
  in
  let rowlocal = ref true in
  let best = ref None in
  let pick mv gain =
    match !best with
    | Some (_, g) when g >= gain -> ()
    | _ -> if gain > Flt.eps then best := Some (mv, gain)
  in
  let best_gain () = match !best with Some (_, g) -> g | None -> Flt.eps in
  if List.mem `Add kinds then
    for v = 0 to n - 1 do
      if addable v then begin
        let w = Host.weight host agent v in
        let cost' = cur_edge +. (alpha *. w) +. added_dist v w in
        pick (Move.Add v) (gain_between cur_cost cost')
      end
    done;
  (* Branch-and-bound over deletions and swaps: a what-if Dijkstra is
     spent only on moves whose admissible gain bound beats the incumbent
     best.  Deleting an edge gains at most its price back (the removal
     can only lengthen distances); a swap gains at most its pure-
     insertion relaxation.  Skipping a bounded-out move is exact: its
     true gain can never replace the incumbent. *)
  if List.mem `Delete kinds then
    ISet.iter
      (fun v ->
        let w = Host.weight host agent v in
        if edge_survives_sale v then pick (Move.Delete v) (alpha *. w)
        else if alpha *. w > best_gain () then begin
          rowlocal := false;
          let dist' = Net_state.sssp_edited_sum st ~remove:(agent, v) agent in
          pick (Move.Delete v) (gain_between cur_cost (cur_edge -. (alpha *. w) +. dist'))
        end)
      owned;
  if List.mem `Swap kinds then begin
    (* Per old endpoint, the deletion what-if row r_del(x) = d_{G-e}(u,x)
       is computed at most once and reused across every new endpoint: the
       refined bound Σ_x min(r_del(x), w_new + d(new_t,x)) is a valid
       lower bound on the swap distance sum (d_{G-e} >= d on the new
       endpoint's row) and is much tighter than the pure-insertion bound,
       so most swap Dijkstras are pruned away. *)
    let r_del = Array.make n Float.infinity in
    let r_del_for = ref (-1) in
    ISet.iter
      (fun old_t ->
        let w_old = Host.weight host agent old_t in
        let survives = edge_survives_sale old_t in
        for new_t = 0 to n - 1 do
          if addable new_t then begin
            let w_new = Host.weight host agent new_t in
            let edge_delta = alpha *. (w_new -. w_old) in
            let insertion_cost = cur_edge +. edge_delta +. added_dist new_t w_new in
            if survives then
              (* The sold edge stays (other side owns it too): the swap is
                 a pure insertion, evaluated exactly by the O(n) formula. *)
              pick (Move.Swap (old_t, new_t)) (gain_between cur_cost insertion_cost)
            else if cur_cost -. insertion_cost > best_gain () then begin
              rowlocal := false;
              if !r_del_for <> old_t then begin
                Net_state.sssp_edited_into st ~remove:(agent, old_t) agent r_del;
                r_del_for := old_t
              end;
              let refined_cost =
                cur_edge +. edge_delta +. Net_state.min_sum_against st r_del new_t w_new
              in
              if cur_cost -. refined_cost > best_gain () then begin
                let dist' =
                  Net_state.sssp_edited_sum st ~remove:(agent, old_t)
                    ~add:(agent, new_t, w_new) agent
                in
                pick (Move.Swap (old_t, new_t)) (gain_between cur_cost (cur_edge +. edge_delta +. dist'))
              end
            end
          end
        done)
      owned
  end;
  if !rowlocal then Metric.Counter.incr c_rowlocal_verdicts;
  (!best, !rowlocal)

let best_move_state ?kinds st ~agent = fst (best_move_state_verdict ?kinds st ~agent)

(* --- geometric shortcut ------------------------------------------------- *)

let c_nearest_evals = Metric.Counter.make "fast_response.nearest_evals"

let nearest_addable_target st ~agent =
  let host = Net_state.host st in
  let s = Net_state.profile st in
  Net_state.nearest_target st ~accept:(fun v -> Move.addable host s ~agent v) agent

(* When the state's backend carries a geometric index (the R^d oracle's
   k-d tree), rank addable targets by host distance without the O(n)
   scan: the nearest addable point is the natural greedy candidate —
   its edge is the cheapest to buy — and its exact gain is one O(n)
   streaming kernel.  This is a heuristic shortlist (the gain-optimal
   add can differ), so callers needing exactness keep the full scan. *)
let best_add_nearest st ~agent =
  match nearest_addable_target st ~agent with
  | None -> None
  | Some (v, w) ->
    Metric.Counter.incr c_nearest_evals;
    let host = Net_state.host st in
    let cur_cost =
      Cost.agent_edge_cost host (Net_state.profile st) agent
      +. Net_state.agent_dist_sum st agent
    in
    let alpha = Host.alpha host in
    let cost' =
      (cur_cost -. Net_state.agent_dist_sum st agent)
      +. (alpha *. w)
      +. Net_state.dist_sum_with_edge st agent v w
    in
    let gain = gain_between cur_cost cost' in
    if gain > Flt.eps then Some (Move.Add v, gain) else None

let round_add_gains host s =
  let g = Network.graph host s in
  let n = Strategy.n s in
  let apsp = Dijkstra.apsp g in
  let alpha = Host.alpha host in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let cur_dist = Flt.sum apsp.(u) in
    List.iter
      (fun mv ->
        match mv with
        | Move.Add v ->
          let w = Host.weight host u v in
          let dist' = dist_sum_with_added_edge apsp.(u) apsp.(v) w in
          (* Same tolerance discipline as the single-move paths: ties and
             inf - inf both classify as "no gain" through gain_between. *)
          let gain = gain_between cur_dist ((alpha *. w) +. dist') in
          if gain > Flt.eps then acc := (u, v, gain) :: !acc
        | Move.Delete _ | Move.Swap _ -> ())
      (Move.candidates ~kinds:[ `Add ] host s ~agent:u)
  done;
  List.rev !acc
