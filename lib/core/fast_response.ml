module Wgraph = Gncg_graph.Wgraph
module Dijkstra = Gncg_graph.Dijkstra
module Flt = Gncg_util.Flt

(* Distance sum from the agent given the min-formula over an added edge
   (u,v): d'(x) = min(d_u(x), w + d_v(x)). *)
let dist_sum_with_added_edge d_u d_v w =
  let n = Array.length d_u in
  let per = Array.make n 0.0 in
  for x = 0 to n - 1 do
    per.(x) <- Float.min d_u.(x) (w +. d_v.(x))
  done;
  Flt.sum per

(* Near-ties are classified with the engine tolerance, like everywhere
   else: a candidate within [Flt.eps] of the incumbent cost is "no gain"
   (this also absorbs inf - inf for disconnected states). *)
let gain_between cur_cost cost' =
  if Flt.approx_eq cost' cur_cost then 0.0 else cur_cost -. cost'

let move_gains ?kinds host s ~agent =
  let g = Network.graph host s in
  let d_u = Dijkstra.sssp g agent in
  let cur_dist = Flt.sum d_u in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  (* SSSP cache for addition targets (the graph is unmodified there). *)
  let sssp_cache = Hashtbl.create 16 in
  let d_of v =
    match Hashtbl.find_opt sssp_cache v with
    | Some d -> d
    | None ->
      let d = Dijkstra.sssp g v in
      Hashtbl.add sssp_cache v d;
      d
  in
  (* The built edge (u,v) persists after u sells it iff v also buys it. *)
  let edge_survives_sale v = Strategy.owns s v agent in
  let gain_of = function
    | Move.Add v ->
      let w = Host.weight host agent v in
      let cost' =
        cur_edge +. (alpha *. w) +. dist_sum_with_added_edge d_u (d_of v) w
      in
      gain_between cur_cost cost'
    | Move.Delete v ->
      let w = Host.weight host agent v in
      if edge_survives_sale v then alpha *. w
      else begin
        Wgraph.remove_edge g agent v;
        let dist' = Flt.sum (Dijkstra.sssp g agent) in
        Wgraph.add_edge g agent v w;
        let cost' = cur_edge -. (alpha *. w) +. dist' in
        gain_between cur_cost cost'
      end
    | Move.Swap (old_t, new_t) ->
      let w_old = Host.weight host agent old_t in
      let w_new = Host.weight host agent new_t in
      let removed =
        if edge_survives_sale old_t then false
        else begin
          Wgraph.remove_edge g agent old_t;
          true
        end
      in
      Wgraph.add_edge g agent new_t w_new;
      let dist' = Flt.sum (Dijkstra.sssp g agent) in
      Wgraph.remove_edge g agent new_t;
      if removed then Wgraph.add_edge g agent old_t w_old;
      let cost' = cur_edge +. (alpha *. (w_new -. w_old)) +. dist' in
      gain_between cur_cost cost'
  in
  List.map (fun mv -> (mv, gain_of mv)) (Move.candidates ?kinds host s ~agent)

let pick_best gains =
  List.fold_left
    (fun acc (mv, gain) ->
      match acc with
      | Some (_, g) when g >= gain -> acc
      | _ when gain > Flt.eps -> Some (mv, gain)
      | _ -> acc)
    None gains

let best_move ?kinds host s ~agent = pick_best (move_gains ?kinds host s ~agent)

(* State-based evaluation: no graph build, no SSSP for the mover or for
   addition targets — their rows are live in the maintained matrix, so an
   addition costs O(n) flat.  Deletions and swaps still need one what-if
   Dijkstra each (removal invalidates the precomputed rows). *)
let move_gains_state ?kinds st ~agent =
  let host = Net_state.host st in
  let s = Net_state.profile st in
  let d_u = Net_state.dist_row st agent in
  let cur_dist = Flt.sum d_u in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  let edge_survives_sale v = Strategy.owns s v agent in
  let gain_of = function
    | Move.Add v ->
      let w = Host.weight host agent v in
      let cost' =
        cur_edge +. (alpha *. w)
        +. dist_sum_with_added_edge d_u (Net_state.dist_row st v) w
      in
      gain_between cur_cost cost'
    | Move.Delete v ->
      let w = Host.weight host agent v in
      if edge_survives_sale v then alpha *. w
      else begin
        let dist' = Flt.sum (Net_state.sssp_edited st ~remove:(agent, v) agent) in
        gain_between cur_cost (cur_edge -. (alpha *. w) +. dist')
      end
    | Move.Swap (old_t, new_t) ->
      let w_old = Host.weight host agent old_t in
      let w_new = Host.weight host agent new_t in
      if edge_survives_sale old_t then
        (* The sold edge stays (other side owns it too): the swap is a pure
           insertion, evaluated by the O(n) formula. *)
        gain_between cur_cost
          (cur_edge
          +. (alpha *. (w_new -. w_old))
          +. dist_sum_with_added_edge d_u (Net_state.dist_row st new_t) w_new)
      else begin
        let dist' =
          Flt.sum (Net_state.sssp_edited st ~remove:(agent, old_t) ~add:(agent, new_t, w_new) agent)
        in
        gain_between cur_cost (cur_edge +. (alpha *. (w_new -. w_old)) +. dist')
      end
  in
  List.map (fun mv -> (mv, gain_of mv)) (Move.candidates ?kinds host s ~agent)

let best_move_state ?kinds st ~agent =
  let host = Net_state.host st in
  let s = Net_state.profile st in
  let d_u = Net_state.dist_row st agent in
  let cur_dist = Flt.sum d_u in
  let cur_edge = Cost.agent_edge_cost host s agent in
  let cur_cost = cur_edge +. cur_dist in
  let alpha = Host.alpha host in
  let edge_survives_sale v = Strategy.owns s v agent in
  (* Σ_x min(d_u(x), w + d_v(x)) per addition target, memoized: shared by
     the Add candidates and by every swap bound below. *)
  let added_dist_memo = Hashtbl.create 16 in
  let added_dist v w =
    match Hashtbl.find_opt added_dist_memo v with
    | Some x -> x
    | None ->
      let x = dist_sum_with_added_edge d_u (Net_state.dist_row st v) w in
      Hashtbl.add added_dist_memo v x;
      x
  in
  let pick acc mv gain =
    match acc with
    | Some (_, g) when g >= gain -> acc
    | _ when gain > Flt.eps -> Some (mv, gain)
    | _ -> acc
  in
  List.fold_left
    (fun acc mv ->
      (* Branch-and-bound over the candidate list: a what-if Dijkstra is
         spent only on moves whose admissible gain bound beats the
         incumbent best (deleting an edge gains at most its price back;
         a swap gains at most its pure-insertion relaxation, since the
         removal can only lengthen distances).  Skipping a bounded-out
         move is exact: its true gain can never replace the incumbent. *)
      let best_gain = match acc with Some (_, g) -> g | None -> Flt.eps in
      match mv with
      | Move.Add v ->
        let w = Host.weight host agent v in
        let cost' = cur_edge +. (alpha *. w) +. added_dist v w in
        pick acc mv (gain_between cur_cost cost')
      | Move.Delete v ->
        let w = Host.weight host agent v in
        if edge_survives_sale v then pick acc mv (alpha *. w)
        else if alpha *. w <= best_gain then acc
        else begin
          let dist' = Flt.sum (Net_state.sssp_edited st ~remove:(agent, v) agent) in
          pick acc mv (gain_between cur_cost (cur_edge -. (alpha *. w) +. dist'))
        end
      | Move.Swap (old_t, new_t) ->
        let w_old = Host.weight host agent old_t in
        let w_new = Host.weight host agent new_t in
        let insertion_cost =
          cur_edge +. (alpha *. (w_new -. w_old)) +. added_dist new_t w_new
        in
        if edge_survives_sale old_t then
          pick acc mv (gain_between cur_cost insertion_cost)
        else if cur_cost -. insertion_cost <= best_gain then acc
        else begin
          let dist' =
            Flt.sum
              (Net_state.sssp_edited st ~remove:(agent, old_t) ~add:(agent, new_t, w_new)
                 agent)
          in
          pick acc mv (gain_between cur_cost (cur_edge +. (alpha *. (w_new -. w_old)) +. dist'))
        end)
    None
    (Move.candidates ?kinds host s ~agent)

let round_add_gains host s =
  let g = Network.graph host s in
  let n = Strategy.n s in
  let apsp = Dijkstra.apsp g in
  let alpha = Host.alpha host in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let cur_dist = Flt.sum apsp.(u) in
    List.iter
      (fun mv ->
        match mv with
        | Move.Add v ->
          let w = Host.weight host u v in
          let dist' = dist_sum_with_added_edge apsp.(u) apsp.(v) w in
          let gain = cur_dist -. ((alpha *. w) +. dist') in
          let gain = if Float.is_nan gain then 0.0 else gain in
          if gain > Flt.eps then acc := (u, v, gain) :: !acc
        | Move.Delete _ | Move.Swap _ -> ())
      (Move.candidates ~kinds:[ `Add ] host s ~agent:u)
  done;
  List.rev !acc
