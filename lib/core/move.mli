(** Single-edge strategy changes: the moves of Greedy Equilibria (Lenzner).

    A move is relative to one agent: buy one edge, delete one owned edge,
    or swap one owned edge for a new one. *)

type t =
  | Add of int      (** buy the edge towards this agent *)
  | Delete of int   (** stop buying the edge towards this agent *)
  | Swap of int * int  (** [Swap (old_target, new_target)] *)

val apply : Strategy.t -> agent:int -> t -> Strategy.t
(** Raises [Invalid_argument] for incoherent moves (adding an owned target,
    deleting or swapping an unowned one). *)

val addable : Host.t -> Strategy.t -> agent:int -> int -> bool
(** Is [v] a legal addition target for the agent — distinct, absent from
    [G(s)] in both directions, finite host weight?  The shared predicate
    behind the [Add]/[Swap] candidates here, the streaming kernels of
    [Fast_response], and the dirty-agent analyses of [Dynamics] and
    [Equilibrium.Tracker] (a changed distance row can enter a row-local
    verdict only through an addable target). *)

val candidates : ?kinds:[ `Add | `Delete | `Swap ] list -> Host.t -> Strategy.t -> agent:int -> t list
(** All coherent single-edge moves for the agent.  [Add v] is proposed only
    when the edge [(u,v)] is absent from [G(s)] in both directions (buying
    an edge the other side already owns can never strictly help) and the
    host weight is finite.  [kinds] defaults to all three. *)

val pp : Format.formatter -> t -> unit
