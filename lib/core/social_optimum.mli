(** Social optimum networks.

    Finding OPT is a variant of the classical Network Design Problem and is
    suspected NP-hard for all model variants except the 1-2–GNCG and the
    T–GNCG (Sec. 1.2), so exact computation enumerates subgraphs and is
    limited to tiny instances; the named polynomial cases have dedicated
    solvers (Thm. 6, Cor. 3), and a heuristic covers the rest. *)

val exact_small : ?max_edges:int -> Host.t -> Gncg_graph.Wgraph.t * float
(** Optimal network by enumeration over all subsets of the finite-weight
    host edges.  Refuses instances with more than [max_edges] (default 16)
    candidate edges. *)

val exact_bnb : ?max_edges:int -> Host.t -> Gncg_graph.Wgraph.t * float
(** Optimal network by branch-and-bound over edge inclusion, warm-started
    by the heuristic: the relaxation keeping all undecided edges lower
    bounds the distance cost, the decided edges lower bound the building
    cost.  Handles up to [max_edges] (default 28, i.e. n = 8) candidate
    edges in reasonable time. *)

val algorithm_one : Host.t -> Gncg_graph.Wgraph.t * float
(** Algorithm 1 of the paper: for a 1-2 host with α <= 1, start from the
    complete host graph and delete the 2-edge of every 1-1-2 triangle.
    Raises [Invalid_argument] on non-1-2 hosts. *)

val tree_optimum : Gncg_metric.Tree_metric.tree -> Host.t -> Gncg_graph.Wgraph.t * float
(** Cor. 3: on the host defined by tree [T], the tree itself is the social
    optimum (it is the cheapest network preserving all host distances). *)

val greedy_heuristic : Host.t -> Gncg_graph.Wgraph.t * float
(** MST seed, then steepest local search over single-edge additions and
    deletions of the network.  Additions are evaluated through the exact
    distance-matrix insertion update (O(n²) per candidate). *)

val anneal :
  ?seed:int -> ?steps:int -> ?t0:float -> ?cooling:float -> Host.t -> Gncg_graph.Wgraph.t * float
(** Simulated annealing over single-edge toggles, seeded by
    {!greedy_heuristic}; returns the best network seen.  Escapes the local
    optima the steepest-descent heuristic can be stuck in. *)

val best_known : Host.t -> Gncg_graph.Wgraph.t * float
(** Exact (branch-and-bound) up to 7 agents, otherwise the heuristic. *)

val complete_host_cost : Host.t -> float
(** Social cost of buying every finite edge — the trivial upper bound used
    in Thm. 8. *)
