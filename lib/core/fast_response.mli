(** Optimized single-move evaluation.

    [Greedy] re-builds the network and re-runs Dijkstra for every candidate
    move — simple and obviously correct, but wasteful inside dynamics.
    This module evaluates the same move set incrementally:

    - the network is built once and edited in place (delete/swap), and
    - additions use the exact identity
      [d_{G+(u,v)}(u,x) = min(d_G(u,x), w(u,v) + d_G(v,x))]
      (any shortest path from [u] through the new edge starts with it),
      so each addition costs one Dijkstra pass on the *unmodified* graph.

    Results are identical to [Greedy] up to tie-breaking; the equivalence
    is covered by tests, and the speedup is measured in the bench
    harness. *)

val move_gains : ?kinds:[ `Add | `Delete | `Swap ] list -> Host.t -> Strategy.t -> agent:int -> (Move.t * float) list
(** Gain of every coherent single-edge move for the agent (positive =
    improving), in the order produced by [Move.candidates]. *)

val best_move :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  Host.t ->
  Strategy.t ->
  agent:int ->
  (Move.t * float) option
(** Drop-in replacement for [Greedy.best_move]. *)

val move_gains_state :
  ?kinds:[ `Add | `Delete | `Swap ] list -> Net_state.t -> agent:int -> (Move.t * float) list
(** [move_gains] against an incrementally maintained {!Net_state.t}: the
    state's distance matrix makes every addition O(n) with no Dijkstra at
    all; deletions and swaps cost one what-if SSSP each.  The state is
    not modified. *)

val best_move_state :
  ?kinds:[ `Add | `Delete | `Swap ] list -> Net_state.t -> agent:int -> (Move.t * float) option
(** Best improving move per {!move_gains_state} — the per-step engine of
    the incremental dynamics evaluator.  Candidate enumeration, gain
    bounds, and what-if Dijkstras all run through the state's
    preallocated scratch buffers and streaming kernels, so evaluating an
    agent allocates O(n) transients instead of one row per candidate. *)

val best_move_state_verdict :
  ?kinds:[ `Add | `Delete | `Swap ] list ->
  Net_state.t ->
  agent:int ->
  (Move.t * float) option * bool
(** {!best_move_state} plus a row-locality flag: [true] when the verdict
    was decided with zero what-if Dijkstras, i.e. purely from the live
    distance rows of the agent and its eligible targets together with
    the agent's own strategy entry and co-ownership pairs.  Row-local
    verdicts stay valid while those inputs are untouched — the exactness
    basis of the dirty-agent skipping in {!Dynamics} and
    {!Equilibrium}. *)

val nearest_addable_target : Net_state.t -> agent:int -> (int * float) option
(** The geometrically nearest vertex the agent could buy an edge to,
    with its host distance — answered by the backend's k-d index when
    the state runs on the R^d oracle ([None] on matrix backends, which
    have no geometric index, or when nothing is addable). *)

val best_add_nearest : Net_state.t -> agent:int -> (Move.t * float) option
(** Exact gain of adding the edge to the nearest addable target — one
    O(log n) index query plus one O(n) streaming kernel, against the
    full scan's n kernels.  A greedy shortlist, not a replacement for
    {!best_move_state}: the gain-optimal addition can differ. *)

val round_add_gains : Host.t -> Strategy.t -> (int * int * float) list
(** [(agent, target, gain)] for every improving addition of every agent,
    from a single all-pairs pass — the batch primitive for add-only
    dynamics rounds. *)
