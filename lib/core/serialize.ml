let float_to_string x =
  if x = Float.infinity then "inf" else Printf.sprintf "%.17g" x

let float_of_token line tok =
  match tok with
  | "inf" -> Float.infinity
  | _ -> (
    match float_of_string_opt tok with
    | Some x -> x
    | None -> failwith (Printf.sprintf "Serialize: bad number %S on line %d" tok line))

let host_to_string host =
  let n = Host.n host in
  let buf = Buffer.create (16 * n * n) in
  Buffer.add_string buf "gncg-host 1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf (Printf.sprintf "alpha %s\n" (float_to_string (Host.alpha host)));
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = Host.weight host u v in
      if Float.is_finite w then
        Buffer.add_string buf (Printf.sprintf "w %d %d %s\n" u v (float_to_string w))
    done
  done;
  Buffer.contents buf

let lines_of s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let fields l = String.split_on_char ' ' l |> List.filter (fun t -> t <> "")

let expect_header lines magic =
  match lines with
  | (ln, first) :: rest ->
    (match fields first with
    | [ m; "1" ] when m = magic -> rest
    | _ -> failwith (Printf.sprintf "Serialize: expected %S header on line %d" magic ln))
  | [] -> failwith "Serialize: empty input"

let parse_n lines =
  match lines with
  | (ln, l) :: rest -> (
    match fields l with
    | [ "n"; v ] -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> (n, rest)
      | _ -> failwith (Printf.sprintf "Serialize: bad size on line %d" ln))
    | _ -> failwith (Printf.sprintf "Serialize: expected size on line %d" ln))
  | [] -> failwith "Serialize: missing size"

let host_of_string s =
  let lines = expect_header (lines_of s) "gncg-host" in
  let n, lines = parse_n lines in
  let alpha, lines =
    match lines with
    | (ln, l) :: rest -> (
      match fields l with
      | [ "alpha"; v ] -> (float_of_token ln v, rest)
      | _ -> failwith (Printf.sprintf "Serialize: expected alpha on line %d" ln))
    | [] -> failwith "Serialize: missing alpha"
  in
  let w = Array.make_matrix n n Float.infinity in
  for i = 0 to n - 1 do
    w.(i).(i) <- 0.0
  done;
  List.iter
    (fun (ln, l) ->
      match fields l with
      | [ "w"; u; v; x ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v when u >= 0 && v >= 0 && u < n && v < n && u <> v ->
          let x = float_of_token ln x in
          w.(u).(v) <- x;
          w.(v).(u) <- x
        | _ -> failwith (Printf.sprintf "Serialize: bad pair on line %d" ln))
      | _ -> failwith (Printf.sprintf "Serialize: unexpected line %d: %s" ln l))
    lines;
  Host.make ~alpha (Gncg_metric.Metric.of_matrix w)

let profile_to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "gncg-profile 1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Strategy.n s));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "buy %d %d\n" u v))
    (Strategy.owned_edges s);
  Buffer.contents buf

let profile_of_string str =
  let lines = expect_header (lines_of str) "gncg-profile" in
  let n, lines = parse_n lines in
  List.fold_left
    (fun s (ln, l) ->
      match fields l with
      | [ "buy"; u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v when u >= 0 && v >= 0 && u < n && v < n && u <> v ->
          Strategy.buy s u v
        | _ -> failwith (Printf.sprintf "Serialize: bad purchase on line %d" ln))
      | _ -> failwith (Printf.sprintf "Serialize: unexpected line %d: %s" ln l))
    (Strategy.empty n) lines

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let host_to_file path host = write_file path (host_to_string host)

let host_of_file path = host_of_string (read_file path)

let profile_to_file path s = write_file path (profile_to_string s)

let profile_of_file path = profile_of_string (read_file path)
