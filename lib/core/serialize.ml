module Gncg_error = Gncg_util.Gncg_error

let ( let* ) = Result.bind

let float_to_string x =
  if x = Float.infinity then "inf" else Printf.sprintf "%.17g" x

let host_to_string host =
  let n = Host.n host in
  let buf = Buffer.create (16 * n * n) in
  Buffer.add_string buf "gncg-host 1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf (Printf.sprintf "alpha %s\n" (float_to_string (Host.alpha host)));
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = Host.weight host u v in
      if Float.is_finite w then
        Buffer.add_string buf (Printf.sprintf "w %d %d %s\n" u v (float_to_string w))
    done
  done;
  Buffer.contents buf

let profile_to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "gncg-profile 1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Strategy.n s));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "buy %d %d\n" u v))
    (Strategy.owned_edges s);
  Buffer.contents buf

(* --- result-returning parsers ------------------------------------------ *)

(* Lines keep their 1-based number; tokens keep their 1-based column
   within the (right-trimmed) line, so every rejection is located. *)
let lines_of s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let fields l =
  let n = String.length l in
  let rec go i acc =
    if i >= n then List.rev acc
    else if l.[i] = ' ' then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && l.[!j] <> ' ' do
        incr j
      done;
      go !j ((i + 1, String.sub l i (!j - i)) :: acc)
    end
  in
  go 0 []

let perr ~context ?where fmt = Gncg_error.failf ?where ~context Gncg_error.Parse fmt

let float_of_token ~context line (col, tok) =
  match tok with
  | "inf" -> Ok Float.infinity
  | _ -> (
    match float_of_string_opt tok with
    | Some x -> Ok x
    | None ->
      perr ~context ~where:(Gncg_error.Line_column (line, col)) "bad number %S" tok)

let expect_header ~context lines magic =
  match lines with
  | (ln, first) :: rest -> (
    match fields first with
    | [ (_, m); (_, "1") ] when m = magic -> Ok rest
    | _ -> perr ~context ~where:(Gncg_error.Line ln) "expected %S header" magic)
  | [] -> perr ~context "empty input"

let parse_n ~context lines =
  match lines with
  | (ln, l) :: rest -> (
    match fields l with
    | [ (_, "n"); (col, v) ] -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok (n, rest)
      | _ -> perr ~context ~where:(Gncg_error.Line_column (ln, col)) "bad size %S" v)
    | _ -> perr ~context ~where:(Gncg_error.Line ln) "expected a size line")
  | [] -> perr ~context "missing size"

let host_of_string_result ?validate s =
  let context = "Serialize.host_of_string" in
  let* lines = expect_header ~context (lines_of s) "gncg-host" in
  let* n, lines = parse_n ~context lines in
  let* alpha, lines =
    match lines with
    | (ln, l) :: rest -> (
      match fields l with
      | [ (_, "alpha"); tok ] ->
        let* a = float_of_token ~context ln tok in
        let* () =
          if Float.is_nan a then
            Gncg_error.fail ~where:(Gncg_error.Line ln) ~context Gncg_error.Not_finite
              "alpha is NaN"
          else if a <= 0.0 || a = Float.infinity then
            Gncg_error.failf ~where:(Gncg_error.Line ln) ~context Gncg_error.Negative
              "alpha %g must be positive and finite" a
          else Ok ()
        in
        Ok (a, rest)
      | _ -> perr ~context ~where:(Gncg_error.Line ln) "expected an alpha line")
    | [] -> perr ~context "missing alpha"
  in
  let w = Array.make_matrix n n Float.infinity in
  for i = 0 to n - 1 do
    w.(i).(i) <- 0.0
  done;
  let* () =
    List.fold_left
      (fun acc (ln, l) ->
        let* () = acc in
        match fields l with
        | [ (_, "w"); (_, u); (_, v); tok ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v when u >= 0 && v >= 0 && u < n && v < n && u <> v ->
            let* x = float_of_token ~context ln tok in
            let* () =
              if Float.is_nan x then
                Gncg_error.fail
                  ~where:(Gncg_error.Line ln)
                  ~context Gncg_error.Not_finite "NaN weight"
              else if x < 0.0 then
                Gncg_error.failf
                  ~where:(Gncg_error.Line ln)
                  ~context Gncg_error.Negative "weight %g < 0" x
              else Ok ()
            in
            w.(u).(v) <- x;
            w.(v).(u) <- x;
            Ok ()
          | _ -> perr ~context ~where:(Gncg_error.Line ln) "bad pair %S %S" u v)
        | _ -> perr ~context ~where:(Gncg_error.Line ln) "unexpected line: %s" l)
      (Ok ()) lines
  in
  let host = Host.make ~alpha (Gncg_metric.Metric.of_matrix w) in
  let* () =
    let validate =
      match validate with Some v -> v | None -> Gncg_error.strict_validation ()
    in
    (* Loads must accept every family the format stores, including the
       non-metric general and 1-∞ hosts: validate weights sanity and
       finite-path connectivity, not the triangle inequality. *)
    if validate then Host.validate ~require_metric:false host else Ok ()
  in
  Ok host

let profile_of_string_result str =
  let context = "Serialize.profile_of_string" in
  let* lines = expect_header ~context (lines_of str) "gncg-profile" in
  let* n, lines = parse_n ~context lines in
  List.fold_left
    (fun acc (ln, l) ->
      let* s = acc in
      match fields l with
      | [ (_, "buy"); (_, u); (_, v) ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v when u >= 0 && v >= 0 && u < n && v < n && u <> v ->
          Ok (Strategy.buy s u v)
        | _ -> perr ~context ~where:(Gncg_error.Line ln) "bad purchase %S %S" u v)
      | (_, "buy") :: _ ->
        perr ~context ~where:(Gncg_error.Line ln) "truncated purchase: %s" l
      | _ -> perr ~context ~where:(Gncg_error.Line ln) "unexpected line: %s" l)
    (Ok (Strategy.empty n)) lines

(* --- files -------------------------------------------------------------- *)

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file_result ~context path =
  match read_file path with
  | s -> Ok s
  | exception Sys_error msg ->
    Gncg_error.fail ~where:(Gncg_error.File path) ~context Gncg_error.Io msg

let host_of_file_result ?validate path =
  let* s = read_file_result ~context:"Serialize.host_of_file" path in
  Result.map_error (Gncg_error.in_file path) (host_of_string_result ?validate s)

let profile_of_file_result path =
  let* s = read_file_result ~context:"Serialize.profile_of_file" path in
  Result.map_error (Gncg_error.in_file path) (profile_of_string_result s)

let host_to_file path host = write_file path (host_to_string host)

let profile_to_file path s = write_file path (profile_to_string s)

(* BEGIN legacy raising aliases *)
(* Pre-PR-5 entry points: same parsers, but a malformed input raises
   [Gncg_error.Error] (carrying the structured value the [_result] forms
   return) instead of the historical stringly [Failure _]. *)
let host_of_string s = Gncg_error.get_ok (host_of_string_result s)

let profile_of_string s = Gncg_error.get_ok (profile_of_string_result s)

let host_of_file path = Gncg_error.get_ok (host_of_file_result path)

let profile_of_file path = Gncg_error.get_ok (profile_of_file_result path)
(* END legacy raising aliases *)
