(** Sequential response dynamics.

    Agents move one at a time.  The paper shows these dynamics need not
    converge (no finite improvement property — Cor. 1, Thms. 14, 17):
    the engine therefore detects both convergence and revisited profiles
    (cycles). *)

type rule =
  | Best_response  (** exact best response (branch-and-bound) *)
  | Greedy_response  (** best single add/delete/swap *)
  | Add_only  (** best single add *)
  | Random_improving of Gncg_util.Prng.t
      (** a uniformly random improving single-edge move — the most
          permissive improving dynamics, used when hunting for the
          improving-move cycles of Thms. 14 and 17 *)

type scheduler =
  | Round_robin
  | Random_order of Gncg_util.Prng.t
      (** a fresh uniformly random agent each activation *)

type step = { mover : int; before_cost : float; after_cost : float }

(** Instrumentation filled by {!run} when passed in:
    [evaluations] counts single-agent evaluator calls, [moves] accepted
    moves, and [skips] agents whose idle verdict was preserved across an
    accepted move by the dirty-row analysis (incremental evaluator only)
    instead of being re-evaluated.

    Subsumed by the observability layer: {!run} now feeds the same
    accounting into the [dynamics.*] counters of [Gncg_obs.Metric]
    (enabled via [--profile] / [Gncg_obs.Obs.set_profiling]), which
    also survive across runs and merge across domains.  The record stays
    for callers that want per-run numbers without global state. *)
type metrics = {
  mutable evaluations : int;
  mutable moves : int;
  mutable skips : int;
}

val fresh_metrics : unit -> metrics
[@@ocaml.deprecated
  "Use the dynamics.* counters of Gncg_obs (see docs/OBSERVABILITY.md), or build the \
   record literally if you need per-run numbers."]

type outcome =
  | Converged of { profile : Strategy.t; rounds : int; steps : step list }
      (** No agent can improve (w.r.t. the rule): a NE / GE / AE. *)
  | Cycle of { profiles : Strategy.t list; steps : step list }
      (** The profile sequence revisited a previous state, certifying an
          improving-move cycle in the sense of the paper (a sequence of
          improving moves starting and ending at the same strategy
          vector) — every recorded transition strictly improves its mover,
          so a revisit is a certificate under any scheduler.  [profiles]
          lists the cycle states in order; the first and last entries are
          equal. *)
  | Out_of_steps of { profile : Strategy.t; steps : step list }

val run :
  ?max_steps:int ->
  ?evaluator:Evaluator.t ->
  ?metrics:metrics ->
  rule:rule ->
  scheduler:scheduler ->
  Host.t ->
  Strategy.t ->
  outcome
(** Runs until convergence, cycle detection or [max_steps] (default 10_000)
    agent activations.  Convergence means a full pass over all agents
    without an improving move.  [evaluator] selects the single-move engine
    for [Greedy_response]/[Add_only]:

    - [`Reference] (default): rebuild + Dijkstra per candidate — obviously
      correct;
    - [`Fast]: the stateless incremental evaluation of [Fast_response];
    - [`Incremental]: one [Net_state] threaded through the whole run — the
      network and its full distance matrix are maintained across steps, so
      a step costs O(n²) instead of a rebuild plus Dijkstra per candidate.
      After an accepted move the engine drains the state's change report
      and preserves the idle verdict of every agent it can prove
      unaffected (row-local verdict, own row unchanged, no incident
      strategy pair modified, no changed row among its addable targets) —
      provably byte-identical to re-evaluating everyone, and the reason a
      step no longer costs a full rescan.

    All three are semantically equivalent (property-tested); tie-breaking
    may differ within float tolerance. *)

val deviation :
  ?evaluator:Evaluator.t ->
  rule ->
  Host.t ->
  Strategy.t ->
  int ->
  (Strategy.t * float) option
(** One improving deviation for an agent under the rule, with its gain:
    the building block of [run], exposed for tests and tools.  Stateless:
    [`Incremental] behaves like [`Fast] here (the threaded state only
    exists inside [run]). *)
