(** Response dynamics.

    Agents move one at a time in an activation order fixed by the
    scheduler.  The paper shows these dynamics need not converge (no
    finite improvement property — Cor. 1, Thms. 14, 17): the engine
    therefore detects both convergence and revisited profiles (cycles).

    The activation order is sequential semantics; {e executing} it need
    not be: the [Speculative] engine evaluates upcoming activations
    concurrently across OCaml 5 domains and commits them in slot order,
    aborting any speculation invalidated by an earlier commit — the
    outcome is byte-identical to [Sequential] under the same scheduler
    (see {!Engine} and docs/ALGORITHMS.md, "Speculative commit
    protocol"). *)

type rule =
  | Best_response  (** exact best response (branch-and-bound) *)
  | Greedy_response  (** best single add/delete/swap *)
  | Add_only  (** best single add *)
  | Random_improving of Gncg_util.Prng.t
      (** a uniformly random improving single-edge move — the most
          permissive improving dynamics, used when hunting for the
          improving-move cycles of Thms. 14 and 17 *)

type scheduler =
  | Round_robin
  | Random_order of Gncg_util.Prng.t
      (** a fresh uniformly random agent each activation *)

type step = { mover : int; before_cost : float; after_cost : float }

(** Instrumentation filled by {!run} when passed in via {!Config.make}:
    [evaluations] counts single-agent evaluator calls, [moves] accepted
    moves, and [skips] agents whose idle verdict was preserved across an
    accepted move by the dirty-row analysis (incremental evaluator only)
    instead of being re-evaluated.

    Subsumed by the observability layer: {!run} feeds the same
    accounting into the [dynamics.*] counters of [Gncg_obs.Metric]
    (enabled via [--profile] / [Gncg_obs.Obs.set_profiling]), which
    also survive across runs and merge across domains.  The record stays
    for callers that want per-run numbers without global state; build it
    literally ([{ evaluations = 0; moves = 0; skips = 0 }]). *)
type metrics = {
  mutable evaluations : int;
  mutable moves : int;
  mutable skips : int;
}

type outcome =
  | Converged of { profile : Strategy.t; rounds : int; steps : step list }
      (** No agent can improve (w.r.t. the rule): a NE / GE / AE. *)
  | Cycle of { profiles : Strategy.t list; steps : step list }
      (** The profile sequence revisited a previous state, certifying an
          improving-move cycle in the sense of the paper (a sequence of
          improving moves starting and ending at the same strategy
          vector) — every recorded transition strictly improves its mover,
          so a revisit is a certificate under any scheduler.  [profiles]
          lists the cycle states in order; the first and last entries are
          equal. *)
  | Out_of_steps of { profile : Strategy.t; steps : step list }

(** How the activation loop executes.  Semantics are engine-independent:
    for any config, both engines produce byte-identical outcomes
    (property-tested in test_speculative). *)
module Engine : sig
  type t =
    | Sequential  (** one activation at a time, in schedule order *)
    | Speculative of { exec : Gncg_util.Exec.t; batch : int }
        (** Evaluate up to [batch] upcoming activations concurrently
            across the domains of [exec], then commit them in slot
            order; a speculation invalidated by an earlier commit of the
            batch (per the four-condition dirty-row rule) is aborted and
            re-evaluated inline.  [batch <= 0] means auto (4 × domain
            count).  Instrumented on the [dynamics.speculative_*]
            counters.  [Random_improving] degrades to [Sequential] (its
            rng draws happen inside the evaluation, so concurrent
            speculation would reorder the stream). *)

  val sequential : t

  val speculative : ?exec:Gncg_util.Exec.t -> ?batch:int -> unit -> t
  (** Defaults: [Exec.default] (all recommended domains), auto batch. *)

  val resolve_batch : exec:Gncg_util.Exec.t -> int -> int
  (** The effective batch size for a [batch] argument ([<= 0] → auto). *)

  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** ["sequential"] (or ["seq"]), ["speculative"],
      ["speculative:K"] (K domains), ["speculative:seq"] (single-domain
      execution of the speculative protocol — deterministic batching for
      tests), each optionally followed by [":batch=B"]. *)

  val pp : Format.formatter -> t -> unit
end

(** The engine configuration: what used to be a sprawl of optional
    arguments on [run].  Build one with {!Config.make}, override fields
    with [{ cfg with ... }]. *)
module Config : sig
  type t = {
    rule : rule;
    scheduler : scheduler;
    max_steps : int;
    evaluator : Evaluator.t;
    engine : Engine.t;
    metrics : metrics option;
  }

  val make :
    ?max_steps:int ->
    ?evaluator:Evaluator.t ->
    ?engine:Engine.t ->
    ?metrics:metrics ->
    rule ->
    scheduler ->
    t
  (** Defaults: [max_steps] 10_000, [evaluator] [`Reference], [engine]
      [Sequential], no metrics record. *)
end

val run : Config.t -> Host.t -> Strategy.t -> outcome
(** Runs until convergence, cycle detection or [Config.max_steps] agent
    activations.  Convergence means every agent has been observed idle
    since the last accepted move.  [Config.evaluator] selects the
    single-move engine for [Greedy_response]/[Add_only]:

    - [`Reference] (default): rebuild + Dijkstra per candidate — obviously
      correct;
    - [`Fast] / [`Stateless]: the stateless incremental evaluation of
      [Fast_response];
    - [`Incremental]: one [Net_state] threaded through the whole run — the
      network and its full distance matrix are maintained across steps, so
      a step costs O(n²) instead of a rebuild plus Dijkstra per candidate.
      After an accepted move the engine drains the state's change report
      and preserves the idle verdict of every agent it can prove
      unaffected (row-local verdict, own row unchanged, no incident
      strategy pair modified, no changed row among its addable targets) —
      provably byte-identical to re-evaluating everyone, and the reason a
      step no longer costs a full rescan.  Under the [Speculative] engine
      each domain owns a replica of the state, kept in sync by replaying
      committed moves.

    All evaluators are semantically equivalent (property-tested);
    tie-breaking may differ within float tolerance.  Engines are exactly
    equivalent: same [outcome], same [steps], byte-identical profiles. *)

val deviation :
  ?evaluator:Evaluator.t ->
  rule ->
  Host.t ->
  Strategy.t ->
  int ->
  (Strategy.t * float) option
(** One improving deviation for an agent under the rule, with its gain:
    the building block of [run], exposed for tests and tools.  Stateless:
    [`Incremental] is evaluated as [`Stateless] here (the threaded state
    only exists inside [run]) and the degradation is counted on the
    [dynamics.evaluator_degradations] counter — pass [`Stateless] to opt
    in explicitly. *)
