module Flt = Gncg_util.Flt

type instance = {
  open_cost : float array;
  service : float array array;
  forced_open : bool array;
}

let make ?forced_open ~open_cost ~service () =
  let nf = Array.length open_cost in
  if Array.length service <> nf then
    invalid_arg "Facility_location.make: service rows must match facilities";
  let nc = if nf = 0 then 0 else Array.length service.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> nc then invalid_arg "Facility_location.make: ragged service")
    service;
  let forced_open =
    match forced_open with
    | None -> Array.make nf false
    | Some f ->
      if Array.length f <> nf then invalid_arg "Facility_location.make: forced_open size";
      Array.copy f
  in
  { open_cost; service; forced_open }

let num_facilities inst = Array.length inst.open_cost

let num_clients inst =
  if num_facilities inst = 0 then 0 else Array.length inst.service.(0)

let cost inst open_set =
  let nf = num_facilities inst and nc = num_clients inst in
  if Array.length open_set <> nf then invalid_arg "Facility_location.cost: size";
  let ok_forced = ref true in
  for f = 0 to nf - 1 do
    if inst.forced_open.(f) && not open_set.(f) then ok_forced := false
  done;
  if not !ok_forced then Float.infinity
  else begin
    let total = ref 0.0 in
    for f = 0 to nf - 1 do
      if open_set.(f) then total := !total +. inst.open_cost.(f)
    done;
    for c = 0 to nc - 1 do
      let best = ref Float.infinity in
      for f = 0 to nf - 1 do
        if open_set.(f) && inst.service.(f).(c) < !best then best := inst.service.(f).(c)
      done;
      total := !total +. !best
    done;
    !total
  end

(* Per-client (best, second-best) open service costs: lets every single
   open/close/swap move be evaluated in O(clients). *)
type assignment = { best : float array; best_f : int array; second : float array }

let compute_assignment inst open_set =
  let nf = num_facilities inst and nc = num_clients inst in
  let best = Array.make nc Float.infinity in
  let best_f = Array.make nc (-1) in
  let second = Array.make nc Float.infinity in
  for f = 0 to nf - 1 do
    if open_set.(f) then
      for c = 0 to nc - 1 do
        let d = inst.service.(f).(c) in
        if d < best.(c) then begin
          second.(c) <- best.(c);
          best.(c) <- d;
          best_f.(c) <- f
        end
        else if d < second.(c) then second.(c) <- d
      done
  done;
  { best; best_f; second }

(* [a -. b] that treats two infinities of the same sign as equal: service
   costs may be infinite and inf -. inf would poison deltas with NaN. *)
let diff a b = if a = b then 0.0 else a -. b

let open_gain inst asg f =
  (* Cost delta of opening facility [f] (assumed closed): opening cost
     minus the per-client improvements. *)
  if not (Float.is_finite inst.open_cost.(f)) then Float.infinity
  else begin
    let nc = num_clients inst in
    let delta = ref inst.open_cost.(f) in
    for c = 0 to nc - 1 do
      let d = inst.service.(f).(c) in
      if d < asg.best.(c) then delta := !delta +. diff d asg.best.(c)
    done;
    !delta
  end

let close_gain inst asg f =
  (* Cost delta of closing facility [f] (assumed open): clients served by
     [f] fall back to their second-best facility. *)
  let nc = num_clients inst in
  let delta = ref (-.inst.open_cost.(f)) in
  for c = 0 to nc - 1 do
    if asg.best_f.(c) = f then delta := !delta +. diff asg.second.(c) asg.best.(c)
  done;
  !delta

let swap_gain inst asg f_out f_in =
  (* Close [f_out], open [f_in]: each client picks the best among
     (new facility, previous best if not f_out, previous second). *)
  if not (Float.is_finite inst.open_cost.(f_in)) then Float.infinity
  else begin
    let nc = num_clients inst in
    let delta = ref (inst.open_cost.(f_in) -. inst.open_cost.(f_out)) in
    for c = 0 to nc - 1 do
      let d_new = inst.service.(f_in).(c) in
      let d_before = asg.best.(c) in
      let d_after =
        if asg.best_f.(c) = f_out then Float.min d_new asg.second.(c)
        else Float.min d_new d_before
      in
      delta := !delta +. diff d_after d_before
    done;
    !delta
  end

let improve_step inst open_set =
  let nf = num_facilities inst in
  let asg = compute_assignment inst open_set in
  let current = cost inst open_set in
  let tol = Flt.eps *. Float.max 1.0 (Float.abs (if Float.is_finite current then current else 1.0)) in
  let best_delta = ref 0.0 in
  let best_move = ref None in
  let consider delta mv = if delta < !best_delta -. tol then begin best_delta := delta; best_move := Some mv end in
  for f = 0 to nf - 1 do
    if not open_set.(f) then consider (open_gain inst asg f) (`Open f)
    else if not inst.forced_open.(f) then consider (close_gain inst asg f) (`Close f)
  done;
  for f_out = 0 to nf - 1 do
    if open_set.(f_out) && not inst.forced_open.(f_out) then
      for f_in = 0 to nf - 1 do
        if not open_set.(f_in) then consider (swap_gain inst asg f_out f_in) (`Swap (f_out, f_in))
      done
  done;
  match !best_move with
  | None -> None
  | Some mv ->
    let next = Array.copy open_set in
    (match mv with
    | `Open f -> next.(f) <- true
    | `Close f -> next.(f) <- false
    | `Swap (f_out, f_in) ->
      next.(f_out) <- false;
      next.(f_in) <- true);
    Some (next, cost inst next)

let local_search inst =
  let nf = num_facilities inst in
  (* Start from everything affordable open (forced facilities included even
     when unaffordable, so infeasibility surfaces as an infinite cost). *)
  let open_set =
    Array.init nf (fun f -> Float.is_finite inst.open_cost.(f) || inst.forced_open.(f))
  in
  let rec loop open_set c =
    match improve_step inst open_set with
    | Some (next, c') when c' < c -. Flt.eps -> loop next c'
    | _ -> (open_set, c)
  in
  loop open_set (cost inst open_set)

let solve_exact inst =
  let nf = num_facilities inst and nc = num_clients inst in
  if nf = 0 then ([||], if nc = 0 then 0.0 else Float.infinity)
  else begin
    (* Suffix minima of service cost per client over facilities >= i:
       the admissible-heuristic part of the branch-and-bound lower bound. *)
    let suffix = Array.make_matrix (nf + 1) nc Float.infinity in
    for f = nf - 1 downto 0 do
      for c = 0 to nc - 1 do
        suffix.(f).(c) <- Float.min inst.service.(f).(c) suffix.(f + 1).(c)
      done
    done;
    let incumbent_set, incumbent_cost = local_search inst in
    let best_set = ref (Array.copy incumbent_set) in
    let best_cost = ref incumbent_cost in
    let open_set = Array.make nf false in
    let best_served = Array.make nc Float.infinity in
    (* DFS over facility indices; [opened] is the running opening cost and
       [best_served] the per-client best over currently-opened ones. *)
    let rec dfs f opened =
      if f = nf then begin
        let total = ref opened in
        for c = 0 to nc - 1 do
          total := !total +. best_served.(c)
        done;
        if !total < !best_cost -. Flt.eps then begin
          best_cost := !total;
          best_set := Array.copy open_set
        end
      end
      else begin
        let bound = ref opened in
        for c = 0 to nc - 1 do
          bound := !bound +. Float.min best_served.(c) suffix.(f).(c)
        done;
        if !bound < !best_cost -. Flt.eps then begin
          (* Branch 1: open facility f (unless its cost already dooms us). *)
          if inst.open_cost.(f) < Float.infinity then begin
            let saved = Array.copy best_served in
            open_set.(f) <- true;
            for c = 0 to nc - 1 do
              if inst.service.(f).(c) < best_served.(c) then
                best_served.(c) <- inst.service.(f).(c)
            done;
            dfs (f + 1) (opened +. inst.open_cost.(f));
            open_set.(f) <- false;
            Array.blit saved 0 best_served 0 nc
          end;
          (* Branch 2: keep f closed (forbidden for forced facilities). *)
          if not inst.forced_open.(f) then dfs (f + 1) opened
        end
      end
    in
    dfs 0 0.0;
    (!best_set, !best_cost)
  end
