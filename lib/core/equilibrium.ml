module Flt = Gncg_util.Flt

type kind = NE | GE | AE

let kinds_of = function AE -> [ `Add ] | GE -> [ `Add; `Delete; `Swap ] | NE -> []

let best_deviation_cost ?(oracle = `Branch_and_bound) kind host s u =
  match kind with
  | NE -> (
    match oracle with
    | `Branch_and_bound -> snd (Best_response.exact host s u)
    | `Enumerate -> snd (Best_response.exact_enum host s u))
  | GE | AE -> Greedy.best_single_move_cost ~kinds:(kinds_of kind) host s ~agent:u

let agent_happy ?oracle kind host s u =
  let current = Cost.agent_cost host s u in
  let best = best_deviation_cost ?oracle kind host s u in
  Flt.le current best

let for_all_agents f s =
  let n = Strategy.n s in
  let rec go u = u >= n || (f u && go (u + 1)) in
  go 0

let is_ae host s = for_all_agents (agent_happy AE host s) s

let is_ge host s = for_all_agents (agent_happy GE host s) s

let is_ne ?oracle host s = for_all_agents (agent_happy ?oracle NE host s) s

let is_equilibrium kind host s =
  match kind with AE -> is_ae host s | GE -> is_ge host s | NE -> is_ne host s

let agent_approx_factor kind host s u =
  let current = Cost.agent_cost host s u in
  let best = best_deviation_cost kind host s u in
  if current = best then 1.0
  else if best <= 0.0 then if current <= 0.0 then 1.0 else Float.infinity
  else current /. best

let approx_factor kind host s =
  let n = Strategy.n s in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    worst := Float.max !worst (agent_approx_factor kind host s u)
  done;
  !worst

let is_beta kind ~beta host s =
  if beta < 1.0 then invalid_arg "Equilibrium.is_beta: beta < 1";
  Flt.le (approx_factor kind host s) beta

let unhappy_agents kind host s =
  let n = Strategy.n s in
  List.filter (fun u -> not (agent_happy kind host s u)) (List.init n (fun u -> u))

type grievance = {
  agent : int;
  current_cost : float;
  best_cost : float;
  deviation : Strategy.ISet.t option;
}

let certify kind host s =
  let n = Strategy.n s in
  let grievances = ref [] in
  for u = 0 to n - 1 do
    let current = Cost.agent_cost host s u in
    let best, deviation =
      match kind with
      | NE ->
        let set, cost = Best_response.exact host s u in
        (cost, Some set)
      | GE | AE -> (Greedy.best_single_move_cost ~kinds:(kinds_of kind) host s ~agent:u, None)
    in
    if Flt.lt best current then
      grievances := { agent = u; current_cost = current; best_cost = best; deviation } :: !grievances
  done;
  match !grievances with
  | [] -> Ok ()
  | gs ->
    Error
      (List.sort
         (fun a b ->
           Float.compare (b.current_cost -. b.best_cost) (a.current_cost -. a.best_cost))
         gs)

let pp_grievance fmt g =
  Format.fprintf fmt "agent %d pays %.4f but could pay %.4f" g.agent g.current_cost
    g.best_cost;
  match g.deviation with
  | Some set ->
    Format.fprintf fmt " by buying {%s}"
      (String.concat ", " (List.map string_of_int (Strategy.ISet.elements set)))
  | None -> ()
