module Flt = Gncg_util.Flt
module Exec = Gncg_util.Exec

type kind = NE | GE | AE

(* One span around each stateless whole-profile scan: the only probe of
   the CLI `check`/`construct` paths, which never touch the stateful
   engines.  Disabled cost: two flag reads per scan. *)
let p_check = Gncg_obs.Span.probe "equilibrium.check"

let kinds_of = function AE -> [ `Add ] | GE -> [ `Add; `Delete; `Swap ] | NE -> []

let best_deviation_cost ?(oracle = `Branch_and_bound) ?graph kind host s u =
  match kind with
  | NE -> (
    match oracle with
    | `Branch_and_bound -> snd (Best_response.exact host s u)
    | `Enumerate -> snd (Best_response.exact_enum host s u))
  | GE | AE -> Greedy.best_single_move_cost ~kinds:(kinds_of kind) ?graph host s ~agent:u

let agent_happy ?oracle kind host s u =
  (* One network build shared by the incumbent cost and the move scan. *)
  let graph = Network.graph host s in
  let current = Cost.agent_cost ~graph host s u in
  let best = best_deviation_cost ?oracle ~graph kind host s u in
  Flt.le current best

(* The per-agent check is pure on immutable host/profile data, so under
   [Par] agents fan out across domains; the boolean checks early-exit as
   soon as any domain finds an unhappy agent. *)

let is_ae ?(exec = Exec.Seq) host s =
  Gncg_obs.Span.with_probe p_check (fun () ->
      Exec.for_all ~exec (Strategy.n s) (agent_happy AE host s))

let is_ge ?(exec = Exec.Seq) host s =
  Gncg_obs.Span.with_probe p_check (fun () ->
      Exec.for_all ~exec (Strategy.n s) (agent_happy GE host s))

let is_ne ?oracle ?(exec = Exec.Seq) host s =
  Gncg_obs.Span.with_probe p_check (fun () ->
      Exec.for_all ~exec (Strategy.n s) (agent_happy ?oracle NE host s))

let is_equilibrium ?exec kind host s =
  match kind with
  | AE -> is_ae ?exec host s
  | GE -> is_ge ?exec host s
  | NE -> is_ne ?exec host s

let agent_approx_factor kind host s u =
  let graph = Network.graph host s in
  let current = Cost.agent_cost ~graph host s u in
  let best = best_deviation_cost ~graph kind host s u in
  if Flt.approx_eq current best then 1.0
  else if best <= 0.0 then if current <= 0.0 then 1.0 else Float.infinity
  else current /. best

let approx_factor kind host s =
  let n = Strategy.n s in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    worst := Float.max !worst (agent_approx_factor kind host s u)
  done;
  !worst

let is_beta kind ~beta host s =
  if beta < 1.0 then invalid_arg "Equilibrium.is_beta: beta < 1";
  Flt.le (approx_factor kind host s) beta

let unhappy_agents ?(exec = Exec.Seq) kind host s =
  Gncg_obs.Span.with_probe p_check @@ fun () ->
  let n = Strategy.n s in
  match exec with
  | Exec.Seq ->
    List.filter (fun u -> not (agent_happy kind host s u)) (List.init n (fun u -> u))
  | _ ->
    let happy = Exec.init ~exec n (agent_happy kind host s) in
    List.filter (fun u -> not happy.(u)) (List.init n (fun u -> u))

type grievance = {
  agent : int;
  current_cost : float;
  best_cost : float;
  deviation : Strategy.ISet.t option;
}

let agent_grievance kind host s u =
  let graph = Network.graph host s in
  let current = Cost.agent_cost ~graph host s u in
  let best, deviation =
    match kind with
    | NE ->
      let set, cost = Best_response.exact host s u in
      (cost, Some set)
    | GE | AE ->
      (Greedy.best_single_move_cost ~kinds:(kinds_of kind) ~graph host s ~agent:u, None)
  in
  if Flt.lt best current then
    Some { agent = u; current_cost = current; best_cost = best; deviation }
  else None

let verdict_of_grievances = function
  | [] -> Ok ()
  | gs ->
    Error
      (List.sort
         (fun a b ->
           Float.compare (b.current_cost -. b.best_cost) (a.current_cost -. a.best_cost))
         gs)

let certify ?(exec = Exec.Seq) kind host s =
  Gncg_obs.Span.with_probe p_check @@ fun () ->
  let n = Strategy.n s in
  match exec with
  | Exec.Seq ->
    verdict_of_grievances
      (List.filter_map (agent_grievance kind host s) (List.init n (fun u -> u)))
  | _ ->
    let per_agent = Exec.init ~exec n (agent_grievance kind host s) in
    verdict_of_grievances (List.filter_map Fun.id (Array.to_list per_agent))

let pp_grievance fmt g =
  Format.fprintf fmt "agent %d pays %.4f but could pay %.4f" g.agent g.current_cost
    g.best_cost;
  match g.deviation with
  | Some set ->
    Format.fprintf fmt " by buying {%s}"
      (String.concat ", " (List.map string_of_int (Strategy.ISet.elements set)))
  | None -> ()

(* --- cached equilibrium scanning over a live Net_state --- *)

module Tracker = struct
  module Changed_rows = Gncg_graph.Changed_rows
  module Metric = Gncg_obs.Metric
  module Span = Gncg_obs.Span

  (* Layer-3 probes: re-evaluation vs skip accounting of the cached
     scans, and the scan/refresh spans. *)
  let c_reevals = Metric.Counter.make "equilibrium.tracker_reevals"
  let c_skips = Metric.Counter.make "equilibrium.tracker_skips"
  let p_scan = Span.probe "equilibrium.scan"
  let p_refresh = Span.probe "equilibrium.refresh"

  type t = {
    kind : kind;
    evaluator : Evaluator.t;
    st : Net_state.t;
    happy : Bytes.t;    (* cached per-agent verdict, '\001' = happy *)
    rowlocal : Bytes.t; (* verdict decided with zero what-if Dijkstras *)
    mutable last_reevaluated : int;
  }

  (* The non-incremental evaluators never prove row-locality, so their
     verdicts are re-derived on every refresh — correct (the dirty rule
     treats non-row-local as always dirty), just without the skipping. *)
  let evaluate t u =
    let happy, rl =
      match t.evaluator with
      | `Incremental ->
        let best, rl =
          Fast_response.best_move_state_verdict ~kinds:(kinds_of t.kind) t.st ~agent:u
        in
        (best = None, rl)
      | `Fast | `Stateless ->
        let best =
          Fast_response.best_move ~kinds:(kinds_of t.kind) (Net_state.host t.st)
            (Net_state.profile t.st) ~agent:u
        in
        (best = None, false)
      | `Reference ->
        let host = Net_state.host t.st and s = Net_state.profile t.st in
        let graph = Network.graph host s in
        let current = Cost.agent_cost ~graph host s u in
        let best =
          Greedy.best_single_move_cost ~kinds:(kinds_of t.kind) ~graph host s ~agent:u
        in
        (Flt.le current best, false)
    in
    Bytes.unsafe_set t.happy u (if happy then '\001' else '\000');
    Bytes.unsafe_set t.rowlocal u (if rl then '\001' else '\000')

  let create ?(evaluator = `Incremental) kind st =
    (match kind with
    | NE -> invalid_arg "Equilibrium.Tracker.create: NE needs the best-response oracle"
    | GE | AE -> ());
    let n = Strategy.n (Net_state.profile st) in
    (* Adopt whatever already accumulated in the state: the full scan
       below makes it moot. *)
    ignore (Net_state.drain_changes st);
    let t =
      {
        kind;
        evaluator;
        st;
        happy = Bytes.make n '\000';
        rowlocal = Bytes.make n '\000';
        last_reevaluated = n;
      }
    in
    Span.with_probe p_scan (fun () ->
        for u = 0 to n - 1 do
          evaluate t u
        done);
    Metric.Counter.add c_reevals n;
    t

  let state t = t.st

  let kind t = t.kind

  let evaluator t = t.evaluator

  (* Same preservation rule as Dynamics.run: a cached verdict — happy or
     unhappy — is a pure replay of its inputs when it was row-local and
     (a) the agent's own distance row is unchanged, (b) no strategy pair
     incident to the agent was modified, and (c) no changed row belongs
     to one of its addable targets.  Everything else is re-evaluated;
     the refreshed verdicts are byte-identical to a full rescan. *)
  let refresh t =
    Span.with_probe p_refresh (fun () ->
        let n = Strategy.n (Net_state.profile t.st) in
        let ch = Net_state.drain_changes t.st in
        let host = Net_state.host t.st in
        let s = Net_state.profile t.st in
        let dirty u =
          Bytes.unsafe_get t.rowlocal u = '\000'
          || Changed_rows.mem ch.Net_state.rows u
          || List.exists (fun (x, y) -> x = u || y = u) ch.Net_state.pairs
          ||
          let hit = ref false in
          Changed_rows.iter
            (fun v -> if (not !hit) && Move.addable host s ~agent:u v then hit := true)
            ch.Net_state.rows;
          !hit
        in
        let reevaluated = ref 0 in
        for u = 0 to n - 1 do
          if ch.Net_state.full || dirty u then begin
            evaluate t u;
            incr reevaluated
          end
          else Metric.Counter.incr c_skips
        done;
        Metric.Counter.add c_reevals !reevaluated;
        t.last_reevaluated <- !reevaluated)

  let last_reevaluated t = t.last_reevaluated

  let is_equilibrium t =
    let n = Bytes.length t.happy in
    let rec go u = u >= n || (Bytes.unsafe_get t.happy u = '\001' && go (u + 1)) in
    go 0

  let unhappy t =
    let n = Bytes.length t.happy in
    List.filter (fun u -> Bytes.get t.happy u = '\000') (List.init n (fun u -> u))
end
