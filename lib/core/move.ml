module ISet = Strategy.ISet

type t = Add of int | Delete of int | Swap of int * int

let apply s ~agent = function
  | Add v ->
    if Strategy.owns s agent v then invalid_arg "Move.apply: already owned";
    Strategy.buy s agent v
  | Delete v ->
    if not (Strategy.owns s agent v) then invalid_arg "Move.apply: not owned";
    Strategy.sell s agent v
  | Swap (old_t, new_t) ->
    if not (Strategy.owns s agent old_t) then invalid_arg "Move.apply: swap of unowned edge";
    if Strategy.owns s agent new_t then invalid_arg "Move.apply: swap onto owned edge";
    if old_t = new_t then invalid_arg "Move.apply: trivial swap";
    Strategy.buy (Strategy.sell s agent old_t) agent new_t

let addable host s ~agent v =
  v <> agent
  && (not (Strategy.edge_in_network s agent v))
  && Float.is_finite (Host.weight host agent v)

let candidates ?(kinds = [ `Add; `Delete; `Swap ]) host s ~agent =
  let n = Strategy.n s in
  let owned = Strategy.strategy s agent in
  let addable = List.filter (addable host s ~agent) (List.init n (fun v -> v)) in
  let adds = if List.mem `Add kinds then List.map (fun v -> Add v) addable else [] in
  let deletes =
    if List.mem `Delete kinds then List.map (fun v -> Delete v) (ISet.elements owned)
    else []
  in
  let swaps =
    if List.mem `Swap kinds then
      List.concat_map
        (fun old_t -> List.map (fun new_t -> Swap (old_t, new_t)) addable)
        (ISet.elements owned)
    else []
  in
  adds @ deletes @ swaps

let pp fmt = function
  | Add v -> Format.fprintf fmt "add->%d" v
  | Delete v -> Format.fprintf fmt "del->%d" v
  | Swap (a, b) -> Format.fprintf fmt "swap %d=>%d" a b
