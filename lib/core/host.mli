(** A game instance: a host space together with the edge-price parameter α.

    The price of building edge [(u,v)] is [alpha * w(u,v)]; using it costs
    its weight.  α trades off building cost against distance cost. *)

type t

val make : ?geometry:Gncg_metric.Geometry.t -> alpha:float -> Gncg_metric.Metric.t -> t
(** Requires [alpha > 0].  An attached [?geometry] records the implicit
    structure (tree / point set) the metric was tabulated from, letting
    {!Net_state} select an oracle distance backend that never
    materializes the O(n²) matrix; sizes must agree. *)

val metric : t -> Gncg_metric.Metric.t

val alpha : t -> float

val geometry : t -> Gncg_metric.Geometry.t option
(** The implicit description, when the host was built from one. *)

val n : t -> int

val weight : t -> int -> int -> float
(** Host weight of the pair. *)

val edge_price : t -> int -> int -> float
(** [alpha * weight]. *)

val with_alpha : float -> t -> t
(** Same host space, different α. *)

val validate :
  ?tol:float ->
  ?require_metric:bool ->
  ?require_connected:bool ->
  t ->
  (unit, Gncg_util.Gncg_error.t) result
(** α finite and positive, then {!Gncg_metric.Metric.validate} on the
    host space with the same options — the typed first-failure check
    behind [--strict-validate]. *)
