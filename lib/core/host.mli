(** A game instance: a host space together with the edge-price parameter α.

    The price of building edge [(u,v)] is [alpha * w(u,v)]; using it costs
    its weight.  α trades off building cost against distance cost. *)

type t

val make : alpha:float -> Gncg_metric.Metric.t -> t
(** Requires [alpha > 0]. *)

val metric : t -> Gncg_metric.Metric.t

val alpha : t -> float

val n : t -> int

val weight : t -> int -> int -> float
(** Host weight of the pair. *)

val edge_price : t -> int -> int -> float
(** [alpha * weight]. *)

val with_alpha : float -> t -> t
(** Same host space, different α. *)

val validate :
  ?tol:float ->
  ?require_metric:bool ->
  ?require_connected:bool ->
  t ->
  (unit, Gncg_util.Gncg_error.t) result
(** α finite and positive, then {!Gncg_metric.Metric.validate} on the
    host space with the same options — the typed first-failure check
    behind [--strict-validate]. *)
