let social_ratio ~ne_cost ~opt_cost =
  if opt_cost <= 0.0 then invalid_arg "Quality.social_ratio: non-positive optimum";
  ne_cost /. opt_cost

let metric_upper alpha = (alpha +. 2.0) /. 2.0

let general_upper alpha =
  let b = metric_upper alpha in
  b *. b

let onetwo_mid_poa alpha = 3.0 /. (alpha +. 2.0)

let onetwo_alpha_one_poa = 1.5

let fourpoint_lower alpha =
  let a = alpha in
  ((3.0 *. a *. a *. a) +. (24.0 *. a *. a) +. (40.0 *. a) +. 24.0)
  /. ((a *. a *. a) +. (10.0 *. a *. a) +. (32.0 *. a) +. 24.0)

let cross_lower ~alpha ~d =
  if d < 1 then invalid_arg "Quality.cross_lower: d < 1";
  1.0 +. (alpha /. (2.0 +. (alpha /. float_of_int ((2 * d) - 1))))

let ae_ge_factor alpha = alpha +. 1.0

let ge_ne_factor = 3.0

let ae_ne_factor alpha = 3.0 *. (alpha +. 1.0)

let ae_spanner_stretch alpha = alpha +. 1.0

let opt_spanner_stretch alpha = (alpha /. 2.0) +. 1.0

let host_stretch host g =
  Gncg_graph.Spanner.stretch ~host:(fun u v -> Host.weight host u v) g
