(** Minimum-weight 3/2-spanners of 1-2 host graphs and their Nash
    orientations (Lemma 5, Thm. 5).

    For 1/2 <= α <= 1, a minimum-weight 3/2-spanner of a 1-2 host contains
    all the 1-edges, has diameter at most 3, and admits an edge-ownership
    assignment that is a Nash equilibrium. *)

val is_three_half_spanner : Host.t -> Gncg_graph.Wgraph.t -> bool
(** Specialized 1-2 check: every 1-edge present, and every absent 2-edge's
    endpoints at network distance at most 3. *)

val min_weight_spanner_exact : ?max_two_edges:int -> Host.t -> Gncg_graph.Wgraph.t
(** Minimum-weight 3/2-spanner by enumeration over 2-edge subsets (all
    1-edges are forced by Lemma 5).  Refuses more than [max_two_edges]
    (default 16) candidate 2-edges. *)

val min_weight_spanner_heuristic : Host.t -> Gncg_graph.Wgraph.t
(** All 1-edges plus a greedily minimized set of 2-edges. *)

val nash_ownership : Host.t -> Gncg_graph.Wgraph.t -> Strategy.t option
(** Search for an ownership assignment of the network's edges that is a
    Nash equilibrium (Thm. 5 guarantees one exists when the network is a
    minimum-weight 3/2-spanner and 1/2 <= α <= 1).  Exponential in the
    number of 2-edges; [None] when no assignment works. *)
