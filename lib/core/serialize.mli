(** Plain-text serialization of game instances and strategy profiles.

    The format is line-oriented and stable, so experiment artifacts can be
    saved, diffed and replayed:

    {v
    gncg-host 1
    n 4
    alpha 2.5
    w 0 1 1.5
    w 0 2 inf
    ...
    v}

    Every finite pair appears once ([u < v]); omitted pairs default to
    [inf].  Profiles:

    {v
    gncg-profile 1
    n 4
    buy 0 2
    buy 3 1
    v} *)

val host_to_string : Host.t -> string

val host_of_string : string -> Host.t
(** Raises [Failure] with a line-precise message on malformed input. *)

val profile_to_string : Strategy.t -> string

val profile_of_string : string -> Strategy.t

val host_to_file : string -> Host.t -> unit

val host_of_file : string -> Host.t

val profile_to_file : string -> Strategy.t -> unit

val profile_of_file : string -> Strategy.t
