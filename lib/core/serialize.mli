(** Plain-text serialization of game instances and strategy profiles.

    The format is line-oriented and stable, so experiment artifacts can be
    saved, diffed and replayed:

    {v
    gncg-host 1
    n 4
    alpha 2.5
    w 0 1 1.5
    w 0 2 inf
    ...
    v}

    Every finite pair appears once ([u < v]); omitted pairs default to
    [inf].  Profiles:

    {v
    gncg-profile 1
    n 4
    buy 0 2
    buy 3 1
    v}

    The [_result] parsers reject malformed input with a typed
    {!Gncg_util.Gncg_error.t} locating the offending line (and column,
    for bad numbers); the historical raising names survive as aliases
    that raise {!Gncg_util.Gncg_error.Error} with the same value. *)

val host_to_string : Host.t -> string

val host_of_string_result :
  ?validate:bool -> string -> (Host.t, Gncg_util.Gncg_error.t) result
(** Parses a host.  With [validate] (default: the process-wide
    {!Gncg_util.Gncg_error.strict_validation} flag) the parsed host is
    additionally checked through [Host.validate ~require_metric:false] —
    weight sanity and finite-path connectivity; the triangle inequality
    is not required because the format legitimately stores the
    non-metric general and 1-∞ families. *)

val profile_to_string : Strategy.t -> string

val profile_of_string_result : string -> (Strategy.t, Gncg_util.Gncg_error.t) result

val host_to_file : string -> Host.t -> unit

val host_of_file_result :
  ?validate:bool -> string -> (Host.t, Gncg_util.Gncg_error.t) result
(** {!host_of_string_result} on the file's contents; errors carry the
    path in their location. *)

val profile_to_file : string -> Strategy.t -> unit

val profile_of_file_result : string -> (Strategy.t, Gncg_util.Gncg_error.t) result

(** {1 Legacy raising aliases}

    Deprecated: use the [_result] forms.  These raise
    {!Gncg_util.Gncg_error.Error} on malformed input. *)

val host_of_string : string -> Host.t

val profile_of_string : string -> Strategy.t

val host_of_file : string -> Host.t

val profile_of_file : string -> Strategy.t
