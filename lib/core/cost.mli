(** Agent and social cost.

    [cost(u, G(s)) = α · w(u, S_u) + Σ_v d_{G(s)}(u, v)];
    the social cost is the sum over all agents.  Disconnected networks have
    infinite cost. *)

type parts = { edge : float; dist : float }

val agent_edge_cost : Host.t -> Strategy.t -> int -> float
(** [α · w(u, S_u)] — the price of everything [u] buys (including edges
    also bought by the other side: both owners pay). *)

val agent_dist_cost : ?graph:Gncg_graph.Wgraph.t -> Host.t -> Strategy.t -> int -> float
(** [Σ_v d_{G(s)}(u, v)]; [infinity] if some agent is unreachable.  Pass
    [graph] to reuse an already-built [G(s)]. *)

val agent_cost : ?graph:Gncg_graph.Wgraph.t -> Host.t -> Strategy.t -> int -> float

val agent_cost_with_dists : Host.t -> Strategy.t -> int -> float array -> float
(** [agent_cost] given an already-known distance row for the agent (e.g.
    from the incrementally maintained matrix of [Net_state]): O(n), no
    graph work. *)

val agent_parts : ?graph:Gncg_graph.Wgraph.t -> Host.t -> Strategy.t -> int -> parts

val social_cost : ?exec:Gncg_util.Exec.t -> Host.t -> Strategy.t -> float
(** Defaults to [Exec.Seq].  Under [Par] the per-agent distance sums are
    split across OCaml 5 domains — the engine's hot loop on large hosts.
    The two strategies sum floats in different orders, so totals can
    differ in the last ulps; equilibrium verdicts never depend on them
    at that precision. *)

val social_parts : Host.t -> Strategy.t -> parts

val network_social_cost : ?exec:Gncg_util.Exec.t -> Host.t -> Gncg_graph.Wgraph.t -> float
(** Social cost of a network in which every edge is bought exactly once
    (ownership does not matter for the total):
    [α · Σ_e w(e) + Σ_u Σ_v d(u,v)].  Defaults to [Exec.Seq]. *)

val network_parts : Host.t -> Gncg_graph.Wgraph.t -> parts
