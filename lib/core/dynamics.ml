module Flt = Gncg_util.Flt
module Exec = Gncg_util.Exec
module Changed_rows = Gncg_graph.Changed_rows
module Metric = Gncg_obs.Metric
module Span = Gncg_obs.Span

(* Layer-3 probes.  The counters shadow the per-run [metrics] record —
   same accounting, but global, mergeable and togglable at run time.
   The dynamics.speculative_* family instruments the optimistic engine:
   every speculated evaluation, how many landed as-is, how many were
   aborted by a conflicting commit (and re-run against the committed
   state), and the realized batch shape. *)
let c_evaluations = Metric.Counter.make "dynamics.evaluations"
let c_moves = Metric.Counter.make "dynamics.moves"
let c_skips = Metric.Counter.make "dynamics.skips"
let c_degradations = Metric.Counter.make "dynamics.evaluator_degradations"
let c_speculations = Metric.Counter.make "dynamics.speculative_speculations"
let c_spec_commits = Metric.Counter.make "dynamics.speculative_commits"
let c_spec_conflicts = Metric.Counter.make "dynamics.speculative_conflicts"
let c_spec_retries = Metric.Counter.make "dynamics.speculative_retries"
let c_spec_batches = Metric.Counter.make "dynamics.speculative_batches"
let h_spec_batch = Metric.Histogram.make "dynamics.speculative_batch_size"
let p_step = Span.probe "dynamics.step"
let p_run = Span.probe "dynamics.run"

type rule =
  | Best_response
  | Greedy_response
  | Add_only
  | Random_improving of Gncg_util.Prng.t

type scheduler = Round_robin | Random_order of Gncg_util.Prng.t

type step = { mover : int; before_cost : float; after_cost : float }

type outcome =
  | Converged of { profile : Strategy.t; rounds : int; steps : step list }
  | Cycle of { profiles : Strategy.t list; steps : step list }
  | Out_of_steps of { profile : Strategy.t; steps : step list }

type metrics = {
  mutable evaluations : int;
  mutable moves : int;
  mutable skips : int;
}

module Engine = struct
  type t =
    | Sequential
    | Speculative of { exec : Exec.t; batch : int }

  let sequential = Sequential

  let speculative ?(exec = Exec.default) ?(batch = 0) () = Speculative { exec; batch }

  (* [batch <= 0] means auto: enough lookahead to keep every domain fed
     through a few abort/retry rounds without speculating so far ahead
     that a movey phase throws most of the work away. *)
  let resolve_batch ~exec batch = if batch > 0 then batch else 4 * Exec.domain_count exec

  let to_string = function
    | Sequential -> "sequential"
    | Speculative { exec; batch } ->
      let e =
        match exec with
        | Exec.Seq -> ":seq"
        | Exec.Par { domains = None } -> ""
        | Exec.Par { domains = Some d } -> Printf.sprintf ":%d" d
      in
      let b = if batch > 0 then Printf.sprintf ":batch=%d" batch else "" in
      "speculative" ^ e ^ b

  let of_string s =
    let err () =
      Error
        (Printf.sprintf
           "invalid dynamics engine %S (want sequential, speculative, speculative:K, \
            speculative:seq, or an extra :batch=B)"
           s)
    in
    match String.split_on_char ':' s with
    | [ ("sequential" | "seq") ] -> Ok Sequential
    | "speculative" :: rest ->
      let parse_batch b =
        match String.index_opt b '=' with
        | Some i when String.sub b 0 i = "batch" -> (
          match int_of_string_opt (String.sub b (i + 1) (String.length b - i - 1)) with
          | Some k when k >= 1 -> Some k
          | _ -> None)
        | _ -> None
      in
      let with_exec exec = function
        | [] -> Ok (Speculative { exec; batch = 0 })
        | [ b ] -> (
          match parse_batch b with
          | Some batch -> Ok (Speculative { exec; batch })
          | None -> err ())
        | _ -> err ()
      in
      (match rest with
      | [] -> Ok (Speculative { exec = Exec.default; batch = 0 })
      | "seq" :: tl -> with_exec Exec.Seq tl
      | first :: tl -> (
        match int_of_string_opt first with
        | Some d when d >= 1 -> with_exec (Exec.Par { domains = Some d }) tl
        | _ -> with_exec Exec.default rest))
    | _ -> err ()

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

module Config = struct
  type t = {
    rule : rule;
    scheduler : scheduler;
    max_steps : int;
    evaluator : Evaluator.t;
    engine : Engine.t;
    metrics : metrics option;
  }

  let make ?(max_steps = 10_000) ?(evaluator = `Reference) ?(engine = Engine.Sequential)
      ?metrics rule scheduler =
    { rule; scheduler; max_steps; evaluator; engine; metrics }
end

let rule_kinds = function Add_only -> [ `Add ] | _ -> [ `Add; `Delete; `Swap ]

(* Like [deviation], but also reports the mover's current cost so the
   caller never has to recompute it for the step record.  Stateless by
   construction: [`Incremental] has no threaded state here, so it is
   evaluated as [`Stateless] — counted, because silent degradation cost
   PR-7 a confusing bench (callers see the counter climb instead). *)
let deviation_full ?(evaluator = `Reference) rule host s u =
  match rule with
  | Best_response ->
    let current = Cost.agent_cost host s u in
    let set, cost = Best_response.exact host s u in
    if Flt.lt cost current then
      Some (Strategy.with_strategy s u set, current -. cost, current)
    else None
  | Greedy_response | Add_only ->
    let kinds = rule_kinds rule in
    let best, current =
      match evaluator with
      | `Reference ->
        let graph = Network.graph host s in
        (Greedy.best_move ~kinds ~graph host s ~agent:u, Cost.agent_cost ~graph host s u)
      | `Fast | `Stateless | `Incremental ->
        if evaluator = `Incremental then Metric.Counter.incr c_degradations;
        (Fast_response.best_move ~kinds host s ~agent:u, Cost.agent_cost host s u)
    in
    (match best with
    | Some (mv, gain) -> Some (Move.apply s ~agent:u mv, gain, current)
    | None -> None)
  | Random_improving rng ->
    let graph = Network.graph host s in
    let before = Cost.agent_cost ~graph host s u in
    let improving =
      List.filter_map
        (fun mv ->
          let after = Cost.agent_cost host (Move.apply s ~agent:u mv) u in
          let gain = if Flt.approx_eq before after then 0.0 else before -. after in
          if gain > Flt.eps then Some (mv, gain) else None)
        (Move.candidates host s ~agent:u)
    in
    (match improving with
    | [] -> None
    | _ ->
      let arr = Array.of_list improving in
      let mv, gain = arr.(Gncg_util.Prng.int rng (Array.length arr)) in
      Some (Move.apply s ~agent:u mv, gain, before))

let deviation ?evaluator rule host s u =
  Option.map (fun (s', gain, _) -> (s', gain)) (deviation_full ?evaluator rule host s u)

(* Can the distance row of [v] enter agent [a]'s row-local verdict?  Only
   through the insertion kernel Σ_x min(d_a(x), w + d_v(x)), which is
   evaluated exactly for the targets Move.candidates deems addable. *)
let eligible_target host s a v = Move.addable host s ~agent:a v

(* A worker's verdict for one agent, produced against the profile the
   batch started from.  [Spec_state] carries the raw move (not an applied
   profile: application is the commit step's job); [Spec_dev] carries the
   full stateless deviation, which is only reusable while nothing at all
   has been committed since (stateless verdicts depend on the entire
   graph). *)
type speculation =
  | Spec_state of { mv : (Move.t * float) option; before : float; rowlocal : bool }
  | Spec_dev of (Strategy.t * float * float) option

let run cfg host start =
  let { Config.rule; scheduler; max_steps; evaluator; engine; metrics } = cfg in
  let n = Strategy.n start in
  let m = match metrics with Some m -> m | None -> { evaluations = 0; moves = 0; skips = 0 } in
  (* Hoisted out of the activation loop: the kinds list used to be
     rebuilt on every evaluation. *)
  let kinds = rule_kinds rule in
  (* The incremental evaluator threads one mutable state (network + full
     distance matrix) through the whole run: a step then costs an O(n²)
     insertion update (or an affected-sources deletion) instead of a
     network rebuild plus Dijkstra per candidate. *)
  let state =
    match (evaluator, rule) with
    | `Incremental, (Greedy_response | Add_only) ->
      (* Dynamics mutate the network, so a read-only oracle backend
         (tree/rd) must degrade to dense — hence [require_mutable]. *)
      Some (Net_state.create ~require_mutable:true host start)
    | _ -> None
  in
  (* rowlocal.(u): u's latest "no improving move" verdict was decided with
     zero what-if Dijkstras — see Fast_response.best_move_state_verdict. *)
  let rowlocal = Array.make n false in
  (* One stateful evaluation, against any state (the threaded primary or
     a speculative replica).  Does not touch the [metrics] record — plain
     mutable fields cannot be updated from worker domains; the obs
     counter is atomic under profiling and merges exactly. *)
  let eval_state st u =
    Metric.Counter.incr c_evaluations;
    let best, rl = Fast_response.best_move_state_verdict ~kinds st ~agent:u in
    match best with
    | None -> Spec_state { mv = None; before = 0.0; rowlocal = rl }
    | Some _ -> Spec_state { mv = best; before = Net_state.agent_cost st u; rowlocal = rl }
  in
  let attempt s u =
    m.evaluations <- m.evaluations + 1;
    match state with
    | Some st -> (
      match eval_state st u with
      | Spec_state { mv = None; rowlocal = rl; _ } ->
        rowlocal.(u) <- rl;
        None
      | Spec_state { mv = Some (mv, gain); before; _ } ->
        Some (Net_state.apply_move st ~agent:u mv, gain, before)
      | Spec_dev _ ->
        Gncg_util.Gncg_error.unreachable ~context:"Dynamics.run"
          "eval_state returned a stateless verdict")
    | None ->
      Metric.Counter.incr c_evaluations;
      deviation_full ~evaluator rule host s u
  in
  let seen = Hashtbl.create 97 in
  (* Trace of profiles since the start, newest first, for cycle extraction.
     A revisited profile certifies an improving-move cycle under any
     scheduler: every recorded transition strictly improves its mover. *)
  let trace = ref [ start ] in
  Hashtbl.replace seen (Strategy.canonical_key start) 0;
  let steps = ref [] in
  (* For [Random_order] the rng must be drawn exactly once per slot, in
     slot order: the sequential loop does so by construction; the
     speculative engine memoizes its lookahead draws (see [form_batch])
     so both engines consume the identical activation stream. *)
  let next_agent slot =
    match scheduler with
    | Round_robin -> slot mod n
    | Random_order rng -> Gncg_util.Prng.int rng n
  in
  (* Convergence = every agent observed idle since the last move.  A plain
     idle-streak counter is wrong under random scheduling (the same agent
     can be drawn repeatedly). *)
  let idle = Array.make n false in
  let idle_count = ref 0 in
  let mark_idle u =
    if not idle.(u) then begin
      idle.(u) <- true;
      incr idle_count
    end
  in
  let reset_idle () =
    Array.fill idle 0 n false;
    idle_count := 0
  in
  let drop_idle a =
    if idle.(a) then begin
      idle.(a) <- false;
      decr idle_count
    end
  in
  (* After an accepted move, an idle agent [a] stays provably idle —
     byte-identical verdict to re-running the evaluator — iff its verdict
     was row-local and none of the verdict's inputs changed:

     - [a]'s own distance row is unchanged ([a] not in the changed-rows
       report, which is sound by construction);
     - no strategy pair touching [a] was modified (its purchase cost,
       owned set, addable set, and co-ownership view are all functions of
       pairs incident to [a] only);
     - no changed row belongs to a currently addable target of [a] (the
       only way another agent's row enters a row-local verdict is the
       insertion kernel over addable targets; the addable set itself is
       unchanged by the previous point).

     Everything else is re-examined.  Dijkstra-based verdicts (rowlocal
     false) depend on the whole graph and are never preserved. *)
  let untouched_by (ch : Net_state.changes) s' a =
    (not ch.Net_state.full)
    && (not (Changed_rows.mem ch.Net_state.rows a))
    && (not (List.exists (fun (x, y) -> x = a || y = a) ch.Net_state.pairs))
    &&
    let clean = ref true in
    Changed_rows.iter
      (fun v -> if !clean && eligible_target host s' a v then clean := false)
      ch.Net_state.rows;
    !clean
  in
  let settle_after_move ch s' =
    if ch.Net_state.full then reset_idle ()
    else
      for a = 0 to n - 1 do
        if idle.(a) then
          if rowlocal.(a) && untouched_by ch s' a then begin
            m.skips <- m.skips + 1;
            Metric.Counter.incr c_skips
          end
          else drop_idle a
      done
  in
  (* Shared move-commit bookkeeping for both engines: counters, step
     record, revisit detection, idle settlement.  Returns the drained
     change report (state path only) and [Some outcome] on a certified
     improving-move cycle. *)
  let commit_move u s' gain before =
    m.moves <- m.moves + 1;
    Metric.Counter.incr c_moves;
    steps := { mover = u; before_cost = before; after_cost = before -. gain } :: !steps;
    let key = Strategy.canonical_key s' in
    match Hashtbl.find_opt seen key with
    | Some _ ->
      (* Extract the segment of the trace from the previous visit. *)
      let rec take acc = function
        | [] -> acc
        | p :: rest ->
          if Strategy.canonical_key p = key then p :: acc else take (p :: acc) rest
      in
      let cycle = take [] !trace in
      (None, Some (Cycle { profiles = cycle @ [ s' ]; steps = List.rev !steps }))
    | None ->
      Hashtbl.replace seen key 0;
      trace := s' :: !trace;
      let report =
        match state with
        | Some st ->
          let ch = Net_state.drain_changes st in
          settle_after_move ch s';
          Some ch
        | None ->
          reset_idle ();
          None
      in
      (report, None)
  in
  (* ------------------------------------------------ sequential engine *)
  let rec go s slot =
    if !idle_count >= n then
      Converged { profile = s; rounds = slot / n; steps = List.rev !steps }
    else if slot >= max_steps then Out_of_steps { profile = s; steps = List.rev !steps }
    else begin
      let u = next_agent slot in
      if idle.(u) then go s (slot + 1)
      else
        match Span.with_probe p_step (fun () -> attempt s u) with
        | None ->
          mark_idle u;
          go s (slot + 1)
        | Some (s', gain, before) -> (
          match commit_move u s' gain before with
          | _, Some cycle -> cycle
          | _, None -> go s' (slot + 1))
    end
  in
  (* ------------------------------------------------ speculative engine

     Evaluate the next activations of the sequential schedule
     concurrently against the profile the batch starts from, then walk
     the slots in order and commit each speculation that is provably the
     verdict the sequential engine would have computed at that slot:

     - while nothing has been committed since the batch started, every
       speculation is trivially valid (the state is the state it was
       evaluated against);
     - after a commit, a stateful speculation survives iff its verdict
       was row-local and the merged change reports of the commits since
       left all of its inputs untouched — the same four-condition rule
       that preserves idle verdicts across moves (see above), applied to
       move verdicts as well (the verdict, its gain and the mover's
       before-cost are pure functions of the same inputs);
     - everything else aborts and is re-evaluated inline against the
       committed state (the retry), exactly as the sequential engine
       would have.

     The commit walk *is* the sequential loop with memoized evaluation
     results, so the outcome — profiles, steps, rounds, cycle
     certificates — is byte-identical to [Sequential] by construction
     (property-tested in test_speculative).  Workers never touch the
     primary state: each domain owns a replica kept in sync by replaying
     the committed moves, so the zero-alloc what-if kernels run against
     per-domain workspaces with no cross-domain writes. *)
  let run_speculative exec batch_arg =
    let domains = Exec.domain_count exec in
    let batch_target = Engine.resolve_batch ~exec batch_arg in
    let replicas =
      match state with
      | Some st -> Array.init domains (fun _ -> Net_state.copy st)
      | None -> [||]
    in
    (* Committed (agent, move) log, newest first; each replica replays
       its missing suffix before evaluating (worker-side, so the replays
       run concurrently across domains). *)
    let commit_log = ref [] in
    let commit_count = ref 0 in
    let synced = Array.make domains 0 in
    let sync_replica d st =
      let missing = !commit_count - synced.(d) in
      if missing > 0 then begin
        let rec take k acc l =
          if k = 0 then acc
          else match l with x :: tl -> take (k - 1) (x :: acc) tl | [] -> acc
        in
        List.iter
          (fun (u, mv) -> ignore (Net_state.apply_move st ~agent:u mv))
          (take missing [] !commit_log);
        ignore (Net_state.drain_changes st);
        synced.(d) <- !commit_count
      end
    in
    let log_move u mv =
      commit_log := (u, mv) :: !commit_log;
      incr commit_count
    in
    (* One-slot pushback: formation stops when it meets a second
       activation of an already-speculated agent, whose rng draw is
       already consumed — it must open the next batch. *)
    let pending = ref None in
    let agent_of_slot slot =
      match !pending with
      | Some (k, u) when k = slot ->
        pending := None;
        u
      | _ -> next_agent slot
    in
    let in_batch = Array.make n false in
    (* The upcoming consecutive slots, with the distinct non-idle agents
       to speculate.  Bounded lookahead: under a mostly-idle population
       the commit walk burns idle slots for free, so scanning far past
       the batch target only wastes draws. *)
    let form_batch slot0 =
      let cap = slot0 + max (2 * n) (8 * batch_target) in
      let slots = ref [] and agents = ref [] and nspec = ref 0 in
      let k = ref slot0 and stop = ref false in
      while (not !stop) && !k < max_steps && !k < cap && !nspec < batch_target do
        let u = agent_of_slot !k in
        if (not idle.(u)) && in_batch.(u) then begin
          pending := Some (!k, u);
          stop := true
        end
        else begin
          if not idle.(u) then begin
            in_batch.(u) <- true;
            agents := u :: !agents;
            incr nspec
          end;
          slots := (!k, u) :: !slots;
          incr k
        end
      done;
      (List.rev !slots, Array.of_list (List.rev !agents), !k)
    in
    let specs : (int, speculation) Hashtbl.t = Hashtbl.create 97 in
    let speculate s_base agents =
      let nspec = Array.length agents in
      Hashtbl.reset specs;
      if nspec > 0 then begin
        Metric.Counter.incr c_spec_batches;
        Metric.Histogram.observe h_spec_batch (float_of_int nspec);
        Metric.Counter.add c_speculations nspec;
        m.evaluations <- m.evaluations + nspec;
        let chunks =
          Exec.init ~exec domains (fun d ->
              let lo = d * nspec / domains and hi = (d + 1) * nspec / domains in
              match state with
              | Some _ ->
                let st = replicas.(d) in
                sync_replica d st;
                Array.init (hi - lo) (fun i ->
                    let u = agents.(lo + i) in
                    (u, eval_state st u))
              | None ->
                Array.init (hi - lo) (fun i ->
                    let u = agents.(lo + i) in
                    Metric.Counter.incr c_evaluations;
                    (u, Spec_dev (deviation_full ~evaluator rule host s_base u))))
        in
        Array.iter (Array.iter (fun (u, sp) -> Hashtbl.replace specs u sp)) chunks
      end
    in
    (* Validity of a speculation at commit time, against everything
       committed since the batch base.  [batch_reports] holds the change
       report of each commit of this batch (state path); the conditions
       are conjunctive per report, so no merge is materialized. *)
    let batch_reports = ref [] in
    let batch_moved = ref false in
    let valid_state_spec s_cur u rl =
      (not !batch_moved)
      || (rl && List.for_all (fun ch -> untouched_by ch s_cur u) !batch_reports)
    in
    (* Inline abort/retry: the slot re-evaluates against the committed
       state, exactly as the sequential engine would have. *)
    let retry s u =
      m.evaluations <- m.evaluations + 1;
      Span.with_probe p_step (fun () ->
          match state with
          | Some st -> eval_state st u
          | None ->
            Metric.Counter.incr c_evaluations;
            Spec_dev (deviation_full ~evaluator rule host s u))
    in
    let rec batch_loop s slot =
      if !idle_count >= n then
        Converged { profile = s; rounds = slot / n; steps = List.rev !steps }
      else if slot >= max_steps then Out_of_steps { profile = s; steps = List.rev !steps }
      else begin
        let slots, agents, slot_end = form_batch slot in
        Array.iter (fun u -> in_batch.(u) <- false) agents;
        speculate s agents;
        batch_reports := [];
        batch_moved := false;
        commit s slots slot_end
      end
    and commit s slots slot_end =
      match slots with
      | [] -> batch_loop s slot_end
      | (k, u) :: rest ->
        if !idle_count >= n then
          Converged { profile = s; rounds = k / n; steps = List.rev !steps }
        else if idle.(u) then commit s rest slot_end
        else begin
          let verdict =
            match Hashtbl.find_opt specs u with
            | Some (Spec_state { mv; before; rowlocal = rl })
              when valid_state_spec s u rl ->
              Metric.Counter.incr c_spec_commits;
              Spec_state { mv; before; rowlocal = rl }
            | Some (Spec_dev dev) when not !batch_moved ->
              Metric.Counter.incr c_spec_commits;
              Spec_dev dev
            | Some _ ->
              (* A commit since the batch base invalidated this
                 speculation: abort it and retry. *)
              Metric.Counter.incr c_spec_conflicts;
              Metric.Counter.incr c_spec_retries;
              retry s u
            | None ->
              (* The agent looked idle at formation but a commit of this
                 batch un-idled it: no speculation exists, evaluate
                 inline. *)
              Metric.Counter.incr c_spec_retries;
              retry s u
          in
          match verdict with
          | Spec_state { mv = None; rowlocal = rl; _ } ->
            rowlocal.(u) <- rl;
            mark_idle u;
            commit s rest slot_end
          | Spec_dev None ->
            mark_idle u;
            commit s rest slot_end
          | Spec_state { mv = Some (mv, gain); before; _ } -> (
            let st =
              match state with
              | Some st -> st
              | None ->
                Gncg_util.Gncg_error.unreachable ~context:"Dynamics.run"
                  "stateful speculation without a threaded state"
            in
            let s' = Net_state.apply_move st ~agent:u mv in
            log_move u mv;
            match commit_move u s' gain before with
            | _, Some cycle -> cycle
            | report, None ->
              (match report with
              | Some ch -> batch_reports := ch :: !batch_reports
              | None -> ());
              batch_moved := true;
              commit s' rest slot_end)
          | Spec_dev (Some (s', gain, before)) -> (
            match commit_move u s' gain before with
            | _, Some cycle -> cycle
            | _, None ->
              batch_moved := true;
              commit s' rest slot_end)
        end
    in
    batch_loop start 0
  in
  Span.with_probe p_run (fun () ->
      match engine with
      | Engine.Sequential -> go start 0
      | Engine.Speculative _ when (match rule with Random_improving _ -> true | _ -> false)
        ->
        (* The random-improving rule draws from its rng inside the
           evaluation, so concurrent speculation would reorder the
           stream: degrade to the sequential engine (documented). *)
        go start 0
      | Engine.Speculative { exec; batch } -> run_speculative exec batch)
