module Flt = Gncg_util.Flt
module Changed_rows = Gncg_graph.Changed_rows
module Metric = Gncg_obs.Metric
module Span = Gncg_obs.Span

(* Layer-3 probes.  The counters shadow the per-run [metrics] record —
   same accounting, but global, mergeable and togglable at run time. *)
let c_evaluations = Metric.Counter.make "dynamics.evaluations"
let c_moves = Metric.Counter.make "dynamics.moves"
let c_skips = Metric.Counter.make "dynamics.skips"
let p_step = Span.probe "dynamics.step"
let p_run = Span.probe "dynamics.run"

type rule =
  | Best_response
  | Greedy_response
  | Add_only
  | Random_improving of Gncg_util.Prng.t

type scheduler = Round_robin | Random_order of Gncg_util.Prng.t

type step = { mover : int; before_cost : float; after_cost : float }

type outcome =
  | Converged of { profile : Strategy.t; rounds : int; steps : step list }
  | Cycle of { profiles : Strategy.t list; steps : step list }
  | Out_of_steps of { profile : Strategy.t; steps : step list }

type metrics = {
  mutable evaluations : int;
  mutable moves : int;
  mutable skips : int;
}

let fresh_metrics () = { evaluations = 0; moves = 0; skips = 0 }

let rule_kinds = function Add_only -> [ `Add ] | _ -> [ `Add; `Delete; `Swap ]

(* Like [deviation], but also reports the mover's current cost so the
   caller never has to recompute it for the step record. *)
let deviation_full ?(evaluator = `Reference) rule host s u =
  match rule with
  | Best_response ->
    let current = Cost.agent_cost host s u in
    let set, cost = Best_response.exact host s u in
    if Flt.lt cost current then
      Some (Strategy.with_strategy s u set, current -. cost, current)
    else None
  | Greedy_response | Add_only ->
    let kinds = rule_kinds rule in
    let best, current =
      match evaluator with
      | `Reference ->
        let graph = Network.graph host s in
        (Greedy.best_move ~kinds ~graph host s ~agent:u, Cost.agent_cost ~graph host s u)
      | `Fast | `Incremental ->
        (* Without a threaded state, [`Incremental] degrades to the
           stateless fast evaluator. *)
        (Fast_response.best_move ~kinds host s ~agent:u, Cost.agent_cost host s u)
    in
    (match best with
    | Some (mv, gain) -> Some (Move.apply s ~agent:u mv, gain, current)
    | None -> None)
  | Random_improving rng ->
    let graph = Network.graph host s in
    let before = Cost.agent_cost ~graph host s u in
    let improving =
      List.filter_map
        (fun mv ->
          let after = Cost.agent_cost host (Move.apply s ~agent:u mv) u in
          let gain = if Flt.approx_eq before after then 0.0 else before -. after in
          if gain > Flt.eps then Some (mv, gain) else None)
        (Move.candidates host s ~agent:u)
    in
    (match improving with
    | [] -> None
    | _ ->
      let arr = Array.of_list improving in
      let mv, gain = arr.(Gncg_util.Prng.int rng (Array.length arr)) in
      Some (Move.apply s ~agent:u mv, gain, before))

let deviation ?evaluator rule host s u =
  Option.map (fun (s', gain, _) -> (s', gain)) (deviation_full ?evaluator rule host s u)

(* Can the distance row of [v] enter agent [a]'s row-local verdict?  Only
   through the insertion kernel Σ_x min(d_a(x), w + d_v(x)), which is
   evaluated exactly for the targets Move.candidates deems addable. *)
let eligible_target host s a v = Move.addable host s ~agent:a v

let run ?(max_steps = 10_000) ?(evaluator = `Reference) ?metrics ~rule ~scheduler host
    start =
  let n = Strategy.n start in
  let m = match metrics with Some m -> m | None -> fresh_metrics () in
  (* The incremental evaluator threads one mutable state (network + full
     distance matrix) through the whole run: a step then costs an O(n²)
     insertion update (or an affected-sources deletion) instead of a
     network rebuild plus Dijkstra per candidate. *)
  let state =
    match (evaluator, rule) with
    | `Incremental, (Greedy_response | Add_only) ->
      (* Dynamics mutate the network, so a read-only oracle backend
         (tree/rd) must degrade to dense — hence [require_mutable]. *)
      Some (Net_state.create ~require_mutable:true host start)
    | _ -> None
  in
  (* rowlocal.(u): u's latest "no improving move" verdict was decided with
     zero what-if Dijkstras — see Fast_response.best_move_state_verdict. *)
  let rowlocal = Array.make n false in
  let attempt s u =
    m.evaluations <- m.evaluations + 1;
    Metric.Counter.incr c_evaluations;
    match state with
    | Some st -> (
      let best, rl = Fast_response.best_move_state_verdict ~kinds:(rule_kinds rule) st ~agent:u in
      match best with
      | None ->
        rowlocal.(u) <- rl;
        None
      | Some (mv, gain) ->
        let before = Net_state.agent_cost st u in
        Some (Net_state.apply_move st ~agent:u mv, gain, before))
    | None -> deviation_full ~evaluator rule host s u
  in
  let seen = Hashtbl.create 97 in
  (* Trace of profiles since the start, newest first, for cycle extraction.
     A revisited profile certifies an improving-move cycle under any
     scheduler: every recorded transition strictly improves its mover. *)
  let trace = ref [ start ] in
  Hashtbl.replace seen (Strategy.canonical_key start) 0;
  let steps = ref [] in
  let next_agent step_idx =
    match scheduler with
    | Round_robin -> step_idx mod n
    | Random_order rng -> Gncg_util.Prng.int rng n
  in
  (* Convergence = every agent observed idle since the last move.  A plain
     idle-streak counter is wrong under random scheduling (the same agent
     can be drawn repeatedly). *)
  let idle = Array.make n false in
  let idle_count = ref 0 in
  let mark_idle u =
    if not idle.(u) then begin
      idle.(u) <- true;
      incr idle_count
    end
  in
  let reset_idle () =
    Array.fill idle 0 n false;
    idle_count := 0
  in
  let drop_idle a =
    if idle.(a) then begin
      idle.(a) <- false;
      decr idle_count
    end
  in
  (* After an accepted move, an idle agent [a] stays provably idle —
     byte-identical verdict to re-running the evaluator — iff its verdict
     was row-local and none of the verdict's inputs changed:

     - [a]'s own distance row is unchanged ([a] not in the changed-rows
       report, which is sound by construction);
     - no strategy pair touching [a] was modified (its purchase cost,
       owned set, addable set, and co-ownership view are all functions of
       pairs incident to [a] only);
     - no changed row belongs to a currently addable target of [a] (the
       only way another agent's row enters a row-local verdict is the
       insertion kernel over addable targets; the addable set itself is
       unchanged by the previous point).

     Everything else is re-examined.  Dijkstra-based verdicts (rowlocal
     false) depend on the whole graph and are never preserved. *)
  let settle_after_move st s' =
    let ch = Net_state.drain_changes st in
    if ch.Net_state.full then reset_idle ()
    else begin
      for a = 0 to n - 1 do
        if idle.(a) then begin
          let keep =
            rowlocal.(a)
            && (not (Changed_rows.mem ch.Net_state.rows a))
            && (not (List.exists (fun (x, y) -> x = a || y = a) ch.Net_state.pairs))
            &&
            let clean = ref true in
            Changed_rows.iter
              (fun v -> if !clean && eligible_target host s' a v then clean := false)
              ch.Net_state.rows;
            !clean
          in
          if keep then begin
            m.skips <- m.skips + 1;
            Metric.Counter.incr c_skips
          end
          else drop_idle a
        end
      done
    end
  in
  let rec go s step_idx =
    if !idle_count >= n then
      Converged { profile = s; rounds = step_idx / n; steps = List.rev !steps }
    else if step_idx >= max_steps then
      Out_of_steps { profile = s; steps = List.rev !steps }
    else begin
      let u = next_agent step_idx in
      if idle.(u) then go s (step_idx + 1)
      else
      match Span.with_probe p_step (fun () -> attempt s u) with
      | None ->
        mark_idle u;
        go s (step_idx + 1)
      | Some (s', gain, before) ->
        m.moves <- m.moves + 1;
        Metric.Counter.incr c_moves;
        steps := { mover = u; before_cost = before; after_cost = before -. gain } :: !steps;
        let key = Strategy.canonical_key s' in
        (match Hashtbl.find_opt seen key with
        | Some _ ->
          (* Extract the segment of the trace from the previous visit. *)
          let rec take acc = function
            | [] -> acc
            | p :: rest ->
              if Strategy.canonical_key p = key then p :: acc else take (p :: acc) rest
          in
          let cycle = take [] !trace in
          Cycle { profiles = cycle @ [ s' ]; steps = List.rev !steps }
        | None ->
          Hashtbl.replace seen key (step_idx + 1);
          trace := s' :: !trace;
          (match state with
          | Some st -> settle_after_move st s'
          | None -> reset_idle ());
          go s' (step_idx + 1))
    end
  in
  Span.with_probe p_run (fun () -> go start 0)
