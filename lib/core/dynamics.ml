module Flt = Gncg_util.Flt

type rule =
  | Best_response
  | Greedy_response
  | Add_only
  | Random_improving of Gncg_util.Prng.t

type scheduler = Round_robin | Random_order of Gncg_util.Prng.t

type step = { mover : int; before_cost : float; after_cost : float }

type outcome =
  | Converged of { profile : Strategy.t; rounds : int; steps : step list }
  | Cycle of { profiles : Strategy.t list; steps : step list }
  | Out_of_steps of { profile : Strategy.t; steps : step list }

let deviation ?(evaluator = `Reference) rule host s u =
  let current = Cost.agent_cost host s u in
  match rule with
  | Best_response ->
    let set, cost = Best_response.exact host s u in
    if Flt.lt cost current then Some (Strategy.with_strategy s u set, current -. cost)
    else None
  | Greedy_response | Add_only ->
    let kinds = match rule with Add_only -> [ `Add ] | _ -> [ `Add; `Delete; `Swap ] in
    let best =
      match evaluator with
      | `Reference -> Greedy.best_move ~kinds host s ~agent:u
      | `Fast -> Fast_response.best_move ~kinds host s ~agent:u
    in
    (match best with
    | Some (mv, gain) -> Some (Move.apply s ~agent:u mv, gain)
    | None -> None)
  | Random_improving rng ->
    let improving =
      List.filter_map
        (fun mv ->
          let gain = Greedy.move_gain host s ~agent:u mv in
          if gain > Flt.eps then Some (mv, gain) else None)
        (Move.candidates host s ~agent:u)
    in
    (match improving with
    | [] -> None
    | _ ->
      let arr = Array.of_list improving in
      let mv, gain = arr.(Gncg_util.Prng.int rng (Array.length arr)) in
      Some (Move.apply s ~agent:u mv, gain))

let run ?(max_steps = 10_000) ?evaluator ~rule ~scheduler host start =
  let n = Strategy.n start in
  let seen = Hashtbl.create 97 in
  (* Trace of profiles since the start, newest first, for cycle extraction.
     A revisited profile certifies an improving-move cycle under any
     scheduler: every recorded transition strictly improves its mover. *)
  let trace = ref [ start ] in
  Hashtbl.replace seen (Strategy.canonical_key start) 0;
  let steps = ref [] in
  let next_agent step_idx =
    match scheduler with
    | Round_robin -> step_idx mod n
    | Random_order rng -> Gncg_util.Prng.int rng n
  in
  (* Convergence = every agent observed idle since the last move.  A plain
     idle-streak counter is wrong under random scheduling (the same agent
     can be drawn repeatedly). *)
  let idle = Array.make n false in
  let idle_count = ref 0 in
  let mark_idle u =
    if not idle.(u) then begin
      idle.(u) <- true;
      incr idle_count
    end
  in
  let reset_idle () =
    Array.fill idle 0 n false;
    idle_count := 0
  in
  let rec go s step_idx =
    if !idle_count >= n then
      Converged { profile = s; rounds = step_idx / n; steps = List.rev !steps }
    else if step_idx >= max_steps then
      Out_of_steps { profile = s; steps = List.rev !steps }
    else begin
      let u = next_agent step_idx in
      if idle.(u) then go s (step_idx + 1)
      else
      match deviation ?evaluator rule host s u with
      | None ->
        mark_idle u;
        go s (step_idx + 1)
      | Some (s', gain) ->
        let before = Cost.agent_cost host s u in
        steps := { mover = u; before_cost = before; after_cost = before -. gain } :: !steps;
        let key = Strategy.canonical_key s' in
        (match Hashtbl.find_opt seen key with
        | Some _ ->
          (* Extract the segment of the trace from the previous visit. *)
          let rec take acc = function
            | [] -> acc
            | p :: rest ->
              if Strategy.canonical_key p = key then p :: acc else take (p :: acc) rest
          in
          let cycle = take [] !trace in
          Cycle { profiles = cycle @ [ s' ]; steps = List.rev !steps }
        | None ->
          Hashtbl.replace seen key (step_idx + 1);
          trace := s' :: !trace;
          reset_idle ();
          go s' (step_idx + 1))
    end
  in
  go start 0
