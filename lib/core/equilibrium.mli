(** Equilibrium concepts of the paper (Sec. 1.1).

    - NE: no agent has any improving strategy change;
    - GE (greedy equilibrium): no agent improves by a single add, delete or
      swap;
    - AE (add-only equilibrium): no agent improves by a single add.

    NE ⊆ GE ⊆ AE.  Each concept has a β-approximate version: no agent can
    reduce her cost below [cost/β] with an allowed deviation. *)

type kind = NE | GE | AE

(** The boolean checks all take [?exec] (default [Exec.Seq]): under
    [Par] the per-agent checks fan out across OCaml 5 domains with an
    early exit once any domain finds an unhappy agent.  Same verdict as
    the sequential scan (property-tested); only the set of agents
    actually inspected on a negative answer differs. *)

val is_ae : ?exec:Gncg_util.Exec.t -> Host.t -> Strategy.t -> bool

val is_ge : ?exec:Gncg_util.Exec.t -> Host.t -> Strategy.t -> bool

val is_ne :
  ?oracle:[ `Branch_and_bound | `Enumerate ] ->
  ?exec:Gncg_util.Exec.t ->
  Host.t ->
  Strategy.t ->
  bool
(** Exact Nash check via best responses; exponential.  The default oracle
    is the branch-and-bound. *)

val is_equilibrium : ?exec:Gncg_util.Exec.t -> kind -> Host.t -> Strategy.t -> bool

val agent_approx_factor : kind -> Host.t -> Strategy.t -> int -> float
(** [cost(u) / best-deviation-cost(u)] for one agent (1 when already
    optimal; can be below 1 only by tolerance). *)

val approx_factor : kind -> Host.t -> Strategy.t -> float
(** The smallest β such that the profile is a β-approximate equilibrium of
    the given kind: the maximum of the per-agent factors. *)

val is_beta : kind -> beta:float -> Host.t -> Strategy.t -> bool

val unhappy_agents : ?exec:Gncg_util.Exec.t -> kind -> Host.t -> Strategy.t -> int list
(** Agents with an improving deviation of the given kind, in ascending
    agent order regardless of [exec]; under [Par] there is no early exit
    since every agent is reported. *)

type grievance = {
  agent : int;
  current_cost : float;
  best_cost : float;
  deviation : Strategy.ISet.t option;
      (** the improving strategy for [NE]; [None] for single-move kinds *)
}

val certify :
  ?exec:Gncg_util.Exec.t -> kind -> Host.t -> Strategy.t -> (unit, grievance list) result
(** [Ok ()] when the profile is an equilibrium of the kind; otherwise the
    per-agent evidence, sorted by decreasing improvement.  Powers the
    human-readable reports of the CLI.  Verdict and ordering are
    independent of [exec]. *)

val pp_grievance : Format.formatter -> grievance -> unit

(** Cached equilibrium scanning over a live {!Net_state.t}.

    Dynamics and search loops repeatedly ask "is this still an
    equilibrium / who is unhappy?" after single-move perturbations.  A
    tracker caches every agent's verdict together with its row-locality
    flag ({!Fast_response.best_move_state_verdict}); {!Tracker.refresh}
    drains the state's change report and re-evaluates only the agents
    whose cached verdict could have been invalidated — the same
    preservation rule as the dirty-agent skipping in [Dynamics.run],
    hence byte-identical to a full rescan (property-tested). *)
module Tracker : sig
  type t

  val create : ?evaluator:Evaluator.t -> kind -> Net_state.t -> t
  (** Full initial scan of every agent.  The tracker holds onto the state
      (apply moves through {!Net_state.apply_move} on it, then
      {!refresh}); it drains any change report already pending.  Raises
      [Invalid_argument] for [NE] — single-move verdicts cover GE and AE
      only.

      [evaluator] (default [`Incremental]) selects the single-move
      engine behind each verdict.  All three agree on every verdict
      (property-tested), but only [`Incremental] produces row-locality
      proofs, so the others re-evaluate every agent on each
      {!refresh}. *)

  val state : t -> Net_state.t

  val kind : t -> kind

  val evaluator : t -> Evaluator.t

  val refresh : t -> unit
  (** Re-evaluates exactly the agents whose cached verdict the change
      report cannot prove intact (own row changed, incident strategy pair
      modified, a changed row among their addable targets, or a verdict
      that needed what-if Dijkstras). *)

  val last_reevaluated : t -> int
  (** Number of agents the most recent {!refresh} (or {!create})
      re-evaluated — the instrumentation behind the "strictly fewer than
      n after one local move" guarantee in the tests. *)

  val is_equilibrium : t -> bool

  val unhappy : t -> int list
  (** Ascending list of agents with an improving single move of the
      tracker's kind, per the cached verdicts. *)
end
