module Wgraph = Gncg_graph.Wgraph

let graph host s =
  let g = Wgraph.create (Strategy.n s) in
  List.iter
    (fun (u, v) ->
      let w = Host.weight host u v in
      if Float.is_finite w then Wgraph.add_edge g u v w)
    (Strategy.owned_edges s);
  g

module Gncg_error = Gncg_util.Gncg_error

let validate ?(require_connected = false) host s =
  let ( let* ) = Result.bind in
  let ctx = "Network.validate" in
  let err ?where kind msg = Gncg_error.fail ?where ~context:ctx kind msg in
  let n = Host.n host in
  let* () =
    if Strategy.n s = n then Ok ()
    else
      Gncg_error.failf ~context:ctx Gncg_error.Inconsistent
        "profile has %d agents but host has %d" (Strategy.n s) n
  in
  let* () =
    List.fold_left
      (fun acc (u, v) ->
        let* () = acc in
        let where = Gncg_error.Pair (u, v) in
        if u < 0 || u >= n || v < 0 || v >= n then
          err ~where Gncg_error.Bounds "owned edge endpoint out of range"
        else if u = v then err ~where Gncg_error.Inconsistent "self-purchase"
        else if not (Strategy.owns s u v) then
          err ~where Gncg_error.Inconsistent
            "owned_edges lists a pair the ownership view denies"
        else if Float.is_nan (Host.weight host u v) then
          err ~where Gncg_error.Not_finite "purchase of a NaN-weight pair"
        else Ok ())
      (Ok ()) (Strategy.owned_edges s)
  in
  if
    require_connected && n > 0
    && not (Gncg_graph.Connectivity.is_connected (graph host s))
  then err Gncg_error.Disconnected "built network does not span all agents"
  else Ok ()

let distances_from host s u = Gncg_graph.Dijkstra.sssp (graph host s) u

let all_distances host s = Gncg_graph.Dijkstra.apsp (graph host s)

let is_connected host s = Gncg_graph.Connectivity.is_connected (graph host s)

let diameter host s = Gncg_graph.Dijkstra.diameter (graph host s)

let to_dot ?(name = "G") host s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  for v = 0 to Strategy.n s - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"%g\"];\n" u v (Host.weight host u v)))
    (Strategy.owned_edges s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
