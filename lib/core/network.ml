module Wgraph = Gncg_graph.Wgraph

let graph host s =
  let g = Wgraph.create (Strategy.n s) in
  List.iter
    (fun (u, v) ->
      let w = Host.weight host u v in
      if Float.is_finite w then Wgraph.add_edge g u v w)
    (Strategy.owned_edges s);
  g

let distances_from host s u = Gncg_graph.Dijkstra.sssp (graph host s) u

let all_distances host s = Gncg_graph.Dijkstra.apsp (graph host s)

let is_connected host s = Gncg_graph.Connectivity.is_connected (graph host s)

let diameter host s = Gncg_graph.Dijkstra.diameter (graph host s)

let to_dot ?(name = "G") host s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  for v = 0 to Strategy.n s - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"%g\"];\n" u v (Host.weight host u v)))
    (Strategy.owned_edges s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
