(** Edge-ownership assignments.

    A network fixes the edge set of [G(s)] but not who pays: several
    existence results (Thm. 5, Thm. 8, Cor. 3) are statements about *some*
    ownership assignment being stable.  This module enumerates
    orientations and searches for stable ones. *)

val orientations : Gncg_graph.Wgraph.t -> Strategy.t Seq.t
(** All 2^m ways to assign each edge to one endpoint. *)

val find : Gncg_graph.Wgraph.t -> (Strategy.t -> bool) -> Strategy.t option
(** First orientation satisfying the predicate. *)

val find_ne : ?max_edges:int -> Host.t -> Gncg_graph.Wgraph.t -> Strategy.t option
(** First orientation that is a Nash equilibrium (exact check; exponential
    in both the edge count and the Nash test).  Refuses networks with more
    than [max_edges] (default 20) edges. *)

val find_ge : ?max_edges:int -> Host.t -> Gncg_graph.Wgraph.t -> Strategy.t option
(** Same, for greedy equilibria (cheaper test). *)
