module Wgraph = Gncg_graph.Wgraph

type summary = {
  opt_cost : float;
  best_ne_cost : float;
  worst_ne_cost : float;
  ne_count : int;
}

let finite_pairs host =
  let n = Host.n host in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Float.is_finite (Host.weight host u v) then acc := (u, v) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let enumerate_ne ?(max_pairs = 8) host =
  let pairs = finite_pairs host in
  let k = Array.length pairs in
  if k > max_pairs then
    invalid_arg
      (Printf.sprintf "Price_of_stability.enumerate_ne: %d pairs exceed limit %d" k max_pairs);
  let n = Host.n host in
  (* Ownership state per pair: absent / owned by u / owned by v. *)
  let total = int_of_float (3.0 ** float_of_int k) in
  let result = ref [] in
  for code = 0 to total - 1 do
    let s = ref (Strategy.empty n) in
    let c = ref code in
    Array.iter
      (fun (u, v) ->
        (match !c mod 3 with
        | 0 -> ()
        | 1 -> s := Strategy.buy !s u v
        | _ -> s := Strategy.buy !s v u);
        c := !c / 3)
      pairs;
    if Equilibrium.is_ne host !s then result := !s :: !result
  done;
  List.rev !result

let exact ?max_pairs host =
  match enumerate_ne ?max_pairs host with
  | [] -> None
  | nes ->
    let costs = List.map (Cost.social_cost host) nes in
    let _, opt_cost = Social_optimum.best_known host in
    Some
      {
        opt_cost;
        best_ne_cost = List.fold_left Float.min Float.infinity costs;
        worst_ne_cost = List.fold_left Float.max Float.neg_infinity costs;
        ne_count = List.length nes;
      }

let run_to_stable ?(rule = Dynamics.Greedy_response) ?(max_steps = 5000) host start =
  match Dynamics.run (Dynamics.Config.make ~max_steps rule Dynamics.Round_robin) host start with
  | Dynamics.Converged { profile; _ } -> Some (profile, Cost.social_cost host profile)
  | Dynamics.Cycle _ | Dynamics.Out_of_steps _ -> None

let cheapest_stable_via_dynamics ?rule ?(starts = 10) ?max_steps rng host =
  let n = Host.n host in
  let best = ref None in
  for _ = 1 to starts do
    (* Random spanning-tree-plus-extras start, as in the workload library
       (re-implemented here to keep the core library dependency-free). *)
    let order = Gncg_util.Prng.permutation rng n in
    let s = ref (Strategy.empty n) in
    for i = 1 to n - 1 do
      let a = order.(i) and b = order.(Gncg_util.Prng.int rng i) in
      if Gncg_util.Prng.bool rng then s := Strategy.buy !s a b else s := Strategy.buy !s b a
    done;
    match run_to_stable ?rule ?max_steps host !s with
    | Some (p, c) -> (
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (p, c))
    | None -> ()
  done;
  !best

let stable_from_optimum ?rule ?max_steps host =
  let opt_graph, _ = Social_optimum.best_known host in
  if Wgraph.m opt_graph = 0 then None
  else begin
    let start =
      if Gncg_graph.Connectivity.is_connected opt_graph then
        Strategy.of_tree_leaf_owned
          (Gncg_graph.Mst.kruskal_graph opt_graph)
          0
        |> fun tree_profile ->
        (* Keep the full optimum edge set, not only its spanning tree:
           orient each remaining edge towards its smaller endpoint. *)
        Wgraph.edges opt_graph
        |> List.fold_left
             (fun s (u, v, _) ->
               if Strategy.edge_in_network s u v then s
               else Strategy.buy s (min u v) (max u v))
             tree_profile
      else Strategy.of_graph_arbitrary_owners opt_graph
    in
    run_to_stable ?rule ?max_steps host start
  end
