(** Event sinks: where observability events go.

    The engine's instrumentation points build and emit events only when
    a sink is installed; with the default null sink the hot paths pay a
    single non-atomic flag read per probe.  Sinks must tolerate
    concurrent {!emit} calls — the runs scheduler and the parallel scans
    emit from several domains at once.

    {b Sink contract} (see docs/OBSERVABILITY.md):
    - [emit] must be thread-safe and must not raise (a tracing failure
      must never change an engine verdict);
    - [emit] must not call back into the engine (events can fire from
      arbitrary engine internals);
    - [flush] makes every previously emitted event durable (file sinks);
    - event order within one domain is emission order; across domains it
      is interleaving-dependent. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  kind : string;  (** ["span"] | ["counters"] | ["point"] *)
  name : string;  (** dotted probe name, e.g. ["dynamics.step"] *)
  t_ns : float;  (** {!Clock.now_ns} at emission (span start for spans) *)
  fields : (string * value) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

val null : t
(** Drops everything. *)

val jsonl : out_channel -> t
(** One JSON object per line, in the schema documented in
    docs/OBSERVABILITY.md.  Serialized under an internal mutex; the
    channel is not closed by the sink. *)

val memory : unit -> t * (unit -> event list)
(** In-memory capture for tests: the second component returns the
    events emitted so far, in emission order. *)

val callback : (event -> unit) -> t
(** Forwards every event to the function — the streaming seam the serve
    daemon uses to relay trace events to watching clients.  The callback
    must be thread-safe (events arrive from several domains); exceptions
    it raises are swallowed, honouring the emit-never-raises contract. *)

val tee : t -> t -> t
(** Duplicates every event (and flush) to both sinks, in order — lets a
    streaming subscriber coexist with a trace file. *)

val event_to_json : event -> string
(** The single-line JSON rendering used by {!jsonl} (exposed so tests
    and other front ends can share the encoding). *)

(** {1 The installed sink}

    One process-wide sink.  [install None] restores {!null} and turns
    the emission flag off. *)

val install : t option -> unit

val active : unit -> bool
(** One cheap flag read: instrumentation points check this before
    building an event. *)

val emit : event -> unit
(** Emits to the installed sink; a no-op when {!active} is false. *)

val flush : unit -> unit
