(** Facade over the observability layer: one module for front ends
    (CLI, bench binaries, tests) to toggle profiling, attach a trace
    file, and read results.  Engine code uses {!Metric}, {!Span} and
    {!Sink} directly; front ends should only need this module.

    Costs when everything is off (the default): each counter probe is a
    flag read and a branch; each span is two flag reads; no clock reads,
    no allocation. *)

val set_profiling : bool -> unit
(** Enables metric recording ({!Metric.set_enabled}).  Backs
    [--profile]. *)

val profiling : unit -> bool

val trace_to_file : string -> unit
(** Opens (truncating) a JSONL trace at the given path, installs it as
    the process sink, and turns profiling on (span/counter events are
    only meaningful with recording enabled).  Backs [--trace FILE].
    Replaces any previously attached trace file. *)

val close_trace : unit -> unit
(** Emits one final ["counters"] event carrying every registered
    counter value and histogram total, flushes, closes the file, and
    restores the null sink.  A no-op when no trace file is attached.
    Registered with [at_exit] by {!trace_to_file}, so explicit calls
    are only needed to cut a trace mid-process. *)

val snapshot : unit -> Metric.snapshot

val reset : unit -> unit

val print_summary : out_channel -> unit
(** Pretty counter/histogram table for [--profile] output: counters
    sorted by name, then histograms with count, total and mean.
    Metrics that never fired (all zero) are omitted. *)
