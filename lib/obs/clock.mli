(** Nanosecond clock for span timings.

    The default reads the system wall clock once per span boundary; on
    the engine's time scales (microseconds and up) it is monotonic for
    all practical purposes, and the subsystem deliberately takes no
    dependency that would provide a raw monotonic source.  Tests inject
    a deterministic clock through {!set} to make span durations
    reproducible. *)

val now_ns : unit -> float
(** Current time in nanoseconds.  Only differences are meaningful. *)

val set : (unit -> float) option -> unit
(** Overrides the clock ([None] restores the default).  Test hook. *)
