type probe = { name : string; hist : Metric.Histogram.t }

let probe name = { name; hist = Metric.Histogram.make ("span." ^ name) }

let record p ~fields ~t0 =
  let dur = Clock.now_ns () -. t0 in
  if Metric.enabled () then Metric.Histogram.observe p.hist dur;
  if Sink.active () then begin
    let fields = match fields with None -> [] | Some f -> f () in
    Sink.emit
      {
        Sink.kind = "span";
        name = p.name;
        t_ns = t0;
        fields = fields @ [ ("dur_ns", Sink.Float dur) ];
      }
  end

let with_probe ?fields p f =
  if not (Metric.enabled () || Sink.active ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
      record p ~fields ~t0;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record p ~fields ~t0;
      Printexc.raise_with_backtrace e bt
  end

let with_ ?fields name f =
  if not (Metric.enabled () || Sink.active ()) then f ()
  else with_probe ?fields (probe name) f
