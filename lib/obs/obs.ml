let set_profiling = Metric.set_enabled

let profiling = Metric.enabled

let snapshot = Metric.snapshot

let reset = Metric.reset

let counters_event () =
  let s = Metric.snapshot () in
  let fields =
    List.map (fun (name, v) -> (name, Sink.Int v)) s.Metric.counters
    @ List.concat_map
        (fun (name, h) ->
          [
            (name ^ ".count", Sink.Int h.Metric.hcount);
            (name ^ ".sum", Sink.Float h.Metric.hsum);
          ])
        s.Metric.histograms
  in
  { Sink.kind = "counters"; name = "final"; t_ns = Clock.now_ns (); fields }

let trace_oc : out_channel option ref = ref None

let close_trace () =
  match !trace_oc with
  | None -> ()
  | Some oc ->
    trace_oc := None;
    Sink.emit (counters_event ());
    Sink.flush ();
    Sink.install None;
    close_out_noerr oc

let at_exit_registered = ref false

let trace_to_file path =
  close_trace ();
  let oc = open_out path in
  trace_oc := Some oc;
  Sink.install (Some (Sink.jsonl oc));
  set_profiling true;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit close_trace
  end

let print_summary out =
  let s = Metric.snapshot () in
  let counters = List.filter (fun (_, v) -> v <> 0) s.Metric.counters in
  let hists = List.filter (fun (_, h) -> h.Metric.hcount > 0) s.Metric.histograms in
  if counters = [] && hists = [] then
    output_string out "profile: no metrics recorded\n"
  else begin
    let width =
      List.fold_left
        (fun w (name, _) -> max w (String.length name))
        (String.length "metric")
        (List.map (fun (n, _) -> (n, ())) counters
        @ List.map (fun (n, _) -> (n, ())) hists)
    in
    let line = String.make (width + 40) '-' in
    if counters <> [] then begin
      Printf.fprintf out "%-*s  %12s\n%s\n" width "counter" "value" line;
      List.iter (fun (name, v) -> Printf.fprintf out "%-*s  %12d\n" width name v) counters
    end;
    if hists <> [] then begin
      if counters <> [] then output_char out '\n';
      Printf.fprintf out "%-*s  %10s  %14s  %12s\n%s\n" width "histogram" "count" "total" "mean" line;
      List.iter
        (fun (name, h) ->
          Printf.fprintf out "%-*s  %10d  %14.4g  %12.4g\n" width name h.Metric.hcount
            h.Metric.hsum
            (h.Metric.hsum /. float_of_int h.Metric.hcount))
        hists
    end
  end
