(** Timed regions.

    A span measures one region of engine work (a dynamics step, an
    equilibrium scan, a scheduler job).  When neither profiling nor a
    sink is active, {!with_} runs its body with no clock read at all —
    the check is two flag loads.  When active, the duration lands in the
    ["span.<name>"] histogram (profiling) and/or is emitted as a
    ["span"] event (sink), with [dur_ns] appended to the caller's
    fields. *)

type probe
(** A pre-registered span name: resolves the histogram once so hot
    loops don't re-enter the metric registry per iteration. *)

val probe : string -> probe

val with_probe : ?fields:(unit -> (string * Sink.value) list) -> probe -> (unit -> 'a) -> 'a
(** Times [f] against the probe.  [fields] is only evaluated when a
    sink is active.  Exceptions propagate; the span is still recorded
    (with the partial duration) so traces show where a run died. *)

val with_ : ?fields:(unit -> (string * Sink.value) list) -> string -> (unit -> 'a) -> 'a
(** [with_ name f] = [with_probe (probe name) f] without caching — fine
    for coarse regions (whole runs, scheduler jobs). *)
