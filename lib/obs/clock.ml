let default () = Unix.gettimeofday () *. 1e9

let current = Atomic.make default

let now_ns () = (Atomic.get current) ()

let set = function
  | None -> Atomic.set current default
  | Some f -> Atomic.set current f
