(** Process-wide counters and histograms.

    Instrumentation points declare their metrics once, at module
    initialization, through {!Counter.make} / {!Histogram.make}; the
    registry is keyed by name, so re-declaring a name returns the same
    metric (tests and the bench harness look metrics up by name).

    Recording is gated on one plain-flag read ({!enabled}): with
    profiling off — the default — a counter increment costs a load and a
    conditional branch, nothing else, which is what keeps the engine's
    inner kernels instrumentable at all.  With profiling on, updates are
    atomic, so metrics recorded concurrently from several domains merge
    exactly (the merge is the sum — see the cross-domain tests). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turns recording on/off process-wide.  Backs [--profile]. *)

module Counter : sig
  type t

  val make : string -> t
  (** Registers (or finds) the counter of that name. *)

  val name : t -> string

  val incr : t -> unit
  (** Adds 1 when {!enabled}; otherwise a flag read and a branch. *)

  val add : t -> int -> unit

  val value : t -> int

  val reset : t -> unit
end

module Histogram : sig
  (** Base-2 exponential buckets: bucket 0 counts observations [<= 1],
      bucket [i >= 1] counts observations in [(2^(i-1), 2^i]]; the last
      bucket absorbs everything larger.  Enough resolution for span
      durations and change-report sizes, with O(1) bounded memory. *)

  type t

  val make : string -> t

  val name : t -> string

  val observe : t -> float -> unit
  (** Records when {!enabled}; negative and NaN observations count into
      bucket 0 (they never arise from the engine's probes). *)

  val count : t -> int

  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Nonzero buckets as [(upper_bound, count)], ascending. *)

  val reset : t -> unit
end

(** {1 Snapshots} *)

type histogram_snapshot = {
  hcount : int;
  hsum : float;
  hbuckets : (float * int) list;  (** nonzero [(upper_bound, count)] *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Point-in-time copy of every registered metric (including zeros). *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum — the merge rule for combining snapshots taken in
    different processes or before/after a reset.  Metrics present in
    only one side pass through unchanged. *)

val reset : unit -> unit
(** Zeroes every registered metric (the registry itself persists). *)

val find_counter : string -> Counter.t option
val find_histogram : string -> Histogram.t option
