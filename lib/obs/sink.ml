type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  kind : string;
  name : string;
  t_ns : float;
  fields : (string * value) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

(* Minimal JSON rendering, compatible with the parser in lib/runs/json.ml:
   integers without a decimal point, non-finite floats as null (JSON has
   no NaN/infinity), strings with the mandatory escapes only. *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let value_into buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_into buf x
  | Str s -> escape_into buf s
  | Bool b -> Buffer.add_string buf (string_of_bool b)

let event_to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"kind\":";
  escape_into buf e.kind;
  Buffer.add_string buf ",\"name\":";
  escape_into buf e.name;
  Buffer.add_string buf ",\"t_ns\":";
  float_into buf e.t_ns;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      escape_into buf k;
      Buffer.add_char buf ':';
      value_into buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl oc =
  let m = Mutex.create () in
  let emit e =
    let line = event_to_json e in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        output_string oc line;
        output_char oc '\n')
  in
  { emit; flush = (fun () -> flush oc) }

let callback f =
  (* The contract says emit must never raise: the engine's probes fire
     from arbitrary internals, so a forwarding failure is swallowed. *)
  let emit e = try f e with _ -> () in
  { emit; flush = ignore }

let tee a b =
  {
    emit = (fun e -> a.emit e; b.emit e);
    flush = (fun () -> a.flush (); b.flush ());
  }

let memory () =
  let m = Mutex.create () in
  let events = ref [] in
  let emit e =
    Mutex.lock m;
    events := e :: !events;
    Mutex.unlock m
  in
  ({ emit; flush = ignore }, fun () -> List.rev !events)

(* The installed sink.  [active_flag] is a plain ref deliberately: the
   hot paths read it without synchronization, and a stale read during an
   install/uninstall race merely drops or emits one borderline event —
   never corrupts state (the sink value itself is read once, after the
   flag). *)

let active_flag = ref false

let current = ref null

let install = function
  | None ->
    active_flag := false;
    current := null
  | Some s ->
    current := s;
    active_flag := true

let active () = !active_flag

let emit e = if !active_flag then !current.emit e

let flush () = !current.flush ()
