(* Plain-ref gate: hot paths read it unsynchronized.  A racy stale read
   can only lose or record a handful of borderline updates around the
   moment profiling is toggled — counts are monotone diagnostics, not
   verdicts, and toggling happens at run boundaries. *)
let on = ref false

let enabled () = !on

let set_enabled v = on := v

let nbuckets = 64

(* Bucket 0: x <= 1 (and the never-arising negatives/NaN).  Bucket i:
   2^(i-1) < x <= 2^i.  The last bucket absorbs the tail. *)
let bucket_of x =
  if not (x > 1.0) then 0
  else begin
    let rec go ub i = if x <= ub || i = nbuckets - 1 then i else go (ub *. 2.0) (i + 1) in
    go 2.0 1
  end

let upper_bound i = if i = 0 then 1.0 else Float.ldexp 1.0 i

let rec atomic_add_float a x =
  let c = Atomic.get a in
  if not (Atomic.compare_and_set a c (c +. x)) then atomic_add_float a x

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let create name = { name; v = Atomic.make 0 }

  let name c = c.name

  let incr c = if !on then Atomic.incr c.v

  let add c k = if !on then ignore (Atomic.fetch_and_add c.v k)

  let value c = Atomic.get c.v

  let reset c = Atomic.set c.v 0

  (* filled in below, after the registry *)
  let make_ref : (string -> t) ref = ref (fun _ -> assert false)

  let make name = !make_ref name
end

module Histogram = struct
  type t = {
    name : string;
    counts : int Atomic.t array;
    total : int Atomic.t;
    sum : float Atomic.t;
  }

  let create name =
    {
      name;
      counts = Array.init nbuckets (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.0;
    }

  let name h = h.name

  let observe h x =
    if !on then begin
      Atomic.incr h.total;
      atomic_add_float h.sum x;
      Atomic.incr h.counts.(bucket_of x)
    end

  let count h = Atomic.get h.total

  let sum h = Atomic.get h.sum

  let buckets h =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      let c = Atomic.get h.counts.(i) in
      if c > 0 then acc := (upper_bound i, c) :: !acc
    done;
    !acc

  let reset h =
    Array.iter (fun a -> Atomic.set a 0) h.counts;
    Atomic.set h.total 0;
    Atomic.set h.sum 0.0

  let make_ref : (string -> t) ref = ref (fun _ -> assert false)

  let make name = !make_ref name
end

(* Registry: metric declaration happens at module-initialization time
   (and occasionally from tests), so a mutex is fine; the recording hot
   path never touches it. *)

let registry_lock = Mutex.create ()

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 64

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let () =
  Counter.make_ref :=
    (fun name ->
      with_registry (fun () ->
          match Hashtbl.find_opt counters name with
          | Some c -> c
          | None ->
            let c = Counter.create name in
            Hashtbl.add counters name c;
            c));
  Histogram.make_ref :=
    (fun name ->
      with_registry (fun () ->
          match Hashtbl.find_opt histograms name with
          | Some h -> h
          | None ->
            let h = Histogram.create name in
            Hashtbl.add histograms name h;
            h))

let find_counter name = with_registry (fun () -> Hashtbl.find_opt counters name)

let find_histogram name = with_registry (fun () -> Hashtbl.find_opt histograms name)

type histogram_snapshot = {
  hcount : int;
  hsum : float;
  hbuckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let by_name (a, _) (b, _) = Stdlib.compare a b

let snapshot () =
  with_registry (fun () ->
      let cs =
        Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) counters []
      in
      let hs =
        Hashtbl.fold
          (fun name h acc ->
            ( name,
              {
                hcount = Histogram.count h;
                hsum = Histogram.sum h;
                hbuckets = Histogram.buckets h;
              } )
            :: acc)
          histograms []
      in
      { counters = List.sort by_name cs; histograms = List.sort by_name hs })

let merge_assoc merge_values xs ys =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k v
      | Some v0 -> Hashtbl.replace tbl k (merge_values v0 v))
    ys;
  List.sort by_name (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let merge_hist a b =
  {
    hcount = a.hcount + b.hcount;
    hsum = a.hsum +. b.hsum;
    hbuckets = merge_assoc ( + ) a.hbuckets b.hbuckets;
  }

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Counter.reset c) counters;
      Hashtbl.iter (fun _ h -> Histogram.reset h) histograms)
