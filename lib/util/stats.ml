type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int n
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left Float.min Float.infinity xs;
      max = List.fold_left Float.max Float.neg_infinity xs;
    }

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean: empty sample"
  | _ ->
    if List.exists (fun x -> x <= 0.0) xs then
      invalid_arg "Stats.geometric_mean: non-positive sample";
    exp (mean (List.map log xs))

let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty sample"
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
