let eps = 1e-9

let approx_eq ?(tol = eps) a b =
  (* Equal infinities compare equal (their difference would be NaN). *)
  a = b || Float.abs (a -. b) <= tol

let lt ?(tol = eps) a b = a < b -. tol

let le ?(tol = eps) a b = a <= b +. tol

let is_finite x = Float.is_finite x

let min_array a =
  if Array.length a = 0 then invalid_arg "Flt.min_array: empty";
  Array.fold_left Float.min a.(0) a

let max_array a =
  if Array.length a = 0 then invalid_arg "Flt.max_array: empty";
  Array.fold_left Float.max a.(0) a

let sum a =
  (* Kahan summation: distance costs add up thousands of terms and the
     equilibrium checks compare them with a 1e-9 tolerance.  Infinite
     entries (disconnected agents) must propagate as infinity — the naive
     compensation would produce inf - inf = NaN. *)
  if Array.exists (fun x -> x = Float.infinity) a then Float.infinity
  else begin
    let s = ref 0.0 and c = ref 0.0 in
    for i = 0 to Array.length a - 1 do
      let y = a.(i) -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t
    done;
    !s
  end

let sum_min_add a w b =
  (* Σ_i min(a_i, w + b_i), the edge-insertion distance sum, in one
     allocation-free pass.  Same semantics as materialising the per-entry
     minima and running [sum]: Kahan-compensated, and any infinite term
     (both sides disconnected) makes the whole sum infinite.  Infinite
     terms are flagged instead of added so no inf ever reaches the
     compensation arithmetic. *)
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Flt.sum_min_add: length mismatch";
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for i = 0 to n - 1 do
    let m = Float.min (Array.unsafe_get a i) (w +. Array.unsafe_get b i) in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t
    end
  done;
  if !any_inf then Float.infinity else !s
