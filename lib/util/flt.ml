let eps = 1e-9

let approx_eq ?(tol = eps) a b =
  (* Equal infinities compare equal (their difference would be NaN). *)
  a = b || Float.abs (a -. b) <= tol

let lt ?(tol = eps) a b = a < b -. tol

let le ?(tol = eps) a b = a <= b +. tol

let is_finite x = Float.is_finite x

let min_array a =
  if Array.length a = 0 then invalid_arg "Flt.min_array: empty";
  Array.fold_left Float.min a.(0) a

let max_array a =
  if Array.length a = 0 then invalid_arg "Flt.max_array: empty";
  Array.fold_left Float.max a.(0) a

let sum a =
  (* Kahan summation: distance costs add up thousands of terms and the
     equilibrium checks compare them with a 1e-9 tolerance.  Infinite
     entries (disconnected agents) must propagate as infinity — the naive
     compensation would produce inf - inf = NaN. *)
  if Array.exists (fun x -> x = Float.infinity) a then Float.infinity
  else begin
    let s = ref 0.0 and c = ref 0.0 in
    for i = 0 to Array.length a - 1 do
      let y = a.(i) -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t
    done;
    !s
  end
