type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Non-negative 62-bit int from the top bits: avoids sign issues on the
   OCaml [int] type. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, bound). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let coin t p = float t 1.0 < p

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  let a = permutation t n in
  Array.to_list (Array.sub a 0 k)
