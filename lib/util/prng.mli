(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the repository flows through this module so
    that all experiments are reproducible bit-for-bit from a seed.  The
    generator is the SplitMix64 sequence of Steele, Lea and Flood, which has
    a 64-bit state, passes BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator; the two
    streams do not overlap in practice. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in \[lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of \[0..n-1\]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    \[0..n-1\]; requires [k <= n]. *)
