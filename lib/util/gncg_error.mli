(** Structured errors for the engine's trust boundaries.

    Every place the engine accepts data it did not compute itself — a
    serialized host, a journal line, a random-model parameterization, a
    caller-supplied metric — classifies failures with this one type
    instead of a bare [Failure _] string: a {e kind} (what invariant
    broke), a {e location} (where in the input), and a {e context} (which
    API boundary rejected it).  Boundaries expose [result]-returning
    entry points; the historical raising entry points survive as thin
    aliases that raise {!Error} carrying the same structured value.

    The module lives in [lib/util] so every layer (metric, graph, core,
    runs) can agree on the type without new dependencies. *)

type kind =
  | Parse  (** malformed textual input *)
  | Io  (** file-system failure while reading or writing *)
  | Bounds  (** an index or size out of range *)
  | Not_finite  (** NaN or infinity where a finite number is required *)
  | Negative  (** a negative (or non-positive) weight, price, or size *)
  | Asymmetric  (** [w(u,v) <> w(v,u)] in a supposedly symmetric host *)
  | Triangle  (** a triangle-inequality violation in a metric host *)
  | Disconnected  (** a host or built network with unreachable agents *)
  | Inconsistent  (** strategy/ownership state that contradicts itself *)
  | Corrupt  (** a journal or artifact that fails integrity checks *)
  | Internal  (** a supposedly unreachable state; always a bug *)

type location =
  | Nowhere
  | Line of int  (** 1-based line of a textual input *)
  | Line_column of int * int  (** 1-based line and column *)
  | Vertex of int
  | Pair of int * int
  | Triple of int * int * int  (** the violating triangle [(u, v, via)] *)
  | File of string
  | File_line of string * int

type t = {
  kind : kind;
  where : location;
  context : string;  (** the rejecting boundary, e.g. ["Serialize.host_of_string"] *)
  message : string;
}

exception Error of t

val v : ?where:location -> context:string -> kind -> string -> t

val fail : ?where:location -> context:string -> kind -> string -> ('a, t) result
(** [Result.error] of {!v}. *)

val failf :
  ?where:location ->
  context:string ->
  kind ->
  ('fmt, unit, string, ('a, t) result) format4 ->
  'fmt

val raise_ : t -> 'a
(** Raises {!Error}. *)

val unreachable : context:string -> string -> 'a
(** Raises an {!Internal} error: the typed replacement for
    [assert false] on paths the surrounding invariants rule out. *)

val get_ok : ('a, t) result -> 'a
(** [Ok] payload, or raises {!Error} — the bridge the deprecated raising
    aliases are built from. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Runs the thunk, catching {!Error} (and [Sys_error], mapped to
    {!Io}) into [Error _].  Other exceptions propagate. *)

val in_file : string -> t -> t
(** Attaches a file path to an error's location: [Line n] and
    [Line_column (n, _)] become [File_line (path, n)], [Nowhere] becomes
    [File path]; locations that already carry structure are kept. *)

val kind_to_string : kind -> string

val location_to_string : location -> string
(** Empty for [Nowhere], otherwise a short human form such as
    ["line 12"] or ["pair (3,7)"]. *)

val to_string : t -> string
(** One line: [context: kind[ at location]: message]. *)

(** {1 Wire encoding}

    A flat, codec-agnostic key/value form for shipping errors across a
    process boundary (the serve protocol renders it as a JSON object).
    Unlike the display strings above, these are an exact round-trip
    contract: [of_wire (to_wire e) = Ok e] for every [e]. *)

val kind_to_wire : kind -> string
(** Stable machine slug, e.g. ["not-finite"] — distinct from
    {!kind_to_string}, which is a display form. *)

val kind_of_wire : string -> (kind, string) result

val location_to_wire : location -> string
(** Compact single-string form (["pair:3:7"], ["file-line:12:PATH"]);
    empty for [Nowhere].  File paths are placed last so embedded [':']
    cannot confuse the parse. *)

val location_of_wire : string -> (location, string) result

val to_wire : t -> (string * string) list
(** [[("kind", _); ("context", _); ("message", _); ("where", _)]]. *)

val of_wire : (string * string) list -> (t, string) result
(** Tolerant of missing [context]/[message]/[where] (defaulted empty);
    [kind] is required. *)

val pp : Format.formatter -> t -> unit

(** {1 Strict validation mode}

    A process-wide flag backing the CLI's [--strict-validate]: when on,
    the boundaries that can validate cheaply but do not by default
    (serialized loads, random-host generation) run their full validation
    and reject bad inputs with a typed error.  Reading the flag is a
    plain ref read; it is set once at startup, not toggled
    concurrently. *)

val set_strict_validation : bool -> unit

val strict_validation : unit -> bool
