type t =
  | Seq
  | Par of { domains : int option }

let seq = Seq

let par ?domains () = Par { domains }

let default = Par { domains = None }

let of_string s =
  match s with
  | "seq" -> Ok Seq
  | "par" -> Ok (Par { domains = None })
  | _ ->
    (match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "par" -> (
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt k with
      | Some d when d >= 1 -> Ok (Par { domains = Some d })
      | _ -> Error (Printf.sprintf "invalid domain count %S (want par:K, K >= 1)" k))
    | _ -> Error (Printf.sprintf "invalid execution strategy %S (want seq, par or par:K)" s))

let to_string = function
  | Seq -> "seq"
  | Par { domains = None } -> "par"
  | Par { domains = Some d } -> Printf.sprintf "par:%d" d

let pp fmt t = Format.pp_print_string fmt (to_string t)

let domain_count = function
  | Seq -> 1
  | Par { domains = Some d } -> max 1 d
  | Par { domains = None } -> Parallel.default_domains ()

let init ~exec n f =
  match exec with
  | Seq -> Array.init n f
  | Par { domains } -> Parallel.init ?domains n f

let map_array ~exec f a =
  match exec with
  | Seq -> Array.map f a
  | Par { domains } -> Parallel.map_array ?domains f a

let for_all ~exec n pred =
  match exec with
  | Seq ->
    if n < 0 then invalid_arg "Exec.for_all";
    let rec go i = i >= n || (pred i && go (i + 1)) in
    go 0
  | Par { domains } -> Parallel.for_all ?domains n pred

let exists ~exec n pred = not (for_all ~exec n (fun i -> not (pred i)))
