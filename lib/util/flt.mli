(** Tolerant floating-point comparisons.

    Game costs are sums of edge weights; a strategy change only counts as an
    improvement if it beats the incumbent by more than the tolerance, so that
    floating-point noise never produces spurious improving moves. *)

val eps : float
(** Default absolute tolerance (1e-9). *)

val approx_eq : ?tol:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= tol]. *)

val lt : ?tol:float -> float -> float -> bool
(** Strictly-less-than with tolerance: [a < b - tol]. *)

val le : ?tol:float -> float -> float -> bool
(** Less-or-equal with tolerance: [a <= b + tol]. *)

val is_finite : float -> bool

val min_array : float array -> float
(** Minimum of a non-empty array. *)

val max_array : float array -> float
(** Maximum of a non-empty array. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val sum_min_add : float array -> float -> float array -> float
(** [sum_min_add a w b] is [Σ_i min(a_i, w +. b_i)] in one
    allocation-free Kahan-compensated pass — the streaming form of the
    edge-insertion distance sum ([sum] over the materialized minima).
    Any infinite term makes the result infinite, like [sum]. *)
