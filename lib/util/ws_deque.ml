type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* index of the first (top) element *)
  mutable size : int;
  lock : Mutex.t;
}

let create () = { buf = Array.make 16 None; head = 0; size = 0; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) None in
  for i = 0 to t.size - 1 do
    bigger.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- bigger;
  t.head <- 0

let push t x =
  with_lock t (fun () ->
      if t.size = Array.length t.buf then grow t;
      t.buf.((t.head + t.size) mod Array.length t.buf) <- Some x;
      t.size <- t.size + 1)

let pop t =
  with_lock t (fun () ->
      if t.size = 0 then None
      else begin
        let i = (t.head + t.size - 1) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.size <- t.size - 1;
        x
      end)

let steal t =
  with_lock t (fun () ->
      if t.size = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.size <- t.size - 1;
        x
      end)

let length t = with_lock t (fun () -> t.size)
