(** Execution strategy: the single knob that replaced the deprecated
    per-function parallel twins.

    Every scan that used to ship as a sequential/parallel pair now
    takes [?exec:Exec.t]: [Seq] is the historical sequential code path
    (deterministic evaluation order, useful under a debugger and for
    bit-exact float sums), [Par] fans out over OCaml domains via
    {!Parallel}.  [Par { domains = None }] uses
    {!Parallel.default_domains}, so [--domains] keeps working
    unchanged. *)

type t =
  | Seq
  | Par of { domains : int option }

val seq : t

val par : ?domains:int -> unit -> t

val default : t
(** [Par { domains = None }] — the historical default for call sites
    that always parallelized (the CLI verbs). *)

val of_string : string -> (t, string) result
(** ["seq"], ["par"], or ["par:K"] with [K >= 1]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val domain_count : t -> int
(** [Seq] → 1; [Par { domains = Some d }] → [d];
    [Par { domains = None }] → {!Parallel.default_domains}[ ()]. *)

(** {1 Combinators}

    Same contracts as the {!Parallel} equivalents; under [Seq] they are
    the plain sequential [Array.init] / left-to-right scans. *)

val init : exec:t -> int -> (int -> 'a) -> 'a array

val map_array : exec:t -> ('a -> 'b) -> 'a array -> 'b array

val for_all : exec:t -> int -> (int -> bool) -> bool

val exists : exec:t -> int -> (int -> bool) -> bool
