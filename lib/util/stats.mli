(** Small summary statistics used by the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample (population standard deviation). *)

val mean : float list -> float

val geometric_mean : float list -> float
(** Geometric mean of positive samples. *)

val median : float list -> float
