(** Work-stealing deque: the owner pushes and pops at the bottom (LIFO),
    thieves steal from the top (FIFO), so the oldest — on a dealt batch,
    the largest remaining — block of work migrates first.

    The implementation is a mutex-protected ring buffer, not a lock-free
    Chase–Lev deque: the runs scheduler executes coarse jobs (whole
    dynamics runs, milliseconds to minutes each), so contention on the
    deque is negligible and the simple structure is preferred for its
    obvious correctness.  All operations are safe to call from any
    domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner side: append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner side: remove from the bottom (most recently pushed). *)

val steal : 'a t -> 'a option
(** Thief side: remove from the top (least recently pushed). *)

val length : 'a t -> int
(** Instantaneous size (racy by nature when other domains are active). *)
