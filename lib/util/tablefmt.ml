type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Right in
  let line row =
    row
    |> List.mapi (fun i c -> pad (align_of i) widths.(i) c)
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  print_newline ()

let fl ?(digits = 4) x =
  if Float.is_integer x && Float.abs x < 1e15 && digits = 0 then
    Printf.sprintf "%.0f" x
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.*f" digits x
