(** Minimal fork-join helpers over OCaml 5 domains.

    The engine's hot loops (all-pairs shortest paths, per-agent cost sums,
    seed sweeps) are embarrassingly parallel: this module provides the
    fork-join skeleton behind {!Exec.Par}.  Work is split
    into contiguous chunks, one domain per chunk; results land in a
    pre-allocated array, so no synchronization beyond [Domain.join] is
    needed.  Callers must ensure [f] only *reads* shared structures. *)

val default_domains : unit -> int
(** The process-wide override when set (see {!set_default_domains}),
    otherwise [Domain.recommended_domain_count () - 1] (never below 1):
    one hardware thread is left for the orchestrating domain — the CLI
    main loop or the serve daemon's connection threads. *)

val set_default_domains : int option -> unit
(** Overrides the process-wide default domain count used whenever a
    [?domains] argument is omitted ([None] resets to the hardware
    default).  Backs the [--domains] flag of the CLI and bench
    runners. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [Array.init n f] with the index space split across
    domains.  [f] runs concurrently: it must be safe to call from several
    domains at once on disjoint indices. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; same safety contract. *)

val for_all : ?domains:int -> int -> (int -> bool) -> bool
(** [for_all n pred] is [pred 0 && ... && pred (n-1)] with the index space
    split across domains and an early exit: once any domain finds a
    counterexample the others stop before their next index.  Unlike the
    sequential [&&] chain the set of evaluated indices is scheduler
    dependent — [pred] must be pure.  Powers the parallel equilibrium
    scans. *)

val exists : ?domains:int -> int -> (int -> bool) -> bool
(** Dual of {!for_all}. *)
