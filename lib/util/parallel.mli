(** Minimal fork-join helpers over OCaml 5 domains.

    The engine's hot loops (all-pairs shortest paths, per-agent cost sums,
    seed sweeps) are embarrassingly parallel: this module provides the
    fork-join skeleton used by their [_parallel] variants.  Work is split
    into contiguous chunks, one domain per chunk; results land in a
    pre-allocated array, so no synchronization beyond [Domain.join] is
    needed.  Callers must ensure [f] only *reads* shared structures. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [Array.init n f] with the index space split across
    domains.  [f] runs concurrently: it must be safe to call from several
    domains at once on disjoint indices. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; same safety contract. *)
