type kind =
  | Parse
  | Io
  | Bounds
  | Not_finite
  | Negative
  | Asymmetric
  | Triangle
  | Disconnected
  | Inconsistent
  | Corrupt
  | Internal

type location =
  | Nowhere
  | Line of int
  | Line_column of int * int
  | Vertex of int
  | Pair of int * int
  | Triple of int * int * int
  | File of string
  | File_line of string * int

type t = {
  kind : kind;
  where : location;
  context : string;
  message : string;
}

exception Error of t

let v ?(where = Nowhere) ~context kind message = { kind; where; context; message }

let fail ?where ~context kind message = Stdlib.Error (v ?where ~context kind message)

let failf ?where ~context kind fmt =
  Printf.ksprintf (fun message -> fail ?where ~context kind message) fmt

let raise_ e = raise (Error e)

let unreachable ~context message = raise_ (v ~context Internal message)

let get_ok = function Ok x -> x | Stdlib.Error e -> raise_ e

let protect f =
  match f () with
  | x -> Ok x
  | exception Error e -> Stdlib.Error e
  | exception Sys_error msg -> fail ~context:"Io" Io msg

let in_file path e =
  let where =
    match e.where with
    | Line n | Line_column (n, _) -> File_line (path, n)
    | Nowhere -> File path
    | w -> w
  in
  { e with where }

let kind_to_string = function
  | Parse -> "parse error"
  | Io -> "io error"
  | Bounds -> "out of bounds"
  | Not_finite -> "non-finite value"
  | Negative -> "negative value"
  | Asymmetric -> "asymmetric weights"
  | Triangle -> "triangle violation"
  | Disconnected -> "disconnected"
  | Inconsistent -> "inconsistent state"
  | Corrupt -> "corrupt artifact"
  | Internal -> "internal error"

let location_to_string = function
  | Nowhere -> ""
  | Line n -> Printf.sprintf "line %d" n
  | Line_column (l, c) -> Printf.sprintf "line %d, column %d" l c
  | Vertex u -> Printf.sprintf "vertex %d" u
  | Pair (u, v) -> Printf.sprintf "pair (%d,%d)" u v
  | Triple (u, v, x) -> Printf.sprintf "triple (%d,%d) via %d" u v x
  | File p -> Printf.sprintf "file %S" p
  | File_line (p, n) -> Printf.sprintf "%s, line %d" p n

(* --- wire encoding ----------------------------------------------------- *)

(* Machine-readable slugs, one per constructor; unlike [kind_to_string]
   (a display form) these are a wire contract: the serve protocol ships
   them across the socket and [kind_of_string] must invert exactly. *)
let kind_to_wire = function
  | Parse -> "parse"
  | Io -> "io"
  | Bounds -> "bounds"
  | Not_finite -> "not-finite"
  | Negative -> "negative"
  | Asymmetric -> "asymmetric"
  | Triangle -> "triangle"
  | Disconnected -> "disconnected"
  | Inconsistent -> "inconsistent"
  | Corrupt -> "corrupt"
  | Internal -> "internal"

let all_kinds =
  [ Parse; Io; Bounds; Not_finite; Negative; Asymmetric; Triangle; Disconnected;
    Inconsistent; Corrupt; Internal ]

let kind_of_wire s =
  match List.find_opt (fun k -> kind_to_wire k = s) all_kinds with
  | Some k -> Ok k
  | None -> Stdlib.Error (Printf.sprintf "unknown error kind %S" s)

(* Locations as one compact string.  Free-form file paths go *last* so a
   path containing ':' cannot confuse the parse (the numeric fields are
   all in front of it). *)
let location_to_wire = function
  | Nowhere -> ""
  | Line n -> Printf.sprintf "line:%d" n
  | Line_column (l, c) -> Printf.sprintf "line:%d:%d" l c
  | Vertex u -> Printf.sprintf "vertex:%d" u
  | Pair (u, v) -> Printf.sprintf "pair:%d:%d" u v
  | Triple (u, v, x) -> Printf.sprintf "triple:%d:%d:%d" u v x
  | File p -> "file:" ^ p
  | File_line (p, n) -> Printf.sprintf "file-line:%d:%s" n p

let location_of_wire s =
  let bad () = Stdlib.Error (Printf.sprintf "unparseable location %S" s) in
  let int_of x = int_of_string_opt x in
  if s = "" then Ok Nowhere
  else
    match String.index_opt s ':' with
    | None -> bad ()
    | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let ints expected =
        let parts = String.split_on_char ':' rest in
        if List.length parts <> expected then None
        else
          let parsed = List.filter_map int_of parts in
          if List.length parsed = expected then Some parsed else None
      in
      match tag with
      | "line" -> (
        match ints 1 with
        | Some [ n ] -> Ok (Line n)
        | _ -> (
          match ints 2 with
          | Some [ l; c ] -> Ok (Line_column (l, c))
          | _ -> bad ()))
      | "vertex" -> (
        match ints 1 with Some [ u ] -> Ok (Vertex u) | _ -> bad ())
      | "pair" -> (
        match ints 2 with Some [ u; v ] -> Ok (Pair (u, v)) | _ -> bad ())
      | "triple" -> (
        match ints 3 with
        | Some [ u; v; x ] -> Ok (Triple (u, v, x))
        | _ -> bad ())
      | "file" -> Ok (File rest)
      | "file-line" -> (
        match String.index_opt rest ':' with
        | None -> bad ()
        | Some j -> (
          match int_of (String.sub rest 0 j) with
          | Some n ->
            Ok (File_line (String.sub rest (j + 1) (String.length rest - j - 1), n))
          | None -> bad ()))
      | _ -> bad ())

let to_wire e =
  [
    ("kind", kind_to_wire e.kind);
    ("context", e.context);
    ("message", e.message);
    ("where", location_to_wire e.where);
  ]

let of_wire fields =
  let get k = List.assoc_opt k fields in
  match get "kind" with
  | None -> Stdlib.Error "missing \"kind\" field"
  | Some ks -> (
    match kind_of_wire ks with
    | Stdlib.Error _ as e -> e
    | Ok kind -> (
      let context = Option.value ~default:"" (get "context") in
      let message = Option.value ~default:"" (get "message") in
      match location_of_wire (Option.value ~default:"" (get "where")) with
      | Stdlib.Error _ as e -> e
      | Ok where -> Ok { kind; where; context; message }))

let to_string e =
  let loc = location_to_string e.where in
  if loc = "" then Printf.sprintf "%s: %s: %s" e.context (kind_to_string e.kind) e.message
  else
    Printf.sprintf "%s: %s at %s: %s" e.context (kind_to_string e.kind) loc e.message

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Printexc integration: an escaped [Error _] prints its structured
   rendering instead of the bare constructor. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Gncg_error.Error: " ^ to_string e)
    | _ -> None)

let strict = ref false

let set_strict_validation v = strict := v

let strict_validation () = !strict
