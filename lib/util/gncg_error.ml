type kind =
  | Parse
  | Io
  | Bounds
  | Not_finite
  | Negative
  | Asymmetric
  | Triangle
  | Disconnected
  | Inconsistent
  | Corrupt
  | Internal

type location =
  | Nowhere
  | Line of int
  | Line_column of int * int
  | Vertex of int
  | Pair of int * int
  | Triple of int * int * int
  | File of string
  | File_line of string * int

type t = {
  kind : kind;
  where : location;
  context : string;
  message : string;
}

exception Error of t

let v ?(where = Nowhere) ~context kind message = { kind; where; context; message }

let fail ?where ~context kind message = Stdlib.Error (v ?where ~context kind message)

let failf ?where ~context kind fmt =
  Printf.ksprintf (fun message -> fail ?where ~context kind message) fmt

let raise_ e = raise (Error e)

let unreachable ~context message = raise_ (v ~context Internal message)

let get_ok = function Ok x -> x | Stdlib.Error e -> raise_ e

let protect f =
  match f () with
  | x -> Ok x
  | exception Error e -> Stdlib.Error e
  | exception Sys_error msg -> fail ~context:"Io" Io msg

let in_file path e =
  let where =
    match e.where with
    | Line n | Line_column (n, _) -> File_line (path, n)
    | Nowhere -> File path
    | w -> w
  in
  { e with where }

let kind_to_string = function
  | Parse -> "parse error"
  | Io -> "io error"
  | Bounds -> "out of bounds"
  | Not_finite -> "non-finite value"
  | Negative -> "negative value"
  | Asymmetric -> "asymmetric weights"
  | Triangle -> "triangle violation"
  | Disconnected -> "disconnected"
  | Inconsistent -> "inconsistent state"
  | Corrupt -> "corrupt artifact"
  | Internal -> "internal error"

let location_to_string = function
  | Nowhere -> ""
  | Line n -> Printf.sprintf "line %d" n
  | Line_column (l, c) -> Printf.sprintf "line %d, column %d" l c
  | Vertex u -> Printf.sprintf "vertex %d" u
  | Pair (u, v) -> Printf.sprintf "pair (%d,%d)" u v
  | Triple (u, v, x) -> Printf.sprintf "triple (%d,%d) via %d" u v x
  | File p -> Printf.sprintf "file %S" p
  | File_line (p, n) -> Printf.sprintf "%s, line %d" p n

let to_string e =
  let loc = location_to_string e.where in
  if loc = "" then Printf.sprintf "%s: %s: %s" e.context (kind_to_string e.kind) e.message
  else
    Printf.sprintf "%s: %s at %s: %s" e.context (kind_to_string e.kind) loc e.message

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Printexc integration: an escaped [Error _] prints its structured
   rendering instead of the bare constructor. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Gncg_error.Error: " ^ to_string e)
    | _ -> None)

let strict = ref false

let set_strict_validation v = strict := v

let strict_validation () = !strict
