(** Plain-text table rendering for the benchmark harness and examples. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a table with a header rule.  Column
    widths adapt to the longest cell; [align] defaults to [Right] for every
    column. *)

val print :
  ?align:align list ->
  header:string list ->
  string list list ->
  unit
(** [print] renders to [stdout] followed by a newline. *)

val fl : ?digits:int -> float -> string
(** Fixed-point float formatting ([digits] defaults to 4); renders
    infinities as ["inf"]. *)
