let default_domains () = min 8 (Domain.recommended_domain_count ())

let init ?domains n f =
  if n < 0 then invalid_arg "Parallel.init";
  if n = 0 then [||]
  else begin
    let domains = match domains with Some d -> max 1 d | None -> default_domains () in
    let domains = min domains n in
    if domains = 1 then Array.init n f
    else begin
      (* First cell computed on the main domain so the result array can be
         allocated without an option layer. *)
      let first = f 0 in
      let result = Array.make n first in
      let chunk = (n + domains - 1) / domains in
      let worker k () =
        let lo = max 1 (k * chunk) in
        let hi = min n ((k + 1) * chunk) - 1 in
        for i = lo to hi do
          result.(i) <- f i
        done
      in
      let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
      List.iter Domain.join handles;
      result
    end
  end

let map_array ?domains f a = init ?domains (Array.length a) (fun i -> f a.(i))
