(* 0 = no override: fall back to the hardware-recommended count. *)
let override = Atomic.make 0

let set_default_domains = function
  | None -> Atomic.set override 0
  | Some d ->
    if d < 1 then invalid_arg "Parallel.set_default_domains";
    Atomic.set override d

let default_domains () =
  let o = Atomic.get override in
  if o > 0 then o
  else
    (* Leave one hardware thread for the orchestrating domain (the CLI
       main loop, the serve daemon's accept/connection threads): a pool
       that takes every core starves the producer feeding it. *)
    max 1 (Domain.recommended_domain_count () - 1)

let init ?domains n f =
  if n < 0 then invalid_arg "Parallel.init";
  if n = 0 then [||]
  else begin
    let domains = match domains with Some d -> max 1 d | None -> default_domains () in
    let domains = min domains n in
    if domains = 1 then Array.init n f
    else begin
      (* First cell computed on the main domain so the result array can be
         allocated without an option layer. *)
      let first = f 0 in
      let result = Array.make n first in
      let chunk = (n + domains - 1) / domains in
      let worker k () =
        let lo = max 1 (k * chunk) in
        let hi = min n ((k + 1) * chunk) - 1 in
        for i = lo to hi do
          result.(i) <- f i
        done
      in
      let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
      List.iter Domain.join handles;
      result
    end
  end

let map_array ?domains f a = init ?domains (Array.length a) (fun i -> f a.(i))

let for_all ?domains n pred =
  if n < 0 then invalid_arg "Parallel.for_all";
  if n = 0 then true
  else begin
    let domains = match domains with Some d -> max 1 d | None -> default_domains () in
    let domains = min domains n in
    if domains = 1 then begin
      let rec go i = i >= n || (pred i && go (i + 1)) in
      go 0
    end
    else begin
      (* Early exit: a counterexample found by any domain stops the
         others at their next index. *)
      let failed = Atomic.make false in
      let chunk = (n + domains - 1) / domains in
      let worker k () =
        let lo = k * chunk in
        let hi = min n ((k + 1) * chunk) - 1 in
        let i = ref lo in
        while (not (Atomic.get failed)) && !i <= hi do
          if not (pred !i) then Atomic.set failed true;
          incr i
        done
      in
      let handles = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
      worker 0 ();
      List.iter Domain.join handles;
      not (Atomic.get failed)
    end
  end

let exists ?domains n pred = not (for_all ?domains n (fun i -> not (pred i)))
