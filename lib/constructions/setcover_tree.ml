module Tree_metric = Gncg_metric.Tree_metric
module Strategy = Gncg.Strategy

type params = { big_l : float; eps : float; beta : float }

let default_params = { big_l = 100.0; eps = 0.001; beta = 1.0 }

let check_params p ~k =
  let kf = float_of_int k in
  if not (p.big_l > 0.0 && p.eps > 0.0 && p.beta > 0.0) then
    invalid_arg "Setcover_tree: parameters must be positive";
  if p.beta <= 2.0 *. kf *. p.eps then
    invalid_arg "Setcover_tree: need beta > 2*k*eps";
  if p.beta >= p.big_l /. 3.0 then invalid_arg "Setcover_tree: need beta < L/3";
  if p.eps >= p.big_l /. 1000.0 then invalid_arg "Setcover_tree: need L >> eps"

let nb_subsets (sc : Set_cover.t) = Array.length sc.Set_cover.subsets

let game_size sc = 2 + (2 * nb_subsets sc) + sc.Set_cover.universe

let u_agent = 0

let c_hub = 1

let subset_node sc i =
  if i < 0 || i >= nb_subsets sc then invalid_arg "Setcover_tree.subset_node";
  2 + i

let blocker_node sc i =
  if i < 0 || i >= nb_subsets sc then invalid_arg "Setcover_tree.blocker_node";
  2 + nb_subsets sc + i

let element_node sc j =
  if j < 0 || j >= sc.Set_cover.universe then invalid_arg "Setcover_tree.element_node";
  2 + (2 * nb_subsets sc) + j

(* Each element hangs off the first subset containing it in the tree. *)
let anchor_subset sc j =
  let m = nb_subsets sc in
  let rec find i =
    if i >= m then invalid_arg "Setcover_tree: element uncovered"
    else if List.mem j sc.Set_cover.subsets.(i) then i
    else find (i + 1)
  in
  find 0

let tree ?(params = default_params) sc =
  check_params params ~k:sc.Set_cover.universe;
  let m = nb_subsets sc in
  let edges = ref [] in
  edges := (c_hub, u_agent, params.big_l -. params.eps) :: !edges;
  for i = 0 to m - 1 do
    edges := (u_agent, blocker_node sc i, (params.big_l -. params.beta) /. 2.0) :: !edges;
    edges := (c_hub, subset_node sc i, params.eps) :: !edges
  done;
  for j = 0 to sc.Set_cover.universe - 1 do
    edges := (subset_node sc (anchor_subset sc j), element_node sc j, params.big_l) :: !edges
  done;
  Tree_metric.make (game_size sc) !edges

let host ?params sc = Gncg.Host.make ~alpha:1.0 (Tree_metric.metric (tree ?params sc))

let profile ?(params = default_params) sc =
  check_params params ~k:sc.Set_cover.universe;
  let m = nb_subsets sc in
  let s = ref (Strategy.empty (game_size sc)) in
  s := Strategy.buy !s c_hub u_agent;
  for i = 0 to m - 1 do
    s := Strategy.buy !s (blocker_node sc i) u_agent;
    s := Strategy.buy !s (blocker_node sc i) (subset_node sc i)
  done;
  for i = 0 to m - 1 do
    List.iter
      (fun j -> s := Strategy.buy !s (subset_node sc i) (element_node sc j))
      sc.Set_cover.subsets.(i)
  done;
  !s

let cover_of_strategy sc set =
  let m = nb_subsets sc in
  let indices = ref [] in
  let ok = ref true in
  Strategy.ISet.iter
    (fun v ->
      if v >= 2 && v < 2 + m then indices := (v - 2) :: !indices else ok := false)
    set;
  if !ok then Some (List.rev !indices) else None
