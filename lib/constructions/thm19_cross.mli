(** The d-dimensional ℓ1 cross of Theorem 19 (Fig. 10).

    [2d+1] points: the origin [v_0], the unit point [v_1 = e_1], and the
    [2d−1] points [±(2/α)·e_j] (all of [−(2/α)e_1 .. ±(2/α)e_d]).  Under
    the 1-norm this is an isometric embedding of the Thm. 15 star, so the
    star centered at [v_1] (owned by [v_1]) is a Nash equilibrium while
    the star centered at [v_0] is optimal, giving

    PoA >= 1 + α / (2 + α/(2d−1)).  *)

val points : alpha:float -> d:int -> Gncg_metric.Euclidean.points
(** Requires [d >= 1]. *)

val size : d:int -> int
(** [2d + 1]. *)

val host : alpha:float -> d:int -> Gncg.Host.t

val opt_network : alpha:float -> d:int -> Gncg_graph.Wgraph.t
(** The star centered at [v_0]. *)

val ne_profile : alpha:float -> d:int -> Gncg.Strategy.t
(** The star centered at [v_1]. *)

val ratio_formula : alpha:float -> d:int -> float
