(** The geometric line construction of Lemma 8 (Fig. 9).

    [n+1] collinear points [v_0 .. v_n]: [w(v_0,v_1) = 1] and
    [w(v_{i-1}, v_i) = (2/α)(1 + 2/α)^(i-2)] for [i >= 2].  The path
    is the social optimum; the spanning star centered at [v_0] (all edges
    owned by the center, leaf [v_i] at weight [(1+2/α)^(i-1)]) is a Nash
    equilibrium, certifying PoA > 1 in [R^1] under every p-norm. *)

val positions : alpha:float -> n:int -> float list
(** Coordinates of [v_0 .. v_n]; requires [n >= 1]. *)

val points : alpha:float -> n:int -> Gncg_metric.Euclidean.points

val host : alpha:float -> n:int -> Gncg.Host.t

val opt_network : alpha:float -> n:int -> Gncg_graph.Wgraph.t
(** The path [P_{n+1}]. *)

val ne_profile : alpha:float -> n:int -> Gncg.Strategy.t
(** The star centered at [v_0], owned by the center. *)

val star_edge_weight : alpha:float -> int -> float
(** [(1 + 2/α)^(i-1)], the host distance from [v_0] to [v_i]. *)
