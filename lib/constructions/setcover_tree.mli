(** The tree-metric best-response hardness reduction of Theorem 13
    (Fig. 4): computing a best response in the T-GNCG solves Minimum Set
    Cover.

    From a set cover instance with [m] subsets and [k] elements, build the
    weighted tree (α = 1): hub [c] at distance [L−ε] from agent [u];
    subset nodes [a_i] at distance [ε] from [c]; blocker nodes [b_i] at
    distance [(L−β)/2] from [u]; element nodes [p_j] at distance [L] from
    one subset node containing them.  The strategy profile connects [c]
    and each [b_i] to [u], each [b_i] to [a_i], and each [a_i] to its
    elements; agent [u] owns nothing, and her best response buys exactly
    the subset nodes of a minimum set cover. *)

type params = { big_l : float; eps : float; beta : float }

val default_params : params
(** L = 100, ε = 0.001, β = 1 — satisfying the proof's constraints
    (L ≫ ε, kε < β < L/3) for every k below 500. *)

val check_params : params -> k:int -> unit
(** Raises when the constraints are violated for universes of size [k]. *)

val game_size : Set_cover.t -> int
(** [2 + 2m + k]. *)

val u_agent : int
(** 0. *)

val c_hub : int
(** 1. *)

val subset_node : Set_cover.t -> int -> int

val blocker_node : Set_cover.t -> int -> int

val element_node : Set_cover.t -> int -> int

val tree : ?params:params -> Set_cover.t -> Gncg_metric.Tree_metric.tree

val host : ?params:params -> Set_cover.t -> Gncg.Host.t
(** Metric closure of the tree, α = 1. *)

val profile : ?params:params -> Set_cover.t -> Gncg.Strategy.t
(** The fixed strategies of everyone but [u]. *)

val cover_of_strategy : Set_cover.t -> Gncg.Strategy.ISet.t -> int list option
(** Decode a strategy of [u] into subset indices; [None] when it buys
    anything but subset nodes. *)
