(** The vertex-cover reduction of Theorem 4 (Fig. 2): deciding whether a
    1-2-GNCG strategy profile is a Nash equilibrium is NP-hard.

    From a Vertex Cover instance (a graph on [nv] vertices with edge list
    [es]) build a 1-2 host with one *vertex node* per VC vertex, two *edge
    nodes* [p_j], [p'_j] per VC edge, and a distinguished agent [u]:
    1-edges join every pair of vertex nodes and each vertex node to the
    edge nodes of its incident edges; everything else (including all of
    [u]'s edges) weighs 2.  With α = 1 and every 1-edge bought, the best
    response of [u] is exactly a minimum vertex cover, so the profile in
    which [u] buys a cover of size [k] is a NE iff no cover of size
    [k−1] exists. *)

type instance = { nv : int; es : (int * int) list }
(** A vertex cover instance; vertices are [0 .. nv-1]. *)

val game_size : instance -> int
(** [1 + nv + 2·|es|]: agent [u], vertex nodes, edge nodes. *)

val u_agent : instance -> int
(** [u] is vertex 0 of the host. *)

val vertex_node : instance -> int -> int
(** Host vertex of VC vertex [i]. *)

val edge_nodes : instance -> int -> int * int
(** Host vertices [(p_j, p'_j)] of VC edge [j]. *)

val host : instance -> Gncg.Host.t
(** The 1-2 host with α = 1. *)

val profile : instance -> cover:int list -> Gncg.Strategy.t
(** Every 1-edge bought by its smaller endpoint; [u] buys the 2-edges
    towards the vertex nodes of [cover]. *)

val min_vertex_cover : instance -> int list
(** Brute force (for cross-checks; exponential in [nv]). *)

val is_cover : instance -> int list -> bool

val u_cost_formula : instance -> cover_size:int -> float
(** [3·nv + 6·|es| + k'] — agent [u]'s cost when buying a cover of size
    [k'] (proof of Thm. 4). *)
