module Euclidean = Gncg_metric.Euclidean
module Strategy = Gncg.Strategy

type params = { big_l : float; eps : float; beta : float }

let default_params = { big_l = 100.0; eps = 0.001; beta = 1.0 }

let check_params p ~k =
  let kf = float_of_int k in
  if not (p.big_l > 0.0 && p.eps > 0.0 && p.beta > 0.0) then
    invalid_arg "Setcover_rd: parameters must be positive";
  if p.beta <= kf *. p.eps then invalid_arg "Setcover_rd: need beta > k*eps";
  if p.beta >= p.big_l /. 3.0 then invalid_arg "Setcover_rd: need beta < L/3"

let nb_subsets (sc : Set_cover.t) = Array.length sc.Set_cover.subsets

let game_size sc = 1 + (2 * nb_subsets sc) + sc.Set_cover.universe

let u_agent = 0

let subset_node sc i =
  if i < 0 || i >= nb_subsets sc then invalid_arg "Setcover_rd.subset_node";
  1 + i

let blocker_node sc i =
  if i < 0 || i >= nb_subsets sc then invalid_arg "Setcover_rd.blocker_node";
  1 + nb_subsets sc + i

let element_node sc j =
  if j < 0 || j >= sc.Set_cover.universe then invalid_arg "Setcover_rd.element_node";
  1 + (2 * nb_subsets sc) + j

let polar r theta = [| r *. cos theta; r *. sin theta |]

let points ?(params = default_params) sc =
  check_params params ~k:sc.Set_cover.universe;
  let m = nb_subsets sc in
  let k = sc.Set_cover.universe in
  (* Arc of Euclidean length eps at radius r spans angle eps/r. *)
  let spread count idx total_angle =
    if count <= 1 then 0.0 else total_angle *. float_of_int idx /. float_of_int (count - 1)
  in
  let pts = Array.make (game_size sc) [| 0.0; 0.0 |] in
  pts.(u_agent) <- [| 0.0; 0.0 |];
  for i = 0 to m - 1 do
    let theta = spread m i (params.eps /. params.big_l) in
    pts.(subset_node sc i) <- polar params.big_l theta;
    (* Blockers sit on the opposite ray so d(b_i, a_i) = (L-β)/2 + L. *)
    pts.(blocker_node sc i) <- polar (-.(params.big_l -. params.beta) /. 2.0) theta
  done;
  for j = 0 to k - 1 do
    let theta = spread k j (params.eps /. (2.0 *. params.big_l)) in
    pts.(element_node sc j) <- polar (2.0 *. params.big_l) theta
  done;
  pts

let host ?params ?(norm = Euclidean.L2) sc =
  Gncg.Host.make ~alpha:1.0 (Euclidean.metric norm (points ?params sc))

let profile sc =
  let m = nb_subsets sc in
  let s = ref (Strategy.empty (game_size sc)) in
  for i = 0 to m - 1 do
    s := Strategy.buy !s (blocker_node sc i) u_agent;
    s := Strategy.buy !s (blocker_node sc i) (subset_node sc i)
  done;
  for i = 0 to m - 1 do
    List.iter
      (fun j -> s := Strategy.buy !s (subset_node sc i) (element_node sc j))
      sc.Set_cover.subsets.(i)
  done;
  !s

let cover_of_strategy sc set =
  let m = nb_subsets sc in
  let indices = ref [] in
  let ok = ref true in
  Strategy.ISet.iter
    (fun v ->
      if v >= 1 && v < 1 + m then indices := (v - 1) :: !indices else ok := false)
    set;
  if !ok then Some (List.rev !indices) else None
