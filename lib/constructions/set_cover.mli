(** Minimum Set Cover instances — the source problem of the best-response
    hardness reductions (Thms. 13 and 16). *)

type t = { universe : int; subsets : int list array }
(** Elements are [0 .. universe-1]; each subset is a sorted list. *)

val make : universe:int -> int list list -> t
(** Validates element ranges, deduplicates and sorts; requires non-empty
    subsets whose union covers the universe. *)

val is_cover : t -> int list -> bool
(** Whether the given subset indices cover the universe. *)

val min_cover : t -> int list
(** Brute force over subset index sets (for cross-checks). *)

val random : Gncg_util.Prng.t -> universe:int -> nb_subsets:int -> t
(** Random instance: each subset draws a random non-empty sample; elements
    missed by every subset are patched into random ones. *)
