module Euclidean = Gncg_metric.Euclidean
module Wgraph = Gncg_graph.Wgraph

let check alpha n =
  if n < 1 then invalid_arg "Lemma8_path: n >= 1 required";
  if alpha <= 0.0 then invalid_arg "Lemma8_path: alpha must be positive"

let star_edge_weight ~alpha i =
  if i = 0 then 0.0 else (1.0 +. (2.0 /. alpha)) ** float_of_int (i - 1)

(* Positions are the prefix sums of the edge lengths; by the geometric-sum
   identity they equal (1 + 2/α)^(i-1) for i >= 1. *)
let positions ~alpha ~n =
  check alpha n;
  List.init (n + 1) (fun i -> star_edge_weight ~alpha i)

let points ~alpha ~n = Euclidean.line (positions ~alpha ~n)

let host ~alpha ~n = Gncg.Host.make ~alpha (Euclidean.metric L1 (points ~alpha ~n))

let opt_network ~alpha ~n =
  let pos = Array.of_list (positions ~alpha ~n) in
  let g = Wgraph.create (n + 1) in
  for i = 1 to n do
    Wgraph.add_edge g (i - 1) i (pos.(i) -. pos.(i - 1))
  done;
  g

let ne_profile ~alpha ~n =
  check alpha n;
  Gncg.Strategy.star (n + 1) ~center:0
