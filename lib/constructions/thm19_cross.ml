module Euclidean = Gncg_metric.Euclidean
module Wgraph = Gncg_graph.Wgraph

let check alpha d =
  if d < 1 then invalid_arg "Thm19_cross: d >= 1 required";
  if alpha <= 0.0 then invalid_arg "Thm19_cross: alpha must be positive"

let size ~d = (2 * d) + 1

let points ~alpha ~d =
  check alpha d;
  let r = 2.0 /. alpha in
  let axis_point coord axis = Array.init d (fun i -> if i = axis then coord else 0.0) in
  let n = size ~d in
  Array.init n (fun v ->
      if v = 0 then Array.make d 0.0
      else if v = 1 then axis_point 1.0 0
      else if v = 2 then axis_point (-.r) 0
      else begin
        (* v in [3 .. 2d]: points ±r·e_axis for axis in [1 .. d-1]. *)
        let k = v - 3 in
        let axis = 1 + (k / 2) in
        let sign = if k mod 2 = 0 then 1.0 else -1.0 in
        axis_point (sign *. r) axis
      end)

let host ~alpha ~d = Gncg.Host.make ~alpha (Euclidean.metric L1 (points ~alpha ~d))

let opt_network ~alpha ~d =
  let pts = points ~alpha ~d in
  let g = Wgraph.create (size ~d) in
  for v = 1 to size ~d - 1 do
    Wgraph.add_edge g 0 v (Euclidean.dist L1 pts.(0) pts.(v))
  done;
  g

let ne_profile ~alpha ~d =
  check alpha d;
  Gncg.Strategy.star (size ~d) ~center:1

let ratio_formula ~alpha ~d = Gncg.Quality.cross_lower ~alpha ~d
