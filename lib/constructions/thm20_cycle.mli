(** The closing example of Section 4 (after Theorem 20).

    A non-metric host on three vertices — a triangle with weights 0, 1 and
    (α+2)/2 — showing that the per-pair accounting of Thm. 20 cannot beat
    ((α+2)/2)²: the pair [(u,v)] joined by the heavy edge attains
    [σ = ((α+2)/2)²] while the actual equilibrium-vs-optimum cost ratio is
    only [(α+2)/2].

    Vertices: 0 and 1 joined by the 0-edge, 2 the far vertex;
    [w(1,2) = 1], [w(0,2) = (α+2)/2]. *)

val host : alpha:float -> Gncg.Host.t

val opt_network : alpha:float -> Gncg_graph.Wgraph.t
(** The path {0-edge, 1-edge}. *)

val ne_network : alpha:float -> Gncg_graph.Wgraph.t
(** The path {0-edge, (α+2)/2-edge}. *)

val ne_profile : alpha:float -> Gncg.Strategy.t option
(** A Nash ownership of the heavy path, found by search. *)

val sigma_heavy_pair : alpha:float -> float
(** The per-pair ratio of the heavy pair: ((α+2)/2)². *)

val cost_ratio : alpha:float -> float
(** Actual NE/OPT social-cost ratio of the two networks: (α+2)/2. *)
