module Wgraph = Gncg_graph.Wgraph
module Metric = Gncg_metric.Metric

let heavy alpha = (alpha +. 2.0) /. 2.0

let host ~alpha =
  let w u v =
    match (min u v, max u v) with
    | 0, 1 -> 0.0
    | 1, 2 -> 1.0
    | 0, 2 -> heavy alpha
    | _ -> invalid_arg "Thm20_cycle.host"
  in
  Gncg.Host.make ~alpha (Metric.make 3 w)

let opt_network ~alpha =
  ignore alpha;
  Wgraph.of_edges 3 [ (0, 1, 0.0); (1, 2, 1.0) ]

let ne_network ~alpha = Wgraph.of_edges 3 [ (0, 1, 0.0); (0, 2, heavy alpha) ]

let ne_profile ~alpha = Gncg.Ownership.find_ne (host ~alpha) (ne_network ~alpha)

let sigma_heavy_pair ~alpha =
  let h = heavy alpha in
  h *. h

let cost_ratio ~alpha =
  let h = host ~alpha in
  Gncg.Cost.network_social_cost h (ne_network ~alpha)
  /. Gncg.Cost.network_social_cost h (opt_network ~alpha)
