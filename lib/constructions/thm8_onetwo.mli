(** The 1-2 lower-bound construction of Theorem 8 (Fig. 3).

    A clique of [nb_centers] vertices (1-edges), each clique vertex the
    center of a star of [nb_leaves] leaf vertices (1-edges), plus a hub
    vertex [u].  Two host variants:

    - [α = 1]: [u] has 1-edges to *every* vertex (right-hand host of
      Fig. 3); the social optimum is the full 1-edge subgraph; the stable
      network drops the u–leaf edges, pushing the cost ratio to 3/2 − ε.
    - [1/2 <= α < 1]: [u] has 1-edges only to the clique (left-hand host);
      the full 1-edge subgraph is stable and the ratio tends to
      3/(α+2) − ε.

    Vertex layout: [0] is [u]; [1 .. nb_centers] are the clique; leaf [j]
    of center [i] is [nb_centers + (i-1)*nb_leaves + j] (1-based [i],
    1-based [j]). *)

type variant = Alpha_one | Alpha_mid

val hub : int
(** Index of the hub vertex [u] (= 0). *)

val center : nb_centers:int -> int -> int
(** [center ~nb_centers i] is the vertex of clique member [i] (1-based). *)

val size : nb_centers:int -> nb_leaves:int -> int

val host : variant -> alpha:float -> nb_centers:int -> nb_leaves:int -> Gncg.Host.t

val ne_profile : variant -> nb_centers:int -> nb_leaves:int -> Gncg.Strategy.t
(** The stable profile of the theorem: all 1-edges except those between
    the hub and leaves; clique edges owned by the smaller endpoint, star
    edges by their center, hub edges by the hub. *)

val opt_network : variant -> nb_centers:int -> nb_leaves:int -> Gncg_graph.Wgraph.t
(** The 1-edge subgraph — the social optimum for [Alpha_one]; for
    [Alpha_mid] the paper only upper-bounds OPT by the complete host, so
    this network is a (not necessarily optimal) reference. *)

val expected_ratio_limit : variant -> alpha:float -> float
(** 3/2 for [Alpha_one]; 3/(α+2) for [Alpha_mid]. *)
