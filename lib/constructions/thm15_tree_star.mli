(** The tree-metric lower bound of Theorem 15 (Fig. 6).

    The metric is defined by a star [S*_n]: center [u] (vertex 0), one
    special leaf [v] (vertex 1) at weight 1, and [n-2] leaves at weight
    [2/α].  The tree itself is the social optimum; the spanning star
    centered at [v] — whose edges weigh [1] (to [u]) and [1 + 2/α]
    (to the other leaves), all owned by [v] — is a Nash equilibrium.
    The cost ratio tends to [(α+2)/2] as [n] grows, matching the Thm. 1
    upper bound. *)

val tree : alpha:float -> n:int -> Gncg_metric.Tree_metric.tree
(** Requires [n >= 3]. *)

val host : alpha:float -> n:int -> Gncg.Host.t

val opt_network : alpha:float -> n:int -> Gncg_graph.Wgraph.t
(** The defining tree [S*_n]. *)

val ne_profile : alpha:float -> n:int -> Gncg.Strategy.t
(** Spanning star centered at vertex 1, all edges owned by the center. *)

val opt_cost_formula : alpha:float -> n:int -> float
(** [(2n + α − 2) · ((n−2)·2/α + 1)] — the closed form in the proof. *)

val ne_cost_formula : alpha:float -> n:int -> float
(** [(2n + α − 2) · ((n−2)(1 + 2/α) + 1)]. *)

val ratio_limit : alpha:float -> float
(** [(α+2)/2]. *)
