module Tree_metric = Gncg_metric.Tree_metric

let check alpha n =
  if n < 3 then invalid_arg "Thm15_tree_star: n >= 3 required";
  if alpha <= 0.0 then invalid_arg "Thm15_tree_star: alpha must be positive"

let tree ~alpha ~n =
  check alpha n;
  Tree_metric.star n (fun i -> if i = 1 then 1.0 else 2.0 /. alpha)

let host ~alpha ~n = Gncg.Host.make ~alpha (Tree_metric.metric (tree ~alpha ~n))

let opt_network ~alpha ~n = Tree_metric.graph (tree ~alpha ~n)

let ne_profile ~alpha ~n =
  check alpha n;
  Gncg.Strategy.star n ~center:1

let opt_cost_formula ~alpha ~n =
  let nf = float_of_int n in
  ((2.0 *. nf) +. alpha -. 2.0) *. (((nf -. 2.0) *. 2.0 /. alpha) +. 1.0)

let ne_cost_formula ~alpha ~n =
  let nf = float_of_int n in
  ((2.0 *. nf) +. alpha -. 2.0) *. (((nf -. 2.0) *. (1.0 +. (2.0 /. alpha))) +. 1.0)

let ratio_limit ~alpha = (alpha +. 2.0) /. 2.0
