module Wgraph = Gncg_graph.Wgraph
module One_two = Gncg_metric.One_two

type variant = Alpha_one | Alpha_mid

let hub = 0

let center ~nb_centers i =
  if i < 1 || i > nb_centers then invalid_arg "Thm8_onetwo.center";
  i

let leaf ~nb_centers ~nb_leaves i j =
  if j < 1 || j > nb_leaves then invalid_arg "Thm8_onetwo.leaf";
  nb_centers + ((i - 1) * nb_leaves) + j

let size ~nb_centers ~nb_leaves = 1 + nb_centers + (nb_centers * nb_leaves)

let validate nb_centers nb_leaves =
  if nb_centers < 2 || nb_leaves < 1 then
    invalid_arg "Thm8_onetwo: need at least 2 centers and 1 leaf"

(* 1-edges common to both variants: the clique, the stars, hub-to-centers. *)
let base_one_edges ~nb_centers ~nb_leaves =
  let acc = ref [] in
  for i = 1 to nb_centers do
    acc := (hub, center ~nb_centers i) :: !acc;
    for i' = i + 1 to nb_centers do
      acc := (center ~nb_centers i, center ~nb_centers i') :: !acc
    done;
    for j = 1 to nb_leaves do
      acc := (center ~nb_centers i, leaf ~nb_centers ~nb_leaves i j) :: !acc
    done
  done;
  !acc

let hub_leaf_edges ~nb_centers ~nb_leaves =
  let acc = ref [] in
  for i = 1 to nb_centers do
    for j = 1 to nb_leaves do
      acc := (hub, leaf ~nb_centers ~nb_leaves i j) :: !acc
    done
  done;
  !acc

let one_edges variant ~nb_centers ~nb_leaves =
  let base = base_one_edges ~nb_centers ~nb_leaves in
  match variant with
  | Alpha_one -> base @ hub_leaf_edges ~nb_centers ~nb_leaves
  | Alpha_mid -> base

let host variant ~alpha ~nb_centers ~nb_leaves =
  validate nb_centers nb_leaves;
  (match variant with
  | Alpha_one ->
    if alpha <> 1.0 then invalid_arg "Thm8_onetwo.host: Alpha_one requires alpha = 1"
  | Alpha_mid ->
    if alpha < 0.5 || alpha >= 1.0 then
      invalid_arg "Thm8_onetwo.host: Alpha_mid requires 1/2 <= alpha < 1");
  let n = size ~nb_centers ~nb_leaves in
  Gncg.Host.make ~alpha (One_two.of_one_edges n (one_edges variant ~nb_centers ~nb_leaves))

let ne_profile variant ~nb_centers ~nb_leaves =
  validate nb_centers nb_leaves;
  ignore variant;
  (* Both variants stabilize the same network: every 1-edge of the
     *left-hand* host (clique + stars + hub-to-centers). *)
  let n = size ~nb_centers ~nb_leaves in
  let s = ref (Gncg.Strategy.empty n) in
  for i = 1 to nb_centers do
    s := Gncg.Strategy.buy !s hub (center ~nb_centers i);
    for i' = i + 1 to nb_centers do
      s := Gncg.Strategy.buy !s (center ~nb_centers i) (center ~nb_centers i')
    done;
    for j = 1 to nb_leaves do
      s := Gncg.Strategy.buy !s (center ~nb_centers i) (leaf ~nb_centers ~nb_leaves i j)
    done
  done;
  !s

let opt_network variant ~nb_centers ~nb_leaves =
  validate nb_centers nb_leaves;
  let n = size ~nb_centers ~nb_leaves in
  let g = Wgraph.create n in
  List.iter
    (fun (u, v) -> Wgraph.add_edge g u v 1.0)
    (one_edges variant ~nb_centers ~nb_leaves);
  g

let expected_ratio_limit variant ~alpha =
  match variant with
  | Alpha_one -> 1.5
  | Alpha_mid -> 3.0 /. (alpha +. 2.0)
