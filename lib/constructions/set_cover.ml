module Prng = Gncg_util.Prng

type t = { universe : int; subsets : int list array }

let make ~universe subsets =
  if universe < 1 then invalid_arg "Set_cover.make: empty universe";
  let clean s =
    let s = List.sort_uniq compare s in
    if s = [] then invalid_arg "Set_cover.make: empty subset";
    List.iter
      (fun e -> if e < 0 || e >= universe then invalid_arg "Set_cover.make: element range")
      s;
    s
  in
  let subsets = Array.of_list (List.map clean subsets) in
  let covered = Array.make universe false in
  Array.iter (List.iter (fun e -> covered.(e) <- true)) subsets;
  if not (Array.for_all Fun.id covered) then
    invalid_arg "Set_cover.make: subsets do not cover the universe";
  { universe; subsets }

let is_cover t indices =
  let covered = Array.make t.universe false in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length t.subsets then invalid_arg "Set_cover.is_cover";
      List.iter (fun e -> covered.(e) <- true) t.subsets.(i))
    indices;
  Array.for_all Fun.id covered

let min_cover t =
  let m = Array.length t.subsets in
  if m > 20 then invalid_arg "Set_cover.min_cover: too many subsets";
  let best = ref (List.init m Fun.id) in
  for mask = 0 to (1 lsl m) - 1 do
    let sel = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init m Fun.id) in
    if List.length sel < List.length !best && is_cover t sel then best := sel
  done;
  !best

let random rng ~universe ~nb_subsets =
  if universe < 1 || nb_subsets < 1 then invalid_arg "Set_cover.random";
  let subsets =
    Array.init nb_subsets (fun _ ->
        let size = 1 + Prng.int rng universe in
        Prng.sample_without_replacement rng (min size universe) universe)
  in
  let covered = Array.make universe false in
  Array.iter (List.iter (fun e -> covered.(e) <- true)) subsets;
  Array.iteri
    (fun e c ->
      if not c then begin
        let i = Prng.int rng nb_subsets in
        subsets.(i) <- e :: subsets.(i)
      end)
    covered;
  make ~universe (Array.to_list subsets |> List.map (fun s -> s))
