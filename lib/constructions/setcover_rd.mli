(** The geometric best-response hardness reduction of Theorem 16
    (Fig. 7): computing a best response in the R^d-GNCG solves Minimum
    Set Cover under any p-norm.

    Agent [u] sits at the origin; subset nodes [a_i] lie on a radius-[L]
    arc of length [ε]; element nodes [p_j] on a radius-[2L] arc of length
    [ε]; blocker nodes [b_i] on the ray *opposite* to [a_i] at radius
    [(L−β)/2] (so that [d(b_i, a_i) = (L−β)/2 + L]).  The built network
    joins [b_i] to [u] and [a_i], and [a_i] to its elements; [u] owns
    nothing and her best response buys the subset nodes of a minimum set
    cover (α = 1). *)

type params = { big_l : float; eps : float; beta : float }

val default_params : params
(** L = 100, ε = 0.001, β = 1. *)

val points : ?params:params -> Set_cover.t -> Gncg_metric.Euclidean.points
(** Planar coordinates; vertex order: [u], subset nodes, blocker nodes,
    element nodes (same layout as {!Setcover_tree} minus the hub). *)

val game_size : Set_cover.t -> int
(** [1 + 2m + k]. *)

val u_agent : int

val subset_node : Set_cover.t -> int -> int

val blocker_node : Set_cover.t -> int -> int

val element_node : Set_cover.t -> int -> int

val host : ?params:params -> ?norm:Gncg_metric.Euclidean.norm -> Set_cover.t -> Gncg.Host.t
(** Default norm: L2. *)

val profile : Set_cover.t -> Gncg.Strategy.t
(** Strategies of everyone but [u]: [b_i] buys towards [u] and [a_i];
    [a_i] buys towards its elements. *)

val cover_of_strategy : Set_cover.t -> Gncg.Strategy.ISet.t -> int list option
