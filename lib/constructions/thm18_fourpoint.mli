(** The four-point lower bound of Theorem 18.

    The Lemma 8 line construction restricted to the points
    [v_0 .. v_3] gives, for every p-norm with p >= 1 and every dimension,

    PoA >= (3α³ + 24α² + 40α + 24) / (α³ + 10α² + 32α + 24).

    The star centered at [v_0] is the equilibrium, the path the optimum. *)

val host : alpha:float -> Gncg.Host.t

val ne_profile : alpha:float -> Gncg.Strategy.t

val opt_network : alpha:float -> Gncg_graph.Wgraph.t

val ratio_formula : alpha:float -> float
(** The closed form above. *)
