module One_two = Gncg_metric.One_two
module Strategy = Gncg.Strategy

type instance = { nv : int; es : (int * int) list }

let validate inst =
  if inst.nv < 1 then invalid_arg "Vc_reduction: empty vertex set";
  List.iter
    (fun (a, b) ->
      if a = b || a < 0 || b < 0 || a >= inst.nv || b >= inst.nv then
        invalid_arg "Vc_reduction: bad edge")
    inst.es

let game_size inst = 1 + inst.nv + (2 * List.length inst.es)

let u_agent _ = 0

let vertex_node inst i =
  if i < 0 || i >= inst.nv then invalid_arg "Vc_reduction.vertex_node";
  1 + i

let edge_nodes inst j =
  if j < 0 || j >= List.length inst.es then invalid_arg "Vc_reduction.edge_nodes";
  let base = 1 + inst.nv + (2 * j) in
  (base, base + 1)

let one_edges inst =
  let acc = ref [] in
  (* Clique on the vertex nodes. *)
  for i = 0 to inst.nv - 1 do
    for i' = i + 1 to inst.nv - 1 do
      acc := (vertex_node inst i, vertex_node inst i') :: !acc
    done
  done;
  (* Incidence edges to both copies of each edge node. *)
  List.iteri
    (fun j (a, b) ->
      let p, p' = edge_nodes inst j in
      acc := (vertex_node inst a, p) :: (vertex_node inst b, p)
             :: (vertex_node inst a, p') :: (vertex_node inst b, p') :: !acc)
    inst.es;
  !acc

let host inst =
  validate inst;
  Gncg.Host.make ~alpha:1.0 (One_two.of_one_edges (game_size inst) (one_edges inst))

let is_cover inst cover =
  List.for_all (fun (a, b) -> List.mem a cover || List.mem b cover) inst.es

let profile inst ~cover =
  validate inst;
  if not (is_cover inst cover) then invalid_arg "Vc_reduction.profile: not a cover";
  let s = ref (Strategy.empty (game_size inst)) in
  List.iter
    (fun (a, b) -> s := Strategy.buy !s (min a b) (max a b))
    (one_edges inst);
  List.iter (fun i -> s := Strategy.buy !s (u_agent inst) (vertex_node inst i)) cover;
  !s

let min_vertex_cover inst =
  validate inst;
  if inst.nv > 20 then invalid_arg "Vc_reduction.min_vertex_cover: too many vertices";
  let best = ref (List.init inst.nv (fun i -> i)) in
  for mask = 0 to (1 lsl inst.nv) - 1 do
    let cover = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init inst.nv Fun.id) in
    if List.length cover < List.length !best && is_cover inst cover then best := cover
  done;
  !best

let u_cost_formula inst ~cover_size =
  float_of_int ((3 * inst.nv) + (6 * List.length inst.es) + cover_size)
