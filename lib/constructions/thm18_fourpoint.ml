let host ~alpha = Lemma8_path.host ~alpha ~n:3

let ne_profile ~alpha = Lemma8_path.ne_profile ~alpha ~n:3

let opt_network ~alpha = Lemma8_path.opt_network ~alpha ~n:3

let ratio_formula ~alpha = Gncg.Quality.fourpoint_lower alpha
