module Prng = Gncg_util.Prng
module Flt = Gncg_util.Flt
module Euclidean = Gncg_metric.Euclidean
module Strategy = Gncg.Strategy
module Dynamics = Gncg.Dynamics

let fig8_points =
  Euclidean.of_list
    [
      [ 3.0; 0.0 ];
      [ 0.0; 3.0 ];
      [ 2.0; 2.0 ];
      [ 0.0; 2.0 ];
      [ 1.0; 1.0 ];
      [ 4.0; 3.0 ];
      [ 2.0; 0.0 ];
      [ 4.0; 1.0 ];
      [ 1.0; 4.0 ];
      [ 1.0; 0.0 ];
    ]

let fig8_host ~alpha = Gncg.Host.make ~alpha (Euclidean.metric L1 fig8_points)

let fig5_weights = [ 3.0; 7.0; 2.0; 5.0; 12.0; 9.0; 11.0; 2.0; 10.0 ]

let random_profile rng host =
  let n = Gncg.Host.n host in
  (* Random spanning forest of the *finite-weight* host pairs (randomized
     Kruskal), each edge owned by a random endpoint, then a few extra
     purchases.  Hosts with forbidden (infinite) edges — the 1-inf
     variant — only ever see allowed purchases. *)
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Float.is_finite (Gncg.Host.weight host u v) then pairs := (u, v) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  Prng.shuffle rng pairs;
  let uf = Gncg_graph.Union_find.create n in
  let s = ref (Strategy.empty n) in
  Array.iter
    (fun (u, v) ->
      if Gncg_graph.Union_find.union uf u v then begin
        let owner, target = if Prng.bool rng then (u, v) else (v, u) in
        s := Strategy.buy !s owner target
      end)
    pairs;
  let extras = Prng.int rng (max 1 n) in
  for _ = 1 to extras do
    if Array.length pairs > 0 then begin
      let u, v = pairs.(Prng.int rng (Array.length pairs)) in
      if not (Strategy.edge_in_network !s u v) then
        if Prng.bool rng then s := Strategy.buy !s u v else s := Strategy.buy !s v u
    end
  done;
  !s

let profiles_of_lists n states =
  List.map (fun assoc -> Strategy.of_lists n assoc) states

let fig5_like_instance () =
  let tree =
    Gncg_metric.Tree_metric.make 10
      [
        (0, 1, 5.0); (1, 2, 12.0); (1, 3, 3.0); (1, 4, 2.0); (4, 5, 9.0);
        (5, 6, 11.0); (5, 7, 10.0); (7, 8, 7.0); (1, 9, 2.0);
      ]
  in
  let host = Gncg.Host.make ~alpha:2.0 (Gncg_metric.Tree_metric.metric tree) in
  (* Four improving moves by agents 5 and 6: delete (5,6); swap (6,7)->(6,3);
     re-add (5,6); swap back (6,3)->(6,7). *)
  let base = [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 1 ]); (4, [ 1 ]); (7, [ 8 ]); (9, [ 1 ]) ] in
  let states =
    [
      (5, [ 4; 6; 7 ]) :: (6, [ 7 ]) :: base;
      (5, [ 4; 7 ]) :: (6, [ 7 ]) :: base;
      (5, [ 4; 7 ]) :: (6, [ 3 ]) :: base;
      (5, [ 4; 6; 7 ]) :: (6, [ 3 ]) :: base;
      (5, [ 4; 6; 7 ]) :: (6, [ 7 ]) :: base;
    ]
  in
  (host, profiles_of_lists 10 states)

let fig8_cycle () =
  let host = fig8_host ~alpha:1.0 in
  let base u2 u4 u7 u8 =
    [
      (1, [ 3; 8 ]); (2, u2); (3, [ 2 ]); (4, u4); (5, [ 7 ]); (6, [ 0; 9 ]);
      (7, u7); (8, u8);
    ]
  in
  let states =
    [
      base [ 5; 6 ] [ 2; 3; 9 ] [ 0 ] [ 4; 5 ];
      base [ 5; 6 ] [ 2; 3; 9 ] [ 0; 2 ] [ 4; 5 ];
      base [ 5; 6 ] [ 2; 3; 9 ] [ 0; 2 ] [ 2; 4 ];
      base [ 6 ] [ 2; 3; 9 ] [ 0; 2 ] [ 2; 4 ];
      base [ 6 ] [ 2; 3; 9 ] [ 0; 2 ] [ 4; 5 ];
      base [ 6 ] [ 2; 3; 7; 9 ] [ 0; 2 ] [ 4; 5 ];
      base [ 6 ] [ 2; 3; 7; 9 ] [ 0 ] [ 4; 5 ];
      base [ 5; 6 ] [ 2; 3; 7; 9 ] [ 0 ] [ 4; 5 ];
      base [ 5; 6 ] [ 2; 3; 9 ] [ 0 ] [ 4; 5 ];
    ]
  in
  (host, profiles_of_lists 10 states)

type found = {
  host : Gncg.Host.t;
  start : Strategy.t;
  cycle : Strategy.t list;
  rule : Dynamics.rule;
}

let try_once ?(max_steps = 400) rule rng host =
  let start = random_profile rng host in
  let scheduler = Dynamics.Random_order (Prng.split rng) in
  match Dynamics.run (Dynamics.Config.make ~max_steps rule scheduler) host start with
  | Dynamics.Cycle { profiles; _ } -> Some { host; start; cycle = profiles; rule }
  | Dynamics.Converged _ | Dynamics.Out_of_steps _ -> None

let default_rules =
  [
    Dynamics.Greedy_response;
    Dynamics.Random_improving (Prng.create 0xC1C1E);
    Dynamics.Best_response;
  ]

let search_host ?(rules = default_rules) ?(tries = 50) ?max_steps rng host =
  let rec go t =
    if t >= tries then None
    else begin
      let rec over_rules = function
        | [] -> None
        | rule :: rest -> (
          match try_once ?max_steps rule rng host with
          | Some f -> Some f
          | None -> over_rules rest)
      in
      match over_rules rules with Some f -> Some f | None -> go (t + 1)
    end
  in
  go 0

let search_generated ?(rules = default_rules) ?(tries = 50) ?max_steps ~host_gen rng =
  let rec go t =
    if t >= tries then None
    else begin
      let host = host_gen rng in
      match search_host ~rules ~tries:1 ?max_steps rng host with
      | Some f -> Some f
      | None -> go (t + 1)
    end
  in
  go 0

let differs_in_one_agent a b =
  let n = Strategy.n a in
  let changed = ref [] in
  for u = 0 to n - 1 do
    if not (Strategy.ISet.equal (Strategy.strategy a u) (Strategy.strategy b u)) then
      changed := u :: !changed
  done;
  match !changed with [ u ] -> Some u | _ -> None

let verify_cycle host profiles =
  match profiles with
  | [] | [ _ ] -> false
  | first :: _ ->
    let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false in
    Strategy.equal first (last profiles)
    && begin
         let rec check = function
           | a :: (b :: _ as rest) ->
             (match differs_in_one_agent a b with
             | None -> false
             | Some mover ->
               Flt.lt (Gncg.Cost.agent_cost host b mover) (Gncg.Cost.agent_cost host a mover)
               && check rest)
           | _ -> true
         in
         check profiles
       end
