(** Best-response / improving-move cycles: the FIP violations of
    Theorems 14 (tree metrics, Fig. 5) and 17 (ℓ1 point sets, Fig. 8).

    The paper specifies the instances (Fig. 5's tree edge weights, Fig. 8's
    ten integer points) but the cycling strategy sequences only appear in
    the drawings; we therefore *search* for cycles on these and on random
    instances by running improving-response dynamics until a strategy
    profile repeats — a repeat is a complete certificate (every transition
    strictly improves its mover and the sequence returns to its start). *)

val fig8_points : Gncg_metric.Euclidean.points
(** The ten points of Thm. 17:
    (3,0) (0,3) (2,2) (0,2) (1,1) (4,3) (2,0) (4,1) (1,4) (1,0). *)

val fig8_host : alpha:float -> Gncg.Host.t
(** The ℓ1 host on {!fig8_points}. *)

val fig5_weights : float list
(** The nine edge weights of the Fig. 5 tree: 3 7 2 5 12 9 11 2 10 (the
    tree's topology is not recoverable from the text). *)

val random_profile : Gncg_util.Prng.t -> Gncg.Host.t -> Gncg.Strategy.t
(** A random connected starting profile: a uniformly random spanning-tree
    orientation plus a few random extra purchases. *)

val fig5_like_instance : unit -> Gncg.Host.t * Gncg.Strategy.t list
(** A concrete tree-metric improving-move cycle in the spirit of Fig. 5
    (Thm. 14): a 10-vertex tree using exactly the figure's edge-weight
    multiset {3,7,2,5,12,9,11,2,10}, α = 2, and a four-move cycle in which
    two agents alternate a delete/add with a pair of swaps.  Found by
    search, stored verbatim; validate with {!verify_cycle}. *)

val fig8_cycle : unit -> Gncg.Host.t * Gncg.Strategy.t list
(** A concrete improving-move cycle on the paper's own Fig. 8 point set
    (Thm. 17) under the 1-norm with α = 1: eight moves returning to the
    initial profile.  Found by search, stored verbatim. *)

type found = {
  host : Gncg.Host.t;
  start : Gncg.Strategy.t;
  cycle : Gncg.Strategy.t list;  (** first = last *)
  rule : Gncg.Dynamics.rule;
}

val search_host :
  ?rules:Gncg.Dynamics.rule list ->
  ?tries:int ->
  ?max_steps:int ->
  Gncg_util.Prng.t ->
  Gncg.Host.t ->
  found option
(** Improving-response dynamics from random starts on one host, under each
    rule, until a cycle certificate appears. *)

val search_generated :
  ?rules:Gncg.Dynamics.rule list ->
  ?tries:int ->
  ?max_steps:int ->
  host_gen:(Gncg_util.Prng.t -> Gncg.Host.t) ->
  Gncg_util.Prng.t ->
  found option
(** Same, drawing a fresh host per try. *)

val verify_cycle : Gncg.Host.t -> Gncg.Strategy.t list -> bool
(** Certificate check: at least one transition, first equals last, each
    consecutive pair differs in exactly one agent's strategy, and that
    change strictly lowers the mover's cost. *)
