(* Implicit distance oracle for R^d p-norm hosts: coordinates only.

   When the built network is the complete graph on the point set (the
   host metric itself — the regime of the paper's §5 results on R^d
   hosts), the shortest path between any pair is the direct edge, by the
   triangle inequality.  So distances are evaluated straight off an
   [n*d] flat coordinate array — O(d) per get, O(n·d) storage, no
   matrix — and a k-d tree over the same coordinates answers
   nearest-addable-target queries for the response engines.

   What-if edits stay exact without Dijkstra:
   - removing direct edge (a,b) only changes d(a,b), which becomes the
     best 2-hop detour min_z (|az| + |zb|) — any longer detour can be
     shortcut through its first stop's surviving direct edge;
   - adding edge (u,v,w) is the standard insertion relaxation, exact
     because a shortest path never crosses a fixed edge twice. *)

module Metric = Gncg_obs.Metric

let c_builds = Metric.Counter.make "rd_dist.builds"
let c_row_kernels = Metric.Counter.make "rd_dist.row_kernels"
let c_whatif_rows = Metric.Counter.make "rd_dist.whatif_rows"
let c_nearest = Metric.Counter.make "rd_dist.nearest"
let c_selfcheck_probes = Metric.Counter.make "rd_dist.selfcheck_probes"
let c_selfcheck_mismatches = Metric.Counter.make "rd_dist.selfcheck_mismatches"
let c_selfcheck_repairs = Metric.Counter.make "rd_dist.selfcheck_repairs"

type t = {
  norm : Pnorm.t;
  flat : float array;  (* n*d row-major coordinates (owned) *)
  d : int;
  n : int;
  kd : Kd_tree.t;      (* nearest-target index; holds its own coord copy *)
  mutable selfcheck_every : int;
  mutable selfcheck_cursor : int;
}

let make norm ~flat ~d =
  Metric.Counter.incr c_builds;
  Pnorm.validate norm;
  if d < 1 then invalid_arg "Rd_dist.make: dimension must be positive";
  if Array.length flat mod d <> 0 then invalid_arg "Rd_dist.make: ragged flat store";
  let flat = Array.copy flat in
  let n = Array.length flat / d in
  if n < 1 then invalid_arg "Rd_dist.make: no points";
  {
    norm;
    flat;
    d;
    n;
    kd = Kd_tree.build norm ~flat ~d;
    selfcheck_every = Incr_apsp.default_selfcheck_cadence ();
    selfcheck_cursor = 0;
  }

let of_points norm pts =
  let n = Array.length pts in
  if n < 1 then invalid_arg "Rd_dist.of_points: no points";
  let d = Array.length pts.(0) in
  let flat = Array.make (n * d) 0.0 in
  Array.iteri
    (fun i p ->
      if Array.length p <> d then invalid_arg "Rd_dist.of_points: ragged points";
      Array.blit p 0 flat (i * d) d)
    pts;
  make norm ~flat ~d

let n t = t.n

let dim t = t.d

let norm t = t.norm

let point t i =
  if i < 0 || i >= t.n then invalid_arg "Rd_dist.point: out of range";
  Array.sub t.flat (i * t.d) t.d

let check t u name =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Rd_dist.%s: vertex %d out of range" name u)

let unsafe_distance t u v = if u = v then 0.0 else Pnorm.dist t.norm ~flat:t.flat ~d:t.d u v

let distance t u v =
  check t u "distance";
  check t v "distance";
  unsafe_distance t u v

let row_into t u dst =
  check t u "row_into";
  if Array.length dst < t.n then invalid_arg "Rd_dist.row_into: row too short";
  Metric.Counter.incr c_row_kernels;
  for x = 0 to t.n - 1 do
    Array.unsafe_set dst x (unsafe_distance t u x)
  done

let row t u =
  let dst = Array.make t.n 0.0 in
  row_into t u dst;
  dst

let dist_sum t u =
  check t u "dist_sum";
  Metric.Counter.incr c_row_kernels;
  let s = ref 0.0 and c = ref 0.0 in
  for x = 0 to t.n - 1 do
    let d = unsafe_distance t u x in
    let y = d -. !c in
    let tt = !s +. y in
    c := tt -. !s -. y;
    s := tt
  done;
  !s

let dist_sum_with_edge t u v w =
  check t u "dist_sum_with_edge";
  check t v "dist_sum_with_edge";
  Metric.Counter.incr c_row_kernels;
  let s = ref 0.0 and c = ref 0.0 in
  for x = 0 to t.n - 1 do
    let m = Float.min (unsafe_distance t u x) (w +. unsafe_distance t v x) in
    let y = m -. !c in
    let tt = !s +. y in
    c := tt -. !s -. y;
    s := tt
  done;
  !s

let min_sum_against t r v w =
  check t v "min_sum_against";
  if Array.length r < t.n then invalid_arg "Rd_dist.min_sum_against: row too short";
  Metric.Counter.incr c_row_kernels;
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m = Float.min (Array.unsafe_get r x) (w +. unsafe_distance t v x) in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

(* --- what-if evaluation (closed-form, no Dijkstra) --------------------- *)

(* Best 2-hop detour for the removed pair (a,b): min_z (|az| + |zb|). *)
let detour t a b =
  let best = ref Float.infinity in
  for z = 0 to t.n - 1 do
    if z <> a && z <> b then begin
      let c = unsafe_distance t a z +. unsafe_distance t z b in
      if c < !best then best := c
    end
  done;
  !best

let sssp_edited_into t ?remove ?add source dst =
  check t source "sssp_edited_into";
  if Array.length dst < t.n then invalid_arg "Rd_dist.sssp_edited_into: row too short";
  Metric.Counter.incr c_whatif_rows;
  let s = source in
  (* Distances after the removal: identical to the oracle except the
     removed pair, whose distance becomes the 2-hop detour. *)
  let rm_dist p q =
    if p = q then 0.0
    else
      match remove with
      | Some (a, b) when (p = a && q = b) || (p = b && q = a) -> detour t a b
      | _ -> unsafe_distance t p q
  in
  (match add with
  | None ->
    for x = 0 to t.n - 1 do
      Array.unsafe_set dst x (rm_dist s x)
    done
  | Some (u, v, w) ->
    (* Insertion relaxation against the post-removal base: the new edge
       is crossed at most once on any shortest path. *)
    let dsu = rm_dist s u and dsv = rm_dist s v in
    for x = 0 to t.n - 1 do
      let via_uv = dsu +. w +. rm_dist v x in
      let via_vu = dsv +. w +. rm_dist u x in
      Array.unsafe_set dst x (Float.min (rm_dist s x) (Float.min via_uv via_vu))
    done)

let sssp_edited_sum t ?remove ?add source =
  check t source "sssp_edited_sum";
  Metric.Counter.incr c_whatif_rows;
  let s = source in
  let rm_dist p q =
    if p = q then 0.0
    else
      match remove with
      | Some (a, b) when (p = a && q = b) || (p = b && q = a) -> detour t a b
      | _ -> unsafe_distance t p q
  in
  let acc = ref 0.0 and c = ref 0.0 in
  let addk =
    match add with
    | None -> fun x -> rm_dist s x
    | Some (u, v, w) ->
      let dsu = rm_dist s u and dsv = rm_dist s v in
      fun x ->
        Float.min (rm_dist s x)
          (Float.min (dsu +. w +. rm_dist v x) (dsv +. w +. rm_dist u x))
  in
  for x = 0 to t.n - 1 do
    let m = addk x in
    let y = m -. !c in
    let tt = !acc +. y in
    c := tt -. !acc -. y;
    acc := tt
  done;
  !acc

(* --- nearest-addable-target queries ------------------------------------ *)

let nearest t ?accept u =
  check t u "nearest";
  Metric.Counter.incr c_nearest;
  Kd_tree.nearest t.kd ?accept u

let nearest_linear t ?accept u =
  check t u "nearest_linear";
  Kd_tree.nearest_linear t.kd ?accept u

(* --- drift sentinel ---------------------------------------------------- *)

(* The coordinates exist twice — the oracle's flat store and the k-d
   tree's private copy.  The probe cross-checks one round-robin point
   between the two; on mismatch the flat store is restored from the
   index's copy (the index is immutable since construction). *)

let set_selfcheck t n = t.selfcheck_every <- max 0 n

let selfcheck_cadence t = t.selfcheck_every

let selfcheck_now t =
  Metric.Counter.incr c_selfcheck_probes;
  let s = t.selfcheck_cursor mod t.n in
  t.selfcheck_cursor <- (s + 1) mod t.n;
  let stored = Kd_tree.point t.kd s in
  let clean = ref true in
  (try
     for i = 0 to t.d - 1 do
       if not (Gncg_util.Flt.approx_eq t.flat.((s * t.d) + i) stored.(i)) then begin
         clean := false;
         raise Exit
       end
     done
   with Exit -> ());
  if !clean then begin
    (* Independent-path cross-check: linear scan vs tree descent must
       agree on the nearest neighbour's distance. *)
    match (nearest t s, nearest_linear t s) with
    | Some (_, dk), Some (_, dl) when not (Gncg_util.Flt.approx_eq dk dl) -> clean := false
    | _ -> ()
  end;
  if not !clean then begin
    Metric.Counter.incr c_selfcheck_mismatches;
    for i = 0 to t.n - 1 do
      let p = Kd_tree.point t.kd i in
      Array.blit p 0 t.flat (i * t.d) t.d
    done;
    Metric.Counter.incr c_selfcheck_repairs
  end;
  !clean

let inject_cell_error t u _v delta =
  check t u "inject_cell_error";
  (* The oracle has no cells; perturbing a coordinate of point [u] shifts
     every distance through it and desyncs the k-d tree's copy. *)
  t.flat.(u * t.d) <- t.flat.(u * t.d) +. delta

let memory_bytes t =
  let word = Sys.word_size / 8 in
  let float_arr len = (len + 2) * word in
  let int_arr len = (len + 2) * word in
  float_arr (Array.length t.flat)
  + float_arr (Array.length t.flat) (* k-d tree coordinate copy *)
  + int_arr t.n (* k-d tree index permutation *)
