(** Implicit distance oracle for R^d p-norm hosts — coordinates only.

    When the built network is the complete graph on the point set (the
    host metric itself, the paper's §5 regime), every shortest path is
    the direct edge, so distances are evaluated straight off a flat
    [n*d] coordinate array: O(d) per get, O(n·d) storage, no matrix.  A
    {!Kd_tree} over the same coordinates answers nearest-addable-target
    queries for the response engines.

    Read-only: hypothetical moves are evaluated through closed-form
    [sssp_edited_*] probes (removed direct edge → best 2-hop detour;
    added edge → one insertion relaxation), both exact on complete
    metric networks.  Mutating dynamics fall back to a dense backend
    (see {!Distances}). *)

type t

val make : Pnorm.t -> flat:float array -> d:int -> t
(** [make norm ~flat ~d] adopts a copy of the [n = length flat / d]
    row-major points and builds the k-d index. *)

val of_points : Pnorm.t -> float array array -> t
(** From boxed points (e.g. [Euclidean.points]). *)

val n : t -> int

val dim : t -> int

val norm : t -> Pnorm.t

val point : t -> int -> float array

val distance : t -> int -> int -> float
(** O(d): the p-norm of the coordinate difference. *)

val row : t -> int -> float array

val row_into : t -> int -> float array -> unit

val dist_sum : t -> int -> float
(** O(n·d), Kahan-compensated. *)

val dist_sum_with_edge : t -> int -> int -> float -> float

val min_sum_against : t -> float array -> int -> float -> float

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit
(** Exact what-if distances on the complete network with one direct edge
    removed and/or one edge added — closed form, no graph search. *)

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float

val nearest : t -> ?accept:(int -> bool) -> int -> (int * float) option
(** Nearest other point to [u] passing [accept], via the k-d tree — the
    geometric shortcut behind {!Fast_response}'s nearest-addable-target
    query. *)

val nearest_linear : t -> ?accept:(int -> bool) -> int -> (int * float) option
(** Brute-force oracle with the same contract (tests / sentinel). *)

(** {1 Drift sentinel} *)

val set_selfcheck : t -> int -> unit

val selfcheck_cadence : t -> int

val selfcheck_now : t -> bool
(** Cross-checks one round-robin point between the oracle's store and
    the k-d tree's private copy, and tree-descent vs linear-scan nearest
    neighbours; on mismatch restores the store from the index and
    returns [false]. *)

val inject_cell_error : t -> int -> int -> float -> unit
(** Perturbs a coordinate of point [u] (second vertex ignored). *)

val memory_bytes : t -> int
