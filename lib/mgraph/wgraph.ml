type t = { adj : (int, float) Hashtbl.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Wgraph.create: negative size";
  { adj = Array.init n (fun _ -> Hashtbl.create 4); m = 0 }

let n g = Array.length g.adj

let m g = g.m

let check_vertex g u name =
  if u < 0 || u >= n g then invalid_arg (Printf.sprintf "Wgraph.%s: vertex %d out of range" name u)

let has_edge g u v =
  check_vertex g u "has_edge";
  check_vertex g v "has_edge";
  Hashtbl.mem g.adj.(u) v

let add_edge g u v w =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Wgraph.add_edge: self-loop";
  if w < 0.0 || Float.is_nan w then invalid_arg "Wgraph.add_edge: negative weight";
  if not (Hashtbl.mem g.adj.(u) v) then g.m <- g.m + 1;
  Hashtbl.replace g.adj.(u) v w;
  Hashtbl.replace g.adj.(v) u w

let remove_edge g u v =
  check_vertex g u "remove_edge";
  check_vertex g v "remove_edge";
  if Hashtbl.mem g.adj.(u) v then begin
    Hashtbl.remove g.adj.(u) v;
    Hashtbl.remove g.adj.(v) u;
    g.m <- g.m - 1
  end

let weight g u v =
  check_vertex g u "weight";
  check_vertex g v "weight";
  Hashtbl.find_opt g.adj.(u) v

let neighbors g u =
  check_vertex g u "neighbors";
  Hashtbl.fold (fun v w acc -> (v, w) :: acc) g.adj.(u) []

let iter_neighbors g u f =
  check_vertex g u "iter_neighbors";
  Hashtbl.iter f g.adj.(u)

let degree g u =
  check_vertex g u "degree";
  Hashtbl.length g.adj.(u)

let iter_edges g f =
  Array.iteri
    (fun u tbl -> Hashtbl.iter (fun v w -> if u < v then f u v w) tbl)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v w -> acc := (u, v, w) :: !acc);
  !acc

let total_weight g =
  let acc = ref 0.0 in
  iter_edges g (fun _ _ w -> acc := !acc +. w);
  !acc

let copy g = { adj = Array.map Hashtbl.copy g.adj; m = g.m }

let of_edges size es =
  let g = create size in
  List.iter (fun (u, v, w) -> add_edge g u v w) es;
  g

let equal a b =
  n a = n b && m a = m b
  && begin
       let ok = ref true in
       iter_edges a (fun u v w ->
           match weight b u v with
           | Some w' when w' = w -> ()
           | _ -> ok := false);
       !ok
     end

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" (n g) (m g);
  let es = List.sort compare (edges g) in
  List.iter (fun (u, v, w) -> Format.fprintf fmt "@,  %d -- %d  (%g)" u v w) es;
  Format.fprintf fmt "@]"
