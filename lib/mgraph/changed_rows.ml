type t = { bits : Bytes.t; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Changed_rows.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; card = 0 }

let size t = t.n

let check t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Changed_rows.%s: row %d out of range" name i)

let mem t i =
  check t i "mem";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i "add";
  let byte = i lsr 3 in
  let bit = 1 lsl (i land 7) in
  let cur = Char.code (Bytes.unsafe_get t.bits byte) in
  if cur land bit = 0 then begin
    Bytes.unsafe_set t.bits byte (Char.unsafe_chr (cur lor bit));
    t.card <- t.card + 1
  end

let cardinal t = t.card

let is_empty t = t.card = 0

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.card <- 0

let iter f t =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Changed_rows.union_into: size mismatch";
  iter (fun i -> add dst i) src

let copy t = { bits = Bytes.copy t.bits; n = t.n; card = t.card }
