(** Graph generators for workloads and examples. *)

val complete : int -> (int -> int -> float) -> Wgraph.t
(** [complete n w] with weights from the symmetric function [w]. *)

val ring : int -> float -> Wgraph.t
(** Cycle [0-1-...-n-1-0] with uniform edge weight; requires [n >= 3]. *)

val grid : rows:int -> cols:int -> float -> Wgraph.t
(** 4-neighbour lattice with uniform edge weight; vertex [(r,c)] is
    [r*cols + c]. *)

val random_tree : Gncg_util.Prng.t -> n:int -> wmin:float -> wmax:float -> Wgraph.t
(** Random recursive tree with i.i.d. uniform weights. *)

val gnp :
  Gncg_util.Prng.t -> n:int -> p:float -> wmin:float -> wmax:float -> Wgraph.t
(** Erdős–Rényi G(n,p) with uniform weights; possibly disconnected. *)

val gnp_connected :
  Gncg_util.Prng.t -> n:int -> p:float -> wmin:float -> wmax:float -> Wgraph.t
(** A random spanning tree plus G(n,p) edges: always connected. *)

val barabasi_albert :
  Gncg_util.Prng.t -> n:int -> attach:int -> wmin:float -> wmax:float -> Wgraph.t
(** Preferential attachment: each new vertex attaches to [attach] distinct
    existing vertices chosen proportionally to degree.  Requires
    [attach >= 1] and [n > attach]. *)
