(** Memory-mapped incremental APSP — {!Incr_apsp} over a
    [Bigarray.Array1] float64 store, optionally file-backed.

    Same algorithms (exact insertion relaxation, affected-source deletion
    recompute, drift sentinel, what-if probes), different storage: a
    bigarray lives outside the OCaml heap, and with [?path] it is a
    shared [Unix.map_file] mapping, so a matrix computed once can be
    read by sibling domains or a separate process mapping the same file
    (the serve daemon's worker substrate).

    The two implementations are deliberately independent — the
    equivalence suite pins their results to each other cell by cell. *)

type t

val of_graph : ?path:string -> Wgraph.t -> t
(** Adopts a private copy of the graph and computes its distances.  With
    [?path] the matrix lives in a shared file mapping (created or
    overwritten, sized [8·n²] bytes). *)

val of_graph_no_copy : ?path:string -> Wgraph.t -> t

val graph : t -> Wgraph.t

val n : t -> int

val backing : t -> string option
(** The mapped file, when file-backed. *)

val distance : t -> int -> int -> float

val row : t -> int -> float array

val row_into : t -> int -> float array -> unit

val matrix : t -> float array array

val dist_sum : t -> int -> float

val dist_sum_with_edge : t -> int -> int -> float -> float

val min_sum_against : t -> float array -> int -> float -> float

val add_edge : t -> int -> int -> float -> Changed_rows.t

val remove_edge : t -> int -> int -> Changed_rows.t

val last_deletion_recomputed : t -> int

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float

val copy : t -> t
(** Deep copy into anonymous (non-file-backed) storage. *)

val rebuild : t -> unit

val set_selfcheck : t -> int -> unit

val selfcheck_cadence : t -> int

val selfcheck_now : t -> bool

val inject_cell_error : t -> int -> int -> float -> unit

val memory_bytes : t -> int
(** [8·n²] — the mapped matrix itself. *)
