(** Mutable bitsets over the row indices [0 .. n-1] of a distance matrix.

    The incremental APSP updates ({!Incr_apsp.add_edge} /
    {!Incr_apsp.remove_edge}) report which source rows they touched so
    that the layers above (cost caches, dynamics idle flags, equilibrium
    trackers) can invalidate per-agent work selectively instead of
    wholesale.  The report is {e sound}: every row whose distances differ
    from before the update is a member.  It may over-approximate (a
    recomputed-but-identical row can be reported), never the reverse. *)

type t

val create : int -> t
(** [create n] is the empty set over rows [0 .. n-1]. *)

val size : t -> int
(** The universe size [n] (not the cardinality). *)

val mem : t -> int -> bool

val add : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Ascending row order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending row order. *)

val to_list : t -> int list
(** Ascending row order. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]; the
    universes must have equal size. *)

val copy : t -> t
