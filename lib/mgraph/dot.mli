(** Graphviz DOT export, used by the examples to visualize networks. *)

val of_graph :
  ?name:string ->
  ?labels:(int -> string) ->
  ?highlight:(int * int) list ->
  Wgraph.t ->
  string
(** [of_graph g] renders an undirected DOT graph with edge weight labels.
    Edges in [highlight] (any orientation) are drawn bold red. *)

val to_file :
  ?name:string ->
  ?labels:(int -> string) ->
  ?highlight:(int * int) list ->
  string ->
  Wgraph.t ->
  unit
