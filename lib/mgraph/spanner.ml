let all_pairs n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  !acc

let greedy n w t =
  if t < 1.0 then invalid_arg "Spanner.greedy: t < 1";
  let pairs =
    all_pairs n
    |> List.map (fun (u, v) -> (u, v, w u v))
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
  in
  let g = Wgraph.create n in
  List.iter
    (fun (u, v, wuv) ->
      let limit = t *. wuv in
      let d = Dijkstra.sssp_bounded g u limit in
      if d.(v) > limit then Wgraph.add_edge g u v wuv)
    pairs;
  g

let host_closure n w =
  let m = Array.init n (fun u -> Array.init n (fun v -> if u = v then 0.0 else w u v)) in
  Floyd_warshall.run m

let stretch ~host g =
  let n = Wgraph.n g in
  let dh = host_closure n host in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    let dg = Dijkstra.sssp g u in
    for v = u + 1 to n - 1 do
      if dh.(u).(v) > 0.0 then worst := Float.max !worst (dg.(v) /. dh.(u).(v))
      else if dg.(v) > 0.0 then worst := Float.infinity
    done
  done;
  !worst

let is_spanner ~host t g = Gncg_util.Flt.le (stretch ~host g) t
