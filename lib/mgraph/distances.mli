(** Pluggable distance storage — the [DISTANCES] seam.

    Everything above mgraph (cost caches, response engines, dynamics,
    equilibrium trackers) reads pairwise network distances through this
    module, so the storage can be:

    - {b dense} — the historic flat floatarray {!Incr_apsp} (default);
    - {b mmap} — the same algorithms over a [Bigarray] store, optionally
      a shared file mapping ({!Mmap_apsp});
    - {b tree} — an implicit Euler-tour/LCA oracle for tree networks,
      O(n log n) ints, no matrix ({!Tree_dist});
    - {b rd} — an implicit p-norm oracle for complete networks on R^d
      point sets, O(n·d) floats, no matrix ({!Rd_dist}).

    The seam is a first-class module pack: one indirect call per
    operation, all of which are O(n) or worse except single gets.

    {b Contract} (shared with {!Incr_apsp}): [add_edge] / [remove_edge]
    mutate the tracked network and return a sound {!Changed_rows.t} (may
    over-approximate, never misses a changed row); the [sssp_edited_*]
    probes evaluate a hypothetical one-edge edit without touching the
    maintained state; the drift sentinel cross-checks maintained values
    against an independent recompute and self-heals on mismatch.
    Implicit oracles are {e read-only}: their updates raise
    {!Unsupported}, and mutating dynamics must resolve to a dense or
    mmap backend (see {!Gncg.Net_state.create}). *)

exception Unsupported of string
(** Raised by [add_edge] / [remove_edge] on read-only (oracle)
    backends. *)

(** Operations every backend provides; see {!Incr_apsp} for the dense
    reference semantics. *)
module type S = sig
  type t

  val id : string
  val is_mutable : bool
  val n : t -> int

  val graph : t -> Wgraph.t option
  (** The tracked network graph, when the backend has one ([None] for
      the R^d oracle, whose network is implicitly complete). *)

  val distance : t -> int -> int -> float
  val row_into : t -> int -> float array -> unit
  val dist_sum : t -> int -> float
  val dist_sum_with_edge : t -> int -> int -> float -> float
  val min_sum_against : t -> float array -> int -> float -> float

  val nearest : t -> accept:(int -> bool) -> int -> (int * float) option
  (** Nearest other vertex passing [accept], for backends with a
      geometric index ([None] otherwise). *)

  val add_edge : t -> int -> int -> float -> Changed_rows.t
  val remove_edge : t -> int -> int -> Changed_rows.t

  val sssp_edited_into :
    t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit

  val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float
  val copy : t -> t
  val set_selfcheck : t -> int -> unit
  val selfcheck_cadence : t -> int
  val selfcheck_now : t -> bool
  val inject_cell_error : t -> int -> int -> float -> unit
  val memory_bytes : t -> int
end

type t = Packed : (module S with type t = 'a) * 'a -> t

(** {1 Constructors} *)

val of_incr : Incr_apsp.t -> t
val of_mmap_apsp : Mmap_apsp.t -> t
val of_tree_dist : Tree_dist.t -> t
val of_rd_dist : Rd_dist.t -> t

val dense : Wgraph.t -> t
(** Wraps the graph (no copy) in the default dense engine. *)

val mmap : ?path:string -> Wgraph.t -> t

val tree : Wgraph.t -> t
(** The graph must be a connected tree; it {e is} the network. *)

val rd : Pnorm.t -> float array array -> t
(** The network is implicitly complete on the point set. *)

val rd_flat : Pnorm.t -> flat:float array -> d:int -> t

(** {1 Dispatch} *)

val backend_id : t -> string
val is_mutable : t -> bool
val n : t -> int
val graph : t -> Wgraph.t option
val distance : t -> int -> int -> float
val row : t -> int -> float array
val row_into : t -> int -> float array -> unit
val matrix : t -> float array array
val dist_sum : t -> int -> float
val dist_sum_with_edge : t -> int -> int -> float -> float
val min_sum_against : t -> float array -> int -> float -> float
val nearest : t -> ?accept:(int -> bool) -> int -> (int * float) option
val add_edge : t -> int -> int -> float -> Changed_rows.t
val remove_edge : t -> int -> int -> Changed_rows.t

val sssp_edited :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float
val copy : t -> t
val set_selfcheck : t -> int -> unit
val selfcheck_cadence : t -> int
val selfcheck_now : t -> bool
val inject_cell_error : t -> int -> int -> float -> unit
val memory_bytes : t -> int

(** {1 Backend selection} *)

type spec = Auto | Dense | Tree | Rd | Mmap of string option

val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result
(** ["auto" | "dense" | "tree" | "rd" | "mmap" | "mmap:<path>"]. *)

val set_default_spec : spec -> unit
(** Process-wide default where no explicit spec is given — backs the
    CLI's [--dist-backend].  Set once at startup. *)

val default_spec : unit -> spec
