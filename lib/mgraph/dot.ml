let of_graph ?(name = "G") ?(labels = string_of_int) ?(highlight = []) g =
  let buf = Buffer.create 256 in
  let is_highlighted u v =
    List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) highlight
  in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" name);
  for v = 0 to Wgraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v (labels v))
  done;
  Wgraph.iter_edges g (fun u v w ->
      let attrs =
        if is_highlighted u v then
          Printf.sprintf "label=\"%g\", color=red, penwidth=2" w
        else Printf.sprintf "label=\"%g\"" w
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [%s];\n" u v attrs));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name ?labels ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_graph ?name ?labels ?highlight g))
