(** All-pairs shortest paths on a dense weight matrix.

    Used as an independent oracle against Dijkstra in tests, and to compute
    metric closures of weighted graphs. *)

val run : float array array -> float array array
(** [run w] returns the shortest-path closure of the (square, symmetric or
    not) weight matrix [w]; [Float.infinity] encodes a missing edge.  The
    diagonal of the result is 0.  The input is not modified. *)

val of_graph : Wgraph.t -> float array array
(** Adjacency matrix of a graph (infinity off-edges, 0 diagonal). *)

val closure_of_graph : Wgraph.t -> float array array
(** Shortest-path distance matrix of a graph. *)
