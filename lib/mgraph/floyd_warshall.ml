let run w =
  let n = Array.length w in
  let d = Array.init n (fun i ->
      if Array.length w.(i) <> n then invalid_arg "Floyd_warshall.run: non-square matrix";
      Array.copy w.(i))
  in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.0
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < Float.infinity then
        for j = 0 to n - 1 do
          let alt = dik +. d.(k).(j) in
          if alt < d.(i).(j) then d.(i).(j) <- alt
        done
    done
  done;
  d

let of_graph g =
  let n = Wgraph.n g in
  let w = Array.make_matrix n n Float.infinity in
  for i = 0 to n - 1 do
    w.(i).(i) <- 0.0
  done;
  Wgraph.iter_edges g (fun u v x ->
      w.(u).(v) <- x;
      w.(v).(u) <- x);
  w

let closure_of_graph g = run (of_graph g)
