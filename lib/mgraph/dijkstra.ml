let run ?(limit = Float.infinity) g s =
  let n = Wgraph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n Float.infinity in
  let parent = Array.make n (-1) in
  let heap = Binary_heap.create n in
  dist.(s) <- 0.0;
  Binary_heap.insert heap s 0.0;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      if du <= limit then begin
        Wgraph.iter_neighbors g u (fun v w ->
            let dv = du +. w in
            if dv < dist.(v) then begin
              dist.(v) <- dv;
              parent.(v) <- u;
              Binary_heap.insert_or_decrease heap v dv
            end);
        loop ()
      end
      else
        (* Every remaining vertex is farther than [limit]: mark it
           unreachable-within-limit by resetting its tentative distance. *)
        let rec drain () =
          match Binary_heap.pop_min heap with
          | None -> ()
          | Some (v, _) ->
            dist.(v) <- Float.infinity;
            parent.(v) <- -1;
            drain ()
        in
        dist.(u) <- Float.infinity;
        parent.(u) <- -1;
        drain ()
  in
  loop ();
  (dist, parent)

let sssp g s = fst (run g s)

(* Workspace-reusing single-source passes: the what-if evaluation paths
   (Incr_apsp.sssp_edited and the deletion fallback of remove_edge) run
   thousands of SSSP calls per dynamics step; reusing one heap and writing
   into caller-provided rows removes every per-call allocation. *)

type workspace = { heap : Binary_heap.t }

let workspace n = { heap = Binary_heap.create n }

let workspace_capacity ws = Binary_heap.capacity ws.heap

let check_workspace ws g s =
  let n = Wgraph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  if Binary_heap.capacity ws.heap < n then
    invalid_arg "Dijkstra: workspace smaller than graph";
  n

let sssp_into ws g s dist =
  let n = check_workspace ws g s in
  if Array.length dist < n then invalid_arg "Dijkstra.sssp_into: row too short";
  Array.fill dist 0 n Float.infinity;
  let heap = ws.heap in
  Binary_heap.clear heap;
  Array.unsafe_set dist s 0.0;
  Binary_heap.insert heap s 0.0;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      Wgraph.iter_neighbors g u (fun v w ->
          let dv = du +. w in
          if dv < Array.unsafe_get dist v then begin
            Array.unsafe_set dist v dv;
            Binary_heap.insert_or_decrease heap v dv
          end);
      loop ()
  in
  loop ()

let sssp_flat_into ws g s dist off =
  let n = check_workspace ws g s in
  if off < 0 || off + n > Float.Array.length dist then
    invalid_arg "Dijkstra.sssp_flat_into: offset out of range";
  Float.Array.fill dist off n Float.infinity;
  let heap = ws.heap in
  Binary_heap.clear heap;
  Float.Array.unsafe_set dist (off + s) 0.0;
  Binary_heap.insert heap s 0.0;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      Wgraph.iter_neighbors g u (fun v w ->
          let dv = du +. w in
          if dv < Float.Array.unsafe_get dist (off + v) then begin
            Float.Array.unsafe_set dist (off + v) dv;
            Binary_heap.insert_or_decrease heap v dv
          end);
      loop ()
  in
  loop ()

let sssp_with_parents g s = run g s

let sssp_bounded g s limit = fst (run ~limit g s)

let distance g u v = (sssp g u).(v)

let apsp ?(exec = Gncg_util.Exec.Seq) g =
  Gncg_util.Exec.init ~exec (Wgraph.n g) (fun s -> sssp g s)

let path g u v =
  let dist, parent = run g u in
  if dist.(v) = Float.infinity then None
  else begin
    let rec build acc x = if x = u then u :: acc else build (x :: acc) parent.(x) in
    Some (build [] v)
  end

let eccentricity g u = Gncg_util.Flt.max_array (sssp g u)

(* Below this size the ~0.1 ms domain-spawn cost dwarfs the sweep itself;
   the bench harness measures the crossover. *)
let parallel_threshold = 64

let eccentricities ?domains g =
  let n = Wgraph.n g in
  if n = 0 then [||]
  else begin
    let rows =
      if n >= parallel_threshold then apsp ~exec:(Gncg_util.Exec.Par { domains }) g
      else apsp g
    in
    Array.map Gncg_util.Flt.max_array rows
  end

let diameter ?domains g =
  let n = Wgraph.n g in
  if n <= 1 then 0.0 else Gncg_util.Flt.max_array (eccentricities ?domains g)
