let run ?(limit = Float.infinity) g s =
  let n = Wgraph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n Float.infinity in
  let parent = Array.make n (-1) in
  let heap = Binary_heap.create n in
  dist.(s) <- 0.0;
  Binary_heap.insert heap s 0.0;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      if du <= limit then begin
        Wgraph.iter_neighbors g u (fun v w ->
            let dv = du +. w in
            if dv < dist.(v) then begin
              dist.(v) <- dv;
              parent.(v) <- u;
              Binary_heap.insert_or_decrease heap v dv
            end);
        loop ()
      end
      else
        (* Every remaining vertex is farther than [limit]: mark it
           unreachable-within-limit by resetting its tentative distance. *)
        let rec drain () =
          match Binary_heap.pop_min heap with
          | None -> ()
          | Some (v, _) ->
            dist.(v) <- Float.infinity;
            parent.(v) <- -1;
            drain ()
        in
        dist.(u) <- Float.infinity;
        parent.(u) <- -1;
        drain ()
  in
  loop ();
  (dist, parent)

let sssp g s = fst (run g s)

let sssp_with_parents g s = run g s

let sssp_bounded g s limit = fst (run ~limit g s)

let distance g u v = (sssp g u).(v)

let apsp g = Array.init (Wgraph.n g) (fun s -> sssp g s)

let apsp_parallel ?domains g =
  Gncg_util.Parallel.init ?domains (Wgraph.n g) (fun s -> sssp g s)

let path g u v =
  let dist, parent = run g u in
  if dist.(v) = Float.infinity then None
  else begin
    let rec build acc x = if x = u then u :: acc else build (x :: acc) parent.(x) in
    Some (build [] v)
  end

let eccentricity g u = Gncg_util.Flt.max_array (sssp g u)

(* Below this size the ~0.1 ms domain-spawn cost dwarfs the sweep itself;
   the bench harness measures the crossover. *)
let parallel_threshold = 64

let eccentricities ?domains g =
  let n = Wgraph.n g in
  if n = 0 then [||]
  else begin
    let rows =
      if n >= parallel_threshold then apsp_parallel ?domains g else apsp g
    in
    Array.map Gncg_util.Flt.max_array rows
  end

let diameter ?domains g =
  let n = Wgraph.n g in
  if n <= 1 then 0.0 else Gncg_util.Flt.max_array (eccentricities ?domains g)
