type t = {
  ids : int array;          (* heap slots -> id *)
  prio : float array;       (* heap slots -> priority *)
  pos : int array;          (* id -> heap slot, or -1 *)
  mutable size : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Binary_heap.create";
  {
    ids = Array.make (max capacity 1) (-1);
    prio = Array.make (max capacity 1) 0.0;
    pos = Array.make (max capacity 1) (-1);
    size = 0;
  }

let is_empty h = h.size = 0

let capacity h = Array.length h.pos

let clear h =
  (* Only the stored ids have a live [pos] entry: O(size), not O(capacity). *)
  for i = 0 to h.size - 1 do
    h.pos.(h.ids.(i)) <- -1
  done;
  h.size <- 0

let size h = h.size

let mem h id = id >= 0 && id < Array.length h.pos && h.pos.(id) >= 0

let swap h i j =
  let idi = h.ids.(i) and idj = h.ids.(j) in
  h.ids.(i) <- idj;
  h.ids.(j) <- idi;
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  h.pos.(idi) <- j;
  h.pos.(idj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h id p =
  if id < 0 || id >= Array.length h.pos then invalid_arg "Binary_heap.insert: id out of range";
  if h.pos.(id) >= 0 then invalid_arg "Binary_heap.insert: duplicate id";
  let i = h.size in
  h.ids.(i) <- id;
  h.prio.(i) <- p;
  h.pos.(id) <- i;
  h.size <- h.size + 1;
  sift_up h i

let decrease h id p =
  if not (mem h id) then invalid_arg "Binary_heap.decrease: absent id";
  let i = h.pos.(id) in
  if p > h.prio.(i) then invalid_arg "Binary_heap.decrease: priority increase";
  h.prio.(i) <- p;
  sift_up h i

let insert_or_decrease h id p =
  if mem h id then begin
    if p < h.prio.(h.pos.(id)) then decrease h id p
  end
  else insert h id p

let pop_min h =
  if h.size = 0 then None
  else begin
    let id = h.ids.(0) and p = h.prio.(0) in
    let last = h.size - 1 in
    swap h 0 last;
    h.size <- last;
    h.pos.(id) <- -1;
    if h.size > 0 then sift_down h 0;
    Some (id, p)
  end

let priority h id = if mem h id then Some h.prio.(h.pos.(id)) else None
