(* Minkowski p-norms over flat coordinate storage.  The implicit R^d
   distance backend and the k-d tree both evaluate distances straight
   from an [n*d] row-major float array — no per-point boxing, no matrix.
   This module is the single definition of that arithmetic so the oracle
   and its index can never disagree. *)

type t = L1 | L2 | Lp of float | Linf

let validate = function
  | Lp p when not (p >= 1.0 && Float.is_finite p) ->
    invalid_arg "Pnorm: p must be finite and >= 1"
  | _ -> ()

let to_string = function
  | L1 -> "l1"
  | L2 -> "l2"
  | Lp p -> Printf.sprintf "l%g" p
  | Linf -> "linf"

let of_string = function
  | "l1" -> Ok L1
  | "l2" -> Ok L2
  | "linf" -> Ok Linf
  | s ->
    (match
       if String.length s > 1 && s.[0] = 'l' then
         float_of_string_opt (String.sub s 1 (String.length s - 1))
       else None
     with
    | Some p when p >= 1.0 && Float.is_finite p -> Ok (Lp p)
    | _ -> Error (Printf.sprintf "unknown norm %S (l1 | l2 | lP | linf)" s))

(* Distance between point [u] of the flat store and an explicit query
   point [q] of dimension [d]. *)
let dist_to norm ~flat ~d u q =
  let base = u * d in
  match norm with
  | L1 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s := !s +. Float.abs (Array.unsafe_get flat (base + i) -. Array.unsafe_get q i)
    done;
    !s
  | L2 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      let x = Array.unsafe_get flat (base + i) -. Array.unsafe_get q i in
      s := !s +. (x *. x)
    done;
    sqrt !s
  | Lp p ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s :=
        !s
        +. (Float.abs (Array.unsafe_get flat (base + i) -. Array.unsafe_get q i) ** p)
    done;
    !s ** (1.0 /. p)
  | Linf ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s :=
        Float.max !s
          (Float.abs (Array.unsafe_get flat (base + i) -. Array.unsafe_get q i))
    done;
    !s

(* Distance between two points of the flat store. *)
let dist norm ~flat ~d u v =
  let bu = u * d and bv = v * d in
  match norm with
  | L1 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s := !s +. Float.abs (Array.unsafe_get flat (bu + i) -. Array.unsafe_get flat (bv + i))
    done;
    !s
  | L2 ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      let x = Array.unsafe_get flat (bu + i) -. Array.unsafe_get flat (bv + i) in
      s := !s +. (x *. x)
    done;
    sqrt !s
  | Lp p ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s :=
        !s
        +. (Float.abs (Array.unsafe_get flat (bu + i) -. Array.unsafe_get flat (bv + i))
            ** p)
    done;
    !s ** (1.0 /. p)
  | Linf ->
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      s :=
        Float.max !s
          (Float.abs (Array.unsafe_get flat (bu + i) -. Array.unsafe_get flat (bv + i)))
    done;
    !s
