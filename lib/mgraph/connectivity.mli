(** Connectivity queries and bridge (cut-edge) detection. *)

val is_connected : Wgraph.t -> bool

val components : Wgraph.t -> int list list
(** Connected components as vertex lists. *)

val component_count : Wgraph.t -> int

val bridges : Wgraph.t -> (int * int) list
(** Cut edges [(u,v)] with [u < v]: removing one disconnects its component.
    Tarjan's low-link algorithm, O(n + m). *)

val is_tree : Wgraph.t -> bool
(** Connected with exactly n-1 edges. *)

val is_forest : Wgraph.t -> bool
