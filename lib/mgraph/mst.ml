let kruskal n edges =
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) edges in
  let uf = Union_find.create n in
  List.filter (fun (u, v, _) -> Union_find.union uf u v) sorted

let kruskal_graph g =
  Wgraph.of_edges (Wgraph.n g) (kruskal (Wgraph.n g) (Wgraph.edges g))

let prim_complete n w =
  if n <= 1 then []
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n Float.infinity in
    let best_to = Array.make n (-1) in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best.(v) <- w 0 v;
      best_to.(v) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to n - 1 do
      (* Cheapest crossing edge. *)
      let u = ref (-1) in
      for v = 0 to n - 1 do
        if (not in_tree.(v)) && (!u < 0 || best.(v) < best.(!u)) then u := v
      done;
      let u = !u in
      in_tree.(u) <- true;
      edges := (best_to.(u), u, best.(u)) :: !edges;
      for v = 0 to n - 1 do
        if not in_tree.(v) then begin
          let cand = w u v in
          if cand < best.(v) then begin
            best.(v) <- cand;
            best_to.(v) <- u
          end
        end
      done
    done;
    !edges
  end
