(** Indexed binary min-heap over the vertex ids [0 .. capacity-1] with float
    priorities and decrease-key, the classic Dijkstra workhorse. *)

type t

val create : int -> t
(** [create capacity] makes an empty heap able to hold each id once. *)

val is_empty : t -> bool

val capacity : t -> int
(** The id range the heap was created for. *)

val clear : t -> unit
(** Empties the heap in O(stored entries) — makes one heap reusable
    across many Dijkstra passes without reallocation. *)

val size : t -> int

val mem : t -> int -> bool
(** Whether the id is currently stored. *)

val insert : t -> int -> float -> unit
(** Raises [Invalid_argument] if the id is already present. *)

val decrease : t -> int -> float -> unit
(** [decrease h id p] lowers [id]'s priority to [p]; raises
    [Invalid_argument] if absent or if [p] is larger than the current
    priority. *)

val insert_or_decrease : t -> int -> float -> unit
(** Inserts the id, or decreases its key if the new priority is lower;
    no-op when the stored priority is already <= the new one. *)

val pop_min : t -> (int * float) option
(** Removes and returns the minimum-priority entry. *)

val priority : t -> int -> float option
