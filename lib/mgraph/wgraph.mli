(** Undirected weighted sparse graphs on vertices [0 .. n-1].

    This is the substrate on which built networks [G(s)] live: adjacency is
    hash-based so single-edge moves (the add/delete/swap moves of the game)
    are O(1), and neighbour iteration is O(degree) for Dijkstra.

    Parallel edges are not representable: adding an existing edge overwrites
    its weight.  Self-loops are rejected. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] inserts (or overwrites) the undirected edge [(u,v)]
    with weight [w >= 0].  Raises [Invalid_argument] on self-loops,
    out-of-range vertices or negative weights. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val has_edge : t -> int -> int -> bool

val weight : t -> int -> int -> float option
(** Weight of the edge [(u,v)] if present. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent vertices with edge weights, in unspecified order. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit

val degree : t -> int -> int

val edges : t -> (int * int * float) list
(** Every edge once, with [u < v], in unspecified order. *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Iterate every edge once with [u < v]. *)

val total_weight : t -> float
(** Sum of all edge weights. *)

val copy : t -> t

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n es] builds a graph from an edge list. *)

val equal : t -> t -> bool
(** Same vertex count and same edge set with equal weights. *)

val pp : Format.formatter -> t -> unit
