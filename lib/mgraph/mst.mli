(** Minimum spanning trees / forests. *)

val kruskal : int -> (int * int * float) list -> (int * int * float) list
(** [kruskal n edges] is a minimum spanning forest (a tree when the edge
    list connects all of [0..n-1]). *)

val kruskal_graph : Wgraph.t -> Wgraph.t
(** Minimum spanning forest of a sparse graph. *)

val prim_complete : int -> (int -> int -> float) -> (int * int * float) list
(** [prim_complete n w] is an MST of the complete graph whose weights are
    given by the symmetric function [w], in O(n^2).  This is the natural
    entry point for host graphs, which are complete by definition. *)
