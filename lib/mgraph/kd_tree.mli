(** Static k-d tree over a flat [n*d] coordinate store — the
    nearest-addable-target index of the implicit R^d distance backend.

    Valid for every {!Pnorm.t}: pruning uses the axis distance to the
    splitting hyperplane, which lower-bounds all Minkowski norms.  The
    tree keeps a private copy of the coordinates, so the owning backend
    can cross-check it against its own store (drift sentinel). *)

type t

val build : Pnorm.t -> flat:float array -> d:int -> t
(** [build norm ~flat ~d] indexes the [n = length flat / d] points.
    O(n log^2 n); the coordinates are copied. *)

val size : t -> int

val dimension : t -> int

val point : t -> int -> float array
(** Fresh copy of a stored point. *)

val nearest : t -> ?accept:(int -> bool) -> int -> (int * float) option
(** [nearest t u] is the closest stored point to point [u], excluding
    [u] itself and any point rejected by [accept].  [None] when no point
    qualifies. *)

val nearest_to : t -> ?accept:(int -> bool) -> float array -> (int * float) option
(** Closest stored point to an explicit query point. *)

val nearest_linear : t -> ?accept:(int -> bool) -> int -> (int * float) option
(** Brute-force oracle with the same contract as {!nearest} — an
    independent code path for tests and the drift sentinel. *)
