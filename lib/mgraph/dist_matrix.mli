(** Dense all-pairs distance matrices with exact O(n²) edge-insertion
    updates.

    The social-optimum local search evaluates hundreds of candidate edge
    additions per step; re-running all-pairs Dijkstra for each is wasteful
    when the insertion update
    [d'(x,y) = min(d(x,y), d(x,u)+w+d(v,y), d(x,v)+w+d(u,y))]
    is exact.  (Deletions can only be handled by recomputation.)

    Storage is one flat row-major unboxed [floatarray] of length n² —
    the relaxation loops stream a single contiguous buffer, and the row
    snapshots an update needs are preallocated workspaces, so
    [add_edge] and [total_with_edge_added] allocate nothing. *)

type t

val of_graph : Wgraph.t -> t
(** All-pairs distances of the graph (infinity across components). *)

val of_matrix : float array array -> t
(** Adopts (copies) an existing distance matrix; trusted as-is. *)

val size : t -> int

val distance : t -> int -> int -> float

val total : t -> float
(** Sum over ordered pairs; infinite if any pair is disconnected. *)

val copy : t -> t

val add_edge : t -> int -> int -> float -> unit
(** In-place exact update for inserting edge [(u,v)] of weight [w >= 0].
    A no-op when the new edge cannot improve any distance. *)

val with_edge_added : t -> int -> int -> float -> t
(** Functional version of {!add_edge}. *)

val total_with_edge_added : t -> int -> int -> float -> float
(** [total (with_edge_added m u v w)] without materializing the updated
    matrix — the O(n²) inner loop of the optimizer. *)
