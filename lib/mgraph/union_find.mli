(** Disjoint-set forest with union-by-rank and path compression. *)

type t

val create : int -> t

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two classes; returns [false] when they were
    already joined. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct classes. *)
