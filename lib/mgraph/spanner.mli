(** Multiplicative graph spanners.

    A subgraph [G] of a host [H] is a [t]-spanner when
    [d_G(u,v) <= t * d_H(u,v)] for all pairs.  The paper uses spanners
    throughout: any add-only equilibrium is an (α+1)-spanner (Lemma 1), the
    social optimum is an (α/2+1)-spanner (Lemma 2), and minimum-weight
    3/2-spanners of 1-2 host graphs are Nash equilibria (Thm. 5). *)

val greedy : int -> (int -> int -> float) -> float -> Wgraph.t
(** [greedy n w t] is the classical greedy [t]-spanner (Althöfer et al.) of
    the complete host with weight function [w]: scan pairs by increasing
    weight, keep an edge iff the current spanner distance exceeds
    [t * w u v].  The result is a [t]-spanner of the host. *)

val stretch : host:(int -> int -> float) -> Wgraph.t -> float
(** [stretch ~host g] is the maximum over pairs of
    [d_G(u,v) / d_H(u,v)] where [d_H] is the shortest-path metric of the
    complete host; infinite if [g] is disconnected.  Pairs at host distance
    0 are skipped unless their [g]-distance is positive, in which case the
    stretch is infinite. *)

val is_spanner : host:(int -> int -> float) -> float -> Wgraph.t -> bool
(** [is_spanner ~host t g] checks [stretch <= t] with tolerance. *)
