(* Implicit distance oracle for tree metrics: no matrix, O(n) storage.

   The network is the tree itself, so every pairwise distance decomposes
   along the unique tree path:

     d(u,v) = rootdist(u) + rootdist(v) - 2 * rootdist(lca(u,v))

   An Euler tour plus a sparse table over tour depths makes the LCA an
   O(1) range-minimum query, so single gets are O(1), rows and streaming
   what-if kernels O(n), and the total footprint O(n log n) ints — at
   n = 100k about 30 MB against the dense backend's 80 GB.

   Distance sums are O(1): a two-pass subtree DP precomputes
   sums(u) = Σ_v d(u,v) for every vertex at build time.

   What-if edits (the response engines' delete/swap probes) run fresh
   Dijkstra over the edited tree — n-1 edges, so O(n log n) per probe. *)

module Metric = Gncg_obs.Metric

let c_builds = Metric.Counter.make "tree_dist.builds"
let c_row_kernels = Metric.Counter.make "tree_dist.row_kernels"
let c_whatif_sssp = Metric.Counter.make "tree_dist.whatif_sssp"
let c_selfcheck_probes = Metric.Counter.make "tree_dist.selfcheck_probes"
let c_selfcheck_mismatches = Metric.Counter.make "tree_dist.selfcheck_mismatches"
let c_selfcheck_repairs = Metric.Counter.make "tree_dist.selfcheck_repairs"

type t = {
  tree : Wgraph.t;            (* the tree itself: n-1 edges, owned *)
  n : int;
  rootdist : float array;     (* weighted distance from root 0 *)
  sums : float array;         (* Σ_v d(u,v), two-pass reroot DP *)
  first : int array;          (* first Euler occurrence per vertex *)
  euler : int array;          (* Euler tour vertices, length 2n-1 *)
  edepth : int array;         (* integer depth per Euler position *)
  sparse : int array array;   (* sparse.(k).(i): argmin-depth position in [i, i+2^k) *)
  lg : int array;             (* floor log2 per range length *)
  scratch : float array;      (* reusable row for what-ifs / selfcheck *)
  ws : Dijkstra.workspace;
  mutable selfcheck_every : int;
  mutable selfcheck_countdown : int;
  mutable selfcheck_cursor : int;
}

(* Iterative Euler tour from root 0 — explicit stack, deep paths safe.
   Fills rootdist/first/euler/edepth/order (pre-order) and returns the
   parent array; raises on forests (unvisited vertices). *)
let tour tree n rootdist first euler edepth order =
  let parent = Array.make n (-1) in
  let vdepth = Array.make n 0 in
  (* CSR adjacency: O(degree) scanning without list churn. *)
  let off = Array.make (n + 1) 0 in
  Wgraph.iter_edges tree (fun u v _ ->
      off.(u + 1) <- off.(u + 1) + 1;
      off.(v + 1) <- off.(v + 1) + 1);
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let m2 = off.(n) in
  let adj_v = Array.make (max 1 m2) 0 and adj_w = Array.make (max 1 m2) 0.0 in
  let fill = Array.copy off in
  Wgraph.iter_edges tree (fun u v w ->
      adj_v.(fill.(u)) <- v;
      adj_w.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      adj_v.(fill.(v)) <- u;
      adj_w.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1);
  let iter = Array.init n (fun u -> off.(u)) in
  let stack = Array.make n 0 in
  let top = ref 0 in
  let pos = ref 0 in
  let visited = ref 1 in
  let record u =
    euler.(!pos) <- u;
    edepth.(!pos) <- vdepth.(u);
    if first.(u) < 0 then first.(u) <- !pos;
    incr pos
  in
  Array.fill first 0 n (-1);
  stack.(0) <- 0;
  rootdist.(0) <- 0.0;
  order.(0) <- 0;
  record 0;
  while !top >= 0 do
    let u = stack.(!top) in
    (* Skip the edge back to the parent. *)
    while iter.(u) < off.(u + 1) && adj_v.(iter.(u)) = parent.(u) do
      iter.(u) <- iter.(u) + 1
    done;
    if iter.(u) < off.(u + 1) then begin
      let v = adj_v.(iter.(u)) and w = adj_w.(iter.(u)) in
      iter.(u) <- iter.(u) + 1;
      if parent.(v) >= 0 || v = 0 then
        invalid_arg "Tree_dist: graph has a cycle"
      else begin
        parent.(v) <- u;
        vdepth.(v) <- vdepth.(u) + 1;
        rootdist.(v) <- rootdist.(u) +. w;
        order.(!visited) <- v;
        incr visited;
        incr top;
        stack.(!top) <- v;
        record v
      end
    end
    else begin
      decr top;
      if !top >= 0 then record stack.(!top)
    end
  done;
  if !visited <> n then invalid_arg "Tree_dist: tree is not connected";
  parent

(* Sparse table over Euler depths: sparse.(k).(i) is the position of the
   minimum depth in [i, i + 2^k).  Build O(len log len). *)
let build_sparse edepth len =
  let levels = ref 1 in
  while 1 lsl !levels <= len do
    incr levels
  done;
  let sparse = Array.make !levels [||] in
  sparse.(0) <- Array.init len (fun i -> i);
  for k = 1 to !levels - 1 do
    let half = 1 lsl (k - 1) in
    let width = 1 lsl k in
    let prev = sparse.(k - 1) in
    let cur = Array.make (len - width + 1) 0 in
    for i = 0 to len - width do
      let a = prev.(i) and b = prev.(i + half) in
      cur.(i) <- (if edepth.(a) <= edepth.(b) then a else b)
    done;
    sparse.(k) <- cur
  done;
  let lg = Array.make (len + 1) 0 in
  for i = 2 to len do
    lg.(i) <- lg.(i / 2) + 1
  done;
  (sparse, lg)

(* Two-pass reroot DP for sums(u) = Σ_v d(u,v): accumulate subtree sizes
   and downward sums bottom-up (reverse pre-order), then push across each
   edge top-down: sums(child) = sums(parent) + (n - 2*size(child)) * w. *)
let build_sums n rootdist parent order sums =
  let size = Array.make n 1 in
  let down = Array.make n 0.0 in
  for i = n - 1 downto 1 do
    let u = order.(i) in
    let p = parent.(u) in
    let w = rootdist.(u) -. rootdist.(p) in
    size.(p) <- size.(p) + size.(u);
    down.(p) <- down.(p) +. down.(u) +. (float_of_int size.(u) *. w)
  done;
  sums.(0) <- down.(0);
  for i = 1 to n - 1 do
    let u = order.(i) in
    let p = parent.(u) in
    let w = rootdist.(u) -. rootdist.(p) in
    sums.(u) <- sums.(p) +. (float_of_int (n - (2 * size.(u))) *. w)
  done

let populate t =
  let order = Array.make t.n 0 in
  let parent = tour t.tree t.n t.rootdist t.first t.euler t.edepth order in
  build_sums t.n t.rootdist parent order t.sums;
  let sparse, lg = build_sparse t.edepth (Array.length t.euler) in
  (sparse, lg)

let default_selfcheck_ref = Incr_apsp.default_selfcheck_cadence

let of_tree_no_copy tree =
  Metric.Counter.incr c_builds;
  let n = Wgraph.n tree in
  if n < 1 then invalid_arg "Tree_dist.of_tree: empty graph";
  if Wgraph.m tree <> n - 1 then
    invalid_arg
      (Printf.sprintf "Tree_dist.of_tree: %d edges on %d vertices is not a tree"
         (Wgraph.m tree) n);
  let len = (2 * n) - 1 in
  let t =
    {
      tree;
      n;
      rootdist = Array.make n 0.0;
      sums = Array.make n 0.0;
      first = Array.make n (-1);
      euler = Array.make len 0;
      edepth = Array.make len 0;
      sparse = [||];
      lg = [||];
      scratch = Array.make n Float.infinity;
      ws = Dijkstra.workspace n;
      selfcheck_every = default_selfcheck_ref ();
      selfcheck_countdown = 0;
      selfcheck_cursor = 0;
    }
  in
  let sparse, lg = populate t in
  { t with sparse; lg }

let of_tree tree = of_tree_no_copy (Wgraph.copy tree)

let graph t = t.tree

let n t = t.n

let check t u name =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Tree_dist.%s: vertex %d out of range" name u)

let lca t u v =
  let fu = t.first.(u) and fv = t.first.(v) in
  let l = if fu <= fv then fu else fv and r = if fu <= fv then fv else fu in
  let k = Array.unsafe_get t.lg (r - l + 1) in
  let a = Array.unsafe_get (Array.unsafe_get t.sparse k) l in
  let b = Array.unsafe_get (Array.unsafe_get t.sparse k) (r - (1 lsl k) + 1) in
  Array.unsafe_get t.euler
    (if Array.unsafe_get t.edepth a <= Array.unsafe_get t.edepth b then a else b)

let unsafe_distance t u v =
  if u = v then 0.0
  else
    Array.unsafe_get t.rootdist u
    +. Array.unsafe_get t.rootdist v
    -. (2.0 *. Array.unsafe_get t.rootdist (lca t u v))

let distance t u v =
  check t u "distance";
  check t v "distance";
  unsafe_distance t u v

let row_into t u dst =
  check t u "row_into";
  if Array.length dst < t.n then invalid_arg "Tree_dist.row_into: row too short";
  Metric.Counter.incr c_row_kernels;
  for x = 0 to t.n - 1 do
    Array.unsafe_set dst x (unsafe_distance t u x)
  done

let row t u =
  check t u "row";
  let dst = Array.make t.n 0.0 in
  row_into t u dst;
  dst

let dist_sum t u =
  check t u "dist_sum";
  Array.unsafe_get t.sums u

let dist_sum_with_edge t u v w =
  check t u "dist_sum_with_edge";
  check t v "dist_sum_with_edge";
  Metric.Counter.incr c_row_kernels;
  (* Σ_x min(d(u,x), w + d(v,x)) streamed through the oracle — Kahan, as
     in the dense kernel (tree distances are finite by construction). *)
  let s = ref 0.0 and c = ref 0.0 in
  for x = 0 to t.n - 1 do
    let m = Float.min (unsafe_distance t u x) (w +. unsafe_distance t v x) in
    let y = m -. !c in
    let tt = !s +. y in
    c := tt -. !s -. y;
    s := tt
  done;
  !s

let min_sum_against t r v w =
  check t v "min_sum_against";
  if Array.length r < t.n then invalid_arg "Tree_dist.min_sum_against: row too short";
  Metric.Counter.incr c_row_kernels;
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m = Float.min (Array.unsafe_get r x) (w +. unsafe_distance t v x) in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

(* --- what-if evaluation: fresh Dijkstra on the edited tree ------------- *)

let with_edits t ?remove ?add f =
  let removed =
    match remove with
    | None -> None
    | Some (u, v) -> (
      match Wgraph.weight t.tree u v with
      | None -> None
      | Some w ->
        Wgraph.remove_edge t.tree u v;
        Some (u, v, w))
  in
  let added =
    match add with
    | None -> None
    | Some (u, v, w) when not (Wgraph.has_edge t.tree u v) ->
      Wgraph.add_edge t.tree u v w;
      Some (u, v)
    | Some _ -> None
  in
  let r = f () in
  (match added with None -> () | Some (u, v) -> Wgraph.remove_edge t.tree u v);
  (match removed with None -> () | Some (u, v, w) -> Wgraph.add_edge t.tree u v w);
  r

let sssp_edited_into t ?remove ?add source dst =
  check t source "sssp_edited_into";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () -> Dijkstra.sssp_into t.ws t.tree source dst)

let sssp_edited_sum t ?remove ?add source =
  check t source "sssp_edited_sum";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () ->
      Dijkstra.sssp_into t.ws t.tree source t.scratch;
      Gncg_util.Flt.sum t.scratch)

(* --- drift sentinel ---------------------------------------------------- *)

let set_selfcheck t n =
  let n = max 0 n in
  t.selfcheck_every <- n;
  t.selfcheck_countdown <- n

let selfcheck_cadence t = t.selfcheck_every

let rebuild_in_place t =
  let order = Array.make t.n 0 in
  let parent = tour t.tree t.n t.rootdist t.first t.euler t.edepth order in
  build_sums t.n t.rootdist parent order t.sums
(* The sparse table depends only on the tour shape, which [tour] rebuilds
   identically (the tree is immutable), so it stays valid. *)

let selfcheck_now t =
  Metric.Counter.incr c_selfcheck_probes;
  (* Fresh Dijkstra on the tree vs the LCA oracle for one round-robin
     source — fully independent code paths over the same structure. *)
  let s = t.selfcheck_cursor mod t.n in
  t.selfcheck_cursor <- (s + 1) mod t.n;
  Dijkstra.sssp_into t.ws t.tree s t.scratch;
  let clean = ref true in
  (try
     for x = 0 to t.n - 1 do
       if not (Gncg_util.Flt.approx_eq (Array.unsafe_get t.scratch x) (unsafe_distance t s x))
       then begin
         clean := false;
         raise Exit
       end
     done
   with Exit -> ());
  if !clean then
    if not (Gncg_util.Flt.approx_eq (dist_sum t s) (Gncg_util.Flt.sum t.scratch)) then
      clean := false;
  if not !clean then begin
    Metric.Counter.incr c_selfcheck_mismatches;
    rebuild_in_place t;
    Metric.Counter.incr c_selfcheck_repairs
  end;
  !clean

let inject_cell_error t u _v delta =
  check t u "inject_cell_error";
  (* The oracle has no per-cell storage; perturbing rootdist(u) shifts
     every distance through u — the closest analogue of a stray write. *)
  t.rootdist.(u) <- t.rootdist.(u) +. delta

let memory_bytes t =
  let word = Sys.word_size / 8 in
  let float_arr len = (len + 2) * word in
  let int_arr len = (len + 2) * word in
  let len = Array.length t.euler in
  float_arr t.n (* rootdist *)
  + float_arr t.n (* sums *)
  + float_arr t.n (* scratch *)
  + int_arr t.n (* first *)
  + (2 * int_arr len) (* euler + edepth *)
  + int_arr (len + 1) (* lg *)
  + Array.fold_left (fun acc a -> acc + int_arr (Array.length a)) 0 t.sparse
