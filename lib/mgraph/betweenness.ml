(* Brandes (2001), weighted variant: one Dijkstra per source with
   shortest-path counting, then dependency accumulation in reverse settled
   order. *)

let eps = 1e-12

type pass = {
  dist : float array;
  sigma : float array;  (* number of shortest paths from the source *)
  order : int list;     (* settled vertices, farthest first *)
  preds : int list array;  (* shortest-path predecessors *)
}

let single_source g s =
  let n = Wgraph.n g in
  let dist = Array.make n Float.infinity in
  let sigma = Array.make n 0.0 in
  let preds = Array.make n [] in
  let heap = Binary_heap.create n in
  let settled = ref [] in
  dist.(s) <- 0.0;
  sigma.(s) <- 1.0;
  Binary_heap.insert heap s 0.0;
  let rec loop () =
    match Binary_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      settled := u :: !settled;
      Wgraph.iter_neighbors g u (fun v w ->
          let dv = du +. w in
          if dv < dist.(v) -. eps then begin
            dist.(v) <- dv;
            sigma.(v) <- sigma.(u);
            preds.(v) <- [ u ];
            Binary_heap.insert_or_decrease heap v dv
          end
          else if Float.abs (dv -. dist.(v)) <= eps then begin
            sigma.(v) <- sigma.(v) +. sigma.(u);
            preds.(v) <- u :: preds.(v)
          end);
      loop ()
  in
  loop ();
  { dist; sigma; order = !settled; preds }

let accumulate g s ~on_vertex ~on_edge =
  let n = Wgraph.n g in
  let p = single_source g s in
  let delta = Array.make n 0.0 in
  List.iter
    (fun w ->
      List.iter
        (fun v ->
          let share = p.sigma.(v) /. p.sigma.(w) *. (1.0 +. delta.(w)) in
          delta.(v) <- delta.(v) +. share;
          on_edge (min v w, max v w) share)
        p.preds.(w);
      if w <> s then on_vertex w delta.(w))
    p.order

let vertex g =
  let n = Wgraph.n g in
  let bc = Array.make n 0.0 in
  for s = 0 to n - 1 do
    accumulate g s ~on_vertex:(fun v d -> bc.(v) <- bc.(v) +. d) ~on_edge:(fun _ _ -> ())
  done;
  bc

let edge g =
  let tbl = Hashtbl.create (Wgraph.m g) in
  Wgraph.iter_edges g (fun u v _ -> Hashtbl.replace tbl (u, v) 0.0);
  for s = 0 to Wgraph.n g - 1 do
    accumulate g s
      ~on_vertex:(fun _ _ -> ())
      ~on_edge:(fun key share ->
        match Hashtbl.find_opt tbl key with
        | Some acc -> Hashtbl.replace tbl key (acc +. share)
        | None -> ())
  done;
  Hashtbl.fold (fun key acc l -> (key, acc) :: l) tbl [] |> List.sort compare

let distance_cost_via_betweenness g =
  let n = Wgraph.n g in
  (* Disconnected pairs contribute infinity; detect them first. *)
  let connected = n <= 1 || Connectivity.is_connected g in
  if not connected then Float.infinity
  else begin
    (* Each ordered pair (s,t) spreads its distance d(s,t) fractionally
       over its shortest-path edges, so summing w(e) x betweenness(e)
       recovers the total ordered-pair distance: running Brandes from all
       n sources already counts both directions of every pair. *)
    let total = ref 0.0 in
    let weights = Hashtbl.create (Wgraph.m g) in
    Wgraph.iter_edges g (fun u v w -> Hashtbl.replace weights (u, v) w);
    List.iter
      (fun (key, b) ->
        match Hashtbl.find_opt weights key with
        | Some w -> total := !total +. (w *. b)
        | None -> ())
      (edge g);
    !total
  end
