(* Flat row-major storage: one unboxed floatarray of length n² instead of
   n boxed rows.  The O(n²) relaxation loops walk a single contiguous
   buffer (no per-row indirection), and the row snapshots the insertion
   update needs are preallocated workspaces blitted into place — an
   [add_edge] allocates nothing. *)

module Metric = Gncg_obs.Metric

let c_insertions = Metric.Counter.make "dist_matrix.insertions"
let c_whatif_totals = Metric.Counter.make "dist_matrix.whatif_totals"

type t = {
  n : int;
  d : Float.Array.t;        (* n*n, index u*n+v *)
  snap_u : Float.Array.t;   (* reusable row snapshots for add_edge *)
  snap_v : Float.Array.t;
}

let alloc n =
  {
    n;
    d = Float.Array.create (n * n);
    snap_u = Float.Array.create n;
    snap_v = Float.Array.create n;
  }

let of_matrix m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Dist_matrix.of_matrix: non-square")
    m;
  let t = alloc n in
  for u = 0 to n - 1 do
    let row = m.(u) in
    for v = 0 to n - 1 do
      Float.Array.unsafe_set t.d ((u * n) + v) (Array.unsafe_get row v)
    done
  done;
  t

let of_graph g =
  let n = Wgraph.n g in
  let t = alloc n in
  let ws = Dijkstra.workspace n in
  for u = 0 to n - 1 do
    Dijkstra.sssp_flat_into ws g u t.d (u * n)
  done;
  t

let size t = t.n

let check t u name =
  if u < 0 || u >= t.n then invalid_arg (Printf.sprintf "Dist_matrix.%s: out of range" name)

let distance t u v =
  check t u "distance";
  check t v "distance";
  Float.Array.get t.d ((u * t.n) + v)

let total t =
  (* Kahan over the whole flat buffer; any infinite entry (disconnected
     pair) makes the total infinite without reaching the compensation. *)
  let len = t.n * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for i = 0 to len - 1 do
    let x = Float.Array.unsafe_get t.d i in
    if x = Float.infinity then any_inf := true
    else begin
      let y = x -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let copy t =
  let t' = alloc t.n in
  Float.Array.blit t.d 0 t'.d 0 (t.n * t.n);
  t'

let add_edge t u v w =
  check t u "add_edge";
  check t v "add_edge";
  Metric.Counter.incr c_insertions;
  if u = v then invalid_arg "Dist_matrix.add_edge: self-loop";
  if w < 0.0 || Float.is_nan w then invalid_arg "Dist_matrix.add_edge: negative weight";
  let n = t.n in
  if w < Float.Array.get t.d ((u * n) + v) then begin
    (* Rows u and v are read while every row (incl. themselves) is being
       written: snapshot them into the reusable workspaces first. *)
    let du = t.snap_u and dv = t.snap_v in
    Float.Array.blit t.d (u * n) du 0 n;
    Float.Array.blit t.d (v * n) dv 0 n;
    for x = 0 to n - 1 do
      let base = x * n in
      let dxu = Float.Array.unsafe_get du x and dxv = Float.Array.unsafe_get dv x in
      (* min over the three routings; written to avoid inf arithmetic
         pitfalls (inf + finite = inf is fine; no inf - inf appears). *)
      for y = 0 to n - 1 do
        let via_uv = dxu +. w +. Float.Array.unsafe_get dv y in
        let via_vu = dxv +. w +. Float.Array.unsafe_get du y in
        let cur = Float.Array.unsafe_get t.d (base + y) in
        let best = Float.min cur (Float.min via_uv via_vu) in
        if best < cur then Float.Array.unsafe_set t.d (base + y) best
      done
    done
  end

let with_edge_added t u v w =
  let t' = copy t in
  add_edge t' u v w;
  t'

let total_with_edge_added t u v w =
  check t u "total_with_edge_added";
  check t v "total_with_edge_added";
  Metric.Counter.incr c_whatif_totals;
  let n = t.n in
  if w >= Float.Array.get t.d ((u * n) + v) then total t
  else begin
    let ubase = u * n and vbase = v * n in
    let s = ref 0.0 and c = ref 0.0 in
    let any_inf = ref false in
    for x = 0 to n - 1 do
      let base = x * n in
      let dxu = Float.Array.unsafe_get t.d (ubase + x)
      and dxv = Float.Array.unsafe_get t.d (vbase + x) in
      for y = 0 to n - 1 do
        let via_uv = dxu +. w +. Float.Array.unsafe_get t.d (vbase + y) in
        let via_vu = dxv +. w +. Float.Array.unsafe_get t.d (ubase + y) in
        let d =
          Float.min (Float.Array.unsafe_get t.d (base + y)) (Float.min via_uv via_vu)
        in
        if d = Float.infinity then any_inf := true
        else begin
          let y' = d -. !c in
          let tt = !s +. y' in
          c := tt -. !s -. y';
          s := tt
        end
      done
    done;
    if !any_inf then Float.infinity else !s
  end
