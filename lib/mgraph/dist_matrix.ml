type t = { n : int; d : float array array }

let of_matrix m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Dist_matrix.of_matrix: non-square")
    m;
  { n; d = Array.map Array.copy m }

let of_graph g = { n = Wgraph.n g; d = Dijkstra.apsp g }

let size t = t.n

let check t u name =
  if u < 0 || u >= t.n then invalid_arg (Printf.sprintf "Dist_matrix.%s: out of range" name)

let distance t u v =
  check t u "distance";
  check t v "distance";
  t.d.(u).(v)

let total t =
  let acc = ref 0.0 in
  for x = 0 to t.n - 1 do
    acc := !acc +. Gncg_util.Flt.sum t.d.(x)
  done;
  !acc

let copy t = { n = t.n; d = Array.map Array.copy t.d }

(* min over the three routings; written to avoid inf arithmetic pitfalls
   (inf + finite = inf is fine; no inf - inf appears). *)
let relaxed d x y du dv w =
  let via_uv = du.(x) +. w +. dv.(y) in
  let via_vu = dv.(x) +. w +. du.(y) in
  Float.min d (Float.min via_uv via_vu)

let add_edge t u v w =
  check t u "add_edge";
  check t v "add_edge";
  if u = v then invalid_arg "Dist_matrix.add_edge: self-loop";
  if w < 0.0 || Float.is_nan w then invalid_arg "Dist_matrix.add_edge: negative weight";
  if w < t.d.(u).(v) then begin
    let du = Array.copy t.d.(u) and dv = Array.copy t.d.(v) in
    for x = 0 to t.n - 1 do
      let row = t.d.(x) in
      for y = 0 to t.n - 1 do
        row.(y) <- relaxed row.(y) x y du dv w
      done
    done
  end

let with_edge_added t u v w =
  let t' = copy t in
  add_edge t' u v w;
  t'

let total_with_edge_added t u v w =
  check t u "total_with_edge_added";
  check t v "total_with_edge_added";
  if w >= t.d.(u).(v) then total t
  else begin
    let du = t.d.(u) and dv = t.d.(v) in
    let acc = ref 0.0 in
    let any_inf = ref false in
    for x = 0 to t.n - 1 do
      let row = t.d.(x) in
      let row_sum = ref 0.0 in
      for y = 0 to t.n - 1 do
        let d = relaxed row.(y) x y du dv w in
        if d = Float.infinity then any_inf := true else row_sum := !row_sum +. d
      done;
      acc := !acc +. !row_sum
    done;
    if !any_inf then Float.infinity else !acc
  end
