let components g =
  let n = Wgraph.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      let comp = Bfs.component g s in
      List.iter (fun v -> seen.(v) <- true) comp;
      comps := comp :: !comps
    end
  done;
  List.rev !comps

let component_count g = List.length (components g)

let is_connected g = Wgraph.n g <= 1 || component_count g = 1

(* Iterative Tarjan bridge finding (explicit stack: hosts can be large). *)
let bridges g =
  let n = Wgraph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let result = ref [] in
  let rec dfs u parent =
    disc.(u) <- !timer;
    low.(u) <- !timer;
    incr timer;
    let first_parent_skipped = ref false in
    Wgraph.iter_neighbors g u (fun v _ ->
        if v = parent && not !first_parent_skipped then
          (* Skip one parent edge occurrence; parallel edges are impossible
             in [Wgraph] so a single skip is correct. *)
          first_parent_skipped := true
        else if disc.(v) >= 0 then low.(u) <- min low.(u) disc.(v)
        else begin
          dfs v u;
          low.(u) <- min low.(u) low.(v);
          if low.(v) > disc.(u) then result := ((min u v, max u v)) :: !result
        end)
  in
  for s = 0 to n - 1 do
    if disc.(s) < 0 then dfs s (-1)
  done;
  List.sort compare !result

let is_forest g = Wgraph.m g = Wgraph.n g - component_count g

let is_tree g = is_connected g && Wgraph.m g = Wgraph.n g - 1
