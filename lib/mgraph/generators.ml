module Prng = Gncg_util.Prng

let complete n w =
  let g = Wgraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Wgraph.add_edge g u v (w u v)
    done
  done;
  g

let ring n w =
  if n < 3 then invalid_arg "Generators.ring: n >= 3 required";
  let g = Wgraph.create n in
  for v = 0 to n - 1 do
    Wgraph.add_edge g v ((v + 1) mod n) w
  done;
  g

let grid ~rows ~cols w =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let g = Wgraph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then Wgraph.add_edge g v (v + 1) w;
      if r + 1 < rows then Wgraph.add_edge g v (v + cols) w
    done
  done;
  g

let random_tree rng ~n ~wmin ~wmax =
  if n < 1 then invalid_arg "Generators.random_tree";
  let g = Wgraph.create n in
  for v = 1 to n - 1 do
    Wgraph.add_edge g v (Prng.int rng v) (Prng.float_in rng wmin wmax)
  done;
  g

let gnp rng ~n ~p ~wmin ~wmax =
  let g = Wgraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.coin rng p then Wgraph.add_edge g u v (Prng.float_in rng wmin wmax)
    done
  done;
  g

let gnp_connected rng ~n ~p ~wmin ~wmax =
  let g = gnp rng ~n ~p ~wmin ~wmax in
  let order = Prng.permutation rng n in
  for i = 1 to n - 1 do
    let u = order.(i) and v = order.(Prng.int rng i) in
    if not (Wgraph.has_edge g u v) then
      Wgraph.add_edge g u v (Prng.float_in rng wmin wmax)
  done;
  g

let barabasi_albert rng ~n ~attach ~wmin ~wmax =
  if attach < 1 || n <= attach then invalid_arg "Generators.barabasi_albert";
  let g = Wgraph.create n in
  (* Seed: a small clique on the first attach+1 vertices. *)
  for u = 0 to attach do
    for v = u + 1 to attach do
      Wgraph.add_edge g u v (Prng.float_in rng wmin wmax)
    done
  done;
  (* Degree-proportional sampling via the repeated-endpoints urn. *)
  let urn = ref [] in
  Wgraph.iter_edges g (fun u v _ -> urn := u :: v :: !urn);
  for v = attach + 1 to n - 1 do
    let arr = Array.of_list !urn in
    let targets = ref [] in
    let guard = ref 0 in
    while List.length !targets < attach && !guard < 10_000 do
      incr guard;
      let t = arr.(Prng.int rng (Array.length arr)) in
      if t <> v && not (List.mem t !targets) then targets := t :: !targets
    done;
    (* Fallback for degenerate urns: attach to the lowest-index vertices. *)
    let rec fill u =
      if List.length !targets < attach && u < v then begin
        if not (List.mem u !targets) then targets := u :: !targets;
        fill (u + 1)
      end
    in
    fill 0;
    List.iter
      (fun t ->
        Wgraph.add_edge g v t (Prng.float_in rng wmin wmax);
        urn := v :: t :: !urn)
      !targets
  done;
  g
