(* The DISTANCES seam: every engine layer above mgraph reads distances
   through this first-class-module dispatch instead of a concrete
   matrix, so the storage can be a dense floatarray (the historic
   default), a memory-mapped bigarray, or an implicit oracle that never
   materializes O(n²) floats at all.

   First-class modules rather than a functor: the dispatch cost is one
   indirect call per operation — and every operation here is O(n) or
   worse except [distance], so the seam stays off the profile — while
   keeping the backend a runtime value that Host/Instances/CLI can
   select. *)

module Metric = Gncg_obs.Metric

let c_packs = Metric.Counter.make "distances.packs"

exception Unsupported of string

let unsupported backend op =
  raise
    (Unsupported
       (Printf.sprintf
          "Distances: the %s backend is read-only and does not support %s \
           (use a dense or mmap backend for mutating dynamics)"
          backend op))

module type S = sig
  type t

  val id : string
  val is_mutable : bool
  val n : t -> int
  val graph : t -> Wgraph.t option
  val distance : t -> int -> int -> float
  val row_into : t -> int -> float array -> unit
  val dist_sum : t -> int -> float
  val dist_sum_with_edge : t -> int -> int -> float -> float
  val min_sum_against : t -> float array -> int -> float -> float
  val nearest : t -> accept:(int -> bool) -> int -> (int * float) option
  val add_edge : t -> int -> int -> float -> Changed_rows.t
  val remove_edge : t -> int -> int -> Changed_rows.t

  val sssp_edited_into :
    t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit

  val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float
  val copy : t -> t
  val set_selfcheck : t -> int -> unit
  val selfcheck_cadence : t -> int
  val selfcheck_now : t -> bool
  val inject_cell_error : t -> int -> int -> float -> unit
  val memory_bytes : t -> int
end

type t = Packed : (module S with type t = 'a) * 'a -> t

(* --- backend adapters --------------------------------------------------- *)

module Dense_backend = struct
  type t = Incr_apsp.t

  let id = "dense"
  let is_mutable = true
  let n = Incr_apsp.n
  let graph t = Some (Incr_apsp.graph t)
  let distance = Incr_apsp.distance
  let row_into = Incr_apsp.row_into
  let dist_sum = Incr_apsp.dist_sum
  let dist_sum_with_edge = Incr_apsp.dist_sum_with_edge
  let min_sum_against = Incr_apsp.min_sum_against
  let nearest _ ~accept:_ _ = None
  let add_edge = Incr_apsp.add_edge
  let remove_edge = Incr_apsp.remove_edge
  let sssp_edited_into = Incr_apsp.sssp_edited_into
  let sssp_edited_sum = Incr_apsp.sssp_edited_sum
  let copy = Incr_apsp.copy
  let set_selfcheck = Incr_apsp.set_selfcheck
  let selfcheck_cadence = Incr_apsp.selfcheck_cadence
  let selfcheck_now = Incr_apsp.selfcheck_now
  let inject_cell_error = Incr_apsp.inject_cell_error
  let memory_bytes t = 8 * Incr_apsp.n t * Incr_apsp.n t
end

module Mmap_backend = struct
  type t = Mmap_apsp.t

  let id = "mmap"
  let is_mutable = true
  let n = Mmap_apsp.n
  let graph t = Some (Mmap_apsp.graph t)
  let distance = Mmap_apsp.distance
  let row_into = Mmap_apsp.row_into
  let dist_sum = Mmap_apsp.dist_sum
  let dist_sum_with_edge = Mmap_apsp.dist_sum_with_edge
  let min_sum_against = Mmap_apsp.min_sum_against
  let nearest _ ~accept:_ _ = None
  let add_edge = Mmap_apsp.add_edge
  let remove_edge = Mmap_apsp.remove_edge
  let sssp_edited_into = Mmap_apsp.sssp_edited_into
  let sssp_edited_sum = Mmap_apsp.sssp_edited_sum
  let copy = Mmap_apsp.copy
  let set_selfcheck = Mmap_apsp.set_selfcheck
  let selfcheck_cadence = Mmap_apsp.selfcheck_cadence
  let selfcheck_now = Mmap_apsp.selfcheck_now
  let inject_cell_error = Mmap_apsp.inject_cell_error
  let memory_bytes = Mmap_apsp.memory_bytes
end

module Tree_backend = struct
  type t = Tree_dist.t

  let id = "tree"
  let is_mutable = false
  let n = Tree_dist.n
  let graph t = Some (Tree_dist.graph t)
  let distance = Tree_dist.distance
  let row_into = Tree_dist.row_into
  let dist_sum = Tree_dist.dist_sum
  let dist_sum_with_edge = Tree_dist.dist_sum_with_edge
  let min_sum_against = Tree_dist.min_sum_against
  let nearest _ ~accept:_ _ = None
  let add_edge _ _ _ _ = unsupported id "add_edge"
  let remove_edge _ _ _ = unsupported id "remove_edge"
  let sssp_edited_into = Tree_dist.sssp_edited_into
  let sssp_edited_sum = Tree_dist.sssp_edited_sum
  let copy t = Tree_dist.of_tree (Tree_dist.graph t)
  let set_selfcheck = Tree_dist.set_selfcheck
  let selfcheck_cadence = Tree_dist.selfcheck_cadence
  let selfcheck_now = Tree_dist.selfcheck_now
  let inject_cell_error = Tree_dist.inject_cell_error
  let memory_bytes = Tree_dist.memory_bytes
end

module Rd_backend = struct
  type t = Rd_dist.t

  let id = "rd"
  let is_mutable = false
  let n = Rd_dist.n
  let graph _ = None
  let distance = Rd_dist.distance
  let row_into = Rd_dist.row_into
  let dist_sum = Rd_dist.dist_sum
  let dist_sum_with_edge = Rd_dist.dist_sum_with_edge
  let min_sum_against = Rd_dist.min_sum_against
  let nearest t ~accept u = Rd_dist.nearest t ~accept u
  let add_edge _ _ _ _ = unsupported id "add_edge"
  let remove_edge _ _ _ = unsupported id "remove_edge"
  let sssp_edited_into = Rd_dist.sssp_edited_into
  let sssp_edited_sum = Rd_dist.sssp_edited_sum

  let copy t =
    let n = Rd_dist.n t in
    let d = Rd_dist.dim t in
    let flat = Array.make (n * d) 0.0 in
    for i = 0 to n - 1 do
      Array.blit (Rd_dist.point t i) 0 flat (i * d) d
    done;
    Rd_dist.make (Rd_dist.norm t) ~flat ~d

  let set_selfcheck = Rd_dist.set_selfcheck
  let selfcheck_cadence = Rd_dist.selfcheck_cadence
  let selfcheck_now = Rd_dist.selfcheck_now
  let inject_cell_error = Rd_dist.inject_cell_error
  let memory_bytes = Rd_dist.memory_bytes
end

(* --- constructors ------------------------------------------------------- *)

let pack (type a) (module M : S with type t = a) (x : a) =
  Metric.Counter.incr c_packs;
  Packed ((module M), x)

let of_incr e = pack (module Dense_backend) e
let of_mmap_apsp e = pack (module Mmap_backend) e
let of_tree_dist e = pack (module Tree_backend) e
let of_rd_dist e = pack (module Rd_backend) e
let dense g = of_incr (Incr_apsp.of_graph_no_copy g)
let mmap ?path g = of_mmap_apsp (Mmap_apsp.of_graph_no_copy ?path g)
let tree g = of_tree_dist (Tree_dist.of_tree_no_copy g)
let rd norm pts = of_rd_dist (Rd_dist.of_points norm pts)
let rd_flat norm ~flat ~d = of_rd_dist (Rd_dist.make norm ~flat ~d)

(* --- dispatch ----------------------------------------------------------- *)

let backend_id (Packed ((module M), _)) = M.id
let is_mutable (Packed ((module M), _)) = M.is_mutable
let n (Packed ((module M), x)) = M.n x
let graph (Packed ((module M), x)) = M.graph x
let distance (Packed ((module M), x)) u v = M.distance x u v
let row_into (Packed ((module M), x)) u dst = M.row_into x u dst

let row t u =
  let dst = Array.make (n t) Float.infinity in
  row_into t u dst;
  dst

let matrix t = Array.init (n t) (fun u -> row t u)
let dist_sum (Packed ((module M), x)) u = M.dist_sum x u
let dist_sum_with_edge (Packed ((module M), x)) u v w = M.dist_sum_with_edge x u v w
let min_sum_against (Packed ((module M), x)) r v w = M.min_sum_against x r v w

let nearest (Packed ((module M), x)) ?(accept = fun _ -> true) u =
  M.nearest x ~accept u

let add_edge (Packed ((module M), x)) u v w = M.add_edge x u v w
let remove_edge (Packed ((module M), x)) u v = M.remove_edge x u v

let sssp_edited_into (Packed ((module M), x)) ?remove ?add s dst =
  M.sssp_edited_into x ?remove ?add s dst

let sssp_edited_sum (Packed ((module M), x)) ?remove ?add s =
  M.sssp_edited_sum x ?remove ?add s

let sssp_edited t ?remove ?add s =
  let dst = Array.make (n t) Float.infinity in
  sssp_edited_into t ?remove ?add s dst;
  dst

let copy (Packed ((module M), x)) = Packed ((module M), M.copy x)
let set_selfcheck (Packed ((module M), x)) c = M.set_selfcheck x c
let selfcheck_cadence (Packed ((module M), x)) = M.selfcheck_cadence x
let selfcheck_now (Packed ((module M), x)) = M.selfcheck_now x
let inject_cell_error (Packed ((module M), x)) u v delta = M.inject_cell_error x u v delta
let memory_bytes (Packed ((module M), x)) = M.memory_bytes x

(* --- backend selection -------------------------------------------------- *)

type spec = Auto | Dense | Tree | Rd | Mmap of string option

let spec_to_string = function
  | Auto -> "auto"
  | Dense -> "dense"
  | Tree -> "tree"
  | Rd -> "rd"
  | Mmap None -> "mmap"
  | Mmap (Some p) -> "mmap:" ^ p

let spec_of_string s =
  match s with
  | "auto" -> Ok Auto
  | "dense" -> Ok Dense
  | "tree" -> Ok Tree
  | "rd" -> Ok Rd
  | "mmap" -> Ok (Mmap None)
  | _ when String.length s > 5 && String.sub s 0 5 = "mmap:" ->
    Ok (Mmap (Some (String.sub s 5 (String.length s - 5))))
  | _ ->
    Error
      (Printf.sprintf "unknown distance backend %S (auto | dense | tree | rd | mmap[:path])"
         s)

(* Process-wide default applied where no explicit spec is given — how the
   CLI's [--dist-backend] reaches internally constructed states (mirrors
   Incr_apsp.set_default_selfcheck). *)
let default_spec_ref = ref Auto
let set_default_spec s = default_spec_ref := s
let default_spec () = !default_spec_ref
