type 'a node = Leaf | Node of 'a * 'a node list

type 'a t = { cmp : 'a -> 'a -> int; root : 'a node }

let empty ~cmp = { cmp; root = Leaf }

let is_empty h = h.root = Leaf

let merge_nodes cmp a b =
  match (a, b) with
  | Leaf, x | x, Leaf -> x
  | Node (xa, ca), Node (xb, cb) ->
    if cmp xa xb <= 0 then Node (xa, b :: ca) else Node (xb, a :: cb)

let merge a b = { a with root = merge_nodes a.cmp a.root b.root }

let insert h x = { h with root = merge_nodes h.cmp h.root (Node (x, [])) }

let find_min h = match h.root with Leaf -> None | Node (x, _) -> Some x

(* Two-pass pairing: pairwise merge left-to-right, then fold right-to-left. *)
let rec merge_pairs cmp = function
  | [] -> Leaf
  | [ x ] -> x
  | a :: b :: rest -> merge_nodes cmp (merge_nodes cmp a b) (merge_pairs cmp rest)

let delete_min h =
  match h.root with
  | Leaf -> None
  | Node (x, children) -> Some (x, { h with root = merge_pairs h.cmp children })

let of_list ~cmp xs = List.fold_left insert (empty ~cmp) xs

let to_sorted_list h =
  let rec go acc h =
    match delete_min h with None -> List.rev acc | Some (x, h') -> go (x :: acc) h'
  in
  go [] h

let size h =
  let rec count = function
    | Leaf -> 0
    | Node (_, children) -> 1 + List.fold_left (fun acc c -> acc + count c) 0 children
  in
  count h.root
