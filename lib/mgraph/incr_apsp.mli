(** Incrementally maintained all-pairs shortest paths.

    The response-dynamics hot loop mutates the network one edge at a time
    (add / delete / swap) and needs fresh distances after every step.
    Rebuilding the graph and re-running [Dijkstra.apsp] costs
    O(n·(m + n log n)) per step; this module keeps a full distance matrix
    in sync with a mutable {!Wgraph.t} instead:

    - {e insertion} of edge [(u,v,w)] is the exact O(n²) relaxation
      [d'(x,y) = min(d(x,y), d(x,u)+w+d(v,y), d(x,v)+w+d(u,y))]
      (one round suffices: with non-negative weights a shortest path
      never crosses a fixed edge twice);
    - {e deletion} recomputes only the {e affected sources}: a source [s]
      whose shortest paths may use [(u,v)] must have the edge tight, i.e.
      [d(s,u) + w = d(s,v)] or [d(s,v) + w = d(s,u)].  Rows of unaffected
      sources are provably unchanged; each affected row costs one pass of
      the reusable Dijkstra workspace.

    Storage is one flat row-major unboxed [floatarray] of length n²
    (index [u*n + v]): the relaxation kernels stream a single contiguous
    buffer, the row snapshots and what-if rows are preallocated
    workspaces, and both updates report a {!Changed_rows.t} of the source
    rows they actually modified, so callers can invalidate per-agent
    caches selectively.

    The wrapped graph is owned by this structure: mutate it only through
    {!add_edge} / {!remove_edge}, never directly.  Not thread-safe; the
    read-only accessors may be shared across domains between updates. *)

type t

val of_graph : Wgraph.t -> t
(** Adopts a private copy of the graph and computes its distances. *)

val of_graph_no_copy : Wgraph.t -> t
(** Wraps the graph itself (no copy): the caller transfers ownership and
    must not mutate it behind the structure's back. *)

val graph : t -> Wgraph.t
(** The tracked graph.  Read-only from the caller's perspective. *)

val n : t -> int

val distance : t -> int -> int -> float

val row : t -> int -> float array
(** A fresh copy of a source's distance row (the backing store is flat
    and unboxed; there is no live [float array] to alias). *)

val row_into : t -> int -> float array -> unit
(** Copies a source's distance row into a caller-provided buffer of
    length >= n — the allocation-free form of {!row}. *)

val matrix : t -> float array array
(** A fresh boxed copy of the whole matrix (test/oracle convenience). *)

val dist_sum : t -> int -> float
(** Kahan-compensated sum of a source's row, infinite when the source is
    disconnected from anyone — one allocation-free pass over the flat
    storage. *)

val dist_sum_with_edge : t -> int -> int -> float -> float
(** [dist_sum_with_edge t u v w] is [Σ_x min(d(u,x), w + d(v,x))] — the
    mover's distance sum after buying edge [(u,v)] (every shortest path
    through a new incident edge starts with it).  Streaming, Kahan,
    infinity-propagating; the what-if {e addition} kernel of the
    response engines. *)

val min_sum_against : t -> float array -> int -> float -> float
(** [min_sum_against t r v w] is [Σ_x min(r.(x), w + d(v,x))]: the same
    insertion relaxation applied to a caller-held row [r] (typically a
    deletion what-if), used as an exact lower bound on swap what-ifs. *)

val add_edge : t -> int -> int -> float -> Changed_rows.t
(** Inserts the edge into the graph and updates all rows in O(n²) without
    allocating (beyond the returned report).  Returns exactly the rows
    with at least one strictly decreased entry.  Raises like
    {!Wgraph.add_edge} on invalid arguments; the edge must not already be
    present. *)

val remove_edge : t -> int -> int -> Changed_rows.t
(** Removes the edge (no-op when absent) and recomputes the rows of
    affected sources only, through the preallocated Dijkstra workspace
    and scratch row.  Returns exactly the recomputed rows that differ
    from their previous contents. *)

val last_deletion_recomputed : t -> int
(** Number of source rows the most recent {!remove_edge} recomputed —
    instrumentation for benches and tests. *)

val sssp_edited : t -> ?remove:int * int -> ?add:int * int * float -> int -> float array
(** Single-source distances on a hypothetical edit of the tracked graph
    (one edge removed and/or one added), without touching the maintained
    matrix: the graph is edited in place, measured, and restored.  Absent
    removals and already-present additions are ignored.  The what-if
    primitive of single-move evaluation; not thread-safe. *)

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit
(** {!sssp_edited} into a caller-provided row — no allocation. *)

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float
(** [Flt.sum] of the {!sssp_edited} row computed through the internal
    scratch row — the allocation-free form the response engines use when
    only the distance sum matters. *)

val copy : t -> t

val rebuild : t -> unit
(** Recomputes the whole matrix from the graph through the reusable
    workspace (an oracle/repair hook; normal use never needs it). *)

(** {1 Drift sentinel}

    A configurable-cadence cross-check of the maintained matrix against
    ground truth.  Every [N] updates ({!add_edge} / {!remove_edge}) the
    engine runs a cheap probe — an [Flt]-tolerant O(n²) symmetry sweep
    (any single-cell corruption breaks [d(u,v) = d(v,u)]) plus one fresh
    Dijkstra recompute of a round-robin sampled source row.  On a
    mismatch it degrades gracefully: the [incr_apsp.selfcheck_mismatches]
    and [incr_apsp.selfcheck_repairs] observability counters are bumped,
    the whole matrix is rebuilt from the graph, and the triggering
    update's change report covers every row so the layers above
    invalidate their caches. *)

val set_selfcheck : t -> int -> unit
(** Sets the probe cadence: check every [n] updates; [0] (the default)
    disables the sentinel.  Resets the countdown. *)

val selfcheck_cadence : t -> int

val selfcheck_now : t -> bool
(** Runs one probe immediately (outside the cadence), repairing on
    mismatch.  Returns [true] when the matrix was clean. *)

val set_default_selfcheck : int -> unit
(** Process-wide default cadence applied to newly created engines — how
    the CLI's [--selfcheck N] reaches internally constructed instances.
    Set once at startup. *)

val default_selfcheck_cadence : unit -> int
(** The process-wide default cadence — consulted by every {!Distances}
    backend at construction so [--selfcheck N] covers them uniformly. *)

val inject_cell_error : t -> int -> int -> float -> unit
(** [inject_cell_error t u v delta] perturbs the single maintained cell
    [d(u,v)] by [delta] {e without} touching the graph — a fault-injection
    hook for exercising the sentinel in tests and chaos runs. *)
