(** Incrementally maintained all-pairs shortest paths.

    The response-dynamics hot loop mutates the network one edge at a time
    (add / delete / swap) and needs fresh distances after every step.
    Rebuilding the graph and re-running [Dijkstra.apsp] costs
    O(n·(m + n log n)) per step; this module keeps a full distance matrix
    in sync with a mutable {!Wgraph.t} instead:

    - {e insertion} of edge [(u,v,w)] is the exact O(n²) relaxation
      [d'(x,y) = min(d(x,y), d(x,u)+w+d(v,y), d(x,v)+w+d(u,y))]
      (one round suffices: with non-negative weights a shortest path
      never crosses a fixed edge twice);
    - {e deletion} recomputes only the {e affected sources}: a source [s]
      whose shortest paths may use [(u,v)] must have the edge tight, i.e.
      [d(s,u) + w = d(s,v)] or [d(s,v) + w = d(s,u)].  Rows of unaffected
      sources are provably unchanged; each affected row costs one
      Dijkstra pass.

    The wrapped graph is owned by this structure: mutate it only through
    {!add_edge} / {!remove_edge}, never directly.  Not thread-safe; the
    read-only accessors may be shared across domains between updates. *)

type t

val of_graph : Wgraph.t -> t
(** Adopts a private copy of the graph and computes its distances. *)

val of_graph_no_copy : Wgraph.t -> t
(** Wraps the graph itself (no copy): the caller transfers ownership and
    must not mutate it behind the structure's back. *)

val graph : t -> Wgraph.t
(** The tracked graph.  Read-only from the caller's perspective. *)

val n : t -> int

val distance : t -> int -> int -> float

val row : t -> int -> float array
(** The live distance row of a source — {b not} a copy; treat it as
    read-only and invalidated by the next update. *)

val matrix : t -> float array array
(** The live matrix (same aliasing caveat as {!row}). *)

val add_edge : t -> int -> int -> float -> unit
(** Inserts the edge into the graph and updates all rows in O(n²).
    Raises like {!Wgraph.add_edge} on invalid arguments; the edge must
    not already be present. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge (no-op when absent) and recomputes the rows of
    affected sources only. *)

val last_deletion_recomputed : t -> int
(** Number of source rows the most recent {!remove_edge} recomputed —
    instrumentation for benches and tests. *)

val sssp_edited : t -> ?remove:int * int -> ?add:int * int * float -> int -> float array
(** Single-source distances on a hypothetical edit of the tracked graph
    (one edge removed and/or one added), without touching the maintained
    matrix: the graph is edited in place, measured, and restored.  Absent
    removals and already-present additions are ignored.  The what-if
    primitive of single-move evaluation; not thread-safe. *)

val copy : t -> t

val rebuild : t -> unit
(** Recomputes the whole matrix from the graph (an oracle/repair hook;
    normal use never needs it). *)
