(** Minkowski p-norms over flat [n*d] row-major coordinate storage — the
    shared arithmetic of the implicit R^d distance backend ({!Rd_dist})
    and its nearest-neighbour index ({!Kd_tree}). *)

type t =
  | L1
  | L2
  | Lp of float  (** p >= 1, finite *)
  | Linf

val validate : t -> unit
(** Raises [Invalid_argument] on [Lp p] with [p < 1] or non-finite [p]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** ["l1" | "l2" | "l<p>" | "linf"]. *)

val dist : t -> flat:float array -> d:int -> int -> int -> float
(** [dist norm ~flat ~d u v] is the p-norm distance between points [u]
    and [v] of the flat store (rows of length [d]). *)

val dist_to : t -> flat:float array -> d:int -> int -> float array -> float
(** Distance between stored point [u] and an explicit query point. *)
