let hops g s =
  let n = Wgraph.n g in
  if s < 0 || s >= n then invalid_arg "Bfs.hops: source out of range";
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Wgraph.iter_neighbors g u (fun v _ ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
  done;
  dist

let reachable g s = Array.map (fun d -> d >= 0) (hops g s)

let component g s =
  let d = hops g s in
  let order = ref [] in
  Array.iteri (fun v dv -> if dv >= 0 then order := (dv, v) :: !order) d;
  !order |> List.sort compare |> List.map snd
