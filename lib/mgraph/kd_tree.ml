(* Static k-d tree over a flat [n*d] coordinate store.

   The tree is implicit: [idx] is a permutation of the point indices
   arranged so that every subtree occupies a contiguous range with its
   splitting point at the range midpoint (axis = depth mod d).  Build is
   O(n log^2 n) (a sort per level), a nearest query O(log n) expected.

   Pruning is valid for every Minkowski norm: the axis-aligned distance
   to the splitting hyperplane lower-bounds the p-norm distance to any
   point beyond it (|q_i - x_i| <= ||q - x||_p for all p >= 1 and for
   the sup norm). *)

type t = {
  flat : float array;  (* private copy: n*d row-major coordinates *)
  d : int;
  n : int;
  idx : int array;
  norm : Pnorm.t;
}

let build norm ~flat ~d =
  Pnorm.validate norm;
  if d < 1 then invalid_arg "Kd_tree.build: dimension must be positive";
  if Array.length flat mod d <> 0 then invalid_arg "Kd_tree.build: ragged flat store";
  let n = Array.length flat / d in
  let flat = Array.copy flat in
  let idx = Array.init n (fun i -> i) in
  (* Sort each range by the split axis, recurse around the midpoint. *)
  let rec go lo hi depth =
    if hi - lo > 1 then begin
      let axis = depth mod d in
      let sub = Array.sub idx lo (hi - lo) in
      Array.sort
        (fun a b -> Float.compare flat.((a * d) + axis) flat.((b * d) + axis))
        sub;
      Array.blit sub 0 idx lo (hi - lo);
      let mid = (lo + hi) / 2 in
      go lo mid (depth + 1);
      go (mid + 1) hi (depth + 1)
    end
  in
  go 0 n 0;
  { flat; d; n; idx; norm }

let size t = t.n

let dimension t = t.d

let point t i =
  if i < 0 || i >= t.n then invalid_arg "Kd_tree.point: out of range";
  Array.sub t.flat (i * t.d) t.d

let nearest_to t ?(accept = fun _ -> true) q =
  if Array.length q <> t.d then invalid_arg "Kd_tree.nearest_to: dimension mismatch";
  if t.n = 0 then None
  else begin
    let best = ref (-1) and best_d = ref Float.infinity in
    let rec go lo hi depth =
      if hi > lo then begin
        let axis = depth mod t.d in
        let mid = (lo + hi) / 2 in
        let p = Array.unsafe_get t.idx mid in
        (if accept p then begin
           let dist = Pnorm.dist_to t.norm ~flat:t.flat ~d:t.d p q in
           if dist < !best_d then begin
             best_d := dist;
             best := p
           end
         end);
        if hi - lo > 1 then begin
          let delta = Array.unsafe_get q axis -. t.flat.((p * t.d) + axis) in
          let near_lo, near_hi, far_lo, far_hi =
            if delta <= 0.0 then (lo, mid, mid + 1, hi) else (mid + 1, hi, lo, mid)
          in
          go near_lo near_hi (depth + 1);
          (* The far half can only help when the splitting plane is closer
             than the incumbent. *)
          if Float.abs delta < !best_d then go far_lo far_hi (depth + 1)
        end
      end
    in
    go 0 t.n 0;
    if !best < 0 then None else Some (!best, !best_d)
  end

let nearest t ?accept u =
  if u < 0 || u >= t.n then invalid_arg "Kd_tree.nearest: out of range";
  let q = Array.sub t.flat (u * t.d) t.d in
  let accept = match accept with Some f -> fun v -> v <> u && f v | None -> fun v -> v <> u in
  nearest_to t ~accept q

(* Linear-scan oracle for the drift sentinel and the tests: a completely
   independent code path over the same acceptance rule. *)
let nearest_linear t ?(accept = fun _ -> true) u =
  if u < 0 || u >= t.n then invalid_arg "Kd_tree.nearest_linear: out of range";
  let best = ref (-1) and best_d = ref Float.infinity in
  for v = 0 to t.n - 1 do
    if v <> u && accept v then begin
      let dist = Pnorm.dist t.norm ~flat:t.flat ~d:t.d u v in
      if dist < !best_d then begin
        best_d := dist;
        best := v
      end
    end
  done;
  if !best < 0 then None else Some (!best, !best_d)
