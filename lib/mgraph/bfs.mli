(** Breadth-first search: hop distances and reachability, ignoring weights. *)

val hops : Wgraph.t -> int -> int array
(** [hops g s] is the hop distance from [s] to every vertex, [-1] when
    unreachable. *)

val reachable : Wgraph.t -> int -> bool array

val component : Wgraph.t -> int -> int list
(** Vertices of the connected component of [s], in BFS order. *)
