(* Memory-mapped twin of {!Incr_apsp}: the same incremental APSP
   algorithms over a [Bigarray.Array1] float64 store instead of a
   floatarray.  Backed either by anonymous bigarray memory or by a file
   mapping ([Unix.map_file], shared), so a matrix computed once can be
   handed to sibling domains or processes — the substrate the serve
   daemon's workers will share.

   Algorithms are copied from Incr_apsp on purpose: the two backends are
   independent implementations over different storage, which is exactly
   what the equivalence suite (test_distances) and the drift sentinel
   cross-check. *)

module Metric = Gncg_obs.Metric
module BA1 = Bigarray.Array1

let c_insertions = Metric.Counter.make "mmap_apsp.insertions"
let c_deletions = Metric.Counter.make "mmap_apsp.deletions"
let c_rows_changed = Metric.Counter.make "mmap_apsp.rows_changed"
let c_whatif_sssp = Metric.Counter.make "mmap_apsp.whatif_sssp"
let c_add_kernels = Metric.Counter.make "mmap_apsp.add_kernels"
let c_maps = Metric.Counter.make "mmap_apsp.maps"
let c_selfcheck_probes = Metric.Counter.make "mmap_apsp.selfcheck_probes"
let c_selfcheck_mismatches = Metric.Counter.make "mmap_apsp.selfcheck_mismatches"
let c_selfcheck_repairs = Metric.Counter.make "mmap_apsp.selfcheck_repairs"

type store = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t

type t = {
  g : Wgraph.t;
  n : int;
  d : store;                  (* n*n distances, possibly file-backed *)
  backing : string option;
  snap_u : float array;       (* row snapshots for the insertion update *)
  snap_v : float array;
  scratch : float array;
  ws : Dijkstra.workspace;
  mutable last_recomputed : int;
  mutable selfcheck_every : int;
  mutable selfcheck_countdown : int;
  mutable selfcheck_cursor : int;
}

let map_store ?path n =
  Metric.Counter.incr c_maps;
  match path with
  | None -> BA1.create Bigarray.float64 Bigarray.c_layout (n * n)
  | Some path ->
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let ga =
          Unix.map_file fd Bigarray.float64 Bigarray.c_layout true [| n * n |]
        in
        Bigarray.array1_of_genarray ga)

let write_row t s =
  Dijkstra.sssp_into t.ws t.g s t.scratch;
  let base = s * t.n in
  for x = 0 to t.n - 1 do
    BA1.unsafe_set t.d (base + x) (Array.unsafe_get t.scratch x)
  done

let rebuild t =
  for s = 0 to t.n - 1 do
    write_row t s
  done

let of_graph_no_copy ?path g =
  let n = Wgraph.n g in
  let t =
    {
      g;
      n;
      d = map_store ?path n;
      backing = path;
      snap_u = Array.make n Float.infinity;
      snap_v = Array.make n Float.infinity;
      scratch = Array.make n Float.infinity;
      ws = Dijkstra.workspace n;
      last_recomputed = 0;
      selfcheck_every = Incr_apsp.default_selfcheck_cadence ();
      selfcheck_countdown = Incr_apsp.default_selfcheck_cadence ();
      selfcheck_cursor = 0;
    }
  in
  rebuild t;
  t

let of_graph ?path g = of_graph_no_copy ?path (Wgraph.copy g)

let graph t = t.g

let n t = t.n

let backing t = t.backing

let check t u name =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Mmap_apsp.%s: vertex %d out of range" name u)

let distance t u v =
  check t u "distance";
  check t v "distance";
  BA1.get t.d ((u * t.n) + v)

let row_into t u dst =
  check t u "row_into";
  if Array.length dst < t.n then invalid_arg "Mmap_apsp.row_into: row too short";
  let base = u * t.n in
  for v = 0 to t.n - 1 do
    Array.unsafe_set dst v (BA1.unsafe_get t.d (base + v))
  done

let row t u =
  let dst = Array.make t.n Float.infinity in
  row_into t u dst;
  dst

let matrix t = Array.init t.n (fun u -> row t u)

let dist_sum t u =
  check t u "dist_sum";
  let base = u * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let d = BA1.unsafe_get t.d (base + x) in
    if d = Float.infinity then any_inf := true
    else begin
      let y = d -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let dist_sum_with_edge t u v w =
  check t u "dist_sum_with_edge";
  check t v "dist_sum_with_edge";
  Metric.Counter.incr c_add_kernels;
  let ubase = u * t.n and vbase = v * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m =
      Float.min (BA1.unsafe_get t.d (ubase + x)) (w +. BA1.unsafe_get t.d (vbase + x))
    in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let min_sum_against t r v w =
  check t v "min_sum_against";
  Metric.Counter.incr c_add_kernels;
  if Array.length r < t.n then invalid_arg "Mmap_apsp.min_sum_against: row too short";
  let vbase = v * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m = Float.min (Array.unsafe_get r x) (w +. BA1.unsafe_get t.d (vbase + x)) in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

(* --- drift sentinel (same probes as Incr_apsp, over the mapping) ------- *)

let set_selfcheck t n =
  let n = max 0 n in
  t.selfcheck_every <- n;
  t.selfcheck_countdown <- n

let selfcheck_cadence t = t.selfcheck_every

let selfcheck_now t =
  Metric.Counter.incr c_selfcheck_probes;
  let n = t.n in
  let clean = ref true in
  (try
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         if
           not
             (Gncg_util.Flt.approx_eq
                (BA1.unsafe_get t.d ((u * n) + v))
                (BA1.unsafe_get t.d ((v * n) + u)))
         then begin
           clean := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  if !clean && n > 0 then begin
    let s = t.selfcheck_cursor mod n in
    t.selfcheck_cursor <- (s + 1) mod n;
    Dijkstra.sssp_into t.ws t.g s t.scratch;
    let base = s * n in
    try
      for x = 0 to n - 1 do
        if
          not
            (Gncg_util.Flt.approx_eq
               (Array.unsafe_get t.scratch x)
               (BA1.unsafe_get t.d (base + x)))
        then begin
          clean := false;
          raise Exit
        end
      done
    with Exit -> ()
  end;
  if not !clean then begin
    Metric.Counter.incr c_selfcheck_mismatches;
    rebuild t;
    Metric.Counter.incr c_selfcheck_repairs
  end;
  !clean

let tick_selfcheck t changed =
  if t.selfcheck_every > 0 then begin
    t.selfcheck_countdown <- t.selfcheck_countdown - 1;
    if t.selfcheck_countdown <= 0 then begin
      t.selfcheck_countdown <- t.selfcheck_every;
      if not (selfcheck_now t) then
        for s = 0 to t.n - 1 do
          Changed_rows.add changed s
        done
    end
  end

let inject_cell_error t u v delta =
  check t u "inject_cell_error";
  check t v "inject_cell_error";
  let i = (u * t.n) + v in
  BA1.set t.d i (BA1.get t.d i +. delta)

(* --- updates --- *)

let add_edge t u v w =
  check t u "add_edge";
  check t v "add_edge";
  if Wgraph.has_edge t.g u v then invalid_arg "Mmap_apsp.add_edge: edge already present";
  Wgraph.add_edge t.g u v w;
  Metric.Counter.incr c_insertions;
  let n = t.n in
  let changed = Changed_rows.create n in
  if w < BA1.get t.d ((u * n) + v) then begin
    let du = t.snap_u and dv = t.snap_v in
    for x = 0 to n - 1 do
      Array.unsafe_set du x (BA1.unsafe_get t.d ((u * n) + x));
      Array.unsafe_set dv x (BA1.unsafe_get t.d ((v * n) + x))
    done;
    for x = 0 to n - 1 do
      let base = x * n in
      let dxu = Array.unsafe_get du x and dxv = Array.unsafe_get dv x in
      let touched = ref false in
      for y = 0 to n - 1 do
        let via_uv = dxu +. w +. Array.unsafe_get dv y in
        let via_vu = dxv +. w +. Array.unsafe_get du y in
        let cur = BA1.unsafe_get t.d (base + y) in
        let best = Float.min cur (Float.min via_uv via_vu) in
        if best < cur then begin
          BA1.unsafe_set t.d (base + y) best;
          touched := true
        end
      done;
      if !touched then Changed_rows.add changed x
    done;
    Metric.Counter.add c_rows_changed (Changed_rows.cardinal changed)
  end;
  tick_selfcheck t changed;
  changed

let remove_edge t u v =
  check t u "remove_edge";
  check t v "remove_edge";
  let n = t.n in
  let changed = Changed_rows.create n in
  (match Wgraph.weight t.g u v with
  | None -> t.last_recomputed <- 0
  | Some w ->
    Wgraph.remove_edge t.g u v;
    Metric.Counter.incr c_deletions;
    let recomputed = ref 0 in
    for s = 0 to n - 1 do
      let base = s * n in
      let dsu = BA1.unsafe_get t.d (base + u) and dsv = BA1.unsafe_get t.d (base + v) in
      if
        Gncg_util.Flt.approx_eq (dsu +. w) dsv
        || Gncg_util.Flt.approx_eq (dsv +. w) dsu
      then begin
        Dijkstra.sssp_into t.ws t.g s t.scratch;
        let differs = ref false in
        for x = 0 to n - 1 do
          let fresh = Array.unsafe_get t.scratch x in
          if fresh <> BA1.unsafe_get t.d (base + x) then begin
            BA1.unsafe_set t.d (base + x) fresh;
            differs := true
          end
        done;
        if !differs then Changed_rows.add changed s;
        incr recomputed
      end
    done;
    t.last_recomputed <- !recomputed;
    Metric.Counter.add c_rows_changed (Changed_rows.cardinal changed));
  tick_selfcheck t changed;
  changed

let last_deletion_recomputed t = t.last_recomputed

(* --- what-if evaluation --- *)

let with_edits t ?remove ?add f =
  let removed =
    match remove with
    | None -> None
    | Some (u, v) -> (
      match Wgraph.weight t.g u v with
      | None -> None
      | Some w ->
        Wgraph.remove_edge t.g u v;
        Some (u, v, w))
  in
  let added =
    match add with
    | None -> None
    | Some (u, v, w) when not (Wgraph.has_edge t.g u v) ->
      Wgraph.add_edge t.g u v w;
      Some (u, v)
    | Some _ -> None
  in
  let r = f () in
  (match added with None -> () | Some (u, v) -> Wgraph.remove_edge t.g u v);
  (match removed with None -> () | Some (u, v, w) -> Wgraph.add_edge t.g u v w);
  r

let sssp_edited_into t ?remove ?add source dst =
  check t source "sssp_edited_into";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () -> Dijkstra.sssp_into t.ws t.g source dst)

let sssp_edited_sum t ?remove ?add source =
  check t source "sssp_edited_sum";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () ->
      Dijkstra.sssp_into t.ws t.g source t.scratch;
      Gncg_util.Flt.sum t.scratch)

let copy t =
  let t' =
    {
      g = Wgraph.copy t.g;
      n = t.n;
      d = BA1.create Bigarray.float64 Bigarray.c_layout (t.n * t.n);
      backing = None;
      snap_u = Array.make t.n Float.infinity;
      snap_v = Array.make t.n Float.infinity;
      scratch = Array.make t.n Float.infinity;
      ws = Dijkstra.workspace t.n;
      last_recomputed = t.last_recomputed;
      selfcheck_every = t.selfcheck_every;
      selfcheck_countdown = t.selfcheck_countdown;
      selfcheck_cursor = t.selfcheck_cursor;
    }
  in
  BA1.blit t.d t'.d;
  t'

let memory_bytes t = 8 * t.n * t.n
