(** Implicit distance oracle for tree metrics — no matrix.

    When the built network {e is} the host tree (the canonical large-n
    regime of the paper's §4 tree-metric results), pairwise distances
    follow from an Euler tour + sparse-table LCA in O(1) per query and
    O(n log n) ints of storage, against the dense backend's O(n²)
    floats.  Distance sums are O(1) via a build-time reroot DP; what-if
    edits run fresh Dijkstra over the (sparse) edited tree.

    The structure is read-only: there are no [add_edge] / [remove_edge]
    updates — response engines evaluate hypothetical moves through the
    [sssp_edited_*] probes, and mutating dynamics fall back to a dense
    backend (see {!Distances}). *)

type t

val of_tree : Wgraph.t -> t
(** Adopts a private copy of the tree.  Raises [Invalid_argument] when
    the graph is not a connected tree ([m = n-1], all reachable). *)

val of_tree_no_copy : Wgraph.t -> t
(** Wraps the tree itself; the caller must never mutate it. *)

val graph : t -> Wgraph.t
(** The underlying tree (read-only). *)

val n : t -> int

val distance : t -> int -> int -> float
(** O(1): [rootdist u + rootdist v - 2 rootdist (lca u v)]. *)

val lca : t -> int -> int -> int

val row : t -> int -> float array

val row_into : t -> int -> float array -> unit
(** O(n) with O(1) work per entry. *)

val dist_sum : t -> int -> float
(** O(1) — precomputed [Σ_v d(u,v)] for every vertex. *)

val dist_sum_with_edge : t -> int -> int -> float -> float
(** [Σ_x min(d(u,x), w + d(v,x))] — the addition what-if kernel,
    streamed through the oracle in O(n). *)

val min_sum_against : t -> float array -> int -> float -> float
(** [Σ_x min(r.(x), w + d(v,x))] against a caller-held row. *)

val sssp_edited_into :
  t -> ?remove:int * int -> ?add:int * int * float -> int -> float array -> unit
(** Single-source distances on a hypothetical edit of the tree (edge
    removed and/or added, edits restored before returning) — O(n log n)
    since the tree has n-1 edges. *)

val sssp_edited_sum : t -> ?remove:int * int -> ?add:int * int * float -> int -> float

(** {1 Drift sentinel} *)

val set_selfcheck : t -> int -> unit

val selfcheck_cadence : t -> int

val selfcheck_now : t -> bool
(** Fresh Dijkstra on the tree vs the LCA oracle for one round-robin
    source (plus a sum cross-check); on mismatch bumps the
    [tree_dist.selfcheck_*] counters, rebuilds the tour/DP arrays from
    the tree, and returns [false]. *)

val inject_cell_error : t -> int -> int -> float -> unit
(** Perturbs [rootdist u] (the oracle has no per-cell storage) — fault
    injection for sentinel tests; the second vertex is ignored. *)

val memory_bytes : t -> int
(** Estimated resident bytes of the oracle's arrays. *)
