(** Shortest paths on weighted graphs (non-negative weights).

    Distances use [Float.infinity] for unreachable vertices, matching the
    paper's convention that a disconnected agent has infinite distance
    cost. *)

val sssp : Wgraph.t -> int -> float array
(** [sssp g s] is the array of shortest-path distances from [s]. *)

type workspace
(** A reusable heap for repeated single-source passes: one allocation for
    the lifetime of an engine instead of one per call.  Not thread-safe;
    each domain needs its own. *)

val workspace : int -> workspace
(** [workspace n] serves graphs of up to [n] vertices. *)

val workspace_capacity : workspace -> int

val sssp_into : workspace -> Wgraph.t -> int -> float array -> unit
(** [sssp_into ws g s row] writes the distances from [s] into
    [row.(0 .. n-1)] (longer rows keep their tail) — allocation-free.
    Raises [Invalid_argument] when the workspace or the row is smaller
    than the graph. *)

val sssp_flat_into : workspace -> Wgraph.t -> int -> Float.Array.t -> int -> unit
(** [sssp_flat_into ws g s d off] writes the distances from [s] into the
    unboxed slice [d.[off .. off+n-1]] — the row-update primitive of the
    flat matrices in {!Dist_matrix} / {!Incr_apsp}. *)

val sssp_with_parents : Wgraph.t -> int -> float array * int array
(** Also returns a shortest-path-tree parent array ([-1] for the source and
    unreachable vertices). *)

val sssp_bounded : Wgraph.t -> int -> float -> float array
(** [sssp_bounded g s limit] stops settling vertices once the frontier
    exceeds [limit]; distances beyond it are reported as infinity.  Used by
    the greedy spanner where only "is d(u,v) <= t*w" matters. *)

val distance : Wgraph.t -> int -> int -> float

val apsp : ?exec:Gncg_util.Exec.t -> Wgraph.t -> float array array
(** All-pairs shortest paths by repeated Dijkstra: O(n (m + n log n)).
    Defaults to [Exec.Seq]; under [Par] the sources are split across
    OCaml 5 domains (the graph must not be mutated concurrently), with
    an identical result. *)

val path : Wgraph.t -> int -> int -> int list option
(** Vertex sequence of one shortest path from [u] to [v], inclusive. *)

val eccentricity : Wgraph.t -> int -> float

val eccentricities : ?domains:int -> Wgraph.t -> float array
(** Eccentricity of every vertex from one all-pairs sweep; the sources are
    split across domains on graphs large enough to amortize the spawn
    cost. *)

val diameter : ?domains:int -> Wgraph.t -> float
(** Infinite when the graph is disconnected, 0 for n <= 1.  Runs the
    eccentricity sweep of {!eccentricities} (multicore on large graphs)
    instead of n sequential SSSP calls. *)
