(** Weighted betweenness centrality (Brandes' algorithm).

    The proof of Lemma 8 computes a network's total distance cost by
    counting, for every edge, the number of shortest paths crossing it —
    its (unnormalized) edge betweenness.  This module provides both vertex
    and edge betweenness, plus the distance-cost identity used there. *)

val vertex : Wgraph.t -> float array
(** Unnormalized vertex betweenness: for each [v], the sum over ordered
    pairs [(s,t)], [s <> v <> t], of the fraction of shortest [s–t] paths
    through [v]. *)

val edge : Wgraph.t -> ((int * int) * float) list
(** Unnormalized edge betweenness for every edge ([u < v]): the sum over
    ordered pairs of the fraction of shortest paths using the edge. *)

val distance_cost_via_betweenness : Wgraph.t -> float
(** [Σ_{(s,t)} d(s,t)] computed as [Σ_e w(e) · betweenness(e)] — every
    ordered pair contributes its distance spread over the edges of its
    shortest paths (fractionally when there are several).  Equals the
    direct all-pairs sum; infinite when the graph is disconnected. *)
