(** Persistent polymorphic pairing heap.

    A simple mergeable min-heap used where the indexed binary heap does not
    fit (generic priorities, persistence).  All operations are O(log n)
    amortized; [merge] and [insert] are O(1). *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool

val insert : 'a t -> 'a -> 'a t

val merge : 'a t -> 'a t -> 'a t
(** Both heaps must have been created with the same comparison. *)

val find_min : 'a t -> 'a option

val delete_min : 'a t -> ('a * 'a t) option
(** Minimum together with the remaining heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list

val size : 'a t -> int
(** O(n). *)
