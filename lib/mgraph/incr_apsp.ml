type t = {
  g : Wgraph.t;
  d : float array array;
  mutable last_recomputed : int;
}

let of_graph_no_copy g = { g; d = Dijkstra.apsp g; last_recomputed = 0 }

let of_graph g = of_graph_no_copy (Wgraph.copy g)

let graph t = t.g

let n t = Wgraph.n t.g

let check t u name =
  if u < 0 || u >= n t then
    invalid_arg (Printf.sprintf "Incr_apsp.%s: vertex %d out of range" name u)

let distance t u v =
  check t u "distance";
  check t v "distance";
  t.d.(u).(v)

let row t u =
  check t u "row";
  t.d.(u)

let matrix t = t.d

let add_edge t u v w =
  check t u "add_edge";
  check t v "add_edge";
  if Wgraph.has_edge t.g u v then invalid_arg "Incr_apsp.add_edge: edge already present";
  Wgraph.add_edge t.g u v w;
  if w < t.d.(u).(v) then begin
    (* Rows u and v are read while every row (incl. themselves) is being
       written: snapshot them first. *)
    let du = Array.copy t.d.(u) and dv = Array.copy t.d.(v) in
    let size = n t in
    for x = 0 to size - 1 do
      let row = t.d.(x) in
      let dxu = du.(x) and dxv = dv.(x) in
      for y = 0 to size - 1 do
        let via_uv = dxu +. w +. dv.(y) in
        let via_vu = dxv +. w +. du.(y) in
        let best = Float.min row.(y) (Float.min via_uv via_vu) in
        row.(y) <- best
      done
    done
  end

let remove_edge t u v =
  check t u "remove_edge";
  check t v "remove_edge";
  match Wgraph.weight t.g u v with
  | None -> t.last_recomputed <- 0
  | Some w ->
    Wgraph.remove_edge t.g u v;
    (* A shortest path from s can use (u,v) only if the edge is tight on
       s's row: d(s,u) + w = d(s,v) (or symmetrically).  Tightness is
       tested with the engine tolerance, not exact equality — rows
       produced by earlier incremental insertions associate their sums
       differently than Dijkstra would, so a genuinely used edge can be
       off by ulps.  The tolerance only over-approximates the affected
       set (extra recomputes), never misses a used edge. *)
    let size = n t in
    let recomputed = ref 0 in
    for s = 0 to size - 1 do
      let dsu = t.d.(s).(u) and dsv = t.d.(s).(v) in
      if
        Gncg_util.Flt.approx_eq (dsu +. w) dsv
        || Gncg_util.Flt.approx_eq (dsv +. w) dsu
      then begin
        t.d.(s) <- Dijkstra.sssp t.g s;
        incr recomputed
      end
    done;
    t.last_recomputed <- !recomputed

let last_deletion_recomputed t = t.last_recomputed

let sssp_edited t ?remove ?add source =
  check t source "sssp_edited";
  let removed =
    match remove with
    | None -> None
    | Some (u, v) -> (
      match Wgraph.weight t.g u v with
      | None -> None
      | Some w ->
        Wgraph.remove_edge t.g u v;
        Some (u, v, w))
  in
  let added =
    match add with
    | None -> None
    | Some (u, v, w) when not (Wgraph.has_edge t.g u v) ->
      Wgraph.add_edge t.g u v w;
      Some (u, v)
    | Some _ -> None
  in
  let dist = Dijkstra.sssp t.g source in
  (match added with None -> () | Some (u, v) -> Wgraph.remove_edge t.g u v);
  (match removed with None -> () | Some (u, v, w) -> Wgraph.add_edge t.g u v w);
  dist

let copy t =
  { g = Wgraph.copy t.g; d = Array.map Array.copy t.d; last_recomputed = t.last_recomputed }

let rebuild t =
  let fresh = Dijkstra.apsp t.g in
  Array.blit fresh 0 t.d 0 (Array.length fresh)
