(* Flat row-major floatarray backing (index u*n+v), preallocated
   snapshot/scratch workspaces, and explicit change tracking: every
   update reports the set of source rows whose distances changed, so the
   layers above can invalidate per-agent state selectively. *)

module Metric = Gncg_obs.Metric

(* Layer-1 probes: one flag read + branch each when profiling is off. *)
let c_insertions = Metric.Counter.make "incr_apsp.insertions"
let c_rows_relaxed = Metric.Counter.make "incr_apsp.rows_relaxed"
let c_rows_changed = Metric.Counter.make "incr_apsp.rows_changed"
let c_deletions = Metric.Counter.make "incr_apsp.deletions"
let c_deletion_rows_recomputed = Metric.Counter.make "incr_apsp.deletion_rows_recomputed"
let c_whatif_sssp = Metric.Counter.make "incr_apsp.whatif_sssp"
let c_add_kernels = Metric.Counter.make "incr_apsp.add_kernels"
let c_selfcheck_probes = Metric.Counter.make "incr_apsp.selfcheck_probes"
let c_selfcheck_mismatches = Metric.Counter.make "incr_apsp.selfcheck_mismatches"
let c_selfcheck_repairs = Metric.Counter.make "incr_apsp.selfcheck_repairs"

type t = {
  g : Wgraph.t;
  n : int;
  d : Float.Array.t;          (* n*n distances *)
  snap_u : Float.Array.t;     (* row snapshots for the insertion update *)
  snap_v : Float.Array.t;
  scratch : float array;      (* reusable row for what-if / recompute passes *)
  ws : Dijkstra.workspace;    (* reusable Dijkstra heap *)
  mutable last_recomputed : int;
  (* Drift sentinel: every [selfcheck_every] updates (0 = off), cross-check
     the matrix and self-heal by rebuilding on a mismatch. *)
  mutable selfcheck_every : int;
  mutable selfcheck_countdown : int;
  mutable selfcheck_cursor : int;
}

(* Process-wide default cadence applied to newly created engines — the
   hook [--selfcheck N] reaches every internally constructed instance
   through (mirrors Parallel.set_default_domains). *)
let default_selfcheck = ref 0

let set_default_selfcheck n = default_selfcheck := max 0 n

let default_selfcheck_cadence () = !default_selfcheck

let of_graph_no_copy g =
  let n = Wgraph.n g in
  let t =
    {
      g;
      n;
      d = Float.Array.create (n * n);
      snap_u = Float.Array.create n;
      snap_v = Float.Array.create n;
      scratch = Array.make n Float.infinity;
      ws = Dijkstra.workspace n;
      last_recomputed = 0;
      selfcheck_every = !default_selfcheck;
      selfcheck_countdown = (if !default_selfcheck > 0 then !default_selfcheck else 0);
      selfcheck_cursor = 0;
    }
  in
  for s = 0 to n - 1 do
    Dijkstra.sssp_flat_into t.ws g s t.d (s * n)
  done;
  t

let of_graph g = of_graph_no_copy (Wgraph.copy g)

let graph t = t.g

let n t = t.n

let check t u name =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Incr_apsp.%s: vertex %d out of range" name u)

let distance t u v =
  check t u "distance";
  check t v "distance";
  Float.Array.get t.d ((u * t.n) + v)

let row t u =
  check t u "row";
  let n = t.n in
  Array.init n (fun v -> Float.Array.unsafe_get t.d ((u * n) + v))

let row_into t u dst =
  check t u "row_into";
  if Array.length dst < t.n then invalid_arg "Incr_apsp.row_into: row too short";
  let base = u * t.n in
  for v = 0 to t.n - 1 do
    Array.unsafe_set dst v (Float.Array.unsafe_get t.d (base + v))
  done

let matrix t = Array.init t.n (fun u -> row t u)

(* --- streaming row kernels (allocation-free, Kahan, inf-propagating) --- *)

let dist_sum t u =
  check t u "dist_sum";
  let base = u * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let d = Float.Array.unsafe_get t.d (base + x) in
    if d = Float.infinity then any_inf := true
    else begin
      let y = d -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let dist_sum_with_edge t u v w =
  check t u "dist_sum_with_edge";
  check t v "dist_sum_with_edge";
  Metric.Counter.incr c_add_kernels;
  (* Σ_x min(d(u,x), w + d(v,x)) — the mover's distance sum after buying
     edge (u,v): any shortest path through the new edge starts with it. *)
  let ubase = u * t.n and vbase = v * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m =
      Float.min
        (Float.Array.unsafe_get t.d (ubase + x))
        (w +. Float.Array.unsafe_get t.d (vbase + x))
    in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let min_sum_against t r v w =
  check t v "min_sum_against";
  Metric.Counter.incr c_add_kernels;
  if Array.length r < t.n then invalid_arg "Incr_apsp.min_sum_against: row too short";
  (* Σ_x min(r.(x), w + d(v,x)) — insertion relaxation of a caller-held
     row (e.g. a deletion what-if) against a live matrix row. *)
  let vbase = v * t.n in
  let s = ref 0.0 and c = ref 0.0 in
  let any_inf = ref false in
  for x = 0 to t.n - 1 do
    let m =
      Float.min (Array.unsafe_get r x) (w +. Float.Array.unsafe_get t.d (vbase + x))
    in
    if m = Float.infinity then any_inf := true
    else begin
      let y = m -. !c in
      let tt = !s +. y in
      c := tt -. !s -. y;
      s := tt
    end
  done;
  if !any_inf then Float.infinity else !s

let rebuild t =
  for s = 0 to t.n - 1 do
    Dijkstra.sssp_flat_into t.ws t.g s t.d (s * t.n)
  done

(* --- drift sentinel ---------------------------------------------------- *)

(* The incremental updates are exact in exact arithmetic, but float
   relaxation can associate sums differently from fresh Dijkstra, and a
   stray write (a bug, or injected corruption) silently poisons every
   verdict above.  The sentinel cross-checks the matrix every
   [selfcheck_every] updates with two complementary probes:

   - an O(n²) symmetry sweep ([Flt]-tolerant — rows are computed from
     opposite endpoints, so ulp-level asymmetry is legitimate): catches
     any single-cell corruption within one cadence window;
   - one fresh-Dijkstra row compare against a round-robin sampled source
     row: catches symmetric/logical drift across n windows.

   On mismatch it degrades gracefully: bump the obs counters and rebuild
   the whole matrix from the graph instead of propagating corrupt
   distances; the triggering update reports {e every} row as changed so
   the layers above invalidate their caches. *)

let set_selfcheck t n =
  let n = max 0 n in
  t.selfcheck_every <- n;
  t.selfcheck_countdown <- n

let selfcheck_cadence t = t.selfcheck_every

let selfcheck_now t =
  Metric.Counter.incr c_selfcheck_probes;
  let n = t.n in
  let clean = ref true in
  (try
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         if
           not
             (Gncg_util.Flt.approx_eq
                (Float.Array.unsafe_get t.d ((u * n) + v))
                (Float.Array.unsafe_get t.d ((v * n) + u)))
         then begin
           clean := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  if !clean && n > 0 then begin
    let s = t.selfcheck_cursor mod n in
    t.selfcheck_cursor <- (s + 1) mod n;
    Dijkstra.sssp_into t.ws t.g s t.scratch;
    let base = s * n in
    try
      for x = 0 to n - 1 do
        if
          not
            (Gncg_util.Flt.approx_eq
               (Array.unsafe_get t.scratch x)
               (Float.Array.unsafe_get t.d (base + x)))
        then begin
          clean := false;
          raise Exit
        end
      done
    with Exit -> ()
  end;
  if not !clean then begin
    Metric.Counter.incr c_selfcheck_mismatches;
    rebuild t;
    Metric.Counter.incr c_selfcheck_repairs
  end;
  !clean

(* Post-update hook: when the cadence fires and the probe repairs, widen
   the update's change report to all rows — the rebuild may have moved
   any distance. *)
let tick_selfcheck t changed =
  if t.selfcheck_every > 0 then begin
    t.selfcheck_countdown <- t.selfcheck_countdown - 1;
    if t.selfcheck_countdown <= 0 then begin
      t.selfcheck_countdown <- t.selfcheck_every;
      if not (selfcheck_now t) then
        for s = 0 to t.n - 1 do
          Changed_rows.add changed s
        done
    end
  end

let inject_cell_error t u v delta =
  check t u "inject_cell_error";
  check t v "inject_cell_error";
  let i = (u * t.n) + v in
  Float.Array.set t.d i (Float.Array.get t.d i +. delta)

(* --- updates --- *)

let add_edge t u v w =
  check t u "add_edge";
  check t v "add_edge";
  if Wgraph.has_edge t.g u v then invalid_arg "Incr_apsp.add_edge: edge already present";
  Wgraph.add_edge t.g u v w;
  Metric.Counter.incr c_insertions;
  let n = t.n in
  let changed = Changed_rows.create n in
  if w < Float.Array.get t.d ((u * n) + v) then begin
    Metric.Counter.add c_rows_relaxed n;
    (* Rows u and v are read while every row (incl. themselves) is being
       written: snapshot them into the preallocated workspaces first.  A
       row is reported as changed exactly when some entry strictly
       decreased. *)
    let du = t.snap_u and dv = t.snap_v in
    Float.Array.blit t.d (u * n) du 0 n;
    Float.Array.blit t.d (v * n) dv 0 n;
    for x = 0 to n - 1 do
      let base = x * n in
      let dxu = Float.Array.unsafe_get du x and dxv = Float.Array.unsafe_get dv x in
      let touched = ref false in
      for y = 0 to n - 1 do
        let via_uv = dxu +. w +. Float.Array.unsafe_get dv y in
        let via_vu = dxv +. w +. Float.Array.unsafe_get du y in
        let cur = Float.Array.unsafe_get t.d (base + y) in
        let best = Float.min cur (Float.min via_uv via_vu) in
        if best < cur then begin
          Float.Array.unsafe_set t.d (base + y) best;
          touched := true
        end
      done;
      if !touched then Changed_rows.add changed x
    done;
    Metric.Counter.add c_rows_changed (Changed_rows.cardinal changed)
  end;
  tick_selfcheck t changed;
  changed

let remove_edge t u v =
  check t u "remove_edge";
  check t v "remove_edge";
  let n = t.n in
  let changed = Changed_rows.create n in
  (match Wgraph.weight t.g u v with
  | None -> t.last_recomputed <- 0
  | Some w ->
    Wgraph.remove_edge t.g u v;
    Metric.Counter.incr c_deletions;
    (* A shortest path from s can use (u,v) only if the edge is tight on
       s's row: d(s,u) + w = d(s,v) (or symmetrically).  Tightness is
       tested with the engine tolerance, not exact equality — rows
       produced by earlier incremental insertions associate their sums
       differently than Dijkstra would, so a genuinely used edge can be
       off by ulps.  The tolerance only over-approximates the affected
       set (extra recomputes), never misses a used edge.  Each affected
       row is recomputed into the preallocated scratch with the reusable
       Dijkstra workspace (no fresh heap, no fresh rows) and written back
       only where it differs, so the change report is exact on the
       recomputed set. *)
    let recomputed = ref 0 in
    for s = 0 to n - 1 do
      let base = s * n in
      let dsu = Float.Array.unsafe_get t.d (base + u)
      and dsv = Float.Array.unsafe_get t.d (base + v) in
      if
        Gncg_util.Flt.approx_eq (dsu +. w) dsv
        || Gncg_util.Flt.approx_eq (dsv +. w) dsu
      then begin
        Dijkstra.sssp_into t.ws t.g s t.scratch;
        let differs = ref false in
        for x = 0 to n - 1 do
          let fresh = Array.unsafe_get t.scratch x in
          if fresh <> Float.Array.unsafe_get t.d (base + x) then begin
            Float.Array.unsafe_set t.d (base + x) fresh;
            differs := true
          end
        done;
        if !differs then Changed_rows.add changed s;
        incr recomputed
      end
    done;
    t.last_recomputed <- !recomputed;
    Metric.Counter.add c_deletion_rows_recomputed !recomputed;
    Metric.Counter.add c_rows_changed (Changed_rows.cardinal changed));
  tick_selfcheck t changed;
  changed

let last_deletion_recomputed t = t.last_recomputed

(* --- what-if evaluation --- *)

let with_edits t ?remove ?add f =
  let removed =
    match remove with
    | None -> None
    | Some (u, v) -> (
      match Wgraph.weight t.g u v with
      | None -> None
      | Some w ->
        Wgraph.remove_edge t.g u v;
        Some (u, v, w))
  in
  let added =
    match add with
    | None -> None
    | Some (u, v, w) when not (Wgraph.has_edge t.g u v) ->
      Wgraph.add_edge t.g u v w;
      Some (u, v)
    | Some _ -> None
  in
  let r = f () in
  (match added with None -> () | Some (u, v) -> Wgraph.remove_edge t.g u v);
  (match removed with None -> () | Some (u, v, w) -> Wgraph.add_edge t.g u v w);
  r

let sssp_edited_into t ?remove ?add source dst =
  check t source "sssp_edited_into";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () -> Dijkstra.sssp_into t.ws t.g source dst)

let sssp_edited t ?remove ?add source =
  check t source "sssp_edited";
  let dst = Array.make t.n Float.infinity in
  sssp_edited_into t ?remove ?add source dst;
  dst

let sssp_edited_sum t ?remove ?add source =
  check t source "sssp_edited_sum";
  Metric.Counter.incr c_whatif_sssp;
  with_edits t ?remove ?add (fun () ->
      Dijkstra.sssp_into t.ws t.g source t.scratch;
      Gncg_util.Flt.sum t.scratch)

let copy t =
  let t' =
    {
      g = Wgraph.copy t.g;
      n = t.n;
      d = Float.Array.create (t.n * t.n);
      snap_u = Float.Array.create t.n;
      snap_v = Float.Array.create t.n;
      scratch = Array.make t.n Float.infinity;
      ws = Dijkstra.workspace t.n;
      last_recomputed = t.last_recomputed;
      selfcheck_every = t.selfcheck_every;
      selfcheck_countdown = t.selfcheck_countdown;
      selfcheck_cursor = t.selfcheck_cursor;
    }
  in
  Float.Array.blit t.d 0 t'.d 0 (t.n * t.n);
  t'
