module P = Protocol
module Json = Gncg_runs.Json
module E = Gncg_util.Gncg_error
module Metric = Gncg_obs.Metric
module Span = Gncg_obs.Span

let ctx = "Serve.Server"

let c_connections = Metric.Counter.make "serve.connections"
let c_requests = Metric.Counter.make "serve.requests"
let c_protocol_errors = Metric.Counter.make "serve.protocol_errors"

let op_string = function
  | P.Ping -> "ping"
  | P.Submit _ -> "submit"
  | P.Status _ -> "status"
  | P.Watch _ -> "watch"
  | P.Cancel _ -> "cancel"
  | P.Fetch _ -> "fetch"
  | P.Shutdown -> "shutdown"

let reply id data = P.Reply { id; data }
let refused id error = P.Refused { id; error }

let watch session ~id ~job ~since ~trace emit =
  let rec loop since =
    match Session.events_after session ~job ~since with
    | Error e -> emit (refused id e)
    | Ok (events, terminal) ->
      let last =
        List.fold_left
          (fun _last (e : P.event) ->
            if trace || e.name <> "obs" then emit (P.Event { id; event = e });
            e.seq)
          since events
      in
      if terminal then begin
        let state =
          match Session.job_state session job with
          | Ok s -> P.job_state_string s
          | Error _ -> "unknown"
        in
        emit
          (P.Event
             {
               id;
               event =
                 {
                   P.seq = last;
                   name = "done";
                   data = Json.Obj [ ("state", Json.Str state) ];
                 };
             })
      end
      else loop last
  in
  loop since

let handle session ~stop { P.id; request } emit =
  Metric.Counter.incr c_requests;
  Span.with_
    ~fields:(fun () -> [ ("op", Gncg_obs.Sink.Str (op_string request)) ])
    "serve.request"
    (fun () ->
      let of_result = function
        | Ok data -> emit (reply id data)
        | Error e -> emit (refused id e)
      in
      match request with
      | P.Ping ->
        emit
          (reply id
             (Json.Obj
                [
                  ("pong", Json.Bool true);
                  ("version", Json.num_int P.version);
                  ("uptime_s", Json.Num (Session.uptime session));
                ]))
      | P.Submit job ->
        of_result
          (Result.map
             (fun { Session.job_id; attached } ->
               Json.Obj
                 [ ("job", Json.Str job_id); ("attached", Json.Bool attached) ])
             (Session.submit session job))
      | P.Status which -> of_result (Session.status_json session which)
      | P.Watch { job; since; trace } -> watch session ~id ~job ~since ~trace emit
      | P.Cancel job ->
        of_result
          (Result.map
             (fun cancelled -> Json.Obj [ ("cancelled", Json.Bool cancelled) ])
             (Session.cancel session job))
      | P.Fetch job ->
        of_result
          (Result.map
             (fun csv -> Json.Obj [ ("csv", Json.Str csv) ])
             (Session.fetch_csv session job))
      | P.Shutdown ->
        (* Drain first so the reply doubles as "all queued work is
           durable": once the client reads it, killing the process
           loses nothing. *)
        Session.drain session;
        emit (reply id (Json.Obj [ ("stopping", Json.Bool true) ]));
        stop ())

let handle_line session ~stop line emit =
  match P.request_of_line line with
  | Ok envelope -> handle session ~stop envelope emit
  | Error e ->
    Metric.Counter.incr c_protocol_errors;
    emit (refused "" e)

(* --- stdio transport --------------------------------------------------- *)

let emit_to oc response =
  output_string oc (Json.to_string (P.response_to_json response));
  output_char oc '\n';
  flush oc

let serve_stdio session ic oc =
  let stopped = ref false in
  let stop () = stopped := true in
  (try
     while not !stopped do
       match input_line ic with
       | line -> if String.trim line <> "" then handle_line session ~stop line (emit_to oc)
       | exception End_of_file -> stopped := true
     done
   with Sys_error _ -> ());
  Session.drain session

(* --- unix-domain socket transport -------------------------------------- *)

let connection session ~stop_flag fd =
  Metric.Counter.incr c_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let stop () = Atomic.set stop_flag true in
  let stopped = ref false in
  (try
     while (not !stopped) && not (Atomic.get stop_flag) do
       match input_line ic with
       | line ->
         if String.trim line <> "" then handle_line session ~stop line (emit_to oc)
       | exception End_of_file -> stopped := true
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_unix ?(backlog = 16) session ~path =
  (* A write to a client that vanished mid-watch must surface as an
     EPIPE error on that connection's thread, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop_flag = Atomic.make false in
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise
       (E.Error
          (E.v ~context:ctx ~where:(E.File path) Io
             (Printf.sprintf "cannot listen: %s" (Printexc.to_string e)))));
  let threads = ref [] in
  let threads_mutex = Mutex.create () in
  while not (Atomic.get stop_flag) do
    (* Poll so a shutdown requested on an existing connection (or a
       SIGTERM) is noticed without waiting for one more client. *)
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept listen_fd with
      | fd, _ ->
        let t = Thread.create (fun () -> connection session ~stop_flag fd) () in
        Mutex.lock threads_mutex;
        threads := t :: !threads;
        Mutex.unlock threads_mutex
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Mutex.lock threads_mutex;
  let ts = !threads in
  Mutex.unlock threads_mutex;
  List.iter Thread.join ts;
  Session.drain session;
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
