module P = Protocol
module W = Protocol.Worker_wire
module Json = Gncg_runs.Json
module Job = Gncg_runs.Job
module Scheduler = Gncg_runs.Scheduler
module Metric = Gncg_obs.Metric

(* serve.pool.* probes: supervision pressure.  [spawns] counts every
   process launch (initial fleet included); [restarts] only the
   re-launches; [requeues] in-flight jobs re-dispatched after their
   worker died; [heartbeats_missed] liveness-deadline violations;
   [breaker_trips] restart storms; [degraded_jobs] work the pool handed
   back for in-process execution; [garbage_lines] unparseable worker
   output dropped during resync. *)
let c_spawns = Metric.Counter.make "serve.pool.spawns"
let c_heartbeats_missed = Metric.Counter.make "serve.pool.heartbeats_missed"
let c_restarts = Metric.Counter.make "serve.pool.restarts"
let c_requeues = Metric.Counter.make "serve.pool.requeues"
let c_breaker_trips = Metric.Counter.make "serve.pool.breaker_trips"
let c_degraded = Metric.Counter.make "serve.pool.degraded_jobs"
let c_garbage = Metric.Counter.make "serve.pool.garbage_lines"
let h_dispatch_ns = Metric.Histogram.make "serve.pool.dispatch_ns"

type config = {
  workers : int;
  liveness_deadline : float;
  max_requeues : int;
  backoff_base : float;
  backoff_max : float;
  breaker_window : float;
  breaker_threshold : int;
  monitor_tick : float;
}

let default_config =
  {
    workers = 1;
    liveness_deadline = 3.0;
    max_requeues = 2;
    backoff_base = 0.05;
    backoff_max = 2.0;
    breaker_window = 10.0;
    breaker_threshold = 5;
    monitor_tick = 0.02;
  }

type proc = { pid : int; to_worker : out_channel; from_worker : in_channel }

type spawn = unit -> proc

(* Why a worker died, decided before the SIGKILL: a budget kill is the
   job's fault (immediate respawn, no breaker pressure); everything else
   is the worker's (backoff + breaker accounting). *)
type kill_reason = Spontaneous | Budget_kill | Liveness_kill

type resolution =
  | Delivered of W.outcome
  | Timed_out
  | Died of string

type inflight = {
  rid : int;
  deadline : float option;
  mutable resolution : resolution option;
}

type wrec = {
  wid : int;
  mutable proc : proc option;
  mutable up : bool;
  mutable last_beat : float;
  mutable inflight : inflight option;
  mutable restarts : int;
  mutable jobs_done : int;
  mutable consecutive_faults : int;
  mutable kill_reason : kill_reason;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  config : config;
  spawn : spawn;
  fleet : wrec array;
  attempts : (string, int) Hashtbl.t;
      (* per-content-key dispatch count, carried on the wire so the
         worker-side chaos oracle sees attempts across restarts *)
  mutable fault_times : float list;
  mutable breaker_open : bool;
  mutable stopping : bool;
  mutable next_rid : int;
  mutable threads : Thread.t list;
}

let now () = Unix.gettimeofday ()

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* --- spawning ------------------------------------------------------------ *)

(* Spawns are serialized process-wide: two lifecycle threads forking
   concurrently would each inherit the other's freshly-made pipe ends,
   and a leaked write end keeps a dead worker's pipe from ever reaching
   EOF — the supervisor would never observe the death.  Holding this
   mutex from pipe creation to the parent-side closes guarantees no
   child inherits another spawn's in-flight descriptors. *)
let spawn_mutex = Mutex.create ()

let serialized f =
  Mutex.lock spawn_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock spawn_mutex) f

let proc_of_pipes ~pid ~to_w ~from_r =
  {
    pid;
    to_worker = Unix.out_channel_of_descr to_w;
    from_worker = Unix.in_channel_of_descr from_r;
  }

let spawn_exec argv () =
  serialized (fun () ->
      let to_r, to_w = Unix.pipe () in
      let from_r, from_w = Unix.pipe () in
      Unix.set_close_on_exec to_w;
      Unix.set_close_on_exec from_r;
      let pid = Unix.create_process argv.(0) argv to_r from_w Unix.stderr in
      Unix.close to_r;
      Unix.close from_w;
      proc_of_pipes ~pid ~to_w ~from_r)

let spawn_forked ?heartbeat ?query_exec ?chaos ?exec () () =
  serialized (fun () ->
      let to_r, to_w = Unix.pipe () in
      let from_r, from_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* Child: only the forking thread survives; the worker loop
           builds the threads it needs.  [_exit], not [exit] — the
           parent's at_exit handlers and buffered channels are not ours
           to run or flush. *)
        (try
           Unix.close to_w;
           Unix.close from_r;
           let ic = Unix.in_channel_of_descr to_r in
           let oc = Unix.out_channel_of_descr from_w in
           Worker.main ?heartbeat ?query_exec ?chaos ?exec ic oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close to_r;
        Unix.close from_w;
        proc_of_pipes ~pid ~to_w ~from_r)

(* --- the per-worker lifecycle thread ------------------------------------- *)

(* Owns one fleet slot end to end: spawn, read until EOF, reap, decide
   fault vs deliberate kill, back off, respawn — or stop on shutdown,
   breaker trip, or a storm it trips itself. *)

let read_loop t w proc =
  let rec go () =
    match input_line proc.from_worker with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
      (match W.msg_of_line line with
      | Error _ ->
        (* Resync: a worker that wrote garbage on the protocol channel
           is still supervised — drop the line, count it, keep reading. *)
        Metric.Counter.incr c_garbage
      | Ok W.Heartbeat | Ok (W.Hello _) ->
        Mutex.lock t.mutex;
        w.last_beat <- now ();
        Mutex.unlock t.mutex
      | Ok (W.Result { rid; outcome }) ->
        Mutex.lock t.mutex;
        (match w.inflight with
        | Some infl when infl.rid = rid && infl.resolution = None ->
          infl.resolution <- Some (Delivered outcome);
          w.jobs_done <- w.jobs_done + 1;
          w.consecutive_faults <- 0;
          Condition.broadcast t.cond
        | _ -> ());
        Mutex.unlock t.mutex);
      go ()
  in
  go ()

let reap proc =
  match Unix.waitpid [] proc.pid with
  | _, status -> status_string status
  | exception Unix.Unix_error _ -> "already reaped"

let close_proc proc =
  (try close_out proc.to_worker with _ -> ());
  (try close_in proc.from_worker with _ -> ())

let trip_breaker_locked t =
  t.breaker_open <- true;
  Metric.Counter.incr c_breaker_trips;
  (* Stop the rest of the fleet: their lifecycle threads observe the
     open breaker on death and stay down; their in-flight jobs resolve
     as [Died] and degrade instead of requeueing. *)
  Array.iter
    (fun w' ->
      if w'.up then
        match w'.proc with
        | Some p -> ( try Unix.kill p.pid Sys.sigkill with _ -> ())
        | None -> ())
    t.fleet;
  Condition.broadcast t.cond

let rec lifecycle t w =
  match t.spawn () with
  | exception e -> fault t w (Printf.sprintf "spawn failed: %s" (Printexc.to_string e))
  | proc ->
    Mutex.lock t.mutex;
    if t.stopping || t.breaker_open then begin
      Mutex.unlock t.mutex;
      (try Unix.kill proc.pid Sys.sigkill with _ -> ());
      ignore (reap proc);
      close_proc proc
    end
    else begin
      w.proc <- Some proc;
      w.up <- true;
      w.last_beat <- now ();
      w.kill_reason <- Spontaneous;
      Metric.Counter.incr c_spawns;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      read_loop t w proc;
      (* The pipe is done: the worker exited, crashed, or we killed it. *)
      let status = reap proc in
      Mutex.lock t.mutex;
      w.up <- false;
      w.proc <- None;
      let reason = w.kill_reason in
      w.kill_reason <- Spontaneous;
      (match w.inflight with
      | Some infl when infl.resolution = None ->
        infl.resolution <-
          Some (Died (Printf.sprintf "worker %d died mid-job (%s)" proc.pid status));
        Condition.broadcast t.cond
      | _ -> ());
      let stop = t.stopping || t.breaker_open in
      Mutex.unlock t.mutex;
      close_proc proc;
      if not stop then begin
        Metric.Counter.incr c_restarts;
        w.restarts <- w.restarts + 1;
        match reason with
        | Budget_kill ->
          (* The job blew its budget, not the worker: respawn at once. *)
          lifecycle t w
        | Liveness_kill | Spontaneous ->
          fault t w (Printf.sprintf "worker %d %s" proc.pid status)
      end
    end

and fault t w _detail =
  Mutex.lock t.mutex;
  w.consecutive_faults <- w.consecutive_faults + 1;
  let tnow = now () in
  t.fault_times <-
    tnow :: List.filter (fun ft -> tnow -. ft <= t.config.breaker_window) t.fault_times;
  let storm = List.length t.fault_times >= t.config.breaker_threshold in
  if storm && not t.breaker_open then trip_breaker_locked t;
  let stop = t.stopping || t.breaker_open in
  Mutex.unlock t.mutex;
  if not stop then begin
    let backoff =
      Float.min t.config.backoff_max
        (t.config.backoff_base *. Float.ldexp 1.0 (w.consecutive_faults - 1))
    in
    Thread.delay backoff;
    let stop =
      Mutex.lock t.mutex;
      let s = t.stopping || t.breaker_open in
      Mutex.unlock t.mutex;
      s
    in
    if not stop then lifecycle t w
  end

(* --- the monitor thread -------------------------------------------------- *)

(* One ticker enforces both deadlines: per-job wall-clock budgets
   (SIGKILL, resolved [Timed_out] so the dispatcher raises
   {!Scheduler.Over_budget}) and per-worker liveness (no heartbeat for
   [liveness_deadline] seconds: SIGKILL, left unresolved so the death
   path requeues the in-flight job). *)
let monitor t =
  let stop () =
    Mutex.lock t.mutex;
    let s = t.stopping in
    Mutex.unlock t.mutex;
    s
  in
  while not (stop ()) do
    Thread.delay t.config.monitor_tick;
    Mutex.lock t.mutex;
    let tnow = now () in
    Array.iter
      (fun w ->
        if w.up then
          match w.proc with
          | None -> ()
          | Some proc ->
            let budget_blown =
              match w.inflight with
              | Some { resolution = None; deadline = Some d; _ } -> tnow > d
              | _ -> false
            in
            if budget_blown then begin
              (match w.inflight with
              | Some infl -> infl.resolution <- Some Timed_out
              | None -> ());
              w.kill_reason <- Budget_kill;
              w.up <- false;
              (try Unix.kill proc.pid Sys.sigkill with _ -> ());
              Condition.broadcast t.cond
            end
            else if tnow -. w.last_beat > t.config.liveness_deadline then begin
              Metric.Counter.incr c_heartbeats_missed;
              w.kill_reason <- Liveness_kill;
              w.up <- false;
              (* Leave the in-flight job unresolved: the death path marks
                 it [Died] and the dispatcher requeues it. *)
              (try Unix.kill proc.pid Sys.sigkill with _ -> ())
            end)
      t.fleet;
    Mutex.unlock t.mutex
  done

(* --- construction -------------------------------------------------------- *)

let create ?(config = default_config) ~spawn () =
  if config.workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  (* Worker pipes break when workers die; that is data, not a signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      config;
      spawn;
      fleet =
        Array.init config.workers (fun wid ->
            {
              wid;
              proc = None;
              up = false;
              last_beat = 0.0;
              inflight = None;
              restarts = 0;
              jobs_done = 0;
              consecutive_faults = 0;
              kill_reason = Spontaneous;
            });
      attempts = Hashtbl.create 64;
      fault_times = [];
      breaker_open = false;
      stopping = false;
      next_rid = 1;
      threads = [];
    }
  in
  let lifecycles =
    Array.to_list (Array.map (fun w -> Thread.create (fun () -> lifecycle t w) ()) t.fleet)
  in
  t.threads <- Thread.create monitor t :: lifecycles;
  t

(* --- dispatch ------------------------------------------------------------ *)

let send_run proc ~rid ~attempt payload =
  output_string proc.to_worker
    (Json.to_string (W.req_to_json (W.Run { rid; attempt; payload })));
  output_char proc.to_worker '\n';
  flush proc.to_worker

let rec dispatch_from t ?budget payload ~requeues ~t_enter =
  Mutex.lock t.mutex;
  let rec pick () =
    if t.breaker_open || t.stopping then None
    else
      match Array.find_opt (fun w -> w.up && w.inflight = None) t.fleet with
      | Some w -> Some w
      | None ->
        Condition.wait t.cond t.mutex;
        pick ()
  in
  match pick () with
  | None ->
    Mutex.unlock t.mutex;
    None
  | Some w ->
    let rid = t.next_rid in
    t.next_rid <- t.next_rid + 1;
    let key = W.payload_key payload in
    let attempt = 1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts key) in
    Hashtbl.replace t.attempts key attempt;
    let infl =
      { rid; deadline = Option.map (fun b -> now () +. b) budget; resolution = None }
    in
    w.inflight <- Some infl;
    let proc = w.proc in
    Mutex.unlock t.mutex;
    Metric.Histogram.observe h_dispatch_ns ((now () -. t_enter) *. 1e9);
    (match proc with
    | Some proc -> (
      try send_run proc ~rid ~attempt payload
      with _ ->
        (* Died between pick and write: resolve it ourselves — the
           lifecycle thread may already have cleared [w.proc]. *)
        Mutex.lock t.mutex;
        if infl.resolution = None then
          infl.resolution <- Some (Died "write to worker failed");
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex)
    | None ->
      Mutex.lock t.mutex;
      if infl.resolution = None then
        infl.resolution <- Some (Died "worker gone before dispatch");
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex);
    Mutex.lock t.mutex;
    while infl.resolution = None do
      Condition.wait t.cond t.mutex
    done;
    let res = Option.get infl.resolution in
    (match w.inflight with
    | Some i when i == infl ->
      w.inflight <- None;
      Condition.broadcast t.cond
    | _ -> ());
    let degraded = t.breaker_open || t.stopping in
    Mutex.unlock t.mutex;
    (match res with
    | Delivered (W.Run_result r) -> Some (`Run r)
    | Delivered (W.Query_result d) -> Some (`Data d)
    | Delivered (W.Job_error { msg; backtrace }) ->
      (* The job crashed inside the worker; re-raise with the
         worker-side record so retries and journals keep its frames. *)
      raise (Scheduler.Crash_report { msg; backtrace })
    | Timed_out -> raise Scheduler.Over_budget
    | Died msg ->
      if degraded then None
      else if requeues < t.config.max_requeues then begin
        Metric.Counter.incr c_requeues;
        dispatch_from t ?budget payload ~requeues:(requeues + 1) ~t_enter
      end
      else raise (Scheduler.Crash_report { msg; backtrace = "" }))

let dispatch t ?budget payload =
  let r = dispatch_from t ?budget payload ~requeues:0 ~t_enter:(now ()) in
  if r = None then Metric.Counter.incr c_degraded;
  r

(* --- introspection and shutdown ------------------------------------------ *)

let breaker_open t =
  Mutex.lock t.mutex;
  let b = t.breaker_open in
  Mutex.unlock t.mutex;
  b

let size t = Array.length t.fleet

let restarts t =
  Mutex.lock t.mutex;
  let r = Array.fold_left (fun acc w -> acc + w.restarts) 0 t.fleet in
  Mutex.unlock t.mutex;
  r

let status_json t =
  Mutex.lock t.mutex;
  let tnow = now () in
  let workers =
    Array.to_list
      (Array.map
         (fun w ->
           Json.Obj
             [
               ("worker", Json.num_int w.wid);
               ( "pid",
                 match w.proc with
                 | Some p when w.up -> Json.num_int p.pid
                 | _ -> Json.Null );
               ("alive", Json.Bool w.up);
               ("busy", Json.Bool (w.inflight <> None));
               ( "last_heartbeat_s",
                 if w.up then Json.Num (tnow -. w.last_beat) else Json.Null );
               ("restarts", Json.num_int w.restarts);
               ("jobs_done", Json.num_int w.jobs_done);
             ])
         t.fleet)
  in
  let doc =
    Json.Obj
      [
        ("workers", Json.List workers);
        ("restarts", Json.num_int (Array.fold_left (fun a w -> a + w.restarts) 0 t.fleet));
        ("breaker_open", Json.Bool t.breaker_open);
      ]
  in
  Mutex.unlock t.mutex;
  doc

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.cond;
    let procs =
      Array.to_list
        (Array.map (fun w -> if w.up then w.proc else None) t.fleet)
      |> List.filter_map Fun.id
    in
    Mutex.unlock t.mutex;
    (* Workers are stateless executors — nothing to lose: kill rather
       than wait out a wedged one.  Lifecycle threads observe EOF and
       exit because [stopping] is set. *)
    List.iter (fun p -> try Unix.kill p.pid Sys.sigkill with _ -> ()) procs;
    List.iter Thread.join t.threads;
    t.threads <- []
  end
