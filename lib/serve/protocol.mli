(** The serve wire protocol: versioned, line-delimited JSON.

    Every message — request, reply, streamed event — is one JSON object
    on one line, rendered and parsed through {!Gncg_runs.Json} (the
    journal codec; the repository deliberately has no JSON dependency).
    Every message carries [{"v": 1}]; a server rejects versions it does
    not speak with a typed [Parse] error instead of guessing.

    Shapes (see docs/SERVE.md for the full spec and examples):

    {v
    request   {"v":1,"id":"c1","op":"submit","job":{...}}
    reply     {"v":1,"id":"c1","ok":true,"data":{...}}
    refusal   {"v":1,"id":"c1","ok":false,"error":{"kind":...,...}}
    event     {"v":1,"id":"c1","event":"job-result","seq":4,"data":{...}}
    v}

    Requests are matched to replies by the client-chosen [id] (opaque to
    the server, echoed verbatim).  A [watch] request produces a stream
    of [event] lines terminated by an event named ["done"]; every other
    request produces exactly one reply or refusal.  Refusals carry a
    {!Gncg_util.Gncg_error.t} in its wire encoding. *)

module Json = Gncg_runs.Json

val version : int
(** 1 — bumped only on incompatible changes. *)

(** {1 Jobs} *)

type job =
  | Sweep of {
      config : Gncg_runs.Batch.config;
      budget : float option;  (** per-job wall-clock budget, seconds *)
      retries : int option;  (** extra attempts for crashed jobs *)
    }
      (** A full journaled batch through {!Gncg_runs.Batch}: durable,
          resumable, streamed result-by-result to watchers. *)
  | Eq_check of {
      model : Gncg_workload.Instances.model;
      n : int;
      alpha : float;
      seed : int;
      check : Gncg.Equilibrium.kind;
      stabilize : bool;
          (** run greedy dynamics to a stable state first and check
              that; otherwise check the seeded random profile as is *)
    }
  | Best_response of {
      model : Gncg_workload.Instances.model;
      n : int;
      alpha : float;
      seed : int;
      agent : int;
    }  (** Exact and local best-response costs for one agent. *)

val job_kind_string : job -> string
(** ["sweep"] | ["eq-check"] | ["best-response"]. *)

val job_canonical : job -> string
(** Deterministic one-line encoding — equal jobs, and only equal jobs
    (up to float identity), encode identically. *)

val job_key : job -> string
(** 64-bit FNV-1a of {!job_canonical} as 16 hex digits: the content
    hash the session manager dedups submissions and names sweep
    journals by. *)

val job_to_json : job -> Json.t
val job_of_json : Json.t -> (job, Gncg_util.Gncg_error.t) result

val check_to_string : Gncg.Equilibrium.kind -> string
(** ["ne"] | ["ge"] | ["ae"]. *)

val check_of_string : string -> (Gncg.Equilibrium.kind, Gncg_util.Gncg_error.t) result

val content_hash : string -> string
(** The 64-bit FNV-1a hex digest {!job_key} is built from, exposed for
    other content-addressed keys (the session's host cache). *)

(** {1 Requests} *)

type request =
  | Ping
  | Submit of job
  | Status of string option  (** all jobs, or one job id *)
  | Watch of { job : string; since : int; trace : bool }
      (** stream events with [seq > since]; [trace] includes the
          ["obs"] events relayed from the observability sink *)
  | Cancel of string
  | Fetch of string  (** the completed sweep's runs as CSV *)
  | Shutdown  (** graceful drain: finish queued work, then stop *)

type envelope = { id : string; request : request }

val request_to_json : envelope -> Json.t
val request_of_json : Json.t -> (envelope, Gncg_util.Gncg_error.t) result

val request_of_line : string -> (envelope, Gncg_util.Gncg_error.t) result
(** [parse] + {!request_of_json}. *)

(** {1 Responses} *)

type event = { seq : int; name : string; data : Json.t }
(** [seq] is 1-based and strictly increasing per job; replaying a watch
    with [since] set to the last seen [seq] never duplicates events. *)

type response =
  | Reply of { id : string; data : Json.t }
  | Refused of { id : string; error : Gncg_util.Gncg_error.t }
  | Event of { id : string; event : event }

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, Gncg_util.Gncg_error.t) result
val response_of_line : string -> (response, Gncg_util.Gncg_error.t) result

(** {1 The worker sub-protocol}

    Spoken between the {!Pool} supervisor and its worker processes over
    the workers' stdin/stdout: the same versioned line-JSON codec, in
    its own op namespace ([wop]).  Requests flow supervisor → worker;
    messages flow worker → supervisor.

    {v
    request   {"v":1,"wop":"run","rid":7,"attempt":1,"payload":"spec","spec":{...}}
    hello     {"v":1,"wop":"hello","pid":12345}
    heartbeat {"v":1,"wop":"heartbeat"}
    result    {"v":1,"wop":"result","rid":7,"status":"run","run":{...}}
    v} *)

module Worker_wire : sig
  type payload =
    | Spec of Gncg_runs.Job.spec
        (** one sweep point; the supervisor journals the classified
            result itself, so durability never depends on a worker *)
    | Query of job
        (** a whole query job ([Eq_check] / [Best_response]); the worker
            answers with the event payload the session would publish *)

  type req =
    | Run of { rid : int; attempt : int; payload : payload }
        (** [rid] matches results to dispatches; [attempt] is the
            supervisor-tracked per-key dispatch count, which the chaos
            fault oracle keys on so faults survive worker restarts *)
    | Quit

  type outcome =
    | Run_result of Gncg_workload.Sweep.run
    | Query_result of Json.t
    | Job_error of { msg : string; backtrace : string }
        (** the job raised inside the worker; message and frames are
            shipped back so the supervisor re-raises with the worker-side
            record ({!Gncg_runs.Scheduler.Crash_report}) *)

  type msg =
    | Hello of { pid : int }
    | Heartbeat
    | Result of { rid : int; outcome : outcome }

  val payload_key : payload -> string
  (** The content key faults and dedup are tracked by:
      {!Gncg_runs.Job.hash} for specs, {!job_key} for queries. *)

  val req_to_json : req -> Json.t
  val req_of_json : Json.t -> (req, Gncg_util.Gncg_error.t) result
  val req_of_line : string -> (req, Gncg_util.Gncg_error.t) result
  val msg_to_json : msg -> Json.t
  val msg_of_json : Json.t -> (msg, Gncg_util.Gncg_error.t) result
  val msg_of_line : string -> (msg, Gncg_util.Gncg_error.t) result
end

(** {1 Job states} *)

type job_state =
  | Queued
  | Running
  | Done
  | Failed of string  (** rendered {!Gncg_util.Gncg_error.t} *)
  | Cancelled

val job_state_string : job_state -> string
(** ["queued" | "running" | "done" | "failed" | "cancelled"]. *)

val terminal : job_state -> bool
(** [Done], [Failed _] and [Cancelled] are terminal: their event
    streams are closed and a watch on them drains and finishes. *)
