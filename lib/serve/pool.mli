(** A supervised pool of worker processes for [gncg serve].

    The pool launches [config.workers] child processes (via a {!spawn}
    function — {!spawn_exec} re-executes the CLI as [gncg worker],
    {!spawn_forked} forks in place) and dispatches jobs to them over
    {!Protocol.Worker_wire}.
    The supervisor owns, per worker:

    - {b heartbeats}: workers beat every 250 ms; a worker silent for
      [liveness_deadline] seconds is SIGKILLed and its in-flight job
      requeued ([serve.pool.heartbeats_missed]);
    - {b budgets}: a dispatch with a wall-clock budget that overruns is
      SIGKILLed and classified by raising
      {!Gncg_runs.Scheduler.Over_budget} — the scheduler maps it to
      [Timeout], exactly as for an in-process overrun;
    - {b crash detection}: pipe EOF + [waitpid] — an in-flight job on a
      dead worker is requeued up to [max_requeues] times
      ([serve.pool.requeues]), then surfaces as
      {!Gncg_runs.Scheduler.Crash_report};
    - {b respawn with backoff}: fault deaths respawn after
      [backoff_base * 2^k] seconds (capped at [backoff_max]); budget
      kills respawn immediately (the job's fault, not the worker's);
    - {b a circuit breaker}: [breaker_threshold] fault deaths within
      [breaker_window] seconds trip the breaker
      ([serve.pool.breaker_trips]) — the fleet is stopped and every
      subsequent {!dispatch} returns [None] so callers degrade to the
      in-process executor ([serve.pool.degraded_jobs]).

    Durability never depends on a worker: sweeps are dispatched spec by
    spec and the journal stays in the daemon, so a [kill -9] mid-sweep
    re-executes exactly the missing specs and the CSV is byte-identical
    to an undisturbed run. *)

type config = {
  workers : int;  (** fleet size, >= 1 *)
  liveness_deadline : float;  (** seconds of heartbeat silence before SIGKILL *)
  max_requeues : int;  (** re-dispatches of a job whose worker died *)
  backoff_base : float;  (** first respawn delay after a fault, seconds *)
  backoff_max : float;  (** respawn delay cap, seconds *)
  breaker_window : float;  (** sliding window for the restart storm, seconds *)
  breaker_threshold : int;  (** fault deaths within the window that trip it *)
  monitor_tick : float;  (** deadline-enforcement poll interval, seconds *)
}

val default_config : config
(** 1 worker, 3 s liveness deadline, 2 requeues, 50 ms–2 s backoff,
    5 faults / 10 s breaker, 20 ms monitor tick. *)

type proc = { pid : int; to_worker : out_channel; from_worker : in_channel }

type spawn = unit -> proc
(** Launches one worker process; called from supervisor threads on every
    (re)spawn, so it must be thread-safe.  May raise — a failed spawn is
    treated as a worker fault (backoff, breaker accounting). *)

val spawn_exec : string array -> spawn
(** [spawn_exec argv] launches [argv] via [Unix.create_process] with
    stdin/stdout piped to the supervisor and stderr inherited.  The
    production spawn: [spawn_exec [| Sys.executable_name; "worker" |]]. *)

val spawn_forked :
  ?heartbeat:float ->
  ?query_exec:Gncg_util.Exec.t ->
  ?chaos:Gncg_runs.Chaos.process_plan ->
  ?exec:(Gncg_runs.Job.spec -> Gncg_workload.Sweep.run) ->
  unit ->
  spawn
(** Forks the current process; the child runs {!Worker.main} over a pipe
    pair and [_exit]s.  Lets embedders run multi-process supervision
    with injected {!Gncg_runs.Chaos} process faults and execution seams,
    no separate binary needed — but note the OCaml 5 restriction:
    [Unix.fork] raises while other domains are running, and respawns
    happen mid-sweep with the scheduler's domains live, so under this
    spawner a worker death during a parallel sweep cannot be healed (the
    failed respawns count as faults, trip the breaker, and the pool
    degrades to in-process execution).  Anything that needs respawn under
    load — chaos tests included — should {!spawn_exec} a real binary
    ([gncg worker --chaos-*]) instead. *)

type t

val create : ?config:config -> spawn:spawn -> unit -> t
(** Starts the fleet ([config.workers] lifecycle threads plus one
    deadline monitor) and returns immediately; workers come up
    asynchronously and dispatches block until one is ready.  Ignores
    SIGPIPE process-wide (worker pipes break by design).
    @raise Invalid_argument if [config.workers < 1]. *)

val dispatch :
  t ->
  ?budget:float ->
  Protocol.Worker_wire.payload ->
  [ `Run of Gncg_workload.Sweep.run | `Data of Protocol.Json.t ] option
(** Blocks until a worker is free, ships the payload, and waits for the
    result.  [`Run] answers a [Spec] dispatch, [`Data] a [Query].
    Returns [None] when the pool cannot serve (breaker open or shutting
    down) — the caller must degrade to in-process execution.  Safe to
    call from many threads; each blocked dispatcher claims its own
    worker.

    @raise Gncg_runs.Scheduler.Over_budget when the job overran [budget]
    and the worker was killed for it.
    @raise Gncg_runs.Scheduler.Crash_report when the job crashed inside
    the worker (worker-side message and frames) or the worker died
    mid-job more than [max_requeues] times. *)

val breaker_open : t -> bool

val size : t -> int
(** Configured fleet size. *)

val restarts : t -> int
(** Total worker restarts since {!create}. *)

val status_json : t -> Protocol.Json.t
(** Per-worker liveness for [gncg client status]:
    [{"workers":[{"worker":0,"pid":…,"alive":…,"busy":…,
    "last_heartbeat_s":…,"restarts":…,"jobs_done":…}…],
    "restarts":…,"breaker_open":…}]. *)

val shutdown : t -> unit
(** SIGKILLs the fleet (workers are stateless; there is nothing to
    drain) and joins every supervisor thread.  Idempotent. *)
