module P = Protocol
module W = Protocol.Worker_wire
module Json = Gncg_runs.Json
module Job = Gncg_runs.Job
module Chaos = Gncg_runs.Chaos
module Metric = Gncg_obs.Metric

let c_cache_hits = Metric.Counter.make "serve.host_cache_hits"
let c_cache_misses = Metric.Counter.make "serve.host_cache_misses"

(* --- the host cache ----------------------------------------------------- *)

(* Host-metric construction is the expensive part of a query (O(n²)
   closure for graph models, O(n² d) for point sets); each process —
   the daemon for in-process execution, every pool worker for
   dispatched queries — pays it once per instance.  The cached profile
   is the seeded random start, so cached and uncached queries answer
   identically. *)
module Cache = struct
  type t = {
    mutex : Mutex.t;
    hosts : (string, Gncg.Host.t * Gncg.Strategy.t) Hashtbl.t;
  }

  let create () = { mutex = Mutex.create (); hosts = Hashtbl.create 64 }

  let size t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.hosts in
    Mutex.unlock t.mutex;
    n

  let instance_key ~model ~n ~alpha ~seed =
    P.content_hash
      (Printf.sprintf "%s;%d;%.17g;%d" (Job.model_to_string model) n alpha seed)

  let host_and_profile t ~model ~n ~alpha ~seed =
    let key = instance_key ~model ~n ~alpha ~seed in
    Mutex.lock t.mutex;
    let cached = Hashtbl.find_opt t.hosts key in
    Mutex.unlock t.mutex;
    match cached with
    | Some pair ->
      Metric.Counter.incr c_cache_hits;
      pair
    | None ->
      Metric.Counter.incr c_cache_misses;
      let rng = Gncg_util.Prng.create seed in
      let host = Gncg_workload.Instances.random_host rng model ~n ~alpha in
      let profile = Gncg_workload.Instances.random_profile rng host in
      Mutex.lock t.mutex;
      Hashtbl.replace t.hosts key (host, profile);
      Mutex.unlock t.mutex;
      (host, profile)
end

(* --- query evaluation ---------------------------------------------------- *)

let outcome_fields = function
  | Gncg.Dynamics.Converged { profile; rounds; _ } ->
    (profile, [ ("converged", Json.Bool true); ("rounds", Json.num_int rounds) ])
  | Gncg.Dynamics.Out_of_steps { profile; _ } ->
    (profile, [ ("converged", Json.Bool false) ])
  | Gncg.Dynamics.Cycle { profiles; _ } ->
    (List.hd profiles, [ ("converged", Json.Bool false); ("cycle", Json.Bool true) ])

let eval_query ?(exec = Gncg_util.Exec.Seq) cache job =
  match job with
  | P.Eq_check { model; n; alpha; seed; check; stabilize } ->
    let host, profile = Cache.host_and_profile cache ~model ~n ~alpha ~seed in
    let profile, dyn_fields =
      if stabilize then
        outcome_fields
          (Gncg.Dynamics.run
             (Gncg.Dynamics.Config.make ~max_steps:5000 ~evaluator:`Incremental
                Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
             host profile)
      else (profile, [])
    in
    let holds = Gncg.Equilibrium.is_equilibrium ~exec check host profile in
    ( "verdict",
      Json.Obj
        ([
           ("check", Json.Str (P.check_to_string check));
           ("holds", Json.Bool holds);
           ("n", Json.num_int n);
           ("alpha", Json.Num alpha);
           ("seed", Json.num_int seed);
           ("stabilized", Json.Bool stabilize);
           ("social_cost", Json.Num (Gncg.Cost.social_cost host profile));
         ]
        @ dyn_fields) )
  | P.Best_response { model; n; alpha; seed; agent } ->
    let host, profile = Cache.host_and_profile cache ~model ~n ~alpha ~seed in
    let current = Gncg.Cost.agent_cost host profile agent in
    let _, exact = Gncg.Best_response.exact host profile agent in
    let _, local = Gncg.Best_response.local host profile agent in
    ( "best-response",
      Json.Obj
        [
          ("agent", Json.num_int agent);
          ("current", Json.Num current);
          ("exact", Json.Num exact);
          ("local", Json.Num local);
          ("improvable", Json.Bool (exact < current -. 1e-9));
        ] )
  | P.Sweep _ ->
    invalid_arg "Worker.eval_query: sweep jobs are dispatched spec by spec"

(* --- the worker loop ----------------------------------------------------- *)

let main ?(heartbeat = 0.25) ?query_exec ?chaos ?(exec = Job.execute) ic oc =
  Printexc.record_backtrace true;
  (* A supervisor that died mid-read must not take the worker down with
     SIGPIPE; the write error surfaces as an exception instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let omutex = Mutex.create () in
  let send msg =
    Mutex.lock omutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock omutex)
      (fun () ->
        output_string oc (Json.to_string (W.msg_to_json msg));
        output_char oc '\n';
        flush oc)
  in
  let stop = Atomic.make false in
  send (W.Hello { pid = Unix.getpid () });
  let beat =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (try send W.Heartbeat with _ -> Atomic.set stop true);
          Thread.delay heartbeat
        done)
      ()
  in
  let cache = Cache.create () in
  let fault key attempt =
    match chaos with
    | None -> ()
    | Some plan -> (
      match Chaos.decide_process plan ~key ~attempt with
      | None -> ()
      | Some Chaos.Kill ->
        (* Indistinguishable from an external kill -9: no goodbye, no
           flush; the supervisor sees pipe EOF + waitpid. *)
        Unix.kill (Unix.getpid ()) Sys.sigkill
      | Some (Chaos.Hang s) -> Unix.sleepf s
      | Some Chaos.Garbage ->
        (* Raw bytes outside the codec — the shape a corrupted worker or
           a foreign writer on the protocol channel produces. *)
        Mutex.lock omutex;
        output_string oc "}{ not protocol \xfe\xff garbage\n";
        flush oc;
        Mutex.unlock omutex)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line -> (
      match W.req_of_line line with
      | Error e ->
        (* Unreadable supervisor lines cannot arise from our supervisor;
           tolerate them anyway — a worker must never die of input. *)
        Printf.eprintf "gncg worker: dropping unreadable line: %s\n%!"
          (Gncg_util.Gncg_error.to_string e);
        loop ()
      | Ok W.Quit -> ()
      | Ok (W.Run { rid; attempt; payload }) ->
        fault (W.payload_key payload) attempt;
        let outcome =
          try
            match payload with
            | W.Spec spec -> W.Run_result (exec spec)
            | W.Query job -> W.Query_result (snd (eval_query ?exec:query_exec cache job))
          with e ->
            W.Job_error
              { msg = Printexc.to_string e; backtrace = Printexc.get_backtrace () }
        in
        (match send (W.Result { rid; outcome }) with
        | () -> loop ()
        | exception _ -> ()))
  in
  loop ();
  Atomic.set stop true;
  Thread.join beat
