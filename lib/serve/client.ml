module P = Protocol
module Json = Gncg_runs.Json
module E = Gncg_util.Gncg_error

let ctx = "Serve.Client"

type t = {
  ic : in_channel;
  oc : out_channel;
  fd : Unix.file_descr option;
  mutable next_id : int;
  mutable closed : bool;
}

let of_channels ic oc = { ic; oc; fd = None; next_id = 1; closed = false }

let connect_unix ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    Ok
      {
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
        fd = Some fd;
        next_id = 1;
        closed = false;
      }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    E.failf ~context:ctx ~where:(E.File path) Io "cannot connect: %s"
      (Unix.error_message err)

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> (
      (try close_out t.oc with Sys_error _ -> ());
      try close_in t.ic with Sys_error _ -> ())
  end

let fresh_id t =
  let id = Printf.sprintf "c%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let send t envelope =
  match
    output_string t.oc (Json.to_string (P.request_to_json envelope));
    output_char t.oc '\n';
    flush t.oc
  with
  | () -> Ok ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    E.fail ~context:ctx Io "connection lost while sending"

let read_response t =
  match input_line t.ic with
  | line -> P.response_of_line line
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
    E.fail ~context:ctx Io "connection closed by the daemon"

let ( let* ) = Result.bind

(* One request, one terminal line.  Events for other ids cannot occur —
   the connection is sequential — but skip them defensively rather than
   desynchronize. *)
let rpc t request =
  let id = fresh_id t in
  let* () = send t { P.id; request } in
  let rec await () =
    let* resp = read_response t in
    match resp with
    | P.Reply { id = rid; data } when rid = id -> Ok data
    | P.Refused { id = rid; error } when rid = id || rid = "" -> Error error
    | P.Event _ | P.Reply _ | P.Refused _ -> await ()
  in
  await ()

let request t req =
  match req with
  | P.Watch _ ->
    E.fail ~context:ctx Bounds "use Client.watch for streaming requests"
  | _ -> rpc t req

let lift_field r = Result.map_error (fun m -> E.v ~context:ctx Parse m) r

let ping t =
  let* data = rpc t P.Ping in
  lift_field (Result.bind (Json.member "uptime_s" data) Json.get_float)

let submit t job =
  let* data = rpc t (P.Submit job) in
  let* id = lift_field (Result.bind (Json.member "job" data) Json.get_string) in
  let* attached =
    lift_field (Result.bind (Json.member "attached" data) Json.get_bool)
  in
  Ok (id, attached)

let status t ?job () = rpc t (P.Status job)

let cancel t job =
  let* data = rpc t (P.Cancel job) in
  lift_field (Result.bind (Json.member "cancelled" data) Json.get_bool)

let fetch_csv t job =
  let* data = rpc t (P.Fetch job) in
  lift_field (Result.bind (Json.member "csv" data) Json.get_string)

let shutdown t = Result.map (fun _ -> ()) (rpc t P.Shutdown)

let watch t ?(since = 0) ?(trace = false) ~on_event job =
  let id = fresh_id t in
  let* () = send t { P.id; request = P.Watch { job; since; trace } } in
  let rec stream () =
    let* resp = read_response t in
    match resp with
    | P.Event { id = rid; event } when rid = id ->
      on_event event;
      if event.P.name = "done" then Ok event.P.data else stream ()
    | P.Refused { id = rid; error } when rid = id || rid = "" -> Error error
    | P.Event _ | P.Reply _ | P.Refused _ -> stream ()
  in
  stream ()
