module Json = Gncg_runs.Json
module Job = Gncg_runs.Job
module E = Gncg_util.Gncg_error

let version = 1

let ctx = "Serve.Protocol"

(* Json accessor results carry bare strings; lift them into the typed
   error the wire refusals are built from. *)
let lift r = Result.map_error (fun m -> E.v ~context:ctx Parse m) r

let ( let* ) = Result.bind

let mem k j = lift (Json.member k j)
let str j = lift (Json.get_string j)
let int j = lift (Json.get_int j)
let flt j = lift (Json.get_float j)
let bol j = lift (Json.get_bool j)
let lst j = lift (Json.get_list j)

let mem_opt k j = match Json.member k j with Ok v -> Some v | Error _ -> None

let perr fmt = E.failf ~context:ctx Parse fmt

(* --- jobs -------------------------------------------------------------- *)

type job =
  | Sweep of {
      config : Gncg_runs.Batch.config;
      budget : float option;
      retries : int option;
    }
  | Eq_check of {
      model : Gncg_workload.Instances.model;
      n : int;
      alpha : float;
      seed : int;
      check : Gncg.Equilibrium.kind;
      stabilize : bool;
    }
  | Best_response of {
      model : Gncg_workload.Instances.model;
      n : int;
      alpha : float;
      seed : int;
      agent : int;
    }

let job_kind_string = function
  | Sweep _ -> "sweep"
  | Eq_check _ -> "eq-check"
  | Best_response _ -> "best-response"

let check_to_string = function
  | Gncg.Equilibrium.NE -> "ne"
  | Gncg.Equilibrium.GE -> "ge"
  | Gncg.Equilibrium.AE -> "ae"

let check_of_string = function
  | "ne" -> Ok Gncg.Equilibrium.NE
  | "ge" -> Ok Gncg.Equilibrium.GE
  | "ae" -> Ok Gncg.Equilibrium.AE
  | s -> perr "unknown equilibrium kind %S (ne | ge | ae)" s

let num_list f xs = Json.List (List.map f xs)

let job_to_json job =
  match job with
  | Sweep { config = c; budget; retries } ->
    Json.Obj
      [
        ("kind", Json.Str "sweep");
        ("model", Json.Str (Job.model_to_string c.model));
        ("ns", num_list Json.num_int c.ns);
        ("alphas", num_list (fun a -> Json.Num a) c.alphas);
        ("seeds", num_list Json.num_int c.seeds);
        ("rule", Json.Str (Job.rule_to_string c.rule));
        ("evaluator", Json.Str (Job.evaluator_to_string c.evaluator));
        ("max_steps", Json.num_int c.max_steps);
        ("budget", (match budget with Some b -> Json.Num b | None -> Json.Null));
        ("retries", (match retries with Some r -> Json.num_int r | None -> Json.Null));
      ]
  | Eq_check { model; n; alpha; seed; check; stabilize } ->
    Json.Obj
      [
        ("kind", Json.Str "eq-check");
        ("model", Json.Str (Job.model_to_string model));
        ("n", Json.num_int n);
        ("alpha", Json.Num alpha);
        ("seed", Json.num_int seed);
        ("check", Json.Str (check_to_string check));
        ("stabilize", Json.Bool stabilize);
      ]
  | Best_response { model; n; alpha; seed; agent } ->
    Json.Obj
      [
        ("kind", Json.Str "best-response");
        ("model", Json.Str (Job.model_to_string model));
        ("n", Json.num_int n);
        ("alpha", Json.Num alpha);
        ("seed", Json.num_int seed);
        ("agent", Json.num_int agent);
      ]

let model_field j =
  let* s = Result.bind (mem "model" j) str in
  Result.map_error (fun m -> E.v ~context:ctx Parse m) (Job.model_of_string s)

let int_list j =
  let* items = lst j in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* i = int item in
      Ok (i :: acc))
    (Ok []) items
  |> Result.map List.rev

let float_list j =
  let* items = lst j in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* x = flt item in
      Ok (x :: acc))
    (Ok []) items
  |> Result.map List.rev

let job_of_json j =
  let* kind = Result.bind (mem "kind" j) str in
  match kind with
  | "sweep" ->
    let* model = model_field j in
    let* ns = Result.bind (mem "ns" j) int_list in
    let* alphas = Result.bind (mem "alphas" j) float_list in
    let* seeds = Result.bind (mem "seeds" j) int_list in
    let* rule =
      match mem_opt "rule" j with
      | None -> Ok Job.Greedy_response
      | Some v ->
        let* s = str v in
        Result.map_error (fun m -> E.v ~context:ctx Parse m) (Job.rule_of_string s)
    in
    let* evaluator =
      match mem_opt "evaluator" j with
      | None -> Ok `Incremental
      | Some v ->
        let* s = str v in
        Result.map_error (fun m -> E.v ~context:ctx Parse m) (Job.evaluator_of_string s)
    in
    let* max_steps =
      match mem_opt "max_steps" j with None -> Ok 5000 | Some v -> int v
    in
    let* budget =
      match mem_opt "budget" j with
      | None | Some Json.Null -> Ok None
      | Some v ->
        let* b = flt v in
        if Float.is_nan b then Ok None
        else if b > 0.0 then Ok (Some b)
        else perr "budget must be positive"
    in
    let* retries =
      match mem_opt "retries" j with
      | None | Some Json.Null -> Ok None
      | Some v ->
        let* r = int v in
        if r >= 0 then Ok (Some r) else perr "retries must be non-negative"
    in
    if ns = [] || alphas = [] || seeds = [] then perr "empty sweep grid"
    else
      Ok
        (Sweep
           {
             config =
               { Gncg_runs.Batch.model; ns; alphas; seeds; rule; evaluator; max_steps };
             budget;
             retries;
           })
  | "eq-check" ->
    let* model = model_field j in
    let* n = Result.bind (mem "n" j) int in
    let* alpha = Result.bind (mem "alpha" j) flt in
    let* seed = Result.bind (mem "seed" j) int in
    let* check = Result.bind (Result.bind (mem "check" j) str) check_of_string in
    let* stabilize =
      match mem_opt "stabilize" j with None -> Ok false | Some v -> bol v
    in
    if n < 1 then perr "n must be positive"
    else Ok (Eq_check { model; n; alpha; seed; check; stabilize })
  | "best-response" ->
    let* model = model_field j in
    let* n = Result.bind (mem "n" j) int in
    let* alpha = Result.bind (mem "alpha" j) flt in
    let* seed = Result.bind (mem "seed" j) int in
    let* agent = Result.bind (mem "agent" j) int in
    if n < 1 then perr "n must be positive"
    else Ok (Best_response { model; n; alpha; seed; agent })
  | k -> perr "unknown job kind %S (sweep | eq-check | best-response)" k

(* Field order in [job_to_json] is fixed, so the rendering doubles as
   the canonical encoding the content key hashes. *)
let job_canonical job = Json.to_string (job_to_json job)

let fnv1a64 s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let content_hash = fnv1a64

let job_key job = fnv1a64 (job_canonical job)

(* --- requests ---------------------------------------------------------- *)

type request =
  | Ping
  | Submit of job
  | Status of string option
  | Watch of { job : string; since : int; trace : bool }
  | Cancel of string
  | Fetch of string
  | Shutdown

type envelope = { id : string; request : request }

let versioned fields = Json.Obj (("v", Json.num_int version) :: fields)

let request_to_json { id; request } =
  let base op extra = versioned (("id", Json.Str id) :: ("op", Json.Str op) :: extra) in
  match request with
  | Ping -> base "ping" []
  | Submit job -> base "submit" [ ("job", job_to_json job) ]
  | Status None -> base "status" []
  | Status (Some j) -> base "status" [ ("job", Json.Str j) ]
  | Watch { job; since; trace } ->
    base "watch"
      [ ("job", Json.Str job); ("since", Json.num_int since); ("trace", Json.Bool trace) ]
  | Cancel j -> base "cancel" [ ("job", Json.Str j) ]
  | Fetch j -> base "fetch" [ ("job", Json.Str j) ]
  | Shutdown -> base "shutdown" []

let check_version j =
  let* v = Result.bind (mem "v" j) int in
  if v = version then Ok ()
  else perr "unsupported protocol version %d (this end speaks %d)" v version

let job_ref j = Result.bind (mem "job" j) str

let request_of_json j =
  let* () = check_version j in
  let* id = Result.bind (mem "id" j) str in
  let* op = Result.bind (mem "op" j) str in
  let* request =
    match op with
    | "ping" -> Ok Ping
    | "submit" -> Result.map (fun job -> Submit job) (Result.bind (mem "job" j) job_of_json)
    | "status" -> (
      match mem_opt "job" j with
      | None -> Ok (Status None)
      | Some v -> Result.map (fun s -> Status (Some s)) (str v))
    | "watch" ->
      let* job = job_ref j in
      let* since = match mem_opt "since" j with None -> Ok 0 | Some v -> int v in
      let* trace = match mem_opt "trace" j with None -> Ok false | Some v -> bol v in
      Ok (Watch { job; since; trace })
    | "cancel" -> Result.map (fun s -> Cancel s) (job_ref j)
    | "fetch" -> Result.map (fun s -> Fetch s) (job_ref j)
    | "shutdown" -> Ok Shutdown
    | op -> perr "unknown op %S" op
  in
  Ok { id; request }

let request_of_line line =
  let* j = lift (Json.parse line) in
  request_of_json j

(* --- responses --------------------------------------------------------- *)

type event = { seq : int; name : string; data : Json.t }

type response =
  | Reply of { id : string; data : Json.t }
  | Refused of { id : string; error : E.t }
  | Event of { id : string; event : event }

let response_to_json = function
  | Reply { id; data } ->
    versioned [ ("id", Json.Str id); ("ok", Json.Bool true); ("data", data) ]
  | Refused { id; error } ->
    versioned
      [
        ("id", Json.Str id);
        ("ok", Json.Bool false);
        ("error", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (E.to_wire error)));
      ]
  | Event { id; event } ->
    versioned
      [
        ("id", Json.Str id);
        ("event", Json.Str event.name);
        ("seq", Json.num_int event.seq);
        ("data", event.data);
      ]

let error_of_json j =
  let* fields =
    match j with
    | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* s = str v in
          Ok ((k, s) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> perr "error payload must be an object"
  in
  Result.map_error (fun m -> E.v ~context:ctx Parse m) (E.of_wire fields)

let response_of_json j =
  let* () = check_version j in
  let* id = Result.bind (mem "id" j) str in
  match mem_opt "event" j with
  | Some name_v ->
    let* name = str name_v in
    let* seq = Result.bind (mem "seq" j) int in
    let* data = mem "data" j in
    Ok (Event { id; event = { seq; name; data } })
  | None -> (
    let* ok = Result.bind (mem "ok" j) bol in
    if ok then
      let* data = mem "data" j in
      Ok (Reply { id; data })
    else
      let* error = Result.bind (mem "error" j) error_of_json in
      Ok (Refused { id; error }))

let response_of_line line =
  let* j = lift (Json.parse line) in
  response_of_json j

(* --- the worker sub-protocol -------------------------------------------- *)

(* Spoken between the pool supervisor and its forked worker processes
   over the workers' stdin/stdout: same versioned line-JSON codec, its
   own op namespace ("wop") so a worker line can never be mistaken for a
   client line. *)
module Worker_wire = struct
  type payload =
    | Spec of Job.spec
    | Query of job

  type req =
    | Run of { rid : int; attempt : int; payload : payload }
    | Quit

  type outcome =
    | Run_result of Gncg_workload.Sweep.run
    | Query_result of Json.t
    | Job_error of { msg : string; backtrace : string }

  type msg =
    | Hello of { pid : int }
    | Heartbeat
    | Result of { rid : int; outcome : outcome }

  let payload_key = function
    | Spec s -> Job.hash s
    | Query j -> job_key j

  let req_to_json = function
    | Run { rid; attempt; payload } ->
      let p =
        match payload with
        | Spec s -> [ ("payload", Json.Str "spec"); ("spec", Job.to_json s) ]
        | Query j -> [ ("payload", Json.Str "job"); ("job", job_to_json j) ]
      in
      versioned
        (("wop", Json.Str "run")
        :: ("rid", Json.num_int rid)
        :: ("attempt", Json.num_int attempt)
        :: p)
    | Quit -> versioned [ ("wop", Json.Str "quit") ]

  let req_of_json j =
    let* () = check_version j in
    let* wop = Result.bind (mem "wop" j) str in
    match wop with
    | "run" ->
      let* rid = Result.bind (mem "rid" j) int in
      let* attempt = Result.bind (mem "attempt" j) int in
      let* payload =
        let* kind = Result.bind (mem "payload" j) str in
        match kind with
        | "spec" ->
          let* sj = mem "spec" j in
          Result.map
            (fun s -> Spec s)
            (Result.map_error (fun m -> E.v ~context:ctx Parse m) (Job.of_json sj))
        | "job" -> Result.map (fun jb -> Query jb) (Result.bind (mem "job" j) job_of_json)
        | k -> perr "unknown worker payload kind %S (spec | job)" k
      in
      Ok (Run { rid; attempt; payload })
    | "quit" -> Ok Quit
    | op -> perr "unknown worker op %S" op

  let req_of_line line =
    let* j = lift (Json.parse line) in
    req_of_json j

  let msg_to_json = function
    | Hello { pid } -> versioned [ ("wop", Json.Str "hello"); ("pid", Json.num_int pid) ]
    | Heartbeat -> versioned [ ("wop", Json.Str "heartbeat") ]
    | Result { rid; outcome } ->
      let o =
        match outcome with
        | Run_result r ->
          [ ("status", Json.Str "run"); ("run", Gncg_runs.Journal.run_to_json r) ]
        | Query_result d -> [ ("status", Json.Str "data"); ("data", d) ]
        | Job_error { msg; backtrace } ->
          [
            ("status", Json.Str "error");
            ("msg", Json.Str msg);
            ("backtrace", Json.Str backtrace);
          ]
      in
      versioned (("wop", Json.Str "result") :: ("rid", Json.num_int rid) :: o)

  let msg_of_json j =
    let* () = check_version j in
    let* wop = Result.bind (mem "wop" j) str in
    match wop with
    | "hello" ->
      let* pid = Result.bind (mem "pid" j) int in
      Ok (Hello { pid })
    | "heartbeat" -> Ok Heartbeat
    | "result" ->
      let* rid = Result.bind (mem "rid" j) int in
      let* status = Result.bind (mem "status" j) str in
      let* outcome =
        match status with
        | "run" ->
          let* rj = mem "run" j in
          Result.map
            (fun r -> Run_result r)
            (Result.map_error
               (fun m -> E.v ~context:ctx Parse m)
               (Gncg_runs.Journal.run_of_json rj))
        | "data" -> Result.map (fun d -> Query_result d) (mem "data" j)
        | "error" ->
          let* msg = Result.bind (mem "msg" j) str in
          let* backtrace = Result.bind (mem "backtrace" j) str in
          Ok (Job_error { msg; backtrace })
        | s -> perr "unknown worker result status %S (run | data | error)" s
      in
      Ok (Result { rid; outcome })
    | op -> perr "unknown worker message %S" op

  let msg_of_line line =
    let* j = lift (Json.parse line) in
    msg_of_json j
end

(* --- job states -------------------------------------------------------- *)

type job_state = Queued | Running | Done | Failed of string | Cancelled

let job_state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let terminal = function
  | Done | Failed _ | Cancelled -> true
  | Queued | Running -> false
