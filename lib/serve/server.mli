(** The connection layer: protocol lines in, protocol lines out.

    Two transports share one request handler:

    - {!serve_stdio} speaks the protocol over a channel pair — one
      connection, one thread.  This is what tests and [gncg serve
      --stdio] use; it needs no socket and no signal handling.
    - {!serve_unix} listens on a Unix-domain socket and spawns one
      thread per accepted connection, so a watch blocking one client
      never stalls another.  The accept loop polls a stop flag (set by
      a [shutdown] request from any connection, or by SIGTERM) and
      returns once every connection thread has finished.

    Either transport ends with the session drained: queued jobs run to
    completion, sweep journals are flushed, and a subsequent daemon
    started on the same state directory resumes rather than recomputes. *)

val handle :
  Session.t ->
  stop:(unit -> unit) ->
  Protocol.envelope ->
  (Protocol.response -> unit) ->
  unit
(** Processes one request, pushing zero or more [Event]s and exactly one
    terminal line ([Reply] or [Refused]) through the emit callback —
    except [Watch], whose stream ends with an event named ["done"]
    instead of a reply.  [Shutdown] drains the session, replies, then
    invokes [stop].  Never raises: handler failures become [Refused]. *)

val serve_stdio : Session.t -> in_channel -> out_channel -> unit
(** Reads one request per line until EOF or [shutdown]; malformed lines
    are answered with a [Refused] carrying an empty id.  Drains the
    session before returning, whatever ended the loop. *)

val serve_unix : ?backlog:int -> Session.t -> path:string -> unit
(** Binds [path] (removing a stale socket file first), accepts in a
    loop, one thread per connection.  Returns after a [shutdown]
    request or SIGTERM, with the session drained, all connection
    threads joined and the socket file removed. *)
