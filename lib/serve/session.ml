module P = Protocol
module W = Protocol.Worker_wire
module Json = Gncg_runs.Json
module Job = Gncg_runs.Job
module Batch = Gncg_runs.Batch
module Journal = Gncg_runs.Journal
module Scheduler = Gncg_runs.Scheduler
module E = Gncg_util.Gncg_error
module Metric = Gncg_obs.Metric
module Span = Gncg_obs.Span

let ctx = "Serve.Session"

(* serve.* counters: daemon-side pressure.  The host-cache counters live
   with the cache in {!Worker}. *)
let c_submitted = Metric.Counter.make "serve.jobs_submitted"
let c_attached = Metric.Counter.make "serve.jobs_attached"
let c_completed = Metric.Counter.make "serve.jobs_completed"
let c_failed = Metric.Counter.make "serve.jobs_failed"
let c_cancelled = Metric.Counter.make "serve.jobs_cancelled"
let c_events = Metric.Counter.make "serve.events"
let c_sweep_results = Metric.Counter.make "serve.sweep_results"

type jrec = {
  id : string;
  key : string;
  job : P.job;
  mutable state : P.job_state;
  mutable crash : Scheduler.crash option;
      (* worker-side message and frames when the job died in a worker *)
  mutable events : P.event list;  (* newest first *)
  mutable n_events : int;
  mutable csv : string option;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  state_dir : string;
  domains : int option;
  budget : float option;
  retries : int option;
  trace_stream : bool;
  exec_seam : (Job.spec -> Gncg_workload.Sweep.run) option;
  pool : Pool.t option;
  jobs : (string, jrec) Hashtbl.t;
  by_key : (string, string) Hashtbl.t;
  queue : string Queue.t;
  cache : Worker.Cache.t;
  mutable next_id : int;
  mutable running : string list;
  mutable live_executors : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable executors : Thread.t list;
  started_at : float;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- events ------------------------------------------------------------ *)

(* Caller must hold [t.mutex]. *)
let push_event_locked t r name data =
  r.n_events <- r.n_events + 1;
  r.events <- { P.seq = r.n_events; name; data } :: r.events;
  Metric.Counter.incr c_events;
  Condition.broadcast t.cond

let push_event t r name data =
  Mutex.lock t.mutex;
  push_event_locked t r name data;
  Mutex.unlock t.mutex

let set_state t r state =
  Mutex.lock t.mutex;
  r.state <- state;
  push_event_locked t r "job-state"
    (Json.Obj
       (("state", Json.Str (P.job_state_string state))
       ::
       (match state with
       | P.Failed msg -> [ ("error", Json.Str msg) ]
       | _ -> [])));
  Mutex.unlock t.mutex

(* --- job execution ----------------------------------------------------- *)

let report_event_data spec (report : Gncg_workload.Sweep.run Scheduler.report) =
  let status, extra =
    match report.outcome with
    | Scheduler.Completed r -> ("completed", [ ("run", Journal.run_to_json r) ])
    | Scheduler.Diverged r -> ("diverged", [ ("run", Journal.run_to_json r) ])
    | Scheduler.Timeout -> ("timeout", [])
    | Scheduler.Crashed { msg; _ } -> ("crashed", [ ("crash", Json.Str msg) ])
  in
  Json.Obj
    ([
       ("job", Json.Str (Job.hash spec));
       ("n", Json.num_int spec.Job.n);
       ("alpha", Json.Num spec.Job.alpha);
       ("seed", Json.num_int spec.Job.seed);
       ("status", Json.Str status);
       ("attempts", Json.num_int report.attempts);
       ("elapsed_s", Json.Num report.elapsed);
     ]
    @ extra)

let progress_json (p : Batch.progress) =
  Json.Obj
    [
      ("total", Json.num_int p.total);
      ("executed", Json.num_int p.executed);
      ("skipped", Json.num_int p.skipped);
      ("completed", Json.num_int p.completed);
      ("diverged", Json.num_int p.diverged);
      ("timeout", Json.num_int p.timeout);
      ("crashed", Json.num_int p.crashed);
      ("retries", Json.num_int p.retries);
    ]

let in_process_exec t = Option.value t.exec_seam ~default:Job.execute

(* The sweep execution seam for {!Batch.run}: ship the spec to a worker;
   if the pool cannot serve (breaker open, shutdown), degrade to the
   in-process executor — exactly the [--workers 0] path.  Crash, timeout
   and requeue classification happens inside {!Pool.dispatch} via the
   scheduler's escape-hatch exceptions, so the journal entries come out
   the same whether the spec ran in a worker or in the daemon. *)
let sweep_exec t ~budget =
  match t.pool with
  | None -> t.exec_seam
  | Some pool ->
    Some
      (fun spec ->
        match Pool.dispatch pool ?budget (W.Spec spec) with
        | Some (`Run run) -> run
        | Some (`Data _) ->
          raise
            (Scheduler.Crash_report
               {
                 msg = "worker answered a spec dispatch with query data";
                 backtrace = "";
               })
        | None -> in_process_exec t spec)

let sweep_domains t =
  (* With a pool, batch concurrency is the fleet size: one scheduler
     worker per process keeps every worker busy without queueing
     dispatches (which would distort budget accounting). *)
  match t.pool with Some pool -> Some (Pool.size pool) | None -> t.domains

let run_sweep t r config job_budget job_retries =
  let journal = Filename.concat t.state_dir ("sweep-" ^ r.key ^ ".jsonl") in
  let budget = match job_budget with Some _ as b -> b | None -> t.budget in
  let retries =
    match (job_retries, t.retries) with
    | Some k, _ -> Some k
    | None, session -> session
  in
  let exec = sweep_exec t ~budget in
  let domains = sweep_domains t in
  let on_result spec report =
    Metric.Counter.incr c_sweep_results;
    push_event t r "job-result" (report_event_data spec report)
  in
  let fresh () = Batch.run ?domains ?budget ?retries ?exec ~on_result ~journal config in
  let summary =
    if Sys.file_exists journal then
      (* Same content key ⇒ same generating config, so the journal on
         disk is this sweep's: resume it and re-execute only what is
         missing.  A journal too torn to reload (e.g. the daemon died
         inside the manifest write) is started over. *)
      match Batch.resume ?domains ?budget ?retries ?exec ~on_result ~journal () with
      | Ok s -> s
      | Error msg ->
        push_event t r "journal-reset"
          (Json.Obj [ ("journal", Json.Str journal); ("error", Json.Str msg) ]);
        fresh ()
    else fresh ()
  in
  Mutex.lock t.mutex;
  r.csv <- Some (Gncg_workload.Report.runs_to_csv summary.Batch.runs);
  push_event_locked t r "summary" (progress_json summary.Batch.progress);
  Mutex.unlock t.mutex

let exec_of t = Gncg_util.Exec.Par { domains = t.domains }

let query_event_name = function
  | P.Eq_check _ -> "verdict"
  | P.Best_response _ -> "best-response"
  | P.Sweep _ -> invalid_arg "Session.query_event_name: not a query"

(* Queries ship whole to a worker (each worker keeps its own host
   cache); without a pool — or with the breaker open — they evaluate
   in-process against the session cache, through the very same
   {!Worker.eval_query}. *)
let run_query t r job =
  let name = query_event_name job in
  let data =
    match t.pool with
    | Some pool -> (
      match Pool.dispatch pool (W.Query job) with
      | Some (`Data data) -> data
      | Some (`Run _) ->
        raise
          (Scheduler.Crash_report
             { msg = "worker answered a query dispatch with a sweep run"; backtrace = "" })
      | None -> snd (Worker.eval_query ~exec:(exec_of t) t.cache job))
    | None -> snd (Worker.eval_query ~exec:(exec_of t) t.cache job)
  in
  push_event t r name data

let execute t r =
  match r.job with
  | P.Sweep { config; budget; retries } -> run_sweep t r config budget retries
  | (P.Eq_check _ | P.Best_response _) as job -> run_query t r job

let executor_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.cond t.mutex
    done;
    if Queue.is_empty t.queue then begin
      (* Draining and dry: the last executor out marks the session
         stopped. *)
      t.live_executors <- t.live_executors - 1;
      if t.live_executors = 0 then t.stopped <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
    else begin
      let id = Queue.pop t.queue in
      let r = Hashtbl.find t.jobs id in
      if r.state <> P.Queued then begin
        (* Cancelled while queued: nothing to run. *)
        Mutex.unlock t.mutex;
        loop ()
      end
      else begin
        t.running <- id :: t.running;
        Mutex.unlock t.mutex;
        set_state t r P.Running;
        (match
           Span.with_
             ~fields:(fun () -> [ ("job", Gncg_obs.Sink.Str id) ])
             "serve.job"
             (fun () -> execute t r)
         with
        | () ->
          Metric.Counter.incr c_completed;
          set_state t r P.Done
        | exception exn ->
          Metric.Counter.incr c_failed;
          let msg =
            match exn with
            | Scheduler.Crash_report c ->
              (* Keep the worker-side frames: [gncg client status] shows
                 them even when no watcher saw the job die. *)
              Mutex.lock t.mutex;
              r.crash <- Some c;
              Mutex.unlock t.mutex;
              c.Scheduler.msg
            | Scheduler.Over_budget -> "job exceeded its wall-clock budget"
            | E.Error e -> E.to_string e
            | exn -> Printexc.to_string exn
          in
          set_state t r (P.Failed msg));
        Mutex.lock t.mutex;
        t.running <- List.filter (fun running_id -> running_id <> id) t.running;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        loop ()
      end
    end
  in
  loop ()

(* --- the streaming observability sink ---------------------------------- *)

let sink_value_to_json = function
  | Gncg_obs.Sink.Int i -> Json.num_int i
  | Gncg_obs.Sink.Float x -> Json.Num x
  | Gncg_obs.Sink.Str s -> Json.Str s
  | Gncg_obs.Sink.Bool b -> Json.Bool b

let sink_event_to_json (e : Gncg_obs.Sink.event) =
  Json.Obj
    ([ ("kind", Json.Str e.kind); ("name", Json.Str e.name); ("t_ns", Json.Num e.t_ns) ]
    @ List.map (fun (k, v) -> (k, sink_value_to_json v)) e.fields)

(* Engine trace events are relayed onto the stream of whatever job is
   running when they fire; events between jobs — or while several jobs
   run at once and attribution would be a guess — are dropped.  The
   callback runs on arbitrary engine domains — it only takes the
   session mutex, which no caller holds across engine work. *)
let install_trace_stream t =
  Gncg_obs.Sink.install
    (Some
       (Gncg_obs.Sink.callback (fun e ->
            Mutex.lock t.mutex;
            (match t.running with
            | [ id ] -> (
              match Hashtbl.find_opt t.jobs id with
              | Some r -> push_event_locked t r "obs" (sink_event_to_json e)
              | None -> ())
            | _ -> ());
            Mutex.unlock t.mutex)))

(* --- public api -------------------------------------------------------- *)

type submitted = { job_id : string; attached : bool }

let create ?(state_dir = "gncg-serve-state") ?domains ?budget ?retries
    ?(trace_stream = false) ?exec_seam ?(workers = 0) ?pool_spawn ?pool_config () =
  mkdir_p state_dir;
  let pool =
    if workers <= 0 then None
    else begin
      let config =
        match pool_config with
        | Some c -> { c with Pool.workers }
        | None -> { Pool.default_config with Pool.workers }
      in
      let spawn =
        match pool_spawn with Some s -> s | None -> Pool.spawn_forked ()
      in
      Some (Pool.create ~config ~spawn ())
    end
  in
  (* One executor per worker keeps the fleet busy (a query occupies one
     worker end to end); without a pool, execution is single-file as
     before. *)
  let executors = match pool with Some p -> Pool.size p | None -> 1 in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      state_dir;
      domains;
      budget;
      retries;
      trace_stream;
      exec_seam;
      pool;
      jobs = Hashtbl.create 64;
      by_key = Hashtbl.create 64;
      queue = Queue.create ();
      cache = Worker.Cache.create ();
      next_id = 1;
      running = [];
      live_executors = executors;
      draining = false;
      stopped = false;
      executors = [];
      started_at = Unix.gettimeofday ();
    }
  in
  if trace_stream then install_trace_stream t;
  t.executors <- List.init executors (fun _ -> Thread.create executor_loop t);
  t

let validate_job job =
  match job with
  | P.Eq_check { n; check = Gncg.Equilibrium.NE; _ } when n > 12 ->
    E.failf ~context:ctx Bounds
      "exact NE checks are exponential; n = %d exceeds the daemon's limit of 12" n
  | P.Best_response { n; agent; _ } when agent < 0 || agent >= n ->
    E.failf ~context:ctx Bounds "agent %d out of range [0, %d)" agent n
  | _ -> Ok ()

let submit t job =
  match validate_job job with
  | Error _ as e -> e
  | Ok () ->
    Mutex.lock t.mutex;
    let result =
      if t.draining then
        E.fail ~context:ctx Io "the daemon is draining and refuses new submissions"
      else begin
        let key = P.job_key job in
        let attach =
          match Hashtbl.find_opt t.by_key key with
          | Some id -> (
            match Hashtbl.find_opt t.jobs id with
            | Some r when r.state <> P.Cancelled && (match r.state with P.Failed _ -> false | _ -> true) ->
              Some id
            | _ -> None)
          | None -> None
        in
        match attach with
        | Some id ->
          Metric.Counter.incr c_attached;
          Ok { job_id = id; attached = true }
        | None ->
          let id = Printf.sprintf "j%d" t.next_id in
          t.next_id <- t.next_id + 1;
          let r =
            {
              id;
              key;
              job;
              state = P.Queued;
              crash = None;
              events = [];
              n_events = 0;
              csv = None;
            }
          in
          Hashtbl.replace t.jobs id r;
          Hashtbl.replace t.by_key key id;
          Queue.push id t.queue;
          Metric.Counter.incr c_submitted;
          push_event_locked t r "job-state"
            (Json.Obj [ ("state", Json.Str "queued"); ("key", Json.Str key) ]);
          Condition.broadcast t.cond;
          Ok { job_id = id; attached = false }
      end
    in
    Mutex.unlock t.mutex;
    result

let find t id =
  match Hashtbl.find_opt t.jobs id with
  | Some r -> Ok r
  | None -> E.failf ~context:ctx Bounds "unknown job id %S" id

let job_state t id =
  Mutex.lock t.mutex;
  let result = Result.map (fun r -> r.state) (find t id) in
  Mutex.unlock t.mutex;
  result

let cancel t id =
  Mutex.lock t.mutex;
  let result =
    Result.map
      (fun r ->
        if r.state = P.Queued then begin
          r.state <- P.Cancelled;
          Metric.Counter.incr c_cancelled;
          push_event_locked t r "job-state"
            (Json.Obj [ ("state", Json.Str "cancelled") ]);
          true
        end
        else false)
      (find t id)
  in
  Mutex.unlock t.mutex;
  result

let fetch_csv t id =
  Mutex.lock t.mutex;
  let result =
    Result.bind (find t id) (fun r ->
        match r.csv with
        | Some csv -> Ok csv
        | None -> (
          match r.job with
          | P.Sweep _ ->
            E.failf ~context:ctx Bounds "job %s is %s; csv is available once done" id
              (P.job_state_string r.state)
          | _ -> E.failf ~context:ctx Bounds "job %s is not a sweep; nothing to fetch" id))
  in
  Mutex.unlock t.mutex;
  result

let job_json r =
  Json.Obj
    ([
       ("id", Json.Str r.id);
       ("kind", Json.Str (P.job_kind_string r.job));
       ("key", Json.Str r.key);
       ("state", Json.Str (P.job_state_string r.state));
       ("events", Json.num_int r.n_events);
       ("csv_available", Json.Bool (r.csv <> None));
     ]
    @ (match r.state with P.Failed msg -> [ ("error", Json.Str msg) ] | _ -> [])
    @
    match r.crash with
    | Some { Scheduler.msg; backtrace } ->
      [
        ( "crash",
          Json.Obj [ ("msg", Json.Str msg); ("backtrace", Json.Str backtrace) ] );
      ]
    | None -> [])

let status_json t which =
  Mutex.lock t.mutex;
  let result =
    match which with
    | Some id -> Result.map job_json (find t id)
    | None ->
      let jobs =
        Hashtbl.fold (fun _ r acc -> r :: acc) t.jobs []
        |> List.sort (fun a b -> compare a.id b.id)
        |> List.map job_json
      in
      Ok
        (Json.Obj
           [
             ("uptime_s", Json.Num (Unix.gettimeofday () -. t.started_at));
             ("jobs", Json.List jobs);
             ("queued", Json.num_int (Queue.length t.queue));
             ( "running",
               Json.List (List.map (fun id -> Json.Str id) (List.rev t.running)) );
             ("hosts_cached", Json.num_int (Worker.Cache.size t.cache));
             ("draining", Json.Bool t.draining);
             ( "pool",
               match t.pool with
               | Some pool -> Pool.status_json pool
               | None -> Json.Null );
           ])
  in
  Mutex.unlock t.mutex;
  result

let events_after t ~job ~since =
  Mutex.lock t.mutex;
  let result =
    Result.map
      (fun r ->
        let fresh () =
          List.filter (fun (e : P.event) -> e.seq > since) (List.rev r.events)
        in
        let rec wait () =
          let es = fresh () in
          if es <> [] || P.terminal r.state || t.stopped then (es, P.terminal r.state)
          else begin
            Condition.wait t.cond t.mutex;
            wait ()
          end
        in
        wait ())
      (find t job)
  in
  Mutex.unlock t.mutex;
  result

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.cond;
  let executors = t.executors in
  t.executors <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join executors;
  Option.iter Pool.shutdown t.pool

let pool_status t = Option.map Pool.status_json t.pool

let workers t = match t.pool with Some pool -> Pool.size pool | None -> 0

let hosts_cached t = Worker.Cache.size t.cache

let uptime t = Unix.gettimeofday () -. t.started_at
