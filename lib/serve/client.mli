(** A blocking protocol client: one connection, sequential requests.

    Thin by design — it frames lines, matches replies to request ids,
    and decodes refusals back into {!Gncg_util.Gncg_error.t}.  Anything
    concurrent (the bench's eight parallel clients, the CLI's watch)
    opens one client per thread; a single client must not be shared
    across threads. *)

type t

val connect_unix : path:string -> (t, Gncg_util.Gncg_error.t) result
(** Connects to the daemon's socket.  [Io] when nothing listens. *)

val of_channels : in_channel -> out_channel -> t
(** Wraps an existing channel pair (tests drive {!Server.serve_stdio}
    through a pipe this way). *)

val close : t -> unit

(** {1 Requests}

    Each call sends one request and blocks for its terminal response.
    Server refusals and transport failures both surface as [Error _]. *)

val ping : t -> (float, Gncg_util.Gncg_error.t) result
(** Round-trips; returns the daemon's uptime in seconds. *)

val submit : t -> Protocol.job -> (string * bool, Gncg_util.Gncg_error.t) result
(** Job id and whether the submission attached to an existing job. *)

val status : t -> ?job:string -> unit -> (Protocol.Json.t, Gncg_util.Gncg_error.t) result

val cancel : t -> string -> (bool, Gncg_util.Gncg_error.t) result

val fetch_csv : t -> string -> (string, Gncg_util.Gncg_error.t) result

val watch :
  t ->
  ?since:int ->
  ?trace:bool ->
  on_event:(Protocol.event -> unit) ->
  string ->
  (Protocol.Json.t, Gncg_util.Gncg_error.t) result
(** Streams the job's events through [on_event] (the terminating
    ["done"] event included) and returns the ["done"] payload, e.g.
    [{"state":"done"}].  Blocks until the job is terminal. *)

val shutdown : t -> (unit, Gncg_util.Gncg_error.t) result
(** Graceful drain: returns once the daemon has run its queue dry and
    acknowledged. *)

val request :
  t -> Protocol.request -> (Protocol.Json.t, Gncg_util.Gncg_error.t) result
(** The generic single-reply primitive the wrappers above are built on
    (not for [Watch] — use {!watch}). *)
