(** The worker side of the pool: a crash-isolated job executor.

    A worker is a child process of the daemon running {!main} over its
    stdin/stdout ([gncg worker --stdio]), speaking
    {!Protocol.Worker_wire}.  It executes one dispatched payload at a
    time — a sweep spec through {!Gncg_runs.Job.execute} or a whole
    query job through {!eval_query} — and ships the result (or the
    crash, message and frames included) back to the supervisor.  A
    heartbeat thread beats every [heartbeat] seconds so the supervisor's
    liveness deadline can tell a wedged process from a busy one.

    The module also owns the host cache and query evaluation the
    session historically kept inline, so the in-process degraded path
    and the worker path run literally the same code. *)

(** Per-process host cache keyed by the instance content hash.
    Thread-safe. *)
module Cache : sig
  type t

  val create : unit -> t

  val size : t -> int

  val host_and_profile :
    t ->
    model:Gncg_workload.Instances.model ->
    n:int ->
    alpha:float ->
    seed:int ->
    Gncg.Host.t * Gncg.Strategy.t
  (** Cached seeded instance construction; hits and misses bump the
      [serve.host_cache_hits]/[serve.host_cache_misses] counters. *)
end

val eval_query :
  ?exec:Gncg_util.Exec.t ->
  Cache.t ->
  Protocol.job ->
  string * Protocol.Json.t
(** Evaluates an [Eq_check] or [Best_response] job against the cache and
    returns [(event_name, payload)] — exactly the event the session
    publishes on the job's stream.  [exec] (default [Seq]: pool workers
    parallelize across processes, not within a query) drives the
    equilibrium scan.  @raise Invalid_argument on a [Sweep] job — sweeps
    are dispatched spec by spec so the journal stays in the daemon. *)

val main :
  ?heartbeat:float ->
  ?query_exec:Gncg_util.Exec.t ->
  ?chaos:Gncg_runs.Chaos.process_plan ->
  ?exec:(Gncg_runs.Job.spec -> Gncg_workload.Sweep.run) ->
  in_channel ->
  out_channel ->
  unit
(** The worker loop: says hello, beats every [heartbeat] (default 0.25)
    seconds from a side thread, then executes [run] requests one at a
    time until EOF or [quit].  Returns normally on every orderly or
    disorderly supervisor exit (EOF, closed pipe); never raises for
    input.  [chaos] injects process-level faults per
    {!Gncg_runs.Chaos.decide_process} keyed on the payload key and the
    supervisor-tracked attempt number; [exec] is the sweep-spec
    execution seam (default {!Gncg_runs.Job.execute}).  Ignores SIGPIPE
    and enables backtrace recording. *)
