(** The daemon's session manager: job table, executors, host cache.

    One session outlives every connection.  Submissions land in a FIFO
    queue consumed by background executor threads — one without a
    worker pool, one per worker with one ([workers > 0]); each job's
    progress is published as an append-only event stream that any number
    of watchers (connection threads) replay and follow concurrently.
    Sweep jobs run through {!Gncg_runs.Batch} with a journal under the
    session's state directory named by the job's content key, so a
    killed-and-restarted daemon that receives the same submission
    resumes the journal and re-executes only the missing jobs — the
    crash-tolerance story is exactly the one the runs subsystem already
    proves under chaos testing.

    With [workers > 0] execution is crash-isolated: sweeps are
    dispatched spec by spec and queries whole to a supervised {!Pool} of
    worker processes.  The journal never leaves the daemon, so a
    [kill -9]'d worker costs a requeue, not data; when the pool cannot
    serve (circuit breaker open, shutdown) jobs degrade transparently to
    the in-process path below.

    Query jobs (equilibrium checks, best-response probes) are served
    from a host cache keyed by the instance's content hash: repeated
    queries against the same (model, n, alpha, seed) skip host-metric
    construction entirely, which is what makes the daemon cheaper than
    one CLI process per query.  In-process queries share the session
    cache; each pool worker keeps its own.

    Thread-safety: every public function may be called from any number
    of connection threads. *)

type t

type submitted = {
  job_id : string;
  attached : bool;
      (** [true] when the submission deduplicated onto an existing
          non-cancelled job with the same content key — the caller
          should watch that job instead of expecting a fresh run. *)
}

val create :
  ?state_dir:string ->
  ?domains:int ->
  ?budget:float ->
  ?retries:int ->
  ?trace_stream:bool ->
  ?exec_seam:(Gncg_runs.Job.spec -> Gncg_workload.Sweep.run) ->
  ?workers:int ->
  ?pool_spawn:Pool.spawn ->
  ?pool_config:Pool.config ->
  unit ->
  t
(** Starts the executor threads.  [state_dir] (default
    ["gncg-serve-state"], created if missing) holds the sweep journals.
    [domains]/[budget]/[retries] are the sweep defaults a job's own
    fields override.  [trace_stream] installs a streaming observability
    sink for the duration of each job, relaying engine trace events as
    ["obs"] events on the running job's stream (for [watch ~trace]).
    [exec_seam] is the per-sweep-job fault-injection seam
    ({!Gncg_runs.Batch.run}'s [?exec]); production callers never pass
    it — the chaos tests do.  With a pool it is also the degraded
    in-process executor.

    [workers] (default 0: no pool, single in-process executor) starts a
    supervised {!Pool} of that many worker processes, launched by
    [pool_spawn] (default {!Pool.spawn_forked}[ ()]; the CLI passes
    {!Pool.spawn_exec} to re-execute itself as [gncg worker] — prefer
    that whenever a binary is available, since fork-based respawn is
    unavailable while scheduler domains run, see {!Pool.spawn_forked})
    and supervised per [pool_config] (default {!Pool.default_config};
    its [workers] field is overridden by [workers]). *)

val submit : t -> Protocol.job -> (submitted, Gncg_util.Gncg_error.t) result
(** Validates, dedups by content key, enqueues.  Refused with [Io] when
    the session is draining. *)

val job_state : t -> string -> (Protocol.job_state, Gncg_util.Gncg_error.t) result

val cancel : t -> string -> (bool, Gncg_util.Gncg_error.t) result
(** [Ok true] when a queued job was cancelled; [Ok false] when the job
    is already running or terminal (a running job cannot be preempted —
    domains are not interruptible; its sweep journal still makes the
    work durable). *)

val fetch_csv : t -> string -> (string, Gncg_util.Gncg_error.t) result
(** The completed sweep's runs as CSV (the {!Gncg_workload.Report}
    encoding, byte-identical to [gncg sweep run --format csv]).
    Refused for query jobs and non-[Done] jobs. *)

val status_json : t -> string option -> (Protocol.Json.t, Gncg_util.Gncg_error.t) result
(** One job, or the whole table plus daemon gauges (uptime, cache size,
    queue length, per-worker pool liveness under ["pool"]).  A job that
    died inside a worker carries a ["crash"] object with the worker-side
    message and backtrace frames, even if no watcher saw it fail. *)

val events_after :
  t ->
  job:string ->
  since:int ->
  (Protocol.event list * bool, Gncg_util.Gncg_error.t) result
(** Events with [seq > since], oldest first, and whether the job is
    terminal.  Blocks until at least one new event exists or the job is
    terminal — the long-poll primitive the server's watch loop drives. *)

val drain : t -> unit
(** Graceful shutdown: refuse new submissions, run the queue dry, stop
    every executor, shut the worker pool down, and wake every blocked
    watcher.  Idempotent; returns once the executors have exited. *)

val pool_status : t -> Protocol.Json.t option
(** {!Pool.status_json} when a pool is running, [None] otherwise. *)

val workers : t -> int
(** Configured pool size; 0 without a pool. *)

val hosts_cached : t -> int

val uptime : t -> float
