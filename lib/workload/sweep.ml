type run = {
  model : string;
  n : int;
  alpha : float;
  seed : int;
  converged : bool;
  steps : int;
  stable_cost : float;
  opt_cost : float;
  ratio : float;
  diameter : float;
  stretch : float;
  is_tree : bool;
}

let dynamics_run ?(rule = Gncg.Dynamics.Greedy_response) ?(max_steps = 5000)
    ?(evaluator = `Incremental) ?engine model ~n ~alpha ~seed =
  let rng = Gncg_util.Prng.create seed in
  let host = Instances.random_host rng model ~n ~alpha in
  let start = Instances.random_profile rng host in
  let scheduler = Gncg.Dynamics.Random_order (Gncg_util.Prng.split rng) in
  let outcome =
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps ~evaluator ?engine rule scheduler)
      host start
  in
  let profile, converged, steps =
    match outcome with
    | Gncg.Dynamics.Converged { profile; steps; _ } -> (profile, true, List.length steps)
    | Gncg.Dynamics.Cycle { profiles; steps } ->
      (List.hd profiles, false, List.length steps)
    | Gncg.Dynamics.Out_of_steps { profile; steps } ->
      (profile, false, List.length steps)
  in
  let stable_cost = Gncg.Cost.social_cost host profile in
  let _, opt_cost = Gncg.Social_optimum.best_known host in
  let g = Gncg.Network.graph host profile in
  {
    model = Instances.model_name model;
    n;
    alpha;
    seed;
    converged;
    steps;
    stable_cost;
    opt_cost;
    ratio = (if converged then stable_cost /. opt_cost else Float.nan);
    diameter = Gncg_graph.Dijkstra.diameter g;
    stretch = Gncg.Quality.host_stretch host g;
    is_tree = Gncg_graph.Connectivity.is_tree g;
  }

let cartesian ~ns ~alphas ~seeds =
  List.concat_map
    (fun n ->
      List.concat_map (fun alpha -> List.map (fun seed -> (n, alpha, seed)) seeds) alphas)
    ns

let dynamics_batch ?rule ?max_steps ?evaluator model ~ns ~alphas ~seeds =
  List.map
    (fun (n, alpha, seed) -> dynamics_run ?rule ?max_steps ?evaluator model ~n ~alpha ~seed)
    (cartesian ~ns ~alphas ~seeds)

let ratios runs =
  List.filter_map (fun r -> if r.converged then Some r.ratio else None) runs

(* Guarded: an empty batch is a defined 0., not the NaN of 0/0. *)
let converged_fraction runs =
  match runs with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (List.filter (fun r -> r.converged) runs))
    /. float_of_int (List.length runs)
