(** Rendering sweep results as the plain-text tables the benchmark harness
    prints. *)

val print_runs : Sweep.run list -> unit
(** One row per run. *)

val print_ratio_summary : group_label:string -> (string * Sweep.run list) list -> unit
(** One row per group: count, converged fraction, mean/max ratio. *)

val series :
  header:string list -> rows:string list list -> title:string -> unit
(** Titled table (used for figure series). *)

val runs_to_csv : Sweep.run list -> string
(** RFC-4180-ish CSV with a header row (no quoting needed: all cells are
    numeric or simple identifiers). *)

val runs_to_json : Sweep.run list -> string
(** JSON array of run objects (NaN/infinity rendered as [null]). *)
