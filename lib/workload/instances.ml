module Euclidean = Gncg_metric.Euclidean

type model =
  | One_two of { p_one : float }
  | Tree of { wmin : float; wmax : float }
  | Euclid of { norm : Euclidean.norm; d : int; box : float }
  | Graph_metric of { p : float; wmin : float; wmax : float }
  | General of { lo : float; hi : float }
  | One_inf of { p : float }

let model_name = function
  | One_two _ -> "1-2"
  | Tree _ -> "tree"
  | Euclid { norm; d; _ } ->
    let norm_name =
      match norm with
      | Euclidean.L1 -> "l1"
      | Euclidean.L2 -> "l2"
      | Euclidean.Lp p -> Printf.sprintf "l%g" p
      | Euclidean.Linf -> "linf"
    in
    Printf.sprintf "R^%d(%s)" d norm_name
  | Graph_metric _ -> "graph-metric"
  | General _ -> "general"
  | One_inf _ -> "1-inf"

let default_models =
  [
    One_two { p_one = 0.4 };
    Tree { wmin = 1.0; wmax = 10.0 };
    Euclid { norm = Euclidean.L2; d = 2; box = 100.0 };
    Graph_metric { p = 0.3; wmin = 1.0; wmax = 10.0 };
    General { lo = 1.0; hi = 10.0 };
    One_inf { p = 0.3 };
  ]

(* Geometric models keep their implicit description alongside the
   tabulated host, so Net_state can select an oracle distance backend
   (no O(n²) matrix) when the network shape allows. *)
let random_geometry rng model ~n =
  match model with
  | Tree { wmin; wmax } ->
    Some (Gncg_metric.Geometry.tree (Gncg_metric.Tree_metric.random rng ~n ~wmin ~wmax))
  | Euclid { norm; d; box } ->
    Some
      (Gncg_metric.Geometry.points ~norm
         (Euclidean.random_uniform rng ~n ~d ~lo:0.0 ~hi:box))
  | One_two _ | Graph_metric _ | General _ | One_inf _ -> None

let random_metric_geometry rng model ~n =
  match random_geometry rng model ~n with
  | Some geo -> (Gncg_metric.Geometry.to_metric geo, Some geo)
  | None ->
    let m =
      match model with
      | One_two { p_one } -> Gncg_metric.One_two.random rng ~n ~p_one
      | Graph_metric { p; wmin; wmax } ->
        Gncg_metric.Random_host.random_graph_metric rng ~n ~p ~wmin ~wmax
      | General { lo; hi } -> Gncg_metric.Random_host.uniform rng ~n ~lo ~hi
      | One_inf { p } -> Gncg_metric.One_inf.random_connected rng ~n ~p
      | Tree _ | Euclid _ -> assert false
    in
    (m, None)

let random_metric rng model ~n = fst (random_metric_geometry rng model ~n)

(* Which validation profile fits each model family: exact triangle checks
   for the discrete 1-2 weights, tolerant ones for closure/point-set
   metrics, weights-only for the intentionally non-metric families. *)
let validate_host model host =
  match model with
  | One_two _ -> Gncg.Host.validate ~tol:0.0 host
  | Tree _ | Euclid _ | Graph_metric _ -> Gncg.Host.validate host
  | General _ -> Gncg.Host.validate ~require_metric:false host
  | One_inf _ -> Gncg.Host.validate ~require_metric:false host

let random_host rng model ~n ~alpha =
  let m, geometry = random_metric_geometry rng model ~n in
  let host = Gncg.Host.make ?geometry ~alpha m in
  if Gncg_util.Gncg_error.strict_validation () then
    (match validate_host model host with
    | Ok () -> ()
    | Error e -> Gncg_util.Gncg_error.raise_ e);
  host

let random_profile rng host = Gncg_constructions.Brcycle.random_profile rng host

let empty_profile host = Gncg.Strategy.empty (Gncg.Host.n host)
