(** Parameter sweeps driving the statistical experiments: run response
    dynamics to a stable state, compare against the best known optimum,
    and aggregate ratios across seeds. *)

type run = {
  model : string;
  n : int;
  alpha : float;
  seed : int;
  converged : bool;
  steps : int;
  stable_cost : float;
  opt_cost : float;
  ratio : float;  (** stable/opt; NaN when not converged *)
  diameter : float;
  stretch : float;  (** spanner stretch of the stable network *)
  is_tree : bool;
}

val dynamics_run :
  ?rule:Gncg.Dynamics.rule ->
  ?max_steps:int ->
  ?evaluator:Gncg.Evaluator.t ->
  ?engine:Gncg.Dynamics.Engine.t ->
  Instances.model ->
  n:int ->
  alpha:float ->
  seed:int ->
  run
(** One seeded dynamics run from a random profile; the optimum is
    [Social_optimum.best_known] (exact on small hosts).  The dynamics run
    through the incrementally maintained distance engine by default
    ([`Incremental]); pass [`Reference] to force the from-scratch
    evaluator.  [engine] (default [Sequential]) selects the execution
    engine — outcomes are engine-independent, so sweep results are
    reproducible across both. *)

val cartesian :
  ns:int list -> alphas:float list -> seeds:int list -> (int * float * int) list
(** The batch grid in canonical order: [n]-major, then [alpha], then
    seed.  This order is a contract — the journal of the runs subsystem
    re-derives job lists from it on resume. *)

val dynamics_batch :
  ?rule:Gncg.Dynamics.rule ->
  ?max_steps:int ->
  ?evaluator:Gncg.Evaluator.t ->
  Instances.model ->
  ns:int list ->
  alphas:float list ->
  seeds:int list ->
  run list

val ratios : run list -> float list
(** Ratios of the converged runs ([[]] on an empty batch). *)

val converged_fraction : run list -> float
(** Fraction of converged runs; [0.] — not NaN — on an empty batch. *)
