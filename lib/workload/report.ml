module T = Gncg_util.Tablefmt

let print_runs runs =
  let rows =
    List.map
      (fun (r : Sweep.run) ->
        [
          r.model;
          string_of_int r.n;
          T.fl ~digits:3 r.alpha;
          string_of_int r.seed;
          (if r.converged then "yes" else "no");
          string_of_int r.steps;
          T.fl ~digits:2 r.stable_cost;
          T.fl ~digits:2 r.opt_cost;
          T.fl ~digits:4 r.ratio;
          T.fl ~digits:2 r.diameter;
          T.fl ~digits:3 r.stretch;
          (if r.is_tree then "tree" else "-");
        ])
      runs
  in
  T.print
    ~align:[ T.Left ]
    ~header:
      [
        "model"; "n"; "alpha"; "seed"; "conv"; "steps"; "stable"; "opt"; "ratio"; "diam";
        "stretch"; "shape";
      ]
    rows

let print_ratio_summary ~group_label groups =
  let rows =
    List.map
      (fun (label, runs) ->
        let rs = Sweep.ratios runs in
        let mean, worst =
          match rs with
          | [] -> (Float.nan, Float.nan)
          | _ -> (Gncg_util.Stats.mean rs, List.fold_left Float.max 0.0 rs)
        in
        [
          label;
          string_of_int (List.length runs);
          T.fl ~digits:2 (Sweep.converged_fraction runs);
          T.fl ~digits:4 mean;
          T.fl ~digits:4 worst;
        ])
      groups
  in
  T.print
    ~align:[ T.Left ]
    ~header:[ group_label; "runs"; "conv"; "mean ratio"; "worst ratio" ]
    rows

let series ~header ~rows ~title =
  print_endline title;
  T.print ~header rows

let csv_header =
  "model,n,alpha,seed,converged,steps,stable_cost,opt_cost,ratio,diameter,stretch,is_tree"

let runs_to_csv runs =
  let row (r : Sweep.run) =
    Printf.sprintf "%s,%d,%.6g,%d,%b,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%b" r.model r.n r.alpha
      r.seed r.converged r.steps r.stable_cost r.opt_cost r.ratio r.diameter r.stretch
      r.is_tree
  in
  String.concat "\n" (csv_header :: List.map row runs) ^ "\n"

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let runs_to_json runs =
  let obj (r : Sweep.run) =
    Printf.sprintf
      "{\"model\":\"%s\",\"n\":%d,\"alpha\":%s,\"seed\":%d,\"converged\":%b,\"steps\":%d,\
       \"stable_cost\":%s,\"opt_cost\":%s,\"ratio\":%s,\"diameter\":%s,\"stretch\":%s,\
       \"is_tree\":%b}"
      r.model r.n (json_float r.alpha) r.seed r.converged r.steps
      (json_float r.stable_cost) (json_float r.opt_cost) (json_float r.ratio)
      (json_float r.diameter) (json_float r.stretch) r.is_tree
  in
  "[" ^ String.concat "," (List.map obj runs) ^ "]"
