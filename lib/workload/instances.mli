(** Random game instances per model class (Fig. 1), for the statistical
    experiments and property tests. *)

type model =
  | One_two of { p_one : float }
  | Tree of { wmin : float; wmax : float }
  | Euclid of { norm : Gncg_metric.Euclidean.norm; d : int; box : float }
  | Graph_metric of { p : float; wmin : float; wmax : float }
  | General of { lo : float; hi : float }
  | One_inf of { p : float }

val model_name : model -> string

val default_models : model list
(** One representative of each class. *)

val random_metric : Gncg_util.Prng.t -> model -> n:int -> Gncg_metric.Metric.t

val random_geometry :
  Gncg_util.Prng.t -> model -> n:int -> Gncg_metric.Geometry.t option
(** The implicit description alone for the geometric models ([Tree],
    [Euclid]) — O(n) / O(n·d), no matrix; [None] for the others.  The
    large-n path: feed it to {!Gncg_metric.Geometry.to_distances}. *)

val random_metric_geometry :
  Gncg_util.Prng.t -> model -> n:int -> Gncg_metric.Metric.t * Gncg_metric.Geometry.t option
(** Tabulated host plus its description when one exists; {!random_host}
    attaches it so oracle distance backends can be auto-selected. *)

val validate_host : model -> Gncg.Host.t -> (unit, Gncg_util.Gncg_error.t) result
(** {!Gncg.Host.validate} with the profile that fits the model family:
    exact triangle checks for 1-2 weights, [Flt]-tolerant for the
    closure/point-set metrics, weights-only for the non-metric general
    and 1-∞ families. *)

val random_host : Gncg_util.Prng.t -> model -> n:int -> alpha:float -> Gncg.Host.t
(** Under {!Gncg_util.Gncg_error.strict_validation}, the generated host
    is passed through {!validate_host}; a failure raises
    {!Gncg_util.Gncg_error.Error}. *)

val random_profile : Gncg_util.Prng.t -> Gncg.Host.t -> Gncg.Strategy.t
(** Random connected profile (spanning tree + extra purchases). *)

val empty_profile : Gncg.Host.t -> Gncg.Strategy.t
