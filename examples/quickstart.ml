(* Quickstart: five offices on a plane decide, selfishly, which direct
   fiber links to lease.  We build the geometric host, let best-response
   dynamics run, and compare the stable network with the social optimum.

   Run:  dune exec examples/quickstart.exe *)

module Euclidean = Gncg_metric.Euclidean
module T = Gncg_util.Tablefmt

let () =
  (* 1. Agents are points in the plane; link prices are alpha x distance. *)
  let points =
    Euclidean.of_list
      [ [ 0.0; 0.0 ]; [ 4.0; 0.0 ]; [ 4.0; 3.0 ]; [ 0.0; 3.0 ]; [ 2.0; 1.5 ] ]
  in
  let alpha = 2.0 in
  let host = Gncg.Host.make ~alpha (Euclidean.metric L2 points) in
  Printf.printf "Host: %d agents in R^2, alpha = %g\n\n" (Gncg.Host.n host) alpha;

  (* 2. Start from an arbitrary connected network and let every agent play
        exact best responses until nobody wants to deviate. *)
  let rng = Gncg_util.Prng.create 2019 in
  let start = Gncg_workload.Instances.random_profile rng host in
  (match
     Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:500 Gncg.Dynamics.Best_response Gncg.Dynamics.Round_robin)
      host start
   with
  | Gncg.Dynamics.Converged { profile; rounds; _ } ->
    Printf.printf "Best-response dynamics converged in %d rounds.\n" rounds;
    Printf.printf "Equilibrium is a Nash equilibrium: %b\n\n"
      (Gncg.Equilibrium.is_ne host profile);
    let g = Gncg.Network.graph host profile in
    print_endline "Stable network (owner -> target, length):";
    List.iter
      (fun (u, v) -> Printf.printf "  %d -> %d   (%.2f)\n" u v (Gncg.Host.weight host u v))
      (Gncg.Strategy.owned_edges profile);
    Printf.printf "\nPer-agent costs:\n";
    T.print
      ~header:[ "agent"; "edge cost"; "distance cost"; "total" ]
      (List.init (Gncg.Host.n host) (fun u ->
           let p = Gncg.Cost.agent_parts host profile u in
           [
             string_of_int u;
             T.fl ~digits:2 p.Gncg.Cost.edge;
             T.fl ~digits:2 p.Gncg.Cost.dist;
             T.fl ~digits:2 (p.Gncg.Cost.edge +. p.Gncg.Cost.dist);
           ]));

    (* 3. Compare with the social optimum. *)
    let opt_g, opt_cost = Gncg.Social_optimum.best_known host in
    let ne_cost = Gncg.Cost.social_cost host profile in
    Printf.printf "\nSocial cost: stable = %.2f, optimum = %.2f, ratio = %.3f\n" ne_cost
      opt_cost (ne_cost /. opt_cost);
    Printf.printf "Paper bound (Thm 1): ratio <= (alpha+2)/2 = %.3f\n"
      (Gncg.Quality.metric_upper alpha);
    Printf.printf "Stable network: %d edges; optimum: %d edges\n"
      (Gncg_graph.Wgraph.m g) (Gncg_graph.Wgraph.m opt_g)
  | Gncg.Dynamics.Cycle _ -> print_endline "Dynamics cycled (no equilibrium reached)."
  | Gncg.Dynamics.Out_of_steps _ -> print_endline "Dynamics did not settle in time.")
