(* ISPs on a backbone: the T-GNCG scenario of Sec. 3.2.

   The host metric is the shortest-path metric of a (given) backbone tree
   — think of regional ISPs whose lease prices follow an existing duct
   network.  The paper proves:

   - Cor. 3: the backbone itself is both socially optimal and stable;
   - Thm. 12: every equilibrium is a tree;
   - Thm. 15: some equilibria cost (alpha+2)/2 times the optimum.

   This example demonstrates all three on one instance.

   Run:  dune exec examples/isp_tree.exe *)

module Tree_metric = Gncg_metric.Tree_metric
module T = Gncg_util.Tablefmt

let () =
  let alpha = 6.0 in
  let n = 12 in
  let rng = Gncg_util.Prng.create 99 in

  (* A random backbone. *)
  let backbone = Tree_metric.random rng ~n ~wmin:2.0 ~wmax:9.0 in
  let host = Gncg.Host.make ~alpha (Tree_metric.metric backbone) in
  let tree_g = Tree_metric.graph backbone in
  Printf.printf "Backbone tree on %d ISPs, alpha = %g\n\n" n alpha;

  (* Cor 3: backbone is stable and optimal. *)
  let backbone_profile = Gncg.Strategy.of_tree_leaf_owned tree_g 0 in
  Printf.printf "Backbone (leaf-owned) is a greedy equilibrium: %b\n"
    (Gncg.Equilibrium.is_ge host backbone_profile);
  let _, opt_cost = Gncg.Social_optimum.tree_optimum backbone host in
  Printf.printf "Backbone social cost (= optimum by Cor 3): %.1f\n\n" opt_cost;

  (* Thm 12: whatever the starting point, stable states are trees. *)
  let outcomes =
    List.init 6 (fun i ->
        let r = Gncg_util.Prng.create (1000 + i) in
        let start = Gncg_workload.Instances.random_profile r host in
        match
          Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
        with
        | Gncg.Dynamics.Converged { profile; rounds; _ } -> Some (profile, rounds)
        | _ -> None)
  in
  print_endline "Greedy dynamics from six random starts:";
  T.print
    ~header:[ "start"; "stable"; "rounds"; "tree?"; "cost"; "cost/opt" ]
    (List.mapi
       (fun i o ->
         match o with
         | None -> [ string_of_int i; "no"; "-"; "-"; "-"; "-" ]
         | Some (p, rounds) ->
           let g = Gncg.Network.graph host p in
           let c = Gncg.Cost.social_cost host p in
           [
             string_of_int i;
             "yes";
             string_of_int rounds;
             (if Gncg_graph.Connectivity.is_tree g then "tree" else "NOT TREE");
             T.fl ~digits:1 c;
             T.fl ~digits:3 (c /. opt_cost);
           ])
       outcomes);

  (* Thm 15: the adversarial star pushes the ratio to (alpha+2)/2. *)
  print_newline ();
  let worst_n = 64 in
  let whost = Gncg_constructions.Thm15_tree_star.host ~alpha ~n:worst_n in
  let wne = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha ~n:worst_n in
  let wopt = Gncg_constructions.Thm15_tree_star.opt_network ~alpha ~n:worst_n in
  let ratio =
    Gncg.Cost.social_cost whost wne /. Gncg.Cost.network_social_cost whost wopt
  in
  Printf.printf
    "Worst-case tree metric (Thm 15, n=%d): stable/optimal = %.3f; limit (a+2)/2 = %.3f\n"
    worst_n ratio
    (Gncg.Quality.metric_upper alpha)
