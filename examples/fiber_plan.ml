(* Fiber-network planning: the motivating scenario of the paper's
   introduction.  Cities (clustered points in the plane) are connected by
   fiber whose price is proportional to distance.  We compare

   - the centrally designed network (social-optimum heuristic),
   - the network selfish ISPs converge to (greedy response dynamics), and
   - the theoretical worst case (alpha+2)/2 of Thm. 1,

   across a range of alpha, and export the two extreme networks as DOT
   files for inspection.

   Run:  dune exec examples/fiber_plan.exe *)

module Euclidean = Gncg_metric.Euclidean
module T = Gncg_util.Tablefmt

let n_cities = 14

let () =
  let rng = Gncg_util.Prng.create 7 in
  let points =
    Euclidean.random_clusters rng ~n:n_cities ~d:2 ~clusters:3 ~spread:4.0 ~box:100.0
  in
  let metric = Euclidean.metric L2 points in
  Printf.printf "Fiber planning for %d cities in three metro clusters.\n\n" n_cities;
  let rows =
    List.map
      (fun alpha ->
        let host = Gncg.Host.make ~alpha metric in
        let opt_g, opt_cost = Gncg.Social_optimum.greedy_heuristic host in
        let start = Gncg.Strategy.of_graph_arbitrary_owners opt_g in
        let stable, converged =
          match
            Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
          with
          | Gncg.Dynamics.Converged { profile; _ } -> (profile, true)
          | Gncg.Dynamics.Cycle { profiles; _ } -> (List.hd profiles, false)
          | Gncg.Dynamics.Out_of_steps { profile; _ } -> (profile, false)
        in
        let stable_cost = Gncg.Cost.social_cost host stable in
        let g = Gncg.Network.graph host stable in
        [
          T.fl ~digits:2 alpha;
          T.fl ~digits:0 opt_cost;
          T.fl ~digits:0 stable_cost;
          T.fl ~digits:3 (stable_cost /. opt_cost);
          T.fl ~digits:3 (Gncg.Quality.metric_upper alpha);
          string_of_int (Gncg_graph.Wgraph.m g);
          (if converged then "yes" else "no");
        ])
      [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
  in
  T.print
    ~header:[ "alpha"; "opt cost"; "selfish cost"; "ratio"; "(a+2)/2"; "edges"; "stable" ]
    rows;
  print_newline ();

  (* Export one instance for inspection. *)
  let alpha = 4.0 in
  let host = Gncg.Host.make ~alpha metric in
  let opt_g, _ = Gncg.Social_optimum.greedy_heuristic host in
  let start = Gncg.Strategy.of_graph_arbitrary_owners opt_g in
  (match
     Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
   with
  | Gncg.Dynamics.Converged { profile; _ } ->
    let g = Gncg.Network.graph host profile in
    Gncg_graph.Dot.to_file "fiber_optimum.dot" opt_g;
    Gncg_graph.Dot.to_file "fiber_selfish.dot" g;
    print_endline "Wrote fiber_optimum.dot and fiber_selfish.dot (render with graphviz).";
    Printf.printf "Selfish network stretch over the plane: %.3f (Lemma 1 bound: %.3f)\n"
      (Gncg.Quality.host_stretch host g)
      (Gncg.Quality.ae_spanner_stretch alpha)
  | _ -> print_endline "dynamics did not converge at alpha=4; no DOT export")
