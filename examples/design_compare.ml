(* Network design, centralized vs decentralized.

   The paper frames low-cost equilibria as "decentralized and stable
   approximations of the optimum network design".  This example makes the
   comparison concrete on one realistic instance (a metro-area graph
   metric): for several designs of the same host we tabulate cost,
   structure and stretch, and check which are stable.

     - MST              cheapest possible edge cost, long detours
     - greedy OPT       steepest-descent network-design heuristic
     - annealed OPT     simulated-annealing refinement
     - complete host    minimum distances, absurd edge cost
     - selfish (GE)     greedy-response equilibrium from a random start
     - opt-seeded (GE)  equilibrium reached from the heuristic optimum

   Run:  dune exec examples/design_compare.exe *)

module Wgraph = Gncg_graph.Wgraph
module T = Gncg_util.Tablefmt

let () =
  let rng = Gncg_util.Prng.create 1234 in
  let alpha = 3.0 in
  (* Host: shortest-path metric of a random connected "street" graph. *)
  let streets = Gncg_graph.Generators.gnp_connected rng ~n:16 ~p:0.2 ~wmin:1.0 ~wmax:8.0 in
  let host = Gncg.Host.make ~alpha (Gncg_metric.Metric.of_graph_closure streets) in
  let n = Gncg.Host.n host in
  Printf.printf "Host: %d-agent graph metric, alpha = %g\n\n" n alpha;

  let designs = ref [] in
  let add name ?profile graph =
    let stats =
      match profile with
      | Some s -> Gncg.Net_stats.of_profile host s
      | None -> Gncg.Net_stats.of_network host graph
    in
    let stable =
      match profile with
      | Some s -> if Gncg.Equilibrium.is_ge host s then "GE" else "no"
      | None -> (
        (* Is there any ownership making it greedy-stable?  Too expensive
           to enumerate in general; test the canonical orientation. *)
        match Gncg_graph.Connectivity.is_connected graph with
        | true ->
          if Gncg.Equilibrium.is_ge host (Gncg.Strategy.of_graph_arbitrary_owners graph)
          then "GE*"
          else "no"
        | false -> "no")
    in
    designs := (name, stats, stable) :: !designs
  in

  let mst =
    Wgraph.of_edges n (Gncg_graph.Mst.prim_complete n (fun u v -> Gncg.Host.weight host u v))
  in
  add "MST" mst;
  let greedy_g, _ = Gncg.Social_optimum.greedy_heuristic host in
  add "greedy OPT" greedy_g;
  let anneal_g, _ = Gncg.Social_optimum.anneal ~seed:5 ~steps:1500 host in
  add "annealed OPT" anneal_g;
  add "complete host" (Gncg_metric.Metric.complete_graph (Gncg.Host.metric host));

  let start = Gncg_workload.Instances.random_profile rng host in
  (match
     Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:6000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
   with
  | Gncg.Dynamics.Converged { profile; _ } -> add "selfish (random start)" ~profile (Gncg.Network.graph host profile)
  | _ -> print_endline "note: selfish dynamics did not settle");
  (match Gncg.Price_of_stability.stable_from_optimum host with
  | Some (profile, _) -> add "selfish (opt-seeded)" ~profile (Gncg.Network.graph host profile)
  | None -> print_endline "note: opt-seeded dynamics did not settle");

  let baseline =
    List.fold_left
      (fun acc (_, s, _) -> Float.min acc s.Gncg.Net_stats.social_cost)
      Float.infinity !designs
  in
  T.print
    ~align:[ T.Left ]
    ~header:(("design" :: Gncg.Net_stats.header) @ [ "vs best"; "stable" ])
    (List.rev_map
       (fun (name, s, stable) ->
         (name :: Gncg.Net_stats.row s)
         @ [ T.fl ~digits:3 (s.Gncg.Net_stats.social_cost /. baseline); stable ])
       !designs);
  Printf.printf
    "\nLemma 1 bound on any equilibrium's stretch: %.2f;  Thm 1 bound on its cost: %.2f x best\n"
    (Gncg.Quality.ae_spanner_stretch alpha)
    (Gncg.Quality.metric_upper alpha)
