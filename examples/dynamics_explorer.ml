(* Dynamics explorer: a small CLI over the response-dynamics engine.

   Examples:
     dune exec examples/dynamics_explorer.exe -- --model tree --n 8 --alpha 2 --seeds 10
     dune exec examples/dynamics_explorer.exe -- --model one-two --rule br --alpha 0.4
     dune exec examples/dynamics_explorer.exe -- --model general --rule greedy --hunt-cycles *)

open Cmdliner

let model_of_string = function
  | "one-two" -> Ok (Gncg_workload.Instances.One_two { p_one = 0.4 })
  | "tree" -> Ok (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 10.0 })
  | "euclid" -> Ok (Gncg_workload.Instances.Euclid { norm = L2; d = 2; box = 100.0 })
  | "l1" -> Ok (Gncg_workload.Instances.Euclid { norm = L1; d = 2; box = 100.0 })
  | "graph" -> Ok (Gncg_workload.Instances.Graph_metric { p = 0.3; wmin = 1.0; wmax = 10.0 })
  | "general" -> Ok (Gncg_workload.Instances.General { lo = 1.0; hi = 10.0 })
  | "one-inf" -> Ok (Gncg_workload.Instances.One_inf { p = 0.3 })
  | s -> Error (`Msg (Printf.sprintf "unknown model %S" s))

let rule_of_string = function
  | "br" -> Ok Gncg.Dynamics.Best_response
  | "greedy" -> Ok Gncg.Dynamics.Greedy_response
  | "add" -> Ok Gncg.Dynamics.Add_only
  | s -> Error (`Msg (Printf.sprintf "unknown rule %S" s))

let run model rule n alpha seeds max_steps hunt_cycles =
  if hunt_cycles then begin
    let rng = Gncg_util.Prng.create 4242 in
    ignore rule;
    (* Cycle hunting uses the full rule battery (greedy / random improving
       / best response): a single rule finds far fewer cycles. *)
    Printf.printf "Hunting improving-move cycles (%d hosts)...\n%!" seeds;
    match
      Gncg_constructions.Brcycle.search_generated ~tries:seeds ~max_steps
        ~host_gen:(fun r -> Gncg_workload.Instances.random_host r model ~n ~alpha)
        rng
    with
    | Some f ->
      Printf.printf "Cycle of %d states found; certificate valid: %b\n"
        (List.length f.cycle - 1)
        (Gncg_constructions.Brcycle.verify_cycle f.host f.cycle)
    | None -> print_endline "No cycle found within the budget."
  end
  else begin
    let runs =
      List.init seeds (fun seed ->
          Gncg_workload.Sweep.dynamics_run ~rule ~max_steps model ~n ~alpha ~seed)
    in
    Gncg_workload.Report.print_runs runs;
    Printf.printf "\nconverged: %.0f%%\n"
      (100.0 *. Gncg_workload.Sweep.converged_fraction runs)
  end

let model_arg =
  let mconv = Arg.conv ~docv:"MODEL" (model_of_string, fun fmt _ -> Format.fprintf fmt "<model>") in
  Arg.(value & opt mconv (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 10.0 })
       & info [ "model" ] ~doc:"one-two | tree | euclid | l1 | graph | general | one-inf")

let rule_arg =
  let rconv = Arg.conv ~docv:"RULE" (rule_of_string, fun fmt _ -> Format.fprintf fmt "<rule>") in
  Arg.(value & opt rconv Gncg.Dynamics.Greedy_response
       & info [ "rule" ] ~doc:"br | greedy | add")

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~doc:"number of agents")

let alpha_arg = Arg.(value & opt float 2.0 & info [ "alpha" ] ~doc:"edge price factor")

let seeds_arg = Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"number of seeded runs")

let steps_arg = Arg.(value & opt int 4000 & info [ "max-steps" ] ~doc:"activation budget")

let hunt_arg = Arg.(value & flag & info [ "hunt-cycles" ] ~doc:"search for improving-move cycles")

let cmd =
  let doc = "explore GNCG response dynamics" in
  Cmd.v
    (Cmd.info "dynamics_explorer" ~doc)
    Term.(const run $ model_arg $ rule_arg $ n_arg $ alpha_arg $ seeds_arg $ steps_arg $ hunt_arg)

let () = exit (Cmd.eval cmd)
