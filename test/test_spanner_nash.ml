open Helpers
module Prng = Gncg_util.Prng
module Sn = Gncg.Spanner_nash
module Host = Gncg.Host
module One_two = Gncg_metric.One_two

let random_host r ~n ~alpha = Host.make ~alpha (One_two.random r ~n ~p_one:0.5)

let test_spanner_check () =
  let m = One_two.of_one_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let host = Host.make ~alpha:0.8 m in
  let path = One_two.one_subgraph m in
  (* d(0,3) = 3 <= 3 fine, but the 2-edge pairs (0,2) and (1,3) are at
     distance 2 <= 3 — the path of 1-edges is already a 3/2-spanner. *)
  check_true "path is 3/2-spanner" (Sn.is_three_half_spanner host path);
  Gncg_graph.Wgraph.remove_edge path 1 2;
  check_false "broken path is not" (Sn.is_three_half_spanner host path)

let test_exact_spanner_properties () =
  let r = rng 600 in
  for _ = 1 to 8 do
    let n = 5 in
    let host = random_host r ~n ~alpha:0.8 in
    let g = Sn.min_weight_spanner_exact host in
    check_true "is 3/2-spanner" (Sn.is_three_half_spanner host g);
    (* Lemma 5: contains every 1-edge and has diameter <= 3. *)
    List.iter
      (fun (u, v) -> check_true "1-edge present" (Gncg_graph.Wgraph.has_edge g u v))
      (One_two.one_edges (Host.metric host));
    check_true "diameter <= 3" (Gncg_graph.Dijkstra.diameter g <= 3.0 +. 1e-9)
  done

let test_heuristic_not_below_exact () =
  let r = rng 601 in
  for _ = 1 to 8 do
    let n = 5 in
    let host = random_host r ~n ~alpha:0.8 in
    let exact = Sn.min_weight_spanner_exact host in
    let heur = Sn.min_weight_spanner_heuristic host in
    check_true "heuristic is spanner" (Sn.is_three_half_spanner host heur);
    check_true "exact weight <= heuristic weight"
      (Gncg_graph.Wgraph.total_weight exact <= Gncg_graph.Wgraph.total_weight heur +. 1e-9)
  done

let test_thm5_nash_ownership_exists () =
  (* Thm 5: for 1/2 <= alpha <= 1 a min-weight 3/2-spanner admits a NE
     ownership. *)
  let r = rng 602 in
  for trial = 1 to 6 do
    let n = 5 in
    let alpha = 0.5 +. Prng.float r 0.5 in
    let host = random_host r ~n ~alpha in
    let g = Sn.min_weight_spanner_exact host in
    if Gncg_graph.Wgraph.m g <= 12 then
      match Sn.nash_ownership host g with
      | Some s ->
        check_true "found ownership is NE" (Gncg.Equilibrium.is_ne host s);
        check_true "network preserved"
          (Gncg_graph.Wgraph.equal (Gncg.Network.graph host s) g)
      | None -> Alcotest.failf "trial %d (alpha=%g): no NE ownership found" trial alpha
  done

let test_onetwo_guard () =
  let host = Host.make ~alpha:0.8 (Gncg_metric.Metric.make 4 (fun _ _ -> 3.0)) in
  Alcotest.check_raises "non 1-2 rejected"
    (Invalid_argument "Spanner_nash: host is not a 1-2 graph") (fun () ->
      ignore (Sn.min_weight_spanner_heuristic host))

let test_ownership_orientations_count () =
  let g = Gncg_graph.Wgraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let all = List.of_seq (Gncg.Ownership.orientations g) in
  Alcotest.(check int) "2^m orientations" 4 (List.length all);
  let keys = List.sort_uniq compare (List.map Gncg.Strategy.canonical_key all) in
  Alcotest.(check int) "all distinct" 4 (List.length keys)

let suites =
  [
    ( "spanner-nash",
      [
        case "3/2-spanner check" test_spanner_check;
        case "exact min-weight spanner (Lemma 5)" test_exact_spanner_properties;
        case "heuristic vs exact" test_heuristic_not_below_exact;
        slow_case "Thm 5: NE ownership exists" test_thm5_nash_ownership_exists;
        case "1-2 guard" test_onetwo_guard;
        case "ownership enumeration" test_ownership_orientations_count;
      ] );
  ]
