open Helpers
module S = Gncg.Serialize
module Prng = Gncg_util.Prng

let test_host_roundtrip () =
  let r = rng 1500 in
  List.iter
    (fun model ->
      let host = Gncg_workload.Instances.random_host r model ~n:7 ~alpha:2.25 in
      let host' = S.host_of_string (S.host_to_string host) in
      check_float "alpha preserved" (Gncg.Host.alpha host) (Gncg.Host.alpha host');
      check_true "metric preserved"
        (Gncg_metric.Metric.equal ~tol:0.0 (Gncg.Host.metric host) (Gncg.Host.metric host')))
    Gncg_workload.Instances.default_models

let test_profile_roundtrip () =
  let r = rng 1501 in
  let host = Gncg_workload.Instances.random_host r (List.hd Gncg_workload.Instances.default_models) ~n:8 ~alpha:1.0 in
  for _ = 1 to 5 do
    let s = Gncg_workload.Instances.random_profile r host in
    let s' = S.profile_of_string (S.profile_to_string s) in
    check_true "profile preserved" (Gncg.Strategy.equal s s')
  done

let test_infinite_weights_roundtrip () =
  let m = Gncg_metric.One_inf.of_allowed_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let host = Gncg.Host.make ~alpha:3.0 m in
  let host' = S.host_of_string (S.host_to_string host) in
  check_true "forbidden edge stays infinite"
    (Gncg.Host.weight host' 0 3 = Float.infinity);
  check_float "allowed edge" 1.0 (Gncg.Host.weight host' 0 1)

let test_file_roundtrip () =
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:2.0 ~n:5 in
  let path = Filename.temp_file "gncg" ".host" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.host_to_file path host;
      let host' = S.host_of_file path in
      check_true "file roundtrip"
        (Gncg_metric.Metric.equal ~tol:0.0 (Gncg.Host.metric host) (Gncg.Host.metric host')));
  let s = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:2.0 ~n:5 in
  let path = Filename.temp_file "gncg" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.profile_to_file path s;
      check_true "profile file roundtrip" (Gncg.Strategy.equal s (S.profile_of_file path)))

let expect_failure name f =
  match f () with
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: expected Failure" name

let test_malformed_rejected () =
  expect_failure "empty" (fun () -> S.host_of_string "");
  expect_failure "wrong magic" (fun () -> S.host_of_string "gncg-profile 1\nn 2\nalpha 1\n");
  expect_failure "missing alpha" (fun () -> S.host_of_string "gncg-host 1\nn 2\n");
  expect_failure "bad pair" (fun () ->
      S.host_of_string "gncg-host 1\nn 2\nalpha 1\nw 0 5 1.0\n");
  expect_failure "bad number" (fun () ->
      S.host_of_string "gncg-host 1\nn 2\nalpha 1\nw 0 1 zzz\n");
  expect_failure "self purchase" (fun () ->
      S.profile_of_string "gncg-profile 1\nn 3\nbuy 1 1\n")

let test_comments_and_blank_lines () =
  let text = "gncg-host 1\n\n# a comment\nn 2\nalpha 1.5\nw 0 1 2.0\n\n" in
  let host = S.host_of_string text in
  check_float "weight parsed" 2.0 (Gncg.Host.weight host 0 1)

let suites =
  [
    ( "serialize",
      [
        case "host roundtrip (all models)" test_host_roundtrip;
        case "profile roundtrip" test_profile_roundtrip;
        case "infinite weights" test_infinite_weights_roundtrip;
        case "file roundtrip" test_file_roundtrip;
        case "malformed rejected" test_malformed_rejected;
        case "comments tolerated" test_comments_and_blank_lines;
      ] );
  ]
