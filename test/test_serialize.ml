open Helpers
module S = Gncg.Serialize
module Prng = Gncg_util.Prng

let test_host_roundtrip () =
  let r = rng 1500 in
  List.iter
    (fun model ->
      let host = Gncg_workload.Instances.random_host r model ~n:7 ~alpha:2.25 in
      let host' = S.host_of_string (S.host_to_string host) in
      check_float "alpha preserved" (Gncg.Host.alpha host) (Gncg.Host.alpha host');
      check_true "metric preserved"
        (Gncg_metric.Metric.equal ~tol:0.0 (Gncg.Host.metric host) (Gncg.Host.metric host')))
    Gncg_workload.Instances.default_models

let test_profile_roundtrip () =
  let r = rng 1501 in
  let host = Gncg_workload.Instances.random_host r (List.hd Gncg_workload.Instances.default_models) ~n:8 ~alpha:1.0 in
  for _ = 1 to 5 do
    let s = Gncg_workload.Instances.random_profile r host in
    let s' = S.profile_of_string (S.profile_to_string s) in
    check_true "profile preserved" (Gncg.Strategy.equal s s')
  done

let test_infinite_weights_roundtrip () =
  let m = Gncg_metric.One_inf.of_allowed_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let host = Gncg.Host.make ~alpha:3.0 m in
  let host' = S.host_of_string (S.host_to_string host) in
  check_true "forbidden edge stays infinite"
    (Gncg.Host.weight host' 0 3 = Float.infinity);
  check_float "allowed edge" 1.0 (Gncg.Host.weight host' 0 1)

let test_file_roundtrip () =
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:2.0 ~n:5 in
  let path = Filename.temp_file "gncg" ".host" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.host_to_file path host;
      let host' = S.host_of_file path in
      check_true "file roundtrip"
        (Gncg_metric.Metric.equal ~tol:0.0 (Gncg.Host.metric host) (Gncg.Host.metric host')));
  let s = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:2.0 ~n:5 in
  let path = Filename.temp_file "gncg" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.profile_to_file path s;
      check_true "profile file roundtrip" (Gncg.Strategy.equal s (S.profile_of_file path)))

module E = Gncg_util.Gncg_error

let expect_failure name f =
  match f () with
  | exception E.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected Gncg_error.Error" name

let expect_error name result check =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected a typed error" name
  | Error e ->
    if not (check e) then Alcotest.failf "%s: wrong error: %s" name (E.to_string e)

let test_malformed_rejected () =
  expect_failure "empty" (fun () -> S.host_of_string "");
  expect_failure "wrong magic" (fun () -> S.host_of_string "gncg-profile 1\nn 2\nalpha 1\n");
  expect_failure "missing alpha" (fun () -> S.host_of_string "gncg-host 1\nn 2\n");
  expect_failure "bad pair" (fun () ->
      S.host_of_string "gncg-host 1\nn 2\nalpha 1\nw 0 5 1.0\n");
  expect_failure "bad number" (fun () ->
      S.host_of_string "gncg-host 1\nn 2\nalpha 1\nw 0 1 zzz\n");
  expect_failure "self purchase" (fun () ->
      S.profile_of_string "gncg-profile 1\nn 3\nbuy 1 1\n")

(* Malformed fixtures must produce *located* typed errors: the kind
   matches the defect and the location names the offending line (and
   column for bad numbers). *)
let test_malformed_fixture_locations () =
  expect_error "bad number line+column"
    (S.host_of_string_result "gncg-host 1\nn 2\nalpha 1\nw 0 1 zzz\n")
    (fun e ->
      e.E.kind = E.Parse && e.E.where = E.Line_column (4, 7));
  expect_error "missing header"
    (S.host_of_string_result "n 2\nalpha 1\nw 0 1 2.0\n")
    (fun e -> e.E.kind = E.Parse && e.E.where = E.Line 1);
  expect_error "truncated purchase list"
    (S.profile_of_string_result "gncg-profile 1\nn 3\nbuy 0 1\nbuy 2\n")
    (fun e -> e.E.kind = E.Parse && e.E.where = E.Line 4);
  expect_error "negative weight kind"
    (S.host_of_string_result "gncg-host 1\nn 2\nalpha 1\nw 0 1 -3.0\n")
    (fun e -> e.E.kind = E.Negative && e.E.where = E.Line 4);
  expect_error "NaN weight kind"
    (S.host_of_string_result "gncg-host 1\nn 2\nalpha 1\nw 0 1 nan\n")
    (fun e -> e.E.kind = E.Not_finite && e.E.where = E.Line 4);
  expect_error "non-positive alpha"
    (S.host_of_string_result "gncg-host 1\nn 2\nalpha 0\nw 0 1 2.0\n")
    (fun e -> e.E.kind = E.Negative && e.E.where = E.Line 3);
  expect_error "file errors carry the path"
    (S.host_of_file_result "/nonexistent/gncg.host")
    (fun e -> e.E.kind = E.Io && e.E.where = E.File "/nonexistent/gncg.host")

(* Bad fixtures round-trip through a file: writing the malformed text
   and loading it reports the same located error as the string parser. *)
let test_malformed_fixture_file_roundtrip () =
  let fixtures =
    [
      ("bad-number", "gncg-host 1\nn 2\nalpha 1\nw 0 1 zzz\n");
      ("missing-header", "n 2\nalpha 1\n");
      ("bad-alpha", "gncg-host 1\nn 2\nalpha oops\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      let path = Filename.temp_file "gncg_bad" ".host" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          match (S.host_of_string_result text, S.host_of_file_result path) with
          | Ok _, _ | _, Ok _ -> Alcotest.failf "%s: fixture accepted" name
          | Error es, Error ef ->
            check_true (name ^ ": same kind") (es.E.kind = ef.E.kind);
            check_true (name ^ ": file location attached")
              (match ef.E.where with
              | E.File p | E.File_line (p, _) -> p = path
              | _ -> false)))
    fixtures

let test_validate_on_load () =
  (* vertex 2 has no finite-weight path: accepted by default, rejected
     with a typed Disconnected error under ?validate / strict mode. *)
  let text = "gncg-host 1\nn 3\nalpha 1\nw 0 1 2.0\n" in
  (match S.host_of_string_result text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "default load rejected: %s" (E.to_string e));
  expect_error "validate rejects disconnected"
    (S.host_of_string_result ~validate:true text)
    (fun e -> e.E.kind = E.Disconnected);
  E.set_strict_validation true;
  Fun.protect
    ~finally:(fun () -> E.set_strict_validation false)
    (fun () ->
      expect_error "strict mode implies validation" (S.host_of_string_result text)
        (fun e -> e.E.kind = E.Disconnected))

let test_comments_and_blank_lines () =
  let text = "gncg-host 1\n\n# a comment\nn 2\nalpha 1.5\nw 0 1 2.0\n\n" in
  let host = S.host_of_string text in
  check_float "weight parsed" 2.0 (Gncg.Host.weight host 0 1)

let suites =
  [
    ( "serialize",
      [
        case "host roundtrip (all models)" test_host_roundtrip;
        case "profile roundtrip" test_profile_roundtrip;
        case "infinite weights" test_infinite_weights_roundtrip;
        case "file roundtrip" test_file_roundtrip;
        case "malformed rejected" test_malformed_rejected;
        case "malformed fixtures located" test_malformed_fixture_locations;
        case "malformed fixtures via files" test_malformed_fixture_file_roundtrip;
        case "validation on load" test_validate_on_load;
        case "comments tolerated" test_comments_and_blank_lines;
      ] );
  ]
