open Helpers
module Prng = Gncg_util.Prng
module Fr = Gncg.Fast_response

let random_setup r ~n =
  let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 5) in
  let host =
    Gncg_workload.Instances.random_host r model ~n ~alpha:(0.5 +. Prng.float r 3.0)
  in
  let s = Gncg_workload.Instances.random_profile r host in
  (host, s)

let test_gains_match_reference () =
  let r = rng 1100 in
  for trial = 1 to 12 do
    let n = 5 + Prng.int r 4 in
    let host, s = random_setup r ~n in
    let agent = Prng.int r n in
    List.iter
      (fun (mv, fast_gain) ->
        let slow_gain = Gncg.Greedy.move_gain host s ~agent mv in
        if not (approx ~tol:1e-6 fast_gain slow_gain) then
          Alcotest.failf "trial %d agent %d move %s: fast=%g slow=%g" trial agent
            (Format.asprintf "%a" Gncg.Move.pp mv)
            fast_gain slow_gain)
      (Fr.move_gains host s ~agent)
  done

let test_best_move_equivalent () =
  let r = rng 1101 in
  for _ = 1 to 12 do
    let n = 5 + Prng.int r 4 in
    let host, s = random_setup r ~n in
    let agent = Prng.int r n in
    let fast = Fr.best_move host s ~agent in
    let slow = Gncg.Greedy.best_move host s ~agent in
    match (fast, slow) with
    | None, None -> ()
    | Some (_, gf), Some (_, gs) ->
      (* Moves may differ on exact ties; the achieved gain must agree. *)
      check_float ~tol:1e-6 "same best gain" gs gf
    | Some (mv, g), None ->
      Alcotest.failf "fast found %s gain %g where reference found none"
        (Format.asprintf "%a" Gncg.Move.pp mv) g
    | None, Some (mv, g) ->
      Alcotest.failf "reference found %s gain %g where fast found none"
        (Format.asprintf "%a" Gncg.Move.pp mv) g
  done

let test_round_add_gains_match () =
  let r = rng 1102 in
  for _ = 1 to 8 do
    let n = 5 + Prng.int r 3 in
    let host, s = random_setup r ~n in
    let batch = Fr.round_add_gains host s in
    (* Every batched gain agrees with the reference evaluator, and every
       improving addition the reference finds appears in the batch. *)
    List.iter
      (fun (u, v, gain) ->
        let slow = Gncg.Greedy.move_gain host s ~agent:u (Gncg.Move.Add v) in
        check_float ~tol:1e-6 "batched gain correct" slow gain)
      batch;
    for u = 0 to n - 1 do
      List.iter
        (fun mv ->
          match mv with
          | Gncg.Move.Add v ->
            let slow = Gncg.Greedy.move_gain host s ~agent:u mv in
            if slow > 1e-6 then
              check_true "improving addition present in batch"
                (List.exists (fun (u', v', _) -> u' = u && v' = v) batch)
          | _ -> ())
        (Gncg.Move.candidates ~kinds:[ `Add ] host s ~agent:u)
    done
  done

let test_graph_restored_after_evaluation () =
  (* move_gains edits its private network copy, never the caller's data:
     evaluating twice must give identical results. *)
  let r = rng 1103 in
  let host, s = random_setup r ~n:6 in
  let a = Fr.move_gains host s ~agent:2 in
  let b = Fr.move_gains host s ~agent:2 in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun (_, ga) (_, gb) -> check_float ~tol:0.0 "bit-identical" ga gb)
    a b

let test_dynamics_evaluators_agree () =
  (* Full dynamics runs under the reference and fast evaluators reach
     equally good stable states (profiles may differ on exact ties). *)
  let r = rng 1106 in
  for _ = 1 to 6 do
    let n = 6 + Prng.int r 3 in
    let host, start = random_setup r ~n in
    let run evaluator =
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 ~evaluator Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
    in
    match (run `Reference, run `Fast) with
    | ( Gncg.Dynamics.Converged { profile = a; _ },
        Gncg.Dynamics.Converged { profile = b; _ } ) ->
      check_true "fast result is GE" (Gncg.Equilibrium.is_ge host b);
      check_float ~tol:1e-6 "same social cost"
        (Gncg.Cost.social_cost host a)
        (Gncg.Cost.social_cost host b)
    | _ -> () (* cycles/budget: nothing to compare *)
  done

(* --- parallel helpers ---------------------------------------------------- *)

let test_parallel_init_matches_sequential () =
  let f i = float_of_int (i * i) +. 1.0 in
  for n = 0 to 40 do
    Alcotest.(check (array (float 0.0)))
      "init matches" (Array.init n f)
      (Gncg_util.Parallel.init ~domains:4 n f)
  done

let test_parallel_map () =
  let a = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int)) "map matches" (Array.map (fun x -> x * 3) a)
    (Gncg_util.Parallel.map_array ~domains:3 (fun x -> x * 3) a)

let test_apsp_parallel_matches () =
  let r = rng 1104 in
  let g = random_graph r 25 40 in
  let seq = Gncg_graph.Dijkstra.apsp g in
  let par = Gncg_graph.Dijkstra.apsp ~exec:(Gncg_util.Exec.Par { domains = Some 4 }) g in
  for u = 0 to 24 do
    Alcotest.(check (array (float 1e-9))) "row matches" seq.(u) par.(u)
  done

let test_social_cost_parallel_matches () =
  let r = rng 1105 in
  let host, s = random_setup r ~n:12 in
  let exec = Gncg_util.Exec.Par { domains = Some 4 } in
  check_float ~tol:1e-6 "social cost matches"
    (Gncg.Cost.social_cost host s)
    (Gncg.Cost.social_cost ~exec host s);
  let g = Gncg.Network.graph host s in
  check_float ~tol:1e-6 "network cost matches"
    (Gncg.Cost.network_social_cost host g)
    (Gncg.Cost.network_social_cost ~exec host g)

let suites =
  [
    ( "fast-response",
      [
        case "gains match reference" test_gains_match_reference;
        case "best move equivalent" test_best_move_equivalent;
        case "batched add gains" test_round_add_gains_match;
        case "evaluation is effect-free" test_graph_restored_after_evaluation;
        case "dynamics evaluators agree" test_dynamics_evaluators_agree;
      ] );
    ( "parallel",
      [
        case "init matches sequential" test_parallel_init_matches_sequential;
        case "map matches" test_parallel_map;
        case "apsp parallel" test_apsp_parallel_matches;
        case "social cost parallel" test_social_cost_parallel_matches;
      ] );
  ]
