open Helpers
module Prng = Gncg_util.Prng
module Dyn = Gncg.Dynamics
module Eq = Gncg.Equilibrium
module Strategy = Gncg.Strategy

let small_metric_host r ~n ~alpha =
  Gncg.Host.make ~alpha (Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0)

let test_converged_is_equilibrium () =
  let r = rng 400 in
  let checked = ref 0 in
  for _ = 1 to 10 do
    let host = small_metric_host r ~n:6 ~alpha:(0.5 +. Prng.float r 2.0) in
    let start = Gncg_workload.Instances.random_profile r host in
    (match
       Dyn.run (Dyn.Config.make ~max_steps:4000 Dyn.Greedy_response Dyn.Round_robin) host start
     with
    | Dyn.Converged { profile; _ } ->
      incr checked;
      check_true "converged => GE" (Eq.is_ge host profile)
    | _ -> ());
    match
      Dyn.run (Dyn.Config.make ~max_steps:600 Dyn.Best_response Dyn.Round_robin) host start
    with
    | Dyn.Converged { profile; _ } ->
      incr checked;
      check_true "converged => NE" (Eq.is_ne host profile)
    | _ -> ()
  done;
  check_true "at least some runs converged" (!checked > 0)

let test_add_only_always_converges () =
  let r = rng 401 in
  for _ = 1 to 10 do
    let host = small_metric_host r ~n:7 ~alpha:1.0 in
    (* Start connected: from the empty profile a single purchase cannot
       rescue an infinite cost, so add-only dynamics idle there. *)
    let start = Gncg_workload.Instances.random_profile r host in
    match
      Dyn.run (Dyn.Config.make ~max_steps:5000 Dyn.Add_only Dyn.Round_robin) host start
    with
    | Dyn.Converged { profile; _ } ->
      check_true "result is AE" (Eq.is_ae host profile);
      check_true "result connected" (Gncg.Network.is_connected host profile)
    | _ -> Alcotest.fail "add-only dynamics cannot cycle (edge set grows)"
  done;
  (* The empty-start plateau itself: dynamics converge immediately. *)
  let host = small_metric_host r ~n:6 ~alpha:1.0 in
  match
    Dyn.run (Dyn.Config.make ~max_steps:100 Dyn.Add_only Dyn.Round_robin) host (Strategy.empty 6)
  with
  | Dyn.Converged { profile; steps; _ } ->
    check_true "no moves from empty" (steps = []);
    check_true "still empty" (Strategy.equal profile (Strategy.empty 6))
  | _ -> Alcotest.fail "empty start must converge instantly"

let test_steps_strictly_improve () =
  let r = rng 402 in
  let host = small_metric_host r ~n:6 ~alpha:1.5 in
  let start = Gncg_workload.Instances.random_profile r host in
  match Dyn.run (Dyn.Config.make ~max_steps:2000 Dyn.Greedy_response Dyn.Round_robin) host start with
  | Dyn.Converged { steps; _ } | Dyn.Cycle { steps; _ } | Dyn.Out_of_steps { steps; _ } ->
    List.iter
      (fun (st : Dyn.step) ->
        check_true "strict improvement" (st.after_cost < st.before_cost))
      steps

let test_deviation_none_at_ne () =
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:2.0 ~n:5 in
  let ne = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:2.0 ~n:5 in
  for u = 0 to 4 do
    check_true "no deviation at NE" (Dyn.deviation Dyn.Best_response host ne u = None)
  done

let test_out_of_steps () =
  let r = rng 403 in
  let host = small_metric_host r ~n:6 ~alpha:1.0 in
  let start = Strategy.empty 6 in
  match Dyn.run (Dyn.Config.make ~max_steps:1 Dyn.Add_only Dyn.Round_robin) host start with
  | Dyn.Out_of_steps _ -> ()
  | Dyn.Converged _ -> Alcotest.fail "cannot converge in one step from empty"
  | Dyn.Cycle _ -> Alcotest.fail "cannot cycle in one step"

let test_random_scheduler_runs () =
  let r = rng 404 in
  let host = small_metric_host r ~n:5 ~alpha:1.0 in
  let start = Gncg_workload.Instances.random_profile r host in
  let scheduler = Dyn.Random_order (Prng.create 99) in
  match Dyn.run (Dyn.Config.make ~max_steps:3000 Dyn.Greedy_response scheduler) host start with
  | Dyn.Converged { profile; _ } -> check_true "GE under random order" (Eq.is_ge host profile)
  | Dyn.Cycle { profiles; _ } ->
    check_true "cycle is verified" (Gncg_constructions.Brcycle.verify_cycle host profiles)
  | Dyn.Out_of_steps _ -> ()

let test_cycle_certificates_verified () =
  (* Hunt for improving-move cycles on small hosts; every reported cycle
     must pass independent verification.  (Existence is exercised again in
     the FIP experiment E10.) *)
  let r = rng 405 in
  let found = ref 0 in
  for _ = 1 to 30 do
    let n = 4 + Prng.int r 3 in
    let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 5) in
    let host = Gncg_workload.Instances.random_host r model ~n ~alpha:(0.5 +. Prng.float r 3.0) in
    match Gncg_constructions.Brcycle.search_host ~tries:3 ~max_steps:300 r host with
    | Some f ->
      incr found;
      check_true "certificate verifies" (Gncg_constructions.Brcycle.verify_cycle f.host f.cycle)
    | None -> ()
  done;
  (* Not finding any cycle is possible but unexpected; record it loudly. *)
  if !found = 0 then Printf.printf "  note: no improving cycles found in this search budget\n"

let suites =
  [
    ( "dynamics",
      [
        case "converged profiles are equilibria" test_converged_is_equilibrium;
        case "add-only always converges" test_add_only_always_converges;
        case "steps strictly improve" test_steps_strictly_improve;
        case "no deviation at NE" test_deviation_none_at_ne;
        case "out of steps" test_out_of_steps;
        case "random scheduler" test_random_scheduler_runs;
        slow_case "cycle certificates verify" test_cycle_certificates_verified;
      ] );
  ]
