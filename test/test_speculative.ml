(* The speculative dynamics engine: byte-identical equivalence to the
   sequential engine — same outcome constructor, same step list, same
   rounds, structurally equal profiles — across rules, schedulers,
   evaluators, execution shapes, and all distance backends; plus the
   conflict chaos case (hub instances where commits keep invalidating
   speculations) and the Engine/Config surface itself. *)

module Dyn = Gncg.Dynamics
module Prng = Gncg_util.Prng
module Exec = Gncg_util.Exec
module Metric = Gncg_obs.Metric
module D = Gncg_graph.Distances

let check_true msg b = Alcotest.(check bool) msg true b

let random_game seed ~n =
  let r = Prng.create seed in
  let alpha = 0.5 +. Prng.float r 3.0 in
  let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 6) in
  let host = Gncg_workload.Instances.random_host r model ~n ~alpha in
  let s = Gncg_workload.Instances.random_profile r host in
  (host, s)

let steps_equal (a : Dyn.step list) (b : Dyn.step list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Dyn.step) (y : Dyn.step) ->
         x.mover = y.mover
         && Float.equal x.before_cost y.before_cost
         && Float.equal x.after_cost y.after_cost)
       a b

let outcomes_identical a b =
  match (a, b) with
  | ( Dyn.Converged { profile = p1; rounds = r1; steps = s1 },
      Dyn.Converged { profile = p2; rounds = r2; steps = s2 } ) ->
    Gncg.Strategy.equal p1 p2 && r1 = r2 && steps_equal s1 s2
  | ( Dyn.Cycle { profiles = ps1; steps = s1 },
      Dyn.Cycle { profiles = ps2; steps = s2 } ) ->
    List.length ps1 = List.length ps2
    && List.for_all2 Gncg.Strategy.equal ps1 ps2
    && steps_equal s1 s2
  | ( Dyn.Out_of_steps { profile = p1; steps = s1 },
      Dyn.Out_of_steps { profile = p2; steps = s2 } ) ->
    Gncg.Strategy.equal p1 p2 && steps_equal s1 s2
  | _ -> false

(* Fresh rngs per run: scheduler (and rule) streams must start from the
   same state on both sides of the comparison. *)
let scheduler_of code seed =
  if code = 0 then Dyn.Round_robin else Dyn.Random_order (Prng.create (7919 * seed))

let rule_of code seed =
  match code with
  | 0 -> Dyn.Greedy_response
  | 1 -> Dyn.Add_only
  | 2 -> Dyn.Best_response
  | _ -> Dyn.Random_improving (Prng.create (104729 * seed))

let engines =
  [
    Dyn.Engine.Speculative { exec = Exec.Seq; batch = 3 };
    Dyn.Engine.Speculative { exec = Exec.Par { domains = Some 2 }; batch = 0 };
    Dyn.Engine.Speculative { exec = Exec.Par { domains = Some 3 }; batch = 7 };
  ]

let run_both ?(n = 8) ?(max_steps = 3000) ~evaluator ~rule_code ~sched_code ~engine seed =
  let host, start = random_game seed ~n in
  let go engine =
    Dyn.run
      (Dyn.Config.make ~max_steps ~evaluator ~engine (rule_of rule_code seed)
         (scheduler_of sched_code seed))
      host start
  in
  (go Dyn.Engine.Sequential, go engine)

(* The main equivalence matrix.  The generator draws the whole
   configuration, so shrinking pins down the offending combination. *)
let prop_speculative_equals_sequential =
  let gen =
    QCheck.(
      quad small_nat (int_range 0 3) (* seed, rule *)
        (int_range 0 1) (* scheduler *)
        (int_range 0 2) (* engine shape *))
  in
  QCheck.Test.make ~count:120 ~name:"speculative ≡ sequential (all rules/schedulers)"
    gen
    (fun (seed, rule_code, sched_code, engine_idx) ->
      let evaluator = List.nth [ `Incremental; `Reference; `Fast ] (seed mod 3) in
      let a, b =
        run_both ~evaluator ~rule_code ~sched_code
          ~engine:(List.nth engines engine_idx) (seed + 11)
      in
      outcomes_identical a b)

(* The incremental evaluator under every distance backend: the per-domain
   replicas must copy and replay correctly whatever the storage layer
   ([require_mutable] degrades the read-only oracles to dense — that
   degradation path is part of what runs here). *)
let prop_backends_agree =
  QCheck.Test.make ~count:40 ~name:"speculative ≡ sequential across dist backends"
    QCheck.(pair small_nat (int_range 0 3))
    (fun (seed, backend_idx) ->
      let spec = List.nth [ D.Dense; D.Tree; D.Rd; D.Mmap None ] backend_idx in
      let saved = D.default_spec () in
      D.set_default_spec spec;
      Fun.protect
        ~finally:(fun () -> D.set_default_spec saved)
        (fun () ->
          let a, b =
            run_both ~evaluator:`Incremental ~rule_code:0 ~sched_code:(seed mod 2)
              ~engine:(List.nth engines (seed mod 3))
              (seed + 37)
          in
          outcomes_identical a b))

(* Chaos: a hub instance under a tiny alpha — every agent wants edges
   and most moves touch the same few rows, so commits keep invalidating
   the rest of the batch.  The engine must burn conflicts and retries
   (counters climb) yet still land byte-identical. *)
let test_conflict_storm () =
  let n = 14 in
  let r = Prng.create 424242 in
  let host =
    Gncg.Host.make ~alpha:0.4
      (Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:2.0)
  in
  (* Everyone starts on a path: the early adds reshape distances
     globally, which is exactly what defeats row-local reuse. *)
  let start =
    Gncg.Strategy.of_lists n (List.init (n - 1) (fun i -> (i, [ i + 1 ])))
  in
  let go engine sched =
    Dyn.run
      (Dyn.Config.make ~max_steps:6000 ~evaluator:`Incremental ~engine
         Dyn.Greedy_response sched)
      host start
  in
  let conflicts = Metric.Counter.make "dynamics.speculative_conflicts" in
  let retries = Metric.Counter.make "dynamics.speculative_retries" in
  let speculations = Metric.Counter.make "dynamics.speculative_speculations" in
  let was_enabled = Metric.enabled () in
  Metric.set_enabled true;
  let c0 = Metric.Counter.value conflicts and r0 = Metric.Counter.value retries in
  let s0 = Metric.Counter.value speculations in
  let seq = go Dyn.Engine.Sequential Dyn.Round_robin in
  let spec =
    go (Dyn.Engine.Speculative { exec = Exec.Par { domains = Some 3 }; batch = 8 })
      Dyn.Round_robin
  in
  let dc = Metric.Counter.value conflicts - c0 in
  let dr = Metric.Counter.value retries - r0 in
  let ds = Metric.Counter.value speculations - s0 in
  Metric.set_enabled was_enabled;
  check_true "speculations happened" (ds > 0);
  check_true "conflicts were detected" (dc > 0);
  check_true "aborted speculations were retried" (dr >= dc);
  check_true "identical outcome despite the storm" (outcomes_identical seq spec)

(* Out_of_steps must also agree: cut the budget mid-flight so the batch
   lookahead crosses the limit. *)
let prop_out_of_steps_identical =
  QCheck.Test.make ~count:30 ~name:"speculative ≡ sequential at the step budget"
    QCheck.(pair small_nat (int_range 1 25))
    (fun (seed, max_steps) ->
      let a, b =
        run_both ~max_steps ~evaluator:`Incremental ~rule_code:0 ~sched_code:1
          ~engine:(List.nth engines (seed mod 3))
          (seed + 91)
      in
      outcomes_identical a b)

(* Improving-move cycles (Random_improving degrades to sequential inside
   the engine, so use greedy dynamics on a cycle-prone construction): the
   certificate profiles must match state for state. *)
let test_cycle_outcomes_identical () =
  (* Hunt a small cycle instance; if none shows up the test still
     asserted equivalence on every attempt. *)
  let tried = ref 0 and cycles = ref 0 in
  for seed = 1 to 30 do
    let host, start = random_game (900 + seed) ~n:6 in
    let go engine =
      Dyn.run
        (Dyn.Config.make ~max_steps:800 ~evaluator:`Incremental ~engine
           Dyn.Greedy_response Dyn.Round_robin)
        host start
    in
    incr tried;
    let a = go Dyn.Engine.Sequential in
    let b = go (Dyn.Engine.Speculative { exec = Exec.Seq; batch = 5 }) in
    check_true "cycle/convergence identical" (outcomes_identical a b);
    match a with Dyn.Cycle _ -> incr cycles | _ -> ()
  done;
  check_true "ran" (!tried = 30)

(* --- Engine / Config surface ----------------------------------------- *)

let test_engine_strings () =
  let ok s e =
    Alcotest.(check bool) ("parse " ^ s) true (Dyn.Engine.of_string s = Ok e)
  in
  ok "sequential" Dyn.Engine.Sequential;
  ok "seq" Dyn.Engine.Sequential;
  ok "speculative" (Dyn.Engine.Speculative { exec = Exec.default; batch = 0 });
  ok "speculative:4" (Dyn.Engine.Speculative { exec = Exec.Par { domains = Some 4 }; batch = 0 });
  ok "speculative:seq" (Dyn.Engine.Speculative { exec = Exec.Seq; batch = 0 });
  ok "speculative:seq:batch=9" (Dyn.Engine.Speculative { exec = Exec.Seq; batch = 9 });
  ok "speculative:2:batch=16"
    (Dyn.Engine.Speculative { exec = Exec.Par { domains = Some 2 }; batch = 16 });
  let bad s =
    check_true (s ^ " rejected")
      (match Dyn.Engine.of_string s with Error _ -> true | Ok _ -> false)
  in
  bad "parallel";
  bad "speculative:0";
  bad "speculative:seq:batch=0";
  bad "speculative:2:batch=x";
  bad "speculative:2:3";
  List.iter
    (fun e ->
      check_true
        ("roundtrip " ^ Dyn.Engine.to_string e)
        (Dyn.Engine.of_string (Dyn.Engine.to_string e) = Ok e))
    [
      Dyn.Engine.Sequential;
      Dyn.Engine.speculative ();
      Dyn.Engine.speculative ~exec:Exec.Seq ();
      Dyn.Engine.speculative ~exec:(Exec.Par { domains = Some 5 }) ~batch:12 ();
    ]

let test_engine_batch_resolution () =
  Alcotest.(check int) "explicit batch wins" 9
    (Dyn.Engine.resolve_batch ~exec:Exec.Seq 9);
  Alcotest.(check int) "auto batch = 4 x domains" 4
    (Dyn.Engine.resolve_batch ~exec:Exec.Seq 0);
  Alcotest.(check int) "auto batch scales with domains" 12
    (Dyn.Engine.resolve_batch ~exec:(Exec.Par { domains = Some 3 }) (-1))

let test_config_defaults () =
  let cfg = Dyn.Config.make Dyn.Greedy_response Dyn.Round_robin in
  Alcotest.(check int) "default max_steps" 10_000 cfg.Dyn.Config.max_steps;
  check_true "default evaluator" (cfg.Dyn.Config.evaluator = `Reference);
  check_true "default engine" (cfg.Dyn.Config.engine = Dyn.Engine.Sequential);
  check_true "no metrics record" (cfg.Dyn.Config.metrics = None)

(* The metrics record is main-thread state: the speculative engine must
   still fill it (moves identical; evaluations may exceed the sequential
   count by the aborted speculations). *)
let test_metrics_record_filled () =
  let host, start = random_game 5151 ~n:8 in
  let run engine =
    let metrics = { Dyn.evaluations = 0; moves = 0; skips = 0 } in
    let outcome =
      Dyn.run
        (Dyn.Config.make ~max_steps:3000 ~evaluator:`Incremental ~engine ~metrics
           Dyn.Greedy_response Dyn.Round_robin)
        host start
    in
    (outcome, metrics)
  in
  let seq_out, seq_m = run Dyn.Engine.Sequential in
  let spec_out, spec_m = run (Dyn.Engine.speculative ~exec:Exec.Seq ~batch:4 ()) in
  check_true "outcomes identical" (outcomes_identical seq_out spec_out);
  Alcotest.(check int) "moves identical" seq_m.Dyn.moves spec_m.Dyn.moves;
  Alcotest.(check int) "skips identical" seq_m.Dyn.skips spec_m.Dyn.skips;
  check_true "speculative evaluations >= sequential"
    (spec_m.Dyn.evaluations >= seq_m.Dyn.evaluations)

(* --- deviation degradation counter ----------------------------------- *)

let test_deviation_degradation_counter () =
  let host, s = random_game 777 ~n:6 in
  let c = Metric.Counter.make "dynamics.evaluator_degradations" in
  let was_enabled = Metric.enabled () in
  Metric.set_enabled true;
  let v0 = Metric.Counter.value c in
  let inc = Dyn.deviation ~evaluator:`Incremental Dyn.Greedy_response host s 0 in
  let after_incremental = Metric.Counter.value c in
  let st = Dyn.deviation ~evaluator:`Stateless Dyn.Greedy_response host s 0 in
  let fast = Dyn.deviation ~evaluator:`Fast Dyn.Greedy_response host s 0 in
  let after_explicit = Metric.Counter.value c in
  Metric.set_enabled was_enabled;
  Alcotest.(check int) "`Incremental degradation counted" (v0 + 1) after_incremental;
  Alcotest.(check int) "`Stateless / `Fast are not degradations" after_incremental
    after_explicit;
  check_true "degraded result = explicit stateless result"
    (match (inc, st, fast) with
    | None, None, None -> true
    | Some (s1, g1), Some (s2, g2), Some (s3, g3) ->
      Gncg.Strategy.equal s1 s2 && Gncg.Strategy.equal s2 s3
      && Float.equal g1 g2 && Float.equal g2 g3
    | _ -> false)

let test_stateless_evaluator_runs () =
  let host, start = random_game 991 ~n:7 in
  let go evaluator =
    Dyn.run
      (Dyn.Config.make ~max_steps:3000 ~evaluator Dyn.Greedy_response Dyn.Round_robin)
      host start
  in
  check_true "`Stateless ≡ `Fast end to end"
    (outcomes_identical (go `Stateless) (go `Fast));
  check_true "evaluator strings roundtrip"
    (List.for_all
       (fun e -> Gncg.Evaluator.of_string (Gncg.Evaluator.to_string e) = Ok e)
       Gncg.Evaluator.all)

let suites =
  [
    ( "speculative-dynamics",
      [
        Alcotest.test_case "conflict storm converges identically" `Quick
          test_conflict_storm;
        Alcotest.test_case "cycle certificates identical" `Quick
          test_cycle_outcomes_identical;
        Alcotest.test_case "engine of_string/to_string" `Quick test_engine_strings;
        Alcotest.test_case "engine batch resolution" `Quick test_engine_batch_resolution;
        Alcotest.test_case "config defaults" `Quick test_config_defaults;
        Alcotest.test_case "metrics record under speculation" `Quick
          test_metrics_record_filled;
        Alcotest.test_case "deviation degradation counter" `Quick
          test_deviation_degradation_counter;
        Alcotest.test_case "stateless evaluator" `Quick test_stateless_evaluator_runs;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_speculative_equals_sequential;
            prop_backends_agree;
            prop_out_of_steps_identical;
          ] );
  ]
