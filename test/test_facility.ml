open Helpers
module Fl = Gncg.Facility_location
module Prng = Gncg_util.Prng

let random_instance ?(forced = false) r nf nc =
  let open_cost = Array.init nf (fun _ -> Prng.float r 10.0) in
  let service = Array.init nf (fun _ -> Array.init nc (fun _ -> Prng.float r 10.0)) in
  let forced_open =
    Array.init nf (fun _ -> forced && Prng.coin r 0.3)
  in
  Array.iteri (fun f b -> if b then open_cost.(f) <- 0.0) forced_open;
  Fl.make ~forced_open ~open_cost ~service ()

let brute_force inst =
  let nf = Fl.num_facilities inst in
  let best = ref Float.infinity in
  let best_set = ref (Array.make nf false) in
  for mask = 0 to (1 lsl nf) - 1 do
    let set = Array.init nf (fun f -> mask land (1 lsl f) <> 0) in
    let c = Fl.cost inst set in
    if c < !best then begin
      best := c;
      best_set := set
    end
  done;
  (!best_set, !best)

let test_cost_definition () =
  let inst =
    Fl.make ~open_cost:[| 5.0; 1.0 |]
      ~service:[| [| 1.0; 4.0 |]; [| 3.0; 2.0 |] |]
      ()
  in
  check_float "both open" (5.0 +. 1.0 +. 1.0 +. 2.0) (Fl.cost inst [| true; true |]);
  check_float "first only" (5.0 +. 1.0 +. 4.0) (Fl.cost inst [| true; false |]);
  check_true "none open is infeasible" (Fl.cost inst [| false; false |] = Float.infinity)

let test_forced_open () =
  let inst =
    Fl.make
      ~forced_open:[| true; false |]
      ~open_cost:[| 0.0; 1.0 |]
      ~service:[| [| 1.0 |]; [| 0.5 |] |]
      ()
  in
  check_true "closing forced facility infeasible"
    (Fl.cost inst [| false; true |] = Float.infinity);
  let set, _ = Fl.solve_exact inst in
  check_true "exact keeps forced open" set.(0)

let test_exact_vs_brute_force () =
  let r = rng 100 in
  for trial = 1 to 20 do
    let nf = 2 + Prng.int r 7 and nc = 1 + Prng.int r 8 in
    let inst = random_instance r nf nc in
    let _, exact = Fl.solve_exact inst in
    let _, brute = brute_force inst in
    if not (approx ~tol:1e-9 exact brute) then
      Alcotest.failf "trial %d: exact=%g brute=%g" trial exact brute
  done

let test_exact_with_forced_vs_brute_force () =
  let r = rng 101 in
  for trial = 1 to 15 do
    let nf = 2 + Prng.int r 6 and nc = 1 + Prng.int r 6 in
    let inst = random_instance ~forced:true r nf nc in
    let _, exact = Fl.solve_exact inst in
    let _, brute = brute_force inst in
    if not (approx ~tol:1e-9 exact brute) then
      Alcotest.failf "trial %d: exact=%g brute=%g" trial exact brute
  done

let test_local_search_fixpoint () =
  let r = rng 102 in
  for _ = 1 to 10 do
    let inst = random_instance r 8 8 in
    let set, cost = Fl.local_search inst in
    check_float ~tol:1e-9 "reported cost is correct" (Fl.cost inst set) cost;
    check_true "no improving step left" (Fl.improve_step inst set = None)
  done

let test_local_search_3_approx_on_metric () =
  (* Arya et al.: the locality gap on metric instances is 3; verify the
     bound holds on random metric service costs (clients = points,
     facilities = points, metric distances). *)
  let r = rng 103 in
  for _ = 1 to 10 do
    let n = 7 in
    let pts = Gncg_metric.Euclidean.random_uniform r ~n:(2 * n) ~d:2 ~lo:0.0 ~hi:10.0 in
    let service =
      Array.init n (fun f ->
          Array.init n (fun c -> Gncg_metric.Euclidean.dist L2 pts.(f) pts.(n + c)))
    in
    let open_cost = Array.init n (fun _ -> Prng.float r 5.0) in
    let inst = Fl.make ~open_cost ~service () in
    let _, ls = Fl.local_search inst in
    let _, opt = Fl.solve_exact inst in
    check_true "local search within locality gap 3" (ls <= (3.0 *. opt) +. 1e-6)
  done

let test_infinite_costs_handled () =
  let inst =
    Fl.make
      ~open_cost:[| Float.infinity; 2.0 |]
      ~service:[| [| 1.0 |]; [| Float.infinity |] |]
      ()
  in
  let _, cost = Fl.solve_exact inst in
  check_true "best is infinite (unservable client)" (cost = Float.infinity);
  let _, ls_cost = Fl.local_search inst in
  check_true "local search does not NaN" (Float.is_nan ls_cost = false)

let test_empty_instance () =
  let inst = Fl.make ~open_cost:[||] ~service:[||] () in
  let set, cost = Fl.solve_exact inst in
  Alcotest.(check int) "no facilities" 0 (Array.length set);
  check_float "zero cost" 0.0 cost

let suites =
  [
    ( "facility-location",
      [
        case "cost definition" test_cost_definition;
        case "forced-open facilities" test_forced_open;
        case "exact = brute force" test_exact_vs_brute_force;
        case "exact with forced = brute force" test_exact_with_forced_vs_brute_force;
        case "local search reaches fixpoint" test_local_search_fixpoint;
        case "local search within locality gap" test_local_search_3_approx_on_metric;
        case "infinite costs" test_infinite_costs_handled;
        case "empty instance" test_empty_instance;
      ] );
  ]
