(* The observability layer (lib/obs): counters/histograms and their
   cross-domain merge, sinks and the JSONL encoding, span probes, and —
   the property the whole design rests on — that attaching a sink or
   enabling profiling never changes an engine verdict. *)

module Obs = Gncg_obs.Obs
module Metric = Gncg_obs.Metric
module Sink = Gncg_obs.Sink
module Span = Gncg_obs.Span

(* Every test must leave the process-wide observability state as it
   found it (off): the rest of the suite runs with instrumentation
   disabled, which is also the configuration whose zero-overhead claim
   BENCH_4 documents. *)
let shielded f () =
  Fun.protect
    ~finally:(fun () ->
      Metric.set_enabled false;
      Sink.install None)
    f

let test_counter_gating () =
  let c = Metric.Counter.make "test_obs.gating" in
  Metric.Counter.reset c;
  Metric.set_enabled false;
  Metric.Counter.incr c;
  Metric.Counter.add c 41;
  Alcotest.(check int) "disabled increments are dropped" 0 (Metric.Counter.value c);
  Metric.set_enabled true;
  Metric.Counter.incr c;
  Metric.Counter.add c 41;
  Alcotest.(check int) "enabled increments land" 42 (Metric.Counter.value c);
  Alcotest.(check bool) "registry returns the same counter"
    true
    (match Metric.find_counter "test_obs.gating" with
    | Some c' -> Metric.Counter.value c' = 42
    | None -> false)

let test_counter_cross_domain () =
  let c = Metric.Counter.make "test_obs.cross_domain" in
  Metric.Counter.reset c;
  Metric.set_enabled true;
  let per = 10_000 and tasks = 8 in
  ignore
    (Gncg_util.Parallel.init ~domains:4 tasks (fun _ ->
         for _ = 1 to per do
           Metric.Counter.incr c
         done));
  Alcotest.(check int) "atomic increments merge exactly" (per * tasks)
    (Metric.Counter.value c)

let test_histogram_buckets () =
  let h = Metric.Histogram.make "test_obs.buckets" in
  Metric.Histogram.reset h;
  Metric.set_enabled true;
  List.iter (Metric.Histogram.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 1e300 ];
  Alcotest.(check int) "count" 6 (Metric.Histogram.count h);
  Alcotest.(check (float 1e290)) "sum" (0.5 +. 1.0 +. 1.5 +. 2.0 +. 3.0 +. 1e300)
    (Metric.Histogram.sum h);
  let buckets = Metric.Histogram.buckets h in
  (* 0.5 and 1.0 land in the <=1 bucket; 1.5 and 2.0 in (1,2]; 3.0 in
     (2,4]; the huge value in the open-ended last bucket. *)
  (match buckets with
  | (b1, 2) :: (b2, 2) :: (b3, 1) :: _ ->
    Alcotest.(check (float 0.0)) "first bound" 1.0 b1;
    Alcotest.(check (float 0.0)) "second bound" 2.0 b2;
    Alcotest.(check (float 0.0)) "third bound" 4.0 b3
  | _ -> Alcotest.fail "unexpected bucket layout");
  Alcotest.(check int) "bucketed observations add up" 6
    (List.fold_left (fun acc (_, k) -> acc + k) 0 buckets)

let test_snapshot_merge () =
  let c = Metric.Counter.make "test_obs.merge_c" in
  let h = Metric.Histogram.make "test_obs.merge_h" in
  Metric.Counter.reset c;
  Metric.Histogram.reset h;
  Metric.set_enabled true;
  Metric.Counter.add c 3;
  Metric.Histogram.observe h 1.5;
  let before = Metric.snapshot () in
  Metric.Counter.add c 4;
  Metric.Histogram.observe h 1.5;
  Metric.Histogram.observe h 100.0;
  let after = Metric.snapshot () in
  let merged = Metric.merge before after in
  Alcotest.(check int) "merged counter is the sum" (3 + 7)
    (List.assoc "test_obs.merge_c" merged.Metric.counters);
  let hm = List.assoc "test_obs.merge_h" merged.Metric.histograms in
  Alcotest.(check int) "merged histogram count" 4 hm.Metric.hcount;
  Alcotest.(check (float 1e-9)) "merged histogram sum" (1.5 +. 1.5 +. 1.5 +. 100.0)
    hm.Metric.hsum;
  Alcotest.(check int) "merged buckets add up" 4
    (List.fold_left (fun acc (_, k) -> acc + k) 0 hm.Metric.hbuckets)

let test_span_memory_sink () =
  let sink, events = Sink.memory () in
  Sink.install (Some sink);
  let fields_built = ref 0 in
  let r =
    Span.with_
      ~fields:(fun () ->
        incr fields_built;
        [ ("agent", Sink.Int 7) ])
      "test_obs.region"
      (fun () -> 40 + 2)
  in
  Alcotest.(check int) "body result passes through" 42 r;
  Sink.install None;
  (* With no sink the fields thunk must not even be evaluated. *)
  ignore (Span.with_ ~fields:(fun () -> incr fields_built; []) "test_obs.region" (fun () -> ()));
  Alcotest.(check int) "fields thunk evaluated only when a sink is active" 1 !fields_built;
  match events () with
  | [ e ] ->
    Alcotest.(check string) "kind" "span" e.Sink.kind;
    Alcotest.(check string) "name" "test_obs.region" e.Sink.name;
    Alcotest.(check bool) "caller field kept" true
      (List.mem_assoc "agent" e.Sink.fields);
    (match List.assoc_opt "dur_ns" e.Sink.fields with
    | Some (Sink.Float d) -> Alcotest.(check bool) "duration non-negative" true (d >= 0.0)
    | _ -> Alcotest.fail "span event lacks dur_ns")
  | es -> Alcotest.fail (Printf.sprintf "expected exactly one event, got %d" (List.length es))

let test_span_histogram () =
  Metric.set_enabled true;
  let p = Span.probe "test_obs.timed" in
  let h =
    match Metric.find_histogram "span.test_obs.timed" with
    | Some h -> h
    | None -> Alcotest.fail "probe did not register its histogram"
  in
  Metric.Histogram.reset h;
  for _ = 1 to 5 do
    Span.with_probe p (fun () -> ())
  done;
  Alcotest.(check int) "every span observed" 5 (Metric.Histogram.count h);
  Alcotest.(check bool) "durations sum to something finite" true
    (Float.is_finite (Metric.Histogram.sum h))

let test_jsonl_encoding () =
  let event =
    {
      Sink.kind = "span";
      name = "dynamics.step";
      t_ns = 12345.0;
      fields =
        [
          ("agent", Sink.Int 3);
          ("dur_ns", Sink.Float 1.5);
          ("rule", Sink.Str "greedy");
          ("accepted", Sink.Bool true);
          ("bad", Sink.Float Float.nan);
        ];
    }
  in
  let line = Sink.event_to_json event in
  let module J = Gncg_runs.Json in
  match J.parse line with
  | Error e -> Alcotest.fail ("event_to_json emitted unparsable JSON: " ^ e)
  | Ok doc ->
    let str k = Result.bind (J.member k doc) J.get_string in
    Alcotest.(check (result string string)) "kind" (Ok "span") (str "kind");
    Alcotest.(check (result string string)) "name" (Ok "dynamics.step") (str "name");
    Alcotest.(check bool) "int field" true
      (Result.bind (J.member "agent" doc) J.get_int = Ok 3);
    Alcotest.(check bool) "bool field" true
      (match J.member "accepted" doc with Ok (J.Bool b) -> b | _ -> false);
    Alcotest.(check bool) "non-finite floats become null" true
      (match J.member "bad" doc with Ok J.Null -> true | _ -> false)

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "gncg_obs" ".jsonl" in
  Obs.trace_to_file path;
  let rng = Gncg_util.Prng.create 11 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric rng ~n:12 ~lo:1.0 ~hi:4.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  ignore
    (Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 ~evaluator:`Incremental Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start);
  Obs.close_trace ();
  let lines =
    let ic = open_in path in
    let rec go acc = match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> close_in ic; List.rev acc
    in
    go []
  in
  Sys.remove path;
  Alcotest.(check bool) "trace has events" true (List.length lines > 0);
  let module J = Gncg_runs.Json in
  let docs =
    List.map
      (fun line ->
        match J.parse line with
        | Ok doc -> doc
        | Error e -> Alcotest.fail ("unparsable trace line: " ^ e ^ ": " ^ line))
      lines
  in
  let kind doc = Result.bind (J.member "kind" doc) J.get_string in
  Alcotest.(check bool) "span events present" true
    (List.exists (fun d -> kind d = Ok "span") docs);
  let last = List.nth docs (List.length docs - 1) in
  Alcotest.(check (result string string)) "final event is the counter dump" (Ok "counters")
    (kind last);
  Alcotest.(check bool) "counter dump carries dynamics.evaluations" true
    (match J.member "dynamics.evaluations" last with
    | Ok v -> (match J.get_int v with Ok n -> n > 0 | Error _ -> false)
    | Error _ -> false)

(* The acceptance property of the whole layer: a traced + profiled run
   is verdict-identical to a plain one. *)
let prop_trace_transparent =
  QCheck.Test.make ~count:12 ~name:"tracing never changes a sweep verdict"
    QCheck.(triple (int_range 5 9) (int_range 1 6) small_nat)
    (fun (n, alpha_i, seed) ->
      let model = Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 5.0 } in
      let run () =
        Gncg_workload.Sweep.dynamics_run model ~n ~alpha:(float_of_int alpha_i)
          ~seed ~max_steps:4000
      in
      let plain = run () in
      let traced =
        Fun.protect
          ~finally:(fun () ->
            Metric.set_enabled false;
            Sink.install None)
          (fun () ->
            let sink, _events = Sink.memory () in
            Sink.install (Some sink);
            Metric.set_enabled true;
            run ())
      in
      Gncg_workload.Report.runs_to_csv [ plain ]
      = Gncg_workload.Report.runs_to_csv [ traced ])

(* End-to-end layer coverage: one profiled pass through the incremental
   dynamics, the tracker and a scheduler batch must tick counters in all
   four instrumented layers and emit span events. *)
let test_four_layer_coverage () =
  let sink, events = Sink.memory () in
  Sink.install (Some sink);
  Metric.set_enabled true;
  Obs.reset ();
  let rng = Gncg_util.Prng.create 5 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric rng ~n:14 ~lo:1.0 ~hi:4.0)
  in
  let start = Gncg_workload.Instances.random_profile rng host in
  let stable =
    match
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:6000 ~evaluator:`Incremental Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
    with
    | Gncg.Dynamics.Converged { profile; _ } -> profile
    | _ -> Alcotest.fail "dynamics did not converge"
  in
  let st = Gncg.Net_state.create host stable in
  let tracker = Gncg.Equilibrium.Tracker.create Gncg.Equilibrium.GE st in
  Alcotest.(check bool) "stable profile is a GE" true
    (Gncg.Equilibrium.Tracker.is_equilibrium tracker);
  let config =
    Gncg_runs.Batch.config (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 5.0 })
      ~ns:[ 5 ] ~alphas:[ 2.0 ] ~seeds:[ 1; 2 ]
  in
  ignore (Gncg_runs.Batch.run ~domains:2 config);
  let snap = Metric.snapshot () in
  let nonzero prefix =
    List.exists
      (fun (name, v) -> String.starts_with ~prefix name && v > 0)
      snap.Metric.counters
  in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (prefix ^ "* counters ticked") true (nonzero prefix))
    [ "incr_apsp."; "net_state."; "dynamics."; "equilibrium."; "runs." ];
  let es = events () in
  let span_named name =
    List.exists (fun e -> e.Sink.kind = "span" && e.Sink.name = name) es
  in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " span emitted") true (span_named name))
    [ "dynamics.step"; "dynamics.run"; "equilibrium.scan"; "runs.job" ]

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter gating and registry" `Quick (shielded test_counter_gating);
        Alcotest.test_case "counter merge across domains" `Quick
          (shielded test_counter_cross_domain);
        Alcotest.test_case "histogram buckets" `Quick (shielded test_histogram_buckets);
        Alcotest.test_case "snapshot merge" `Quick (shielded test_snapshot_merge);
        Alcotest.test_case "span -> memory sink" `Quick (shielded test_span_memory_sink);
        Alcotest.test_case "span -> histogram" `Quick (shielded test_span_histogram);
        Alcotest.test_case "jsonl encoding" `Quick (shielded test_jsonl_encoding);
        Alcotest.test_case "trace file roundtrip" `Quick
          (shielded test_trace_file_roundtrip);
        Alcotest.test_case "four-layer coverage" `Quick (shielded test_four_layer_coverage);
        QCheck_alcotest.to_alcotest prop_trace_transparent;
      ] );
  ]
