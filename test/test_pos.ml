open Helpers
module Pos = Gncg.Price_of_stability
module Prng = Gncg_util.Prng

let test_enumerate_finds_known_ne () =
  (* Thm 15 star host at n=4: the defining tree and the adversarial star
     must both appear among the enumerated equilibria. *)
  let alpha = 2.0 and n = 4 in
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha ~n in
  let nes = Pos.enumerate_ne host in
  check_true "some NE exist" (nes <> []);
  let contains profile =
    List.exists (fun s -> Gncg.Strategy.equal s profile) nes
  in
  check_true "adversarial star enumerated"
    (contains (Gncg_constructions.Thm15_tree_star.ne_profile ~alpha ~n));
  List.iter (fun s -> check_true "every result is NE" (Gncg.Equilibrium.is_ne host s)) nes

let test_exact_summary_consistency () =
  let r = rng 900 in
  for _ = 1 to 5 do
    let alpha = 0.5 +. Prng.float r 3.0 in
    let host =
      Gncg.Host.make ~alpha
        (Gncg_metric.Random_host.uniform_metric r ~n:4 ~lo:1.0 ~hi:5.0)
    in
    match Pos.exact host with
    | None -> Alcotest.fail "4-agent metric hosts always have equilibria in practice"
    | Some s ->
      check_true "best <= worst" (s.Pos.best_ne_cost <= s.Pos.worst_ne_cost +. 1e-9);
      check_true "PoS >= 1 (opt is optimal)" (s.Pos.best_ne_cost >= s.Pos.opt_cost -. 1e-6);
      check_true "PoA respects Thm 1"
        (s.Pos.worst_ne_cost /. s.Pos.opt_cost
         <= Gncg.Quality.metric_upper alpha +. 1e-6);
      check_true "count positive" (s.Pos.ne_count > 0)
  done

let test_tree_pos_is_one () =
  (* Cor 3: on tree metrics the optimum itself is stable, so PoS = 1. *)
  let r = rng 901 in
  for _ = 1 to 5 do
    let tree = Gncg_metric.Tree_metric.random r ~n:4 ~wmin:1.0 ~wmax:5.0 in
    let alpha = 0.5 +. Prng.float r 3.0 in
    let host = Gncg.Host.make ~alpha (Gncg_metric.Tree_metric.metric tree) in
    match Pos.exact host with
    | None -> Alcotest.fail "tree hosts always have the tree equilibrium"
    | Some s ->
      check_float ~tol:1e-6 "PoS = 1 on tree metrics" 1.0
        (s.Pos.best_ne_cost /. s.Pos.opt_cost)
  done

let test_enumerate_guard () =
  let host = Gncg.Host.make ~alpha:1.0 (Gncg_metric.Metric.make 6 (fun _ _ -> 1.0)) in
  let raised = ref false in
  (try ignore (Pos.enumerate_ne host) with Invalid_argument _ -> raised := true);
  check_true "refuses large hosts" !raised

let test_dynamics_upper_bounds () =
  let r = rng 902 in
  let host =
    Gncg.Host.make ~alpha:2.0
      (Gncg_metric.Random_host.uniform_metric r ~n:8 ~lo:1.0 ~hi:5.0)
  in
  let _, opt = Gncg.Social_optimum.best_known host in
  (match Pos.cheapest_stable_via_dynamics ~starts:4 (Prng.split r) host with
  | Some (profile, cost) ->
    check_true "stable profile is GE" (Gncg.Equilibrium.is_ge host profile);
    check_float ~tol:1e-6 "reported cost correct" (Gncg.Cost.social_cost host profile) cost;
    check_true "above optimum" (cost >= opt -. 1e-6)
  | None -> Alcotest.fail "greedy dynamics should converge here");
  match Pos.stable_from_optimum host with
  | Some (profile, cost) ->
    check_true "opt-seeded profile is GE" (Gncg.Equilibrium.is_ge host profile);
    check_true "opt-seeded above optimum" (cost >= opt -. 1e-6)
  | None -> Alcotest.fail "opt-seeded dynamics should converge here"

let test_opt_seeded_tree_stays_at_opt () =
  (* On a tree metric the optimum orientation is already stable. *)
  let r = rng 903 in
  let tree = Gncg_metric.Tree_metric.random r ~n:7 ~wmin:1.0 ~wmax:5.0 in
  let host = Gncg.Host.make ~alpha:2.0 (Gncg_metric.Tree_metric.metric tree) in
  let _, opt = Gncg.Social_optimum.best_known host in
  match Pos.stable_from_optimum host with
  | Some (_, cost) -> check_float ~tol:1e-6 "no drift from the tree optimum" opt cost
  | None -> Alcotest.fail "must converge"

let test_kernel_sample () =
  (* A slice of the exhaustive E22 kernel: a handful of 4-agent 1-2 hosts
     with all equilibria enumerated, checked against Thm 1 and Lemma 1. *)
  let pairs = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  List.iter
    (fun mask ->
      let ones = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) pairs in
      let m = Gncg_metric.One_two.of_one_edges 4 ones in
      List.iter
        (fun alpha ->
          let host = Gncg.Host.make ~alpha m in
          let _, opt = Gncg.Social_optimum.exact_small host in
          List.iter
            (fun ne ->
              check_true "Thm 1 on kernel"
                (Gncg.Cost.social_cost host ne /. opt
                 <= Gncg.Quality.metric_upper alpha +. 1e-9);
              check_true "Lemma 1 on kernel"
                (Gncg.Quality.host_stretch host (Gncg.Network.graph host ne)
                 <= Gncg.Quality.ae_spanner_stretch alpha +. 1e-9))
            (Pos.enumerate_ne host))
        [ 0.4; 1.0; 2.5 ])
    [ 0; 7; 21; 42; 63 ]

let suites =
  [
    ( "price-of-stability",
      [
        case "enumeration finds known NE" test_enumerate_finds_known_ne;
        case "exact summary consistency" test_exact_summary_consistency;
        case "Cor 3: tree PoS = 1" test_tree_pos_is_one;
        case "enumeration guard" test_enumerate_guard;
        case "dynamics upper bounds" test_dynamics_upper_bounds;
        case "opt-seeded stays at tree optimum" test_opt_seeded_tree_stays_at_opt;
        slow_case "exhaustive kernel sample" test_kernel_sample;
      ] );
  ]
