(* Chaos harness properties: fault injection is deterministic, the
   scheduler classifies injected faults exactly as the plan's oracle
   predicts, result order survives chaos, and every journal-corruption
   shape resumes by re-executing exactly the destroyed jobs. *)

open Helpers
module R = Gncg_runs
module C = Gncg_runs.Chaos

let key_of_int = string_of_int

(* --- classification ----------------------------------------------------- *)

(* Every job's outcome must match the pure oracle: Crash on attempt 1
   with no retries -> Crashed; anything else -> Completed. *)
let chaos_classification =
  QCheck.Test.make ~count:30 ~name:"chaos: classification matches the fault oracle"
    QCheck.(pair small_nat (int_range 10 40))
    (fun (seed, jobs) ->
      let plan = C.plan ~seed ~crash_p:0.35 ~fault_attempts:1 () in
      let exec = C.wrap plan ~key:key_of_int (fun i -> i * 3) in
      let results = R.Scheduler.run_sequential exec (List.init jobs Fun.id) in
      List.for_all
        (fun (i, r) ->
          match (C.decide plan ~key:(key_of_int i) ~attempt:1, r.R.Scheduler.outcome) with
          | Some C.Crash, R.Scheduler.Crashed _ -> true
          | (None | Some (C.Delay _) | Some C.Corrupt_result), R.Scheduler.Completed v ->
            v = i * 3
          | _ -> false)
        results)

(* With retries >= fault_attempts every chaos job must eventually
   complete, and the recorded attempts must match the oracle. *)
let chaos_retries_recover =
  QCheck.Test.make ~count:30 ~name:"chaos: retries outlast bounded faults"
    QCheck.small_nat
    (fun seed ->
      let plan = C.plan ~seed ~crash_p:0.5 ~fault_attempts:2 () in
      let exec = C.wrap plan ~key:key_of_int Fun.id in
      let results = R.Scheduler.run_sequential ~retries:2 exec (List.init 25 Fun.id) in
      List.for_all
        (fun (i, r) ->
          let crashes_at a = C.decide plan ~key:(key_of_int i) ~attempt:a = Some C.Crash in
          let expected_attempts =
            if crashes_at 1 then if crashes_at 2 then 3 else 2 else 1
          in
          match r.R.Scheduler.outcome with
          | R.Scheduler.Completed v ->
            v = i && r.R.Scheduler.attempts = expected_attempts
          | _ -> false)
        results)

(* Chaos delays perturb execution order; the report list must stay in
   input order regardless, on the parallel scheduler. *)
let chaos_preserves_order =
  QCheck.Test.make ~count:10 ~name:"chaos: parallel results stay in input order"
    QCheck.small_nat
    (fun seed ->
      let plan = C.plan ~seed ~delay_p:0.4 ~delay_s:0.002 ~crash_p:0.2 () in
      let exec = C.wrap plan ~key:key_of_int Fun.id in
      let jobs = List.init 30 Fun.id in
      let results = R.Scheduler.run ~domains:4 exec jobs in
      List.map fst results = jobs)

(* Corrupt_result flows through the caller's corrupt hook and lands in
   the diverged classification when the predicate looks for it. *)
let test_corrupt_result_classified () =
  let plan = C.plan ~seed:5 ~corrupt_p:0.5 () in
  let exec = C.wrap plan ~key:key_of_int ~corrupt:(fun _ -> Float.nan) float_of_int in
  let results =
    R.Scheduler.run_sequential ~diverged:Float.is_nan exec (List.init 20 Fun.id)
  in
  List.iter
    (fun (i, r) ->
      match (C.decide plan ~key:(key_of_int i) ~attempt:1, r.R.Scheduler.outcome) with
      | Some C.Corrupt_result, R.Scheduler.Diverged v ->
        check_true "corrupted to NaN" (Float.is_nan v)
      | Some C.Corrupt_result, o ->
        Alcotest.failf "job %d: corrupt result classified %s" i
          (match o with
          | R.Scheduler.Completed _ -> "completed"
          | R.Scheduler.Timeout -> "timeout"
          | R.Scheduler.Crashed _ -> "crashed"
          | R.Scheduler.Diverged _ -> "diverged")
      | _, R.Scheduler.Completed v -> check_float "clean value" (float_of_int i) v
      | _, _ -> Alcotest.failf "job %d: unexpected classification" i)
    results

(* Crash reports carry a backtrace when recording is on. *)
let test_crash_carries_backtrace () =
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      let results =
        R.Scheduler.run_sequential
          (fun _ -> failwith "kaboom")
          [ 0 ]
      in
      match results with
      | [ (_, { R.Scheduler.outcome = Crashed { msg; backtrace }; _ }) ] ->
        check_true "message kept" (String.length msg > 0);
        check_true "backtrace recorded" (String.length backtrace > 0)
      | _ -> Alcotest.fail "expected one crashed report")

(* --- journal corruption -------------------------------------------------- *)

let small_config =
  R.Batch.config
    (Gncg_workload.Instances.Tree { wmin = 1.0; wmax = 5.0 })
    ~ns:[ 5 ] ~alphas:[ 1.0; 4.0 ] ~seeds:[ 1; 2 ]

let with_journal f =
  let path = Filename.temp_file "gncg_chaos_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let run_and_corrupt corrupt =
  with_journal (fun journal ->
      let first = R.Batch.run ~journal small_config in
      Alcotest.(check int) "all jobs terminal" 4 first.progress.completed;
      corrupt journal;
      match R.Batch.resume ~journal () with
      | Error msg -> Alcotest.failf "resume after corruption failed: %s" msg
      | Ok resumed ->
        check_true "resumed runs equal the uninterrupted batch"
          (Gncg_workload.Report.runs_to_csv resumed.runs
          = Gncg_workload.Report.runs_to_csv first.runs);
        resumed.progress.executed)

let test_truncated_last_line_resumes () =
  Alcotest.(check int) "exactly the torn job re-executes" 1
    (run_and_corrupt C.truncate_last_line)

let test_garbage_line_skipped () =
  Alcotest.(check int) "garbage drops no terminal entries" 0
    (run_and_corrupt C.append_garbage_line)

let test_interleaved_writes_resume () =
  Alcotest.(check int) "both torn jobs re-execute" 2
    (run_and_corrupt C.interleave_partial_writes)

(* QCheck form of the resume invariant: truncate after a prefix of k
   terminal entries; resume must execute exactly (total - k) jobs and
   reproduce the uninterrupted results. *)
let truncated_journal_resume =
  QCheck.Test.make ~count:8 ~name:"chaos: truncated journal resumes the exact complement"
    (QCheck.int_range 0 3)
    (fun keep ->
      with_journal (fun journal ->
          let first = R.Batch.run ~journal small_config in
          (* Rewrite the journal to the manifest + [keep] entries, then
             tear the next line in half. *)
          let lines =
            String.split_on_char '\n' (In_channel.with_open_bin journal In_channel.input_all)
          in
          let manifest, entries =
            match lines with m :: es -> (m, List.filter (fun l -> l <> "") es) | [] -> ("", [])
          in
          let kept = List.filteri (fun i _ -> i < keep) entries in
          let torn =
            match List.nth_opt entries keep with
            | Some l -> [ String.sub l 0 (String.length l / 2) ]
            | None -> []
          in
          Out_channel.with_open_bin journal (fun oc ->
              List.iter
                (fun l -> Out_channel.output_string oc (l ^ "\n"))
                ((manifest :: kept) @ torn));
          match R.Batch.resume ~journal () with
          | Error _ -> false
          | Ok resumed ->
            resumed.progress.executed = 4 - keep
            && Gncg_workload.Report.runs_to_csv resumed.runs
               = Gncg_workload.Report.runs_to_csv first.runs))

(* Determinism: the same plan makes the same decisions, a different seed
   eventually makes different ones. *)
let test_decide_deterministic () =
  let p1 = C.plan ~seed:11 ~crash_p:0.3 ~delay_p:0.3 () in
  let p2 = C.plan ~seed:11 ~crash_p:0.3 ~delay_p:0.3 () in
  for i = 0 to 99 do
    check_true "same seed, same decision"
      (C.decide p1 ~key:(key_of_int i) ~attempt:1
      = C.decide p2 ~key:(key_of_int i) ~attempt:1)
  done;
  let p3 = C.plan ~seed:12 ~crash_p:0.3 ~delay_p:0.3 () in
  check_true "different seed differs somewhere"
    (List.exists
       (fun i ->
         C.decide p1 ~key:(key_of_int i) ~attempt:1
         <> C.decide p3 ~key:(key_of_int i) ~attempt:1)
       (List.init 100 Fun.id))

let suites =
  [
    ( "chaos",
      [
        QCheck_alcotest.to_alcotest chaos_classification;
        QCheck_alcotest.to_alcotest chaos_retries_recover;
        QCheck_alcotest.to_alcotest chaos_preserves_order;
        case "corrupt results classified via predicate" test_corrupt_result_classified;
        case "crash reports carry backtraces" test_crash_carries_backtrace;
        case "truncated last line: 1 job re-executes" test_truncated_last_line_resumes;
        case "garbage line: 0 jobs re-execute" test_garbage_line_skipped;
        case "interleaved writes: 2 jobs re-execute" test_interleaved_writes_resume;
        QCheck_alcotest.to_alcotest truncated_journal_resume;
        case "fault decisions are seed-deterministic" test_decide_deterministic;
      ] );
  ]
