let () =
  Alcotest.run "gncg"
    (Test_util.suites @ Test_graph.suites @ Test_centrality.suites
   @ Test_generators.suites @ Test_metric.suites @ Test_game.suites
   @ Test_facility.suites @ Test_best_response.suites @ Test_equilibrium.suites
   @ Test_dynamics.suites @ Test_optimum.suites @ Test_spanner_nash.suites
   @ Test_constructions.suites @ Test_reductions.suites @ Test_pos.suites
   @ Test_workload.suites @ Test_fast.suites @ Test_quality.suites
   @ Test_serialize.suites @ Test_guards.suites @ Test_coverage.suites
   @ Test_props.suites @ Test_incr.suites @ Test_flat.suites @ Test_runs.suites
   @ Test_obs.suites @ Test_exec.suites @ Test_error.suites @ Test_sentinel.suites
   @ Test_chaos.suites @ Test_serve.suites @ Test_distances.suites
   @ Test_speculative.suites)
