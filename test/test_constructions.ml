open Helpers
module C = Gncg_constructions
module Eq = Gncg.Equilibrium
module Cost = Gncg.Cost
module Metric = Gncg_metric.Metric

(* --- Thm 8 (Fig 3) ------------------------------------------------------- *)

let test_thm8_alpha_one_ne () =
  let host = C.Thm8_onetwo.host Alpha_one ~alpha:1.0 ~nb_centers:2 ~nb_leaves:2 in
  let ne = C.Thm8_onetwo.ne_profile Alpha_one ~nb_centers:2 ~nb_leaves:2 in
  check_true "NE (exact check)" (Eq.is_ne host ne)

let test_thm8_alpha_mid_ne () =
  List.iter
    (fun alpha ->
      let host = C.Thm8_onetwo.host Alpha_mid ~alpha ~nb_centers:2 ~nb_leaves:2 in
      let ne = C.Thm8_onetwo.ne_profile Alpha_mid ~nb_centers:2 ~nb_leaves:2 in
      check_true "NE (exact check)" (Eq.is_ne host ne))
    [ 0.5; 0.7; 0.99 ]

let test_thm8_ge_scales () =
  (* Exact NE checks explode with size; greedy stability still holds at
     moderate sizes and is implied by the theorem. *)
  let host = C.Thm8_onetwo.host Alpha_one ~alpha:1.0 ~nb_centers:4 ~nb_leaves:4 in
  let ne = C.Thm8_onetwo.ne_profile Alpha_one ~nb_centers:4 ~nb_leaves:4 in
  check_true "GE at N=4" (Eq.is_ge host ne)

let test_thm8_ratio_approaches_limit () =
  (* Ratio grows towards 3/2 (alpha=1) as N grows. *)
  let ratio nb =
    let host = C.Thm8_onetwo.host Alpha_one ~alpha:1.0 ~nb_centers:nb ~nb_leaves:nb in
    let ne = C.Thm8_onetwo.ne_profile Alpha_one ~nb_centers:nb ~nb_leaves:nb in
    let opt = C.Thm8_onetwo.opt_network Alpha_one ~nb_centers:nb ~nb_leaves:nb in
    Cost.social_cost host ne /. Cost.network_social_cost host opt
  in
  let r3 = ratio 3 and r6 = ratio 6 in
  check_true "monotone towards 3/2" (r6 > r3);
  check_true "bounded by limit" (r6 < 1.5);
  check_true "beyond 1.2 already at N=6" (r6 > 1.2)

let test_thm8_opt_is_optimal_alpha_one () =
  (* For alpha = 1 the 1-edge subgraph is the claimed social optimum; at
     N=2 it can be cross-checked against... 7 vertices = 21 host edges, too
     many for exhaustive search, so check local optimality instead: no
     single edge addition or removal improves it. *)
  let host = C.Thm8_onetwo.host Alpha_one ~alpha:1.0 ~nb_centers:2 ~nb_leaves:2 in
  let opt = C.Thm8_onetwo.opt_network Alpha_one ~nb_centers:2 ~nb_leaves:2 in
  let base = Cost.network_social_cost host opt in
  let heur, heur_cost = Gncg.Social_optimum.greedy_heuristic host in
  ignore heur;
  check_true "1-edge subgraph no worse than heuristic" (base <= heur_cost +. 1e-6)

(* --- Thm 15 (Fig 6) ------------------------------------------------------ *)

let test_thm15_ne_exact () =
  List.iter
    (fun (alpha, n) ->
      let host = C.Thm15_tree_star.host ~alpha ~n in
      let ne = C.Thm15_tree_star.ne_profile ~alpha ~n in
      check_true "star NE (exact)" (Eq.is_ne host ne))
    [ (1.0, 5); (2.0, 6); (4.0, 7); (8.0, 5) ]

let test_thm15_cost_formulas () =
  List.iter
    (fun (alpha, n) ->
      let host = C.Thm15_tree_star.host ~alpha ~n in
      let ne = C.Thm15_tree_star.ne_profile ~alpha ~n in
      let opt = C.Thm15_tree_star.opt_network ~alpha ~n in
      check_float ~tol:1e-6 "NE cost formula"
        (C.Thm15_tree_star.ne_cost_formula ~alpha ~n)
        (Cost.social_cost host ne);
      check_float ~tol:1e-6 "OPT cost formula"
        (C.Thm15_tree_star.opt_cost_formula ~alpha ~n)
        (Cost.network_social_cost host opt))
    [ (1.0, 5); (3.0, 8); (6.0, 12) ]

let test_thm15_tree_is_ne_and_opt () =
  (* Cor 3: the defining tree is both OPT and (with leaf-owned edges) NE. *)
  let alpha = 2.0 and n = 6 in
  let host = C.Thm15_tree_star.host ~alpha ~n in
  let tree_graph = C.Thm15_tree_star.opt_network ~alpha ~n in
  let tree_profile = Gncg.Strategy.of_tree_leaf_owned tree_graph 0 in
  check_true "tree profile NE" (Eq.is_ne host tree_profile);
  let _, exact = Gncg.Social_optimum.exact_small host in
  check_float ~tol:1e-6 "tree is social optimum" exact
    (Cost.network_social_cost host tree_graph)

let test_thm15_ratio_approaches_limit () =
  let alpha = 6.0 in
  let limit = C.Thm15_tree_star.ratio_limit ~alpha in
  let ratio n =
    C.Thm15_tree_star.ne_cost_formula ~alpha ~n /. C.Thm15_tree_star.opt_cost_formula ~alpha ~n
  in
  check_true "increasing" (ratio 64 > ratio 8);
  check_true "below limit" (ratio 256 < limit);
  check_true "close to limit at n=256" (limit -. ratio 256 < 0.1)

(* --- Thm 12: tree-metric NE are trees ------------------------------------ *)

let test_thm12_ne_is_tree () =
  let r = rng 700 in
  let checked = ref 0 in
  for _ = 1 to 8 do
    let tree = Gncg_metric.Tree_metric.random r ~n:6 ~wmin:1.0 ~wmax:4.0 in
    let host = Gncg.Host.make ~alpha:(0.5 +. Gncg_util.Prng.float r 3.0)
                 (Gncg_metric.Tree_metric.metric tree) in
    let start = Gncg_workload.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:400 Gncg.Dynamics.Best_response Gncg.Dynamics.Round_robin)
      host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      incr checked;
      check_true "NE on tree metric is a tree"
        (Gncg_graph.Connectivity.is_tree (Gncg.Network.graph host profile))
    | _ -> ()
  done;
  check_true "some dynamics converged" (!checked > 0)

(* --- Lemma 8 / Thm 18 / Thm 19 ------------------------------------------- *)

let test_lemma8_ne_exact () =
  List.iter
    (fun (alpha, n) ->
      let host = C.Lemma8_path.host ~alpha ~n in
      let ne = C.Lemma8_path.ne_profile ~alpha ~n in
      check_true "path-star NE" (Eq.is_ne host ne))
    [ (1.0, 4); (2.0, 5); (4.0, 6) ]

let test_lemma8_positions_geometric () =
  let alpha = 2.0 in
  let pos = Array.of_list (C.Lemma8_path.positions ~alpha ~n:5) in
  check_float "v0" 0.0 pos.(0);
  check_float "v1" 1.0 pos.(1);
  (* v_i = (1 + 2/alpha)^(i-1) = 2^(i-1) at alpha = 2. *)
  check_float "v3" 4.0 pos.(3);
  check_float "v5" 16.0 pos.(5)

let test_lemma8_poa_above_one () =
  let alpha = 2.0 and n = 10 in
  let host = C.Lemma8_path.host ~alpha ~n in
  let ne = C.Lemma8_path.ne_profile ~alpha ~n in
  let opt = C.Lemma8_path.opt_network ~alpha ~n in
  let ratio =
    Cost.social_cost host ne /. Cost.network_social_cost host opt
  in
  check_true "PoA > 1 witness" (ratio > 1.0)

let test_thm18_formula_and_ne () =
  List.iter
    (fun alpha ->
      let host = C.Thm18_fourpoint.host ~alpha in
      let ne = C.Thm18_fourpoint.ne_profile ~alpha in
      check_true "4-point star NE" (Eq.is_ne host ne);
      let ratio =
        Cost.social_cost host ne
        /. Cost.network_social_cost host (C.Thm18_fourpoint.opt_network ~alpha)
      in
      check_float ~tol:1e-6 "matches closed form" (C.Thm18_fourpoint.ratio_formula ~alpha) ratio)
    [ 0.5; 1.0; 2.0; 5.0 ]

let test_thm18_formula_limits () =
  (* The closed form tends to 3 as alpha grows and exceeds 1 everywhere. *)
  check_true "above 1" (Gncg.Quality.fourpoint_lower 0.1 > 1.0);
  check_true "approaches 3" (Float.abs (Gncg.Quality.fourpoint_lower 1e7 -. 3.0) < 1e-4)

let test_thm19_ne_and_formula () =
  List.iter
    (fun (alpha, d) ->
      let host = C.Thm19_cross.host ~alpha ~d in
      let ne = C.Thm19_cross.ne_profile ~alpha ~d in
      check_true "cross star NE" (Eq.is_ne host ne);
      let ratio =
        Cost.social_cost host ne
        /. Cost.network_social_cost host (C.Thm19_cross.opt_network ~alpha ~d)
      in
      check_float ~tol:1e-6 "matches closed form" (C.Thm19_cross.ratio_formula ~alpha ~d) ratio)
    [ (1.0, 1); (3.0, 2); (2.0, 3) ]

let test_thm19_limit_is_metric_upper () =
  (* As d -> infinity the bound tends to 1 + alpha/2 = (alpha+2)/2. *)
  let alpha = 5.0 in
  let inf_d = Gncg.Quality.cross_lower ~alpha ~d:100000 in
  check_true "approaches (a+2)/2"
    (Float.abs (inf_d -. Gncg.Quality.metric_upper alpha) < 1e-3)

let test_thm19_points_isometric_to_thm15 () =
  (* The l1 cross on 2d+1 points embeds the Thm 15 star host with
     n = 2d+1: same weight matrix. *)
  let alpha = 2.0 and d = 3 in
  let cross = Gncg.Host.metric (C.Thm19_cross.host ~alpha ~d) in
  let star = Gncg.Host.metric (C.Thm15_tree_star.host ~alpha ~n:(2 * d + 1)) in
  (* Vertex naming matches: 0 <-> center u, 1 <-> special leaf v. *)
  check_true "same host metric" (Metric.equal ~tol:1e-9 cross star)

(* --- Thm 14 / Thm 17: stored improving-move cycles ------------------------ *)

let test_fig5_like_cycle () =
  let host, cycle = C.Brcycle.fig5_like_instance () in
  Alcotest.(check int) "four moves (as in Fig 5)" 5 (List.length cycle);
  check_true "certificate verifies" (C.Brcycle.verify_cycle host cycle);
  check_true "host is a tree metric"
    (Gncg_metric.Tree_metric.is_tree_metric (Gncg.Host.metric host))

let test_fig8_cycle () =
  let host, cycle = C.Brcycle.fig8_cycle () in
  Alcotest.(check int) "eight moves" 9 (List.length cycle);
  check_true "certificate verifies" (C.Brcycle.verify_cycle host cycle);
  (* The host really is the Fig 8 point set under l1. *)
  check_true "host matches the Fig 8 points"
    (Metric.equal (Gncg.Host.metric host)
       (Gncg_metric.Euclidean.metric L1 C.Brcycle.fig8_points))

let test_verify_cycle_rejects_bad_certificates () =
  let host, cycle = C.Brcycle.fig5_like_instance () in
  (* Not a cycle: drop the closing state. *)
  check_false "open path rejected"
    (C.Brcycle.verify_cycle host (List.filteri (fun i _ -> i < List.length cycle - 1) cycle));
  (* Reversed: every move becomes strictly worsening. *)
  check_false "reversed cycle rejected" (C.Brcycle.verify_cycle host (List.rev cycle));
  (* Degenerate. *)
  check_false "singleton rejected" (C.Brcycle.verify_cycle host [ List.hd cycle ])

(* --- Thm 20 example ------------------------------------------------------- *)

let test_thm20_gap () =
  List.iter
    (fun alpha ->
      (match C.Thm20_cycle.ne_profile ~alpha with
      | Some s -> check_true "heavy path is NE" (Eq.is_ne (C.Thm20_cycle.host ~alpha) s)
      | None -> Alcotest.fail "no NE ownership for heavy path");
      check_float ~tol:1e-9 "sigma = ((a+2)/2)^2"
        (Gncg.Quality.general_upper alpha)
        (C.Thm20_cycle.sigma_heavy_pair ~alpha);
      check_float ~tol:1e-9 "cost ratio = (a+2)/2"
        (Gncg.Quality.metric_upper alpha)
        (C.Thm20_cycle.cost_ratio ~alpha))
    [ 1.0; 2.0; 4.0 ]

let test_thm20_host_not_metric () =
  check_false "host violates the triangle inequality / positivity"
    (Metric.is_metric (Gncg.Host.metric (C.Thm20_cycle.host ~alpha:2.0)))

(* --- Thm 1: metric upper bound on found equilibria ------------------------ *)

let test_thm1_upper_bound_on_constructions () =
  (* Every metric equilibrium we construct must respect PoA <= (a+2)/2. *)
  let checks = ref [] in
  List.iter
    (fun alpha ->
      let host = C.Thm15_tree_star.host ~alpha ~n:7 in
      let ne = C.Thm15_tree_star.ne_profile ~alpha ~n:7 in
      let opt = C.Thm15_tree_star.opt_network ~alpha ~n:7 in
      checks :=
        (alpha, Cost.social_cost host ne /. Cost.network_social_cost host opt) :: !checks)
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  List.iter
    (fun (alpha, ratio) ->
      check_true "ratio <= (a+2)/2" (ratio <= Gncg.Quality.metric_upper alpha +. 1e-9))
    !checks

let suites =
  [
    ( "constructions.thm8",
      [
        case "alpha=1 NE (exact)" test_thm8_alpha_one_ne;
        case "alpha in [1/2,1) NE (exact)" test_thm8_alpha_mid_ne;
        slow_case "GE at larger size" test_thm8_ge_scales;
        case "ratio approaches 3/2" test_thm8_ratio_approaches_limit;
        case "1-edge subgraph quality" test_thm8_opt_is_optimal_alpha_one;
      ] );
    ( "constructions.thm15",
      [
        case "star NE (exact)" test_thm15_ne_exact;
        case "cost formulas" test_thm15_cost_formulas;
        case "Cor 3: tree NE and OPT" test_thm15_tree_is_ne_and_opt;
        case "ratio approaches (a+2)/2" test_thm15_ratio_approaches_limit;
      ] );
    ("constructions.thm12", [ case "tree-metric NE are trees" test_thm12_ne_is_tree ]);
    ( "constructions.fip-cycles",
      [
        case "Thm 14: fig5-like tree cycle" test_fig5_like_cycle;
        case "Thm 17: fig8 cycle" test_fig8_cycle;
        case "verifier rejects bad certificates" test_verify_cycle_rejects_bad_certificates;
      ] );
    ( "constructions.geometric",
      [
        case "Lemma 8: star NE" test_lemma8_ne_exact;
        case "Lemma 8: geometric positions" test_lemma8_positions_geometric;
        case "Lemma 8: PoA > 1" test_lemma8_poa_above_one;
        case "Thm 18: NE & closed form" test_thm18_formula_and_ne;
        case "Thm 18: formula limits" test_thm18_formula_limits;
        case "Thm 19: NE & closed form" test_thm19_ne_and_formula;
        case "Thm 19: limit = (a+2)/2" test_thm19_limit_is_metric_upper;
        case "Thm 19 embeds Thm 15" test_thm19_points_isometric_to_thm15;
      ] );
    ( "constructions.thm20",
      [
        case "gap example" test_thm20_gap;
        case "host is non-metric" test_thm20_host_not_metric;
      ] );
    ( "constructions.thm1",
      [ case "metric upper bound holds" test_thm1_upper_bound_on_constructions ] );
  ]
