(* The serve subsystem: wire protocol, session manager, stdio transport,
   and the crash-tolerance story (chaos-injected worker crashes, torn
   journals resumed across daemon restarts).

   Also home of the protocol-hostile Json tests: the daemon trusts
   [Gncg_runs.Json] with adversarial client input, so escaping, deep
   nesting, oversized lines and NaN/null behavior are pinned here. *)

open Helpers
module P = Gncg_serve.Protocol
module Session = Gncg_serve.Session
module Server = Gncg_serve.Server
module Client = Gncg_serve.Client
module Pool = Gncg_serve.Pool
module Json = Gncg_runs.Json
module Job = Gncg_runs.Job
module Batch = Gncg_runs.Batch
module Chaos = Gncg_runs.Chaos
module E = Gncg_util.Gncg_error
module Metric = Gncg_obs.Metric

let model = Gncg_workload.Instances.Euclid { norm = L2; d = 2; box = 100.0 }

let small_config =
  Batch.config ~max_steps:4000 model ~ns:[ 4; 5 ] ~alphas:[ 1.5; 3.0 ] ~seeds:[ 1; 2 ]

let sweep_job = P.Sweep { config = small_config; budget = None; retries = None }

let eq_job ~seed =
  P.Eq_check
    { model; n = 6; alpha = 2.0; seed; check = Gncg.Equilibrium.GE; stabilize = true }

let tmp_counter = ref 0

let tmp_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gncg-serve-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let ok_exn label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (E.to_string e)

let jint key j =
  match Result.bind (Json.member key j) Json.get_int with
  | Ok i -> i
  | Error m -> Alcotest.failf "field %S: %s" key m

(* --- protocol ---------------------------------------------------------- *)

let roundtrip_request envelope =
  let line = Json.to_string (P.request_to_json envelope) in
  let back = ok_exn "request_of_line" (P.request_of_line line) in
  Alcotest.(check string)
    "request round trip" line
    (Json.to_string (P.request_to_json back))

let test_request_roundtrips () =
  List.iter roundtrip_request
    [
      { P.id = "a"; request = P.Ping };
      { P.id = "b"; request = P.Submit sweep_job };
      { P.id = "c"; request = P.Submit (eq_job ~seed:3) };
      {
        P.id = "d";
        request =
          P.Submit (P.Best_response { model; n = 7; alpha = 1.0; seed = 9; agent = 2 });
      };
      { P.id = "e"; request = P.Status None };
      { P.id = "f"; request = P.Status (Some "j1") };
      { P.id = "g"; request = P.Watch { job = "j1"; since = 17; trace = true } };
      { P.id = "h"; request = P.Cancel "j2" };
      { P.id = "i"; request = P.Fetch "j3" };
      { P.id = "quoted \"id\" \\ with\nnewline"; request = P.Shutdown };
    ]

let roundtrip_response resp =
  let line = Json.to_string (P.response_to_json resp) in
  let back = ok_exn "response_of_line" (P.response_of_line line) in
  Alcotest.(check string)
    "response round trip" line
    (Json.to_string (P.response_to_json back))

let test_response_roundtrips () =
  roundtrip_response (P.Reply { id = "r1"; data = Json.Obj [ ("x", Json.num_int 3) ] });
  roundtrip_response
    (P.Event
       {
         id = "r2";
         event =
           {
             P.seq = 12;
             name = "job-result";
             data = Json.Obj [ ("nested", Json.Obj [ ("deep", Json.List [ Json.Null ]) ]) ];
           };
       });
  (* Refusals must reconstruct the exact typed error, location included. *)
  let error =
    E.v ~where:(E.Pair (3, 7)) ~context:"Serve.Session" E.Bounds "agent out of range"
  in
  let line = Json.to_string (P.response_to_json (P.Refused { id = "r3"; error })) in
  match ok_exn "refusal" (P.response_of_line line) with
  | P.Refused { id; error = back } ->
    Alcotest.(check string) "refusal id" "r3" id;
    check_true "refusal error round trips exactly" (back = error)
  | _ -> Alcotest.fail "expected a refusal"

let test_version_rejected () =
  match P.request_of_line {|{"v":2,"id":"x","op":"ping"}|} with
  | Error e ->
    check_true "kind is Parse" (e.E.kind = E.Parse);
    check_true "message names the version" (contains (E.to_string e) "2")
  | Ok _ -> Alcotest.fail "version 2 must be rejected"

let test_malformed_requests () =
  let refused line =
    match P.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse refusal for %s" line
  in
  refused "not json at all";
  refused {|{"v":1,"id":"x","op":"warp"}|};
  refused {|{"v":1,"op":"ping"}|};
  refused {|{"v":1,"id":"x","op":"submit","job":{"kind":"sweep","model":"euclid"}}|};
  refused
    {|{"v":1,"id":"x","op":"submit","job":{"kind":"sweep","model":"euclid","ns":[],"alphas":[1.0],"seeds":[1]}}|};
  refused {|{"v":1,"id":"x","op":"submit","job":{"kind":"eq-check","model":"euclid","n":0,"alpha":1.0,"seed":1,"check":"ge"}}|}

let test_job_keys () =
  let k1 = P.job_key sweep_job and k1' = P.job_key sweep_job in
  Alcotest.(check string) "key is deterministic" k1 k1';
  Alcotest.(check int) "key is 16 hex chars" 16 (String.length k1);
  String.iter
    (fun c ->
      check_true "hex digit" ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    k1;
  check_true "different jobs, different keys"
    (P.job_key (eq_job ~seed:1) <> P.job_key (eq_job ~seed:2));
  (* Decoding the canonical form must preserve the key: the daemon dedups
     on it across the wire. *)
  let back = ok_exn "job_of_json" (P.job_of_json (P.job_to_json sweep_job)) in
  Alcotest.(check string) "key survives the wire" k1 (P.job_key back)

(* --- protocol-hostile Json payloads ------------------------------------ *)

let json_roundtrip label v =
  match Json.parse (Json.to_string v) with
  | Ok back -> Alcotest.(check string) label (Json.to_string v) (Json.to_string back)
  | Error m -> Alcotest.failf "%s: %s" label m

let test_json_escaping () =
  json_roundtrip "quotes and backslashes"
    (Json.Str {|she said "hi\there" \\ and left|});
  json_roundtrip "newlines and tabs" (Json.Str "line one\nline two\ttabbed\rreturn");
  json_roundtrip "control bytes" (Json.Str "nul-adjacent:\x01\x02\x1f end");
  json_roundtrip "object keys need escaping too"
    (Json.Obj [ ({|key "with" quotes|}, Json.Bool true); ("tab\tkey", Json.Null) ]);
  (* \u escapes parse back to the byte the codec rendered them from. *)
  (match Json.parse {|"A\u0009B"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes decode" "A\tB" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.failf "unicode escapes: %s" m);
  (* A rendered line must never contain a raw newline: the protocol is
     line-delimited and an embedded newline would tear framing. *)
  let line = Json.to_string (Json.Str "a\nb\rc") in
  String.iter (fun c -> check_true "no raw newline in framing" (c <> '\n' && c <> '\r')) line

let test_json_nesting () =
  let deep =
    let rec build k acc =
      if k = 0 then acc
      else build (k - 1) (Json.Obj [ ("child", acc); ("k", Json.num_int k) ])
    in
    build 100 (Json.List [ Json.Str "leaf"; Json.Null; Json.Bool false ])
  in
  json_roundtrip "100-deep nested objects" deep

let test_json_big_line () =
  (* > 64 KiB on one line, with escape-needing characters sprinkled in. *)
  let chunk = "payload-\"quote\"-\\slash\\-\x02-" in
  let b = Buffer.create 70_000 in
  while Buffer.length b < 66_000 do
    Buffer.add_string b chunk
  done;
  let big_str = Json.Str (Buffer.contents b) in
  let line = Json.to_string big_str in
  check_true "line exceeds 64 KiB" (String.length line > 65_536);
  json_roundtrip "oversized string line" big_str;
  let big_list = Json.List (List.init 20_000 (fun i -> Json.num_int i)) in
  check_true "list line exceeds 64 KiB"
    (String.length (Json.to_string big_list) > 65_536);
  json_roundtrip "oversized array line" big_list

let test_json_nan_null () =
  (* Non-finite floats render as null — lossy by design — and null reads
     back as NaN through get_float. *)
  Alcotest.(check string) "NaN renders as null" "null" (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string)
    "infinity renders as null" "null"
    (Json.to_string (Json.Num Float.infinity));
  (match Json.parse "null" with
  | Ok v -> check_true "null reads back as NaN" (Float.is_nan (Result.get_ok (Json.get_float v)))
  | Error m -> Alcotest.failf "parse null: %s" m);
  (* Through the protocol: a null budget means "no budget", not NaN. *)
  let line =
    Printf.sprintf
      {|{"kind":"sweep","model":"%s","ns":[4],"alphas":[1.5],"seeds":[1],"budget":null,"retries":null}|}
      (Job.model_to_string model)
  in
  match
    Result.bind (Json.parse line) (fun j ->
        Result.map_error E.to_string (P.job_of_json j))
  with
  | Ok (P.Sweep { budget = None; retries = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "null budget/retries must decode to None"
  | Error m -> Alcotest.failf "null budget: %s" m

let test_json_parse_errors () =
  let bad line =
    match Json.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %s" line
  in
  bad {|{"a":1}trailing|};
  bad {|"unterminated|};
  bad {|{"a":}|};
  bad {|[1,2,|};
  bad {|{"bad escape":"\q"}|}

(* --- session ----------------------------------------------------------- *)

let collect_events session id =
  let rec go since acc =
    match Session.events_after session ~job:id ~since with
    | Error e -> Alcotest.failf "events_after: %s" (E.to_string e)
    | Ok (events, terminal) ->
      let acc = acc @ events in
      let since =
        match List.rev events with e :: _ -> e.P.seq | [] -> since
      in
      if terminal then acc else go since acc
  in
  go 0 []

let find_event name events =
  match List.find_opt (fun (e : P.event) -> e.name = name) events with
  | Some e -> e.P.data
  | None ->
    Alcotest.failf "no %S event among [%s]" name
      (String.concat "; " (List.map (fun (e : P.event) -> e.P.name) events))

let submit_and_finish session job =
  let { Session.job_id; _ } = ok_exn "submit" (Session.submit session job) in
  let events = collect_events session job_id in
  (job_id, events)

let test_session_eq_check () =
  let session = Session.create ~state_dir:(tmp_dir ()) ~domains:2 () in
  let id, events = submit_and_finish session (eq_job ~seed:1) in
  let verdict = find_event "verdict" events in
  check_true "greedy dynamics converged to a GE"
    (Result.get_ok (Result.bind (Json.member "holds" verdict) Json.get_bool));
  check_true "job is done"
    (ok_exn "state" (Session.job_state session id) = P.Done);
  check_true "host cached" (Session.hosts_cached session = 1);
  (* Same instance again: served from the cache, same verdict. *)
  let _, events2 = submit_and_finish session (eq_job ~seed:1) in
  ignore (find_event "verdict" events2);
  Alcotest.(check int) "no duplicate host construction" 1 (Session.hosts_cached session);
  Session.drain session

let test_session_sweep_matches_batch () =
  let session = Session.create ~state_dir:(tmp_dir ()) ~domains:2 () in
  let id, events = submit_and_finish session sweep_job in
  let summary = find_event "summary" events in
  Alcotest.(check int) "all jobs ran" 8 (jint "executed" summary);
  Alcotest.(check int) "all jobs completed" 8 (jint "completed" summary);
  let csv = ok_exn "fetch_csv" (Session.fetch_csv session id) in
  let direct = Batch.run ~domains:2 small_config in
  Alcotest.(check string)
    "daemon csv is byte-identical to the batch csv"
    (Gncg_workload.Report.runs_to_csv direct.Batch.runs)
    csv;
  (* Resubmission dedups onto the finished job. *)
  let again = ok_exn "resubmit" (Session.submit session sweep_job) in
  check_true "second submission attached" again.Session.attached;
  Alcotest.(check string) "same job id" id again.Session.job_id;
  Session.drain session

let test_session_validation () =
  let session = Session.create ~state_dir:(tmp_dir ()) ~domains:2 () in
  (match
     Session.submit session
       (P.Eq_check
          {
            model;
            n = 13;
            alpha = 1.0;
            seed = 1;
            check = Gncg.Equilibrium.NE;
            stabilize = false;
          })
   with
  | Error e -> check_true "NE guard is a Bounds error" (e.E.kind = E.Bounds)
  | Ok _ -> Alcotest.fail "NE check with n = 13 must be refused");
  (match
     Session.submit session
       (P.Best_response { model; n = 5; alpha = 1.0; seed = 1; agent = 5 })
   with
  | Error e -> check_true "agent bound is a Bounds error" (e.E.kind = E.Bounds)
  | Ok _ -> Alcotest.fail "agent 5 of 5 must be refused");
  (match Session.job_state session "j999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown job id must be refused");
  Session.drain session;
  match Session.submit session (eq_job ~seed:1) with
  | Error e -> check_true "drained session refuses with Io" (e.E.kind = E.Io)
  | Ok _ -> Alcotest.fail "a drained session must refuse submissions"

let test_session_cancel () =
  (* A slow exec seam keeps the first sweep on the executor long enough
     for the second to still be queued when the cancel lands. *)
  let slow spec =
    Thread.delay 0.02;
    Job.execute spec
  in
  let session =
    Session.create ~state_dir:(tmp_dir ()) ~domains:2 ~exec_seam:slow ()
  in
  let first = ok_exn "submit 1" (Session.submit session sweep_job) in
  let second =
    ok_exn "submit 2"
      (Session.submit session
         (P.Sweep
            {
              config =
                Batch.config ~max_steps:4000 model ~ns:[ 4 ] ~alphas:[ 9.0 ]
                  ~seeds:[ 1 ];
              budget = None;
              retries = None;
            }))
  in
  check_true "queued job cancels"
    (ok_exn "cancel" (Session.cancel session second.Session.job_id));
  check_true "cancelled state"
    (ok_exn "state" (Session.job_state session second.Session.job_id) = P.Cancelled);
  (* The cancelled job's watch terminates immediately... *)
  let events = collect_events session second.Session.job_id in
  check_true "cancelled stream closed" (events <> []);
  (* ...and cancelling the finished first job is a no-op. *)
  ignore (collect_events session first.Session.job_id);
  check_false "terminal job does not cancel"
    (ok_exn "cancel done" (Session.cancel session first.Session.job_id));
  Session.drain session

let test_concurrent_sessions () =
  let session = Session.create ~state_dir:(tmp_dir ()) ~domains:2 () in
  (* Eight client threads: four submit distinct queries, four watch the
     same sweep; every watcher must replay the identical stream. *)
  let { Session.job_id = sweep_id; _ } =
    ok_exn "submit sweep" (Session.submit session sweep_job)
  in
  let watcher_counts = Array.make 4 0 in
  let watchers =
    List.init 4 (fun i ->
        Thread.create
          (fun () -> watcher_counts.(i) <- List.length (collect_events session sweep_id))
          ())
  in
  let submitter_results = Array.make 4 false in
  let submitters =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let _, events = submit_and_finish session (eq_job ~seed:(i + 1)) in
            submitter_results.(i) <-
              (try
                 ignore (find_event "verdict" events);
                 true
               with _ -> false))
          ())
  in
  List.iter Thread.join (watchers @ submitters);
  Array.iteri
    (fun i ok -> check_true (Printf.sprintf "submitter %d got a verdict" i) ok)
    submitter_results;
  Array.iter
    (fun c -> Alcotest.(check int) "watchers agree on the stream" watcher_counts.(0) c)
    watcher_counts;
  check_true "watchers saw the whole stream" (watcher_counts.(0) > 8);
  Session.drain session

(* --- crash tolerance --------------------------------------------------- *)

let test_chaos_crashed_workers () =
  (* Every job crashes on its first attempt (Injected_crash inside the
     worker domain); with one retry the batch must still complete. *)
  let plan = Chaos.plan ~crash_p:1.0 ~fault_attempts:1 ~seed:77 () in
  let seam = Chaos.wrap plan ~key:Job.hash Job.execute in
  let session =
    Session.create ~state_dir:(tmp_dir ()) ~domains:2 ~retries:1 ~exec_seam:seam ()
  in
  let id, events = submit_and_finish session sweep_job in
  let summary = find_event "summary" events in
  Alcotest.(check int) "every job completed despite crashing" 8 (jint "completed" summary);
  Alcotest.(check int) "no crash survives the retry" 0 (jint "crashed" summary);
  Alcotest.(check int) "one retry per job" 8 (jint "retries" summary);
  check_true "job is done" (ok_exn "state" (Session.job_state session id) = P.Done);
  Session.drain session

let test_torn_journal_resume () =
  (* A daemon killed mid-append leaves a torn journal; a fresh session
     on the same state dir must resume it, re-executing exactly the one
     job whose record was torn off. *)
  let dir = tmp_dir () in
  let journal = Filename.concat dir ("sweep-" ^ P.job_key sweep_job ^ ".jsonl") in
  let (_ : Batch.summary) = Batch.run ~domains:2 ~journal small_config in
  Chaos.truncate_last_line journal;
  let session = Session.create ~state_dir:dir ~domains:2 () in
  let id, events = submit_and_finish session sweep_job in
  let summary = find_event "summary" events in
  Alcotest.(check int) "exactly the torn job re-executed" 1 (jint "executed" summary);
  Alcotest.(check int) "the rest skipped" 7 (jint "skipped" summary);
  Alcotest.(check int) "full batch completed" 8 (jint "completed" summary);
  let csv = ok_exn "fetch_csv" (Session.fetch_csv session id) in
  let direct = Batch.run ~domains:2 small_config in
  Alcotest.(check string)
    "resumed csv is byte-identical"
    (Gncg_workload.Report.runs_to_csv direct.Batch.runs)
    csv;
  Session.drain session

(* --- the worker pool --------------------------------------------------- *)

(* Process-level supervision under deterministic chaos: the worker-side
   fault oracle keys on (payload key, supervisor-tracked attempt), so a
   "kill the worker on the first attempt of every job" script converges
   after exactly one requeue per job — no racing external signals.

   Workers are spawned by exec'ing the real gncg binary with --chaos-*
   flags, not by forking a closure: OCaml 5 forbids [Unix.fork] while
   other domains are running, and respawns happen mid-sweep with the
   scheduler's domains live.  [Unix.create_process] has no such
   restriction, and the chaos oracle is pure in (seed, key, attempt), so
   the flag-built plan decides identically to an in-process one. *)

let gncg_exe =
  (* main.exe lives at _build/default/test/; the CLI two doors down. *)
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "gncg_cli.exe")

let chaos_spawn ?(kill_p = 0.0) ?(hang_p = 0.0) ?(hang_s = 5.0) ?(fault_attempts = 1)
    ~seed () =
  Pool.spawn_exec
    [|
      gncg_exe; "worker";
      "--chaos-kill-p"; string_of_float kill_p;
      "--chaos-hang-p"; string_of_float hang_p;
      "--chaos-hang-s"; string_of_float hang_s;
      "--chaos-fault-attempts"; string_of_int fault_attempts;
      "--chaos-seed"; string_of_int seed;
    |]

let with_metrics f =
  let was = Metric.enabled () in
  Metric.set_enabled true;
  Fun.protect ~finally:(fun () -> Metric.set_enabled was) f

let counter name = Metric.Counter.make ("serve.pool." ^ name)

let jbool key j =
  match Result.bind (Json.member key j) Json.get_bool with
  | Ok b -> b
  | Error m -> Alcotest.failf "field %S: %s" key m

let test_pool_kill_requeue () =
  with_metrics (fun () ->
      let requeues0 = Metric.Counter.value (counter "requeues") in
      let restarts0 = Metric.Counter.value (counter "restarts") in
      (* Every spec's first dispatch SIGKILLs its worker mid-job. *)
      let session =
        Session.create ~state_dir:(tmp_dir ()) ~workers:2
          ~pool_spawn:(chaos_spawn ~kill_p:1.0 ~fault_attempts:1 ~seed:11 ())
          ~pool_config:{ Pool.default_config with Pool.breaker_threshold = 1000 }
          ()
      in
      let id, events = submit_and_finish session sweep_job in
      let summary = find_event "summary" events in
      Alcotest.(check int) "every job completed" 8 (jint "completed" summary);
      Alcotest.(check int) "no crash surfaced" 0 (jint "crashed" summary);
      check_true "job is done" (ok_exn "state" (Session.job_state session id) = P.Done);
      (* Each of the 8 specs cost one requeue and one worker restart. *)
      check_true "requeues counted"
        (Metric.Counter.value (counter "requeues") - requeues0 >= 8);
      check_true "restarts counted"
        (Metric.Counter.value (counter "restarts") - restarts0 >= 8);
      let csv = ok_exn "fetch_csv" (Session.fetch_csv session id) in
      let direct = Batch.run ~domains:2 small_config in
      Alcotest.(check string)
        "csv after 8 mid-job worker kills is byte-identical"
        (Gncg_workload.Report.runs_to_csv direct.Batch.runs)
        csv;
      Session.drain session)

let test_pool_hang_times_out () =
  with_metrics (fun () ->
      (* The one spec hangs its worker far beyond the job budget; the
         supervisor must SIGKILL at the deadline and the scheduler must
         classify the job [Timeout] — same verdict as an in-process
         overrun, minutes earlier than the hang. *)
      let config =
        Batch.config ~max_steps:4000 model ~ns:[ 4 ] ~alphas:[ 1.5 ] ~seeds:[ 1 ]
      in
      let session =
        Session.create ~state_dir:(tmp_dir ()) ~workers:1
          ~pool_spawn:(chaos_spawn ~hang_p:1.0 ~hang_s:30.0 ~fault_attempts:1 ~seed:7 ())
          ~pool_config:{ Pool.default_config with Pool.breaker_threshold = 1000 }
          ()
      in
      let t0 = Unix.gettimeofday () in
      let id, events =
        submit_and_finish session
          (P.Sweep { config; budget = Some 0.3; retries = None })
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let summary = find_event "summary" events in
      Alcotest.(check int) "the hung job timed out" 1 (jint "timeout" summary);
      Alcotest.(check int) "nothing completed" 0 (jint "completed" summary);
      check_true "sweep itself is done"
        (ok_exn "state" (Session.job_state session id) = P.Done);
      check_true
        (Printf.sprintf "SIGKILL at the deadline, not after the hang (%.1fs)" elapsed)
        (elapsed < 10.0);
      Session.drain session)

let test_pool_breaker_degrades () =
  with_metrics (fun () ->
      let trips0 = Metric.Counter.value (counter "breaker_trips") in
      let degraded0 = Metric.Counter.value (counter "degraded_jobs") in
      (* Kill on EVERY attempt: a restart storm no requeue can outrun.
         The breaker must trip and the session must finish the sweep
         in-process. *)
      let session =
        Session.create ~state_dir:(tmp_dir ()) ~workers:1
          ~pool_spawn:(chaos_spawn ~kill_p:1.0 ~fault_attempts:1_000 ~seed:3 ())
          ~pool_config:
            {
              Pool.default_config with
              Pool.breaker_threshold = 3;
              breaker_window = 60.0;
              max_requeues = 50;
              backoff_base = 0.01;
            }
          ()
      in
      let id, events = submit_and_finish session sweep_job in
      let summary = find_event "summary" events in
      Alcotest.(check int)
        "every job completed despite the dead pool" 8 (jint "completed" summary);
      check_true "job is done" (ok_exn "state" (Session.job_state session id) = P.Done);
      check_true "breaker tripped"
        (Metric.Counter.value (counter "breaker_trips") - trips0 >= 1);
      check_true "degraded jobs counted"
        (Metric.Counter.value (counter "degraded_jobs") - degraded0 >= 1);
      (match Session.pool_status session with
      | Some status -> check_true "status shows the open breaker" (jbool "breaker_open" status)
      | None -> Alcotest.fail "session has a pool");
      (* Queries degrade too: answered in-process, against the session
         cache. *)
      let _, qevents = submit_and_finish session (eq_job ~seed:1) in
      ignore (find_event "verdict" qevents);
      Alcotest.(check int) "degraded query hit the session cache" 1
        (Session.hosts_cached session);
      Session.drain session)

let test_pool_crash_frames_in_status () =
  with_metrics (fun () ->
      (* A worker that dies on every attempt exhausts its requeues; the
         job fails with the supervisor's crash record, and `client
         status` must show it even though no watcher saw the job die. *)
      let session =
        Session.create ~state_dir:(tmp_dir ()) ~workers:1
          ~pool_spawn:(chaos_spawn ~kill_p:1.0 ~fault_attempts:1_000 ~seed:5 ())
          ~pool_config:
            {
              Pool.default_config with
              Pool.breaker_threshold = 1000;
              max_requeues = 1;
              backoff_base = 0.01;
            }
          ()
      in
      let { Session.job_id = id; _ } =
        ok_exn "submit" (Session.submit session (eq_job ~seed:9))
      in
      let (_ : P.event list) = collect_events session id in
      (match ok_exn "state" (Session.job_state session id) with
      | P.Failed msg -> check_true "failure names the dead worker" (contains msg "died")
      | s -> Alcotest.failf "expected Failed, got %s" (P.job_state_string s));
      let status = ok_exn "status" (Session.status_json session (Some id)) in
      let crash =
        match Json.member "crash" status with
        | Ok c -> c
        | Error m -> Alcotest.failf "status has no crash record: %s" m
      in
      check_true "crash message preserved"
        (contains
           (Result.get_ok (Result.bind (Json.member "msg" crash) Json.get_string))
           "died mid-job");
      check_true "crash record has a backtrace field"
        (Result.is_ok (Json.member "backtrace" crash));
      Session.drain session)

(* --- stdio transport --------------------------------------------------- *)

let with_stdio_client f =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let session = Session.create ~state_dir:(tmp_dir ()) ~domains:2 () in
  let server =
    Thread.create
      (fun () ->
        Server.serve_stdio session
          (Unix.in_channel_of_descr c2s_r)
          (Unix.out_channel_of_descr s2c_w))
      ()
  in
  let client =
    Client.of_channels (Unix.in_channel_of_descr s2c_r) (Unix.out_channel_of_descr c2s_w)
  in
  let result = f client in
  ok_exn "shutdown" (Client.shutdown client);
  Thread.join server;
  Client.close client;
  result

let test_stdio_end_to_end () =
  with_stdio_client (fun client ->
      let uptime = ok_exn "ping" (Client.ping client) in
      check_true "uptime is sane" (uptime >= 0.0);
      let id, attached = ok_exn "submit" (Client.submit client sweep_job) in
      check_false "fresh submission" attached;
      let names = ref [] in
      let done_data =
        ok_exn "watch"
          (Client.watch client
             ~on_event:(fun e -> names := e.P.name :: !names)
             id)
      in
      Alcotest.(check string)
        "watch terminates with done" "done"
        (Result.get_ok
           (Result.bind (Json.member "state" done_data) Json.get_string));
      check_true "saw per-job results" (List.mem "job-result" !names);
      check_true "saw the summary" (List.mem "summary" !names);
      let csv = ok_exn "fetch" (Client.fetch_csv client id) in
      let direct = Batch.run ~domains:2 small_config in
      Alcotest.(check string)
        "csv over the wire is byte-identical"
        (Gncg_workload.Report.runs_to_csv direct.Batch.runs)
        csv;
      (* Replay with since: the stream is append-only and seq-stable. *)
      let replayed = ref 0 in
      let (_ : Json.t) =
        ok_exn "re-watch" (Client.watch client ~since:2 ~on_event:(fun _ -> incr replayed) id)
      in
      check_true "replay skipped the first two events"
        (!replayed > 0 && !replayed < List.length !names + 1);
      (* Errors arrive as typed refusals. *)
      (match Client.fetch_csv client "j999" with
      | Error e -> check_true "unknown id refused with Bounds" (e.E.kind = E.Bounds)
      | Ok _ -> Alcotest.fail "unknown job id must be refused");
      ())

let suites =
  [
    ( "serve-protocol",
      [
        case "request round trips" test_request_roundtrips;
        case "response round trips" test_response_roundtrips;
        case "version mismatch rejected" test_version_rejected;
        case "malformed requests refused" test_malformed_requests;
        case "content keys" test_job_keys;
      ] );
    ( "serve-json-hostile",
      [
        case "string escaping" test_json_escaping;
        case "deep nesting" test_json_nesting;
        case "lines over 64 KiB" test_json_big_line;
        case "NaN and null" test_json_nan_null;
        case "parse errors" test_json_parse_errors;
      ] );
    ( "serve-session",
      [
        case "eq-check end to end" test_session_eq_check;
        slow_case "sweep matches batch csv" test_session_sweep_matches_batch;
        case "submit validation and drain" test_session_validation;
        case "cancel queued jobs" test_session_cancel;
        slow_case "concurrent sessions" test_concurrent_sessions;
      ] );
    ( "serve-crash",
      [
        slow_case "chaos-crashed workers retried" test_chaos_crashed_workers;
        slow_case "torn journal resumed" test_torn_journal_resume;
      ] );
    ( "serve-pool",
      [
        slow_case "killed worker requeued, csv byte-identical" test_pool_kill_requeue;
        slow_case "hung worker killed at the budget deadline" test_pool_hang_times_out;
        slow_case "restart storm trips the breaker, jobs degrade" test_pool_breaker_degrades;
        slow_case "crash frames surface in status" test_pool_crash_frames_in_status;
      ] );
    ( "serve-stdio",
      [ slow_case "full protocol over channels" test_stdio_end_to_end ] );
  ]
