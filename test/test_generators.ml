open Helpers
module G = Gncg_graph.Generators
module Wgraph = Gncg_graph.Wgraph
module Conn = Gncg_graph.Connectivity

let test_complete () =
  let g = G.complete 6 (fun u v -> float_of_int (u + v)) in
  Alcotest.(check int) "edges" 15 (Wgraph.m g);
  Alcotest.(check (option (float 1e-9))) "weight" (Some 5.0) (Wgraph.weight g 2 3)

let test_ring () =
  let g = G.ring 5 2.0 in
  Alcotest.(check int) "edges" 5 (Wgraph.m g);
  for v = 0 to 4 do
    Alcotest.(check int) "degree 2" 2 (Wgraph.degree g v)
  done;
  check_float "diameter" 4.0 (Gncg_graph.Dijkstra.diameter g);
  Alcotest.check_raises "too small" (Invalid_argument "Generators.ring: n >= 3 required")
    (fun () -> ignore (G.ring 2 1.0))

let test_grid () =
  let g = G.grid ~rows:3 ~cols:4 1.0 in
  Alcotest.(check int) "vertices" 12 (Wgraph.n g);
  (* Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8. *)
  Alcotest.(check int) "edges" 17 (Wgraph.m g);
  check_true "connected" (Conn.is_connected g);
  (* Manhattan diameter between opposite corners. *)
  check_float "diameter" 5.0 (Gncg_graph.Dijkstra.diameter g)

let test_random_tree () =
  let r = rng 1300 in
  for _ = 1 to 5 do
    let g = G.random_tree r ~n:20 ~wmin:1.0 ~wmax:3.0 in
    check_true "is a tree" (Conn.is_tree g)
  done

let test_gnp_connected () =
  let r = rng 1301 in
  for _ = 1 to 5 do
    let g = G.gnp_connected r ~n:15 ~p:0.1 ~wmin:1.0 ~wmax:2.0 in
    check_true "connected" (Conn.is_connected g)
  done

let test_gnp_density () =
  let r = rng 1302 in
  let g0 = G.gnp r ~n:30 ~p:0.0 ~wmin:1.0 ~wmax:2.0 in
  Alcotest.(check int) "p=0 empty" 0 (Wgraph.m g0);
  let g1 = G.gnp r ~n:30 ~p:1.0 ~wmin:1.0 ~wmax:2.0 in
  Alcotest.(check int) "p=1 complete" (30 * 29 / 2) (Wgraph.m g1)

let test_barabasi_albert () =
  let r = rng 1303 in
  let n = 40 and attach = 2 in
  let g = G.barabasi_albert r ~n ~attach ~wmin:1.0 ~wmax:1.0 in
  check_true "connected" (Conn.is_connected g);
  (* Seed clique (3 edges for attach=2) + attach edges per later vertex. *)
  Alcotest.(check int) "edge count" (3 + (attach * (n - attach - 1))) (Wgraph.m g);
  (* Preferential attachment should produce a hub noticeably above the
     attachment constant. *)
  let maxdeg = ref 0 in
  for v = 0 to n - 1 do
    maxdeg := max !maxdeg (Wgraph.degree g v)
  done;
  check_true "has a hub" (!maxdeg >= 2 * attach + 1)

let test_net_stats () =
  let host = Gncg.Host.make ~alpha:1.0 (Gncg_metric.Metric.make 4 (fun _ _ -> 1.0)) in
  let s = Gncg.Strategy.star 4 ~center:0 in
  let st = Gncg.Net_stats.of_profile host s in
  Alcotest.(check int) "m" 3 st.Gncg.Net_stats.m;
  check_true "tree" st.Gncg.Net_stats.is_tree;
  check_float "diameter" 2.0 st.Gncg.Net_stats.diameter;
  check_float "avg degree" 1.5 st.Gncg.Net_stats.avg_degree;
  Alcotest.(check int) "max degree" 3 st.Gncg.Net_stats.max_degree;
  check_float "stretch" 2.0 st.Gncg.Net_stats.stretch;
  Alcotest.(check int) "row arity" (List.length Gncg.Net_stats.header)
    (List.length (Gncg.Net_stats.row st))

let suites =
  [
    ( "graph.generators",
      [
        case "complete" test_complete;
        case "ring" test_ring;
        case "grid" test_grid;
        case "random tree" test_random_tree;
        case "gnp connected" test_gnp_connected;
        case "gnp density extremes" test_gnp_density;
        case "barabasi-albert" test_barabasi_albert;
      ] );
    ("game.net-stats", [ case "star stats" test_net_stats ]);
  ]
