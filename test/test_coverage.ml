(* Residual coverage: small behaviours of the public API not pinned
   elsewhere. *)

open Helpers
module Wgraph = Gncg_graph.Wgraph

let test_bfs_reachable () =
  let g = Wgraph.of_edges 4 [ (0, 1, 1.0) ] in
  Alcotest.(check (array bool)) "reachable flags" [| true; true; false; false |]
    (Gncg_graph.Bfs.reachable g 0)

let test_pairing_heap_empty_ops () =
  let h = Gncg_graph.Pairing_heap.empty ~cmp:compare in
  Alcotest.(check (option int)) "find_min empty" None (Gncg_graph.Pairing_heap.find_min h);
  check_true "delete_min empty" (Gncg_graph.Pairing_heap.delete_min h = None);
  Alcotest.(check int) "size empty" 0 (Gncg_graph.Pairing_heap.size h)

let test_heap_priority_query () =
  let h = Gncg_graph.Binary_heap.create 4 in
  Alcotest.(check (option (float 0.0))) "absent" None (Gncg_graph.Binary_heap.priority h 2);
  Gncg_graph.Binary_heap.insert h 2 1.5;
  Alcotest.(check (option (float 0.0))) "present" (Some 1.5)
    (Gncg_graph.Binary_heap.priority h 2)

let test_tablefmt_alignment () =
  let s =
    Gncg_util.Tablefmt.render
      ~align:[ Gncg_util.Tablefmt.Left; Gncg_util.Tablefmt.Right ]
      ~header:[ "name"; "v" ]
      [ [ "a"; "10" ]; [ "bb"; "5" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* Left column pads on the right, right column pads on the left. *)
  check_true "left aligned" (List.exists (fun l -> String.length l >= 2 && l.[0] = 'a' && l.[1] = ' ') lines);
  check_true "right aligned" (List.exists (fun l ->
      String.length l > 0 && l.[String.length l - 1] = '5') lines)

let test_network_distance_helpers () =
  let host =
    Gncg.Host.make ~alpha:1.0
      (Gncg_metric.Euclidean.metric L1 (Gncg_metric.Euclidean.line [ 0.0; 1.0; 3.0 ]))
  in
  let s = Gncg.Strategy.of_lists 3 [ (0, [ 1 ]); (1, [ 2 ]) ] in
  let d0 = Gncg.Network.distances_from host s 0 in
  Alcotest.(check (array (float 1e-9))) "distances from 0" [| 0.0; 1.0; 3.0 |] d0;
  let all = Gncg.Network.all_distances host s in
  check_float "all distances symmetric" all.(0).(2) all.(2).(0)

let test_host_with_alpha_shares_metric () =
  let m = Gncg_metric.Metric.make 3 (fun _ _ -> 2.0) in
  let h = Gncg.Host.make ~alpha:1.0 m in
  let h' = Gncg.Host.with_alpha 4.0 h in
  check_float "weights preserved" (Gncg.Host.weight h 0 1) (Gncg.Host.weight h' 0 1);
  check_float "price scales" 8.0 (Gncg.Host.edge_price h' 0 1)

let test_move_pp () =
  Alcotest.(check string) "add" "add->3" (Format.asprintf "%a" Gncg.Move.pp (Gncg.Move.Add 3));
  Alcotest.(check string) "del" "del->1" (Format.asprintf "%a" Gncg.Move.pp (Gncg.Move.Delete 1));
  Alcotest.(check string) "swap" "swap 1=>2"
    (Format.asprintf "%a" Gncg.Move.pp (Gncg.Move.Swap (1, 2)))

let test_metric_pp_and_strategy_pp () =
  let m = Gncg_metric.Metric.make 2 (fun _ _ -> 1.0) in
  check_true "metric pp renders" (String.length (Format.asprintf "%a" Gncg_metric.Metric.pp m) > 0);
  let s = Gncg.Strategy.of_lists 2 [ (0, [ 1 ]) ] in
  let rendered = Format.asprintf "%a" Gncg.Strategy.pp s in
  check_true "strategy pp mentions purchase"
    (String.length rendered > 0
    && String.split_on_char '\n' rendered
       |> List.exists (fun l -> String.trim l = "0 buys {1}"))

let test_wgraph_pp () =
  let g = Wgraph.of_edges 2 [ (0, 1, 1.5) ] in
  check_true "graph pp renders" (String.length (Format.asprintf "%a" Wgraph.pp g) > 0)

let test_dot_to_file () =
  let g = Wgraph.of_edges 2 [ (0, 1, 1.0) ] in
  let path = Filename.temp_file "gncg" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gncg_graph.Dot.to_file path g;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      check_true "file written" (len > 10))

let test_spanner_of_one_point () =
  let g = Gncg_graph.Spanner.greedy 1 (fun _ _ -> 1.0) 2.0 in
  Alcotest.(check int) "no edges" 0 (Wgraph.m g);
  check_float "stretch of trivial host" 1.0 (Gncg_graph.Spanner.stretch ~host:(fun _ _ -> 1.0) g)

let test_single_agent_game () =
  (* Degenerate but legal: one agent, nothing to buy, zero cost. *)
  let host = Gncg.Host.make ~alpha:1.0 (Gncg_metric.Metric.make 1 (fun _ _ -> 1.0)) in
  let s = Gncg.Strategy.empty 1 in
  check_float "zero cost" 0.0 (Gncg.Cost.social_cost host s);
  check_true "trivially NE" (Gncg.Equilibrium.is_ne host s)

let test_two_agent_equilibria () =
  (* n = 2 with weight w: the single-edge network is always the optimum
     and, bought by either side, a NE (deleting disconnects; nothing else
     to do). *)
  let host = Gncg.Host.make ~alpha:3.0 (Gncg_metric.Metric.make 2 (fun _ _ -> 5.0)) in
  let s = Gncg.Strategy.of_lists 2 [ (0, [ 1 ]) ] in
  check_true "edge profile is NE" (Gncg.Equilibrium.is_ne host s);
  let _, opt = Gncg.Social_optimum.exact_small host in
  check_float "optimal" opt (Gncg.Cost.social_cost host s)

let suites =
  [
    ( "coverage",
      [
        case "bfs reachable" test_bfs_reachable;
        case "pairing heap empties" test_pairing_heap_empty_ops;
        case "heap priority query" test_heap_priority_query;
        case "table alignment" test_tablefmt_alignment;
        case "network distance helpers" test_network_distance_helpers;
        case "with_alpha shares metric" test_host_with_alpha_shares_metric;
        case "move printer" test_move_pp;
        case "metric & strategy printers" test_metric_pp_and_strategy_pp;
        case "graph printer" test_wgraph_pp;
        case "dot to file" test_dot_to_file;
        case "trivial spanner" test_spanner_of_one_point;
        case "single-agent game" test_single_agent_game;
        case "two-agent equilibrium" test_two_agent_equilibria;
      ] );
  ]
