open Helpers
module Prng = Gncg_util.Prng
module Eq = Gncg.Equilibrium
module Strategy = Gncg.Strategy
module Host = Gncg.Host
module Metric = Gncg_metric.Metric

let unit_host ?(alpha = 1.0) n = Host.make ~alpha (Metric.make n (fun _ _ -> 1.0))

let test_hierarchy_ne_ge_ae () =
  (* Any NE is a GE is an AE: check on the Thm 15 equilibrium. *)
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:3.0 ~n:6 in
  let s = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:3.0 ~n:6 in
  check_true "NE" (Eq.is_ne host s);
  check_true "GE" (Eq.is_ge host s);
  check_true "AE" (Eq.is_ae host s)

let test_ae_but_not_ge () =
  (* A doubly-bought edge: no addition helps, but deleting the redundant
     purchase does — AE without GE. *)
  let host = unit_host ~alpha:2.0 2 in
  let s = Strategy.of_lists 2 [ (0, [ 1 ]); (1, [ 0 ]) ] in
  check_true "AE" (Eq.is_ae host s);
  check_false "not GE" (Eq.is_ge host s);
  check_false "not NE" (Eq.is_ne host s)

let test_ge_but_not_ne () =
  (* The GE concept is strictly weaker than NE (Lenzner 2012).  These seeds
     were found by offline search: greedy dynamics converge to a greedy
     equilibrium that an exact multi-edge best response still improves. *)
  let witnesses = ref 0 in
  List.iter
    (fun seed ->
      let r = Prng.create seed in
      let n = 5 + Prng.int r 2 in
      let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 5) in
      let alpha = 0.5 +. Prng.float r 4.0 in
      let host = Gncg_workload.Instances.random_host r model ~n ~alpha in
      let start = Gncg_workload.Instances.random_profile r host in
      match
        Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:2000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
      with
      | Gncg.Dynamics.Converged { profile; _ } ->
        if Eq.is_ge host profile && not (Eq.is_ne host profile) then incr witnesses
      | _ -> ())
    [ 729; 1141; 1387; 1593; 1993 ];
  check_true "found GE that is not NE" (!witnesses > 0)

let test_empty_profile_stability () =
  (* n = 2: buying the single edge turns infinite cost finite, so the empty
     profile is not add-only stable. *)
  check_false "empty not AE (n=2)" (Eq.is_ae (unit_host 2) (Strategy.empty 2));
  (* n = 3: one added edge still leaves the buyer at infinite cost (the
     third agent stays unreachable), so the empty profile is — degenerately
     — add-only stable; a two-edge deviation connects everyone, so it is
     not a NE. *)
  let host = unit_host 3 in
  let s = Strategy.empty 3 in
  check_true "empty is AE (n=3, infinite plateau)" (Eq.is_ae host s);
  check_false "empty not NE (n=3)" (Eq.is_ne host s)

let test_unhappy_agents () =
  let host = unit_host ~alpha:2.0 2 in
  let s = Strategy.of_lists 2 [ (0, [ 1 ]); (1, [ 0 ]) ] in
  Alcotest.(check (list int)) "both owners unhappy (GE)" [ 0; 1 ] (Eq.unhappy_agents Eq.GE host s);
  Alcotest.(check (list int)) "nobody unhappy (AE)" [] (Eq.unhappy_agents Eq.AE host s)

let test_star_ne_alpha_ge_3 () =
  (* Thm 10: for alpha >= 3 any star on a 1-2 host is a NE. *)
  let r = rng 301 in
  for _ = 1 to 5 do
    let n = 6 in
    let m = Gncg_metric.One_two.random r ~n ~p_one:0.5 in
    let host = Host.make ~alpha:(3.0 +. Prng.float r 4.0) m in
    let center = Prng.int r n in
    let s = Strategy.star n ~center in
    check_true "star is NE (Thm 10)" (Eq.is_ne host s)
  done

let test_star_not_ne_small_alpha () =
  (* For alpha < 1/2 every missing 1-edge is an improving buy (Lemma 3), so
     a star over a host with spare 1-edges cannot be a NE. *)
  let m = Gncg_metric.One_two.of_one_edges 4 [ (1, 2); (2, 3); (1, 3) ] in
  let host = Host.make ~alpha:0.3 m in
  let s = Strategy.star 4 ~center:0 in
  check_false "star not NE for tiny alpha" (Eq.is_ne host s)

let test_lemma3_one_edges_improving () =
  (* Lemma 3: for alpha < 1 buying a missing 1-edge strictly improves. *)
  let m = Gncg_metric.One_two.of_one_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let host = Host.make ~alpha:0.9 m in
  (* Path 0-1-2 misses the 1-edge (0,2). *)
  let s = Strategy.of_lists 3 [ (0, [ 1 ]); (1, [ 2 ]) ] in
  let gain = Gncg.Greedy.move_gain host s ~agent:0 (Gncg.Move.Add 2) in
  check_true "buying missing 1-edge improves" (gain > 0.0);
  check_float ~tol:1e-9 "gain is 1 - alpha" (1.0 -. 0.9) gain

let test_approx_factor_at_equilibrium () =
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:2.0 ~n:6 in
  let s = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:2.0 ~n:6 in
  check_float ~tol:1e-9 "NE factor is 1" 1.0 (Eq.approx_factor Eq.NE host s);
  check_true "beta-NE for beta=1" (Eq.is_beta Eq.NE ~beta:1.0 host s)

let test_approx_factor_detects_gap () =
  let host = unit_host ~alpha:2.0 2 in
  let s = Strategy.of_lists 2 [ (0, [ 1 ]); (1, [ 0 ]) ] in
  (* Each owner pays 2 + 1 = 3 but could free-ride at 1: factor 3. *)
  check_float ~tol:1e-9 "factor" 3.0 (Eq.approx_factor Eq.NE host s);
  check_true "is 3-NE" (Eq.is_beta Eq.NE ~beta:3.0 host s);
  check_false "not 2-NE" (Eq.is_beta Eq.NE ~beta:2.0 host s)

let test_thm2_ae_is_alpha_plus_one_ge () =
  (* Thm 2: on metric hosts any AE is an (alpha+1)-approximate GE. *)
  let r = rng 302 in
  for _ = 1 to 10 do
    let n = 5 + Prng.int r 3 in
    let alpha = 0.5 +. Prng.float r 2.5 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha m in
    let start = Gncg_workload.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:3000 Gncg.Dynamics.Add_only Gncg.Dynamics.Round_robin)
      host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      check_true "converged profile is AE" (Eq.is_ae host profile);
      let factor = Eq.approx_factor Eq.GE host profile in
      check_true "AE is (alpha+1)-GE" (factor <= Gncg.Quality.ae_ge_factor alpha +. 1e-6)
    | _ -> Alcotest.fail "add-only dynamics must converge (monotone)"
  done

let test_cor2_ae_is_3alpha1_ne () =
  (* Cor 2: any AE on a metric host is a 3(alpha+1)-approximate NE. *)
  let r = rng 303 in
  for _ = 1 to 8 do
    let n = 5 + Prng.int r 2 in
    let alpha = 0.5 +. Prng.float r 2.0 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha m in
    let start = Gncg_workload.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:3000 Gncg.Dynamics.Add_only Gncg.Dynamics.Round_robin)
      host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      let factor = Eq.approx_factor Eq.NE host profile in
      check_true "AE is 3(alpha+1)-NE" (factor <= Gncg.Quality.ae_ne_factor alpha +. 1e-6)
    | _ -> Alcotest.fail "add-only dynamics must converge"
  done

let test_thm3_ge_is_3ne () =
  (* Thm 3: on metric hosts any GE is a 3-approximate NE. *)
  let r = rng 304 in
  for _ = 1 to 8 do
    let n = 5 + Prng.int r 2 in
    let alpha = 0.5 +. Prng.float r 2.0 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha m in
    let start = Gncg_workload.Instances.random_profile r host in
    match
      Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:5000 Gncg.Dynamics.Greedy_response Gncg.Dynamics.Round_robin)
      host start
    with
    | Gncg.Dynamics.Converged { profile; _ } ->
      check_true "converged profile is GE" (Eq.is_ge host profile);
      let factor = Eq.approx_factor Eq.NE host profile in
      check_true "GE is 3-NE" (factor <= Gncg.Quality.ge_ne_factor +. 1e-6)
    | _ -> () (* greedy dynamics may cycle: nothing to check *)
  done

let test_certify () =
  (* Stable profile: Ok. *)
  let host = Gncg_constructions.Thm15_tree_star.host ~alpha:2.0 ~n:5 in
  let ne = Gncg_constructions.Thm15_tree_star.ne_profile ~alpha:2.0 ~n:5 in
  (match Eq.certify Eq.NE host ne with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "equilibrium wrongly indicted");
  (* Unstable profile: the double-buy pair must be reported with the right
     numbers. *)
  let host2 = unit_host ~alpha:2.0 2 in
  let s = Strategy.of_lists 2 [ (0, [ 1 ]); (1, [ 0 ]) ] in
  match Eq.certify Eq.NE host2 s with
  | Ok () -> Alcotest.fail "double purchase must be indicted"
  | Error gs ->
    Alcotest.(check int) "both agents" 2 (List.length gs);
    List.iter
      (fun (g : Eq.grievance) ->
        check_float "current" 3.0 g.Eq.current_cost;
        check_float "best" 1.0 g.Eq.best_cost;
        (match g.Eq.deviation with
        | Some set -> check_true "deviation sells the edge" (Strategy.ISet.is_empty set)
        | None -> Alcotest.fail "NE grievances carry the deviation");
        ignore (Format.asprintf "%a" Eq.pp_grievance g))
      gs

let test_oracle_consistency () =
  let r = rng 305 in
  for _ = 1 to 5 do
    let n = 5 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:4.0 in
    let host = Host.make ~alpha:1.5 m in
    let s = Gncg_workload.Instances.random_profile r host in
    Alcotest.(check bool)
      "both NE oracles agree"
      (Eq.is_ne ~oracle:`Branch_and_bound host s)
      (Eq.is_ne ~oracle:`Enumerate host s)
  done

let suites =
  [
    ( "equilibrium",
      [
        case "NE => GE => AE" test_hierarchy_ne_ge_ae;
        case "AE but not GE" test_ae_but_not_ge;
        case "GE but not NE exists" test_ge_but_not_ne;
        case "empty profile stability" test_empty_profile_stability;
        case "unhappy agents" test_unhappy_agents;
        case "Thm 10: star NE for alpha>=3" test_star_ne_alpha_ge_3;
        case "star unstable for small alpha" test_star_not_ne_small_alpha;
        case "Lemma 3: 1-edges improving" test_lemma3_one_edges_improving;
        case "approx factor 1 at NE" test_approx_factor_at_equilibrium;
        case "approx factor detects gap" test_approx_factor_detects_gap;
        case "Thm 2: AE is (a+1)-GE" test_thm2_ae_is_alpha_plus_one_ge;
        case "Cor 2: AE is 3(a+1)-NE" test_cor2_ae_is_3alpha1_ne;
        case "Thm 3: GE is 3-NE" test_thm3_ge_is_3ne;
        case "NE oracle consistency" test_oracle_consistency;
        case "certify evidence" test_certify;
      ] );
  ]
