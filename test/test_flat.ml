(* Properties of the flat distance storage, the streaming kernels, the
   Changed_rows reports, and the dirty-agent skipping built on them.
   Change reports are compared bitwise against before/after matrix
   diffs: the report must name exactly the rows that differ. *)

module Prng = Gncg_util.Prng
module Flt = Gncg_util.Flt
module Wgraph = Gncg_graph.Wgraph
module Dijkstra = Gncg_graph.Dijkstra
module Dist_matrix = Gncg_graph.Dist_matrix
module Incr_apsp = Gncg_graph.Incr_apsp
module Changed_rows = Gncg_graph.Changed_rows
module Strategy = Gncg.Strategy
module Metric = Gncg_metric.Metric

let seed_gen = QCheck.small_nat

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let random_connected_graph r n =
  let g = Wgraph.create n in
  let order = Prng.permutation r n in
  for i = 1 to n - 1 do
    Wgraph.add_edge g order.(i) order.(Prng.int r i) (Prng.float_in r 0.5 9.0)
  done;
  for _ = 1 to n do
    let u = Prng.int r n and v = Prng.int r n in
    if u <> v && not (Wgraph.has_edge g u v) then
      Wgraph.add_edge g u v (Prng.float_in r 0.5 9.0)
  done;
  g

(* --- flat Dist_matrix vs reference --- *)

let prop_dist_matrix_matches_reference seed =
  let r = Prng.create (seed + 301) in
  let n = 4 + Prng.int r 8 in
  let g = random_connected_graph r n in
  let m = Dist_matrix.of_graph g in
  let ok = ref true in
  for _ = 1 to 6 do
    let u = Prng.int r n and v = Prng.int r n in
    if u <> v && not (Wgraph.has_edge g u v) then begin
      let w = Prng.float_in r 0.5 9.0 in
      Wgraph.add_edge g u v w;
      Dist_matrix.add_edge m u v w
    end
  done;
  let reference = Dijkstra.apsp g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if not (Flt.approx_eq ~tol:1e-6 (Dist_matrix.distance m u v) reference.(u).(v)) then
        ok := false
    done
  done;
  !ok

(* --- Changed_rows reports are exact (= the bitwise row diff) --- *)

let changed_report_is_exact before after report =
  let n = Array.length before in
  let ok = ref true in
  for u = 0 to n - 1 do
    let differs = before.(u) <> after.(u) in
    if differs <> Changed_rows.mem report u then ok := false
  done;
  !ok

let prop_changed_rows_exact seed =
  let r = Prng.create (seed + 302) in
  let n = 4 + Prng.int r 9 in
  let incr = Incr_apsp.of_graph (random_connected_graph r n) in
  let g = Incr_apsp.graph incr in
  let ok = ref true in
  for _ = 1 to 10 do
    let u = Prng.int r n and v = Prng.int r n in
    if u <> v then begin
      let before = Incr_apsp.matrix incr in
      let report =
        if Wgraph.has_edge g u v then begin
          let rep = Incr_apsp.remove_edge incr u v in
          if Incr_apsp.last_deletion_recomputed incr > n then ok := false;
          rep
        end
        else Incr_apsp.add_edge incr u v (Prng.float_in r 0.5 9.0)
      in
      if not (changed_report_is_exact before (Incr_apsp.matrix incr) report) then
        ok := false
    end
  done;
  !ok

(* --- streaming min-sum kernel vs the materialized reference --- *)

let prop_sum_min_add_matches_naive seed =
  let r = Prng.create (seed + 303) in
  let n = 1 + Prng.int r 40 in
  let gen_row () =
    Array.init n (fun _ ->
        if Prng.int r 8 = 0 then Float.infinity else Prng.float_in r 0.0 50.0)
  in
  let a = gen_row () and b = gen_row () in
  let w = Prng.float_in r 0.0 10.0 in
  let naive = Flt.sum (Array.init n (fun i -> Float.min a.(i) (w +. b.(i)))) in
  let streamed = Flt.sum_min_add a w b in
  if naive = Float.infinity || streamed = Float.infinity then naive = streamed
  else Flt.approx_eq ~tol:1e-9 naive streamed

let prop_dist_sum_with_edge_matches seed =
  let r = Prng.create (seed + 304) in
  let n = 4 + Prng.int r 8 in
  let incr = Incr_apsp.of_graph (random_connected_graph r n) in
  let u = Prng.int r n and v = Prng.int r n in
  let w = Prng.float_in r 0.5 9.0 in
  if u = v then true
  else
    Flt.approx_eq ~tol:1e-9
      (Incr_apsp.dist_sum_with_edge incr u v w)
      (Flt.sum_min_add (Incr_apsp.row incr u) w (Incr_apsp.row incr v))

(* --- infinity propagation through the fused total --- *)

let test_total_with_edge_added_infinity () =
  let g = Wgraph.create 4 in
  Wgraph.add_edge g 0 1 1.0;
  Wgraph.add_edge g 2 3 1.0;
  let m = Dist_matrix.of_graph g in
  Alcotest.(check bool) "disconnected total" true (Dist_matrix.total m = Float.infinity);
  (* Bridging the components makes every pair finite; the fused total
     must agree with the materialized update. *)
  let fused = Dist_matrix.total_with_edge_added m 1 2 2.0 in
  let materialized = Dist_matrix.total (Dist_matrix.with_edge_added m 1 2 2.0) in
  Alcotest.(check bool) "bridged total finite" true (Float.is_finite fused);
  Alcotest.(check (float 1e-9)) "fused = materialized" materialized fused;
  (* A useless edge leaves the total infinite. *)
  Alcotest.(check bool)
    "parallel edge keeps inf" true
    (Dist_matrix.total_with_edge_added m 0 1 5.0 = Float.infinity)

(* --- the deterministic star instance for the skipping guarantees ---

   Host: star pairs (0,i) of weight 1, one leaf pair (1,2) of weight 1.5,
   every other pair infinite; alpha = 0.1; profile = center 0 owns the
   star.  Buying (1,2) is the only improving add (gain 0.35 for either
   endpoint); it changes the distance rows of 1 and 2 only, so agents
   3..5 and the center are provably unaffected. *)

let star_instance () =
  let n = 6 in
  let w u v =
    if u = 0 || v = 0 then 1.0
    else if (u, v) = (1, 2) || (v, u) = (1, 2) then 1.5
    else Float.infinity
  in
  let host = Gncg.Host.make ~alpha:0.1 (Metric.make n w) in
  let s = Strategy.of_lists n [ (0, [ 1; 2; 3; 4; 5 ]) ] in
  (host, s)

let test_tracker_partial_refresh () =
  let host, s = star_instance () in
  let st = Gncg.Net_state.create host s in
  let tr = Gncg.Equilibrium.Tracker.create Gncg.Equilibrium.AE st in
  Alcotest.(check (list int)) "initial unhappy" [ 1; 2 ] (Gncg.Equilibrium.Tracker.unhappy tr);
  ignore (Gncg.Net_state.apply_move st ~agent:1 (Gncg.Move.Add 2));
  Gncg.Equilibrium.Tracker.refresh tr;
  let reevaluated = Gncg.Equilibrium.Tracker.last_reevaluated tr in
  (* Strictly fewer than n agents re-examined after one local move... *)
  Alcotest.(check bool) "refresh < n" true (reevaluated < Strategy.n s);
  Alcotest.(check int) "exactly the dirty agents" 2 reevaluated;
  (* ...and the cached verdicts are byte-identical to a full rescan. *)
  let fresh =
    Gncg.Equilibrium.Tracker.create Gncg.Equilibrium.AE (Gncg.Net_state.copy st)
  in
  Alcotest.(check (list int))
    "refresh = full rescan"
    (Gncg.Equilibrium.Tracker.unhappy fresh)
    (Gncg.Equilibrium.Tracker.unhappy tr);
  Alcotest.(check (list int))
    "tracker = reference scan"
    (Gncg.Equilibrium.unhappy_agents Gncg.Equilibrium.AE host (Gncg.Net_state.profile st))
    (Gncg.Equilibrium.Tracker.unhappy tr);
  Alcotest.(check bool) "now an AE" true (Gncg.Equilibrium.Tracker.is_equilibrium tr)

let test_dynamics_skips_clean_agents () =
  let host, s = star_instance () in
  let metrics = { Gncg.Dynamics.evaluations = 0; moves = 0; skips = 0 } in
  let outcome =
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~evaluator:`Incremental ~metrics Gncg.Dynamics.Add_only Gncg.Dynamics.Round_robin)
      host s
  in
  let reference =
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~evaluator:`Reference Gncg.Dynamics.Add_only Gncg.Dynamics.Round_robin)
      host s
  in
  match (outcome, reference) with
  | Gncg.Dynamics.Converged { profile; _ }, Gncg.Dynamics.Converged { profile = ref_p; _ } ->
    Alcotest.(check bool) "same limit as reference" true (Strategy.equal profile ref_p);
    (* The center was idle before the accepted move and provably clean
       after it: preserved, not re-evaluated. *)
    Alcotest.(check int) "one agent skipped" 1 metrics.Gncg.Dynamics.skips;
    Alcotest.(check int) "one move" 1 metrics.Gncg.Dynamics.moves;
    (* n + 1 evaluations total (everyone once, the mover re-checked)
       despite the mid-pass move — a full-rescan engine would pay for
       the pre-move evaluations again. *)
    Alcotest.(check int) "n+1 evaluations" 7 metrics.Gncg.Dynamics.evaluations
  | _ -> Alcotest.fail "star dynamics did not converge"

(* --- tracker refresh = full rescan on random games --- *)

let random_game seed ~n =
  let r = Prng.create seed in
  let alpha = 0.5 +. Prng.float r 3.0 in
  let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 4) in
  let host = Gncg_workload.Instances.random_host r model ~n ~alpha in
  let s = Gncg_workload.Instances.random_profile r host in
  (r, host, s)

let prop_tracker_refresh_byte_identical seed =
  let r, host, s = random_game (seed + 305) ~n:7 in
  let st = Gncg.Net_state.create host s in
  let kind = if Prng.int r 2 = 0 then Gncg.Equilibrium.GE else Gncg.Equilibrium.AE in
  let tr = Gncg.Equilibrium.Tracker.create kind st in
  let ok = ref true in
  for _ = 1 to 5 do
    let u = Prng.int r 7 in
    (match Gncg.Move.candidates host (Gncg.Net_state.profile st) ~agent:u with
    | [] -> ()
    | cands -> ignore (Gncg.Net_state.apply_move st ~agent:u (List.nth cands (Prng.int r (List.length cands)))));
    Gncg.Equilibrium.Tracker.refresh tr;
    let fresh = Gncg.Equilibrium.Tracker.create kind (Gncg.Net_state.copy st) in
    if Gncg.Equilibrium.Tracker.unhappy tr <> Gncg.Equilibrium.Tracker.unhappy fresh then
      ok := false
  done;
  !ok

(* Incremental Add_only dynamics with dirty-skipping still land on an
   add-stable profile (a wrongly preserved idle verdict would let the
   run converge to a non-AE). *)
let prop_incremental_add_only_reaches_ae seed =
  let _, host, s = random_game (seed + 306) ~n:8 in
  let metrics = { Gncg.Dynamics.evaluations = 0; moves = 0; skips = 0 } in
  match
    Gncg.Dynamics.run
      (Gncg.Dynamics.Config.make ~max_steps:4000 ~evaluator:`Incremental ~metrics Gncg.Dynamics.Add_only Gncg.Dynamics.Round_robin)
      host s
  with
  | Gncg.Dynamics.Converged { profile; _ } ->
    metrics.Gncg.Dynamics.evaluations > 0 && Gncg.Equilibrium.is_ae host profile
  | _ -> false

let suites =
  [
    ( "flat-distance-engine",
      [
        qtest ~count:25 "flat Dist_matrix = reference" seed_gen
          prop_dist_matrix_matches_reference;
        qtest ~count:25 "change reports are exact" seed_gen prop_changed_rows_exact;
        qtest ~count:50 "sum_min_add = naive" seed_gen prop_sum_min_add_matches_naive;
        qtest ~count:25 "dist_sum_with_edge kernel" seed_gen prop_dist_sum_with_edge_matches;
        Alcotest.test_case "fused total: infinity" `Quick test_total_with_edge_added_infinity;
        Alcotest.test_case "tracker: partial refresh" `Quick test_tracker_partial_refresh;
        Alcotest.test_case "dynamics: clean agents skipped" `Quick
          test_dynamics_skips_clean_agents;
        qtest ~count:20 "tracker refresh = rescan" seed_gen prop_tracker_refresh_byte_identical;
        qtest ~count:15 "add-only dynamics reach AE" seed_gen
          prop_incremental_add_only_reaches_ae;
      ] );
  ]
