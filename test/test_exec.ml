(* The unified execution API (Gncg_util.Exec): parsing, the Seq/Par
   combinators, and — the migration contract — that every deprecated
   [_parallel] alias is extensionally equal to its [?exec] replacement.
   The aliases are one-line wrappers by construction; these properties
   pin that down so the wrappers can be deleted in a later PR without
   re-auditing call sites. *)

[@@@alert "-deprecated"]
(* This file deliberately calls the deprecated aliases: equality with
   the ?exec replacements is exactly what is under test. *)

module Exec = Gncg_util.Exec

let host_of_seed ~n seed =
  let rng = Gncg_util.Prng.create (1 + seed) in
  Gncg.Host.make ~alpha:2.0
    (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:5.0)

let instance ~n seed =
  let host = host_of_seed ~n seed in
  let rng = Gncg_util.Prng.create (1000 + seed) in
  (host, Gncg_workload.Instances.random_profile rng host)

let test_of_string () =
  let ok s e = Alcotest.(check bool) s true (Exec.of_string s = Ok e) in
  ok "seq" Exec.Seq;
  ok "par" (Exec.Par { domains = None });
  ok "par:3" (Exec.Par { domains = Some 3 });
  let bad s =
    Alcotest.(check bool) (s ^ " rejected") true
      (match Exec.of_string s with Error _ -> true | Ok _ -> false)
  in
  bad "par:0";
  bad "par:-2";
  bad "par:x";
  bad "sequential";
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("roundtrip " ^ Exec.to_string e)
        true
        (Exec.of_string (Exec.to_string e) = Ok e))
    [ Exec.Seq; Exec.par (); Exec.par ~domains:5 () ]

let test_domain_count () =
  Alcotest.(check int) "Seq is one domain" 1 (Exec.domain_count Exec.Seq);
  Alcotest.(check int) "explicit Par count" 4
    (Exec.domain_count (Exec.Par { domains = Some 4 }));
  Alcotest.(check int) "Par None follows the process default"
    (Gncg_util.Parallel.default_domains ())
    (Exec.domain_count (Exec.Par { domains = None }))

let test_combinators () =
  let n = 103 in
  let f i = (i * 37) mod 11 in
  List.iter
    (fun exec ->
      Alcotest.(check bool) "init agrees with Array.init" true
        (Exec.init ~exec n f = Array.init n f);
      Alcotest.(check bool) "for_all agrees" true
        (Exec.for_all ~exec n (fun i -> f i < 11));
      Alcotest.(check bool) "exists agrees" true
        (Exec.exists ~exec n (fun i -> f i = 10)
        = Array.exists (fun x -> x = 10) (Array.init n f)))
    [ Exec.Seq; Exec.Par { domains = Some 3 } ]

(* Each property seeds an instance, then demands exact (structural)
   equality between the alias and its ?exec replacement: both sides run
   the same code path, so even float results must agree bitwise. *)
let alias_props =
  let gen = QCheck.(pair (int_range 5 10) small_nat) in
  let prop name f = QCheck.Test.make ~count:15 ~name gen f in
  [
    prop "is_ae_parallel ≡ is_ae ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        Gncg.Equilibrium.is_ae_parallel ~domains:3 host s
        = Gncg.Equilibrium.is_ae ~exec:(Exec.Par { domains = Some 3 }) host s);
    prop "is_ge_parallel ≡ is_ge ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        Gncg.Equilibrium.is_ge_parallel ~domains:3 host s
        = Gncg.Equilibrium.is_ge ~exec:(Exec.Par { domains = Some 3 }) host s);
    prop "is_ne_parallel ≡ is_ne ?exec" (fun (n, seed) ->
        let n = min n 7 in
        let host, s = instance ~n seed in
        Gncg.Equilibrium.is_ne_parallel ~domains:2 host s
        = Gncg.Equilibrium.is_ne ~exec:(Exec.Par { domains = Some 2 }) host s);
    prop "is_equilibrium_parallel ≡ is_equilibrium ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        List.for_all
          (fun kind ->
            Gncg.Equilibrium.is_equilibrium_parallel ~domains:3 kind host s
            = Gncg.Equilibrium.is_equilibrium ~exec:(Exec.Par { domains = Some 3 }) kind
                host s)
          [ Gncg.Equilibrium.AE; Gncg.Equilibrium.GE ]);
    prop "unhappy_agents_parallel ≡ unhappy_agents ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        Gncg.Equilibrium.unhappy_agents_parallel ~domains:3 Gncg.Equilibrium.GE host s
        = Gncg.Equilibrium.unhappy_agents ~exec:(Exec.Par { domains = Some 3 })
            Gncg.Equilibrium.GE host s);
    prop "certify_parallel ≡ certify ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        Gncg.Equilibrium.certify_parallel ~domains:3 Gncg.Equilibrium.GE host s
        = Gncg.Equilibrium.certify ~exec:(Exec.Par { domains = Some 3 })
            Gncg.Equilibrium.GE host s);
    prop "social_cost_parallel ≡ social_cost ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        Gncg.Cost.social_cost_parallel ~domains:3 host s
        = Gncg.Cost.social_cost ~exec:(Exec.Par { domains = Some 3 }) host s);
    prop "network_social_cost_parallel ≡ network_social_cost ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        let g = Gncg.Network.graph host s in
        Gncg.Cost.network_social_cost_parallel ~domains:3 host g
        = Gncg.Cost.network_social_cost ~exec:(Exec.Par { domains = Some 3 }) host g);
    prop "apsp_parallel ≡ apsp ?exec" (fun (n, seed) ->
        let host, s = instance ~n seed in
        let g = Gncg.Network.graph host s in
        Gncg_graph.Dijkstra.apsp_parallel ~domains:3 g
        = Gncg_graph.Dijkstra.apsp ~exec:(Exec.Par { domains = Some 3 }) g);
  ]

(* Seq and Par must agree on every boolean/structural verdict (float
   sums may differ in the last ulps, hence the tolerance on costs). *)
let prop_seq_par_agree =
  QCheck.Test.make ~count:15 ~name:"Seq and Par verdicts agree"
    QCheck.(pair (int_range 5 10) small_nat)
    (fun (n, seed) ->
      let host, s = instance ~n seed in
      let par = Exec.Par { domains = Some 3 } in
      Gncg.Equilibrium.is_ge host s = Gncg.Equilibrium.is_ge ~exec:par host s
      && Gncg.Equilibrium.unhappy_agents Gncg.Equilibrium.GE host s
         = Gncg.Equilibrium.unhappy_agents ~exec:par Gncg.Equilibrium.GE host s
      && Gncg_util.Flt.approx_eq ~tol:1e-9
           (Gncg.Cost.social_cost host s)
           (Gncg.Cost.social_cost ~exec:par host s))

(* All three tracker evaluators must produce identical verdicts, both on
   the initial scan and across refreshes after local perturbations. *)
let prop_tracker_evaluators_agree =
  QCheck.Test.make ~count:15 ~name:"tracker evaluators agree"
    QCheck.(pair (int_range 5 10) small_nat)
    (fun (n, seed) ->
      let host, s = instance ~n seed in
      let trackers =
        List.map
          (fun evaluator ->
            Gncg.Equilibrium.Tracker.create ~evaluator Gncg.Equilibrium.GE
              (Gncg.Net_state.create host s))
          [ `Incremental; `Fast; `Reference ]
      in
      let agree () =
        match
          List.map
            (fun t ->
              ( Gncg.Equilibrium.Tracker.is_equilibrium t,
                Gncg.Equilibrium.Tracker.unhappy t ))
            trackers
        with
        | v :: rest -> List.for_all (( = ) v) rest
        | [] -> true
      in
      let initial = agree () in
      (* Perturb: agent 0 buys some currently-absent edge, everyone
         refreshes, then the move is undone. *)
      let target =
        let st = Gncg.Equilibrium.Tracker.state (List.hd trackers) in
        let rec find v =
          if v >= n then None
          else if Gncg.Move.addable host (Gncg.Net_state.profile st) ~agent:0 v then Some v
          else find (v + 1)
        in
        find 1
      in
      let perturbed =
        match target with
        | None -> true
        | Some v ->
          List.iter
            (fun t ->
              let st = Gncg.Equilibrium.Tracker.state t in
              ignore (Gncg.Net_state.apply_move st ~agent:0 (Gncg.Move.Add v));
              Gncg.Equilibrium.Tracker.refresh t)
            trackers;
          agree ()
      in
      initial && perturbed)

let suites =
  [
    ( "exec",
      [
        Alcotest.test_case "of_string / to_string" `Quick test_of_string;
        Alcotest.test_case "domain_count" `Quick test_domain_count;
        Alcotest.test_case "combinators vs sequential" `Quick test_combinators;
      ]
      @ List.map QCheck_alcotest.to_alcotest alias_props
      @ [
          QCheck_alcotest.to_alcotest prop_seq_par_agree;
          QCheck_alcotest.to_alcotest prop_tracker_evaluators_agree;
        ] );
  ]
