(* The unified execution API (Gncg_util.Exec): parsing and the Seq/Par
   combinators.  (The extensional-equality properties for the PR-4
   [_parallel] aliases lived here until the aliases were deleted.) *)

module Exec = Gncg_util.Exec

let host_of_seed ~n seed =
  let rng = Gncg_util.Prng.create (1 + seed) in
  Gncg.Host.make ~alpha:2.0
    (Gncg_metric.Random_host.uniform_metric rng ~n ~lo:1.0 ~hi:5.0)

let instance ~n seed =
  let host = host_of_seed ~n seed in
  let rng = Gncg_util.Prng.create (1000 + seed) in
  (host, Gncg_workload.Instances.random_profile rng host)

let test_of_string () =
  let ok s e = Alcotest.(check bool) s true (Exec.of_string s = Ok e) in
  ok "seq" Exec.Seq;
  ok "par" (Exec.Par { domains = None });
  ok "par:3" (Exec.Par { domains = Some 3 });
  let bad s =
    Alcotest.(check bool) (s ^ " rejected") true
      (match Exec.of_string s with Error _ -> true | Ok _ -> false)
  in
  bad "par:0";
  bad "par:-2";
  bad "par:x";
  bad "sequential";
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("roundtrip " ^ Exec.to_string e)
        true
        (Exec.of_string (Exec.to_string e) = Ok e))
    [ Exec.Seq; Exec.par (); Exec.par ~domains:5 () ]

let test_domain_count () =
  Alcotest.(check int) "Seq is one domain" 1 (Exec.domain_count Exec.Seq);
  Alcotest.(check int) "explicit Par count" 4
    (Exec.domain_count (Exec.Par { domains = Some 4 }));
  Alcotest.(check int) "Par None follows the process default"
    (Gncg_util.Parallel.default_domains ())
    (Exec.domain_count (Exec.Par { domains = None }))

let test_combinators () =
  let n = 103 in
  let f i = (i * 37) mod 11 in
  List.iter
    (fun exec ->
      Alcotest.(check bool) "init agrees with Array.init" true
        (Exec.init ~exec n f = Array.init n f);
      Alcotest.(check bool) "for_all agrees" true
        (Exec.for_all ~exec n (fun i -> f i < 11));
      Alcotest.(check bool) "exists agrees" true
        (Exec.exists ~exec n (fun i -> f i = 10)
        = Array.exists (fun x -> x = 10) (Array.init n f)))
    [ Exec.Seq; Exec.Par { domains = Some 3 } ]

(* Seq and Par must agree on every boolean/structural verdict (float
   sums may differ in the last ulps, hence the tolerance on costs). *)
let prop_seq_par_agree =
  QCheck.Test.make ~count:15 ~name:"Seq and Par verdicts agree"
    QCheck.(pair (int_range 5 10) small_nat)
    (fun (n, seed) ->
      let host, s = instance ~n seed in
      let par = Exec.Par { domains = Some 3 } in
      Gncg.Equilibrium.is_ge host s = Gncg.Equilibrium.is_ge ~exec:par host s
      && Gncg.Equilibrium.unhappy_agents Gncg.Equilibrium.GE host s
         = Gncg.Equilibrium.unhappy_agents ~exec:par Gncg.Equilibrium.GE host s
      && Gncg_util.Flt.approx_eq ~tol:1e-9
           (Gncg.Cost.social_cost host s)
           (Gncg.Cost.social_cost ~exec:par host s))

(* All three tracker evaluators must produce identical verdicts, both on
   the initial scan and across refreshes after local perturbations. *)
let prop_tracker_evaluators_agree =
  QCheck.Test.make ~count:15 ~name:"tracker evaluators agree"
    QCheck.(pair (int_range 5 10) small_nat)
    (fun (n, seed) ->
      let host, s = instance ~n seed in
      let trackers =
        List.map
          (fun evaluator ->
            Gncg.Equilibrium.Tracker.create ~evaluator Gncg.Equilibrium.GE
              (Gncg.Net_state.create host s))
          [ `Incremental; `Fast; `Reference ]
      in
      let agree () =
        match
          List.map
            (fun t ->
              ( Gncg.Equilibrium.Tracker.is_equilibrium t,
                Gncg.Equilibrium.Tracker.unhappy t ))
            trackers
        with
        | v :: rest -> List.for_all (( = ) v) rest
        | [] -> true
      in
      let initial = agree () in
      (* Perturb: agent 0 buys some currently-absent edge, everyone
         refreshes, then the move is undone. *)
      let target =
        let st = Gncg.Equilibrium.Tracker.state (List.hd trackers) in
        let rec find v =
          if v >= n then None
          else if Gncg.Move.addable host (Gncg.Net_state.profile st) ~agent:0 v then Some v
          else find (v + 1)
        in
        find 1
      in
      let perturbed =
        match target with
        | None -> true
        | Some v ->
          List.iter
            (fun t ->
              let st = Gncg.Equilibrium.Tracker.state t in
              ignore (Gncg.Net_state.apply_move st ~agent:0 (Gncg.Move.Add v));
              Gncg.Equilibrium.Tracker.refresh t)
            trackers;
          agree ()
      in
      initial && perturbed)

let suites =
  [
    ( "exec",
      [
        Alcotest.test_case "of_string / to_string" `Quick test_of_string;
        Alcotest.test_case "domain_count" `Quick test_domain_count;
        Alcotest.test_case "combinators vs sequential" `Quick test_combinators;
      ]
      @ [
          QCheck_alcotest.to_alcotest prop_seq_par_agree;
          QCheck_alcotest.to_alcotest prop_tracker_evaluators_agree;
        ] );
  ]
