open Helpers
module Q = Gncg.Quality

let test_metric_upper_values () =
  check_float "alpha=0" 1.0 (Q.metric_upper 0.0);
  check_float "alpha=2" 2.0 (Q.metric_upper 2.0);
  check_float "alpha=8" 5.0 (Q.metric_upper 8.0)

let test_general_upper_is_square () =
  List.iter
    (fun a -> check_float "square" (Q.metric_upper a ** 2.0) (Q.general_upper a))
    [ 0.5; 1.0; 3.0; 10.0 ]

let test_onetwo_formulas () =
  check_float "mid at 1/2" 1.2 (Q.onetwo_mid_poa 0.5);
  check_float "mid continuous at 1" 1.0 (Q.onetwo_mid_poa 1.0);
  check_float "alpha=1 constant" 1.5 Q.onetwo_alpha_one_poa

let test_fourpoint_limits () =
  check_float ~tol:1e-3 "alpha->0 tends to 1" 1.0 (Q.fourpoint_lower 1e-6);
  check_true "strictly above 1" (Q.fourpoint_lower 0.1 > 1.0);
  check_true "monotone sample" (Q.fourpoint_lower 2.0 > Q.fourpoint_lower 1.0);
  check_float ~tol:1e-4 "alpha->inf tends to 3" 3.0 (Q.fourpoint_lower 1e8)

let test_cross_lower_shape () =
  (* Increasing in d, approaching (alpha+2)/2. *)
  let alpha = 6.0 in
  check_true "monotone in d"
    (Q.cross_lower ~alpha ~d:2 < Q.cross_lower ~alpha ~d:8);
  check_true "below metric bound"
    (Q.cross_lower ~alpha ~d:1000 < Q.metric_upper alpha);
  check_float ~tol:1e-2 "limit" (Q.metric_upper alpha) (Q.cross_lower ~alpha ~d:100000);
  (* d = 1: 1 + a/(2+a): matches Lemma 8's two-point behaviour. *)
  check_float "d=1" (1.0 +. (6.0 /. 8.0)) (Q.cross_lower ~alpha ~d:1);
  Alcotest.check_raises "d < 1 rejected" (Invalid_argument "Quality.cross_lower: d < 1")
    (fun () -> ignore (Q.cross_lower ~alpha ~d:0))

let test_approx_chain () =
  List.iter
    (fun a ->
      check_float "AE->GE" (a +. 1.0) (Q.ae_ge_factor a);
      check_float "AE->NE = 3(a+1)" (3.0 *. (a +. 1.0)) (Q.ae_ne_factor a);
      check_float "GE->NE" 3.0 Q.ge_ne_factor;
      check_true "chain consistent" (Q.ae_ne_factor a = Q.ge_ne_factor *. Q.ae_ge_factor a))
    [ 0.5; 1.0; 4.0 ]

let test_spanner_bounds () =
  check_float "AE spanner" 4.0 (Q.ae_spanner_stretch 3.0);
  check_float "OPT spanner" 2.5 (Q.opt_spanner_stretch 3.0);
  check_true "OPT tighter than AE"
    (Q.opt_spanner_stretch 3.0 < Q.ae_spanner_stretch 3.0)

let test_social_ratio () =
  check_float "ratio" 2.0 (Q.social_ratio ~ne_cost:10.0 ~opt_cost:5.0);
  Alcotest.check_raises "zero opt rejected"
    (Invalid_argument "Quality.social_ratio: non-positive optimum") (fun () ->
      ignore (Q.social_ratio ~ne_cost:1.0 ~opt_cost:0.0))

let test_host_stretch_of_complete_host () =
  let host =
    Gncg.Host.make ~alpha:1.0
      (Gncg_metric.Random_host.uniform_metric (rng 1400) ~n:8 ~lo:1.0 ~hi:5.0)
  in
  let g = Gncg_metric.Metric.complete_graph (Gncg.Host.metric host) in
  check_float ~tol:1e-9 "complete host has stretch 1" 1.0 (Q.host_stretch host g)

let suites =
  [
    ( "quality",
      [
        case "metric upper" test_metric_upper_values;
        case "general upper is square" test_general_upper_is_square;
        case "1-2 formulas" test_onetwo_formulas;
        case "four-point limits" test_fourpoint_limits;
        case "cross lower shape" test_cross_lower_shape;
        case "approximation chain" test_approx_chain;
        case "spanner bounds" test_spanner_bounds;
        case "social ratio" test_social_ratio;
        case "stretch of complete host" test_host_stretch_of_complete_host;
      ] );
  ]
