open Helpers
module Prng = Gncg_util.Prng
module Br = Gncg.Best_response
module Strategy = Gncg.Strategy
module Cost = Gncg.Cost

let random_setup r ~n ~alpha =
  let model = List.nth Gncg_workload.Instances.default_models (Prng.int r 5) in
  let host = Gncg_workload.Instances.random_host r model ~n ~alpha in
  let s = Gncg_workload.Instances.random_profile r host in
  (host, s)

let test_exact_equals_enum () =
  let r = rng 200 in
  for trial = 1 to 15 do
    let n = 4 + Prng.int r 4 in
    let host, s = random_setup r ~n ~alpha:(0.5 +. Prng.float r 3.0) in
    let u = Prng.int r n in
    let _, c_bnb = Br.exact host s u in
    let _, c_enum = Br.exact_enum host s u in
    if not (approx ~tol:1e-6 c_bnb c_enum) then
      Alcotest.failf "trial %d: bnb=%g enum=%g" trial c_bnb c_enum
  done

let test_reported_cost_is_real () =
  (* The UMFL objective must equal the actual agent cost of the decoded
     strategy, evaluated independently on the rebuilt network. *)
  let r = rng 201 in
  for _ = 1 to 15 do
    let n = 4 + Prng.int r 5 in
    let host, s = random_setup r ~n ~alpha:(0.5 +. Prng.float r 3.0) in
    let u = Prng.int r n in
    let set, reported = Br.exact host s u in
    let real = Cost.agent_cost host (Strategy.with_strategy s u set) u in
    check_float ~tol:1e-6 "UMFL cost = agent cost" real reported
  done

let test_best_response_no_worse_than_current () =
  let r = rng 202 in
  for _ = 1 to 15 do
    let n = 4 + Prng.int r 5 in
    let host, s = random_setup r ~n ~alpha:(0.5 +. Prng.float r 3.0) in
    let u = Prng.int r n in
    let current = Cost.agent_cost host s u in
    let best = Br.best_cost host s u in
    check_true "BR <= current" (best <= current +. 1e-6)
  done

let test_local_at_least_exact () =
  let r = rng 203 in
  for _ = 1 to 15 do
    let n = 4 + Prng.int r 5 in
    let host, s = random_setup r ~n ~alpha:(0.5 +. Prng.float r 3.0) in
    let u = Prng.int r n in
    let _, c_local = Br.local host s u in
    let _, c_exact = Br.exact host s u in
    check_true "local >= exact" (c_local >= c_exact -. 1e-6);
    (* Thm 3 territory: local search is within factor 3 on metric hosts. *)
    if Gncg_metric.Metric.is_metric (Gncg.Host.metric host) && c_exact > 0.0 then
      check_true "local <= 3 * exact" (c_local <= (3.0 *. c_exact) +. 1e-6)
  done

let test_decoded_strategy_excludes_other_side () =
  (* If v already buys (v,u), u's best response never includes v (the edge
     is free for u either way). *)
  let r = rng 204 in
  for _ = 1 to 10 do
    let n = 5 + Prng.int r 4 in
    let host, s0 = random_setup r ~n ~alpha:1.0 in
    let u = Prng.int r n in
    let v = (u + 1) mod n in
    let s = Strategy.buy (Strategy.with_strategy s0 v Strategy.ISet.empty) v u in
    let set, _ = Br.exact host s u in
    check_false "BR avoids double purchase" (Strategy.ISet.mem v set)
  done

let test_isolated_agent_connects () =
  (* An agent with everything to gain buys at least one edge. *)
  let m = Gncg_metric.Metric.make 4 (fun _ _ -> 1.0) in
  let host = Gncg.Host.make ~alpha:2.0 m in
  (* Others form a triangle; agent 3 currently buys nothing and nobody buys
     towards it: cost infinite. *)
  let s = Strategy.of_lists 4 [ (0, [ 1 ]); (1, [ 2 ]); (2, [ 0 ]) ] in
  check_true "currently infinite" (Cost.agent_cost host s 3 = Float.infinity);
  let set, cost = Br.exact host s 3 in
  check_true "buys something" (not (Strategy.ISet.is_empty set));
  check_true "finite after BR" (Float.is_finite cost)

let test_one_inf_respects_forbidden () =
  let r = rng 205 in
  let m = Gncg_metric.One_inf.random_connected r ~n:7 ~p:0.2 in
  let host = Gncg.Host.make ~alpha:1.0 m in
  let s = Gncg_workload.Instances.random_profile r host in
  for u = 0 to 6 do
    let set, _ = Br.exact host s u in
    Strategy.ISet.iter
      (fun v ->
        check_true "only finite-weight edges bought"
          (Float.is_finite (Gncg.Host.weight host u v)))
      set
  done

let suites =
  [
    ( "best-response",
      [
        case "branch&bound = enumeration" test_exact_equals_enum;
        case "reported cost is real cost" test_reported_cost_is_real;
        case "never worse than current" test_best_response_no_worse_than_current;
        case "local search sound & 3-approx" test_local_at_least_exact;
        case "no double purchase" test_decoded_strategy_excludes_other_side;
        case "isolated agent connects" test_isolated_agent_connects;
        case "1-inf forbidden edges respected" test_one_inf_respects_forbidden;
      ] );
  ]
