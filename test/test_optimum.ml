open Helpers
module Prng = Gncg_util.Prng
module Opt = Gncg.Social_optimum
module Host = Gncg.Host
module Metric = Gncg_metric.Metric

let test_exact_small_unit_clique () =
  (* On a unit-weight clique with alpha < 2 the optimum is the complete
     graph iff adding any edge saves 2 in distance and costs alpha. *)
  let host = Host.make ~alpha:1.0 (Metric.make 4 (fun _ _ -> 1.0)) in
  let g, cost = Opt.exact_small host in
  Alcotest.(check int) "complete graph optimal" 6 (Gncg_graph.Wgraph.m g);
  check_float "cost" ((1.0 *. 6.0) +. 12.0) cost

let test_exact_small_large_alpha_tree () =
  (* With alpha large, OPT must be a spanning tree (edge cost dominates). *)
  let r = rng 500 in
  let m = Gncg_metric.Random_host.uniform_metric r ~n:5 ~lo:1.0 ~hi:2.0 in
  let host = Host.make ~alpha:1000.0 m in
  let g, _ = Opt.exact_small host in
  check_true "tree" (Gncg_graph.Connectivity.is_tree g)

let test_exact_small_guard () =
  let host = Host.make ~alpha:1.0 (Metric.make 8 (fun _ _ -> 1.0)) in
  (* 28 candidate edges > 16: refused. *)
  let raised = ref false in
  (try ignore (Opt.exact_small host) with Invalid_argument _ -> raised := true);
  check_true "guard raises" !raised

let test_algorithm_one_matches_exact () =
  let r = rng 501 in
  for trial = 1 to 10 do
    let n = 5 in
    let m = Gncg_metric.One_two.random r ~n ~p_one:0.5 in
    let alpha = 0.1 +. Prng.float r 0.9 in
    let host = Host.make ~alpha m in
    let _, alg = Opt.algorithm_one host in
    let _, exact = Opt.exact_small host in
    if not (approx ~tol:1e-9 alg exact) then
      Alcotest.failf "trial %d (alpha=%g): alg1=%g exact=%g" trial alpha alg exact
  done

let test_algorithm_one_structure () =
  let m = Gncg_metric.One_two.of_one_edges 3 [ (0, 1); (1, 2) ] in
  let host = Host.make ~alpha:0.5 m in
  let g, _ = Opt.algorithm_one host in
  (* The 2-edge (0,2) closes a 1-1-2 triangle: it must be dropped. *)
  check_false "triangle 2-edge dropped" (Gncg_graph.Wgraph.has_edge g 0 2);
  check_true "1-edges kept" (Gncg_graph.Wgraph.has_edge g 0 1 && Gncg_graph.Wgraph.has_edge g 1 2);
  check_false "no 1-1-2 triangle left"
    (Gncg_metric.One_two.has_one_one_two_triangle m g);
  Alcotest.check_raises "non-1-2 host rejected"
    (Invalid_argument "Social_optimum.algorithm_one: host is not a 1-2 graph") (fun () ->
      ignore (Opt.algorithm_one (Host.make ~alpha:0.5 (Metric.make 3 (fun _ _ -> 3.0)))))

let test_algorithm_one_diameter_two () =
  let r = rng 502 in
  for _ = 1 to 5 do
    let m = Gncg_metric.One_two.random r ~n:10 ~p_one:0.4 in
    let host = Host.make ~alpha:0.8 m in
    let g, _ = Opt.algorithm_one host in
    check_true "diameter 2 (Thm 6)" (Gncg_graph.Dijkstra.diameter g <= 2.0 +. 1e-9)
  done

let test_tree_optimum_matches_exact () =
  let r = rng 503 in
  for _ = 1 to 5 do
    let tree = Gncg_metric.Tree_metric.random r ~n:5 ~wmin:1.0 ~wmax:4.0 in
    let alpha = 0.5 +. Prng.float r 4.0 in
    let host = Host.make ~alpha (Gncg_metric.Tree_metric.metric tree) in
    let _, tree_cost = Opt.tree_optimum tree host in
    let _, exact = Opt.exact_small host in
    check_float ~tol:1e-6 "tree is optimal (Cor 3)" exact tree_cost
  done

let test_tree_optimum_validation () =
  let tree = Gncg_metric.Tree_metric.path [ 1.0; 1.0 ] in
  let other = Host.make ~alpha:1.0 (Metric.make 3 (fun _ _ -> 7.0)) in
  Alcotest.check_raises "host mismatch"
    (Invalid_argument "Social_optimum.tree_optimum: host is not the metric of this tree")
    (fun () -> ignore (Opt.tree_optimum tree other))

let test_heuristic_sound () =
  let r = rng 504 in
  for _ = 1 to 8 do
    let n = 5 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha:(0.5 +. Prng.float r 3.0) m in
    let g, heur = Opt.greedy_heuristic host in
    let _, exact = Opt.exact_small host in
    check_true "heuristic connected" (Gncg_graph.Connectivity.is_connected g);
    check_true "heuristic >= exact" (heur >= exact -. 1e-6);
    check_true "heuristic within 2x on these sizes" (heur <= (2.0 *. exact) +. 1e-6)
  done

let test_best_known_dispatch () =
  let host = Host.make ~alpha:1.0 (Metric.make 4 (fun _ _ -> 1.0)) in
  let _, c1 = Opt.best_known host in
  let _, c2 = Opt.exact_small host in
  check_float "small goes exact" c2 c1;
  let big = Host.make ~alpha:1.0 (Metric.make 12 (fun _ _ -> 1.0)) in
  let g, _ = Opt.best_known big in
  check_true "large uses heuristic, connected" (Gncg_graph.Connectivity.is_connected g)

let test_complete_host_cost () =
  let host = Host.make ~alpha:2.0 (Metric.make 3 (fun _ _ -> 1.0)) in
  (* 3 edges at alpha*1 + 6 ordered pairs at distance 1. *)
  check_float "complete cost" (6.0 +. 6.0) (Opt.complete_host_cost host)

let test_bnb_matches_enumeration () =
  let r = rng 507 in
  for trial = 1 to 8 do
    let n = 4 + Prng.int r 3 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha:(0.5 +. Prng.float r 4.0) m in
    let _, bnb = Opt.exact_bnb host in
    let _, enum = Opt.exact_small host in
    if not (approx ~tol:1e-6 bnb enum) then
      Alcotest.failf "trial %d: bnb=%g enum=%g" trial bnb enum
  done

let test_bnb_nonmetric_and_one_inf () =
  let r = rng 508 in
  (* Non-metric weights. *)
  let host = Host.make ~alpha:1.5 (Gncg_metric.Random_host.uniform r ~n:5 ~lo:1.0 ~hi:9.0) in
  let _, bnb = Opt.exact_bnb host in
  let _, enum = Opt.exact_small host in
  check_float ~tol:1e-6 "general host" enum bnb;
  (* Forbidden edges: candidates exclude infinite pairs. *)
  let oi = Gncg_metric.One_inf.random_connected r ~n:6 ~p:0.3 in
  let host = Host.make ~alpha:2.0 oi in
  let g, bnb = Opt.exact_bnb host in
  check_true "network uses only allowed edges"
    (List.for_all
       (fun (u, v, _) -> Float.is_finite (Gncg_metric.Metric.weight oi u v))
       (Gncg_graph.Wgraph.edges g));
  check_true "finite cost" (Float.is_finite bnb)

let test_anneal_sound () =
  let r = rng 506 in
  for _ = 1 to 4 do
    let n = 5 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let host = Host.make ~alpha:(0.5 +. Prng.float r 3.0) m in
    let g, annealed = Opt.anneal ~seed:7 ~steps:800 host in
    let _, heur = Opt.greedy_heuristic host in
    let _, exact = Opt.exact_small host in
    check_true "anneal connected" (Gncg_graph.Connectivity.is_connected g);
    check_float ~tol:1e-6 "reported cost correct" (Gncg.Cost.network_social_cost host g) annealed;
    check_true "anneal never worse than its greedy seed" (annealed <= heur +. 1e-6);
    check_true "anneal >= exact optimum" (annealed >= exact -. 1e-6)
  done

let test_opt_spanner_lemma2 () =
  (* Lemma 2: the social optimum is an (alpha/2 + 1)-spanner. *)
  let r = rng 505 in
  for _ = 1 to 8 do
    let n = 5 in
    let m = Gncg_metric.Random_host.uniform_metric r ~n ~lo:1.0 ~hi:5.0 in
    let alpha = 0.5 +. Prng.float r 4.0 in
    let host = Host.make ~alpha m in
    let g, _ = Opt.exact_small host in
    let stretch = Gncg.Quality.host_stretch host g in
    check_true "OPT is (a/2+1)-spanner" (stretch <= Gncg.Quality.opt_spanner_stretch alpha +. 1e-6)
  done

let suites =
  [
    ( "social-optimum",
      [
        case "exact: unit clique" test_exact_small_unit_clique;
        case "exact: large alpha gives tree" test_exact_small_large_alpha_tree;
        case "exact: size guard" test_exact_small_guard;
        case "Thm 6: algorithm 1 optimal" test_algorithm_one_matches_exact;
        case "algorithm 1 structure" test_algorithm_one_structure;
        case "algorithm 1 diameter 2" test_algorithm_one_diameter_two;
        case "Cor 3: tree optimal" test_tree_optimum_matches_exact;
        case "tree optimum validation" test_tree_optimum_validation;
        case "heuristic sound" test_heuristic_sound;
        case "annealing sound" test_anneal_sound;
        case "branch&bound = enumeration" test_bnb_matches_enumeration;
        case "branch&bound on non-metric & 1-inf" test_bnb_nonmetric_and_one_inf;
        case "best_known dispatch" test_best_known_dispatch;
        case "complete host cost" test_complete_host_cost;
        case "Lemma 2: OPT spanner" test_opt_spanner_lemma2;
      ] );
  ]
