open Helpers
module C = Gncg_constructions
module Prng = Gncg_util.Prng
module Br = Gncg.Best_response

(* --- Set cover substrate -------------------------------------------------- *)

let test_set_cover_make_validation () =
  Alcotest.check_raises "uncovered universe"
    (Invalid_argument "Set_cover.make: subsets do not cover the universe") (fun () ->
      ignore (C.Set_cover.make ~universe:3 [ [ 0 ]; [ 1 ] ]))

let test_set_cover_min () =
  let sc = C.Set_cover.make ~universe:4 [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 2; 3 ] ] in
  let best = C.Set_cover.min_cover sc in
  Alcotest.(check int) "min cover size" 2 (List.length best);
  check_true "is a cover" (C.Set_cover.is_cover sc best)

let test_set_cover_random_valid () =
  let r = rng 800 in
  for _ = 1 to 10 do
    let sc = C.Set_cover.random r ~universe:6 ~nb_subsets:4 in
    check_true "full index set covers"
      (C.Set_cover.is_cover sc (List.init 4 Fun.id))
  done

(* --- Thm 13: tree-metric BR = min set cover ------------------------------- *)

let check_tree_reduction sc =
  let host = C.Setcover_tree.host sc in
  let profile = C.Setcover_tree.profile sc in
  let br, _ = Br.exact host profile C.Setcover_tree.u_agent in
  match C.Setcover_tree.cover_of_strategy sc br with
  | None -> Alcotest.fail "BR bought a non-subset node"
  | Some cover ->
    check_true "BR is a cover" (C.Set_cover.is_cover sc cover);
    Alcotest.(check int) "BR is minimum"
      (List.length (C.Set_cover.min_cover sc))
      (List.length cover)

let test_thm13_fixed_instances () =
  List.iter check_tree_reduction
    [
      C.Set_cover.make ~universe:3 [ [ 0; 1; 2 ] ];
      C.Set_cover.make ~universe:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ];
      C.Set_cover.make ~universe:5 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 0; 1; 2; 3; 4 ] ];
      C.Set_cover.make ~universe:4 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3 ] ];
    ]

let test_thm13_random_instances () =
  let r = rng 801 in
  for _ = 1 to 6 do
    let sc = C.Set_cover.random r ~universe:(3 + Prng.int r 3) ~nb_subsets:(2 + Prng.int r 3) in
    check_tree_reduction sc
  done

let test_thm13_host_is_tree_metric () =
  let sc = C.Set_cover.make ~universe:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let host = C.Setcover_tree.host sc in
  check_true "metric" (Gncg_metric.Metric.is_metric (Gncg.Host.metric host))

let test_thm13_parameter_guards () =
  let sc = C.Set_cover.make ~universe:3 [ [ 0; 1; 2 ] ] in
  Alcotest.check_raises "beta too small" (Invalid_argument "Setcover_tree: need beta > 2*k*eps")
    (fun () ->
      ignore
        (C.Setcover_tree.tree
           ~params:{ C.Setcover_tree.big_l = 100.0; eps = 0.2; beta = 0.5 }
           sc))

(* --- Thm 16: geometric BR = min set cover --------------------------------- *)

let check_rd_reduction ?norm sc =
  let host = C.Setcover_rd.host ?norm sc in
  let profile = C.Setcover_rd.profile sc in
  let br, _ = Br.exact host profile C.Setcover_rd.u_agent in
  match C.Setcover_rd.cover_of_strategy sc br with
  | None -> Alcotest.fail "BR bought a non-subset node"
  | Some cover ->
    check_true "BR is a cover" (C.Set_cover.is_cover sc cover);
    Alcotest.(check int) "BR is minimum"
      (List.length (C.Set_cover.min_cover sc))
      (List.length cover)

let test_thm16_fixed_instances () =
  List.iter check_rd_reduction
    [
      C.Set_cover.make ~universe:3 [ [ 0; 1; 2 ] ];
      C.Set_cover.make ~universe:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ];
      C.Set_cover.make ~universe:4 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3 ] ];
    ]

let test_thm16_random_instances () =
  let r = rng 802 in
  for _ = 1 to 6 do
    let sc = C.Set_cover.random r ~universe:(3 + Prng.int r 3) ~nb_subsets:(2 + Prng.int r 3) in
    check_rd_reduction sc
  done

let test_thm16_other_norms () =
  (* Thm 16 claims the reduction for any p-norm. *)
  let sc = C.Set_cover.make ~universe:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
  check_rd_reduction ~norm:Gncg_metric.Euclidean.L1 sc;
  check_rd_reduction ~norm:(Gncg_metric.Euclidean.Lp 3.0) sc;
  check_rd_reduction ~norm:Gncg_metric.Euclidean.Linf sc

let test_thm16_geometry () =
  (* The blockers must sit opposite the subset nodes: d(b_i, a_i) =
     (L-beta)/2 + L. *)
  let sc = C.Set_cover.make ~universe:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let host = C.Setcover_rd.host sc in
  let p = C.Setcover_rd.default_params in
  let expected = ((p.C.Setcover_rd.big_l -. p.C.Setcover_rd.beta) /. 2.0) +. p.C.Setcover_rd.big_l in
  check_float ~tol:1e-6 "blocker distance" expected
    (Gncg.Host.weight host (C.Setcover_rd.blocker_node sc 0) (C.Setcover_rd.subset_node sc 0))

(* --- Thm 4: VC reduction --------------------------------------------------- *)

let triangle = { C.Vc_reduction.nv = 3; es = [ (0, 1); (1, 2); (2, 0) ] }

let path4 = { C.Vc_reduction.nv = 4; es = [ (0, 1); (1, 2); (2, 3) ] }

let star4 = { C.Vc_reduction.nv = 4; es = [ (0, 1); (0, 2); (0, 3) ] }

let test_vc_brute_force () =
  Alcotest.(check int) "triangle VC=2" 2 (List.length (C.Vc_reduction.min_vertex_cover triangle));
  Alcotest.(check int) "path4 VC=2" 2 (List.length (C.Vc_reduction.min_vertex_cover path4));
  Alcotest.(check int) "star4 VC=1" 1 (List.length (C.Vc_reduction.min_vertex_cover star4))

let test_vc_host_is_one_two () =
  let host = C.Vc_reduction.host path4 in
  check_true "1-2 host" (Gncg_metric.One_two.is_one_two (Gncg.Host.metric host));
  check_float "alpha = 1" 1.0 (Gncg.Host.alpha host)

let test_vc_u_br_is_min_cover_cost () =
  List.iter
    (fun inst ->
      let host = C.Vc_reduction.host inst in
      let kmin = List.length (C.Vc_reduction.min_vertex_cover inst) in
      (* Start u from any (possibly non-minimal) cover. *)
      let full_cover = List.init inst.C.Vc_reduction.nv Fun.id in
      let profile = C.Vc_reduction.profile inst ~cover:full_cover in
      let _, br_cost = Br.exact host profile (C.Vc_reduction.u_agent inst) in
      check_float ~tol:1e-6 "BR cost = 3N + 6m + k_min"
        (C.Vc_reduction.u_cost_formula inst ~cover_size:kmin)
        br_cost)
    [ triangle; path4; star4 ]

let test_vc_ne_iff_minimal () =
  List.iter
    (fun inst ->
      let host = C.Vc_reduction.host inst in
      let kmin = List.length (C.Vc_reduction.min_vertex_cover inst) in
      let minimal = C.Vc_reduction.min_vertex_cover inst in
      check_true "minimal cover profile is NE"
        (Gncg.Equilibrium.is_ne host (C.Vc_reduction.profile inst ~cover:minimal));
      (* A strictly larger cover cannot be a NE for u. *)
      let full = List.init inst.C.Vc_reduction.nv Fun.id in
      if List.length full > kmin then
        check_false "oversized cover profile is not NE"
          (Gncg.Equilibrium.is_ne host (C.Vc_reduction.profile inst ~cover:full)))
    [ triangle; path4; star4 ]

let test_vc_random_instances () =
  let r = rng 803 in
  for _ = 1 to 4 do
    let nv = 3 + Prng.int r 2 in
    (* Random subcubic-ish edge set. *)
    let es = ref [] in
    for a = 0 to nv - 1 do
      for b = a + 1 to nv - 1 do
        if Prng.coin r 0.5 then es := (a, b) :: !es
      done
    done;
    if !es <> [] then begin
      let inst = { C.Vc_reduction.nv; es = !es } in
      let host = C.Vc_reduction.host inst in
      let kmin = List.length (C.Vc_reduction.min_vertex_cover inst) in
      let full = List.init nv Fun.id in
      let profile = C.Vc_reduction.profile inst ~cover:full in
      let _, br_cost = Br.exact host profile (C.Vc_reduction.u_agent inst) in
      check_float ~tol:1e-6 "BR cost formula"
        (C.Vc_reduction.u_cost_formula inst ~cover_size:kmin)
        br_cost
    end
  done

let suites =
  [
    ( "reductions.set-cover",
      [
        case "validation" test_set_cover_make_validation;
        case "brute-force min" test_set_cover_min;
        case "random instances valid" test_set_cover_random_valid;
      ] );
    ( "reductions.thm13-tree",
      [
        case "fixed instances" test_thm13_fixed_instances;
        slow_case "random instances" test_thm13_random_instances;
        case "host is metric" test_thm13_host_is_tree_metric;
        case "parameter guards" test_thm13_parameter_guards;
      ] );
    ( "reductions.thm16-geometric",
      [
        case "fixed instances" test_thm16_fixed_instances;
        slow_case "random instances" test_thm16_random_instances;
        case "other p-norms" test_thm16_other_norms;
        case "blocker geometry" test_thm16_geometry;
      ] );
    ( "reductions.thm4-vertex-cover",
      [
        case "brute force VC" test_vc_brute_force;
        case "host shape" test_vc_host_is_one_two;
        case "u's BR cost = min cover" test_vc_u_br_is_min_cover_cost;
        slow_case "NE iff minimal" test_vc_ne_iff_minimal;
        slow_case "random instances" test_vc_random_instances;
      ] );
  ]
